//! End-to-end Montgomery-ladder tests: `main_xdh` on the simulator
//! versus the RFC 7748-validated host reference (`ule-curves`
//! [`ule_curves::montgomery::MontCurve`]), across Baseline / ISA-Ext /
//! Monte on both X25519 and X448. The shared secret must be
//! **bit-identical** to the host on every configuration — including the
//! in-kernel RFC clamp and the all-zero output for low-order inputs.

use ule_curves::params::CurveId;
use ule_mpmath::mp::Mp;
use ule_pete::cpu::{Machine, MachineConfig};
use ule_swlib::builder::{build_suite, Arch, Suite};
use ule_swlib::harness::{read_buf, run_entry_expect, write_buf};
use ule_testkit::Rng;

fn machine_for(suite: &Suite) -> Machine {
    let cfg = match suite.arch {
        Arch::Baseline => MachineConfig::baseline(),
        _ => MachineConfig::isa_ext(),
    };
    let mut b = Machine::builder(&suite.program, cfg);
    if suite.arch == Arch::Monte {
        b = b.coprocessor(Box::new(ule_monte::Monte::new()));
    }
    b.build()
}

/// Little-endian bytes of a k-limb buffer (the wire form the host clamp
/// takes; the kernel clamps the same bits with word operations).
fn limbs_to_bytes(limbs: &[u32]) -> Vec<u8> {
    limbs.iter().flat_map(|w| w.to_le_bytes()).collect()
}

#[test]
fn ladder_matches_host_on_every_arch() {
    for id in [CurveId::X25519, CurveId::X448] {
        let curve = id.curve();
        let mc = curve.mont();
        let f = mc.field();
        let k = f.k();
        let p = f.modulus();
        for arch in [Arch::Baseline, Arch::IsaExt, Arch::Monte] {
            let suite = build_suite(&curve, arch);
            let mut rng = Rng::new(0x7748 ^ (id.bits() as u64) ^ ((arch as u64) << 32));
            // Case 0 is the curve's base point; the rest random u < p.
            for case in 0..2 {
                let raw_k: Vec<u32> = (0..k).map(|_| rng.next_u64() as u32).collect();
                let u = if case == 0 {
                    mc.base_u().clone()
                } else {
                    let limbs: Vec<u32> = (0..k).map(|_| rng.next_u64() as u32).collect();
                    f.from_limbs(&Mp::from_limbs(&limbs).rem(p).to_limbs(k))
                };
                let clamped = mc.clamp(&limbs_to_bytes(&raw_k));
                let expect = mc.ladder(&clamped, &u);

                let mut m = machine_for(&suite);
                write_buf(&mut m, &suite.program, "arg_k", &raw_k);
                write_buf(&mut m, &suite.program, "arg_qx", u.limbs());
                run_entry_expect(&mut m, &suite.program, "main_xdh", 2_000_000_000);
                let got = read_buf(&m, &suite.program, "out_r", k);
                assert_eq!(
                    got,
                    expect.limbs(),
                    "{} {:?} case {case}: sim shared secret diverges from host",
                    id.name(),
                    arch
                );
            }
        }
    }
}

#[test]
fn low_order_input_yields_the_all_zero_secret() {
    // u = 0 collapses the ladder (z2 = 0); the kernel must emit the
    // all-zero secret — the value the protocol layer rejects — without
    // feeding zero to the inversion (the baseline EEA would hang).
    for id in [CurveId::X25519, CurveId::X448] {
        let curve = id.curve();
        let k = curve.mont().field().k();
        for arch in [Arch::Baseline, Arch::Monte] {
            let suite = build_suite(&curve, arch);
            let mut m = machine_for(&suite);
            let raw_k: Vec<u32> = (0..k as u32).map(|i| 0x5eed_0001 + i).collect();
            write_buf(&mut m, &suite.program, "arg_k", &raw_k);
            write_buf(&mut m, &suite.program, "arg_qx", &vec![0u32; k]);
            run_entry_expect(&mut m, &suite.program, "main_xdh", 2_000_000_000);
            let got = read_buf(&m, &suite.program, "out_r", k);
            assert_eq!(got, vec![0u32; k], "{} {:?}", id.name(), arch);
        }
    }
}

#[test]
fn monte_fold_extension_saves_cycles() {
    // The special-form `fmula24` microprogram must make the Monte
    // ladder cheaper than... there is no CIOS-only ladder build to
    // compare against, so pin the relationship that matters: the Monte
    // ladder beats both software tiers by a wide margin.
    let curve = CurveId::X25519.curve();
    let mc = curve.mont();
    let cycles_for = |arch: Arch| -> u64 {
        let suite = build_suite(&curve, arch);
        let mut m = machine_for(&suite);
        let k = mc.field().k();
        write_buf(&mut m, &suite.program, "arg_k", &vec![0x42u32; k]);
        write_buf(&mut m, &suite.program, "arg_qx", mc.base_u().limbs());
        run_entry_expect(&mut m, &suite.program, "main_xdh", 2_000_000_000)
    };
    let monte = cycles_for(Arch::Monte);
    let baseline = cycles_for(Arch::Baseline);
    assert!(
        monte * 4 < baseline,
        "Monte ladder ({monte} cycles) should be well under baseline ({baseline})"
    );
}
