//! Differential tests: binary-field assembly vs the host reference.

use ule_isa::reg::Reg;
use ule_mpmath::f2m::BinaryField;
use ule_mpmath::nist::NistBinary;
use ule_pete::cpu::{Machine, MachineConfig};
use ule_swlib::f2m::{
    emit_f2m_add, emit_f2m_eea_inv, emit_f2m_mul_comb, emit_f2m_mul_ps_ext, emit_f2m_red,
    emit_f2m_sqr_ext, emit_f2m_sqr_table, spread_table_words, F2mEeaBufs,
};
use ule_swlib::gen::Gen;
use ule_swlib::harness::{read_buf, run_entry_expect, write_buf};

struct F2mProgram {
    program: ule_isa::asm::Program,
    k: usize,
}

fn build_f2m_program(field: &BinaryField, ext: bool) -> F2mProgram {
    let k = field.k();
    let width = 2 * k + 1;
    let mut g = Gen::new();
    g.a.ram_alloc("arg_a", k as u32);
    g.a.ram_alloc("arg_b", k as u32);
    g.a.ram_alloc("out", k as u32);
    g.a.ram_alloc("wide_in", width as u32);
    let wide = g.a.ram_alloc("wide", width as u32);
    let table = g.a.ram_alloc("comb_table", (16 * (k + 1)) as u32);
    let u = g.a.ram_alloc("eea_u", width as u32);
    let v = g.a.ram_alloc("eea_v", width as u32);
    let g1 = g.a.ram_alloc("eea_g1", width as u32);
    let g2 = g.a.ram_alloc("eea_g2", width as u32);

    for (entry, routine, two) in [
        ("main_add", "xadd", true),
        ("main_mul", "xmul", true),
        ("main_sqr", "xsqr", false),
        ("main_inv", "xinv", false),
    ] {
        g.a.label(entry);
        g.a.la(Reg::A0, "out");
        g.a.la(Reg::A1, "arg_a");
        if two {
            g.a.la(Reg::A2, "arg_b");
        }
        g.a.jal(routine);
        g.a.nop();
        g.a.brk(0);
    }
    g.a.label("main_red");
    g.a.la(Reg::A0, "wide_in");
    g.a.la(Reg::A1, "out");
    g.a.jal("xred");
    g.a.nop();
    g.a.brk(0);

    emit_f2m_add(&mut g, "xadd", k);
    emit_f2m_red(&mut g, "xred", field, width);
    if ext {
        emit_f2m_mul_ps_ext(&mut g, "xmul", field, wide, "xred");
        emit_f2m_sqr_ext(&mut g, "xsqr", field, wide, "xred");
    } else {
        emit_f2m_mul_comb(&mut g, "xmul", field, table, wide, "xred");
        emit_f2m_sqr_table(&mut g, "xsqr", field, wide, "spread_tbl", "xred");
    }
    emit_f2m_eea_inv(&mut g, "xinv", field, F2mEeaBufs { u, v, g1, g2 }, "xred");
    g.a.data_label("spread_tbl");
    g.a.words(&spread_table_words());

    F2mProgram {
        program: g.a.link("main_add").expect("link"),
        k,
    }
}

fn sample(field: &BinaryField, seed: u64) -> Vec<u32> {
    let mut x = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
    let k = field.k();
    let mut limbs = vec![0u32; k];
    for l in limbs.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *l = x as u32;
    }
    limbs[k - 1] &= (1u32 << (field.m() % 32)) - 1;
    limbs
}

fn cfg(ext: bool) -> MachineConfig {
    if ext {
        MachineConfig::isa_ext()
    } else {
        MachineConfig::baseline()
    }
}

fn run_op(fp: &F2mProgram, ext: bool, entry: &str, a: &[u32], b: Option<&[u32]>) -> Vec<u32> {
    let mut m = Machine::new(&fp.program, cfg(ext));
    write_buf(&mut m, &fp.program, "arg_a", a);
    if let Some(b) = b {
        write_buf(&mut m, &fp.program, "arg_b", b);
    }
    run_entry_expect(&mut m, &fp.program, entry, 100_000_000);
    read_buf(&m, &fp.program, "out", fp.k)
}

#[test]
fn add_matches_host() {
    let field = BinaryField::nist(NistBinary::B163);
    let fp = build_f2m_program(&field, false);
    let a = sample(&field, 1);
    let b = sample(&field, 2);
    let expect = field
        .add(&field.from_limbs(&a), &field.from_limbs(&b))
        .limbs()
        .to_vec();
    assert_eq!(run_op(&fp, false, "main_add", &a, Some(&b)), expect);
}

#[test]
fn comb_mul_matches_host_all_fields() {
    for nb in NistBinary::ALL {
        let field = BinaryField::nist(nb);
        let fp = build_f2m_program(&field, false);
        for seed in 0..2u64 {
            let a = sample(&field, seed + 5);
            let b = sample(&field, seed + 50);
            let expect = field
                .mul_comb(&field.from_limbs(&a), &field.from_limbs(&b))
                .limbs()
                .to_vec();
            assert_eq!(
                run_op(&fp, false, "main_mul", &a, Some(&b)),
                expect,
                "{} comb seed {seed}",
                nb.name()
            );
        }
    }
}

#[test]
fn ext_mul_matches_host_all_fields() {
    for nb in NistBinary::ALL {
        let field = BinaryField::nist(nb);
        let fp = build_f2m_program(&field, true);
        for seed in 0..2u64 {
            let a = sample(&field, seed + 9);
            let b = sample(&field, seed + 90);
            let expect = field
                .mul_clmul(&field.from_limbs(&a), &field.from_limbs(&b))
                .limbs()
                .to_vec();
            assert_eq!(
                run_op(&fp, true, "main_mul", &a, Some(&b)),
                expect,
                "{} ext mul seed {seed}",
                nb.name()
            );
        }
    }
}

#[test]
fn sqr_matches_host_both_tiers() {
    for nb in [NistBinary::B163, NistBinary::B571] {
        let field = BinaryField::nist(nb);
        for ext in [false, true] {
            let fp = build_f2m_program(&field, ext);
            let a = sample(&field, 77);
            let expect = field.sqr(&field.from_limbs(&a)).limbs().to_vec();
            assert_eq!(
                run_op(&fp, ext, "main_sqr", &a, None),
                expect,
                "{} sqr ext={ext}",
                nb.name()
            );
        }
    }
}

#[test]
fn reduction_matches_host_on_extremes() {
    for nb in NistBinary::ALL {
        let field = BinaryField::nist(nb);
        let fp = build_f2m_program(&field, false);
        let width = 2 * field.k() + 1;
        for wide in [vec![0u32; width], vec![u32::MAX; width]] {
            let mut m = Machine::new(&fp.program, cfg(false));
            write_buf(&mut m, &fp.program, "wide_in", &wide);
            run_entry_expect(&mut m, &fp.program, "main_red", 10_000_000);
            let got = read_buf(&m, &fp.program, "out", fp.k);
            let expect = field.reduce(&wide);
            assert_eq!(got, expect, "{} red", nb.name());
        }
    }
}

#[test]
fn inversion_matches_host() {
    for nb in [NistBinary::B163, NistBinary::B283] {
        let field = BinaryField::nist(nb);
        let fp = build_f2m_program(&field, false);
        for seed in 0..2u64 {
            let a = sample(&field, seed + 3);
            let expect = field
                .inv(&field.from_limbs(&a))
                .expect("nonzero")
                .limbs()
                .to_vec();
            assert_eq!(
                run_op(&fp, false, "main_inv", &a, None),
                expect,
                "{} inv seed {seed}",
                nb.name()
            );
        }
    }
}

#[test]
fn ext_mul_is_dramatically_faster_than_comb() {
    // The §7.2 claim: binary fields without carry-less hardware are
    // impractical; the ISA extensions recover the efficiency.
    let field = BinaryField::nist(NistBinary::B163);
    let base = build_f2m_program(&field, false);
    let ext = build_f2m_program(&field, true);
    let a = sample(&field, 11);
    let b = sample(&field, 12);
    let mut mb = Machine::new(&base.program, cfg(false));
    write_buf(&mut mb, &base.program, "arg_a", &a);
    write_buf(&mut mb, &base.program, "arg_b", &b);
    let comb_cycles = run_entry_expect(&mut mb, &base.program, "main_mul", 10_000_000);
    let mut me = Machine::new(&ext.program, cfg(true));
    write_buf(&mut me, &ext.program, "arg_a", &a);
    write_buf(&mut me, &ext.program, "arg_b", &b);
    let ext_cycles = run_entry_expect(&mut me, &ext.program, "main_mul", 10_000_000);
    assert!(
        ext_cycles * 2 < comb_cycles,
        "ext {ext_cycles} vs comb {comb_cycles}"
    );
}
