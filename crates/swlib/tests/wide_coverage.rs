//! Wide differential coverage: scalar multiplication and full ECDSA on
//! *every* curve and architecture of the study. These sweep large
//! simulations, so they only run in release builds
//! (`cargo test --release`); in debug builds they are ignored.

use ule_curves::binary::AffinePoint2m;
use ule_curves::ecdsa::{self, Keypair};
use ule_curves::params::{CurveId, CurveKind};
use ule_curves::prime::AffinePoint;
use ule_curves::scalar;
use ule_mpmath::mp::Mp;
use ule_pete::cpu::{Machine, MachineConfig};
use ule_swlib::builder::{build_suite, Arch, Suite};
use ule_swlib::harness::{read_buf, run_entry_expect, write_buf};

fn machine_for(suite: &Suite) -> Machine {
    let cfg = match suite.arch {
        Arch::Baseline => MachineConfig::baseline(),
        _ => MachineConfig::isa_ext(),
    };
    let b = Machine::builder(&suite.program, cfg);
    let b = match suite.arch {
        Arch::Monte => b.coprocessor(Box::new(ule_monte::Monte::new())),
        Arch::Billie => b.coprocessor(Box::new(ule_billie::Billie::new(
            suite.curve_id.nist_binary(),
        ))),
        _ => b,
    };
    b.build()
}

fn curve_k(curve: &ule_curves::params::Curve) -> usize {
    match curve.kind() {
        CurveKind::Prime(c) => c.field().k(),
        CurveKind::Binary(c) => c.field().k(),
        CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
    }
}

fn host_mul_g(curve: &ule_curves::params::Curve, s: &Mp, k: usize) -> Vec<u32> {
    match curve.kind() {
        CurveKind::Prime(c) => match scalar::mul_window(c, s, &c.generator()) {
            AffinePoint::Point { x, .. } => x.limbs().to_vec(),
            AffinePoint::Infinity => vec![0; k],
        },
        CurveKind::Binary(c) => match scalar::mul_window(c, s, &c.generator()) {
            AffinePoint2m::Point { x, .. } => x.limbs().to_vec(),
            AffinePoint2m::Infinity => vec![0; k],
        },
        CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
    }
}

fn archs(id: CurveId) -> Vec<Arch> {
    if id.is_binary() {
        vec![Arch::Baseline, Arch::IsaExt, Arch::Billie]
    } else {
        vec![Arch::Baseline, Arch::IsaExt, Arch::Monte]
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "large sweep; run with --release")]
fn scalar_mul_every_curve_and_architecture() {
    for id in CurveId::ALL {
        let curve = id.curve();
        let k = curve_k(&curve);
        let s = ecdsa::derive_scalar(&curve, format!("wide {}", id.name()).as_bytes(), b"k");
        let expect_x = host_mul_g(&curve, &s, k);
        for arch in archs(id) {
            let suite = build_suite(&curve, arch);
            let mut m = machine_for(&suite);
            write_buf(&mut m, &suite.program, "arg_k", &s.to_limbs(k));
            run_entry_expect(&mut m, &suite.program, "main_scalar_mul", u64::MAX / 2);
            assert_eq!(
                read_buf(&m, &suite.program, "out_r", k),
                expect_x,
                "{} {:?} scalar mult x-coordinate",
                id.name(),
                arch
            );
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "large sweep; run with --release")]
fn ecdsa_sign_every_curve_and_architecture() {
    for id in CurveId::ALL {
        let curve = id.curve();
        let k = curve_k(&curve);
        let keys = Keypair::derive(&curve, b"wide signer");
        let e = ecdsa::hash_to_scalar(&curve, b"wide coverage message");
        let nonce = ecdsa::derive_scalar(&curve, b"wide nonce", b"nonce");
        let sig = ecdsa::sign_with_nonce(&curve, keys.private(), &e, &nonce).expect("valid");
        for arch in archs(id) {
            let suite = build_suite(&curve, arch);
            let mut m = machine_for(&suite);
            write_buf(&mut m, &suite.program, "arg_e", &e.to_limbs(k));
            write_buf(&mut m, &suite.program, "arg_d", &keys.private().to_limbs(k));
            write_buf(&mut m, &suite.program, "arg_k", &nonce.to_limbs(k));
            run_entry_expect(&mut m, &suite.program, "main_sign", u64::MAX / 2);
            assert_eq!(
                Mp::from_limbs(&read_buf(&m, &suite.program, "out_r", k)),
                sig.r,
                "{} {:?} r",
                id.name(),
                arch
            );
            assert_eq!(
                Mp::from_limbs(&read_buf(&m, &suite.program, "out_s", k)),
                sig.s,
                "{} {:?} s",
                id.name(),
                arch
            );
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "large sweep; run with --release")]
fn field_ops_every_curve_and_architecture() {
    // The micro entries (through the fin/fout domain plumbing) on every
    // configuration, against the host field arithmetic.
    use ule_mpmath::f2m::BinaryField;
    use ule_mpmath::fp::PrimeField;
    for id in CurveId::ALL {
        let curve = id.curve();
        let k = curve_k(&curve);
        // deterministic operands
        let a = ecdsa::derive_scalar(&curve, b"fa", b"x");
        let b = ecdsa::derive_scalar(&curve, b"fb", b"x");
        let (al, bl, expect_mul, expect_inv): (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) =
            match curve.kind() {
                CurveKind::Prime(c) => {
                    let f: &PrimeField = c.field();
                    let ea = f.from_mp(&a);
                    let eb = f.from_mp(&b);
                    (
                        ea.limbs().to_vec(),
                        eb.limbs().to_vec(),
                        f.mul(&ea, &eb).limbs().to_vec(),
                        f.inv(&ea).unwrap().limbs().to_vec(),
                    )
                }
                CurveKind::Binary(c) => {
                    let f: &BinaryField = c.field();
                    let mask_top = |v: &Mp| {
                        let mut l = v.to_limbs(k);
                        l[k - 1] &= (1u32 << (f.m() % 32)) - 1;
                        l
                    };
                    let ea = f.from_limbs(&mask_top(&a));
                    let eb = f.from_limbs(&mask_top(&b));
                    (
                        ea.limbs().to_vec(),
                        eb.limbs().to_vec(),
                        f.mul(&ea, &eb).limbs().to_vec(),
                        f.inv(&ea).unwrap().limbs().to_vec(),
                    )
                }
                CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
            };
        for arch in archs(id) {
            let suite = build_suite(&curve, arch);
            let mut m = machine_for(&suite);
            write_buf(&mut m, &suite.program, "arg_qx", &al);
            write_buf(&mut m, &suite.program, "arg_qy", &bl);
            run_entry_expect(&mut m, &suite.program, "main_fmul", 200_000_000);
            assert_eq!(
                read_buf(&m, &suite.program, "out_r", k),
                expect_mul,
                "{} {:?} fmul",
                id.name(),
                arch
            );
            let mut m = machine_for(&suite);
            write_buf(&mut m, &suite.program, "arg_qx", &al);
            run_entry_expect(&mut m, &suite.program, "main_finv", 500_000_000);
            assert_eq!(
                read_buf(&m, &suite.program, "out_r", k),
                expect_inv,
                "{} {:?} finv",
                id.name(),
                arch
            );
        }
    }
}
