//! End-to-end differential tests: complete suite programs (point ops,
//! scalar multiplication, twin multiplication, full ECDSA sign/verify)
//! on the simulator versus the `ule-curves` host reference.

use ule_curves::binary::AffinePoint2m;
use ule_curves::ecdsa::{self, Keypair};
use ule_curves::params::{Curve, CurveId, CurveKind};
use ule_curves::prime::AffinePoint;
use ule_curves::scalar;
use ule_mpmath::mp::Mp;
use ule_pete::cpu::{Machine, MachineConfig};
use ule_swlib::builder::{build_suite, Arch, Suite};
use ule_swlib::harness::{read_buf, run_entry_expect, write_buf};

fn machine_for(suite: &Suite) -> Machine {
    let cfg = match suite.arch {
        Arch::Baseline => MachineConfig::baseline(),
        Arch::IsaExt => MachineConfig::isa_ext(),
        _ => MachineConfig::isa_ext(),
    };
    let mut b = Machine::builder(&suite.program, cfg);
    if suite.arch == Arch::Monte {
        b = b.coprocessor(Box::new(ule_monte::Monte::new()));
    }
    if suite.arch == Arch::Billie {
        b = b.coprocessor(Box::new(ule_billie::Billie::new(
            suite.curve_id.nist_binary(),
        )));
    }
    b.build()
}

fn limbs(v: &Mp, k: usize) -> Vec<u32> {
    v.to_limbs(k)
}

/// Affine coordinates of a host point as limb vectors.
fn prime_xy(curve: &Curve, p: &AffinePoint, k: usize) -> (Vec<u32>, Vec<u32>) {
    let _ = curve;
    match p {
        AffinePoint::Infinity => (vec![0; k], vec![0; k]),
        AffinePoint::Point { x, y } => (x.limbs().to_vec(), y.limbs().to_vec()),
    }
}

fn binary_xy(p: &AffinePoint2m, k: usize) -> (Vec<u32>, Vec<u32>) {
    match p {
        AffinePoint2m::Infinity => (vec![0; k], vec![0; k]),
        AffinePoint2m::Point { x, y } => (x.limbs().to_vec(), y.limbs().to_vec()),
    }
}

/// Host double/add oracle dispatching on the curve family.
fn host_double(curve: &Curve, x: &[u32], y: &[u32], k: usize) -> (Vec<u32>, Vec<u32>) {
    match curve.kind() {
        CurveKind::Prime(c) => {
            let p = AffinePoint::new(c.field().from_limbs(x), c.field().from_limbs(y));
            let d = c.affine_double(&p);
            prime_xy(curve, &d, k)
        }
        CurveKind::Binary(c) => {
            let p = AffinePoint2m::new(c.field().from_limbs(x), c.field().from_limbs(y));
            let d = c.affine_double(&p);
            binary_xy(&d, k)
        }
        CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
    }
}

fn host_add(
    curve: &Curve,
    x1: &[u32],
    y1: &[u32],
    x2: &[u32],
    y2: &[u32],
    k: usize,
) -> (Vec<u32>, Vec<u32>) {
    match curve.kind() {
        CurveKind::Prime(c) => {
            let p = AffinePoint::new(c.field().from_limbs(x1), c.field().from_limbs(y1));
            let q = AffinePoint::new(c.field().from_limbs(x2), c.field().from_limbs(y2));
            prime_xy(curve, &c.affine_add(&p, &q), k)
        }
        CurveKind::Binary(c) => {
            let p = AffinePoint2m::new(c.field().from_limbs(x1), c.field().from_limbs(y1));
            let q = AffinePoint2m::new(c.field().from_limbs(x2), c.field().from_limbs(y2));
            binary_xy(&c.affine_add(&p, &q), k)
        }
        CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
    }
}

fn generator_xy(curve: &Curve, k: usize) -> (Vec<u32>, Vec<u32>) {
    match curve.kind() {
        CurveKind::Prime(c) => prime_xy(curve, &c.generator(), k),
        CurveKind::Binary(c) => binary_xy(&c.generator(), k),
        CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
    }
}

fn host_mul_g(curve: &Curve, s: &Mp, k: usize) -> (Vec<u32>, Vec<u32>) {
    match curve.kind() {
        CurveKind::Prime(c) => prime_xy(curve, &scalar::mul_window(c, s, &c.generator()), k),
        CurveKind::Binary(c) => binary_xy(&scalar::mul_window(c, s, &c.generator()), k),
        CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
    }
}

fn archs_for(id: CurveId) -> Vec<Arch> {
    if id.is_binary() {
        vec![Arch::Baseline, Arch::IsaExt, Arch::Billie]
    } else {
        vec![Arch::Baseline, Arch::IsaExt, Arch::Monte]
    }
}

#[test]
fn point_double_and_add_match_host() {
    for id in [CurveId::P192, CurveId::K163] {
        let curve = id.curve();
        let k = match curve.kind() {
            CurveKind::Prime(c) => c.field().k(),
            CurveKind::Binary(c) => c.field().k(),
            CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
        };
        let (gx, gy) = generator_xy(&curve, k);
        // 3G as the second operand (distinct from G).
        let (hx, hy) = host_mul_g(&curve, &Mp::from_u64(3), k);
        for arch in archs_for(id) {
            let suite = build_suite(&curve, arch);
            // double
            let mut m = machine_for(&suite);
            write_buf(&mut m, &suite.program, "arg_px", &gx);
            write_buf(&mut m, &suite.program, "arg_py", &gy);
            run_entry_expect(&mut m, &suite.program, "main_pdbl", 500_000_000);
            let got_x = read_buf(&m, &suite.program, "out_r", k);
            let got_y = read_buf(&m, &suite.program, "out_s", k);
            let (ex, ey) = host_double(&curve, &gx, &gy, k);
            assert_eq!((got_x, got_y), (ex, ey), "{id:?} {arch:?} pdbl");
            // add G + 3G
            let mut m = machine_for(&suite);
            write_buf(&mut m, &suite.program, "arg_px", &gx);
            write_buf(&mut m, &suite.program, "arg_py", &gy);
            write_buf(&mut m, &suite.program, "arg_qx", &hx);
            write_buf(&mut m, &suite.program, "arg_qy", &hy);
            run_entry_expect(&mut m, &suite.program, "main_padd", 500_000_000);
            let got_x = read_buf(&m, &suite.program, "out_r", k);
            let got_y = read_buf(&m, &suite.program, "out_s", k);
            let (ex, ey) = host_add(&curve, &gx, &gy, &hx, &hy, k);
            assert_eq!((got_x, got_y), (ex, ey), "{id:?} {arch:?} padd");
        }
    }
}

#[test]
fn scalar_mul_matches_host() {
    for id in [CurveId::P192, CurveId::K163] {
        let curve = id.curve();
        let k = match curve.kind() {
            CurveKind::Prime(c) => c.field().k(),
            CurveKind::Binary(c) => c.field().k(),
            CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
        };
        // A full-width scalar.
        let s = ecdsa::derive_scalar(&curve, b"scalar-mul diff", b"k");
        for arch in archs_for(id) {
            let suite = build_suite(&curve, arch);
            let mut m = machine_for(&suite);
            write_buf(&mut m, &suite.program, "arg_k", &limbs(&s, k));
            run_entry_expect(&mut m, &suite.program, "main_scalar_mul", 2_000_000_000);
            let got_x = read_buf(&m, &suite.program, "out_r", k);
            let got_y = read_buf(&m, &suite.program, "out_s", k);
            let (ex, ey) = host_mul_g(&curve, &s, k);
            assert_eq!((got_x, got_y), (ex, ey), "{id:?} {arch:?} scalar_mul");
        }
    }
}

#[test]
fn twin_mul_matches_host() {
    for id in [CurveId::P192, CurveId::K163] {
        let curve = id.curve();
        let k = match curve.kind() {
            CurveKind::Prime(c) => c.field().k(),
            CurveKind::Binary(c) => c.field().k(),
            CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
        };
        let u1 = ecdsa::derive_scalar(&curve, b"twin u1", b"k");
        let u2 = ecdsa::derive_scalar(&curve, b"twin u2", b"k");
        let dq = ecdsa::derive_scalar(&curve, b"twin q", b"k");
        let (qx, qy) = host_mul_g(&curve, &dq, k);
        // host result
        let (ex, ey) = match curve.kind() {
            CurveKind::Prime(c) => {
                let q = AffinePoint::new(c.field().from_limbs(&qx), c.field().from_limbs(&qy));
                prime_xy(
                    &curve,
                    &scalar::twin_mul(c, &u1, &c.generator(), &u2, &q),
                    k,
                )
            }
            CurveKind::Binary(c) => {
                let q = AffinePoint2m::new(c.field().from_limbs(&qx), c.field().from_limbs(&qy));
                binary_xy(&scalar::twin_mul(c, &u1, &c.generator(), &u2, &q), k)
            }
            CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
        };
        for arch in archs_for(id) {
            let suite = build_suite(&curve, arch);
            let mut m = machine_for(&suite);
            write_buf(&mut m, &suite.program, "arg_e", &limbs(&u1, k));
            write_buf(&mut m, &suite.program, "arg_d", &limbs(&u2, k));
            write_buf(&mut m, &suite.program, "arg_qx", &qx);
            write_buf(&mut m, &suite.program, "arg_qy", &qy);
            run_entry_expect(&mut m, &suite.program, "main_twin_mul", 2_000_000_000);
            let got_x = read_buf(&m, &suite.program, "out_r", k);
            let got_y = read_buf(&m, &suite.program, "out_s", k);
            assert_eq!(
                (got_x, got_y),
                (ex.clone(), ey.clone()),
                "{id:?} {arch:?} twin_mul"
            );
        }
    }
}

#[test]
fn ecdsa_sign_verify_match_host() {
    for id in [CurveId::P192, CurveId::K163] {
        let curve = id.curve();
        let k = match curve.kind() {
            CurveKind::Prime(c) => c.field().k(),
            CurveKind::Binary(c) => c.field().k(),
            CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
        };
        let keys = Keypair::derive(&curve, b"simulated signer");
        let e = ecdsa::hash_to_scalar(&curve, b"message for the target");
        let nonce = ecdsa::derive_scalar(&curve, b"sim nonce", b"nonce");
        let host_sig =
            ecdsa::sign_with_nonce(&curve, keys.private(), &e, &nonce).expect("good nonce");
        let (qx, qy) = match (&keys.public(), curve.kind()) {
            (ecdsa::PublicKey::Prime(p), CurveKind::Prime(_)) => prime_xy(&curve, p, k),
            (ecdsa::PublicKey::Binary(p), CurveKind::Binary(_)) => binary_xy(p, k),
            _ => unreachable!(),
        };
        for arch in archs_for(id) {
            let suite = build_suite(&curve, arch);
            // --- sign on the target
            let mut m = machine_for(&suite);
            write_buf(&mut m, &suite.program, "arg_e", &limbs(&e, k));
            write_buf(&mut m, &suite.program, "arg_d", &limbs(keys.private(), k));
            write_buf(&mut m, &suite.program, "arg_k", &limbs(&nonce, k));
            run_entry_expect(&mut m, &suite.program, "main_sign", 2_000_000_000);
            let r = Mp::from_limbs(&read_buf(&m, &suite.program, "out_r", k));
            let s = Mp::from_limbs(&read_buf(&m, &suite.program, "out_s", k));
            assert_eq!(r, host_sig.r, "{id:?} {arch:?} r");
            assert_eq!(s, host_sig.s, "{id:?} {arch:?} s");
            // --- verify the host signature on the target
            let mut m = machine_for(&suite);
            write_buf(&mut m, &suite.program, "arg_e", &limbs(&e, k));
            write_buf(&mut m, &suite.program, "arg_r", &limbs(&host_sig.r, k));
            write_buf(&mut m, &suite.program, "arg_s", &limbs(&host_sig.s, k));
            write_buf(&mut m, &suite.program, "arg_qx", &qx);
            write_buf(&mut m, &suite.program, "arg_qy", &qy);
            run_entry_expect(&mut m, &suite.program, "main_verify", 2_000_000_000);
            assert_eq!(
                read_buf(&m, &suite.program, "out_ok", 1),
                vec![1],
                "{id:?} {arch:?} genuine signature rejected"
            );
            // --- a corrupted signature must be rejected
            let mut m = machine_for(&suite);
            let bad_s = s.add(&Mp::one()).rem(curve.n());
            write_buf(&mut m, &suite.program, "arg_e", &limbs(&e, k));
            write_buf(&mut m, &suite.program, "arg_r", &limbs(&host_sig.r, k));
            write_buf(&mut m, &suite.program, "arg_s", &limbs(&bad_s, k));
            write_buf(&mut m, &suite.program, "arg_qx", &qx);
            write_buf(&mut m, &suite.program, "arg_qy", &qy);
            run_entry_expect(&mut m, &suite.program, "main_verify", 2_000_000_000);
            assert_eq!(
                read_buf(&m, &suite.program, "out_ok", 1),
                vec![0],
                "{id:?} {arch:?} forged signature accepted"
            );
        }
    }
}
