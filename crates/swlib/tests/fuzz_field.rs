//! Differential fuzzing of the simulated field routines against the
//! host reference: deterministic random operands through the full
//! (assemble → simulate → compare) pipeline.

use ule_curves::params::CurveId;
use ule_mpmath::f2m::BinaryField;
use ule_mpmath::fp::PrimeField;
use ule_mpmath::mp::Mp;
use ule_mpmath::nist::{NistBinary, NistPrime};
use ule_pete::cpu::{Machine, MachineConfig};
use ule_swlib::builder::{build_suite, Arch, Suite};
use ule_swlib::harness::{read_buf, run_entry_expect, write_buf};
use ule_testkit::Rng;

fn p192_suites() -> (Suite, Suite) {
    let curve = CurveId::P192.curve();
    (
        build_suite(&curve, Arch::Baseline),
        build_suite(&curve, Arch::IsaExt),
    )
}

fn k163_suites() -> (Suite, Suite) {
    let curve = CurveId::K163.curve();
    (
        build_suite(&curve, Arch::Baseline),
        build_suite(&curve, Arch::IsaExt),
    )
}

fn random_fp192(rng: &mut Rng) -> Vec<u32> {
    let f = PrimeField::nist(NistPrime::P192);
    f.from_mp(&Mp::from_limbs(&rng.vec_u32(6))).limbs().to_vec()
}

fn random_f163(rng: &mut Rng) -> Vec<u32> {
    let mut v = rng.vec_u32(6);
    v[5] &= (1u32 << (163 % 32)) - 1;
    v
}

fn run_fmul(suite: &Suite, ext: bool, a: &[u32], b: &[u32]) -> Vec<u32> {
    let cfg = if ext {
        MachineConfig::isa_ext()
    } else {
        MachineConfig::baseline()
    };
    let mut m = Machine::new(&suite.program, cfg);
    write_buf(&mut m, &suite.program, "arg_qx", a);
    write_buf(&mut m, &suite.program, "arg_qy", b);
    run_entry_expect(&mut m, &suite.program, "main_fmul", 10_000_000);
    read_buf(&m, &suite.program, "out_r", 6)
}

#[test]
fn p192_fmul_random_operands() {
    let mut rng = Rng::new(0xf192);
    let field = PrimeField::nist(NistPrime::P192);
    let (base, ext) = p192_suites();
    for _ in 0..24 {
        let a = random_fp192(&mut rng);
        let b = random_fp192(&mut rng);
        let expect = field
            .mul(&field.from_limbs(&a), &field.from_limbs(&b))
            .limbs()
            .to_vec();
        assert_eq!(run_fmul(&base, false, &a, &b), expect);
        assert_eq!(run_fmul(&ext, true, &a, &b), expect);
    }
}

#[test]
fn k163_fmul_random_operands() {
    let mut rng = Rng::new(0xf163);
    let field = BinaryField::nist(NistBinary::B163);
    let (base, ext) = k163_suites();
    for _ in 0..24 {
        let a = random_f163(&mut rng);
        let b = random_f163(&mut rng);
        let expect = field
            .mul(&field.from_limbs(&a), &field.from_limbs(&b))
            .limbs()
            .to_vec();
        assert_eq!(run_fmul(&base, false, &a, &b), expect);
        assert_eq!(run_fmul(&ext, true, &a, &b), expect);
    }
}

#[test]
fn p192_fadd_fsub_random_operands() {
    let mut rng = Rng::new(0xfadd);
    let field = PrimeField::nist(NistPrime::P192);
    let (base, _) = p192_suites();
    for _ in 0..24 {
        let a = random_fp192(&mut rng);
        let b = random_fp192(&mut rng);
        let (ea, eb) = (field.from_limbs(&a), field.from_limbs(&b));
        for (entry, expect) in [
            ("main_fadd", field.add(&ea, &eb)),
            ("main_fsub", field.sub(&ea, &eb)),
        ] {
            let mut m = Machine::new(&base.program, MachineConfig::baseline());
            write_buf(&mut m, &base.program, "arg_qx", &a);
            write_buf(&mut m, &base.program, "arg_qy", &b);
            run_entry_expect(&mut m, &base.program, entry, 10_000_000);
            assert_eq!(
                read_buf(&m, &base.program, "out_r", 6),
                expect.limbs().to_vec(),
                "{entry}"
            );
        }
    }
}

#[test]
fn every_suite_program_disassembles() {
    // Every text word of every built configuration must decode — i.e.
    // the assembler only ever emits Pete's ISA.
    for id in [CurveId::P192, CurveId::K163] {
        let curve = id.curve();
        let archs: &[Arch] = if id.is_binary() {
            &[Arch::Baseline, Arch::IsaExt, Arch::Billie]
        } else {
            &[Arch::Baseline, Arch::IsaExt, Arch::Monte]
        };
        for &arch in archs {
            let suite = build_suite(&curve, arch);
            let text = suite.program.text_words();
            for (i, &w) in suite.program.rom().iter().take(text).enumerate() {
                assert!(
                    ule_isa::instr::Instr::decode(w).is_ok(),
                    "{:?} {:?}: word {i} = {w:#010x} does not decode",
                    id,
                    arch
                );
            }
            // The disassembly listing is well-formed too.
            let listing = suite.program.disassemble();
            assert!(listing.lines().count() == text);
        }
    }
}
