//! Pinned regressions for the degenerate twin-multiplication inputs the
//! differential fuzzer surfaced: `Q = ±G` public keys (the `P+Q`
//! precompute lands on the group identity, or on a doubling the LD
//! mixed addition cannot express), zero scalars, and scans whose result
//! is the group identity. Each case runs the simulator against the
//! `ule-curves` host reference on one prime and one binary curve across
//! every architecture of that family.

use ule_curves::binary::AffinePoint2m;
use ule_curves::ecdsa::{self, Keypair};
use ule_curves::params::{Curve, CurveId, CurveKind};
use ule_curves::prime::AffinePoint;
use ule_curves::scalar;
use ule_mpmath::mp::Mp;
use ule_pete::cpu::{Machine, MachineConfig};
use ule_swlib::builder::{build_suite, Arch, Suite};
use ule_swlib::harness::{read_buf, run_entry_expect, write_buf};

fn machine_for(suite: &Suite) -> Machine {
    let cfg = match suite.arch {
        Arch::Baseline => MachineConfig::baseline(),
        _ => MachineConfig::isa_ext(),
    };
    let mut b = Machine::builder(&suite.program, cfg);
    if suite.arch == Arch::Monte {
        b = b.coprocessor(Box::new(ule_monte::Monte::new()));
    }
    if suite.arch == Arch::Billie {
        b = b.coprocessor(Box::new(ule_billie::Billie::new(
            suite.curve_id.nist_binary(),
        )));
    }
    b.build()
}

fn field_words(curve: &Curve) -> usize {
    match curve.kind() {
        CurveKind::Prime(c) => c.field().k(),
        CurveKind::Binary(c) => c.field().k(),
        CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
    }
}

fn archs_for(id: CurveId) -> Vec<Arch> {
    if id.is_binary() {
        vec![Arch::Baseline, Arch::IsaExt, Arch::Billie]
    } else {
        vec![Arch::Baseline, Arch::IsaExt, Arch::Monte]
    }
}

fn prime_xy(p: &AffinePoint, k: usize) -> (Vec<u32>, Vec<u32>) {
    match p {
        AffinePoint::Infinity => (vec![0; k], vec![0; k]),
        AffinePoint::Point { x, y } => (x.limbs().to_vec(), y.limbs().to_vec()),
    }
}

fn binary_xy(p: &AffinePoint2m, k: usize) -> (Vec<u32>, Vec<u32>) {
    match p {
        AffinePoint2m::Infinity => (vec![0; k], vec![0; k]),
        AffinePoint2m::Point { x, y } => (x.limbs().to_vec(), y.limbs().to_vec()),
    }
}

/// Host `u1*G + u2*Q` with `Q` given as limb coordinates.
fn host_twin(curve: &Curve, u1: &Mp, u2: &Mp, qx: &[u32], qy: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let k = field_words(curve);
    match curve.kind() {
        CurveKind::Prime(c) => {
            let q = AffinePoint::new(c.field().from_limbs(qx), c.field().from_limbs(qy));
            prime_xy(&scalar::twin_mul(c, u1, &c.generator(), u2, &q), k)
        }
        CurveKind::Binary(c) => {
            let q = AffinePoint2m::new(c.field().from_limbs(qx), c.field().from_limbs(qy));
            binary_xy(&scalar::twin_mul(c, u1, &c.generator(), u2, &q), k)
        }
        CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
    }
}

/// Affine coordinates of `d*G` on the host.
fn host_mul_g(curve: &Curve, d: &Mp) -> (Vec<u32>, Vec<u32>) {
    let k = field_words(curve);
    match curve.kind() {
        CurveKind::Prime(c) => prime_xy(&scalar::mul_window(c, d, &c.generator()), k),
        CurveKind::Binary(c) => binary_xy(&scalar::mul_window(c, d, &c.generator()), k),
        CurveKind::Mont(_) => unreachable!("ECDSA coverage only"),
    }
}

/// Runs `main_twin_mul` on the simulator and checks the result against
/// the host for one `(u1, u2, Q)` triple on every architecture.
fn check_twin(id: CurveId, u1: &Mp, u2: &Mp, qx: &[u32], qy: &[u32], what: &str) {
    let curve = id.curve();
    let k = field_words(&curve);
    let expected = host_twin(&curve, u1, u2, qx, qy);
    for arch in archs_for(id) {
        let suite = build_suite(&curve, arch);
        let mut m = machine_for(&suite);
        write_buf(&mut m, &suite.program, "arg_e", &u1.to_limbs(k));
        write_buf(&mut m, &suite.program, "arg_d", &u2.to_limbs(k));
        write_buf(&mut m, &suite.program, "arg_qx", qx);
        write_buf(&mut m, &suite.program, "arg_qy", qy);
        run_entry_expect(&mut m, &suite.program, "main_twin_mul", 2_000_000_000);
        let got = (
            read_buf(&m, &suite.program, "out_r", k),
            read_buf(&m, &suite.program, "out_s", k),
        );
        assert_eq!(got, expected, "{id:?} {arch:?} twin_mul {what}");
    }
}

/// `Q = G`: the `P+Q` precompute is a point doubling, which the mixed
/// addition formulas cannot express (`H = 0` prime / `B = 0` binary).
#[test]
fn twin_mul_q_equals_g() {
    for id in [CurveId::P192, CurveId::K163] {
        let curve = id.curve();
        let (gx, gy) = host_mul_g(&curve, &Mp::one());
        let u1 = ecdsa::derive_scalar(&curve, b"twin deg u1", b"k");
        let u2 = ecdsa::derive_scalar(&curve, b"twin deg u2", b"k");
        check_twin(id, &u1, &u2, &gx, &gy, "Q = G");
    }
}

/// `Q = G` with one scalar exactly one bit longer than the other and
/// the next bit set in both: the scan pattern `(0,1)` then `(1,1)` (or
/// its mirror). A per-point scan initializes the accumulator from a
/// single point (`t = 1`), doubles (`t = 2`), then adds `G+Q = 2G` —
/// equal operands, which the guardless LD mixed addition silently
/// corrupts (`B = 0` makes `Z3 = 0` with no identity encoding). The
/// differential fuzzer caught exactly this prefix on K-163/Billie
/// (`edge:d=1`); the kernel now collapses `Q = G` to a single summed
/// scalar, which this pins.
#[test]
fn twin_mul_q_equals_g_colliding_prefix() {
    for id in [CurveId::P192, CurveId::K163] {
        let curve = id.curve();
        let (gx, gy) = host_mul_g(&curve, &Mp::one());
        let long = Mp::from_limbs(&[0x0018_0001]); // bits 20, 19, 0
        let short = Mp::from_limbs(&[0x0008_0001]); // bits 19, 0
        check_twin(id, &short, &long, &gx, &gy, "Q = G, u2 longer");
        check_twin(id, &long, &short, &gx, &gy, "Q = G, u1 longer");
    }
}

/// `Q = -G` (the public key of `d = n-1`): the `P+Q` precompute is the
/// group identity, which must not be fed back into the addition as a
/// finite (0, 0) point.
#[test]
fn twin_mul_q_equals_neg_g() {
    for id in [CurveId::P192, CurveId::K163] {
        let curve = id.curve();
        let n_minus_1 = curve.n().sub(&Mp::one());
        let (qx, qy) = host_mul_g(&curve, &n_minus_1);
        let u1 = ecdsa::derive_scalar(&curve, b"twin neg u1", b"k");
        let u2 = ecdsa::derive_scalar(&curve, b"twin neg u2", b"k");
        check_twin(id, &u1, &u2, &qx, &qy, "Q = -G");
        // u1 = u2 makes every set bit pair (1, 1): with P+Q = identity
        // the scan accumulates nothing and the result is the identity
        // (the (0, 0) sentinel).
        check_twin(id, &u1, &u1, &qx, &qy, "Q = -G, u1 = u2");
    }
}

/// Zero scalars: `e ≡ 0 (mod n)` makes `u1 = 0` in a verification, and
/// the `u1 = u2 = 0` scan must produce the identity sentinel rather
/// than converting uninitialized state.
#[test]
fn twin_mul_zero_scalars() {
    for id in [CurveId::P192, CurveId::K163] {
        let curve = id.curve();
        let dq = ecdsa::derive_scalar(&curve, b"twin zero q", b"k");
        let (qx, qy) = host_mul_g(&curve, &dq);
        let u = ecdsa::derive_scalar(&curve, b"twin zero u", b"k");
        check_twin(id, &Mp::zero(), &u, &qx, &qy, "u1 = 0");
        check_twin(id, &u, &Mp::zero(), &qx, &qy, "u2 = 0");
        check_twin(id, &Mp::zero(), &Mp::zero(), &qx, &qy, "u1 = u2 = 0");
    }
}

/// Full ECDSA sign + verify with the degenerate public keys `d = 1`
/// (`Q = G`) and `d = n-1` (`Q = -G`) — real keys a conformant signer
/// can produce, which previously corrupted the twin multiplication on
/// every simulated configuration.
#[test]
fn ecdsa_degenerate_public_keys() {
    for id in [CurveId::P192, CurveId::K163] {
        let curve = id.curve();
        let k = field_words(&curve);
        let n_minus_1 = curve.n().sub(&Mp::one());
        for d in [Mp::one(), n_minus_1] {
            let keys = Keypair::from_private(&curve, d.clone());
            let e = ecdsa::hash_to_scalar(&curve, b"degenerate-key message");
            let nonce = ecdsa::derive_scalar(&curve, b"degenerate-key nonce", b"nonce");
            let sig = ecdsa::sign_with_nonce(&curve, keys.private(), &e, &nonce).expect("nonce ok");
            assert!(
                ecdsa::verify_prehashed(&curve, &keys.public(), &e, &sig),
                "{id:?} host rejects its own signature for d={d:?}"
            );
            let (qx, qy) = match (&keys.public(), curve.kind()) {
                (ecdsa::PublicKey::Prime(p), CurveKind::Prime(_)) => prime_xy(p, k),
                (ecdsa::PublicKey::Binary(p), CurveKind::Binary(_)) => binary_xy(p, k),
                _ => unreachable!(),
            };
            for arch in archs_for(id) {
                let suite = build_suite(&curve, arch);
                let mut m = machine_for(&suite);
                write_buf(&mut m, &suite.program, "arg_e", &e.to_limbs(k));
                write_buf(&mut m, &suite.program, "arg_r", &sig.r.to_limbs(k));
                write_buf(&mut m, &suite.program, "arg_s", &sig.s.to_limbs(k));
                write_buf(&mut m, &suite.program, "arg_qx", &qx);
                write_buf(&mut m, &suite.program, "arg_qy", &qy);
                run_entry_expect(&mut m, &suite.program, "main_verify", 2_000_000_000);
                assert_eq!(
                    read_buf(&m, &suite.program, "out_ok", 1),
                    vec![1],
                    "{id:?} {arch:?} valid signature rejected for degenerate key"
                );
                // A corrupted signature must still be rejected.
                let bad_s = sig.s.add(&Mp::one()).rem(curve.n());
                let mut m = machine_for(&suite);
                write_buf(&mut m, &suite.program, "arg_e", &e.to_limbs(k));
                write_buf(&mut m, &suite.program, "arg_r", &sig.r.to_limbs(k));
                write_buf(&mut m, &suite.program, "arg_s", &bad_s.to_limbs(k));
                write_buf(&mut m, &suite.program, "arg_qx", &qx);
                write_buf(&mut m, &suite.program, "arg_qy", &qy);
                run_entry_expect(&mut m, &suite.program, "main_verify", 2_000_000_000);
                assert_eq!(
                    read_buf(&m, &suite.program, "out_ok", 1),
                    vec![0],
                    "{id:?} {arch:?} corrupted signature accepted for degenerate key"
                );
            }
        }
    }
}

/// `e ≡ 0 (mod n)`: a digest reducing to zero zeroes `u1` in the
/// verification equation. The signature stays valid and every
/// configuration must agree.
#[test]
fn ecdsa_zero_digest() {
    for id in [CurveId::P192, CurveId::K163] {
        let curve = id.curve();
        let k = field_words(&curve);
        let keys = Keypair::derive(&curve, b"zero-digest signer");
        let e = Mp::zero();
        let nonce = ecdsa::derive_scalar(&curve, b"zero-digest nonce", b"nonce");
        let sig = ecdsa::sign_with_nonce(&curve, keys.private(), &e, &nonce).expect("nonce ok");
        assert!(
            ecdsa::verify_prehashed(&curve, &keys.public(), &e, &sig),
            "{id:?} host rejects zero-digest signature"
        );
        let (qx, qy) = match (&keys.public(), curve.kind()) {
            (ecdsa::PublicKey::Prime(p), CurveKind::Prime(_)) => prime_xy(p, k),
            (ecdsa::PublicKey::Binary(p), CurveKind::Binary(_)) => binary_xy(p, k),
            _ => unreachable!(),
        };
        for arch in archs_for(id) {
            let suite = build_suite(&curve, arch);
            let mut m = machine_for(&suite);
            write_buf(&mut m, &suite.program, "arg_e", &e.to_limbs(k));
            write_buf(&mut m, &suite.program, "arg_r", &sig.r.to_limbs(k));
            write_buf(&mut m, &suite.program, "arg_s", &sig.s.to_limbs(k));
            write_buf(&mut m, &suite.program, "arg_qx", &qx);
            write_buf(&mut m, &suite.program, "arg_qy", &qy);
            run_entry_expect(&mut m, &suite.program, "main_verify", 2_000_000_000);
            assert_eq!(
                read_buf(&m, &suite.program, "out_ok", 1),
                vec![1],
                "{id:?} {arch:?} zero-digest signature rejected"
            );
        }
    }
}
