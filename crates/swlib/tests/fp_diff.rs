//! Differential tests: the prime-field assembly routines running on the
//! Pete simulator versus the `ule-mpmath` host reference.

use ule_isa::reg::Reg;
use ule_mpmath::fp::PrimeField;
use ule_mpmath::mont::Montgomery;
use ule_mpmath::mp::Mp;
use ule_mpmath::nist::NistPrime;
use ule_pete::cpu::{Machine, MachineConfig};
use ule_swlib::fp::{
    emit_cios, emit_eea_inv, emit_fadd, emit_fmul_os, emit_fmul_ps_ext, emit_fred,
    emit_fsqr_ps_ext, emit_fsub, EeaBufs,
};
use ule_swlib::gen::Gen;
use ule_swlib::harness::{read_buf, run_entry_expect, write_buf};

/// Builds a test program exposing one entry per field routine.
struct FieldProgram {
    program: ule_isa::asm::Program,
    k: usize,
}

fn build_field_program(field: &PrimeField) -> FieldProgram {
    let k = field.k();
    let mut g = Gen::new();
    // RAM buffers.
    g.a.ram_alloc("arg_a", k as u32);
    g.a.ram_alloc("arg_b", k as u32);
    g.a.ram_alloc("out", k as u32);
    g.a.ram_alloc("wide_in", 2 * k as u32);
    let wide = g.a.ram_alloc("wide", 2 * k as u32);
    let acc = g.a.ram_alloc("acc", k as u32 + 2);
    let u = g.a.ram_alloc("eea_u", k as u32 + 1);
    let v = g.a.ram_alloc("eea_v", k as u32 + 1);
    let x1 = g.a.ram_alloc("eea_x1", k as u32 + 1);
    let x2 = g.a.ram_alloc("eea_x2", k as u32 + 1);

    // Entry points.
    for (entry, routine, two_args) in [
        ("main_fadd", "fadd", true),
        ("main_fsub", "fsub", true),
        ("main_fmul", "fmul", true),
        ("main_finv", "finv_modarg", false),
    ] {
        g.a.label(entry);
        g.a.la(Reg::A0, "out");
        g.a.la(Reg::A1, "arg_a");
        if two_args {
            g.a.la(Reg::A2, "arg_b");
        } else {
            g.a.la(Reg::A2, "const_p");
        }
        g.a.jal(routine);
        g.a.nop();
        g.a.brk(0);
    }
    g.a.label("main_fred");
    g.a.la(Reg::A0, "wide_in");
    g.a.la(Reg::A1, "out");
    g.a.jal("fred");
    g.a.nop();
    g.a.brk(0);

    // Routines.
    emit_fadd(&mut g, "fadd", k, "const_p");
    emit_fsub(&mut g, "fsub", k, "const_p");
    emit_fmul_os(&mut g, "fmul", k, wide, "fred");
    emit_fred(&mut g, "fred", field, acc, "const_p");
    emit_eea_inv(&mut g, "finv_modarg", k, EeaBufs { u, v, x1, x2 });

    // Constants.
    g.a.data_label("const_p");
    g.a.words(&field.modulus().to_limbs(k));

    let program = g.a.link("main_fadd").expect("link");
    FieldProgram { program, k }
}

fn sample(field: &PrimeField, seed: u64) -> Vec<u32> {
    // xorshift-filled reduced element
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut limbs = vec![0u32; field.k() + 1];
    for l in limbs.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *l = x as u32;
    }
    field.from_mp(&Mp::from_limbs(&limbs)).limbs().to_vec()
}

fn run_binop(fp: &FieldProgram, entry: &str, a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut m = Machine::new(&fp.program, MachineConfig::baseline());
    write_buf(&mut m, &fp.program, "arg_a", a);
    write_buf(&mut m, &fp.program, "arg_b", b);
    run_entry_expect(&mut m, &fp.program, entry, 50_000_000);
    read_buf(&m, &fp.program, "out", fp.k)
}

#[test]
fn fadd_fsub_match_host_all_fields() {
    for p in NistPrime::ALL {
        let field = PrimeField::nist(p);
        let fp = build_field_program(&field);
        for seed in 0..4u64 {
            let a = sample(&field, seed + 1);
            let b = sample(&field, seed + 100);
            let ea = field.from_limbs(&a);
            let eb = field.from_limbs(&b);
            assert_eq!(
                run_binop(&fp, "main_fadd", &a, &b),
                field.add(&ea, &eb).limbs(),
                "{} fadd seed {seed}",
                p.name()
            );
            assert_eq!(
                run_binop(&fp, "main_fsub", &a, &b),
                field.sub(&ea, &eb).limbs(),
                "{} fsub seed {seed}",
                p.name()
            );
        }
    }
}

#[test]
fn fadd_edge_cases() {
    let field = PrimeField::nist(NistPrime::P192);
    let fp = build_field_program(&field);
    let k = field.k();
    let zero = vec![0u32; k];
    let pm1 = field.modulus().sub(&Mp::one()).to_limbs(k);
    // (p-1) + (p-1) mod p = p-2
    let expect = field.modulus().sub(&Mp::from_u64(2)).to_limbs(k);
    assert_eq!(run_binop(&fp, "main_fadd", &pm1, &pm1), expect);
    // 0 - (p-1) = 1
    let mut one = vec![0u32; k];
    one[0] = 1;
    assert_eq!(run_binop(&fp, "main_fsub", &zero, &pm1), one);
    // 0 + 0 = 0
    assert_eq!(run_binop(&fp, "main_fadd", &zero, &zero), zero);
}

#[test]
fn fmul_matches_host_all_fields() {
    for p in NistPrime::ALL {
        let field = PrimeField::nist(p);
        let fp = build_field_program(&field);
        for seed in 0..3u64 {
            let a = sample(&field, seed + 7);
            let b = sample(&field, seed + 77);
            let expect = field
                .mul(&field.from_limbs(&a), &field.from_limbs(&b))
                .limbs()
                .to_vec();
            assert_eq!(
                run_binop(&fp, "main_fmul", &a, &b),
                expect,
                "{} fmul seed {seed}",
                p.name()
            );
        }
    }
}

#[test]
fn fred_matches_host_on_extreme_inputs() {
    for p in NistPrime::ALL {
        let field = PrimeField::nist(p);
        let fp = build_field_program(&field);
        let k = field.k();
        let cases: Vec<Vec<u32>> = vec![vec![0u32; 2 * k], vec![u32::MAX; 2 * k], {
            let mut v = vec![0u32; 2 * k];
            v[2 * k - 1] = u32::MAX;
            v
        }];
        for wide in cases {
            let mut m = Machine::new(&fp.program, MachineConfig::baseline());
            write_buf(&mut m, &fp.program, "wide_in", &wide);
            run_entry_expect(&mut m, &fp.program, "main_fred", 10_000_000);
            let got = read_buf(&m, &fp.program, "out", k);
            let expect = field.reduce_wide(&wide).limbs().to_vec();
            assert_eq!(got, expect, "{} fred", p.name());
        }
    }
}

#[test]
fn finv_matches_host() {
    for p in [NistPrime::P192, NistPrime::P521] {
        let field = PrimeField::nist(p);
        let fp = build_field_program(&field);
        for seed in 0..2u64 {
            let a = sample(&field, seed + 13);
            let expect = field
                .inv(&field.from_limbs(&a))
                .expect("nonzero")
                .limbs()
                .to_vec();
            let got = run_binop(&fp, "main_finv", &a, &a);
            assert_eq!(got, expect, "{} finv seed {seed}", p.name());
        }
    }
}

/// Builds an ISA-extended program with product-scanning mul and squaring.
fn build_ext_program(field: &PrimeField) -> FieldProgram {
    let k = field.k();
    let mut g = Gen::new();
    g.a.ram_alloc("arg_a", k as u32);
    g.a.ram_alloc("arg_b", k as u32);
    g.a.ram_alloc("out", k as u32);
    let wide = g.a.ram_alloc("wide", 2 * k as u32);
    let acc = g.a.ram_alloc("acc", k as u32 + 2);
    g.a.label("main_fmul");
    g.a.la(Reg::A0, "out");
    g.a.la(Reg::A1, "arg_a");
    g.a.la(Reg::A2, "arg_b");
    g.a.jal("fmul");
    g.a.nop();
    g.a.brk(0);
    g.a.label("main_fsqr");
    g.a.la(Reg::A0, "out");
    g.a.la(Reg::A1, "arg_a");
    g.a.jal("fsqr");
    g.a.nop();
    g.a.brk(0);
    emit_fmul_ps_ext(&mut g, "fmul", k, wide, "fred");
    emit_fsqr_ps_ext(&mut g, "fsqr", k, wide, "fred");
    emit_fred(&mut g, "fred", field, acc, "const_p");
    g.a.data_label("const_p");
    g.a.words(&field.modulus().to_limbs(k));
    FieldProgram {
        program: g.a.link("main_fmul").expect("link"),
        k,
    }
}

#[test]
fn ext_product_scanning_matches_host() {
    for p in NistPrime::ALL {
        let field = PrimeField::nist(p);
        let fp = build_ext_program(&field);
        for seed in 0..3u64 {
            let a = sample(&field, seed + 21);
            let b = sample(&field, seed + 210);
            let expect = field
                .mul(&field.from_limbs(&a), &field.from_limbs(&b))
                .limbs()
                .to_vec();
            let mut m = Machine::new(&fp.program, MachineConfig::isa_ext());
            write_buf(&mut m, &fp.program, "arg_a", &a);
            write_buf(&mut m, &fp.program, "arg_b", &b);
            run_entry_expect(&mut m, &fp.program, "main_fmul", 10_000_000);
            assert_eq!(
                read_buf(&m, &fp.program, "out", fp.k),
                expect,
                "{} ext fmul seed {seed}",
                p.name()
            );
        }
    }
}

#[test]
fn ext_squaring_matches_host() {
    for p in NistPrime::ALL {
        let field = PrimeField::nist(p);
        let fp = build_ext_program(&field);
        for seed in 0..3u64 {
            let a = sample(&field, seed + 31);
            let expect = field.sqr(&field.from_limbs(&a)).limbs().to_vec();
            let mut m = Machine::new(&fp.program, MachineConfig::isa_ext());
            write_buf(&mut m, &fp.program, "arg_a", &a);
            run_entry_expect(&mut m, &fp.program, "main_fsqr", 10_000_000);
            assert_eq!(
                read_buf(&m, &fp.program, "out", fp.k),
                expect,
                "{} ext fsqr seed {seed}",
                p.name()
            );
        }
    }
}

#[test]
fn ext_multiplication_is_faster_than_baseline() {
    let field = PrimeField::nist(NistPrime::P192);
    let base = build_field_program(&field);
    let ext = build_ext_program(&field);
    let a = sample(&field, 42);
    let b = sample(&field, 43);
    let mut mb = Machine::new(&base.program, MachineConfig::baseline());
    write_buf(&mut mb, &base.program, "arg_a", &a);
    write_buf(&mut mb, &base.program, "arg_b", &b);
    let base_cycles = run_entry_expect(&mut mb, &base.program, "main_fmul", 10_000_000);
    let mut me = Machine::new(&ext.program, MachineConfig::isa_ext());
    write_buf(&mut me, &ext.program, "arg_a", &a);
    write_buf(&mut me, &ext.program, "arg_b", &b);
    let ext_cycles = run_entry_expect(&mut me, &ext.program, "main_fmul", 10_000_000);
    assert!(
        ext_cycles < base_cycles,
        "ext {ext_cycles} !< baseline {base_cycles}"
    );
}

#[test]
fn cios_matches_host_for_group_order() {
    // The P-192 group order: an arbitrary odd modulus with no structure.
    let n = Mp::from_hex("ffffffffffffffffffffffff99def836146bc9b1b4d22831").unwrap();
    let k = 6;
    let mont = Montgomery::new(&n);
    let mut g = Gen::new();
    g.a.ram_alloc("arg_a", k);
    g.a.ram_alloc("arg_b", k);
    g.a.ram_alloc("out", k);
    let t = g.a.ram_alloc("cios_t", k + 2);
    g.a.label("main_cios");
    g.a.la(Reg::A0, "out");
    g.a.la(Reg::A1, "arg_a");
    g.a.la(Reg::A2, "arg_b");
    g.a.jal("cios");
    g.a.nop();
    g.a.brk(0);
    emit_cios(&mut g, "cios", k as usize, mont.n0_prime(), "const_n", t);
    g.a.data_label("const_n");
    g.a.words(&n.to_limbs(k as usize));
    let program = g.a.link("main_cios").unwrap();

    for seed in 0..5u64 {
        let a = Mp::from_u64(seed.wrapping_mul(0xABCDEF987654321) | 1)
            .mul(&Mp::from_hex("fedcba9876543210f0f0f0f0").unwrap())
            .rem(&n)
            .to_limbs(k as usize);
        let b = Mp::from_u64(seed + 3)
            .mul(&Mp::from_hex("123456789abcdef55aa55aa5deadbeef").unwrap())
            .rem(&n)
            .to_limbs(k as usize);
        let mut m = Machine::new(&program, MachineConfig::baseline());
        m.ram_mut()
            .poke_words(program.ram_symbol("arg_a").unwrap(), &a);
        m.ram_mut()
            .poke_words(program.ram_symbol("arg_b").unwrap(), &b);
        let pc = program.symbol("main_cios").unwrap();
        m.set_pc(pc);
        let exit = m.run_with(ule_pete::cpu::ExecOptions::new(10_000_000));
        assert!(matches!(exit, ule_pete::cpu::RunExit::Halted { .. }));
        let got = m
            .ram()
            .peek_words(program.ram_symbol("out").unwrap(), k as usize);
        let expect = mont.mul(&a, &b);
        assert_eq!(got, expect, "cios seed {seed}");
    }
}
