//! Codegen for the Billie-accelerated configuration (§5.5): the entire
//! scalar point multiplication lives in Billie's sixteen-entry register
//! file — working point, curve constant, the four-entry sliding-window
//! table (or the three point pairs of the twin multiplication), and four
//! temporaries — exactly the property the paper credits for Billie's
//! performance advantage over prior work (§7.6).
//!
//! Register map:
//!
//! | regs  | single scalar mult      | twin mult             |
//! |-------|--------------------------|----------------------|
//! | 0–2   | working point X, Y, Z    | same                 |
//! | 3     | curve constant `b`       | same                 |
//! | 4–11  | table P/3P/5P/7P (x,y)   | G, Q, G+Q in 4–9     |
//! | 12–15 | temporaries T1–T4        | same                 |
//!
//! Pete runs the control flow (bit scanning, loop counts) and feeds
//! Billie the arithmetic; inversion is Fermat's little theorem as a
//! square-and-multiply chain through the registers (§4.2.4). Because
//! Koblitz curves have `b = 1`, multiplying by the `b` register doubles
//! as the register-file copy the ISA lacks.

use crate::gen::Gen;
use crate::point::PointCfg;
use ule_isa::reg::Reg;
use ule_mpmath::f2m::BinaryField;

const A0: Reg = Reg::A0;
const A1: Reg = Reg::A1;
const V0: Reg = Reg::V0;
const T0: Reg = Reg::T0;
const S0: Reg = Reg::S0;
const S1: Reg = Reg::S1;
const S2: Reg = Reg::S2;
const S3: Reg = Reg::S3;
const S4: Reg = Reg::S4;
const ZERO: Reg = Reg::ZERO;
const RA: Reg = Reg::RA;

// Billie register assignments.
const RX: u8 = 0;
const RY: u8 = 1;
const RZ: u8 = 2;
const RB: u8 = 3;
const TAB: [(u8, u8); 4] = [(4, 5), (6, 7), (8, 9), (10, 11)];
const T1: u8 = 12;
const T2: u8 = 13;
const T3: u8 = 14;
const T4: u8 = 15;

/// Emits the in-register LD point doubling as the routine `bil_pdbl`
/// (same formulas as §4.1's LD doubling).
fn emit_bil_pdbl(g: &mut Gen, a_is_one: bool) {
    g.a.label("bil_pdbl");
    g.a.bil_sqr(T1, RX); // x^2
    g.a.bil_sqr(T2, RZ); // z^2
    g.a.bil_mul(RZ, T1, T2); // Z3
    g.a.bil_sqr(T2, T2); // z^4
    g.a.bil_mul(T2, T2, RB); // b z^4
    g.a.bil_sqr(T1, T1); // x^4
    g.a.bil_sqr(T3, RY); // y^2
    g.a.bil_add(RX, T1, T2); // X3
    if a_is_one {
        g.a.bil_add(T3, T3, RZ);
    }
    g.a.bil_add(T3, T3, T2);
    g.a.bil_mul(T3, RX, T3);
    g.a.bil_mul(T2, T2, RZ);
    g.a.bil_add(RY, T3, T2); // Y3
    g.a.ret();
}

/// Emits one in-register mixed addition `working += (qx, qy)` routine.
fn emit_bil_padd(g: &mut Gen, label: &str, qx: u8, qy: u8, a_is_one: bool) {
    g.a.label(label);
    g.a.bil_sqr(T1, RZ); // z1sq
    g.a.bil_mul(T2, qy, T1);
    g.a.bil_add(T2, T2, RY); // A
    g.a.bil_mul(T3, qx, RZ);
    g.a.bil_add(T3, T3, RX); // B
    g.a.bil_mul(T4, RZ, T3); // C
    if a_is_one {
        g.a.bil_add(T1, T4, T1); // C + a z1sq
    }
    g.a.bil_sqr(T3, T3); // B^2
    g.a.bil_mul(T3, T3, if a_is_one { T1 } else { T4 }); // D
    g.a.bil_sqr(RZ, T4); // Z3
    g.a.bil_mul(T4, T2, T4); // E
    g.a.bil_sqr(RX, T2);
    g.a.bil_add(RX, RX, T3);
    g.a.bil_add(RX, RX, T4); // X3
    g.a.bil_mul(T3, qx, RZ);
    g.a.bil_add(T3, T3, RX); // F
    g.a.bil_add(T1, qx, qy);
    g.a.bil_sqr(T2, RZ);
    g.a.bil_mul(T1, T1, T2); // G
    g.a.bil_add(T4, T4, RZ);
    g.a.bil_mul(T4, T4, T3);
    g.a.bil_add(RY, T4, T1); // Y3
    g.a.ret();
}

/// Inline "working point = affine `(qx, qy)`" — multiplying by the `b`
/// register (which holds 1) is the register copy.
fn emit_bil_init_from(g: &mut Gen, qx: u8, qy: u8) {
    g.a.bil_mul(RX, qx, RB);
    g.a.bil_mul(RY, qy, RB);
    g.a.bil_mul(RZ, RB, RB); // Z = 1
}

/// Inline Itoh–Tsujii computation of `base^(2^(m-1) - 1)` into Billie
/// register T1 — the efficient addition-chain form of the Fermat
/// inversion `a^(2^m - 2)` (§4.2.4), which suits Billie because its
/// hardwired squarer makes the (m-1) squarings nearly free while the
/// chain needs only ~log2(m) multiplications. The chain follows the bits
/// of `m - 1`, which are known at build time, so every squaring run is a
/// counted Pete loop. Clobbers Billie T1/T2 and Pete `t0`.
fn emit_bil_ita(g: &mut Gen, m: usize, base: u8) {
    let e = m - 1;
    let bits = (0..usize::BITS - e.leading_zeros()).rev();
    let mut exp = 0usize;
    g.a.bil_mul(T1, base, RB); // T(1) = base
    for (step, i) in bits.enumerate() {
        if step == 0 {
            exp = 1;
            continue;
        }
        // T(2*exp) = T(exp)^(2^exp) * T(exp)
        g.a.bil_mul(T2, T1, RB); // copy
        let l = g.sym("ita_sq");
        g.a.li(T0, exp as i64);
        g.a.label(&l);
        g.a.bil_sqr(T2, T2);
        g.a.addiu(T0, T0, -1);
        g.a.bne(T0, ZERO, &l);
        g.a.nop();
        g.a.bil_mul(T1, T2, T1);
        exp *= 2;
        if (e >> i) & 1 == 1 {
            // T(exp+1) = T(exp)^2 * base
            g.a.bil_sqr(T1, T1);
            g.a.bil_mul(T1, T1, base);
            exp += 1;
        }
    }
    debug_assert_eq!(exp, e);
}

/// Inline to-affine: Itoh–Tsujii/Fermat inversion of Z through the
/// registers, then the coordinate multiplications into `(dx, dy)`.
/// Clobbers Billie T1/T2 and Pete `t0`.
fn emit_bil_to_affine(g: &mut Gen, m: usize, dx: u8, dy: u8) {
    emit_bil_ita(g, m, RZ);
    g.a.bil_sqr(T1, T1); // Z^{-1} = (Z^(2^(m-1)-1))^2
    g.a.bil_mul(dx, RX, T1);
    g.a.bil_sqr(T2, T1);
    g.a.bil_mul(dy, RY, T2); // y = Y / Z^2
}

/// Emits the register-resident sliding-window `scalar_mul` with the same
/// RAM interface as the shared codegen.
fn emit_bil_scalar_mul(g: &mut Gen, field: &BinaryField, cfg: &PointCfg) {
    let b = &cfg.bufs;
    let m = field.m();
    let mainloop = g.sym("bsm_main");
    let window = g.sym("bsm_win");
    let jscan = g.sym("bsm_jscan");
    let jdone = g.sym("bsm_jdone");
    let vloop = g.sym("bsm_vloop");
    let vdone = g.sym("bsm_vdone");
    let dloop = g.sym("bsm_dloop");
    let out = g.sym("bsm_out");
    let do_padd = g.sym("bsm_padd");
    let after_add = g.sym("bsm_after");

    g.a.label("scalar_mul");
    g.a.addiu(Reg::SP, Reg::SP, -32);
    g.a.sw(RA, 28, Reg::SP);
    g.a.sw(S0, 24, Reg::SP);
    g.a.sw(S1, 20, Reg::SP);
    g.a.sw(S2, 16, Reg::SP);
    g.a.sw(S3, 12, Reg::SP);
    g.a.sw(S4, 8, Reg::SP);
    // Base point into table slot 0.
    g.a.li(T0, b.sm_px as i64);
    g.a.bil_ld(T0, TAB[0].0);
    g.a.li(T0, b.sm_py as i64);
    g.a.bil_ld(T0, TAB[0].1);
    // 2P into slot 3, temporarily.
    emit_bil_init_from(g, TAB[0].0, TAB[0].1);
    g.a.jal("bil_pdbl");
    g.a.nop();
    emit_bil_to_affine(g, m, TAB[3].0, TAB[3].1);
    // 3P, 5P, 7P chained (+2P each); 7P finally overwrites the 2P slot.
    for i in 1..4usize {
        emit_bil_init_from(g, TAB[i - 1].0, TAB[i - 1].1);
        g.a.jal("bil_padd_tab3");
        g.a.nop();
        emit_bil_to_affine(g, m, TAB[i].0, TAB[i].1);
    }
    // Bit scan (the same control structure as the shared codegen).
    crate::point::emit_bitlen_for(g, b.sm_k, cfg.kn);
    g.a.addiu(S0, Reg::T8, -1); // i
    g.a.li(S3, 1); // first-window flag
    g.a.label(&mainloop);
    g.a.bltz(S0, &out);
    g.a.nop();
    crate::point::emit_get_bit_for(g, b.sm_k, S0);
    g.a.bne(V0, ZERO, &window);
    g.a.nop();
    g.a.jal("bil_pdbl");
    g.a.nop();
    g.a.addiu(S0, S0, -1);
    g.a.b(&mainloop);
    g.a.nop();
    g.a.label(&window);
    g.a.addiu(S1, S0, -2);
    g.a.bgez(S1, &jscan);
    g.a.nop();
    g.a.li(S1, 0);
    g.a.label(&jscan);
    crate::point::emit_get_bit_for(g, b.sm_k, S1);
    g.a.bne(V0, ZERO, &jdone);
    g.a.nop();
    g.a.b(&jscan);
    g.a.addiu(S1, S1, 1); // delay
    g.a.label(&jdone);
    g.a.li(S2, 0);
    g.a.mov(S4, S0);
    g.a.label(&vloop);
    crate::point::emit_get_bit_for(g, b.sm_k, S4);
    g.a.sll(S2, S2, 1);
    g.a.or(S2, S2, V0);
    g.a.beq(S4, S1, &vdone);
    g.a.nop();
    g.a.b(&vloop);
    g.a.addiu(S4, S4, -1); // delay
    g.a.label(&vdone);
    // First window: initialize the point (LD mixed addition has no
    // identity encoding to add into).
    g.a.beq(S3, ZERO, &do_padd);
    g.a.nop();
    g.a.li(S3, 0);
    g.a.srl(S4, S2, 1);
    for (i, (tx, ty)) in TAB.iter().enumerate() {
        let skip = g.sym("bsm_init_skip");
        g.a.li(T0, i as i64);
        g.a.bne(S4, T0, &skip);
        g.a.nop();
        emit_bil_init_from(g, *tx, *ty);
        g.a.label(&skip);
    }
    g.a.b(&after_add);
    g.a.nop();
    g.a.label(&do_padd);
    // width doubles, then the table addition.
    g.a.subu(S4, S0, S1);
    g.a.addiu(S4, S4, 1);
    g.a.label(&dloop);
    g.a.jal("bil_pdbl");
    g.a.nop();
    g.a.addiu(S4, S4, -1);
    g.a.bne(S4, ZERO, &dloop);
    g.a.nop();
    g.a.srl(S4, S2, 1);
    for i in 0..4usize {
        let skip = g.sym("bsm_add_skip");
        g.a.li(T0, i as i64);
        g.a.bne(S4, T0, &skip);
        g.a.nop();
        g.a.jal(&format!("bil_padd_tab{i}"));
        g.a.nop();
        g.a.label(&skip);
    }
    g.a.label(&after_add);
    g.a.addiu(S0, S1, -1);
    g.a.b(&mainloop);
    g.a.nop();
    g.a.label(&out);
    // For a nonzero scalar the first window always fired.
    emit_bil_to_affine(g, m, T3, T4);
    g.a.li(T0, b.sm_outx as i64);
    g.a.bil_st(T0, T3);
    g.a.li(T0, b.sm_outy as i64);
    g.a.bil_st(T0, T4);
    g.a.cop2sync();
    g.a.lw(RA, 28, Reg::SP);
    g.a.lw(S0, 24, Reg::SP);
    g.a.lw(S1, 20, Reg::SP);
    g.a.lw(S2, 16, Reg::SP);
    g.a.lw(S3, 12, Reg::SP);
    g.a.lw(S4, 8, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 32);
    g.a.ret();
}

/// Emits one copy of the Billie twin-multiplication main loop (bit
/// index in `S0`, first-window flag in `S3`, exits to `out`). With
/// `pq_is_identity` the `(1, 1)` bit pair adds nothing and leaves the
/// first-window flag untouched — the degenerate `Q = -G` scan, where
/// `G+Q` is the group identity (which LD mixed addition cannot encode).
fn emit_bil_twin_loop(g: &mut Gen, cfg: &PointCfg, out: &str, pq_is_identity: bool) {
    let b = &cfg.bufs;
    let (gx, gy) = (4u8, 5u8);
    let (qx, qy) = (6u8, 7u8);
    let (pqx, pqy) = (8u8, 9u8);
    let mainloop = g.sym("btw_main");
    let after = g.sym("btw_after");
    let first_init = g.sym("btw_first");
    let not_first = g.sym("btw_nf");
    let skip_dbl = g.sym("btw_skipd");
    g.a.label(&mainloop);
    g.a.bltz(S0, out);
    g.a.nop();
    g.a.bne(S3, ZERO, &skip_dbl); // doubling the identity is a no-op
    g.a.nop();
    g.a.jal("bil_pdbl");
    g.a.nop();
    g.a.label(&skip_dbl);
    crate::point::emit_get_bit_for(g, b.tw_u1, S0);
    g.a.mov(S1, V0);
    crate::point::emit_get_bit_for(g, b.tw_u2, S0);
    g.a.sll(T0, S1, 1);
    g.a.or(S2, T0, V0); // (b1 << 1) | b2
    g.a.beq(S2, ZERO, &after);
    g.a.nop();
    if pq_is_identity {
        // G+Q = identity: the (1, 1) pair adds nothing.
        g.a.li(T0, 3);
        g.a.beq(S2, T0, &after);
        g.a.nop();
    }
    g.a.bne(S3, ZERO, &first_init);
    g.a.nop();
    g.a.b(&not_first);
    g.a.nop();
    g.a.label(&first_init);
    g.a.li(S3, 0);
    let init_targets: &[(i64, (u8, u8))] = if pq_is_identity {
        &[(2, (gx, gy)), (1, (qx, qy))]
    } else {
        &[(2, (gx, gy)), (1, (qx, qy)), (3, (pqx, pqy))]
    };
    for &(code, (px, py)) in init_targets {
        let skip = g.sym("btw_iskip");
        g.a.li(T0, code);
        g.a.bne(S2, T0, &skip);
        g.a.nop();
        emit_bil_init_from(g, px, py);
        g.a.label(&skip);
    }
    g.a.b(&after);
    g.a.nop();
    g.a.label(&not_first);
    let add_targets: &[(i64, &str)] = if pq_is_identity {
        &[(2, "bil_padd_g"), (1, "bil_padd_q")]
    } else {
        &[(2, "bil_padd_g"), (1, "bil_padd_q"), (3, "bil_padd_pq")]
    };
    for &(code, routine) in add_targets {
        let skip = g.sym("btw_askip");
        g.a.li(T0, code);
        g.a.bne(S2, T0, &skip);
        g.a.nop();
        g.a.jal(routine);
        g.a.nop();
        g.a.label(&skip);
    }
    g.a.label(&after);
    g.a.addiu(S0, S0, -1);
    g.a.b(&mainloop);
    g.a.nop();
}

/// Inline scan setup: `S0 = max(bitlen u1, bitlen u2) - 1`, first-window
/// flag `S3 = 1`. Emitted per scan variant because the `Q = G` rewrite
/// changes the scalars before the scan starts.
fn emit_twin_bitlen(g: &mut Gen, cfg: &PointCfg) {
    let b = &cfg.bufs;
    crate::point::emit_bitlen_for(g, b.tw_u1, cfg.kn);
    g.a.mov(S0, Reg::T8);
    crate::point::emit_bitlen_for(g, b.tw_u2, cfg.kn);
    g.a.slt(T0, S0, Reg::T8);
    {
        let keep = g.sym("btw_keep");
        g.a.beq(T0, ZERO, &keep);
        g.a.nop();
        g.a.mov(S0, Reg::T8);
        g.a.label(&keep);
    }
    g.a.addiu(S0, S0, -1);
    g.a.li(S3, 1); // first flag
}

/// Emits the register-resident `twin_mul` with the shared RAM interface.
/// G lives at registers 4/5, Q at 6/7, G+Q at 8/9.
fn emit_bil_twin_mul(g: &mut Gen, field: &BinaryField, cfg: &PointCfg) {
    let b = &cfg.bufs;
    let m = field.m();
    let (gx, gy) = (4u8, 5u8);
    let (qx, qy) = (6u8, 7u8);
    let (pqx, pqy) = (8u8, 9u8);
    let mainloop = g.sym("btw_main");
    let out = g.sym("btw_out");
    let q_differs = g.sym("btw_qdif");
    let q_is_neg_g = g.sym("btw_qneg");
    let ident_out = g.sym("btw_iout");
    let done = g.sym("btw_done");

    g.a.label("twin_mul");
    g.a.addiu(Reg::SP, Reg::SP, -24);
    g.a.sw(RA, 20, Reg::SP);
    g.a.sw(S0, 16, Reg::SP);
    g.a.sw(S1, 12, Reg::SP);
    g.a.sw(S2, 8, Reg::SP);
    g.a.sw(S3, 4, Reg::SP);
    g.a.la(T0, "bil_gx");
    g.a.bil_ld(T0, gx);
    g.a.la(T0, "bil_gy");
    g.a.bil_ld(T0, gy);
    g.a.li(T0, b.tw_qx as i64);
    g.a.bil_ld(T0, qx);
    g.a.li(T0, b.tw_qy as i64);
    g.a.bil_ld(T0, qy);
    // The LD mixed addition degenerates silently when the operands share
    // an x-coordinate (B = 0 makes Z3 = 0 without any identity
    // encoding), so a `Q = ±G` public key must not reach `bil_padd_q` in
    // the G+Q precompute. Compare Q against G in RAM first — a generic Q
    // exits on the first mismatching word.
    {
        let scan_x = g.sym("btw_scanx");
        g.a.la(Reg::T8, "bil_gx");
        g.a.li(Reg::T4, b.tw_qx as i64);
        g.a.li(Reg::T9, cfg.k as i64);
        g.a.label(&scan_x);
        g.a.lw(T0, 0, Reg::T8);
        g.a.lw(Reg::T1, 0, Reg::T4);
        g.a.bne(T0, Reg::T1, &q_differs);
        g.a.addiu(Reg::T8, Reg::T8, 4); // delay
        g.a.addiu(Reg::T4, Reg::T4, 4);
        g.a.addiu(Reg::T9, Reg::T9, -1);
        g.a.bne(Reg::T9, ZERO, &scan_x);
        g.a.nop();
    }
    {
        // x(Q) == x(G), so Q = ±G; the y-coordinate decides which.
        let scan_y = g.sym("btw_scany");
        g.a.la(Reg::T8, "bil_gy");
        g.a.li(Reg::T4, b.tw_qy as i64);
        g.a.li(Reg::T9, cfg.k as i64);
        g.a.label(&scan_y);
        g.a.lw(T0, 0, Reg::T8);
        g.a.lw(Reg::T1, 0, Reg::T4);
        g.a.bne(T0, Reg::T1, &q_is_neg_g);
        g.a.addiu(Reg::T8, Reg::T8, 4); // delay
        g.a.addiu(Reg::T4, Reg::T4, 4);
        g.a.addiu(Reg::T9, Reg::T9, -1);
        g.a.bne(Reg::T9, ZERO, &scan_y);
        g.a.nop();
    }
    // Q = G: the twin collapses to `(u1 + u2) G`. Scanning the summed
    // scalar instead sidesteps mid-scan operand collisions — with both
    // points multiples of G the accumulator `t G` hits the addend
    // (`t = 1` or `2`) for realistic scalar prefixes, and the guardless
    // LD addition cannot represent the resulting doubling. With
    // `tw_u2 = 0` every addend is `G` after at least one doubling, so
    // `t` is even and ≥ 2 at each addition and never equals 1.
    {
        g.a.li(A0, b.tw_u1 as i64);
        g.a.li(A1, b.tw_u1 as i64);
        g.a.li(Reg::A2, b.tw_u2 as i64);
        g.a.jal("nadd");
        g.a.nop();
        let zloop = g.sym("btw_u2z");
        g.a.li(Reg::T4, b.tw_u2 as i64);
        g.a.li(Reg::T9, cfg.kn as i64);
        g.a.label(&zloop);
        g.a.sw(ZERO, 0, Reg::T4);
        g.a.addiu(Reg::T4, Reg::T4, 4);
        g.a.addiu(Reg::T9, Reg::T9, -1);
        g.a.bne(Reg::T9, ZERO, &zloop);
        g.a.nop();
    }
    g.a.b(&mainloop);
    g.a.nop();
    g.a.label(&q_differs);
    // G + Q into (8, 9).
    emit_bil_init_from(g, gx, gy);
    g.a.jal("bil_padd_q");
    g.a.nop();
    emit_bil_to_affine(g, m, pqx, pqy);
    // G - Q for cost parity with the paper's signed-digit variant
    // (same operation count; result discarded into the temporaries).
    emit_bil_init_from(g, gx, gy);
    g.a.jal("bil_padd_q");
    g.a.nop();
    emit_bil_to_affine(g, m, T3, T4);
    g.a.label(&mainloop);
    emit_twin_bitlen(g, cfg);
    emit_bil_twin_loop(g, cfg, &out, false);
    g.a.label(&q_is_neg_g);
    // Q = -G: G+Q is the identity; run the scan with the (1, 1) pair as
    // a no-op. No precompute is needed.
    emit_twin_bitlen(g, cfg);
    emit_bil_twin_loop(g, cfg, &out, true);
    g.a.label(&out);
    // A scan that never initialized the working point (zero scalars, or
    // every set pair (1, 1) with Q = -G) yields the group identity:
    // store the (0, 0) sentinel instead of inverting uninitialized
    // registers.
    g.a.bne(S3, ZERO, &ident_out);
    g.a.nop();
    emit_bil_to_affine(g, m, T3, T4);
    g.a.li(T0, b.tw_outx as i64);
    g.a.bil_st(T0, T3);
    g.a.li(T0, b.tw_outy as i64);
    g.a.bil_st(T0, T4);
    g.a.cop2sync();
    g.a.b(&done);
    g.a.nop();
    g.a.label(&ident_out);
    {
        let zloop = g.sym("btw_zero");
        g.a.li(Reg::T4, b.tw_outx as i64);
        g.a.li(Reg::T8, b.tw_outy as i64);
        g.a.li(Reg::T9, cfg.k as i64);
        g.a.label(&zloop);
        g.a.sw(ZERO, 0, Reg::T4);
        g.a.sw(ZERO, 0, Reg::T8);
        g.a.addiu(Reg::T4, Reg::T4, 4);
        g.a.addiu(Reg::T8, Reg::T8, 4);
        g.a.addiu(Reg::T9, Reg::T9, -1);
        g.a.bne(Reg::T9, ZERO, &zloop);
        g.a.nop();
        g.a.cop2sync();
    }
    g.a.label(&done);
    g.a.lw(RA, 20, Reg::SP);
    g.a.lw(S0, 16, Reg::SP);
    g.a.lw(S1, 12, Reg::SP);
    g.a.lw(S2, 8, Reg::SP);
    g.a.lw(S3, 4, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 24);
    g.a.ret();
}

/// Emits every Billie binding: `arch_init`, the register-resident point
/// code and scalar/twin multiplications, and RAM-interface field-op
/// wrappers used by the micro entries and differential tests.
pub fn emit_billie_bindings(g: &mut Gen, field: &BinaryField, cfg: &PointCfg) {
    let a_is_one = matches!(cfg.family, crate::point::Family::Binary { a_is_one: true });
    let m = field.m();
    // RAM-resident constants (Billie's LSU reaches only the shared RAM).
    g.a.ram_alloc("bil_b", cfg.k as u32);
    g.a.ram_alloc("bil_gx", cfg.k as u32);
    g.a.ram_alloc("bil_gy", cfg.k as u32);

    g.a.label("arch_init");
    g.a.addiu(Reg::SP, Reg::SP, -8);
    g.a.sw(RA, 4, Reg::SP);
    for (ram, rom) in [
        ("bil_b", "const_b"),
        ("bil_gx", "const_gx"),
        ("bil_gy", "const_gy"),
    ] {
        g.a.la(A0, ram);
        g.a.la(A1, rom);
        g.a.jal("fcopy");
        g.a.nop();
    }
    g.a.la(T0, "bil_b");
    g.a.bil_ld(T0, RB);
    g.a.cop2sync();
    g.a.lw(RA, 4, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 8);
    g.a.ret();

    // Point routines.
    emit_bil_pdbl(g, a_is_one);
    for (i, (tx, ty)) in TAB.iter().enumerate() {
        emit_bil_padd(g, &format!("bil_padd_tab{i}"), *tx, *ty, a_is_one);
    }
    emit_bil_padd(g, "bil_padd_g", 4, 5, a_is_one);
    emit_bil_padd(g, "bil_padd_q", 6, 7, a_is_one);
    emit_bil_padd(g, "bil_padd_pq", 8, 9, a_is_one);
    emit_bil_scalar_mul(g, field, cfg);
    emit_bil_twin_mul(g, field, cfg);

    // Field-op wrappers over the register file.
    g.a.label("fmul");
    g.a.bil_ld(A1, T1);
    g.a.bil_ld(Reg::A2, T2);
    g.a.bil_mul(T3, T1, T2);
    g.a.bil_st(A0, T3);
    g.a.cop2sync();
    g.a.ret();
    g.a.label("fsqr");
    g.a.bil_ld(A1, T1);
    g.a.bil_sqr(T3, T1);
    g.a.bil_st(A0, T3);
    g.a.cop2sync();
    g.a.ret();
    g.a.label("fsub");
    g.a.label("fadd");
    g.a.bil_ld(A1, T1);
    g.a.bil_ld(Reg::A2, T2);
    g.a.bil_add(T3, T1, T2);
    g.a.bil_st(A0, T3);
    g.a.cop2sync();
    g.a.ret();
    // finv: Itoh–Tsujii/Fermat through the registers (base in T3).
    {
        g.a.label("finv");
        g.a.bil_ld(A1, T3); // base
        emit_bil_ita(g, m, T3);
        g.a.bil_sqr(T1, T1);
        g.a.bil_st(A0, T1);
        g.a.cop2sync();
        g.a.ret();
    }
    g.a.label("fsync");
    g.a.cop2sync();
    g.a.ret();
    g.a.label("fin");
    g.a.j("fcopy");
    g.a.nop();
    g.a.label("fout");
    g.a.j("fcopy");
    g.a.nop();

    // RAM-interface point shims so the shared micro entries
    // (`main_pdbl`/`main_padd`) exercise Billie too.
    g.a.label("pt_set_affine");
    g.a.bil_ld(A0, RX);
    g.a.bil_ld(A1, RY);
    g.a.bil_mul(RZ, RB, RB); // Z = 1
    g.a.ret();
    g.a.label("pdbl");
    g.a.j("bil_pdbl");
    g.a.nop();
    g.a.label("padd");
    g.a.bil_ld(A0, 6);
    g.a.bil_ld(A1, 7);
    g.a.j("bil_padd_q");
    g.a.nop();
    g.a.label("pt_to_affine");
    emit_bil_to_affine(g, m, T3, T4);
    g.a.bil_st(A0, T3);
    g.a.bil_st(A1, T4);
    g.a.cop2sync();
    g.a.ret();
}
