//! Code-generation helpers shared by every routine emitter.

use ule_isa::asm::Asm;
use ule_isa::reg::Reg;

/// An assembler plus a symbol counter, so routine emitters can create
/// unique internal labels.
#[derive(Debug, Default)]
pub struct Gen {
    /// The underlying assembler.
    pub a: Asm,
    counter: u32,
}

impl Gen {
    /// Fresh generator.
    pub fn new() -> Self {
        Gen::default()
    }

    /// A unique label derived from `base`.
    pub fn sym(&mut self, base: &str) -> String {
        self.counter += 1;
        format!(".L{}_{}", base, self.counter)
    }

    /// Emits a standard routine prologue saving `ra` and `saved` s-registers
    /// on the stack. Returns the frame size for the matching epilogue.
    pub fn prologue(&mut self, saved: &[Reg]) -> i16 {
        let frame = (4 * (saved.len() + 1)).next_multiple_of(8) as i16;
        self.a.addiu(Reg::SP, Reg::SP, -frame);
        self.a.sw(Reg::RA, frame - 4, Reg::SP);
        for (i, &r) in saved.iter().enumerate() {
            self.a.sw(r, frame - 8 - (4 * i as i16), Reg::SP);
        }
        frame
    }

    /// Emits the matching epilogue and `jr ra`.
    pub fn epilogue(&mut self, saved: &[Reg], frame: i16) {
        self.a.lw(Reg::RA, frame - 4, Reg::SP);
        for (i, &r) in saved.iter().enumerate() {
            self.a.lw(r, frame - 8 - (4 * i as i16), Reg::SP);
        }
        self.a.addiu(Reg::SP, Reg::SP, frame);
        self.a.ret();
    }
}

/// Emits an inline word-copy loop: `dst[0..k] = src[0..k]`.
///
/// Clobbers `t8`, `t9`, `v1`, and advances copies of the pointer registers
/// internally (the argument registers themselves are preserved).
pub fn emit_copy_words(g: &mut Gen, dst: Reg, src: Reg, k: usize) {
    let loop_l = g.sym("copy");
    g.a.mov(Reg::T8, src);
    g.a.mov(Reg::V1, dst);
    g.a.li(Reg::T9, k as i64);
    g.a.label(&loop_l);
    g.a.lw(Reg::AT, 0, Reg::T8);
    g.a.addiu(Reg::T8, Reg::T8, 4);
    g.a.addiu(Reg::T9, Reg::T9, -1);
    g.a.sw(Reg::AT, 0, Reg::V1);
    g.a.bne(Reg::T9, Reg::ZERO, &loop_l);
    g.a.addiu(Reg::V1, Reg::V1, 4); // delay slot
}

/// Emits an inline zero-fill loop: `dst[0..k] = 0`.
///
/// Clobbers `t9`, `v1`.
pub fn emit_zero_words(g: &mut Gen, dst: Reg, k: usize) {
    let loop_l = g.sym("zero");
    g.a.mov(Reg::V1, dst);
    g.a.li(Reg::T9, k as i64);
    g.a.label(&loop_l);
    g.a.sw(Reg::ZERO, 0, Reg::V1);
    g.a.addiu(Reg::T9, Reg::T9, -1);
    g.a.bne(Reg::T9, Reg::ZERO, &loop_l);
    g.a.addiu(Reg::V1, Reg::V1, 4); // delay slot
}
