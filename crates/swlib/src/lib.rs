//! The cryptographic **software suite** of the study, written against the
//! `ule-isa` assembly DSL and run on the `ule-pete` simulator.
//!
//! This crate plays the role of the paper's compiled C++ ECDSA suite
//! (§4.3): multi-precision field arithmetic, NIST fast reduction, comb
//! multiplication, extended-Euclidean inversion, mixed-coordinate point
//! operations, sliding-window and twin scalar multiplication, and the
//! ECDSA protocol arithmetic modulo the group order — one program image
//! per (curve × architecture) configuration:
//!
//! * [`Arch::Baseline`] — pure software on Pete (operand scanning /
//!   comb multiplication, §4.2);
//! * [`Arch::IsaExt`] — product scanning on the `MADDU`/`SHA` extensions
//!   for GF(p) and `MULGF2`/`MADDGF2` for GF(2^m) (§5.2);
//! * [`Arch::Monte`] — prime-field arithmetic dispatched to the Monte
//!   coprocessor in the Montgomery domain (§5.4);
//! * [`Arch::Billie`] — binary-field scalar multiplication living in
//!   Billie's register file (§5.5).
//!
//! For the X25519/X448 workloads the [`xdh`] module emits the RFC 7748
//! Montgomery-ladder suite against the same field-routine bindings, so
//! one ladder-step skeleton serves every architecture and both special
//! primes.
//!
//! Every routine is differentially tested against the `ule-mpmath` /
//! `ule-curves` host reference on the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod billie_glue;
pub mod builder;
pub mod f2m;
pub mod fp;
pub mod gen;
pub mod harness;
pub mod monte_glue;
pub mod point;
pub mod xdh;

pub use builder::{build_suite, Arch, Suite};
