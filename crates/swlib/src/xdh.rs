//! RFC 7748 Montgomery-ladder codegen (`main_xdh`).
//!
//! One ladder-step skeleton, written against the *bound field-routine
//! labels* (`fmul`/`fsqr`/`fadd`/`fsub`/`finv`/`fin`/`fout`/`fsync`),
//! serves every supported configuration: the builder binds those labels
//! to the baseline software routines, the ISA-extended ones, or Monte
//! COP2 command sequences — the same parameterization trick as
//! [`crate::point`], so the two field forms (2^255−19 and
//! 2^448−2^224−1) share all of the ladder code and differ only in the
//! emitted constants and widths.
//!
//! Kernel contract (mirrored bit-for-bit by
//! `ule_curves::montgomery::MontCurve`):
//!
//! * `arg_k` holds the **raw** scalar; `xdh_clamp` applies the RFC 7748
//!   clamp in place of the host's byte-level clamp (same bits, word
//!   ops), so the ladder's iteration count is a build-time constant
//!   (255 / 448) anchored at the forced top bit;
//! * `arg_qx` holds the peer's `u`-coordinate already decoded and
//!   reduced mod p (byte-level masking is host-side marshalling);
//! * `cswap` is a branch-free masked XOR swap
//!   (`mask = 0 − bit; t = mask & (a[i] ^ b[i])`), executed every
//!   iteration regardless of the bit — the constant-pattern contract;
//! * the result is `x2 · z2^(p−2)`; a low-order peer point collapses
//!   `z2` to zero and the kernel writes the all-zero secret (checked
//!   via `fisz`, which synchronizes with the accelerator), which the
//!   protocol layer rejects — the EEA-based `finv` binding is never fed
//!   zero.

use crate::gen::{emit_zero_words, Gen};
use ule_isa::reg::Reg;

const A0: Reg = Reg::A0;
const A1: Reg = Reg::A1;
const A2: Reg = Reg::A2;
const V0: Reg = Reg::V0;
const T0: Reg = Reg::T0;
const T1: Reg = Reg::T1;
const T2: Reg = Reg::T2;
const T3: Reg = Reg::T3;
const T4: Reg = Reg::T4;
const T5: Reg = Reg::T5;
const T9: Reg = Reg::T9;
const S0: Reg = Reg::S0;
const S1: Reg = Reg::S1;
const S2: Reg = Reg::S2;
const ZERO: Reg = Reg::ZERO;

/// RAM buffers of the ladder suite (allocated by the builder).
#[derive(Clone, Copy, Debug)]
#[allow(missing_docs)]
pub struct XdhBufs {
    /// Raw scalar argument (k words, little-endian).
    pub arg_k: u32,
    /// Peer `u`-coordinate argument (reduced mod p).
    pub arg_qx: u32,
    /// Second field-operand argument (micro entries only).
    pub arg_qy: u32,
    /// Shared-secret output.
    pub out_r: u32,
    /// Clamped scalar.
    pub xk: u32,
    /// Ladder state: the fixed `u` plus the two running points.
    pub x1: u32,
    pub x2: u32,
    pub z2: u32,
    pub x3: u32,
    pub z3: u32,
    /// Field temporaries for the ladder step.
    pub t: [u32; 8],
}

/// Everything the ladder codegen needs.
#[derive(Clone, Copy, Debug)]
pub struct XdhCfg {
    /// Field element width in words (8 / 14).
    pub k: usize,
    /// Ladder iteration count == prime bit length (255 / 448).
    pub bits: usize,
    /// The buffers.
    pub bufs: XdhBufs,
}

/// Emits argument setup plus `jal routine; nop` (the [`crate::point`]
/// calling idiom: `a0` = destination, `a1`/`a2` = sources).
fn fcall(g: &mut Gen, routine: &str, args: &[(Reg, u32)]) {
    for &(reg, addr) in args {
        g.a.li(reg, addr as i64);
    }
    g.a.jal(routine);
    g.a.nop();
}

fn mul(g: &mut Gen, dst: u32, s1: u32, s2: u32) {
    fcall(g, "fmul", &[(A0, dst), (A1, s1), (A2, s2)]);
}
fn sqr(g: &mut Gen, dst: u32, s1: u32) {
    fcall(g, "fsqr", &[(A0, dst), (A1, s1)]);
}
fn add(g: &mut Gen, dst: u32, s1: u32, s2: u32) {
    fcall(g, "fadd", &[(A0, dst), (A1, s1), (A2, s2)]);
}
fn sub(g: &mut Gen, dst: u32, s1: u32, s2: u32) {
    fcall(g, "fsub", &[(A0, dst), (A1, s1), (A2, s2)]);
}
fn copy(g: &mut Gen, dst: u32, s1: u32) {
    fcall(g, "fcopy", &[(A0, dst), (A1, s1)]);
}

/// Emits `cswap`: branch-free conditional swap of two k-word buffers.
///
/// `a0` = first buffer, `a1` = second, `a2` = the swap bit (0 or 1).
/// `mask = 0 − bit` is all-ones or all-zero; every word of both buffers
/// is read, XOR-masked, and written back regardless of the bit, so the
/// memory-access pattern is independent of the scalar. Leaf routine;
/// clobbers `t0..t5`, `t9`.
pub fn emit_cswap(g: &mut Gen, label: &str, k: usize) {
    let loop_l = g.sym("cswap_l");
    g.a.label(label);
    g.a.subu(T5, ZERO, A2);
    g.a.mov(T3, A0);
    g.a.mov(T4, A1);
    g.a.li(T9, k as i64);
    g.a.label(&loop_l);
    g.a.lw(T0, 0, T3);
    g.a.lw(T1, 0, T4);
    g.a.xor(T2, T0, T1);
    g.a.and(T2, T2, T5);
    g.a.xor(T0, T0, T2);
    g.a.xor(T1, T1, T2);
    g.a.sw(T0, 0, T3);
    g.a.sw(T1, 0, T4);
    g.a.addiu(T3, T3, 4);
    g.a.addiu(T4, T4, 4);
    g.a.addiu(T9, T9, -1);
    g.a.bne(T9, ZERO, &loop_l);
    g.a.nop();
    g.a.ret();
}

/// Emits `xdh_clamp`: copy `arg_k` into `xk`, then apply the RFC 7748
/// clamp with word operations — X25519 clears the 3 low bits and bit
/// 255 and sets bit 254; X448 clears the 2 low bits and sets bit 447.
fn emit_clamp(g: &mut Gen, cfg: &XdhCfg) {
    let b = &cfg.bufs;
    let frame = {
        g.a.label("xdh_clamp");
        g.prologue(&[])
    };
    copy(g, b.xk, b.arg_k);
    g.a.li(T4, b.xk as i64);
    // Low word: clear the cofactor bits.
    let low_clear = if cfg.bits == 255 { 3 } else { 2 };
    g.a.lw(T0, 0, T4);
    g.a.srl(T0, T0, low_clear);
    g.a.sll(T0, T0, low_clear);
    g.a.sw(T0, 0, T4);
    // Top word: force the fixed ladder anchor bit.
    let top_off = (4 * (cfg.k - 1)) as i16;
    g.a.lw(T0, top_off, T4);
    if cfg.bits == 255 {
        // clear bit 31 of word 7, set bit 30.
        g.a.sll(T0, T0, 1);
        g.a.srl(T0, T0, 1);
        g.a.lui(T1, 0x4000);
    } else {
        // set bit 31 of word 13.
        g.a.lui(T1, 0x8000);
    }
    g.a.or(T0, T0, T1);
    g.a.sw(T0, top_off, T4);
    g.epilogue(&[], frame);
}

/// Emits `xdh_step`: one RFC 7748 ladder step over the bound field
/// routines — 5 mul + 4 sqr + the `a24` constant multiplication +
/// 4 add + 4 sub, the same fixed pattern every iteration.
fn emit_step(g: &mut Gen, cfg: &XdhCfg) {
    let b = cfg.bufs;
    let [t1, t2, t3, t4, t5, t6, t7, t8] = b.t;
    let frame = {
        g.a.label("xdh_step");
        g.prologue(&[])
    };
    add(g, t1, b.x2, b.z2); // A  = x2 + z2
    sub(g, t2, b.x2, b.z2); // B  = x2 - z2
    sqr(g, t3, t1); //          AA = A^2
    sqr(g, t4, t2); //          BB = B^2
    mul(g, b.x2, t3, t4); //    x2 = AA * BB
    sub(g, t5, t3, t4); //      E  = AA - BB
    add(g, t6, b.x3, b.z3); //  C  = x3 + z3
    sub(g, t7, b.x3, b.z3); //  D  = x3 - z3
    mul(g, t7, t7, t1); //      DA = D * A
    mul(g, t6, t6, t2); //      CB = C * B
    add(g, t8, t7, t6); //      DA + CB
    sqr(g, b.x3, t8); //        x3 = (DA + CB)^2
    sub(g, t8, t7, t6); //      DA - CB
    sqr(g, t8, t8); //          (DA - CB)^2
    mul(g, b.z3, b.x1, t8); //  z3 = x1 * (DA - CB)^2

    // z2 = E * (AA + a24 * E); the a24 multiply goes through the
    // arch-bound `fmula24` (Monte's special-form fold microprogram, or
    // a plain `fmul` by `const_a24` on the software tiers).
    fcall(g, "fmula24", &[(A0, t8), (A1, t5)]);
    // dst must alias the FIRST operand (fadd copies a over dst before
    // adding b), so t8 += AA is written t8 = t8 + t3.
    add(g, t8, t8, t3);
    mul(g, b.z2, t5, t8);
    g.epilogue(&[], frame);
}

/// Emits `xdh_ladder`: the fixed-iteration ladder driver. Processes
/// scalar bits `bits−1 .. 0`, maintaining the RFC swap variable so each
/// iteration performs exactly one pair of cswaps and one ladder step;
/// ends with the final cswap pair.
fn emit_ladder(g: &mut Gen, cfg: &XdhCfg) {
    let b = cfg.bufs;
    let saved = [S0, S1, S2];
    let loop_l = g.sym("xdh_bit");
    g.a.label("xdh_ladder");
    let frame = g.prologue(&saved);
    g.a.li(S0, (cfg.bits - 1) as i64);
    g.a.li(S1, 0);
    g.a.label(&loop_l);
    // kt = bit S0 of the clamped scalar.
    g.a.srl(T0, S0, 5);
    g.a.sll(T0, T0, 2);
    g.a.li(T1, b.xk as i64);
    g.a.addu(T0, T0, T1);
    g.a.lw(T0, 0, T0);
    g.a.andi(T1, S0, 31);
    g.a.srlv(T0, T0, T1);
    g.a.andi(S2, T0, 1);
    // swap ^= kt; cswap both point pairs; swap = kt.
    g.a.xor(S1, S1, S2);
    // Pete reads accelerator-written state: drain Monte first.
    g.a.jal("fsync");
    g.a.nop();
    g.a.li(A0, b.x2 as i64);
    g.a.li(A1, b.x3 as i64);
    g.a.mov(A2, S1);
    g.a.jal("cswap");
    g.a.nop();
    g.a.li(A0, b.z2 as i64);
    g.a.li(A1, b.z3 as i64);
    g.a.mov(A2, S1);
    g.a.jal("cswap");
    g.a.nop();
    g.a.mov(S1, S2);
    g.a.jal("xdh_step");
    g.a.nop();
    g.a.addiu(S0, S0, -1);
    g.a.bgez(S0, &loop_l);
    g.a.nop();
    // Final conditional swap.
    g.a.jal("fsync");
    g.a.nop();
    g.a.li(A0, b.x2 as i64);
    g.a.li(A1, b.x3 as i64);
    g.a.mov(A2, S1);
    g.a.jal("cswap");
    g.a.nop();
    g.a.li(A0, b.z2 as i64);
    g.a.li(A1, b.z3 as i64);
    g.a.mov(A2, S1);
    g.a.jal("cswap");
    g.a.nop();
    g.epilogue(&saved, frame);
}

/// Emits the complete ladder suite: `cswap`, `xdh_clamp`, `xdh_step`,
/// `xdh_ladder`, and the `main_xdh` entry (arch init, clamp, ladder,
/// final inversion, output).
pub fn emit_xdh_suite(g: &mut Gen, cfg: &XdhCfg) {
    let b = cfg.bufs;
    let zero_out = g.sym("xdh_zero");
    let done = g.sym("xdh_done");
    g.a.label("main_xdh");
    g.a.jal("arch_init");
    g.a.nop();
    g.a.jal("xdh_clamp");
    g.a.nop();
    // x1 = fin(arg_qx); (x2,z2) = (1,0); (x3,z3) = (x1,1) — all in the
    // active domain (const_one is the Montgomery-domain one on Monte).
    fcall(g, "fin", &[(A0, b.x1), (A1, b.arg_qx)]);
    copy(g, b.x3, b.x1);
    fcall(g, "fcopy", &[(A0, b.x2)]);
    g.a.la(A1, "const_one");
    g.a.jal("fcopy");
    g.a.nop();
    fcall(g, "fcopy", &[(A0, b.z2)]);
    g.a.la(A1, "const_zero");
    g.a.jal("fcopy");
    g.a.nop();
    fcall(g, "fcopy", &[(A0, b.z3)]);
    g.a.la(A1, "const_one");
    g.a.jal("fcopy");
    g.a.nop();
    g.a.jal("xdh_ladder");
    g.a.nop();
    // Low-order peer point: z2 == 0, emit the all-zero secret (the
    // protocol layer rejects it) without feeding zero to finv.
    fcall(g, "fisz", &[(A0, b.z2)]);
    g.a.bne(V0, ZERO, &zero_out);
    g.a.nop();
    fcall(g, "finv", &[(A0, b.t[0]), (A1, b.z2)]);
    mul(g, b.t[1], b.x2, b.t[0]);
    fcall(g, "fout", &[(A0, b.out_r), (A1, b.t[1])]);
    g.a.b(&done);
    g.a.nop();
    g.a.label(&zero_out);
    g.a.li(T0, b.out_r as i64);
    emit_zero_words(g, T0, cfg.k);
    g.a.label(&done);
    g.a.brk(0);

    emit_cswap(g, "cswap", cfg.k);
    emit_clamp(g, cfg);
    emit_step(g, cfg);
    emit_ladder(g, cfg);
}
