//! Binary-field GF(2^m) assembly routines (§4.2.2–4.2.4).
//!
//! Baseline tier (no carry-less hardware — the configuration the paper
//! shows to be 6.4–8.5× *worse* than the ISA-extended one, §7.2):
//!
//! * [`emit_f2m_add`] — bitwise XOR, no reduction;
//! * [`emit_f2m_mul_comb`] — left-to-right comb multiplication with 4-bit
//!   windows (Algorithm 6), with the 16-entry precomputation table in RAM;
//! * [`emit_f2m_sqr_table`] — squaring via the 8-bit → 16-bit
//!   zero-interleaving table in ROM (§4.2.3);
//!
//! ISA-extension tier (Table 5.2):
//!
//! * [`emit_f2m_mul_ps_ext`] — carry-less product scanning with
//!   `MADDGF2`/`SHA`;
//! * [`emit_f2m_sqr_ext`] — squaring with `MULGF2` (a carry-less square is
//!   exactly the zero-interleaved spread);
//!
//! plus the shared word-level fast reduction ([`emit_f2m_red`],
//! Algorithm 7 generalized over the field's term list) and the polynomial
//! extended Euclidean inversion ([`emit_f2m_eea_inv`]).

use crate::gen::{emit_copy_words, emit_zero_words, Gen};
use ule_isa::reg::Reg;
use ule_mpmath::f2m::BinaryField;

const A0: Reg = Reg::A0;
const A1: Reg = Reg::A1;
const A2: Reg = Reg::A2;
const A3: Reg = Reg::A3;
const V1: Reg = Reg::V1;
const T0: Reg = Reg::T0;
const T1: Reg = Reg::T1;
const T2: Reg = Reg::T2;
const T3: Reg = Reg::T3;
const T4: Reg = Reg::T4;
const T5: Reg = Reg::T5;
const T6: Reg = Reg::T6;
const T7: Reg = Reg::T7;
const T8: Reg = Reg::T8;
const T9: Reg = Reg::T9;
const S0: Reg = Reg::S0;
const S1: Reg = Reg::S1;
const S2: Reg = Reg::S2;
const S3: Reg = Reg::S3;
const S4: Reg = Reg::S4;
const S5: Reg = Reg::S5;
const ZERO: Reg = Reg::ZERO;
const RA: Reg = Reg::RA;

/// Emits `label: dst = a + b` in GF(2^m) — a word-wise XOR loop; addition
/// and subtraction are the same operation (§2.1.4).
///
/// ABI: `a0`=dst, `a1`=a, `a2`=b. Leaf.
pub fn emit_f2m_add(g: &mut Gen, label: &str, k: usize) {
    let l = g.sym("xadd");
    g.a.label(label);
    g.a.li(T9, k as i64);
    g.a.label(&l);
    g.a.lw(T0, 0, A1);
    g.a.lw(T1, 0, A2);
    g.a.xor(T2, T0, T1);
    g.a.sw(T2, 0, A0);
    g.a.addiu(A1, A1, 4);
    g.a.addiu(A2, A2, 4);
    g.a.addiu(T9, T9, -1);
    g.a.bne(T9, ZERO, &l);
    g.a.addiu(A0, A0, 4); // delay
    g.a.ret();
}

/// Emits the word-level fast reduction (Algorithm 7, generalized):
/// `label: dst[0..k] = wide[0..wide_words] mod f(x)`.
///
/// The per-term shift amounts are compile-time constants (they depend
/// only on `m - t mod 32`), so the fold is a tight pointer loop.
///
/// ABI: `a0`=wide (`wide_words` words, clobbered in place), `a1`=dst.
/// Leaf.
pub fn emit_f2m_red(g: &mut Gen, label: &str, field: &BinaryField, wide_words: usize) {
    let m = field.m();
    let k = field.k();
    let kw = m / 32;
    let r = (m % 32) as u8;
    assert!(r != 0, "NIST binary fields never sit on a word boundary");
    // Per-term constants: writing T at bit s = 32*i - (m - t):
    //   word = i - dw, off = s % 32 (independent of i).
    let consts: Vec<(usize, u8)> = field
        .terms()
        .iter()
        .map(|&t| {
            let q = m - t; // >= 32 for every NIST field
            let dw = q.div_ceil(32);
            let off = ((32 * dw) - q) % 32;
            (dw, off as u8)
        })
        .collect();
    let fold = g.sym("f2red_fold");
    let skip = g.sym("f2red_skip");
    g.a.label(label);
    // Pointer to c[i], descending from the top word to c[kw+1].
    g.a.addiu(T6, A0, ((wide_words - 1) * 4) as i16);
    g.a.addiu(T7, A0, (kw * 4) as i16); // stop pointer (exclusive)
    g.a.label(&fold);
    g.a.lw(T1, 0, T6); // T = c[i]
    g.a.beq(T1, ZERO, &skip);
    g.a.nop();
    g.a.sw(ZERO, 0, T6);
    for &(dw, off) in &consts {
        let lo_off = -((dw * 4) as i16);
        if off == 0 {
            g.a.lw(T2, lo_off, T6);
            g.a.xor(T2, T2, T1);
            g.a.sw(T2, lo_off, T6);
        } else {
            g.a.sll(T3, T1, off);
            g.a.lw(T2, lo_off, T6);
            g.a.xor(T2, T2, T3);
            g.a.sw(T2, lo_off, T6);
            g.a.srl(T3, T1, 32 - off);
            g.a.lw(T2, lo_off + 4, T6);
            g.a.xor(T2, T2, T3);
            g.a.sw(T2, lo_off + 4, T6);
        }
    }
    g.a.label(&skip);
    g.a.addiu(T6, T6, -4);
    g.a.bne(T6, T7, &fold);
    g.a.nop();
    // Partial top word: T = c[kw] >> r.
    g.a.lw(T0, (kw * 4) as i16, A0);
    g.a.srl(T1, T0, r);
    let pskip = g.sym("f2red_pskip");
    g.a.beq(T1, ZERO, &pskip);
    g.a.nop();
    for &t in field.terms() {
        let (w, off) = (t / 32, (t % 32) as u8);
        if off == 0 {
            g.a.lw(T2, (w * 4) as i16, A0);
            g.a.xor(T2, T2, T1);
            g.a.sw(T2, (w * 4) as i16, A0);
        } else {
            g.a.sll(T3, T1, off);
            g.a.lw(T2, (w * 4) as i16, A0);
            g.a.xor(T2, T2, T3);
            g.a.sw(T2, (w * 4) as i16, A0);
            g.a.srl(T3, T1, 32 - off);
            g.a.lw(T2, ((w + 1) * 4) as i16, A0);
            g.a.xor(T2, T2, T3);
            g.a.sw(T2, ((w + 1) * 4) as i16, A0);
        }
    }
    g.a.label(&pskip);
    // Mask c[kw] and copy out.
    g.a.lw(T0, (kw * 4) as i16, A0);
    g.a.li(T1, ((1u64 << r) - 1) as i64);
    g.a.and(T0, T0, T1);
    g.a.sw(T0, (kw * 4) as i16, A0);
    emit_copy_words(g, A1, A0, k);
    g.a.ret();
}

/// Emits the left-to-right comb multiplication with 4-bit windows
/// (Algorithm 6) — the baseline binary multiplier, with its 16-row
/// precomputation table (`16 * (k+1)` words) in RAM (§4.2.2).
///
/// ABI: `a0`=dst, `a1`=a, `a2`=b. Non-leaf (calls `red_label`).
pub fn emit_f2m_mul_comb(
    g: &mut Gen,
    label: &str,
    field: &BinaryField,
    table_addr: u32,
    wide_addr: u32,
    red_label: &str,
) {
    let k = field.k();
    let row = k + 1;
    g.a.label(label);
    g.a.addiu(Reg::SP, Reg::SP, -16);
    g.a.sw(RA, 12, Reg::SP);
    g.a.sw(S0, 8, Reg::SP);
    g.a.sw(S1, 4, Reg::SP);
    g.a.sw(S2, 0, Reg::SP);
    g.a.mov(S0, A0);
    // --- Precompute Bu rows: B0 = 0, B1 = b, Beven = B(u/2) << 1,
    //     Bodd = B(u-1) ^ B1.
    g.a.li(T6, table_addr as i64);
    emit_zero_words(g, T6, row as u32 as usize); // B0
                                                 // B1 = b (k words + top zero)
    g.a.addiu(T6, T6, (row * 4) as i16);
    emit_copy_words(g, T6, A2, k);
    g.a.sw(ZERO, (k * 4) as i16, T6);
    for u in 2..16usize {
        let dst = table_addr + (u * row * 4) as u32;
        if u % 2 == 0 {
            // shift row u/2 left by one bit
            let src = table_addr + ((u / 2) * row * 4) as u32;
            let l = g.sym("comb_shl");
            g.a.li(T4, src as i64);
            g.a.li(T5, dst as i64);
            g.a.li(T9, row as i64);
            g.a.li(T3, 0); // carry bit
            g.a.label(&l);
            g.a.lw(T0, 0, T4);
            g.a.sll(T1, T0, 1);
            g.a.or(T1, T1, T3);
            g.a.srl(T3, T0, 31);
            g.a.sw(T1, 0, T5);
            g.a.addiu(T4, T4, 4);
            g.a.addiu(T5, T5, 4);
            g.a.addiu(T9, T9, -1);
            g.a.bne(T9, ZERO, &l);
            g.a.nop();
        } else {
            // xor rows u-1 and 1
            let src1 = table_addr + ((u - 1) * row * 4) as u32;
            let src2 = table_addr + (row * 4) as u32;
            let l = g.sym("comb_xor");
            g.a.li(T4, src1 as i64);
            g.a.li(T5, src2 as i64);
            g.a.li(T8, dst as i64);
            g.a.li(T9, row as i64);
            g.a.label(&l);
            g.a.lw(T0, 0, T4);
            g.a.lw(T1, 0, T5);
            g.a.xor(T0, T0, T1);
            g.a.sw(T0, 0, T8);
            g.a.addiu(T4, T4, 4);
            g.a.addiu(T5, T5, 4);
            g.a.addiu(T8, T8, 4);
            g.a.addiu(T9, T9, -1);
            g.a.bne(T9, ZERO, &l);
            g.a.nop();
        }
    }
    // --- Accumulate: C (2k+1 words) = 0; for jwin = 7..0:
    //       for i in 0..k: C[i..] ^= table[(a[i] >> 4*jwin) & 15]
    //       if jwin: C <<= 4
    g.a.li(A3, wide_addr as i64);
    emit_zero_words(g, A3, 2 * k + 1);
    g.a.li(S1, 28); // jwin*4 shift amount, descending 28..0
    let jloop = g.sym("comb_j");
    let iloop = g.sym("comb_i");
    let skip_row = g.sym("comb_skiprow");
    let no_shift = g.sym("comb_noshift");
    g.a.label(&jloop);
    g.a.li(S2, 0); // i
    g.a.label(&iloop);
    g.a.sll(T0, S2, 2);
    g.a.addu(T0, A1, T0);
    g.a.lw(T0, 0, T0); // a[i]
    g.a.srlv(T0, T0, S1);
    g.a.andi(T0, T0, 0xf); // u
    g.a.beq(T0, ZERO, &skip_row);
    g.a.nop();
    // row address = table + u*row*4
    g.a.li(T1, (row * 4) as i64);
    g.a.multu(T0, T1);
    g.a.mflo(T1);
    g.a.li(T2, table_addr as i64);
    g.a.addu(T4, T2, T1); // row ptr
    g.a.sll(T5, S2, 2);
    g.a.addu(T5, A3, T5); // C + i*4
    g.a.li(T9, row as i64);
    let xl = g.sym("comb_xl");
    g.a.label(&xl);
    g.a.lw(T0, 0, T4);
    g.a.lw(T1, 0, T5);
    g.a.xor(T0, T0, T1);
    g.a.sw(T0, 0, T5);
    g.a.addiu(T4, T4, 4);
    g.a.addiu(T5, T5, 4);
    g.a.addiu(T9, T9, -1);
    g.a.bne(T9, ZERO, &xl);
    g.a.nop();
    g.a.label(&skip_row);
    g.a.addiu(S2, S2, 1);
    g.a.li(T0, k as i64);
    g.a.bne(S2, T0, &iloop);
    g.a.nop();
    // shift C left by 4 bits unless jwin == 0
    g.a.beq(S1, ZERO, &no_shift);
    g.a.nop();
    {
        let l = g.sym("comb_c4");
        g.a.mov(T4, A3);
        g.a.li(T9, (2 * k + 1) as i64);
        g.a.li(T3, 0);
        g.a.label(&l);
        g.a.lw(T0, 0, T4);
        g.a.sll(T1, T0, 4);
        g.a.or(T1, T1, T3);
        g.a.srl(T3, T0, 28);
        g.a.sw(T1, 0, T4);
        g.a.addiu(T4, T4, 4);
        g.a.addiu(T9, T9, -1);
        g.a.bne(T9, ZERO, &l);
        g.a.nop();
    }
    g.a.addiu(S1, S1, -4);
    g.a.b(&jloop);
    g.a.nop();
    g.a.label(&no_shift);
    // reduce (2k+1 words; the top word holds shifted-out bits)
    g.a.li(A0, wide_addr as i64);
    g.a.jal(red_label);
    g.a.mov(A1, S0); // delay
    g.a.lw(RA, 12, Reg::SP);
    g.a.lw(S0, 8, Reg::SP);
    g.a.lw(S1, 4, Reg::SP);
    g.a.lw(S2, 0, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 16);
    g.a.ret();
}

/// Emits table-driven squaring (§4.2.3) for the baseline: each byte of
/// the input is spread to 16 bits via the ROM table at `spread_label`
/// (256 halfword entries), then the result is reduced.
///
/// ABI: `a0`=dst, `a1`=a. Non-leaf.
pub fn emit_f2m_sqr_table(
    g: &mut Gen,
    label: &str,
    field: &BinaryField,
    wide_addr: u32,
    spread_label: &str,
    red_label: &str,
) {
    let k = field.k();
    let l = g.sym("sqt");
    g.a.label(label);
    g.a.addiu(Reg::SP, Reg::SP, -8);
    g.a.sw(RA, 4, Reg::SP);
    g.a.sw(S0, 0, Reg::SP);
    g.a.mov(S0, A0);
    g.a.li(A3, wide_addr as i64);
    // top word of the wide buffer is untouched by expansion; clear it
    g.a.sw(ZERO, (2 * k * 4) as i16, A3);
    g.a.la(T8, spread_label);
    g.a.li(T9, k as i64);
    g.a.label(&l);
    g.a.lw(T0, 0, A1);
    // low half: bytes 0,1
    g.a.andi(T1, T0, 0xff);
    g.a.sll(T1, T1, 1);
    g.a.addu(T1, T8, T1);
    g.a.lhu(T2, 0, T1);
    g.a.srl(T1, T0, 8);
    g.a.andi(T1, T1, 0xff);
    g.a.sll(T1, T1, 1);
    g.a.addu(T1, T8, T1);
    g.a.lhu(T3, 0, T1);
    g.a.sll(T3, T3, 16);
    g.a.or(T2, T2, T3);
    g.a.sw(T2, 0, A3);
    // high half: bytes 2,3
    g.a.srl(T1, T0, 16);
    g.a.andi(T1, T1, 0xff);
    g.a.sll(T1, T1, 1);
    g.a.addu(T1, T8, T1);
    g.a.lhu(T2, 0, T1);
    g.a.srl(T1, T0, 24);
    g.a.sll(T1, T1, 1);
    g.a.addu(T1, T8, T1);
    g.a.lhu(T3, 0, T1);
    g.a.sll(T3, T3, 16);
    g.a.or(T2, T2, T3);
    g.a.sw(T2, 4, A3);
    g.a.addiu(A1, A1, 4);
    g.a.addiu(A3, A3, 8);
    g.a.addiu(T9, T9, -1);
    g.a.bne(T9, ZERO, &l);
    g.a.nop();
    g.a.li(A0, wide_addr as i64);
    g.a.jal(red_label);
    g.a.mov(A1, S0); // delay
    g.a.lw(RA, 4, Reg::SP);
    g.a.lw(S0, 0, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 8);
    g.a.ret();
}

/// Emits carry-less product-scanning multiplication on the binary ISA
/// extensions (Algorithm 3 with `MADDGF2`, Table 5.2).
///
/// ABI: `a0`=dst, `a1`=a, `a2`=b. Non-leaf.
pub fn emit_f2m_mul_ps_ext(
    g: &mut Gen,
    label: &str,
    field: &BinaryField,
    wide_addr: u32,
    red_label: &str,
) {
    let k = field.k();
    let phase1 = g.sym("gf_p1");
    let phase2 = g.sym("gf_p2");
    let inner1 = g.sym("gf_i1");
    let inner2 = g.sym("gf_i2");
    g.a.label(label);
    g.a.addiu(Reg::SP, Reg::SP, -8);
    g.a.sw(RA, 4, Reg::SP);
    g.a.sw(S0, 0, Reg::SP);
    g.a.mov(S0, A0);
    g.a.mulgf2(ZERO, ZERO); // clear accumulator
    g.a.li(A3, wide_addr as i64);
    g.a.li(T6, 0);
    g.a.label(&phase1);
    g.a.mov(T4, A1);
    g.a.sll(T0, T6, 2);
    g.a.addu(T5, A2, T0);
    g.a.addiu(T8, T6, 1);
    g.a.label(&inner1);
    g.a.lw(T0, 0, T4);
    g.a.lw(T1, 0, T5);
    g.a.addiu(T4, T4, 4);
    g.a.addiu(T5, T5, -4);
    g.a.addiu(T8, T8, -1);
    g.a.bne(T8, ZERO, &inner1);
    g.a.maddgf2(T0, T1); // delay slot: the MAC itself
    g.a.mflo(T2);
    g.a.sw(T2, 0, A3);
    g.a.addiu(A3, A3, 4);
    g.a.sha();
    g.a.addiu(T6, T6, 1);
    g.a.li(T0, k as i64);
    g.a.bne(T6, T0, &phase1);
    g.a.nop();
    g.a.label(&phase2);
    g.a.addiu(T0, T6, -(k as i16) + 1);
    g.a.sll(T0, T0, 2);
    g.a.addu(T4, A1, T0);
    g.a.addiu(T5, A2, ((k - 1) * 4) as i16);
    g.a.li(T8, (2 * k - 1) as i64);
    g.a.subu(T8, T8, T6);
    g.a.label(&inner2);
    g.a.lw(T0, 0, T4);
    g.a.lw(T1, 0, T5);
    g.a.addiu(T4, T4, 4);
    g.a.addiu(T5, T5, -4);
    g.a.addiu(T8, T8, -1);
    g.a.bne(T8, ZERO, &inner2);
    g.a.maddgf2(T0, T1); // delay slot: the MAC itself
    g.a.mflo(T2);
    g.a.sw(T2, 0, A3);
    g.a.addiu(A3, A3, 4);
    g.a.sha();
    g.a.addiu(T6, T6, 1);
    g.a.li(T0, (2 * k - 1) as i64);
    g.a.bne(T6, T0, &phase2);
    g.a.nop();
    g.a.mflo(T2);
    g.a.sw(T2, 0, A3);
    g.a.sw(ZERO, 4, A3); // top (2k)th word for the reducer
    g.a.li(A0, wide_addr as i64);
    g.a.jal(red_label);
    g.a.mov(A1, S0); // delay
    g.a.lw(RA, 4, Reg::SP);
    g.a.lw(S0, 0, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 8);
    g.a.ret();
}

/// Emits squaring via `MULGF2` (a carry-less square of a word *is* its
/// zero-interleaved spread, §4.2.3 with a 32-bit window).
///
/// ABI: `a0`=dst, `a1`=a. Non-leaf.
pub fn emit_f2m_sqr_ext(
    g: &mut Gen,
    label: &str,
    field: &BinaryField,
    wide_addr: u32,
    red_label: &str,
) {
    let k = field.k();
    let l = g.sym("sqx");
    g.a.label(label);
    g.a.addiu(Reg::SP, Reg::SP, -8);
    g.a.sw(RA, 4, Reg::SP);
    g.a.sw(S0, 0, Reg::SP);
    g.a.mov(S0, A0);
    g.a.li(A3, wide_addr as i64);
    g.a.sw(ZERO, (2 * k * 4) as i16, A3);
    g.a.li(T9, k as i64);
    g.a.label(&l);
    g.a.lw(T0, 0, A1);
    g.a.mulgf2(T0, T0);
    g.a.addiu(A1, A1, 4);
    g.a.addiu(T9, T9, -1);
    g.a.mflo(T1);
    g.a.mfhi(T2);
    g.a.sw(T1, 0, A3);
    g.a.sw(T2, 4, A3);
    g.a.bne(T9, ZERO, &l);
    g.a.addiu(A3, A3, 8); // delay
    g.a.li(A0, wide_addr as i64);
    g.a.jal(red_label);
    g.a.mov(A1, S0); // delay
    g.a.lw(RA, 4, Reg::SP);
    g.a.lw(S0, 0, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 8);
    g.a.ret();
}

/// Scratch buffers for the polynomial EEA: four `2k+1`-word polynomials.
#[derive(Clone, Copy, Debug)]
pub struct F2mEeaBufs {
    /// Buffer for `u`.
    pub u: u32,
    /// Buffer for `v`.
    pub v: u32,
    /// Buffer for `g1`.
    pub g1: u32,
    /// Buffer for `g2`.
    pub g2: u32,
}

/// Emits the polynomial extended Euclidean inversion (§4.2.4):
/// `label: dst = src^{-1} mod f(x)`.
///
/// ABI: `a0`=dst, `a1`=src (nonzero). Non-leaf (calls `red_label` at the
/// end to reduce `g1`).
pub fn emit_f2m_eea_inv(
    g: &mut Gen,
    label: &str,
    field: &BinaryField,
    bufs: F2mEeaBufs,
    red_label: &str,
) {
    let k = field.k();
    let width = 2 * k + 1;

    // Inline: T0 = bit length of [ptr] over `width` words. Clobbers
    // t0..t4, t9.
    fn emit_bitlen(g: &mut Gen, ptr: Reg, width: usize) {
        let scan = g.sym("bl_scan");
        let found = g.sym("bl_found");
        let bitloop = g.sym("bl_bit");
        let done = g.sym("bl_done");
        g.a.addiu(T1, ptr, ((width - 1) * 4) as i16);
        g.a.li(T9, width as i64);
        g.a.label(&scan);
        g.a.lw(T2, 0, T1);
        g.a.bne(T2, ZERO, &found);
        g.a.nop();
        g.a.addiu(T1, T1, -4);
        g.a.addiu(T9, T9, -1);
        g.a.bne(T9, ZERO, &scan);
        g.a.nop();
        g.a.b(&done);
        g.a.li(T0, 0); // delay: zero polynomial
        g.a.label(&found);
        // bit length of word T2 (1..32) by linear scan from the top.
        g.a.li(T3, 32);
        g.a.label(&bitloop);
        g.a.addiu(T4, T3, -1);
        g.a.srlv(T4, T2, T4);
        g.a.bne(T4, ZERO, &done);
        // delay: T0 = (T9-1)*32 + T3  (partially; compute below)
        g.a.nop();
        g.a.addiu(T3, T3, -1);
        g.a.b(&bitloop);
        g.a.nop();
        g.a.label(&done);
        // T0 = (T9-1)*32 + T3 when coming from bitloop; from the zero path
        // T0 is already 0 and T9 == 0. Guard:
        let z = g.sym("bl_z");
        g.a.beq(T9, ZERO, &z);
        g.a.nop();
        g.a.addiu(T4, T9, -1);
        g.a.sll(T4, T4, 5);
        g.a.addu(T0, T4, T3);
        g.a.label(&z);
    }

    // Inline: dst ^= src << j, over `width` words, with j in T7 (runtime).
    // dst ptr, src ptr regs. Clobbers t0..t5, t8, t9, v1.
    fn emit_xor_shifted(g: &mut Gen, dst: Reg, src: Reg, width: usize) {
        let byword = g.sym("xs_byword");
        let main = g.sym("xs_main");
        let main0 = g.sym("xs_main0");
        let done = g.sym("xs_done");
        // ws = j >> 5, bs = j & 31
        g.a.srl(T8, T7, 5); // ws
        g.a.andi(T9, T7, 31); // bs
                              // write pointer = dst + ws*4, iterate i = 0..width-ws
        g.a.sll(T0, T8, 2);
        g.a.addu(T4, dst, T0); // dst + ws
        g.a.mov(T5, src);
        // count = width - ws
        g.a.li(T0, width as i64);
        g.a.subu(T0, T0, T8); // count
        g.a.beq(T9, ZERO, &byword);
        g.a.nop();
        // bs != 0 path: carry chain of src words
        g.a.li(V1, 0); // carry (previous word's high bits)
        g.a.li(T8, 32);
        g.a.subu(T8, T8, T9); // 32-bs
        g.a.label(&main);
        g.a.lw(T1, 0, T5);
        g.a.sllv(T2, T1, T9);
        g.a.or(T2, T2, V1);
        g.a.srlv(V1, T1, T8);
        g.a.lw(T3, 0, T4);
        g.a.xor(T3, T3, T2);
        g.a.sw(T3, 0, T4);
        g.a.addiu(T4, T4, 4);
        g.a.addiu(T5, T5, 4);
        g.a.addiu(T0, T0, -1);
        g.a.bne(T0, ZERO, &main);
        g.a.nop();
        g.a.b(&done);
        g.a.nop();
        // bs == 0 path: word-aligned xor
        g.a.label(&byword);
        g.a.label(&main0);
        g.a.lw(T1, 0, T5);
        g.a.lw(T3, 0, T4);
        g.a.xor(T3, T3, T1);
        g.a.sw(T3, 0, T4);
        g.a.addiu(T4, T4, 4);
        g.a.addiu(T5, T5, 4);
        g.a.addiu(T0, T0, -1);
        g.a.bne(T0, ZERO, &main0);
        g.a.nop();
        g.a.label(&done);
    }

    let main = g.sym("peea_main");
    let u_side = g.sym("peea_u");
    let v_side = g.sym("peea_v");
    let finish_g1 = g.sym("peea_fin1");
    let finish = g.sym("peea_fin");

    g.a.label(label);
    let saved = [S0, S1, S2, S3, S4, S5];
    g.a.addiu(Reg::SP, Reg::SP, -32);
    g.a.sw(RA, 28, Reg::SP);
    for (i, &r) in saved.iter().enumerate() {
        g.a.sw(r, (24 - 4 * i) as i16, Reg::SP);
    }
    g.a.li(S0, bufs.u as i64);
    g.a.li(S1, bufs.v as i64);
    g.a.li(S2, bufs.g1 as i64);
    g.a.li(S3, bufs.g2 as i64);
    g.a.mov(S5, A0);
    // u = src; v = f; g1 = 1; g2 = 0 (all width words)
    emit_zero_words(g, S0, width);
    emit_copy_words(g, S0, A1, k);
    emit_zero_words(g, S1, width);
    // write f(x): x^m + terms
    for &t in field.terms() {
        let (w, b) = (t / 32, t % 32);
        g.a.lw(T0, (w * 4) as i16, S1);
        g.a.li(T1, (1u64 << b) as i64);
        g.a.or(T0, T0, T1);
        g.a.sw(T0, (w * 4) as i16, S1);
    }
    {
        let (w, b) = (field.m() / 32, field.m() % 32);
        g.a.lw(T0, (w * 4) as i16, S1);
        g.a.li(T1, (1u64 << b) as i64);
        g.a.or(T0, T0, T1);
        g.a.sw(T0, (w * 4) as i16, S1);
    }
    emit_zero_words(g, S2, width);
    g.a.li(T0, 1);
    g.a.sw(T0, 0, S2);
    emit_zero_words(g, S3, width);

    g.a.label(&main);
    // du = bitlen(u); if du <= 1: result g1
    emit_bitlen(g, S0, width);
    g.a.mov(S4, T0); // du
    g.a.li(T1, 2);
    g.a.slt(T1, S4, T1); // du <= 1
    g.a.bne(T1, ZERO, &finish_g1);
    g.a.nop();
    // dv = bitlen(v); if dv <= 1: result g2
    emit_bitlen(g, S1, width);
    g.a.li(T1, 2);
    g.a.slt(T1, T0, T1);
    g.a.bne(T1, ZERO, &finish); // with T8 = g2 below
    g.a.mov(T8, S3); // delay: result ptr = g2 (harmless otherwise)
                     // j = du - dv; pick side
    g.a.subu(T7, S4, T0);
    g.a.bltz(T7, &v_side);
    g.a.nop();
    g.a.label(&u_side);
    // u ^= v << j ; g1 ^= g2 << j
    emit_xor_shifted(g, S0, S1, width);
    emit_xor_shifted(g, S2, S3, width);
    g.a.b(&main);
    g.a.nop();
    g.a.label(&v_side);
    g.a.subu(T7, ZERO, T7); // j = -j
    emit_xor_shifted(g, S1, S0, width);
    emit_xor_shifted(g, S3, S2, width);
    g.a.b(&main);
    g.a.nop();

    g.a.label(&finish_g1);
    g.a.mov(T8, S2);
    g.a.label(&finish);
    // dst = reduce(result polynomial). red_label reduces in place over
    // `width` words; it must have been emitted with wide_words == width.
    g.a.mov(A0, T8);
    g.a.jal(red_label);
    g.a.mov(A1, S5); // delay
    g.a.lw(RA, 28, Reg::SP);
    for (i, &r) in saved.iter().enumerate() {
        g.a.lw(r, (24 - 4 * i) as i16, Reg::SP);
    }
    g.a.addiu(Reg::SP, Reg::SP, 32);
    g.a.ret();
}

/// The 8-bit → 16-bit zero-interleaving table contents (§4.2.3), for
/// placing in ROM as halfwords.
pub fn spread_table_words() -> Vec<u32> {
    let mut out = Vec::with_capacity(128);
    for pair in 0..128 {
        let mut words = [0u16; 2];
        for (j, w) in words.iter_mut().enumerate() {
            let b = pair * 2 + j;
            let mut s = 0u16;
            for i in 0..8 {
                if (b >> i) & 1 == 1 {
                    s |= 1 << (2 * i);
                }
            }
            *w = s;
        }
        out.push(words[0] as u32 | ((words[1] as u32) << 16));
    }
    out
}
