//! Builds the complete program image for one (curve × architecture)
//! configuration of the study — the analogue of the paper's compiled,
//! statically linked ECDSA binary (§4.3).
//!
//! Every image exposes the same entry points:
//!
//! | entry            | computes                                        |
//! |------------------|-------------------------------------------------|
//! | `main_sign`      | ECDSA signature from `arg_e`, `arg_d`, `arg_k`  |
//! | `main_verify`    | verification from `arg_e/arg_r/arg_s/arg_q{x,y}`|
//! | `main_scalar_mul`| `arg_k · G` (affine x/y into `out_r`/`out_s`)   |
//! | `main_fmul` …    | micro-entries for differential testing          |
//!
//! plus the RAM argument buffers named in [`Suite`]. The builder binds
//! the architecture's field-routine labels, lays out curve constants in
//! ROM (pre-converted to the Montgomery domain for Monte), and reserves
//! all scratch RAM.

use crate::billie_glue;
use crate::f2m::{self, F2mEeaBufs};
use crate::fp::{self, EeaBufs};
use crate::gen::Gen;
use crate::monte_glue;
use crate::point::{self, Family, PointBufs, PointCfg};
use crate::xdh;
use ule_curves::params::{Curve, CurveId, CurveKind};
use ule_isa::asm::Program;
use ule_isa::reg::Reg;
use ule_mpmath::mont::Montgomery;
use ule_mpmath::mp::Mp;

/// The four hardware/software configurations of the design space
/// (Fig 1.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Pure software on Pete (no cache, no extensions) — §5.1.
    Baseline,
    /// Pete with the prime/binary ISA extensions — §5.2.
    IsaExt,
    /// Pete + the Monte GF(p) microcoded accelerator — §5.4.
    Monte,
    /// Pete + the Billie GF(2^m) accelerator — §5.5.
    Billie,
}

impl Arch {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Arch::Baseline => "Baseline",
            Arch::IsaExt => "ISA Ext",
            Arch::Monte => "w/ Monte",
            Arch::Billie => "w/ Billie",
        }
    }
}

/// A built program image plus the metadata the runner needs.
#[derive(Clone, Debug)]
pub struct Suite {
    /// The linked ROM image.
    pub program: Program,
    /// The architecture it was built for.
    pub arch: Arch,
    /// The curve it was built for.
    pub curve_id: CurveId,
    /// Field element width in words.
    pub k: usize,
    /// Group-order width in words.
    pub kn: usize,
}

/// Builds the program image for one configuration.
///
/// # Panics
///
/// Panics on unsupported pairings (Monte is a GF(p) accelerator, Billie a
/// GF(2^m) one — same constraint as the paper's evaluation) or if the
/// generated program fails to link (a builder bug).
pub fn build_suite(curve: &Curve, arch: Arch) -> Suite {
    let id = curve.id();
    if id.is_mont() {
        // The X25519/X448 Montgomery-ladder suite is a separate program
        // image (entry `main_xdh`, no ECDSA protocol layer).
        return build_xdh_suite(curve, arch);
    }
    match (arch, id.is_binary()) {
        (Arch::Monte, true) => panic!("Monte accelerates prime fields only"),
        (Arch::Billie, false) => panic!("Billie accelerates binary fields only"),
        _ => {}
    }
    let k = match curve.kind() {
        CurveKind::Prime(c) => c.field().k(),
        CurveKind::Binary(c) => c.field().k(),
        CurveKind::Mont(_) => unreachable!("handled above"),
    };
    let kn = curve.n().bit_len().div_ceil(32);
    assert_eq!(k, kn, "the study's curves all have k == kn");

    let mut g = Gen::new();

    // ---- RAM layout -------------------------------------------------
    let kw = k as u32;
    let bufs = PointBufs {
        pt_x: g.a.ram_alloc("pt_x", kw),
        pt_y: g.a.ram_alloc("pt_y", kw),
        pt_z: g.a.ram_alloc("pt_z", kw),
        ft: [
            g.a.ram_alloc("ft1", kw),
            g.a.ram_alloc("ft2", kw),
            g.a.ram_alloc("ft3", kw),
            g.a.ram_alloc("ft4", kw),
            g.a.ram_alloc("ft5", kw),
            g.a.ram_alloc("ft6", kw),
        ],
        tab_x: g.a.ram_alloc("tab_x", 4 * kw),
        tab_y: g.a.ram_alloc("tab_y", 4 * kw),
        two_px: g.a.ram_alloc("two_px", kw),
        two_py: g.a.ram_alloc("two_py", kw),
        sm_k: g.a.ram_alloc("sm_k", kw),
        sm_px: g.a.ram_alloc("sm_px", kw),
        sm_py: g.a.ram_alloc("sm_py", kw),
        sm_outx: g.a.ram_alloc("sm_outx", kw),
        sm_outy: g.a.ram_alloc("sm_outy", kw),
        tw_u1: g.a.ram_alloc("tw_u1", kw),
        tw_u2: g.a.ram_alloc("tw_u2", kw),
        tw_qx: g.a.ram_alloc("tw_qx", kw),
        tw_qy: g.a.ram_alloc("tw_qy", kw),
        tw_pqx: g.a.ram_alloc("tw_pqx", kw),
        tw_pqy: g.a.ram_alloc("tw_pqy", kw),
        tw_pmx: g.a.ram_alloc("tw_pmx", kw),
        tw_pmy: g.a.ram_alloc("tw_pmy", kw),
        tw_nqy: g.a.ram_alloc("tw_nqy", kw),
        tw_outx: g.a.ram_alloc("tw_outx", kw),
        tw_outy: g.a.ram_alloc("tw_outy", kw),
        ecd_t1: g.a.ram_alloc("ecd_t1", kw),
        ecd_t2: g.a.ram_alloc("ecd_t2", kw),
        ecd_t3: g.a.ram_alloc("ecd_t3", kw),
        ecd_x: g.a.ram_alloc("ecd_x", kw),
        arg_e: g.a.ram_alloc("arg_e", kw),
        arg_d: g.a.ram_alloc("arg_d", kw),
        arg_k: g.a.ram_alloc("arg_k", kw),
        arg_r: g.a.ram_alloc("arg_r", kw),
        arg_s: g.a.ram_alloc("arg_s", kw),
        arg_qx: g.a.ram_alloc("arg_qx", kw),
        arg_qy: g.a.ram_alloc("arg_qy", kw),
        out_r: g.a.ram_alloc("out_r", kw),
        out_s: g.a.ram_alloc("out_s", kw),
        out_ok: g.a.ram_alloc("out_ok", 1),
    };
    // extra argument buffers for point micro-entries
    let arg_px = g.a.ram_alloc("arg_px", kw);
    let arg_py = g.a.ram_alloc("arg_py", kw);
    // scratch
    let wide = g.a.ram_alloc("wide", 2 * kw + 2);
    let cios_t = g.a.ram_alloc("cios_t", kw + 2);
    let nm_tmp = g.a.ram_alloc("nm_tmp", kw);
    let eea_int = EeaBufs {
        u: g.a.ram_alloc("eea_u", kw + 1),
        v: g.a.ram_alloc("eea_v", kw + 1),
        x1: g.a.ram_alloc("eea_x1", kw + 1),
        x2: g.a.ram_alloc("eea_x2", kw + 1),
    };

    let family = match curve.kind() {
        CurveKind::Prime(_) => Family::Prime,
        CurveKind::Binary(c) => Family::Binary {
            a_is_one: !c.a().is_zero(),
        },
        CurveKind::Mont(_) => unreachable!("handled above"),
    };
    let cfg = PointCfg {
        family,
        k,
        kn,
        bufs,
    };

    // ---- entry points ----------------------------------------------
    emit_entries(&mut g, &cfg, arg_px, arg_py);

    // ---- architecture / family bindings ----------------------------
    let mont_p = match curve.kind() {
        CurveKind::Prime(c) => Some(Montgomery::new(c.field().modulus())),
        CurveKind::Binary(_) => None,
        CurveKind::Mont(_) => unreachable!("handled above"),
    };
    match (arch, curve.kind()) {
        (Arch::Baseline, CurveKind::Prime(c)) => {
            let acc = g.a.ram_alloc("fred_acc", kw + 2);
            fp::emit_fadd(&mut g, "fadd", k, "const_p");
            fp::emit_fsub(&mut g, "fsub", k, "const_p");
            fp::emit_fmul_os(&mut g, "fmul", k, wide, "fred");
            // fsqr = fmul(a, a)
            g.a.label("fsqr");
            g.a.j("fmul");
            g.a.mov(Reg::A2, Reg::A1); // delay slot
            fp::emit_fred(&mut g, "fred", c.field(), acc, "const_p");
            emit_prime_finv_binding(&mut g);
            emit_noop_sync(&mut g);
            emit_plain_domain(&mut g);
        }
        (Arch::IsaExt, CurveKind::Prime(c)) => {
            let acc = g.a.ram_alloc("fred_acc", kw + 2);
            fp::emit_fadd(&mut g, "fadd", k, "const_p");
            fp::emit_fsub(&mut g, "fsub", k, "const_p");
            fp::emit_fmul_ps_ext(&mut g, "fmul", k, wide, "fred");
            fp::emit_fsqr_ps_ext(&mut g, "fsqr", k, wide, "fred");
            fp::emit_fred(&mut g, "fred", c.field(), acc, "const_p");
            emit_prime_finv_binding(&mut g);
            emit_noop_sync(&mut g);
            emit_plain_domain(&mut g);
        }
        (Arch::Monte, CurveKind::Prime(c)) => {
            let monte_n = g.a.ram_alloc("monte_n", kw);
            let fermat_r = g.a.ram_alloc("fermat_r", kw);
            let fermat_b = g.a.ram_alloc("fermat_b", kw);
            let mont = mont_p.as_ref().expect("prime curve");
            monte_glue::emit_monte_init(&mut g, k, mont.n0_prime(), monte_n);
            monte_glue::emit_monte_field_ops(&mut g);
            let pm2 = c.field().modulus().sub(&Mp::from_u64(2));
            monte_glue::emit_monte_finv(&mut g, pm2.bit_len(), fermat_r, fermat_b);
        }
        (Arch::Baseline, CurveKind::Binary(c)) => {
            let comb = g.a.ram_alloc("comb_table", 16 * (kw + 1));
            let poly = F2mEeaBufs {
                u: g.a.ram_alloc("peea_u", 2 * kw + 1),
                v: g.a.ram_alloc("peea_v", 2 * kw + 1),
                g1: g.a.ram_alloc("peea_g1", 2 * kw + 1),
                g2: g.a.ram_alloc("peea_g2", 2 * kw + 1),
            };
            // fadd and fsub are the same operation in GF(2^m).
            g.a.label("fsub");
            f2m::emit_f2m_add(&mut g, "fadd", k);
            f2m::emit_f2m_mul_comb(&mut g, "fmul", c.field(), comb, wide, "fred");
            f2m::emit_f2m_sqr_table(&mut g, "fsqr", c.field(), wide, "spread_tbl", "fred");
            f2m::emit_f2m_red(&mut g, "fred", c.field(), 2 * k + 1);
            f2m::emit_f2m_eea_inv(&mut g, "finv", c.field(), poly, "fred");
            emit_noop_sync(&mut g);
            emit_plain_domain(&mut g);
        }
        (Arch::IsaExt, CurveKind::Binary(c)) => {
            let poly = F2mEeaBufs {
                u: g.a.ram_alloc("peea_u", 2 * kw + 1),
                v: g.a.ram_alloc("peea_v", 2 * kw + 1),
                g1: g.a.ram_alloc("peea_g1", 2 * kw + 1),
                g2: g.a.ram_alloc("peea_g2", 2 * kw + 1),
            };
            g.a.label("fsub");
            f2m::emit_f2m_add(&mut g, "fadd", k);
            f2m::emit_f2m_mul_ps_ext(&mut g, "fmul", c.field(), wide, "fred");
            f2m::emit_f2m_sqr_ext(&mut g, "fsqr", c.field(), wide, "fred");
            f2m::emit_f2m_red(&mut g, "fred", c.field(), 2 * k + 1);
            f2m::emit_f2m_eea_inv(&mut g, "finv", c.field(), poly, "fred");
            emit_noop_sync(&mut g);
            emit_plain_domain(&mut g);
        }
        (Arch::Billie, CurveKind::Binary(c)) => {
            billie_glue::emit_billie_bindings(&mut g, c.field(), &cfg);
        }
        _ => unreachable!("invalid pairing rejected above"),
    }

    // Shared helpers present in every image.
    emit_fisz(&mut g, k);
    g.a.label("ncopy");
    fp::emit_fcopy(&mut g, "fcopy", k);
    // Protocol arithmetic mod n (on Pete in every configuration, §4.1).
    let n_mont = Montgomery::new(curve.n());
    fp::emit_cios(&mut g, "cios_n", kn, n_mont.n0_prime(), "const_n", cios_t);
    emit_nmul(&mut g, nm_tmp);
    fp::emit_fadd(&mut g, "nadd", kn, "const_n");
    fp::emit_eea_inv(&mut g, "eea_int", kn, eea_int);
    g.a.label("ninv");
    g.a.la(Reg::A2, "const_n");
    g.a.j("eea_int");
    g.a.nop();
    if arch != Arch::Monte && arch != Arch::Billie {
        // empty arch_init
        g.a.label("arch_init");
        g.a.ret();
    }
    if arch == Arch::Billie {
        // arch_init emitted inside billie bindings
    }

    // Point / scalar / ECDSA codegen (shared; Billie overrides the
    // scalar-multiplication internals inside its bindings but reuses the
    // protocol layer).
    point::emit_point_suite(&mut g, &cfg, arch != Arch::Billie);

    // ---- constants --------------------------------------------------
    emit_constants(&mut g, curve, arch, k, kn, mont_p.as_ref(), &n_mont);

    let program = g.a.link("main_sign").expect("suite must link");
    Suite {
        program,
        arch,
        curve_id: id,
        k,
        kn,
    }
}

/// Builds the Montgomery-ladder (X25519/X448) program image: entry
/// `main_xdh` computes the RFC 7748 shared secret from the raw scalar in
/// `arg_k` and the reduced peer `u`-coordinate in `arg_qx` into `out_r`,
/// plus the usual field micro-entries for differential testing.
///
/// # Panics
///
/// Panics when paired with Billie (the X primes live in GF(p)) or if the
/// generated program fails to link.
fn build_xdh_suite(curve: &Curve, arch: Arch) -> Suite {
    let id = curve.id();
    assert!(
        arch != Arch::Billie,
        "Billie accelerates binary fields only"
    );
    let mc = curve.mont();
    let f = mc.field();
    let k = f.k();
    let kn = curve.n().bit_len().div_ceil(32);

    let mut g = Gen::new();

    // ---- RAM layout -------------------------------------------------
    let kw = k as u32;
    let bufs = xdh::XdhBufs {
        arg_k: g.a.ram_alloc("arg_k", kw),
        arg_qx: g.a.ram_alloc("arg_qx", kw),
        arg_qy: g.a.ram_alloc("arg_qy", kw),
        out_r: g.a.ram_alloc("out_r", kw),
        xk: g.a.ram_alloc("xdh_k", kw),
        x1: g.a.ram_alloc("xdh_x1", kw),
        x2: g.a.ram_alloc("xdh_x2", kw),
        z2: g.a.ram_alloc("xdh_z2", kw),
        x3: g.a.ram_alloc("xdh_x3", kw),
        z3: g.a.ram_alloc("xdh_z3", kw),
        t: [
            g.a.ram_alloc("xdh_t1", kw),
            g.a.ram_alloc("xdh_t2", kw),
            g.a.ram_alloc("xdh_t3", kw),
            g.a.ram_alloc("xdh_t4", kw),
            g.a.ram_alloc("xdh_t5", kw),
            g.a.ram_alloc("xdh_t6", kw),
            g.a.ram_alloc("xdh_t7", kw),
            g.a.ram_alloc("xdh_t8", kw),
        ],
    };
    let wide = g.a.ram_alloc("wide", 2 * kw + 2);
    let cfg = xdh::XdhCfg {
        k,
        bits: mc.ladder_bits(),
        bufs,
    };

    // ---- entry points (micro entries; `main_xdh` comes with the suite)
    emit_xdh_entries(&mut g, &bufs);

    // ---- architecture bindings --------------------------------------
    let mont_p = Montgomery::new(f.modulus());
    match arch {
        Arch::Baseline | Arch::IsaExt => {
            let acc = g.a.ram_alloc("fred_acc", kw + 2);
            let eea = EeaBufs {
                u: g.a.ram_alloc("eea_u", kw + 1),
                v: g.a.ram_alloc("eea_v", kw + 1),
                x1: g.a.ram_alloc("eea_x1", kw + 1),
                x2: g.a.ram_alloc("eea_x2", kw + 1),
            };
            fp::emit_fadd(&mut g, "fadd", k, "const_p");
            fp::emit_fsub(&mut g, "fsub", k, "const_p");
            if arch == Arch::IsaExt {
                fp::emit_fmul_ps_ext(&mut g, "fmul", k, wide, "fred");
                fp::emit_fsqr_ps_ext(&mut g, "fsqr", k, wide, "fred");
            } else {
                fp::emit_fmul_os(&mut g, "fmul", k, wide, "fred");
                // fsqr = fmul(a, a)
                g.a.label("fsqr");
                g.a.j("fmul");
                g.a.mov(Reg::A2, Reg::A1); // delay slot
            }
            fp::emit_fred(&mut g, "fred", f, acc, "const_p");
            fp::emit_eea_inv(&mut g, "eea_int", k, eea);
            emit_prime_finv_binding(&mut g);
            emit_noop_sync(&mut g);
            emit_plain_domain(&mut g);
            // a24 multiply: a plain field multiply by the ROM constant.
            g.a.label("fmula24");
            g.a.la(Reg::A2, "const_a24");
            g.a.j("fmul");
            g.a.nop();
            g.a.label("arch_init");
            g.a.ret();
        }
        Arch::Monte => {
            let monte_n = g.a.ram_alloc("monte_n", kw);
            let fermat_r = g.a.ram_alloc("fermat_r", kw);
            let fermat_b = g.a.ram_alloc("fermat_b", kw);
            let xp = mc.prime();
            monte_glue::emit_monte_init_with(
                &mut g,
                k,
                mont_p.n0_prime(),
                monte_n,
                &monte_glue::MONTE_XDH_RAM_CONSTANTS,
                Some((
                    xp.a24() as u32,
                    xp.fold_delta() as u32,
                    xp.fold_second_offset() as u32,
                )),
            );
            monte_glue::emit_monte_field_ops(&mut g);
            monte_glue::emit_monte_fmula24(&mut g);
            let pm2 = f.modulus().sub(&Mp::from_u64(2));
            monte_glue::emit_monte_finv(&mut g, pm2.bit_len(), fermat_r, fermat_b);
        }
        Arch::Billie => unreachable!("rejected above"),
    }

    // Shared helpers and the ladder itself.
    emit_fisz(&mut g, k);
    fp::emit_fcopy(&mut g, "fcopy", k);
    xdh::emit_xdh_suite(&mut g, &cfg);

    // ---- constants --------------------------------------------------
    let p = f.modulus();
    g.a.data_label("const_p");
    g.a.words(&p.to_limbs(k));
    if arch == Arch::Monte {
        for (ram, _) in monte_glue::MONTE_XDH_RAM_CONSTANTS {
            g.a.ram_alloc(ram, kw);
        }
        g.a.data_label("rom_one");
        g.a.words(&mont_p.to_mont(&Mp::one().to_limbs(k)));
        g.a.data_label("rom_zero");
        g.a.words(&vec![0u32; k]);
        g.a.data_label("rom_r2p");
        g.a.words(mont_p.r2());
        g.a.data_label("rom_intone");
        g.a.words(&Mp::one().to_limbs(k));
        g.a.data_label("const_pm2");
        g.a.words(&p.sub(&Mp::from_u64(2)).to_limbs(k));
    } else {
        g.a.data_label("const_one");
        g.a.words(&Mp::one().to_limbs(k));
        g.a.data_label("const_zero");
        g.a.words(&vec![0u32; k]);
        g.a.data_label("const_a24");
        g.a.words(&Mp::from_u64(mc.prime().a24()).to_limbs(k));
    }

    let program = g.a.link("main_xdh").expect("xdh suite must link");
    Suite {
        program,
        arch,
        curve_id: id,
        k,
        kn,
    }
}

/// The field micro-entries of the XDH image (same labels and marshalling
/// as the ECDSA suites, so the differential fuzzer drives both kinds of
/// image identically).
fn emit_xdh_entries(g: &mut Gen, b: &xdh::XdhBufs) {
    let ft = b.t;
    let (aq_x, aq_y, out_r) = (b.arg_qx, b.arg_qy, b.out_r);
    for (entry, op, binary_op) in [
        ("main_fmul", "fmul", true),
        ("main_fadd", "fadd", true),
        ("main_fsub", "fsub", true),
        ("main_fsqr", "fsqr", false),
        ("main_finv", "finv", false),
    ] {
        g.a.label(entry);
        g.a.jal("arch_init");
        g.a.nop();
        g.a.li(Reg::A0, ft[0] as i64);
        g.a.li(Reg::A1, aq_x as i64);
        g.a.jal("fin");
        g.a.nop();
        if binary_op {
            g.a.li(Reg::A0, ft[1] as i64);
            g.a.li(Reg::A1, aq_y as i64);
            g.a.jal("fin");
            g.a.nop();
        }
        g.a.li(Reg::A0, ft[2] as i64);
        g.a.li(Reg::A1, ft[0] as i64);
        if binary_op {
            g.a.li(Reg::A2, ft[1] as i64);
        }
        g.a.jal(op);
        g.a.nop();
        g.a.li(Reg::A0, out_r as i64);
        g.a.li(Reg::A1, ft[2] as i64);
        g.a.jal("fout");
        g.a.nop();
        g.a.brk(0);
    }
}

/// The `main_*` entry points (each: `arch_init`, marshal arguments, call,
/// `break`).
fn emit_entries(g: &mut Gen, cfg: &PointCfg, arg_px: u32, arg_py: u32) {
    let b = &cfg.bufs;
    let call = |g: &mut Gen, entry: &str, body: &dyn Fn(&mut Gen)| {
        g.a.label(entry);
        g.a.jal("arch_init");
        g.a.nop();
        body(g);
        g.a.brk(0);
    };
    call(g, "main_sign", &|g| {
        g.a.jal("ecdsa_sign");
        g.a.nop();
    });
    call(g, "main_verify", &|g| {
        g.a.jal("ecdsa_verify");
        g.a.nop();
    });
    let (sm_k, sm_px, sm_py) = (b.sm_k, b.sm_px, b.sm_py);
    let (arg_k, out_r, out_s) = (b.arg_k, b.out_r, b.out_s);
    let (sm_outx, sm_outy) = (b.sm_outx, b.sm_outy);
    call(g, "main_scalar_mul", &move |g| {
        // k*G with G from ROM; result converted out of the domain.
        {
            let (dst, src) = (sm_k, arg_k);
            g.a.li(Reg::A0, dst as i64);
            g.a.li(Reg::A1, src as i64);
            g.a.jal("ncopy");
            g.a.nop();
        }
        g.a.li(Reg::A0, sm_px as i64);
        g.a.la(Reg::A1, "const_gx");
        g.a.jal("fcopy");
        g.a.nop();
        g.a.li(Reg::A0, sm_py as i64);
        g.a.la(Reg::A1, "const_gy");
        g.a.jal("fcopy");
        g.a.nop();
        g.a.jal("scalar_mul");
        g.a.nop();
        g.a.li(Reg::A0, out_r as i64);
        g.a.li(Reg::A1, sm_outx as i64);
        g.a.jal("fout");
        g.a.nop();
        g.a.li(Reg::A0, out_s as i64);
        g.a.li(Reg::A1, sm_outy as i64);
        g.a.jal("fout");
        g.a.nop();
    });
    // Micro entries: field ops on arg_qx/arg_qy -> out_r (through the
    // domain conversions, so they exercise the whole plumbing).
    let ft = b.ft;
    let (aq_x, aq_y) = (b.arg_qx, b.arg_qy);
    for (entry, op, binary_op) in [
        ("main_fmul", "fmul", true),
        ("main_fadd", "fadd", true),
        ("main_fsub", "fsub", true),
        ("main_fsqr", "fsqr", false),
        ("main_finv", "finv", false),
    ] {
        let out_r = b.out_r;
        call(g, entry, &move |g| {
            g.a.li(Reg::A0, ft[0] as i64);
            g.a.li(Reg::A1, aq_x as i64);
            g.a.jal("fin");
            g.a.nop();
            if binary_op {
                g.a.li(Reg::A0, ft[1] as i64);
                g.a.li(Reg::A1, aq_y as i64);
                g.a.jal("fin");
                g.a.nop();
            }
            g.a.li(Reg::A0, ft[2] as i64);
            g.a.li(Reg::A1, ft[0] as i64);
            if binary_op {
                g.a.li(Reg::A2, ft[1] as i64);
            }
            g.a.jal(op);
            g.a.nop();
            g.a.li(Reg::A0, out_r as i64);
            g.a.li(Reg::A1, ft[2] as i64);
            g.a.jal("fout");
            g.a.nop();
        });
    }
    // Point micro entries: P in arg_px/arg_py (affine), optional second
    // affine point in arg_qx/arg_qy; result out_r/out_s (normal domain).
    let (pt_in_x, pt_in_y) = (arg_px, arg_py);
    for (entry, do_add) in [("main_pdbl", false), ("main_padd", true)] {
        let (out_r, out_s) = (b.out_r, b.out_s);
        let (tqx, tqy) = (b.tw_qx, b.tw_qy);
        let (f5, f6) = (ft[4], ft[5]);
        call(g, entry, &move |g| {
            // fin both coordinates of P into ft buffers, lift, operate.
            g.a.li(Reg::A0, f5 as i64);
            g.a.li(Reg::A1, pt_in_x as i64);
            g.a.jal("fin");
            g.a.nop();
            g.a.li(Reg::A0, f6 as i64);
            g.a.li(Reg::A1, pt_in_y as i64);
            g.a.jal("fin");
            g.a.nop();
            g.a.li(Reg::A0, f5 as i64);
            g.a.li(Reg::A1, f6 as i64);
            g.a.jal("pt_set_affine");
            g.a.nop();
            if do_add {
                g.a.li(Reg::A0, tqx as i64);
                g.a.li(Reg::A1, aq_x as i64);
                g.a.jal("fin");
                g.a.nop();
                g.a.li(Reg::A0, tqy as i64);
                g.a.li(Reg::A1, aq_y as i64);
                g.a.jal("fin");
                g.a.nop();
                g.a.li(Reg::A0, tqx as i64);
                g.a.li(Reg::A1, tqy as i64);
                g.a.jal("padd");
                g.a.nop();
            } else {
                g.a.jal("pdbl");
                g.a.nop();
            }
            g.a.li(Reg::A0, f5 as i64);
            g.a.li(Reg::A1, f6 as i64);
            g.a.jal("pt_to_affine");
            g.a.nop();
            g.a.li(Reg::A0, out_r as i64);
            g.a.li(Reg::A1, f5 as i64);
            g.a.jal("fout");
            g.a.nop();
            g.a.li(Reg::A0, out_s as i64);
            g.a.li(Reg::A1, f6 as i64);
            g.a.jal("fout");
            g.a.nop();
        });
    }
    // Twin-mult micro entry: u1 = arg_e, u2 = arg_d, Q = arg_qx/arg_qy.
    {
        let (u1, u2, e, d) = (b.tw_u1, b.tw_u2, b.arg_e, b.arg_d);
        let (tqx, tqy, ox, oy) = (b.tw_qx, b.tw_qy, b.tw_outx, b.tw_outy);
        let (out_r, out_s) = (b.out_r, b.out_s);
        call(g, "main_twin_mul", &move |g| {
            for (dst, src) in [(u1, e), (u2, d)] {
                g.a.li(Reg::A0, dst as i64);
                g.a.li(Reg::A1, src as i64);
                g.a.jal("ncopy");
                g.a.nop();
            }
            for (dst, src) in [(tqx, aq_x), (tqy, aq_y)] {
                g.a.li(Reg::A0, dst as i64);
                g.a.li(Reg::A1, src as i64);
                g.a.jal("fin");
                g.a.nop();
            }
            g.a.jal("twin_mul");
            g.a.nop();
            for (dst, src) in [(out_r, ox), (out_s, oy)] {
                g.a.li(Reg::A0, dst as i64);
                g.a.li(Reg::A1, src as i64);
                g.a.jal("fout");
                g.a.nop();
            }
        });
    }
    // Protocol-arithmetic micro entry: out_r = arg_e * arg_d mod n.
    {
        let (e, d, out_r) = (b.arg_e, b.arg_d, b.out_r);
        call(g, "main_nmul", &move |g| {
            g.a.li(Reg::A0, out_r as i64);
            g.a.li(Reg::A1, e as i64);
            g.a.li(Reg::A2, d as i64);
            g.a.jal("nmul");
            g.a.nop();
        });
    }
}

/// `finv` binding for the software prime tiers: the generic integer EEA
/// with the field prime as modulus.
fn emit_prime_finv_binding(g: &mut Gen) {
    g.a.label("finv");
    g.a.la(Reg::A2, "const_p");
    g.a.j("eea_int");
    g.a.nop();
}

/// `fsync` binding when no accelerator is attached.
fn emit_noop_sync(g: &mut Gen) {
    g.a.label("fsync");
    g.a.ret();
}

/// `fin`/`fout` bindings when no Montgomery domain is in play: plain
/// copies.
fn emit_plain_domain(g: &mut Gen) {
    g.a.label("fin");
    g.a.j("fcopy");
    g.a.nop();
    g.a.label("fout");
    g.a.j("fcopy");
    g.a.nop();
}

/// `fisz`: `v0 = 1` iff the k-word buffer at `a0` is all zero;
/// synchronizes with the accelerator first.
fn emit_fisz(g: &mut Gen, k: usize) {
    let loop_l = g.sym("fisz_l");
    let nz = g.sym("fisz_nz");
    let done = g.sym("fisz_done");
    g.a.label("fisz");
    g.a.addiu(Reg::SP, Reg::SP, -16);
    g.a.sw(Reg::RA, 12, Reg::SP);
    g.a.sw(Reg::S0, 8, Reg::SP);
    g.a.mov(Reg::S0, Reg::A0);
    g.a.jal("fsync");
    g.a.nop();
    g.a.li(Reg::T9, k as i64);
    g.a.mov(Reg::T4, Reg::S0);
    g.a.li(Reg::V0, 1);
    g.a.label(&loop_l);
    g.a.lw(Reg::T0, 0, Reg::T4);
    g.a.bne(Reg::T0, Reg::ZERO, &nz);
    g.a.addiu(Reg::T4, Reg::T4, 4); // delay
    g.a.addiu(Reg::T9, Reg::T9, -1);
    g.a.bne(Reg::T9, Reg::ZERO, &loop_l);
    g.a.nop();
    g.a.b(&done);
    g.a.nop();
    g.a.label(&nz);
    g.a.li(Reg::V0, 0);
    g.a.label(&done);
    g.a.lw(Reg::RA, 12, Reg::SP);
    g.a.lw(Reg::S0, 8, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 16);
    g.a.ret();
}

/// `nmul`: full modular multiplication modulo the group order, as two
/// CIOS passes (`t = a·b·R^{-1}`, then `t·R^2·R^{-1} = a·b`).
fn emit_nmul(g: &mut Gen, nm_tmp: u32) {
    g.a.label("nmul");
    g.a.addiu(Reg::SP, Reg::SP, -8);
    g.a.sw(Reg::RA, 4, Reg::SP);
    g.a.sw(Reg::S0, 0, Reg::SP);
    g.a.mov(Reg::S0, Reg::A0);
    g.a.li(Reg::A0, nm_tmp as i64);
    g.a.jal("cios_n");
    g.a.nop();
    g.a.mov(Reg::A0, Reg::S0);
    g.a.li(Reg::A1, nm_tmp as i64);
    g.a.la(Reg::A2, "const_r2n");
    g.a.jal("cios_n");
    g.a.nop();
    g.a.lw(Reg::RA, 4, Reg::SP);
    g.a.lw(Reg::S0, 0, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 8);
    g.a.ret();
}

/// Lays out every ROM constant the suite references.
fn emit_constants(
    g: &mut Gen,
    curve: &Curve,
    arch: Arch,
    k: usize,
    kn: usize,
    mont_p: Option<&Montgomery>,
    n_mont: &Montgomery,
) {
    let in_domain = arch == Arch::Monte;
    let conv = |v: &Mp| -> Vec<u32> {
        if in_domain {
            let m = mont_p.expect("Monte implies a prime curve");
            m.to_mont(&v.to_limbs(k))
        } else {
            v.to_limbs(k)
        }
    };
    match curve.kind() {
        CurveKind::Prime(c) => {
            g.a.data_label("const_p");
            g.a.words(&c.field().modulus().to_limbs(k));
            if in_domain {
                // Monte's DMA only reaches the shared RAM, so everything
                // a field operation may name lives in RAM buffers that
                // `arch_init` populates from these ROM images.
                let m = mont_p.expect("prime");
                for (ram, _) in crate::monte_glue::MONTE_RAM_CONSTANTS {
                    g.a.ram_alloc(ram, k as u32);
                }
                g.a.data_label("rom_gx");
                g.a.words(&conv(&c.generator().x().expect("finite").to_mp()));
                g.a.data_label("rom_gy");
                g.a.words(&conv(&c.generator().y().expect("finite").to_mp()));
                g.a.data_label("rom_one");
                g.a.words(&conv(&Mp::one()));
                g.a.data_label("rom_zero");
                g.a.words(&vec![0u32; k]);
                g.a.data_label("rom_r2p");
                g.a.words(m.r2());
                g.a.data_label("rom_intone");
                g.a.words(&Mp::one().to_limbs(k));
                g.a.data_label("const_pm2");
                g.a.words(&c.field().modulus().sub(&Mp::from_u64(2)).to_limbs(k));
            } else {
                g.a.data_label("const_gx");
                g.a.words(&conv(&c.generator().x().expect("finite").to_mp()));
                g.a.data_label("const_gy");
                g.a.words(&conv(&c.generator().y().expect("finite").to_mp()));
                g.a.data_label("const_one");
                g.a.words(&conv(&Mp::one()));
            }
        }
        CurveKind::Binary(c) => {
            g.a.data_label("const_gx");
            g.a.words(&c.generator().x().expect("finite").to_mp().to_limbs(k));
            g.a.data_label("const_gy");
            g.a.words(&c.generator().y().expect("finite").to_mp().to_limbs(k));
            g.a.data_label("const_one");
            g.a.words(&Mp::one().to_limbs(k));
            g.a.data_label("const_b");
            g.a.words(&c.b().to_mp().to_limbs(k));
            g.a.data_label("spread_tbl");
            g.a.words(&f2m::spread_table_words());
        }
        CurveKind::Mont(_) => unreachable!("the XDH suite emits its own constants"),
    }
    if !in_domain {
        g.a.data_label("const_zero");
        g.a.words(&vec![0u32; k]);
    }
    g.a.data_label("const_n");
    g.a.words(&curve.n().to_limbs(kn));
    g.a.data_label("const_r2n");
    g.a.words(n_mont.r2());
}
