//! Shared point-operation, scalar-multiplication, and ECDSA codegen.
//!
//! These emitters are written once against *bound field-routine labels*
//! and work for every non-Billie configuration of the study: the builder
//! binds `fmul`/`fsqr`/`fadd`/`fsub`/`fcopy`/`finv`/`fisz`/`fsync` to the
//! baseline, ISA-extended, or Monte implementations, and this module
//! generates on top of them:
//!
//! * mixed **Jacobian–affine** point double/add for GF(p) curves and
//!   mixed **Lopez–Dahab–affine** for GF(2^m) curves (§4.1);
//! * the **sliding-window** single scalar multiplication with a runtime
//!   precomputed odd-multiple table, and the **twin** multiplication with
//!   precomputed `P+Q` / `P-Q` (§4.1) — both transliterations of the host
//!   algorithms in `ule_curves::scalar`, so they can be differentially
//!   tested point-for-point;
//! * ECDSA **sign** and **verify**, including the protocol arithmetic
//!   modulo the group order, which stays on Pete in every configuration
//!   (§4.1).
//!
//! Montgomery-domain configurations (Monte) additionally bind
//! `fin`/`fout` (domain entry/exit) — identity copies elsewhere.

use crate::fp::{emit_cmp_ge_or, emit_sub_loop};
use crate::gen::Gen;
use ule_isa::reg::Reg;

const A0: Reg = Reg::A0;
const A1: Reg = Reg::A1;
const V0: Reg = Reg::V0;
const T0: Reg = Reg::T0;
const T1: Reg = Reg::T1;
const T4: Reg = Reg::T4;
const T8: Reg = Reg::T8;
const T9: Reg = Reg::T9;
const S0: Reg = Reg::S0;
const S1: Reg = Reg::S1;
const S2: Reg = Reg::S2;
const S4: Reg = Reg::S4;
const ZERO: Reg = Reg::ZERO;
const RA: Reg = Reg::RA;

/// Curve family selector for the point formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// GF(p) short Weierstraß with `a = p-3` (Jacobian coordinates).
    Prime,
    /// GF(2^m) Koblitz (`b = 1`), Lopez–Dahab coordinates.
    Binary {
        /// Whether the curve coefficient `a` is 1 (K-163) or 0 (rest).
        a_is_one: bool,
    },
}

/// RAM buffer addresses used by the point/scalar/ECDSA codegen (all
/// allocated by the suite builder).
#[derive(Clone, Copy, Debug)]
#[allow(missing_docs)]
pub struct PointBufs {
    pub pt_x: u32,
    pub pt_y: u32,
    pub pt_z: u32,
    pub ft: [u32; 6],
    pub tab_x: u32,
    pub tab_y: u32,
    pub two_px: u32,
    pub two_py: u32,
    pub sm_k: u32,
    pub sm_px: u32,
    pub sm_py: u32,
    pub sm_outx: u32,
    pub sm_outy: u32,
    pub tw_u1: u32,
    pub tw_u2: u32,
    pub tw_qx: u32,
    pub tw_qy: u32,
    pub tw_pqx: u32,
    pub tw_pqy: u32,
    pub tw_pmx: u32,
    pub tw_pmy: u32,
    pub tw_nqy: u32,
    pub tw_outx: u32,
    pub tw_outy: u32,
    pub ecd_t1: u32,
    pub ecd_t2: u32,
    pub ecd_t3: u32,
    pub ecd_x: u32,
    pub arg_e: u32,
    pub arg_d: u32,
    pub arg_k: u32,
    pub arg_r: u32,
    pub arg_s: u32,
    pub arg_qx: u32,
    pub arg_qy: u32,
    pub out_r: u32,
    pub out_s: u32,
    pub out_ok: u32,
}

/// Everything the point codegen needs to know.
#[derive(Clone, Copy, Debug)]
pub struct PointCfg {
    /// Curve family.
    pub family: Family,
    /// Field element width in words.
    pub k: usize,
    /// Group-order width in words (== `k` for every curve in the study).
    pub kn: usize,
    /// The buffers.
    pub bufs: PointBufs,
}

/// An operand for a bound field-routine call.
#[derive(Clone, Debug)]
pub enum Loc {
    /// A RAM buffer address known at build time.
    Buf(u32),
    /// A ROM data label (curve constants).
    Lbl(&'static str),
    /// A pointer already held in a register (saved `s*`).
    Reg(Reg),
}

/// Emits argument setup plus `jal routine; nop`.
fn fcall(g: &mut Gen, routine: &str, args: &[(Reg, Loc)]) {
    for (reg, loc) in args {
        match loc {
            Loc::Buf(addr) => g.a.li(*reg, *addr as i64),
            Loc::Lbl(l) => g.a.la(*reg, l),
            Loc::Reg(src) => g.a.mov(*reg, *src),
        }
    }
    g.a.jal(routine);
    g.a.nop();
}

fn buf(addr: u32) -> Loc {
    Loc::Buf(addr)
}

/// Shorthand: `dst = fmul(s1, s2)`.
fn mul(g: &mut Gen, dst: Loc, s1: Loc, s2: Loc) {
    fcall(g, "fmul", &[(A0, dst), (A1, s1), (Reg::A2, s2)]);
}
fn sqr(g: &mut Gen, dst: Loc, s1: Loc) {
    fcall(g, "fsqr", &[(A0, dst), (A1, s1)]);
}
fn add(g: &mut Gen, dst: Loc, s1: Loc, s2: Loc) {
    fcall(g, "fadd", &[(A0, dst), (A1, s1), (Reg::A2, s2)]);
}
fn sub(g: &mut Gen, dst: Loc, s1: Loc, s2: Loc) {
    fcall(g, "fsub", &[(A0, dst), (A1, s1), (Reg::A2, s2)]);
}
fn copy(g: &mut Gen, dst: Loc, s1: Loc) {
    fcall(g, "fcopy", &[(A0, dst), (A1, s1)]);
}
fn inv(g: &mut Gen, dst: Loc, s1: Loc) {
    fcall(g, "finv", &[(A0, dst), (A1, s1)]);
}
/// `v0 = 1` iff the k-word buffer is all zero (synchronizes first).
fn isz(g: &mut Gen, s1: Loc) {
    fcall(g, "fisz", &[(A0, s1)]);
}

/// Emits `pt_set_identity`: the projective identity into the working
/// point — `(1, 1, 0)` for Jacobian, `(1, 0, 0)` for LD.
pub fn emit_pt_set_identity(g: &mut Gen, cfg: &PointCfg) {
    g.a.label("pt_set_identity");
    g.a.addiu(Reg::SP, Reg::SP, -8);
    g.a.sw(RA, 4, Reg::SP);
    copy(g, buf(cfg.bufs.pt_x), Loc::Lbl("const_one"));
    match cfg.family {
        Family::Prime => copy(g, buf(cfg.bufs.pt_y), Loc::Lbl("const_one")),
        Family::Binary { .. } => copy(g, buf(cfg.bufs.pt_y), Loc::Lbl("const_zero")),
    }
    copy(g, buf(cfg.bufs.pt_z), Loc::Lbl("const_zero"));
    g.a.lw(RA, 4, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 8);
    g.a.ret();
}

/// Emits `pt_set_affine`: `a0`=x ptr, `a1`=y ptr lifted into the working
/// point with `Z = 1`.
pub fn emit_pt_set_affine(g: &mut Gen, cfg: &PointCfg) {
    g.a.label("pt_set_affine");
    g.a.addiu(Reg::SP, Reg::SP, -16);
    g.a.sw(RA, 12, Reg::SP);
    g.a.sw(S0, 8, Reg::SP);
    g.a.sw(S1, 4, Reg::SP);
    g.a.mov(S0, A0);
    g.a.mov(S1, A1);
    copy(g, buf(cfg.bufs.pt_x), Loc::Reg(S0));
    copy(g, buf(cfg.bufs.pt_y), Loc::Reg(S1));
    copy(g, buf(cfg.bufs.pt_z), Loc::Lbl("const_one"));
    g.a.lw(RA, 12, Reg::SP);
    g.a.lw(S0, 8, Reg::SP);
    g.a.lw(S1, 4, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 16);
    g.a.ret();
}

/// Emits `pdbl`: in-place projective doubling of the working point.
pub fn emit_pdbl(g: &mut Gen, cfg: &PointCfg) {
    let b = &cfg.bufs;
    let ident = g.sym("pdbl_ident");
    let go = g.sym("pdbl_go");
    g.a.label("pdbl");
    g.a.addiu(Reg::SP, Reg::SP, -8);
    g.a.sw(RA, 4, Reg::SP);
    isz(g, buf(b.pt_z));
    g.a.beq(V0, ZERO, &go);
    g.a.nop();
    g.a.b(&ident); // identity in, identity out
    g.a.nop();
    g.a.label(&go);
    match cfg.family {
        Family::Prime => {
            // y == 0 would be a 2-torsion point: result is the identity.
            let not2t = g.sym("pdbl_n2t");
            isz(g, buf(b.pt_y));
            g.a.beq(V0, ZERO, &not2t);
            g.a.nop();
            fcall(g, "pt_set_identity", &[]);
            g.a.b(&ident);
            g.a.nop();
            g.a.label(&not2t);
            let [f1, f2, f3, f4, f5, _] = b.ft;
            sqr(g, buf(f1), buf(b.pt_y)); // ysq
            mul(g, buf(f2), buf(b.pt_x), buf(f1));
            add(g, buf(f2), buf(f2), buf(f2));
            add(g, buf(f2), buf(f2), buf(f2)); // S = 4 X ysq
            sqr(g, buf(f3), buf(b.pt_z)); // zsq
            sub(g, buf(f4), buf(b.pt_x), buf(f3));
            add(g, buf(f5), buf(b.pt_x), buf(f3));
            mul(g, buf(f4), buf(f4), buf(f5)); // (X-Z^2)(X+Z^2)
            add(g, buf(f5), buf(f4), buf(f4));
            add(g, buf(f4), buf(f4), buf(f5)); // M = 3 * t
            mul(g, buf(f3), buf(b.pt_y), buf(b.pt_z));
            add(g, buf(f3), buf(f3), buf(f3)); // Z3 = 2 Y Z
            sqr(g, buf(b.pt_x), buf(f4));
            sub(g, buf(b.pt_x), buf(b.pt_x), buf(f2));
            sub(g, buf(b.pt_x), buf(b.pt_x), buf(f2)); // X3 = M^2 - 2S
            sub(g, buf(f5), buf(f2), buf(b.pt_x));
            mul(g, buf(f5), buf(f4), buf(f5)); // M (S - X3)
            sqr(g, buf(f1), buf(f1));
            add(g, buf(f1), buf(f1), buf(f1));
            add(g, buf(f1), buf(f1), buf(f1));
            add(g, buf(f1), buf(f1), buf(f1)); // 8 ysq^2
            sub(g, buf(b.pt_y), buf(f5), buf(f1));
            copy(g, buf(b.pt_z), buf(f3));
        }
        Family::Binary { a_is_one } => {
            let [f1, f2, f3, f4, _, _] = b.ft;
            sqr(g, buf(f1), buf(b.pt_x)); // x2
            sqr(g, buf(f2), buf(b.pt_z)); // z2
            sqr(g, buf(f3), buf(f2));
            mul(g, buf(f3), buf(f3), Loc::Lbl("const_b")); // b z^4
            mul(g, buf(f2), buf(f1), buf(f2)); // Z3 = x2 z2
            sqr(g, buf(f1), buf(f1)); // x^4
            add(g, buf(b.pt_x), buf(f1), buf(f3)); // X3
            sqr(g, buf(f4), buf(b.pt_y)); // y^2
            if a_is_one {
                add(g, buf(f4), buf(f4), buf(f2)); // + a Z3
            }
            add(g, buf(f4), buf(f4), buf(f3)); // + b z^4
            mul(g, buf(f4), buf(b.pt_x), buf(f4));
            mul(g, buf(f3), buf(f3), buf(f2)); // b z^4 Z3
            add(g, buf(b.pt_y), buf(f4), buf(f3));
            copy(g, buf(b.pt_z), buf(f2));
        }
    }
    g.a.label(&ident);
    g.a.lw(RA, 4, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 8);
    g.a.ret();
}

/// Emits `padd`: mixed projective + affine addition into the working
/// point. ABI: `a0` = affine x pointer, `a1` = affine y pointer.
pub fn emit_padd(g: &mut Gen, cfg: &PointCfg) {
    let b = &cfg.bufs;
    let done = g.sym("padd_done");
    let from_affine = g.sym("padd_aff");
    let not_ident = g.sym("padd_ni");
    let h_zero = g.sym("padd_h0");
    let h_nonzero = g.sym("padd_hnz");
    g.a.label("padd");
    g.a.addiu(Reg::SP, Reg::SP, -16);
    g.a.sw(RA, 12, Reg::SP);
    g.a.sw(S0, 8, Reg::SP);
    g.a.sw(S1, 4, Reg::SP);
    g.a.mov(S0, A0);
    g.a.mov(S1, A1);
    isz(g, buf(b.pt_z));
    g.a.bne(V0, ZERO, &from_affine);
    g.a.nop();
    g.a.b(&not_ident);
    g.a.nop();
    g.a.label(&from_affine);
    copy(g, buf(b.pt_x), Loc::Reg(S0));
    copy(g, buf(b.pt_y), Loc::Reg(S1));
    copy(g, buf(b.pt_z), Loc::Lbl("const_one"));
    g.a.b(&done);
    g.a.nop();
    g.a.label(&not_ident);
    match cfg.family {
        Family::Prime => {
            let [f1, f2, f3, f4, f5, f6] = b.ft;
            sqr(g, buf(f1), buf(b.pt_z)); // z1z1
            mul(g, buf(f2), Loc::Reg(S0), buf(f1)); // u2
            mul(g, buf(f3), buf(f1), buf(b.pt_z));
            mul(g, buf(f3), Loc::Reg(S1), buf(f3)); // s2
            sub(g, buf(f2), buf(f2), buf(b.pt_x)); // H
            sub(g, buf(f3), buf(f3), buf(b.pt_y)); // R
            isz(g, buf(f2));
            g.a.bne(V0, ZERO, &h_zero);
            g.a.nop();
            g.a.b(&h_nonzero);
            g.a.nop();
            g.a.label(&h_zero);
            // H == 0: doubling when R == 0, identity otherwise.
            isz(g, buf(f3));
            {
                let to_ident = g.sym("padd_toid");
                g.a.beq(V0, ZERO, &to_ident);
                g.a.nop();
                fcall(g, "pdbl", &[]);
                g.a.b(&done);
                g.a.nop();
                g.a.label(&to_ident);
                fcall(g, "pt_set_identity", &[]);
                g.a.b(&done);
                g.a.nop();
            }
            g.a.label(&h_nonzero);
            sqr(g, buf(f4), buf(f2)); // HH
            mul(g, buf(f5), buf(f2), buf(f4)); // HHH
            mul(g, buf(f4), buf(b.pt_x), buf(f4)); // V
            sqr(g, buf(b.pt_x), buf(f3));
            sub(g, buf(b.pt_x), buf(b.pt_x), buf(f5));
            sub(g, buf(b.pt_x), buf(b.pt_x), buf(f4));
            sub(g, buf(b.pt_x), buf(b.pt_x), buf(f4)); // X3
            sub(g, buf(f6), buf(f4), buf(b.pt_x));
            mul(g, buf(f6), buf(f3), buf(f6)); // R (V - X3)
            mul(g, buf(f5), buf(b.pt_y), buf(f5)); // Y1 HHH
            sub(g, buf(b.pt_y), buf(f6), buf(f5));
            mul(g, buf(b.pt_z), buf(b.pt_z), buf(f2)); // Z3 = Z H
        }
        Family::Binary { a_is_one } => {
            let [f1, f2, f3, f4, f5, f6] = b.ft;
            sqr(g, buf(f1), buf(b.pt_z)); // z1sq
            mul(g, buf(f2), Loc::Reg(S1), buf(f1));
            add(g, buf(f2), buf(f2), buf(b.pt_y)); // A
            mul(g, buf(f3), Loc::Reg(S0), buf(b.pt_z));
            add(g, buf(f3), buf(f3), buf(b.pt_x)); // B
            isz(g, buf(f3));
            g.a.bne(V0, ZERO, &h_zero);
            g.a.nop();
            g.a.b(&h_nonzero);
            g.a.nop();
            g.a.label(&h_zero);
            isz(g, buf(f2));
            {
                let to_dbl = g.sym("padd_todbl");
                g.a.bne(V0, ZERO, &to_dbl);
                g.a.nop();
                fcall(g, "pt_set_identity", &[]);
                g.a.b(&done);
                g.a.nop();
                g.a.label(&to_dbl);
                fcall(g, "pdbl", &[]);
                g.a.b(&done);
                g.a.nop();
            }
            g.a.label(&h_nonzero);
            mul(g, buf(f4), buf(b.pt_z), buf(f3)); // C
            sqr(g, buf(f5), buf(f3)); // B^2
            if a_is_one {
                add(g, buf(f6), buf(f4), buf(f1)); // C + a z1sq
            } else {
                copy(g, buf(f6), buf(f4));
            }
            mul(g, buf(f5), buf(f5), buf(f6)); // D
            sqr(g, buf(f6), buf(f4)); // Z3
            mul(g, buf(f4), buf(f2), buf(f4)); // E = A C
            sqr(g, buf(b.pt_x), buf(f2));
            add(g, buf(b.pt_x), buf(b.pt_x), buf(f5));
            add(g, buf(b.pt_x), buf(b.pt_x), buf(f4)); // X3
            mul(g, buf(f5), Loc::Reg(S0), buf(f6));
            add(g, buf(f5), buf(f5), buf(b.pt_x)); // F
            add(g, buf(f1), Loc::Reg(S0), Loc::Reg(S1)); // x2 + y2
            sqr(g, buf(f2), buf(f6));
            mul(g, buf(f1), buf(f1), buf(f2)); // G
            add(g, buf(f4), buf(f4), buf(f6)); // E + Z3
            mul(g, buf(f4), buf(f4), buf(f5));
            add(g, buf(b.pt_y), buf(f4), buf(f1)); // Y3
            copy(g, buf(b.pt_z), buf(f6));
        }
    }
    g.a.label(&done);
    g.a.lw(RA, 12, Reg::SP);
    g.a.lw(S0, 8, Reg::SP);
    g.a.lw(S1, 4, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 16);
    g.a.ret();
}

/// Emits `pt_to_affine`: normalizes the working point into the buffers
/// given by `a0` (x) / `a1` (y); the one inversion of a scalar
/// multiplication. On the identity, writes zeros (callers in ECDSA treat
/// that as the invalid-signature case). Ends with an `fsync`, so Pete may
/// read the outputs immediately.
pub fn emit_pt_to_affine(g: &mut Gen, cfg: &PointCfg) {
    let b = &cfg.bufs;
    let done = g.sym("toaff_done");
    let ident = g.sym("toaff_ident");
    g.a.label("pt_to_affine");
    g.a.addiu(Reg::SP, Reg::SP, -16);
    g.a.sw(RA, 12, Reg::SP);
    g.a.sw(S0, 8, Reg::SP);
    g.a.sw(S1, 4, Reg::SP);
    g.a.mov(S0, A0);
    g.a.mov(S1, A1);
    isz(g, buf(b.pt_z));
    g.a.bne(V0, ZERO, &ident);
    g.a.nop();
    let [f1, f2, _, _, _, _] = b.ft;
    match cfg.family {
        Family::Prime => {
            inv(g, buf(f1), buf(b.pt_z));
            sqr(g, buf(f2), buf(f1));
            mul(g, Loc::Reg(S0), buf(b.pt_x), buf(f2));
            mul(g, buf(f2), buf(f2), buf(f1));
            mul(g, Loc::Reg(S1), buf(b.pt_y), buf(f2));
        }
        Family::Binary { .. } => {
            inv(g, buf(f1), buf(b.pt_z));
            mul(g, Loc::Reg(S0), buf(b.pt_x), buf(f1));
            sqr(g, buf(f1), buf(f1));
            mul(g, Loc::Reg(S1), buf(b.pt_y), buf(f1));
        }
    }
    fcall(g, "fsync", &[]);
    g.a.b(&done);
    g.a.nop();
    g.a.label(&ident);
    copy(g, Loc::Reg(S0), Loc::Lbl("const_zero"));
    copy(g, Loc::Reg(S1), Loc::Lbl("const_zero"));
    g.a.label(&done);
    g.a.lw(RA, 12, Reg::SP);
    g.a.lw(S0, 8, Reg::SP);
    g.a.lw(S1, 4, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 16);
    g.a.ret();
}

/// Emits an inline `v0 = bit(buffer, idx_reg)` fragment. Clobbers t0, t1.
pub fn emit_get_bit_for(g: &mut Gen, buf_addr: u32, idx: Reg) {
    emit_get_bit(g, buf_addr, idx)
}

fn emit_get_bit(g: &mut Gen, buf_addr: u32, idx: Reg) {
    g.a.srl(T0, idx, 5);
    g.a.sll(T0, T0, 2);
    g.a.li(T1, buf_addr as i64);
    g.a.addu(T0, T0, T1);
    g.a.lw(T0, 0, T0);
    g.a.andi(T1, idx, 31);
    g.a.srlv(T0, T0, T1);
    g.a.andi(V0, T0, 1);
}

/// Emits an inline "t8 = bit length of the `kn`-word buffer" fragment.
/// Clobbers t0..t4, t9.
pub fn emit_bitlen_for(g: &mut Gen, buf_addr: u32, kn: usize) {
    emit_bitlen_buf(g, buf_addr, kn)
}

fn emit_bitlen_buf(g: &mut Gen, buf_addr: u32, kn: usize) {
    let scan = g.sym("sbl_scan");
    let found = g.sym("sbl_found");
    let bitloop = g.sym("sbl_bit");
    let done = g.sym("sbl_done");
    let z = g.sym("sbl_z");
    g.a.li(T1, (buf_addr + ((kn - 1) * 4) as u32) as i64);
    g.a.li(T9, kn as i64);
    g.a.label(&scan);
    g.a.lw(Reg::T2, 0, T1);
    g.a.bne(Reg::T2, ZERO, &found);
    g.a.nop();
    g.a.addiu(T1, T1, -4);
    g.a.addiu(T9, T9, -1);
    g.a.bne(T9, ZERO, &scan);
    g.a.nop();
    g.a.b(&done);
    g.a.li(T8, 0); // delay: zero value
    g.a.label(&found);
    g.a.li(Reg::T3, 32);
    g.a.label(&bitloop);
    g.a.addiu(T4, Reg::T3, -1);
    g.a.srlv(T4, Reg::T2, T4);
    g.a.bne(T4, ZERO, &done);
    g.a.nop();
    g.a.b(&bitloop);
    g.a.addiu(Reg::T3, Reg::T3, -1); // delay
    g.a.label(&done);
    g.a.beq(T9, ZERO, &z);
    g.a.nop();
    g.a.addiu(T4, T9, -1);
    g.a.sll(T4, T4, 5);
    g.a.addu(T8, T4, Reg::T3);
    g.a.label(&z);
}

/// Emits `scalar_mul`: the left-to-right sliding-window multiplication
/// (width 3, odd multiples 1/3/5/7 precomputed at runtime, §4.1) of the
/// base point in `sm_px/sm_py` by the scalar in `sm_k`, leaving the
/// affine result in `sm_outx/sm_outy`.
pub fn emit_scalar_mul(g: &mut Gen, cfg: &PointCfg) {
    let b = &cfg.bufs;
    let k = cfg.k;
    let mainloop = g.sym("sm_main");
    let window = g.sym("sm_win");
    let jscan = g.sym("sm_jscan");
    let jdone = g.sym("sm_jdone");
    let vloop = g.sym("sm_vloop");
    let vdone = g.sym("sm_vdone");
    let dloop = g.sym("sm_dloop");
    let out = g.sym("sm_out");
    g.a.label("scalar_mul");
    g.a.addiu(Reg::SP, Reg::SP, -32);
    g.a.sw(RA, 28, Reg::SP);
    g.a.sw(S0, 24, Reg::SP);
    g.a.sw(S1, 20, Reg::SP);
    g.a.sw(S2, 16, Reg::SP);
    g.a.sw(Reg::S3, 12, Reg::SP);
    g.a.sw(S4, 8, Reg::SP);
    // Precompute the odd-multiple table.
    copy(g, buf(b.tab_x), buf(b.sm_px));
    copy(g, buf(b.tab_y), buf(b.sm_py));
    // 2P
    fcall(
        g,
        "pt_set_affine",
        &[(A0, buf(b.sm_px)), (A1, buf(b.sm_py))],
    );
    fcall(g, "pdbl", &[]);
    fcall(
        g,
        "pt_to_affine",
        &[(A0, buf(b.two_px)), (A1, buf(b.two_py))],
    );
    for i in 1..4u32 {
        let prev_x = b.tab_x + (i - 1) * (k as u32) * 4;
        let prev_y = b.tab_y + (i - 1) * (k as u32) * 4;
        let cur_x = b.tab_x + i * (k as u32) * 4;
        let cur_y = b.tab_y + i * (k as u32) * 4;
        fcall(g, "pt_set_affine", &[(A0, buf(prev_x)), (A1, buf(prev_y))]);
        fcall(g, "padd", &[(A0, buf(b.two_px)), (A1, buf(b.two_py))]);
        fcall(g, "pt_to_affine", &[(A0, buf(cur_x)), (A1, buf(cur_y))]);
    }
    // q = identity; i = bitlen(k) - 1
    fcall(g, "pt_set_identity", &[]);
    emit_bitlen_buf(g, b.sm_k, cfg.kn);
    g.a.addiu(S0, T8, -1); // i (signed)
    g.a.label(&mainloop);
    g.a.bltz(S0, &out);
    g.a.nop();
    emit_get_bit(g, b.sm_k, S0);
    g.a.bne(V0, ZERO, &window);
    g.a.nop();
    fcall(g, "pdbl", &[]);
    g.a.addiu(S0, S0, -1);
    g.a.b(&mainloop);
    g.a.nop();
    g.a.label(&window);
    // j = max(i - 2, 0); while !bit(j): j += 1
    g.a.addiu(S1, S0, -2);
    g.a.bgez(S1, &jscan);
    g.a.nop();
    g.a.li(S1, 0);
    g.a.label(&jscan);
    emit_get_bit(g, b.sm_k, S1);
    g.a.bne(V0, ZERO, &jdone);
    g.a.nop();
    g.a.b(&jscan);
    g.a.addiu(S1, S1, 1); // delay
    g.a.label(&jdone);
    // value = bits j..=i (s2); scan with s4 from i down to j
    g.a.li(S2, 0);
    g.a.mov(S4, S0);
    g.a.label(&vloop);
    emit_get_bit(g, b.sm_k, S4);
    g.a.sll(S2, S2, 1);
    g.a.or(S2, S2, V0);
    g.a.beq(S4, S1, &vdone);
    g.a.nop();
    g.a.b(&vloop);
    g.a.addiu(S4, S4, -1); // delay
    g.a.label(&vdone);
    // width doubles
    g.a.subu(S4, S0, S1);
    g.a.addiu(S4, S4, 1);
    g.a.label(&dloop);
    fcall(g, "pdbl", &[]);
    g.a.addiu(S4, S4, -1);
    g.a.bne(S4, ZERO, &dloop);
    g.a.nop();
    // padd(table[value >> 1])
    g.a.srl(T0, S2, 1);
    g.a.li(T1, (k * 4) as i64);
    g.a.multu(T0, T1);
    g.a.mflo(T0);
    g.a.li(A0, b.tab_x as i64);
    g.a.addu(A0, A0, T0);
    g.a.li(A1, b.tab_y as i64);
    g.a.addu(A1, A1, T0);
    g.a.jal("padd");
    g.a.nop();
    // i = j - 1
    g.a.addiu(S0, S1, -1);
    g.a.b(&mainloop);
    g.a.nop();
    g.a.label(&out);
    fcall(
        g,
        "pt_to_affine",
        &[(A0, buf(b.sm_outx)), (A1, buf(b.sm_outy))],
    );
    g.a.lw(RA, 28, Reg::SP);
    g.a.lw(S0, 24, Reg::SP);
    g.a.lw(S1, 20, Reg::SP);
    g.a.lw(S2, 16, Reg::SP);
    g.a.lw(Reg::S3, 12, Reg::SP);
    g.a.lw(S4, 8, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 32);
    g.a.ret();
}

/// Emits `twin_mul`: the simultaneous two-scalar multiplication
/// `u1*G + u2*Q` (§4.1), with `P+Q` (used) and `P-Q` (computed for cost
/// parity with the paper's signed-digit variant) precomputed. Inputs in
/// `tw_u1/tw_u2/tw_qx/tw_qy`; result in `tw_outx/tw_outy`.
pub fn emit_twin_mul(g: &mut Gen, cfg: &PointCfg) {
    let b = &cfg.bufs;
    let out = g.sym("tw_out");
    let normal = g.sym("tw_norm");
    let degenerate = g.sym("tw_deg");
    g.a.label("twin_mul");
    g.a.addiu(Reg::SP, Reg::SP, -16);
    g.a.sw(RA, 12, Reg::SP);
    g.a.sw(S0, 8, Reg::SP);
    g.a.sw(S1, 4, Reg::SP);
    // P + Q
    fcall(
        g,
        "pt_set_affine",
        &[(A0, Loc::Lbl("const_gx")), (A1, Loc::Lbl("const_gy"))],
    );
    fcall(g, "padd", &[(A0, buf(b.tw_qx)), (A1, buf(b.tw_qy))]);
    fcall(
        g,
        "pt_to_affine",
        &[(A0, buf(b.tw_pqx)), (A1, buf(b.tw_pqy))],
    );
    // P - Q (cost parity; result unused)
    match cfg.family {
        Family::Prime => sub(g, buf(b.tw_nqy), Loc::Lbl("const_zero"), buf(b.tw_qy)),
        Family::Binary { .. } => add(g, buf(b.tw_nqy), buf(b.tw_qx), buf(b.tw_qy)),
    }
    fcall(
        g,
        "pt_set_affine",
        &[(A0, Loc::Lbl("const_gx")), (A1, Loc::Lbl("const_gy"))],
    );
    fcall(g, "padd", &[(A0, buf(b.tw_qx)), (A1, buf(b.tw_nqy))]);
    fcall(
        g,
        "pt_to_affine",
        &[(A0, buf(b.tw_pmx)), (A1, buf(b.tw_pmy))],
    );
    // bits = max(bitlen(u1), bitlen(u2)) - 1
    emit_bitlen_buf(g, b.tw_u1, cfg.kn);
    g.a.mov(S0, T8);
    emit_bitlen_buf(g, b.tw_u2, cfg.kn);
    g.a.slt(T0, S0, T8);
    {
        let keep = g.sym("tw_keep");
        g.a.beq(T0, ZERO, &keep);
        g.a.nop();
        g.a.mov(S0, T8);
        g.a.label(&keep);
    }
    g.a.addiu(S0, S0, -1); // i
    fcall(g, "pt_set_identity", &[]);
    // When Q = -G the P+Q precompute is the group identity, which
    // `pt_to_affine` encodes as the (0, 0) sentinel — feeding that back
    // into `padd` as a finite point would corrupt the accumulator. A
    // finite P+Q can never have a zero probe coordinate (finite points
    // on an odd-order prime curve never have y = 0; order-n subgroup
    // points on the Koblitz curves never have x = 0), so one non-zero
    // word proves the precompute is finite and the common path pays only
    // this single-word probe.
    let probe = match cfg.family {
        Family::Prime => b.tw_pqy,
        Family::Binary { .. } => b.tw_pqx,
    };
    g.a.li(T4, probe as i64);
    g.a.lw(T0, 0, T4);
    g.a.bne(T0, ZERO, &normal);
    g.a.nop();
    {
        // Cold path: confirm the whole coordinate is zero.
        let scan = g.sym("tw_scan");
        g.a.li(T9, cfg.k as i64);
        g.a.label(&scan);
        g.a.lw(T0, 0, T4);
        g.a.bne(T0, ZERO, &normal);
        g.a.addiu(T4, T4, 4); // delay
        g.a.addiu(T9, T9, -1);
        g.a.bne(T9, ZERO, &scan);
        g.a.nop();
    }
    g.a.b(&degenerate);
    g.a.nop();
    g.a.label(&normal);
    emit_twin_loop(g, cfg, &out, false);
    g.a.label(&degenerate);
    emit_twin_loop(g, cfg, &out, true);
    g.a.label(&out);
    fcall(
        g,
        "pt_to_affine",
        &[(A0, buf(b.tw_outx)), (A1, buf(b.tw_outy))],
    );
    g.a.lw(RA, 12, Reg::SP);
    g.a.lw(S0, 8, Reg::SP);
    g.a.lw(S1, 4, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 16);
    g.a.ret();
}

/// Emits one copy of the twin-multiplication main loop (bit index in
/// `S0`, exits to `out` when it underflows). With `pq_is_identity` the
/// `(1, 1)` bit pair adds nothing — the degenerate `Q = -G` scan, where
/// `P+Q` is the group identity.
fn emit_twin_loop(g: &mut Gen, cfg: &PointCfg, out: &str, pq_is_identity: bool) {
    let b = &cfg.bufs;
    let mainloop = g.sym("tw_main");
    let after = g.sym("tw_after");
    let add_q = g.sym("tw_addq");
    let add_g = g.sym("tw_addg");
    g.a.label(&mainloop);
    g.a.bltz(S0, out);
    g.a.nop();
    fcall(g, "pdbl", &[]);
    emit_get_bit(g, b.tw_u1, S0);
    g.a.mov(S1, V0); // b1
    emit_get_bit(g, b.tw_u2, S0);
    // (b1, b2) dispatch
    g.a.and(T0, S1, V0);
    if pq_is_identity {
        // P+Q is the identity: adding it is a no-op.
        g.a.bne(T0, ZERO, &after);
        g.a.nop();
        g.a.bne(S1, ZERO, &add_g);
        g.a.nop();
        g.a.bne(V0, ZERO, &add_q);
        g.a.nop();
        g.a.b(&after);
        g.a.nop();
    } else {
        let add_pq = g.sym("tw_addpq");
        g.a.bne(T0, ZERO, &add_pq);
        g.a.nop();
        g.a.bne(S1, ZERO, &add_g);
        g.a.nop();
        g.a.bne(V0, ZERO, &add_q);
        g.a.nop();
        g.a.b(&after);
        g.a.nop();
        g.a.label(&add_pq);
        fcall(g, "padd", &[(A0, buf(b.tw_pqx)), (A1, buf(b.tw_pqy))]);
        g.a.b(&after);
        g.a.nop();
    }
    g.a.label(&add_g);
    fcall(
        g,
        "padd",
        &[(A0, Loc::Lbl("const_gx")), (A1, Loc::Lbl("const_gy"))],
    );
    g.a.b(&after);
    g.a.nop();
    g.a.label(&add_q);
    fcall(g, "padd", &[(A0, buf(b.tw_qx)), (A1, buf(b.tw_qy))]);
    g.a.label(&after);
    g.a.addiu(S0, S0, -1);
    g.a.b(&mainloop);
    g.a.nop();
}

/// Emits the `x mod n` reduction used to form `r` (conditional
/// subtraction loop; the x-coordinate is < p ~ h*n, so a handful of
/// subtractions suffice). Inline fragment: reduces `buf_addr` (`kn`
/// words) in place against `const_n`.
fn emit_mod_n_inplace(g: &mut Gen, buf_addr: u32, kn: usize) {
    let l = g.sym("modn");
    let done = g.sym("modn_done");
    g.a.label(&l);
    g.a.li(T4, buf_addr as i64);
    g.a.la(T8, "const_n");
    emit_cmp_ge_or(g, T4, T8, kn, &done);
    g.a.li(T4, buf_addr as i64);
    g.a.la(T8, "const_n");
    emit_sub_loop(g, T4, T8, kn);
    g.a.b(&l);
    g.a.nop();
    g.a.label(&done);
}

/// Emits `ecdsa_sign`: the full signature computation (§4.1) —
/// `X = kG` via the sliding window, `r = x(X) mod n`,
/// `s = k^{-1}(e + r d) mod n`. Inputs `arg_e/arg_d/arg_k`; outputs
/// `out_r/out_s`.
pub fn emit_ecdsa_sign(g: &mut Gen, cfg: &PointCfg) {
    let b = &cfg.bufs;
    g.a.label("ecdsa_sign");
    g.a.addiu(Reg::SP, Reg::SP, -8);
    g.a.sw(RA, 4, Reg::SP);
    // Scalar multiplication kG.
    copy(g, buf(b.sm_px), Loc::Lbl("const_gx"));
    copy(g, buf(b.sm_py), Loc::Lbl("const_gy"));
    // The scalar is protocol data (not a field element): plain copy.
    fcall(g, "ncopy", &[(A0, buf(b.sm_k)), (A1, buf(b.arg_k))]);
    fcall(g, "scalar_mul", &[]);
    // r = x mod n (leaving the Montgomery domain first if applicable).
    fcall(g, "fout", &[(A0, buf(b.ecd_x)), (A1, buf(b.sm_outx))]);
    fcall(g, "ncopy", &[(A0, buf(b.out_r)), (A1, buf(b.ecd_x))]);
    emit_mod_n_inplace(g, b.out_r, cfg.kn);
    // s = k^{-1} (e + r d) mod n
    fcall(g, "ninv", &[(A0, buf(b.ecd_t1)), (A1, buf(b.arg_k))]);
    fcall(
        g,
        "nmul",
        &[
            (A0, buf(b.ecd_t2)),
            (A1, buf(b.out_r)),
            (Reg::A2, buf(b.arg_d)),
        ],
    );
    fcall(
        g,
        "nadd",
        &[
            (A0, buf(b.ecd_t3)),
            (A1, buf(b.arg_e)),
            (Reg::A2, buf(b.ecd_t2)),
        ],
    );
    fcall(
        g,
        "nmul",
        &[
            (A0, buf(b.out_s)),
            (A1, buf(b.ecd_t1)),
            (Reg::A2, buf(b.ecd_t3)),
        ],
    );
    g.a.lw(RA, 4, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 8);
    g.a.ret();
}

/// Emits `ecdsa_verify`: `w = s^{-1}`, `u1 = e w`, `u2 = r w`,
/// `X = u1 G + u2 Q` via the twin multiplication, accept iff
/// `x(X) mod n == r` (§4.1). Inputs `arg_e/arg_r/arg_s/arg_qx/arg_qy`;
/// output `out_ok` (1 accept / 0 reject).
pub fn emit_ecdsa_verify(g: &mut Gen, cfg: &PointCfg) {
    let b = &cfg.bufs;
    let reject = g.sym("ver_rej");
    let finish = g.sym("ver_fin");
    let cmp = g.sym("ver_cmp");
    g.a.label("ecdsa_verify");
    g.a.addiu(Reg::SP, Reg::SP, -8);
    g.a.sw(RA, 4, Reg::SP);
    // w = s^{-1} mod n; u1 = e w; u2 = r w
    fcall(g, "ninv", &[(A0, buf(b.ecd_t1)), (A1, buf(b.arg_s))]);
    fcall(
        g,
        "nmul",
        &[
            (A0, buf(b.tw_u1)),
            (A1, buf(b.arg_e)),
            (Reg::A2, buf(b.ecd_t1)),
        ],
    );
    fcall(
        g,
        "nmul",
        &[
            (A0, buf(b.tw_u2)),
            (A1, buf(b.arg_r)),
            (Reg::A2, buf(b.ecd_t1)),
        ],
    );
    // Q into the twin buffers (entering the Montgomery domain when
    // applicable).
    fcall(g, "fin", &[(A0, buf(b.tw_qx)), (A1, buf(b.arg_qx))]);
    fcall(g, "fin", &[(A0, buf(b.tw_qy)), (A1, buf(b.arg_qy))]);
    fcall(g, "twin_mul", &[]);
    fcall(g, "fout", &[(A0, buf(b.ecd_x)), (A1, buf(b.tw_outx))]);
    emit_mod_n_inplace(g, b.ecd_x, cfg.kn);
    // out_ok = (ecd_x == arg_r)
    g.a.li(T4, b.ecd_x as i64);
    g.a.li(T8, b.arg_r as i64);
    g.a.li(T9, cfg.kn as i64);
    g.a.label(&cmp);
    g.a.lw(T0, 0, T4);
    g.a.lw(T1, 0, T8);
    g.a.bne(T0, T1, &reject);
    g.a.nop();
    g.a.addiu(T4, T4, 4);
    g.a.addiu(T8, T8, 4);
    g.a.addiu(T9, T9, -1);
    g.a.bne(T9, ZERO, &cmp);
    g.a.nop();
    g.a.li(T0, 1);
    g.a.b(&finish);
    g.a.nop();
    g.a.label(&reject);
    g.a.li(T0, 0);
    g.a.label(&finish);
    g.a.li(T4, b.out_ok as i64);
    g.a.sw(T0, 0, T4);
    g.a.lw(RA, 4, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 8);
    g.a.ret();
}

/// Emits every point/scalar/ECDSA routine for the configuration. When
/// `include_point_ops` is false (the Billie configuration, which brings
/// its own register-resident point code), only the ECDSA protocol layer
/// is emitted.
pub fn emit_point_suite(g: &mut Gen, cfg: &PointCfg, include_point_ops: bool) {
    if include_point_ops {
        emit_pt_set_identity(g, cfg);
        emit_pt_set_affine(g, cfg);
        emit_pdbl(g, cfg);
        emit_padd(g, cfg);
        emit_pt_to_affine(g, cfg);
        emit_scalar_mul(g, cfg);
        emit_twin_mul(g, cfg);
    }
    emit_ecdsa_sign(g, cfg);
    emit_ecdsa_verify(g, cfg);
}
