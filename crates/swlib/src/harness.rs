//! Helpers for running suite entry points on the simulator — used by the
//! differential tests, the `ule-core` driver, and the benchmark harness.

use ule_isa::asm::Program;
use ule_pete::cpu::{Machine, MachineConfig, RunExit};

/// Default cycle budget for one entry (a 571-bit baseline verification is
/// the worst case in the study at ~250M cycles, §7.6).
pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

/// Runs the program from the given entry label until `break`.
///
/// # Panics
///
/// Panics if the entry label does not exist or the cycle budget runs out
/// (both indicate suite bugs, not user errors).
pub fn run_entry(m: &mut Machine, program: &Program, entry: &str, max_cycles: u64) -> u64 {
    let pc = program
        .symbol(entry)
        .unwrap_or_else(|| panic!("no entry point {entry:?}"));
    m.set_pc(pc);
    let start = m.cycles();
    match m.run(start + max_cycles) {
        RunExit::Halted { .. } => m.cycles() - start,
        RunExit::CycleLimit => panic!("{entry:?} exceeded {max_cycles} cycles"),
    }
}

/// Writes little-endian limbs into RAM at a named buffer.
///
/// # Panics
///
/// Panics if the buffer name is unknown.
pub fn write_buf(m: &mut Machine, program: &Program, name: &str, limbs: &[u32]) {
    let addr = program
        .ram_symbol(name)
        .unwrap_or_else(|| panic!("no RAM buffer {name:?}"));
    m.ram_mut().poke_words(addr, limbs);
}

/// Reads `n` limbs from a named RAM buffer.
///
/// # Panics
///
/// Panics if the buffer name is unknown.
pub fn read_buf(m: &Machine, program: &Program, name: &str, n: usize) -> Vec<u32> {
    let addr = program
        .ram_symbol(name)
        .unwrap_or_else(|| panic!("no RAM buffer {name:?}"));
    m.ram().peek_words(addr, n)
}

/// Builds a fresh machine for a program with the given configuration.
pub fn machine(program: &Program, config: MachineConfig) -> Machine {
    Machine::new(program, config)
}
