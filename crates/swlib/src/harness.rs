//! Helpers for running suite entry points on the simulator — used by the
//! differential tests, the `ule-core` driver, and the benchmark harness.

use ule_isa::asm::Program;
use ule_pete::cpu::{ExecOptions, Machine, MachineConfig, RunExit};

/// Default cycle budget for one entry (a 571-bit baseline verification is
/// the worst case in the study at ~250M cycles, §7.6).
pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

/// Why [`run_entry`] could not complete an entry point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The entry label is not defined by the program image.
    NoEntry {
        /// The label that was requested.
        entry: String,
    },
    /// The entry ran but did not reach `break` within the cycle budget.
    CycleLimit {
        /// The label that was running.
        entry: String,
        /// The budget that was exhausted.
        max_cycles: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::NoEntry { entry } => write!(f, "no entry point {entry:?}"),
            RunError::CycleLimit { entry, max_cycles } => {
                write!(f, "{entry:?} exceeded {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Runs the program from the given entry label until `break`, returning
/// the elapsed cycle count, or an error on a missing label / exhausted
/// cycle budget. `opts.max_cycles` is the budget for *this entry*
/// (relative to the machine's current cycle count, so entries can be
/// chained on one machine); `opts.tier` selects the execution engine.
/// The fuzzing campaigns use this so one divergent or hung seed is
/// reported instead of aborting the whole run; directed tests use the
/// panicking [`run_entry_expect`] wrapper.
pub fn run_entry(
    m: &mut Machine,
    program: &Program,
    entry: &str,
    opts: ExecOptions,
) -> Result<u64, RunError> {
    let pc = program.symbol(entry).ok_or_else(|| RunError::NoEntry {
        entry: entry.to_string(),
    })?;
    m.set_pc(pc);
    let start = m.cycles();
    let abs = ExecOptions {
        max_cycles: start + opts.max_cycles,
        ..opts
    };
    match m.run_with(abs) {
        RunExit::Halted { .. } => Ok(m.cycles() - start),
        RunExit::CycleLimit => Err(RunError::CycleLimit {
            entry: entry.to_string(),
            max_cycles: opts.max_cycles,
        }),
    }
}

/// Runs the program from the given entry label until `break`, on the
/// automatically selected engine tier.
///
/// # Panics
///
/// Panics if the entry label does not exist or the cycle budget runs out
/// (both indicate suite bugs, not user errors).
pub fn run_entry_expect(m: &mut Machine, program: &Program, entry: &str, max_cycles: u64) -> u64 {
    match run_entry(m, program, entry, ExecOptions::new(max_cycles)) {
        Ok(cycles) => cycles,
        Err(e) => panic!("{e}"),
    }
}

/// Writes little-endian limbs into RAM at a named buffer.
///
/// # Panics
///
/// Panics if the buffer name is unknown.
pub fn write_buf(m: &mut Machine, program: &Program, name: &str, limbs: &[u32]) {
    let addr = program
        .ram_symbol(name)
        .unwrap_or_else(|| panic!("no RAM buffer {name:?}"));
    m.ram_mut().poke_words(addr, limbs);
}

/// Reads `n` limbs from a named RAM buffer.
///
/// # Panics
///
/// Panics if the buffer name is unknown.
pub fn read_buf(m: &Machine, program: &Program, name: &str, n: usize) -> Vec<u32> {
    let addr = program
        .ram_symbol(name)
        .unwrap_or_else(|| panic!("no RAM buffer {name:?}"));
    m.ram().peek_words(addr, n)
}

/// Builds a fresh machine for a program with the given configuration.
pub fn machine(program: &Program, config: MachineConfig) -> Machine {
    Machine::new(program, config)
}
