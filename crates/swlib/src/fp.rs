//! Prime-field GF(p) assembly routines (§4.2.1, baseline tier).
//!
//! Emitters for the looped multi-precision routines the baseline runs:
//!
//! * [`emit_fadd`] / [`emit_fsub`] — modular add/sub with conditional
//!   reduction (§4.2.4);
//! * [`emit_fmul_os`] — operand-scanning multiplication (Algorithm 2)
//!   into a wide scratch buffer, followed by a call to the reduction;
//! * [`emit_fred`] — NIST fast reduction by congruency folding, generated
//!   from the field's fold constants (the per-field substitution patterns
//!   of §4.2.1, e.g. Algorithm 4 for P-192, emerge from the same
//!   congruences);
//! * [`emit_eea_inv`] — the binary extended Euclidean inversion run on
//!   Pete in every configuration for the group order, and in the
//!   non-accelerated configurations for the field (§4.2.4);
//! * [`emit_cios`] — software CIOS Montgomery multiplication
//!   (Algorithm 5), used for protocol arithmetic modulo the group order
//!   (the order has no sparse structure, so folding does not apply).
//!
//! Common ABI: `a0` = destination pointer, `a1`/`a2` = source pointers,
//! all field elements `k` little-endian words in RAM. Leaf routines
//! clobber `t*`, `v*`, `at`, and the `a*` registers; callers must not rely
//! on them.

use crate::gen::{emit_copy_words, emit_zero_words, Gen};
use ule_isa::reg::Reg;
use ule_mpmath::fp::PrimeField;
use ule_mpmath::mp::Mp;

const A0: Reg = Reg::A0;
const A1: Reg = Reg::A1;
const A2: Reg = Reg::A2;
const A3: Reg = Reg::A3;
const V0: Reg = Reg::V0;
const V1: Reg = Reg::V1;
const T0: Reg = Reg::T0;
const T1: Reg = Reg::T1;
const T2: Reg = Reg::T2;
const T3: Reg = Reg::T3;
const T4: Reg = Reg::T4;
const T5: Reg = Reg::T5;
const T6: Reg = Reg::T6;
const T7: Reg = Reg::T7;
const T8: Reg = Reg::T8;
const T9: Reg = Reg::T9;
const S0: Reg = Reg::S0;
const S1: Reg = Reg::S1;
const S2: Reg = Reg::S2;
const S3: Reg = Reg::S3;
const S4: Reg = Reg::S4;
const S5: Reg = Reg::S5;
const ZERO: Reg = Reg::ZERO;
const RA: Reg = Reg::RA;

/// Nonzero limbs `(word_index, value)` of a fold constant — the sparse
/// representation the reduction emitter multiplies against.
fn nonzero_limbs(v: &[u32]) -> Vec<(usize, u32)> {
    v.iter()
        .enumerate()
        .filter(|(_, &w)| w != 0)
        .map(|(i, &w)| (i, w))
        .collect()
}

/// Emits `p[idx..] += r` with carry ripple, where `base` holds the buffer
/// base address. Clobbers `t5`, `t6`, `t7`.
fn emit_add_at(g: &mut Gen, base: Reg, idx: usize, r: Reg) {
    let done = g.sym("ripd");
    let rip = g.sym("rip");
    g.a.lw(T5, (idx * 4) as i16, base);
    g.a.addu(T5, T5, r);
    g.a.sltu(T6, T5, r);
    g.a.sw(T5, (idx * 4) as i16, base);
    g.a.beq(T6, ZERO, &done);
    g.a.addiu(T7, base, ((idx + 1) * 4) as i16); // delay slot (harmless)
    g.a.label(&rip);
    g.a.lw(T5, 0, T7);
    g.a.addu(T5, T5, T6);
    g.a.sltiu(T6, T5, 1); // carried iff wrapped to zero
    g.a.sw(T5, 0, T7);
    g.a.bne(T6, ZERO, &rip);
    g.a.addiu(T7, T7, 4); // delay slot
    g.a.label(&done);
}

/// Emits the fold of the register `h` against one fold constant:
/// `acc += h * fold` where `fold`'s nonzero limbs are known at build time.
/// `acc_base` holds the accumulator base address. Clobbers `t2..t7`.
fn emit_fold_h(g: &mut Gen, acc_base: Reg, h: Reg, fold_limbs: &[u32]) {
    for (idx, w) in nonzero_limbs(fold_limbs) {
        if w == 1 {
            emit_add_at(g, acc_base, idx, h);
        } else {
            g.a.li(T2, w as i64);
            g.a.multu(h, T2);
            g.a.mflo(T3);
            g.a.mfhi(T4);
            emit_add_at(g, acc_base, idx, T3);
            // T4 may be clobbered by emit_add_at? It uses t5,t6,t7 only.
            emit_add_at(g, acc_base, idx + 1, T4);
        }
    }
}

/// Emits an inline "compare `xptr[0..k]` with `yptr[0..k]`, from the most
/// significant word" fragment that branches to `lt_label` when x < y and
/// falls through when x >= y. Clobbers `t1..t5`, `t9` and the pointer
/// copies it makes internally.
pub fn emit_cmp_ge_or(g: &mut Gen, xptr: Reg, yptr: Reg, k: usize, lt_label: &str) {
    let cmp = g.sym("cmp");
    let ge = g.sym("ge");
    g.a.addiu(T1, xptr, ((k - 1) * 4) as i16);
    g.a.addiu(T2, yptr, ((k - 1) * 4) as i16);
    g.a.li(T9, k as i64);
    g.a.label(&cmp);
    g.a.lw(T3, 0, T1);
    g.a.lw(T4, 0, T2);
    g.a.sltu(T5, T3, T4);
    g.a.bne(T5, ZERO, lt_label); // x < y
    g.a.nop();
    g.a.sltu(T5, T4, T3);
    g.a.bne(T5, ZERO, &ge); // x > y
    g.a.addiu(T1, T1, -4); // delay (fine on both paths)
    g.a.addiu(T2, T2, -4);
    g.a.addiu(T9, T9, -1);
    g.a.bne(T9, ZERO, &cmp);
    g.a.nop();
    g.a.label(&ge); // equal counts as >=
}

/// Emits an inline `dst[0..k] -= src[0..k]` borrow loop (in place when
/// `dst == out`), leaving the final borrow in `v0`. Clobbers
/// `t0..t3, t7, t9, v0, v1` plus internal pointer copies in `t4..t6`.
pub fn emit_sub_loop(g: &mut Gen, dst: Reg, src: Reg, k: usize) {
    let l = g.sym("subl");
    g.a.mov(T4, dst);
    g.a.mov(T5, src);
    g.a.li(T9, k as i64);
    g.a.li(V0, 0);
    g.a.label(&l);
    g.a.lw(T0, 0, T4);
    g.a.lw(T1, 0, T5);
    g.a.subu(T2, T0, T1);
    g.a.sltu(T3, T0, T1); // borrow1
    g.a.subu(T7, T2, V0);
    g.a.sltu(V1, T2, V0); // borrow2
    g.a.or(V0, T3, V1);
    g.a.sw(T7, 0, T4);
    g.a.addiu(T4, T4, 4);
    g.a.addiu(T5, T5, 4);
    g.a.addiu(T9, T9, -1);
    g.a.bne(T9, ZERO, &l);
    g.a.nop();
}

/// Emits an inline `dst[0..k] += src[0..k]` carry loop, leaving the final
/// carry in `v0`. Clobbers like [`emit_sub_loop`].
pub fn emit_add_loop(g: &mut Gen, dst: Reg, src: Reg, k: usize) {
    let l = g.sym("addl");
    g.a.mov(T4, dst);
    g.a.mov(T5, src);
    g.a.li(T9, k as i64);
    g.a.li(V0, 0);
    g.a.label(&l);
    g.a.lw(T0, 0, T4);
    g.a.lw(T1, 0, T5);
    g.a.addu(T2, T0, T1);
    g.a.sltu(T3, T2, T0); // carry1
    g.a.addu(T2, T2, V0);
    g.a.sltu(V1, T2, V0); // carry2
    g.a.or(V0, T3, V1);
    g.a.sw(T2, 0, T4);
    g.a.addiu(T4, T4, 4);
    g.a.addiu(T5, T5, 4);
    g.a.addiu(T9, T9, -1);
    g.a.bne(T9, ZERO, &l);
    g.a.nop();
}

/// Emits `label: dst = (a + b) mod p` — multi-precision add plus a
/// conditional subtraction of the modulus.
///
/// ABI: `a0`=dst, `a1`=a, `a2`=b. Leaf.
pub fn emit_fadd(g: &mut Gen, label: &str, k: usize, mod_label: &str) {
    let dosub = g.sym("fadd_sub");
    let done = g.sym("fadd_done");
    g.a.label(label);
    // dst = a; dst += b (via copy then add-in-place keeps alias safety)
    emit_copy_words(g, A0, A1, k);
    emit_add_loop(g, A0, A2, k);
    // carry out -> must subtract
    g.a.bne(V0, ZERO, &dosub);
    g.a.nop();
    // compare dst vs p
    g.a.la(T8, mod_label);
    emit_cmp_ge_or(g, A0, T8, k, &done);
    g.a.label(&dosub);
    g.a.la(T8, mod_label);
    emit_sub_loop(g, A0, T8, k);
    g.a.label(&done);
    g.a.ret();
}

/// Emits `label: dst = (a - b) mod p` — subtraction plus a conditional
/// add-back of the modulus.
///
/// ABI: `a0`=dst, `a1`=a, `a2`=b. Leaf.
pub fn emit_fsub(g: &mut Gen, label: &str, k: usize, mod_label: &str) {
    let done = g.sym("fsub_done");
    g.a.label(label);
    emit_copy_words(g, A0, A1, k);
    emit_sub_loop(g, A0, A2, k);
    g.a.beq(V0, ZERO, &done);
    g.a.nop();
    g.a.la(T8, mod_label);
    emit_add_loop(g, A0, T8, k);
    g.a.label(&done);
    g.a.ret();
}

/// Emits `label: dst[0..k] = src[0..k]` as a callable routine.
///
/// ABI: `a0`=dst, `a1`=src. Leaf.
pub fn emit_fcopy(g: &mut Gen, label: &str, k: usize) {
    g.a.label(label);
    emit_copy_words(g, A0, A1, k);
    g.a.ret();
}

/// Emits the operand-scanning field multiplication (Algorithm 2):
/// `label: dst = (a * b) mod p`, writing the double-width product into the
/// scratch buffer then calling `fred_label`.
///
/// ABI: `a0`=dst, `a1`=a, `a2`=b. Non-leaf.
pub fn emit_fmul_os(g: &mut Gen, label: &str, k: usize, wide_addr: u32, fred_label: &str) {
    let outer = g.sym("os_outer");
    let inner = g.sym("os_inner");
    g.a.label(label);
    // prologue: ra, s0 (dst), s1 (b ptr), s2 (outer count)
    g.a.addiu(Reg::SP, Reg::SP, -16);
    g.a.sw(RA, 12, Reg::SP);
    g.a.sw(S0, 8, Reg::SP);
    g.a.sw(S1, 4, Reg::SP);
    g.a.sw(S2, 0, Reg::SP);
    g.a.mov(S0, A0);
    // zero the wide buffer
    g.a.li(A3, wide_addr as i64);
    emit_zero_words(g, A3, 2 * k);
    g.a.mov(S1, A2); // b pointer
    g.a.li(S2, k as i64); // outer counter
    g.a.mov(T6, A3); // row base
    g.a.label(&outer);
    g.a.lw(T7, 0, S1); // bi
    g.a.li(V0, 0); // u
    g.a.mov(T4, A1); // a pointer
    g.a.mov(T5, T6); // p pointer
    g.a.li(T9, k as i64);
    g.a.label(&inner);
    g.a.lw(T0, 0, T4); // a[j]
    g.a.multu(T0, T7); // 4-cycle Karatsuba unit
    g.a.lw(T1, 0, T5); // p[i+j] (hides multiplier latency)
    g.a.addiu(T4, T4, 4);
    g.a.addiu(T9, T9, -1);
    g.a.mflo(T2);
    g.a.mfhi(T3);
    g.a.addu(T2, T2, T1);
    g.a.sltu(T1, T2, T1); // carry into hi
    g.a.addu(T2, T2, V0);
    g.a.sltu(V1, T2, V0); // carry into hi
    g.a.addu(T3, T3, T1);
    g.a.addu(V0, T3, V1); // u = hi + carries (cannot overflow)
    g.a.sw(T2, 0, T5);
    g.a.bne(T9, ZERO, &inner);
    g.a.addiu(T5, T5, 4); // delay slot
    g.a.sw(V0, 0, T5); // p[i+k] = u
    g.a.addiu(S1, S1, 4);
    g.a.addiu(S2, S2, -1);
    g.a.bne(S2, ZERO, &outer);
    g.a.addiu(T6, T6, 4); // delay slot: next row base
                          // reduce: fred(wide, dst)
    g.a.li(A0, wide_addr as i64);
    g.a.jal(fred_label);
    g.a.mov(A1, S0); // delay slot
    g.a.lw(RA, 12, Reg::SP);
    g.a.lw(S0, 8, Reg::SP);
    g.a.lw(S1, 4, Reg::SP);
    g.a.lw(S2, 0, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 16);
    g.a.ret();
}

/// Emits the fast reduction for one NIST prime:
/// `label: dst[0..k] = wide[0..2k] mod p`, by congruency folding with the
/// field's precomputed fold constants (§4.2.1), exactly mirroring the
/// host [`PrimeField::reduce_wide`].
///
/// ABI: `a0`=wide (2k words), `a1`=dst. Leaf.
pub fn emit_fred(g: &mut Gen, label: &str, field: &PrimeField, acc_addr: u32, mod_label: &str) {
    let k = field.k();
    let bits = field.bits();
    // Fold constants 2^(32(k+j)) mod p for j in 0..k (plus guard folds 0,1).
    let fold: Vec<Vec<u32>> = (0..k.max(2))
        .map(|j| Mp::one().shl(32 * (k + j)).rem(field.modulus()).to_limbs(k))
        .collect();
    let two_b = Mp::one().shl(bits).rem(field.modulus()).to_limbs(k);

    g.a.label(label);
    // acc = wide[0..k]; guard words zero.
    g.a.li(T0, acc_addr as i64);
    emit_copy_words(g, T0, A0, k);
    g.a.sw(ZERO, (k * 4) as i16, T0);
    g.a.sw(ZERO, ((k + 1) * 4) as i16, T0);
    // Main folds, unrolled over j.
    #[allow(clippy::needless_range_loop)] // j indexes emitted code, not just `fold`
    for j in 0..k {
        let skip = g.sym("fold_skip");
        g.a.lw(T1, ((k + j) * 4) as i16, A0);
        g.a.beq(T1, ZERO, &skip);
        g.a.nop();
        emit_fold_h(g, T0, T1, &fold[j]);
        g.a.label(&skip);
    }
    // Guard-word folds until clear.
    let guard = g.sym("guard");
    let gdone = g.sym("guard_done");
    g.a.label(&guard);
    g.a.lw(T1, (k * 4) as i16, T0);
    g.a.lw(V1, ((k + 1) * 4) as i16, T0);
    g.a.or(T3, T1, V1);
    g.a.beq(T3, ZERO, &gdone);
    g.a.nop();
    g.a.sw(ZERO, (k * 4) as i16, T0);
    g.a.sw(ZERO, ((k + 1) * 4) as i16, T0);
    // Note: emit_fold_h clobbers t2..t7, so preserve h values in t1/t8.
    g.a.mov(T8, V1);
    emit_fold_h(g, T0, T1, &fold[0]);
    emit_fold_h(g, T0, T8, &fold[1]);
    g.a.b(&guard);
    g.a.nop();
    g.a.label(&gdone);
    // Bit-granular tail when the modulus is not a whole number of words
    // (P-521): fold acc >> bits against 2^bits mod p.
    if !bits.is_multiple_of(32) {
        let r = (bits % 32) as u8;
        let topw = bits / 32;
        let tl = g.sym("twob");
        let td = g.sym("twob_done");
        g.a.label(&tl);
        g.a.lw(T1, (topw * 4) as i16, T0);
        g.a.srl(T8, T1, r);
        g.a.beq(T8, ZERO, &td);
        g.a.nop();
        g.a.li(T3, ((1u64 << r) - 1) as i64);
        g.a.and(T1, T1, T3);
        g.a.sw(T1, (topw * 4) as i16, T0);
        emit_fold_h(g, T0, T8, &two_b);
        g.a.b(&tl);
        g.a.nop();
        g.a.label(&td);
    }
    // Conditional subtraction(s) of p.
    let csub = g.sym("csub");
    let cdone = g.sym("csub_done");
    g.a.label(&csub);
    g.a.la(T8, mod_label);
    emit_cmp_ge_or(g, T0, T8, k, &cdone);
    g.a.la(T8, mod_label);
    emit_sub_loop(g, T0, T8, k);
    // emit_sub_loop clobbered t0; restore acc base.
    g.a.li(T0, acc_addr as i64);
    g.a.b(&csub);
    g.a.nop();
    g.a.label(&cdone);
    // dst = acc[0..k]
    g.a.li(T0, acc_addr as i64);
    emit_copy_words(g, A1, T0, k);
    g.a.ret();
}

/// Scratch buffers for the extended Euclidean inversion: four `k+1`-word
/// working integers.
#[derive(Clone, Copy, Debug)]
pub struct EeaBufs {
    /// Buffer for `u`.
    pub u: u32,
    /// Buffer for `v`.
    pub v: u32,
    /// Buffer for `x1`.
    pub x1: u32,
    /// Buffer for `x2`.
    pub x2: u32,
}

/// Emits the binary extended Euclidean modular inversion (§4.2.4):
/// `label: dst = src^{-1} mod m`, with the modulus pointer as a runtime
/// argument so the same routine serves the field prime and the group
/// order.
///
/// ABI: `a0`=dst, `a1`=src (nonzero), `a2`=modulus pointer (odd). Non-leaf
/// shape but calls nothing; saves s-registers.
pub fn emit_eea_inv(g: &mut Gen, label: &str, k: usize, bufs: EeaBufs) {
    let kk = k + 1; // working width

    // Helper: shift right by one, kk words, in place. ptr in reg.
    fn emit_shr1(g: &mut Gen, ptr: Reg, kk: usize) {
        let l = g.sym("shr1");
        g.a.addiu(T4, ptr, ((kk - 1) * 4) as i16);
        g.a.li(T9, kk as i64);
        g.a.li(T3, 0); // carry bit
        g.a.label(&l);
        g.a.lw(T0, 0, T4);
        g.a.srl(T1, T0, 1);
        g.a.sll(T2, T3, 31);
        g.a.or(T1, T1, T2);
        g.a.andi(T3, T0, 1);
        g.a.sw(T1, 0, T4);
        g.a.addiu(T9, T9, -1);
        g.a.bne(T9, ZERO, &l);
        g.a.addiu(T4, T4, -4); // delay
    }

    // Helper: branch to `target` if [ptr] != 1 (kk words). Clobbers
    // t0,t1,t9,t4.
    fn emit_bne_one(g: &mut Gen, ptr: Reg, kk: usize, target: &str) {
        let l = g.sym("isone");
        let done = g.sym("isone_done");
        g.a.lw(T0, 0, ptr);
        g.a.li(T1, 1);
        g.a.bne(T0, T1, target);
        g.a.nop();
        g.a.addiu(T4, ptr, 4);
        g.a.li(T9, (kk - 1) as i64);
        g.a.beq(T9, ZERO, &done);
        g.a.nop();
        g.a.label(&l);
        g.a.lw(T0, 0, T4);
        g.a.bne(T0, ZERO, target);
        g.a.addiu(T4, T4, 4); // delay
        g.a.addiu(T9, T9, -1);
        g.a.bne(T9, ZERO, &l);
        g.a.nop();
        g.a.label(&done);
    }

    let main = g.sym("eea_main");
    let even_u = g.sym("eea_even_u");
    let even_u_done = g.sym("eea_even_u_done");
    let even_v = g.sym("eea_even_v");
    let even_v_done = g.sym("eea_even_v_done");
    let u_ge_v = g.sym("eea_ugev");
    let after_sub = g.sym("eea_after");
    let res_x1 = g.sym("eea_res_x1");
    let res_done = g.sym("eea_res_done");
    let x1_odd_skip = g.sym("eea_x1odd");
    let x2_odd_skip = g.sym("eea_x2odd");
    let x1_noadd = g.sym("eea_x1na");
    let x2_noadd = g.sym("eea_x2na");

    g.a.label(label);
    let saved = [S0, S1, S2, S3, S4, S5];
    g.a.addiu(Reg::SP, Reg::SP, -32);
    g.a.sw(RA, 28, Reg::SP);
    for (i, &r) in saved.iter().enumerate() {
        g.a.sw(r, (24 - 4 * i) as i16, Reg::SP);
    }
    g.a.li(S0, bufs.u as i64);
    g.a.li(S1, bufs.v as i64);
    g.a.li(S2, bufs.x1 as i64);
    g.a.li(S3, bufs.x2 as i64);
    g.a.mov(S4, A2); // modulus
    g.a.mov(S5, A0); // dst
                     // u = src, top word 0
    emit_copy_words(g, S0, A1, k);
    g.a.sw(ZERO, (k * 4) as i16, S0);
    // v = m
    emit_copy_words(g, S1, S4, k);
    g.a.sw(ZERO, (k * 4) as i16, S1);
    // x1 = 1, x2 = 0
    emit_zero_words(g, S2, kk);
    emit_zero_words(g, S3, kk);
    g.a.li(T0, 1);
    g.a.sw(T0, 0, S2);

    g.a.label(&main);
    // while u != 1 && v != 1
    {
        let u_not_one = g.sym("unot1");
        emit_bne_one(g, S0, kk, &u_not_one);
        g.a.b(&res_x1);
        g.a.nop();
        g.a.label(&u_not_one);
        let v_not_one = g.sym("vnot1");
        emit_bne_one(g, S1, kk, &v_not_one);
        // v == 1: result is x2
        g.a.mov(T8, S3);
        g.a.b(&res_done);
        g.a.nop();
        g.a.label(&v_not_one);
    }
    // while u even: u >>= 1; x1 = (x1 odd ? x1 + m : x1) >> 1
    g.a.label(&even_u);
    g.a.lw(T0, 0, S0);
    g.a.andi(T1, T0, 1);
    g.a.bne(T1, ZERO, &even_u_done);
    g.a.nop();
    emit_shr1(g, S0, kk);
    g.a.lw(T0, 0, S2);
    g.a.andi(T1, T0, 1);
    g.a.beq(T1, ZERO, &x1_odd_skip);
    g.a.nop();
    emit_add_loop(g, S2, S4, k); // x1 += m (k words)
                                 // propagate carry into the top word
    g.a.lw(T0, (k * 4) as i16, S2);
    g.a.addu(T0, T0, V0);
    g.a.sw(T0, (k * 4) as i16, S2);
    g.a.label(&x1_odd_skip);
    emit_shr1(g, S2, kk);
    g.a.b(&even_u);
    g.a.nop();
    g.a.label(&even_u_done);
    // while v even: likewise with x2
    g.a.label(&even_v);
    g.a.lw(T0, 0, S1);
    g.a.andi(T1, T0, 1);
    g.a.bne(T1, ZERO, &even_v_done);
    g.a.nop();
    emit_shr1(g, S1, kk);
    g.a.lw(T0, 0, S3);
    g.a.andi(T1, T0, 1);
    g.a.beq(T1, ZERO, &x2_odd_skip);
    g.a.nop();
    emit_add_loop(g, S3, S4, k);
    g.a.lw(T0, (k * 4) as i16, S3);
    g.a.addu(T0, T0, V0);
    g.a.sw(T0, (k * 4) as i16, S3);
    g.a.label(&x2_odd_skip);
    emit_shr1(g, S3, kk);
    g.a.b(&even_v);
    g.a.nop();
    g.a.label(&even_v_done);
    // if u >= v: u -= v; x1 -= x2 (mod m)  else symmetric
    emit_cmp_ge_or(g, S0, S1, kk, &u_ge_v); // branches when u < v!
                                            // Fall-through: u >= v.
    emit_sub_loop(g, S0, S1, kk); // u -= v
    emit_sub_loop(g, S2, S3, kk); // x1 -= x2
    g.a.beq(V0, ZERO, &x1_noadd);
    g.a.nop();
    emit_add_loop(g, S2, S4, k); // += m
    g.a.lw(T0, (k * 4) as i16, S2);
    g.a.addu(T0, T0, V0);
    g.a.sw(T0, (k * 4) as i16, S2);
    g.a.label(&x1_noadd);
    g.a.b(&after_sub);
    g.a.nop();
    g.a.label(&u_ge_v); // actually the u < v path
    emit_sub_loop(g, S1, S0, kk);
    emit_sub_loop(g, S3, S2, kk);
    g.a.beq(V0, ZERO, &x2_noadd);
    g.a.nop();
    emit_add_loop(g, S3, S4, k);
    g.a.lw(T0, (k * 4) as i16, S3);
    g.a.addu(T0, T0, V0);
    g.a.sw(T0, (k * 4) as i16, S3);
    g.a.label(&x2_noadd);
    g.a.label(&after_sub);
    g.a.b(&main);
    g.a.nop();

    g.a.label(&res_x1);
    g.a.mov(T8, S2);
    g.a.label(&res_done);
    // dst = result (k words; the working value stays < m).
    emit_copy_words(g, S5, T8, k);
    g.a.lw(RA, 28, Reg::SP);
    for (i, &r) in saved.iter().enumerate() {
        g.a.lw(r, (24 - 4 * i) as i16, Reg::SP);
    }
    g.a.addiu(Reg::SP, Reg::SP, 32);
    g.a.ret();
}

/// Emits the product-scanning field multiplication on the prime-field ISA
/// extensions (Algorithm 3 with `MADDU`/`SHA`, Table 5.1):
/// `label: dst = (a * b) mod p` via the `(OvFlo, Hi, Lo)` accumulator,
/// then the fold reduction.
///
/// ABI: `a0`=dst, `a1`=a, `a2`=b. Non-leaf (calls `fred_label`).
pub fn emit_fmul_ps_ext(g: &mut Gen, label: &str, k: usize, wide_addr: u32, fred_label: &str) {
    let phase1 = g.sym("ps_p1");
    let phase2 = g.sym("ps_p2");
    let inner1 = g.sym("ps_i1");
    let inner2 = g.sym("ps_i2");
    g.a.label(label);
    g.a.addiu(Reg::SP, Reg::SP, -8);
    g.a.sw(RA, 4, Reg::SP);
    g.a.sw(S0, 0, Reg::SP);
    g.a.mov(S0, A0);
    // Clear (OvFlo, Hi, Lo).
    g.a.multu(ZERO, ZERO);
    g.a.li(A3, wide_addr as i64); // product pointer
                                  // Phase 1: columns 0..k-1. Column i: j in 0..=i of a[j]*b[i-j].
                                  // t6 = column index i (0-based), t8 = count = i+1.
    g.a.li(T6, 0);
    g.a.label(&phase1);
    g.a.mov(T4, A1); // a ptr (ascending from a[0])
    g.a.sll(T0, T6, 2);
    g.a.addu(T5, A2, T0); // b ptr (descending from b[i])
    g.a.addiu(T8, T6, 1); // count
    g.a.label(&inner1);
    g.a.lw(T0, 0, T4);
    g.a.lw(T1, 0, T5);
    g.a.addiu(T4, T4, 4);
    g.a.addiu(T5, T5, -4);
    g.a.addiu(T8, T8, -1);
    g.a.bne(T8, ZERO, &inner1);
    g.a.maddu(T0, T1); // delay slot: the MAC itself
    g.a.mflo(T2);
    g.a.sw(T2, 0, A3); // p[i] = v
    g.a.addiu(A3, A3, 4);
    g.a.sha(); // accumulator >>= 32
    g.a.addiu(T6, T6, 1);
    g.a.li(T0, k as i64);
    g.a.bne(T6, T0, &phase1);
    g.a.nop();
    // Phase 2: columns k..2k-2. Column i: j in i-k+1..=k-1.
    g.a.label(&phase2);
    // a ptr from a[i-k+1], b ptr from b[k-1]; count = 2k-1-i.
    g.a.addiu(T0, T6, -(k as i16) + 1);
    g.a.sll(T0, T0, 2);
    g.a.addu(T4, A1, T0);
    g.a.addiu(T5, A2, ((k - 1) * 4) as i16);
    g.a.li(T8, (2 * k - 1) as i64);
    g.a.subu(T8, T8, T6);
    g.a.label(&inner2);
    g.a.lw(T0, 0, T4);
    g.a.lw(T1, 0, T5);
    g.a.addiu(T4, T4, 4);
    g.a.addiu(T5, T5, -4);
    g.a.addiu(T8, T8, -1);
    g.a.bne(T8, ZERO, &inner2);
    g.a.maddu(T0, T1); // delay slot: the MAC itself
    g.a.mflo(T2);
    g.a.sw(T2, 0, A3);
    g.a.addiu(A3, A3, 4);
    g.a.sha();
    g.a.addiu(T6, T6, 1);
    g.a.li(T0, (2 * k - 1) as i64);
    g.a.bne(T6, T0, &phase2);
    g.a.nop();
    // Top word.
    g.a.mflo(T2);
    g.a.sw(T2, 0, A3);
    // Reduce.
    g.a.li(A0, wide_addr as i64);
    g.a.jal(fred_label);
    g.a.mov(A1, S0); // delay slot
    g.a.lw(RA, 4, Reg::SP);
    g.a.lw(S0, 0, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 8);
    g.a.ret();
}

/// Emits the product-scanning field squaring on the ISA extensions,
/// exploiting `M2ADDU` to halve the number of multiplications (Table 5.1):
/// `label: dst = a^2 mod p`. Each column processes its symmetric pairs in
/// a counted loop with the `M2ADDU` in the branch delay slot, plus the
/// diagonal center term via `MADDU` when the column has odd length.
///
/// ABI: `a0`=dst, `a1`=a. Non-leaf (calls `fred_label`).
pub fn emit_fsqr_ps_ext(g: &mut Gen, label: &str, k: usize, wide_addr: u32, fred_label: &str) {
    let col = g.sym("sq_col");
    let ploop = g.sym("sq_pl");
    let nopairs = g.sym("sq_np");
    let nocenter = g.sym("sq_nc");
    let hi_done = g.sym("sq_hid");
    let lo_done = g.sym("sq_lod");
    g.a.label(label);
    g.a.addiu(Reg::SP, Reg::SP, -8);
    g.a.sw(RA, 4, Reg::SP);
    g.a.sw(S0, 0, Reg::SP);
    g.a.mov(S0, A0);
    g.a.multu(ZERO, ZERO); // clear accumulator
    g.a.li(A3, wide_addr as i64);
    g.a.li(T6, 0); // column index i
    g.a.label(&col);
    // hi = min(i, k-1)
    g.a.li(T1, (k - 1) as i64);
    g.a.slt(T2, T6, T1);
    g.a.beq(T2, ZERO, &hi_done);
    g.a.nop();
    g.a.mov(T1, T6);
    g.a.label(&hi_done);
    // lo = max(0, i - k + 1)
    g.a.addiu(T2, T6, -(k as i16) + 1);
    g.a.bgez(T2, &lo_done);
    g.a.nop();
    g.a.li(T2, 0);
    g.a.label(&lo_done);
    // terms = hi - lo + 1; pa = a + lo*4; pb = a + (i-lo)*4
    g.a.subu(T3, T1, T2);
    g.a.addiu(T3, T3, 1);
    g.a.sll(T0, T2, 2);
    g.a.addu(T4, A1, T0);
    g.a.subu(T0, T6, T2);
    g.a.sll(T0, T0, 2);
    g.a.addu(T5, A1, T0);
    // pairs = terms >> 1
    g.a.srl(T8, T3, 1);
    g.a.beq(T8, ZERO, &nopairs);
    g.a.nop();
    g.a.label(&ploop);
    g.a.lw(T0, 0, T4);
    g.a.lw(T1, 0, T5);
    g.a.addiu(T4, T4, 4);
    g.a.addiu(T5, T5, -4);
    g.a.addiu(T8, T8, -1);
    g.a.bne(T8, ZERO, &ploop);
    g.a.m2addu(T0, T1); // delay slot: the doubled MAC
    g.a.label(&nopairs);
    // center term when the column length is odd
    g.a.andi(T3, T3, 1);
    g.a.beq(T3, ZERO, &nocenter);
    g.a.nop();
    g.a.lw(T0, 0, T4);
    g.a.maddu(T0, T0);
    g.a.label(&nocenter);
    g.a.mflo(T2);
    g.a.sw(T2, 0, A3);
    g.a.addiu(A3, A3, 4);
    g.a.sha();
    g.a.addiu(T6, T6, 1);
    g.a.li(T0, (2 * k - 1) as i64);
    g.a.bne(T6, T0, &col);
    g.a.nop();
    g.a.mflo(T2);
    g.a.sw(T2, 0, A3);
    g.a.li(A0, wide_addr as i64);
    g.a.jal(fred_label);
    g.a.mov(A1, S0); // delay slot
    g.a.lw(RA, 4, Reg::SP);
    g.a.lw(S0, 0, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 8);
    g.a.ret();
}

/// Emits CIOS Montgomery multiplication in software (Algorithm 5):
/// `label: dst = a * b * R^{-1} mod n` for the group order `n` (protocol
/// arithmetic, §4.1). The `t` scratch buffer is `k+2` words.
///
/// ABI: `a0`=dst, `a1`=a, `a2`=b. Leaf.
pub fn emit_cios(g: &mut Gen, label: &str, k: usize, n0_prime: u32, mod_label: &str, t_addr: u32) {
    let outer = g.sym("cios_outer");
    let in1 = g.sym("cios_in1");
    let in2 = g.sym("cios_in2");
    let nosub = g.sym("cios_nosub");
    let dosub = g.sym("cios_dosub");
    g.a.label(label);
    g.a.li(T6, t_addr as i64);
    emit_zero_words(g, T6, k + 2);
    // outer loop: a3 = b pointer, t8 = count. (v1 clobbered by zero loop.)
    g.a.mov(A3, A2);
    g.a.li(T8, k as i64);
    g.a.label(&outer);
    g.a.lw(T7, 0, A3); // b[i]
                       // --- first inner loop: t[0..k] += a * b[i]; carries into t[k..k+2]
    g.a.li(V0, 0); // carry C
    g.a.mov(T4, A1); // a ptr
    g.a.mov(T5, T6); // t ptr
    g.a.li(T9, k as i64);
    g.a.label(&in1);
    g.a.lw(T0, 0, T4);
    g.a.multu(T0, T7);
    g.a.lw(T1, 0, T5);
    g.a.addiu(T4, T4, 4);
    g.a.addiu(T9, T9, -1);
    g.a.mflo(T2);
    g.a.mfhi(T3);
    g.a.addu(T2, T2, T1);
    g.a.sltu(T1, T2, T1);
    g.a.addu(T2, T2, V0);
    g.a.sltu(V1, T2, V0);
    g.a.addu(T3, T3, T1);
    g.a.addu(V0, T3, V1);
    g.a.sw(T2, 0, T5);
    g.a.bne(T9, ZERO, &in1);
    g.a.addiu(T5, T5, 4); // delay
                          // (C,S) = t[k] + C ; t[k] = S; t[k+1] = C'
    g.a.lw(T0, 0, T5);
    g.a.addu(T1, T0, V0);
    g.a.sltu(T2, T1, T0);
    g.a.sw(T1, 0, T5);
    g.a.sw(T2, 4, T5);
    // --- m = t[0] * n0' mod 2^32
    g.a.lw(T0, 0, T6);
    g.a.li(T1, n0_prime as i64);
    g.a.multu(T0, T1);
    g.a.mflo(T7); // m
                  // --- second inner loop: fold m*n, shifting t down one word.
                  // (C,S) = t[0] + m*n[0]; C -> V0
    g.a.la(T4, mod_label);
    g.a.lw(T0, 0, T4);
    g.a.multu(T0, T7);
    g.a.lw(T1, 0, T6); // t[0]
    g.a.addiu(T4, T4, 4);
    g.a.mflo(T2);
    g.a.mfhi(T3);
    g.a.addu(T2, T2, T1);
    g.a.sltu(T1, T2, T1);
    g.a.addu(V0, T3, T1); // C (S discarded: it is 0 mod 2^32 by design)
    g.a.mov(T5, T6); // t write ptr (t[j-1])
    g.a.li(T9, (k - 1) as i64);
    g.a.label(&in2);
    g.a.lw(T0, 0, T4); // n[j]
    g.a.multu(T0, T7);
    g.a.lw(T1, 4, T5); // t[j]
    g.a.addiu(T4, T4, 4);
    g.a.addiu(T9, T9, -1);
    g.a.mflo(T2);
    g.a.mfhi(T3);
    g.a.addu(T2, T2, T1);
    g.a.sltu(T1, T2, T1);
    g.a.addu(T2, T2, V0);
    g.a.sltu(V1, T2, V0);
    g.a.addu(T3, T3, T1);
    g.a.addu(V0, T3, V1);
    g.a.sw(T2, 0, T5); // t[j-1] = S
    g.a.bne(T9, ZERO, &in2);
    g.a.addiu(T5, T5, 4); // delay
                          // (C,S) = t[k] + C; t[k-1] = S; t[k] = t[k+1] + C'
    g.a.lw(T0, 4, T5); // t[k]
    g.a.addu(T1, T0, V0);
    g.a.sltu(T2, T1, T0);
    g.a.sw(T1, 0, T5); // t[k-1]
    g.a.lw(T0, 8, T5); // t[k+1]
    g.a.addu(T0, T0, T2);
    g.a.sw(T0, 4, T5); // t[k]
    g.a.sw(ZERO, 8, T5); // t[k+1] = 0
    g.a.addiu(A3, A3, 4);
    g.a.addiu(T8, T8, -1);
    g.a.bne(T8, ZERO, &outer);
    g.a.nop();
    // Final correction: if t[k] != 0 or t >= n: t -= n.
    g.a.lw(T0, (k * 4) as i16, T6);
    g.a.bne(T0, ZERO, &dosub);
    g.a.nop();
    g.a.la(T8, mod_label);
    emit_cmp_ge_or(g, T6, T8, k, &nosub);
    g.a.label(&dosub);
    g.a.la(T8, mod_label);
    g.a.li(T6, t_addr as i64); // emit_cmp clobbered t1..t5 only; t6 safe — reload anyway
    emit_sub_loop(g, T6, T8, k);
    g.a.li(T6, t_addr as i64);
    g.a.label(&nosub);
    g.a.li(T6, t_addr as i64);
    emit_copy_words(g, A0, T6, k);
    g.a.ret();
}
