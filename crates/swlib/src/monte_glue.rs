//! Field-routine bindings for the Monte-accelerated configuration
//! (§5.4): every GF(p) operation becomes a short COP2 command sequence,
//! and field elements live in the **Montgomery domain** throughout the
//! scalar multiplication (Monte's FFAU executes CIOS Montgomery
//! multiplication in microcode).
//!
//! * `fmul`/`fadd`/`fsub` — `cop2lda; cop2ldb; cop2{mul,add,sub}; cop2st`
//!   with *no* synchronization: Monte's front end queues, reorders around
//!   DMA, and forwards results (§5.4.1); Pete only synchronizes before it
//!   reads an accelerator-written buffer (`fsync`, called from `fisz` and
//!   the end of `pt_to_affine`);
//! * `fin`/`fout` — domain entry/exit as multiplications by `R^2 mod p`
//!   and by the integer 1;
//! * `finv` — **Fermat's little theorem** (§4.2.4): a square-and-multiply
//!   over the bits of `p - 2` built entirely from Monte multiplications.

use crate::gen::Gen;
use ule_isa::instr::Instr;
use ule_isa::reg::Reg;

const A0: Reg = Reg::A0;
const A1: Reg = Reg::A1;
const A2: Reg = Reg::A2;
const V0: Reg = Reg::V0;
const T0: Reg = Reg::T0;
const T1: Reg = Reg::T1;
const S0: Reg = Reg::S0;
const S2: Reg = Reg::S2;
const ZERO: Reg = Reg::ZERO;
const RA: Reg = Reg::RA;

/// Monte control-register numbers understood by the accelerator model:
/// 0 = element width in words, 1 = the CIOS quotient constant `n0'`.
pub const CTRL_K: u8 = 0;
/// Control register holding `n0'`.
pub const CTRL_N0: u8 = 1;
/// Operation mode: nonzero routes `cop2mul` to the special-form
/// constant-multiply microprogram (the X25519/X448 fold extension).
pub const CTRL_FOLD_MODE: u8 = 2;
/// The fold constant multiplier `c` (the ladder coefficient `a24`).
pub const CTRL_FOLD_C: u8 = 3;
/// The fold multiplier `δ` (38 for 2^255−19, 1 for 2^448−2^224−1).
pub const CTRL_FOLD_DELTA: u8 = 4;
/// Limb offset of the second fold injection point (0 = none, 7 for
/// 2^448−2^224−1).
pub const CTRL_FOLD_OFF: u8 = 5;

/// The constants a Monte program must have resident in shared RAM
/// (Monte's DMA reaches only the dual-port RAM, §5.4): each pair is
/// `(RAM symbol the suite references, ROM label holding the initial
/// value)`. This mirrors the paper's startup copy of the data section
/// from ROM into RAM (§5.1).
pub const MONTE_RAM_CONSTANTS: [(&str, &str); 6] = [
    ("const_gx", "rom_gx"),
    ("const_gy", "rom_gy"),
    ("const_one", "rom_one"),
    ("const_zero", "rom_zero"),
    ("const_r2p", "rom_r2p"),
    ("const_int_one", "rom_intone"),
];

/// The RAM-resident constants of the Montgomery-ladder (XDH) suite: no
/// generator point (the base `u` arrives as an argument), otherwise the
/// same domain machinery.
pub const MONTE_XDH_RAM_CONSTANTS: [(&str, &str); 4] = [
    ("const_one", "rom_one"),
    ("const_zero", "rom_zero"),
    ("const_r2p", "rom_r2p"),
    ("const_int_one", "rom_intone"),
];

/// Emits `arch_init` for Monte: configure the control registers, copy the
/// field modulus and the RAM-resident constants out of ROM, and DMA the
/// modulus into Monte's N buffer.
pub fn emit_monte_init(g: &mut Gen, k: usize, n0_prime: u32, monte_n_buf: u32) {
    emit_monte_init_with(g, k, n0_prime, monte_n_buf, &MONTE_RAM_CONSTANTS, None);
}

/// [`emit_monte_init`] with an explicit RAM-constant list and optional
/// special-form fold parameters `(c, δ, second_offset)` for the
/// X25519/X448 extension (preloaded once; `fmula24` only toggles the
/// mode register per call).
pub fn emit_monte_init_with(
    g: &mut Gen,
    k: usize,
    n0_prime: u32,
    monte_n_buf: u32,
    ram_constants: &[(&str, &str)],
    fold: Option<(u32, u32, u32)>,
) {
    g.a.label("arch_init");
    g.a.addiu(Reg::SP, Reg::SP, -8);
    g.a.sw(RA, 4, Reg::SP);
    g.a.li(T0, k as i64);
    g.a.ctc2(T0, CTRL_K);
    g.a.li(T0, n0_prime as i64);
    g.a.ctc2(T0, CTRL_N0);
    if let Some((c, delta, off)) = fold {
        g.a.li(T0, c as i64);
        g.a.ctc2(T0, CTRL_FOLD_C);
        g.a.li(T0, delta as i64);
        g.a.ctc2(T0, CTRL_FOLD_DELTA);
        g.a.li(T0, off as i64);
        g.a.ctc2(T0, CTRL_FOLD_OFF);
    }
    // Copy p from ROM into shared RAM, then load it into Monte.
    g.a.li(A0, monte_n_buf as i64);
    g.a.la(A1, "const_p");
    g.a.jal("fcopy");
    g.a.nop();
    g.a.li(T0, monte_n_buf as i64);
    g.a.cop2ldn(T0);
    g.a.cop2sync();
    // Populate the RAM-resident constants.
    for &(ram, rom) in ram_constants {
        g.a.la(A0, ram);
        g.a.la(A1, rom);
        g.a.jal("fcopy");
        g.a.nop();
    }
    g.a.lw(RA, 4, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 8);
    g.a.ret();
}

/// Emits the `fmula24` binding for Monte: multiply by the preloaded
/// ladder constant through the special-form fold microprogram — `O(k)`
/// cycles instead of a full `O(k²)` CIOS pass. Flips the mode register
/// around a single `cop2mul`, so the surrounding command stream still
/// queues and forwards normally.
pub fn emit_monte_fmula24(g: &mut Gen) {
    g.a.label("fmula24");
    g.a.li(T0, 1);
    g.a.ctc2(T0, CTRL_FOLD_MODE);
    g.a.cop2lda(A1);
    g.a.cop2mul();
    g.a.cop2st(A0);
    g.a.li(T0, 0);
    g.a.ctc2(T0, CTRL_FOLD_MODE);
    g.a.ret();
}

/// Emits the Monte field-operation bindings (`fmul`, `fsqr`, `fadd`,
/// `fsub`, `fsync`, `fin`, `fout`).
pub fn emit_monte_field_ops(g: &mut Gen) {
    // fmul: issue-only; the front end overlaps DMA with computation.
    g.a.label("fmul");
    g.a.cop2lda(A1);
    g.a.cop2ldb(A2);
    g.a.cop2mul();
    g.a.cop2st(A0);
    g.a.ret();
    // fsqr: same multiplier, second operand aliased in the delay slot.
    g.a.label("fsqr");
    g.a.j("fmul");
    g.a.emit(Instr::Addu {
        rd: A2,
        rs: A1,
        rt: ZERO,
    }); // delay slot: a2 = a1
        // fadd / fsub: Monte's modular add/subtract microprograms.
    g.a.label("fadd");
    g.a.cop2lda(A1);
    g.a.cop2ldb(A2);
    g.a.cop2add();
    g.a.cop2st(A0);
    g.a.ret();
    g.a.label("fsub");
    g.a.cop2lda(A1);
    g.a.cop2ldb(A2);
    g.a.cop2sub();
    g.a.cop2st(A0);
    g.a.ret();
    // fsync: drain the queue before Pete touches results.
    g.a.label("fsync");
    g.a.cop2sync();
    g.a.ret();
    // Domain conversions: in = * R^2 mod p, out = * 1.
    g.a.label("fin");
    g.a.la(A2, "const_r2p");
    g.a.j("fmul");
    g.a.nop();
    g.a.label("fout");
    g.a.la(A2, "const_int_one");
    g.a.j("fmul");
    g.a.nop();
}

/// Emits the Fermat inversion binding `finv` for Monte: left-to-right
/// square-and-multiply over the bits of `p - 2` (stored at `const_pm2`),
/// entirely as Monte multiplications, staying in the Montgomery domain.
///
/// `exp_bits` is the bit length of `p - 2` (a build-time constant).
pub fn emit_monte_finv(g: &mut Gen, exp_bits: usize, fermat_r: u32, fermat_b: u32) {
    let floop = g.sym("fermat_loop");
    let nobit = g.sym("fermat_nobit");
    g.a.label("finv");
    g.a.addiu(Reg::SP, Reg::SP, -16);
    g.a.sw(RA, 12, Reg::SP);
    g.a.sw(S0, 8, Reg::SP);
    g.a.sw(S2, 4, Reg::SP);
    g.a.mov(S2, A0);
    // base = src; result = mont(1) (the field one in the domain).
    g.a.li(A0, fermat_b as i64);
    g.a.jal("fcopy");
    g.a.nop(); // a1 = src already
    g.a.li(A0, fermat_r as i64);
    g.a.la(A1, "const_one");
    g.a.jal("fcopy");
    g.a.nop();
    g.a.li(S0, (exp_bits - 1) as i64);
    g.a.label(&floop);
    // r = r^2
    g.a.li(A0, fermat_r as i64);
    g.a.li(A1, fermat_r as i64);
    g.a.jal("fsqr");
    g.a.nop();
    // bit i of p-2 (from ROM)
    g.a.srl(T0, S0, 5);
    g.a.sll(T0, T0, 2);
    g.a.la(T1, "const_pm2");
    g.a.addu(T0, T0, T1);
    g.a.lw(T0, 0, T0);
    g.a.andi(T1, S0, 31);
    g.a.srlv(T0, T0, T1);
    g.a.andi(V0, T0, 1);
    g.a.beq(V0, ZERO, &nobit);
    g.a.nop();
    g.a.li(A0, fermat_r as i64);
    g.a.li(A1, fermat_r as i64);
    g.a.li(A2, fermat_b as i64);
    g.a.jal("fmul");
    g.a.nop();
    g.a.label(&nobit);
    g.a.addiu(S0, S0, -1);
    g.a.bgez(S0, &floop);
    g.a.nop();
    // dst = result
    g.a.mov(A0, S2);
    g.a.li(A1, fermat_r as i64);
    g.a.jal("fcopy");
    g.a.nop();
    g.a.lw(RA, 12, Reg::SP);
    g.a.lw(S0, 8, Reg::SP);
    g.a.lw(S2, 4, Reg::SP);
    g.a.addiu(Reg::SP, Reg::SP, 16);
    g.a.ret();
}
