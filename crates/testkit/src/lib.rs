//! Zero-dependency test support for the workspace: a deterministic
//! PRNG for the property/differential tests and a tiny wall-clock
//! micro-benchmark harness.
//!
//! The workspace builds in fully offline environments, so the test
//! suites cannot lean on external crates (`proptest`, `rand`,
//! `criterion`). Everything they actually needed is small: reproducible
//! random operands and a "how many ns per iteration" loop. Both live
//! here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A deterministic splitmix64 PRNG.
///
/// Splitmix64 passes BigCrush, needs four lines of code, and — unlike
/// an external dependency — produces the same stream on every platform
/// and toolchain, which keeps the differential tests reproducible from
/// a bare seed printed in a failure message.
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 16-bit value.
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Next signed 16-bit value.
    pub fn next_i16(&mut self) -> i16 {
        self.next_u16() as i16
    }

    /// Next boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform value in `0..n` (`n > 0`). The modulo bias is below
    /// 2⁻³² for every `n` the tests use — irrelevant for fuzzing.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform `usize` in `lo..hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo) as u64) as usize
    }

    /// `len` random 32-bit limbs.
    pub fn vec_u32(&mut self, len: usize) -> Vec<u32> {
        (0..len).map(|_| self.next_u32()).collect()
    }

    /// `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next_u64() >> 56) as u8).collect()
    }
}

/// Times `f` over `iters` iterations and prints mean ns/iteration —
/// the workspace's replacement for the criterion harness. Returns the
/// mean so callers can assert coarse bounds if they want to.
pub fn bench(name: &str, iters: u32, mut f: impl FnMut()) -> f64 {
    // One warm-up pass so lazily built tables don't pollute the mean.
    f();
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    println!("{name:40} {ns:>14.0} ns/iter   ({iters} iters)");
    ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            (0..8)
                .map({
                    let mut r = Rng::new(42);
                    move |_| r.next_u64()
                })
                .collect()
        };
        let b: Vec<u64> = {
            (0..8)
                .map({
                    let mut r = Rng::new(42);
                    move |_| r.next_u64()
                })
                .collect()
        };
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let x = r.range(3, 9);
            assert!((3..9).contains(&x));
        }
    }
}
