//! Zero-dependency test support for the workspace: a deterministic
//! PRNG for the property/differential tests and a tiny wall-clock
//! micro-benchmark harness.
//!
//! The workspace builds in fully offline environments, so the test
//! suites cannot lean on external crates (`proptest`, `rand`,
//! `criterion`). Everything they actually needed is small: reproducible
//! random operands and a "how many ns per iteration" loop. Both live
//! here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A deterministic splitmix64 PRNG.
///
/// Splitmix64 passes BigCrush, needs four lines of code, and — unlike
/// an external dependency — produces the same stream on every platform
/// and toolchain, which keeps the differential tests reproducible from
/// a bare seed printed in a failure message.
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 16-bit value.
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Next signed 16-bit value.
    pub fn next_i16(&mut self) -> i16 {
        self.next_u16() as i16
    }

    /// Next boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform value in `0..n` (`n > 0`). The modulo bias is below
    /// 2⁻³² for every `n` the tests use — irrelevant for fuzzing.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform `usize` in `lo..hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo) as u64) as usize
    }

    /// `len` random 32-bit limbs.
    pub fn vec_u32(&mut self, len: usize) -> Vec<u32> {
        (0..len).map(|_| self.next_u32()).collect()
    }

    /// `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next_u64() >> 56) as u8).collect()
    }
}

/// A thread-limit shim: lets tests make the next N thread spawns on the
/// *current* thread fail, so graceful-degradation paths (a sweep falling
/// back to fewer workers, a heartbeat spawn being skipped) are testable
/// without exhausting real OS limits.
///
/// Spawn sites consult [`threads::spawn_blocked`] immediately before
/// calling `std::thread::Builder::spawn*`; the budget is thread-local,
/// so parallel tests cannot poison each other (every instrumented spawn
/// site spawns from its caller's thread).
pub mod threads {
    use std::cell::Cell;

    thread_local! {
        /// `(pass_remaining, fail_remaining)`: let that many spawns
        /// through, then fail that many.
        static PLAN: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    }

    /// Resets the calling thread's spawn-failure plan on drop, so a
    /// panicking test cannot leak blocks into later tests on the same
    /// pooled test thread.
    pub struct SpawnFailGuard(());

    impl Drop for SpawnFailGuard {
        fn drop(&mut self) {
            PLAN.with(|p| p.set((0, 0)));
        }
    }

    /// Makes the next `n` [`spawn_blocked`] queries on this thread
    /// answer `true` (i.e. the next `n` instrumented spawns fail).
    #[must_use = "dropping the guard clears the budget immediately"]
    pub fn fail_next_spawns(n: u64) -> SpawnFailGuard {
        fail_spawns_after(0, n)
    }

    /// Lets `skip` instrumented spawns through, then fails the next
    /// `n` — models a thread limit hit partway through a fan-out.
    #[must_use = "dropping the guard clears the budget immediately"]
    pub fn fail_spawns_after(skip: u64, n: u64) -> SpawnFailGuard {
        PLAN.with(|p| p.set((skip, n)));
        SpawnFailGuard(())
    }

    /// Consumes one step of the spawn-failure plan; `true` means the
    /// caller must treat its spawn as failed. Always `false` outside
    /// tests (the plan is only ever set by [`fail_next_spawns`] /
    /// [`fail_spawns_after`]).
    pub fn spawn_blocked() -> bool {
        PLAN.with(|p| {
            let (skip, fail) = p.get();
            if skip > 0 {
                p.set((skip - 1, fail));
                false
            } else if fail > 0 {
                p.set((0, fail - 1));
                true
            } else {
                false
            }
        })
    }
}

/// Times `f` over `iters` iterations and prints mean ns/iteration —
/// the workspace's replacement for the criterion harness. Returns the
/// mean so callers can assert coarse bounds if they want to.
pub fn bench(name: &str, iters: u32, mut f: impl FnMut()) -> f64 {
    // One warm-up pass so lazily built tables don't pollute the mean.
    f();
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    println!("{name:40} {ns:>14.0} ns/iter   ({iters} iters)");
    ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            (0..8)
                .map({
                    let mut r = Rng::new(42);
                    move |_| r.next_u64()
                })
                .collect()
        };
        let b: Vec<u64> = {
            (0..8)
                .map({
                    let mut r = Rng::new(42);
                    move |_| r.next_u64()
                })
                .collect()
        };
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn spawn_shim_budget_is_thread_local_and_resets() {
        assert!(!threads::spawn_blocked(), "no budget by default");
        {
            let _g = threads::fail_next_spawns(2);
            assert!(threads::spawn_blocked());
            // Another thread is unaffected by this thread's budget.
            std::thread::scope(|s| {
                s.spawn(|| assert!(!threads::spawn_blocked()));
            });
            assert!(threads::spawn_blocked());
            assert!(!threads::spawn_blocked(), "budget exhausted");
        }
        let _g = threads::fail_next_spawns(5);
        drop(threads::fail_next_spawns(0));
        assert!(!threads::spawn_blocked(), "guard drop clears the budget");

        let _g = threads::fail_spawns_after(1, 1);
        assert!(!threads::spawn_blocked(), "first spawn passes");
        assert!(threads::spawn_blocked(), "second spawn fails");
        assert!(!threads::spawn_blocked(), "plan exhausted");
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let x = r.range(3, 9);
            assert!((3..9).contains(&x));
        }
    }
}
