//! A memoizing simulation runner: every (configuration, workload) pair is
//! simulated at most once per harness invocation, because several figures
//! slice the same underlying runs.

use std::collections::HashMap;
use std::rc::Rc;
use ule_core::{MultVariant, RunReport, System, SystemConfig, Workload};
use ule_curves::params::CurveId;
use ule_monte::MonteConfig;
use ule_pete::icache::CacheConfig;
use ule_swlib::builder::Arch;

/// Hashable key describing one configuration+workload.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Key {
    curve: CurveId,
    arch: &'static str,
    icache: Option<(u32, bool, bool)>,
    double_buffer: bool,
    forwarding: bool,
    digit: usize,
    gating: u8,
    sram_rf: bool,
    workload: &'static str,
}

fn arch_key(a: Arch) -> &'static str {
    match a {
        Arch::Baseline => "base",
        Arch::IsaExt => "ext",
        Arch::Monte => "monte",
        Arch::Billie => "billie",
    }
}

fn gating_key(g: ule_energy::report::Gating) -> u8 {
    match g {
        ule_energy::report::Gating::None => 0,
        ule_energy::report::Gating::Clock => 1,
        ule_energy::report::Gating::Power => 2,
    }
}

fn wl_key(w: Workload) -> &'static str {
    match w {
        Workload::Sign => "sign",
        Workload::Verify => "verify",
        Workload::SignVerify => "sv",
        Workload::ScalarMul => "kg",
        Workload::FieldMul => "fmul",
    }
}

/// The memoizing runner.
#[derive(Default)]
pub struct Runner {
    cache: HashMap<Key, Rc<RunReport>>,
    systems: HashMap<String, Rc<System>>,
}

impl Runner {
    /// Fresh runner.
    pub fn new() -> Self {
        Runner::default()
    }

    fn system(&mut self, config: SystemConfig) -> Rc<System> {
        let key = format!(
            "{:?}|{}|{:?}|{}|{}|{}|{}",
            config.curve,
            arch_key(config.arch),
            config.icache.map(|c| (c.size_bytes, c.prefetch, c.ideal)),
            config.monte.double_buffer,
            config.monte.forwarding,
            config.billie_digit,
            gating_key(config.gating)
        ) + if config.billie_sram_rf { "|sram" } else { "" };
        if let Some(s) = self.systems.get(&key) {
            return s.clone();
        }
        let sys = Rc::new(System::new(config));
        self.systems.insert(key, sys.clone());
        sys
    }

    /// Runs (or recalls) one workload on one configuration.
    pub fn run(&mut self, config: SystemConfig, workload: Workload) -> Rc<RunReport> {
        let key = Key {
            curve: config.curve,
            arch: arch_key(config.arch),
            icache: config.icache.map(|c| (c.size_bytes, c.prefetch, c.ideal)),
            double_buffer: config.monte.double_buffer,
            forwarding: config.monte.forwarding,
            digit: config.billie_digit,
            gating: gating_key(config.gating),
            sram_rf: config.billie_sram_rf,
            workload: wl_key(workload),
        };
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        let sys = self.system(config);
        let report = Rc::new(sys.run(workload));
        self.cache.insert(key, report.clone());
        report
    }

    /// Sign+Verify on the standard configuration of (curve, arch).
    pub fn sv(&mut self, curve: CurveId, arch: Arch) -> Rc<RunReport> {
        self.run(SystemConfig::new(curve, arch), Workload::SignVerify)
    }

    /// Sign+Verify with an instruction cache.
    pub fn sv_cached(&mut self, curve: CurveId, arch: Arch, cache: CacheConfig) -> Rc<RunReport> {
        self.run(
            SystemConfig::new(curve, arch).with_icache(cache),
            Workload::SignVerify,
        )
    }

    /// Monte with explicit front-end knobs.
    pub fn sv_monte(&mut self, curve: CurveId, monte: MonteConfig) -> Rc<RunReport> {
        let mut cfg = SystemConfig::new(curve, Arch::Monte);
        cfg.monte = monte;
        self.run(cfg, Workload::SignVerify)
    }

    /// Billie scalar multiplication with an explicit digit width.
    pub fn kg_billie(&mut self, curve: CurveId, digit: usize) -> Rc<RunReport> {
        let mut cfg = SystemConfig::new(curve, Arch::Billie);
        cfg.billie_digit = digit;
        self.run(cfg, Workload::ScalarMul)
    }

    /// Baseline with a §7.8 multiplier power variant (timing identical).
    pub fn sv_mult_variant(&mut self, curve: CurveId, variant: MultVariant) -> RunReport {
        // Variants share cycles; recompute energy with the factor.
        let base = self.sv(curve, Arch::Baseline);
        let mut activity = base.activity;
        activity.mult_variant_factor = match variant {
            MultVariant::Karatsuba => 1.0,
            MultVariant::OperandScan => ule_energy::constants::MULT_VARIANT_OPERAND_SCAN,
            MultVariant::Parallel => ule_energy::constants::MULT_VARIANT_PARALLEL,
        };
        RunReport {
            cycles: base.cycles,
            counters: base.counters,
            activity,
            energy: ule_energy::report::energy(&activity),
        }
    }
}
