//! The deprecated serial façade over [`SweepEngine`](crate::SweepEngine).
//!
//! Every method here delegates 1:1 to the engine (`run`, `sv`,
//! `sv_cached`, `sv_monte`, `kg_billie`, `sv_mult_variant`); the only
//! differences are the needless `&mut self` receivers and the missing
//! `run_batch`/stats surface. See the [`crate::sweep`] module docs for
//! the caching and determinism contract, usage examples, and the
//! `ULE_SWEEP_THREADS` override — none of that is duplicated here, so
//! it cannot drift. New code should construct a [`SweepEngine`]
//! directly.

use std::sync::Arc;
use ule_core::{MultVariant, RunReport, SystemConfig, Workload};
use ule_curves::params::CurveId;
use ule_monte::MonteConfig;
use ule_pete::icache::CacheConfig;
use ule_swlib::builder::Arch;

use crate::sweep::SweepEngine;

/// The old memoizing runner, now a thin wrapper around [`SweepEngine`].
#[deprecated(
    since = "0.1.0",
    note = "use SweepEngine: thread-safe, same memoization, plus run_batch fan-out"
)]
#[derive(Default)]
pub struct Runner {
    engine: SweepEngine,
}

#[allow(deprecated)]
impl Runner {
    /// Fresh runner.
    pub fn new() -> Self {
        Runner::default()
    }

    /// Runs (or recalls) one workload on one configuration.
    pub fn run(&mut self, config: SystemConfig, workload: Workload) -> Arc<RunReport> {
        self.engine.run(config, workload)
    }

    /// Sign+Verify on the standard configuration of (curve, arch).
    pub fn sv(&mut self, curve: CurveId, arch: Arch) -> Arc<RunReport> {
        self.engine.sv(curve, arch)
    }

    /// Sign+Verify with an instruction cache.
    pub fn sv_cached(&mut self, curve: CurveId, arch: Arch, cache: CacheConfig) -> Arc<RunReport> {
        self.engine.sv_cached(curve, arch, cache)
    }

    /// Monte with explicit front-end knobs.
    pub fn sv_monte(&mut self, curve: CurveId, monte: MonteConfig) -> Arc<RunReport> {
        self.engine.sv_monte(curve, monte)
    }

    /// Billie scalar multiplication with an explicit digit width.
    pub fn kg_billie(&mut self, curve: CurveId, digit: usize) -> Arc<RunReport> {
        self.engine.kg_billie(curve, digit)
    }

    /// Baseline with a §7.8 multiplier power variant (timing identical).
    pub fn sv_mult_variant(&mut self, curve: CurveId, variant: MultVariant) -> RunReport {
        self.engine.sv_mult_variant(curve, variant)
    }
}
