//! Machine-readable sweep output — the `--metrics-out`/`--format json`
//! backend of `repro` and the `bench` binary.
//!
//! One flat `design_point` record per *distinct* design point (the
//! submission union may repeat points across experiments; the first
//! occurrence wins and later duplicates are dropped, mirroring the
//! memo), followed by one `engine_summary` record with the
//! [`SweepEngine`]'s memoization counters and per-job simulation
//! wall-clock. Schema: see `ule_obs::record::SCHEMA_VERSION` and the
//! golden-file test in `tests/metrics.rs`.

use std::collections::HashSet;
use std::io;
use std::path::Path;
use std::sync::Arc;

use crate::sweep::{ConfigKey, EngineStats, Job, SweepEngine};
use ule_core::metrics::design_point_record;
use ule_core::RunReport;
use ule_obs::json::JsonBuf;
use ule_obs::record::{MetricsRegistry, Record};

/// Builds the full metrics registry for one finished sweep:
/// `design_point` records (deduplicated, submission order) plus the
/// trailing `engine_summary`.
///
/// # Panics
///
/// Panics if `jobs` and `reports` differ in length (they must be the
/// paired output of [`SweepEngine::run_batch`]).
pub fn metrics_registry(
    jobs: &[Job],
    reports: &[Arc<RunReport>],
    engine: &SweepEngine,
) -> MetricsRegistry {
    assert_eq!(
        jobs.len(),
        reports.len(),
        "jobs and reports must pair up (run_batch output)"
    );
    let mut seen = HashSet::new();
    let mut reg = MetricsRegistry::new();
    for (&(config, workload), report) in jobs.iter().zip(reports) {
        if seen.insert(ConfigKey::new(config, workload)) {
            reg.push(design_point_record(&config, workload, report));
        }
    }
    reg.push(engine_summary_record(engine));
    reg
}

/// The `engine_summary` record: request/memoization counters and the
/// wall-clock of every cold simulation.
pub fn engine_summary_record(engine: &SweepEngine) -> Record {
    // Exhaustive: a new engine counter must be exported.
    let EngineStats {
        requests,
        memo_hits,
        inflight_waits,
        simulations,
    } = engine.stats();
    let mut r = Record::new("engine_summary");
    r.push("threads", engine.threads() as u64);
    r.push("requests", requests);
    r.push("memo_hits", memo_hits);
    r.push("inflight_waits", inflight_waits);
    r.push("simulations", simulations);
    let timings = engine.job_timings();
    r.push(
        "sim_wall_us_total",
        timings
            .iter()
            .map(|(_, d)| d.as_micros() as u64)
            .sum::<u64>(),
    );
    let mut b = JsonBuf::new();
    b.begin_array();
    for (key, wall) in &timings {
        b.begin_object();
        b.key("job").value_str(&key.label());
        b.key("wall_us").value_u64(wall.as_micros() as u64);
        b.end_object();
    }
    b.end_array();
    r.push("job_wall_us", ule_obs::Value::Raw(b.finish()));
    r
}

/// Writes the sweep's metrics registry to `path` as JSONL. Returns the
/// number of records written (design points + 1 summary).
pub fn write_metrics(
    path: &Path,
    jobs: &[Job],
    reports: &[Arc<RunReport>],
    engine: &SweepEngine,
) -> io::Result<usize> {
    let reg = metrics_registry(jobs, reports, engine);
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    reg.write_jsonl(&mut f)?;
    io::Write::flush(&mut f)?;
    Ok(reg.records().len())
}
