//! Harness performance benchmark: times a full sweep through
//! [`SweepEngine`] and writes `BENCH_sweep.json` — the machine-readable
//! perf-trajectory record compared across PRs.
//!
//! ```text
//! cargo run -p ule-bench --release --bin bench            # all experiments
//! cargo run -p ule-bench --release --bin bench -- fig7_1 t7_4
//! cargo run -p ule-bench --release --bin bench -- --threads 2 --out BENCH_sweep.json
//! ```
//!
//! The output is one JSON object: deterministic simulated totals
//! (`sim_cycles_total`, `sim_energy_uj_total` over the distinct design
//! points — CI gates on these exactly), batch wall-clock, engine
//! memoization counters, per-experiment job counts, and the per-job
//! simulation wall-clock (descending), all under the metrics
//! `schema_version`.

use std::path::PathBuf;
use std::str::FromStr;
use std::time::Instant;

use std::collections::HashSet;

use ule_bench::{ConfigKey, ExperimentId, Job, SweepEngine};
use ule_obs::json::JsonBuf;

/// `sim_wall_ms_total` of the frozen pre-fast-tier sweep
/// (`BENCH_baseline_prefast.json`, looked up next to the output path),
/// or `None` when the baseline is absent or malformed — a fresh
/// checkout without the baseline still benches fine.
fn prefast_sim_wall_ms(out: &std::path::Path) -> Option<f64> {
    let path = out.with_file_name("BENCH_baseline_prefast.json");
    let text = std::fs::read_to_string(path).ok()?;
    let doc = ule_obs::json::parse(&text)?;
    doc.get("sim_wall_ms_total")?.as_f64().filter(|v| *v > 0.0)
}

fn main() {
    let mut threads: Option<usize> = None;
    let mut out = PathBuf::from("BENCH_sweep.json");
    let mut selected: Vec<ExperimentId> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads expects a positive integer");
                        std::process::exit(2);
                    });
                threads = Some(n);
            }
            "--out" => match args.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                }
            },
            "-h" | "--help" => {
                println!("usage: bench [--threads N] [--out PATH] [<experiment-id>... | all]");
                println!("times a sweep and writes BENCH_sweep.json (default: all experiments)");
                return;
            }
            "all" => selected.extend(ExperimentId::ALL),
            other => match ExperimentId::from_str(other) {
                Ok(id) => selected.push(id),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
        }
    }
    if selected.is_empty() {
        selected.extend(ExperimentId::ALL);
    }

    let mut engine = SweepEngine::new();
    if let Some(n) = threads {
        engine = engine.with_threads(n);
    }

    let jobs: Vec<Job> = selected.iter().flat_map(|id| id.jobs()).collect();
    let started = Instant::now();
    let reports = engine.run_batch(&jobs);
    let batch_wall = started.elapsed();

    // Deterministic workload totals over the *distinct* design points
    // (the submission union repeats points across experiments): pure
    // simulator outputs, so CI can gate on them exactly while the
    // wall-clock numbers stay advisory.
    let mut seen = HashSet::new();
    let mut sim_cycles_total = 0u64;
    let mut sim_energy_uj_total = 0f64;
    for (&(config, workload), report) in jobs.iter().zip(&reports) {
        if seen.insert(ConfigKey::new(config, workload)) {
            sim_cycles_total += report.cycles;
            sim_energy_uj_total += report.energy.total_uj();
        }
    }
    let stats = engine.stats();
    let mut timings = engine.job_timings();
    timings.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.label().cmp(&b.0.label())));
    let sim_wall_ms_total: f64 = timings.iter().map(|(_, d)| d.as_secs_f64() * 1e3).sum();

    let mut b = JsonBuf::new();
    b.begin_object();
    b.key("bench").value_str("sweep");
    b.key("schema_version")
        .value_u64(ule_obs::record::SCHEMA_VERSION);
    b.key("threads").value_u64(engine.threads() as u64);
    b.key("experiments");
    b.begin_array();
    for id in &selected {
        b.value_str(id.name());
    }
    b.end_array();
    b.key("jobs_submitted").value_u64(jobs.len() as u64);
    b.key("design_points").value_u64(seen.len() as u64);
    b.key("sim_cycles_total").value_u64(sim_cycles_total);
    b.key("sim_energy_uj_total").value_f64(sim_energy_uj_total);
    b.key("requests").value_u64(stats.requests);
    b.key("memo_hits").value_u64(stats.memo_hits);
    b.key("inflight_waits").value_u64(stats.inflight_waits);
    b.key("simulations").value_u64(stats.simulations);
    b.key("batch_wall_ms")
        .value_f64(batch_wall.as_secs_f64() * 1e3);
    b.key("sim_wall_ms_total").value_f64(sim_wall_ms_total);
    b.key("job_wall_us");
    b.begin_array();
    for (key, wall) in &timings {
        b.begin_object();
        b.key("job").value_str(&key.label());
        b.key("wall_us").value_u64(wall.as_micros() as u64);
        b.end_object();
    }
    b.end_array();
    b.end_object();
    let json = b.finish();
    debug_assert!(ule_obs::json::is_valid(&json));

    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }

    // One-line run summary appended to BENCH_history.jsonl next to the
    // sweep record: the harness perf trajectory across PRs, one line
    // per bench run, with the speedup against the frozen pre-fast-tier
    // reference sweep when that baseline is present.
    let history = out.with_file_name("BENCH_history.jsonl");
    let mut h = JsonBuf::new();
    h.begin_object();
    h.key("schema_version")
        .value_u64(ule_obs::record::SCHEMA_VERSION);
    h.key("experiments").value_u64(selected.len() as u64);
    h.key("threads").value_u64(engine.threads() as u64);
    h.key("design_points").value_u64(seen.len() as u64);
    h.key("sim_cycles_total").value_u64(sim_cycles_total);
    h.key("sim_wall_ms_total").value_f64(sim_wall_ms_total);
    h.key("batch_wall_ms")
        .value_f64(batch_wall.as_secs_f64() * 1e3);
    // The pre-fast baseline is a full sweep, so the ratio is only
    // apples-to-apples when this run covered every experiment.
    let full_sweep = selected.len() == ExperimentId::ALL.len();
    match prefast_sim_wall_ms(&out) {
        Some(baseline_ms) if full_sweep && sim_wall_ms_total > 0.0 => {
            h.key("speedup_vs_prefast")
                .value_f64(baseline_ms / sim_wall_ms_total);
        }
        _ => {
            h.key("speedup_vs_prefast").value_null();
        }
    }
    h.end_object();
    let line = h.finish();
    debug_assert!(ule_obs::json::is_valid(&line));
    let append = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history)
        .and_then(|mut f| std::io::Write::write_all(&mut f, format!("{line}\n").as_bytes()));
    if let Err(e) = append {
        eprintln!("cannot append {}: {e}", history.display());
        std::process::exit(1);
    }

    eprintln!(
        "bench: {} jobs ({} cold) in {:.1} ms on {} threads -> {}",
        jobs.len(),
        stats.simulations,
        batch_wall.as_secs_f64() * 1e3,
        engine.threads(),
        out.display()
    );
}
