//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p ule-bench --release --bin repro -- all
//! cargo run -p ule-bench --release --bin repro -- fig7_1 t7_4
//! ```

use ule_bench::{experiments, Runner};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <experiment-id>... | all");
        eprintln!("ids: fig7_1..fig7_15, t7_1..t7_5, s7_7, s7_8");
        std::process::exit(2);
    }
    let mut runner = Runner::new();
    for name in &args {
        match experiments::by_name(name, &mut runner) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("unknown experiment {name:?}");
                std::process::exit(2);
            }
        }
    }
}
