//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p ule-bench --release --bin repro -- all
//! cargo run -p ule-bench --release --bin repro -- fig7_1 t7_4
//! cargo run -p ule-bench --release --bin repro -- --list
//! cargo run -p ule-bench --release --bin repro -- --threads 4 all
//! ```
//!
//! Every selected experiment's design points are first submitted to
//! [`SweepEngine::run_batch`], which simulates them in parallel and
//! memoizes the reports; the experiment text is then rendered serially
//! in argument order, so the output is byte-identical for any thread
//! count (including 1).

use std::str::FromStr;

use ule_bench::{ExperimentId, Job, SweepEngine};

fn usage() -> ! {
    eprintln!("usage: repro [--threads N] <experiment-id>... | all | --list");
    eprintln!("ids: {}", id_list());
    std::process::exit(2);
}

fn id_list() -> String {
    let names: Vec<&str> = ExperimentId::VARIANTS.iter().map(|id| id.name()).collect();
    names.join(" ")
}

fn main() {
    let mut threads: Option<usize> = None;
    let mut selected: Vec<ExperimentId> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for id in ExperimentId::VARIANTS {
                    println!("{id}");
                }
                println!("all");
                return;
            }
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads expects a positive integer");
                        std::process::exit(2);
                    });
                threads = Some(n);
            }
            "all" => selected.extend(ExperimentId::ALL),
            other => match ExperimentId::from_str(other) {
                Ok(id) => selected.push(id),
                Err(e) => {
                    eprintln!("{e}");
                    eprintln!("valid ids: {} (or: all)", id_list());
                    std::process::exit(2);
                }
            },
        }
    }
    if selected.is_empty() {
        usage();
    }

    let mut engine = SweepEngine::new();
    if let Some(n) = threads {
        engine = engine.with_threads(n);
    }

    // Pre-warm the memo cache in parallel over the union of design
    // points, then render serially in order.
    let jobs: Vec<Job> = selected.iter().flat_map(|id| id.jobs()).collect();
    engine.run_batch(&jobs);
    for id in &selected {
        print!("{}", id.run(&engine));
    }
}
