//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p ule-bench --release --bin repro -- all
//! cargo run -p ule-bench --release --bin repro -- fig7_1 t7_4
//! cargo run -p ule-bench --release --bin repro -- --list
//! cargo run -p ule-bench --release --bin repro -- --threads 4 all
//! cargo run -p ule-bench --release --bin repro -- --metrics-out m.jsonl fig7_1
//! cargo run -p ule-bench --release --bin repro -- --format json t7_4
//! ```
//!
//! Every selected experiment's design points are first submitted to
//! [`SweepEngine::run_batch`], which simulates them in parallel and
//! memoizes the reports; the experiment text is then rendered serially
//! in argument order, so the output is byte-identical for any thread
//! count (including 1).

use std::collections::{BTreeMap, HashSet};
use std::path::PathBuf;
use std::str::FromStr;

use ule_bench::diff::{diff_metrics, DiffThresholds};
use ule_bench::{metrics_out, ConfigKey, ExperimentId, Job, SweepEngine};
use ule_core::attr::{self, FlameWeight};
use ule_core::{RunOptions, System, SystemConfig, Workload};
use ule_obs::trace_events::TraceEventsBuf;
use ule_swlib::builder::Arch;

/// Per-thread flight-recorder ring size for CLI runs: large enough
/// that a full `repro all` keeps every harness-level span (jobs, sim
/// runs) for the merged trace export, still bounded.
const FLIGHT_CAPACITY: usize = 4096;

/// Observability switches shared by the simulating subcommands, parsed
/// from the global (pre-subcommand) options.
struct ObsOptions {
    /// `--trace PATH`: stream every event to a JSONL file (chained
    /// behind the flight recorder).
    trace: Option<PathBuf>,
    /// `--flight-dump PATH`: where panic/cycle-limit post-mortems go.
    flight_dump: PathBuf,
    /// `--progress`/`--no-progress`; `None` = autodetect from stderr.
    progress: Option<bool>,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            trace: None,
            flight_dump: PathBuf::from("flight_dump.jsonl"),
            progress: None,
        }
    }
}

impl ObsOptions {
    /// Installs the flight recorder (chaining the `--trace` sink when
    /// requested) and arms post-mortem dumping. Called once by every
    /// simulating subcommand before the first run.
    fn install(&self) {
        let inner: Option<Box<dyn ule_obs::EventSink>> = match &self.trace {
            Some(path) => match ule_obs::JsonlFileSink::create(path) {
                Ok(sink) => Some(Box::new(sink)),
                Err(e) => {
                    eprintln!("cannot open trace file {}: {e}", path.display());
                    std::process::exit(2);
                }
            },
            None => None,
        };
        ule_obs::flight::install(FLIGHT_CAPACITY, inner);
        ule_obs::flight::arm_auto_dump(self.flight_dump.clone());
    }

    /// Whether to run the live progress reporter: explicit flag wins,
    /// otherwise on iff stderr is a terminal.
    fn progress_on(&self) -> bool {
        self.progress
            .unwrap_or_else(ule_obs::progress::stderr_is_tty)
    }
}

fn print_help() {
    println!("usage: repro [options] <experiment-id>... | all");
    println!("       repro verify [verify-options]");
    println!("       repro diff OLD.jsonl NEW.jsonl [--max-cycles-pct X] [--max-energy-pct X]");
    println!("       repro profile [profile-options]");
    println!("       repro explore [explore-options]");
    println!("       repro serve [serve-options]");
    println!("       repro check [--flame PATH] [--trace-events PATH] [--journal PATH]");
    println!("                   [--flight-dump PATH] [--serve PATH [--serve-min-gain G]]");
    println!("                   [--sla PATH [--max-p99 CYCLES]]");
    println!("       repro overhead [overhead-options]");
    println!("       repro selftest-flight    (panics on purpose; the armed flight");
    println!("                                recorder must dump first — CI self-test)");
    println!();
    println!("options:");
    println!("  --list              list experiment ids and exit");
    println!("  --threads N         batch fan-out width (positive integer)");
    println!("  --format text|json  text tables (default) or flat JSONL metrics records");
    println!("  --metrics-out PATH  write one JSONL metrics record per design point");
    println!("                      plus an engine summary (memo hits, per-job wall-clock)");
    println!("  --trace PATH        write structured trace events (JSONL) to PATH");
    println!("  --flight-dump PATH  post-mortem destination for the always-on flight");
    println!("                      recorder (default flight_dump.jsonl): the last");
    println!("                      events per thread are written there on panic or");
    println!("                      when a simulation hits its cycle budget");
    println!("  --progress          print live heartbeat lines (jobs done/total, memo");
    println!("                      hits, slowest in-flight job, ETA) to stderr;");
    println!("                      default: on iff stderr is a terminal");
    println!("  --no-progress       force the heartbeat off");
    println!("  --profile           attach the per-routine cycle profiler to every");
    println!("                      simulation (adds a `profile` field to metrics records)");
    println!("  --flame PATH        with --profile: write the call-graph of every profiled");
    println!("                      design point as collapsed flamegraph stacks (label-");
    println!("                      prefixed, aggregated into one file)");
    println!("  --flame-weight W    stack weight: `cycles` (default) or `nj` (attributed");
    println!("                      energy, nanojoules)");
    println!("  --trace-events PATH write Chrome trace-event JSON: a harness process");
    println!("                      (SweepEngine batches/jobs/sim runs) plus, with");
    println!("                      --profile, one synthetic process per design point");
    println!("                      (load in Perfetto)");
    println!("  -h, --help          show this help");
    println!();
    println!("environment:");
    println!("  ULE_SWEEP_THREADS   default fan-out width when --threads is absent; must be");
    println!("                      a positive integer (anything else warns once and falls");
    println!("                      back to std::thread::available_parallelism)");
    println!();
    println!("verify-options (differential verification campaign):");
    println!("  --seed S            campaign seed: hex, decimal, or any token");
    println!("                      (hashed deterministically; default 0xULE)");
    println!("  --iters N           random cases per curve before cost tiering");
    println!("                      (default 16; big fields run fewer)");
    println!("  --curve NAME        restrict to one curve (repeatable)");
    println!("  --config LABEL      restrict to one configuration: baseline,");
    println!("                      baseline+ic, isa-ext, isa-ext+ic, monte/billie");
    println!("  --case LABEL        replay one case: random:N, edge:NAME, negative:N");
    println!("  --no-edge           skip the adversarial edge corpus");
    println!("  --no-negative      skip bit-flip negative tests");
    println!("  --inject-fault      corrupt one RAM limb in the first simulated");
    println!("                      verification (harness self-test: the campaign");
    println!("                      must catch and shrink it)");
    println!("  --batch-oracle      host-only differential oracle: random batches");
    println!("                      through verify_batch_prehashed vs per-signature");
    println!("                      verify_prehashed; divergences are shrunk to a");
    println!("                      one-line reproducer (exit 1 on any divergence)");
    println!("  --batch-cases N     oracle batches per curve (default 24)");
    println!("  --max-batch N       largest random batch size (default 20)");
    println!("  --batch-case K      replay exactly one oracle batch (reproducer)");
    println!();
    println!("profile-options (single-point per-routine energy attribution):");
    println!("  --curve NAME        curve (default P-256)");
    println!("  --arch A            baseline | isa_ext | monte | billie (default isa_ext)");
    println!("  --workload W        sign | verify | sign_verify | scalar_mul | field_mul |");
    println!("                      xdh | handshake (default sign; xdh/handshake need an");
    println!("                      RFC 7748 curve: X25519 or X448)");
    println!("  --tier T            reference (default): exact per-instruction profiler");
    println!("                      with full call graph; fast: sampled profiler on the");
    println!("                      fast engine (exact totals, approximate per-routine");
    println!("                      split, no call graph)");
    println!("  --top N             table rows before aggregation (default 20, 0 = all)");
    println!("  --flame PATH        also write collapsed flamegraph stacks (reference");
    println!("                      tier only: the sampled profiler has no call graph)");
    println!("  --flame-weight W    `cycles` (default) or `nj`");
    println!("  --trace-events PATH also write Chrome trace-event JSON (reference tier");
    println!("                      only)");
    println!();
    println!("serve-options (batched signing/verification service model):");
    println!("  --curve NAME        curve to serve (repeatable; default P-256 and K-163)");
    println!("  --batch-size N      verification batch size (repeatable; default 1 4 16;");
    println!("                      the batch-size-1 reference is always included)");
    println!("  --shards N          worker shards, one keypair each (default 4)");
    println!("  --requests N        total requests across shards (default 256)");
    println!("  --seed S            traffic + RLC seed: hex, decimal, or any token");
    println!("                      (hashed deterministically; default 0xULE)");
    println!("  --arch A            arch whose simulated verify cost anchors the energy");
    println!("                      projection in serve_point records (default isa_ext);");
    println!("                      the serve_frontier always spans the family's archs");
    println!("  --arrival-rate R    offered load in units of single-verify service time:");
    println!("                      the mean inter-arrival gap on the virtual clock is");
    println!("                      cycles_per_verify / R (default 0.25 — un-congested,");
    println!("                      so latencies are shard-count-invariant; R > shard");
    println!("                      count saturates the fleet and grows the p99 tail)");
    println!("  --metrics-out PATH  write serve_point/serve_summary/serve_frontier JSONL");
    println!("                      (validate with `repro check --serve PATH`); a gain");
    println!("                      summary line is appended to BENCH_history.jsonl");
    println!("                      next to PATH either way");
    println!("  --sla-out PATH      write serve_latency (fleet + per-shard mergeable");
    println!("                      latency histograms) and sla_summary (p99 x energy,");
    println!("                      queue depth, utilization) JSONL — fully virtual-time,");
    println!("                      byte-identical across reruns and worker degradation;");
    println!("                      validate with `repro check --sla PATH`");
    println!("  --trace-events PATH write the virtual request timeline as Chrome trace-");
    println!("                      event JSON: one process per (curve, batch size) run,");
    println!("                      one track per shard, one slice per executed batch");
    println!("                      (args: queued requests, service/wait cycles; 1 cycle");
    println!("                      rendered as 1 us — load in Perfetto)");
    println!();
    println!("overhead-options (sampled-profiler wall-clock A/B against an identically");
    println!("                  allocated never-firing ballast sampler; hard-gated in CI):");
    println!("  --curve NAME        curve (default K-163)");
    println!("  --arch A            baseline | isa_ext | monte | billie (default baseline)");
    println!("  --workload W        workload (default sign)");
    println!("  --runs N            timed runs per mode, best-of (default 3)");
    println!("  --max-pct P         failure threshold, percent (default 5)");
    println!();
    println!("explore-options (design-space exploration with Pareto extraction):");
    println!(
        "  --space S           built-in space ({}) or",
        ule_dse::spaces::BUILTIN_NAMES.join("|")
    );
    println!("                      a path to a JSON space file (see DESIGN.md \u{a7}12)");
    println!("  --strategy grid|greedy");
    println!("                      exhaustive grid (default) or frontier-guided pruner");
    println!("  --seed S            schedule seed for greedy: hex, decimal, or any");
    println!("                      token (hashed deterministically; default 0xULE)");
    println!("  --out PATH          resumable JSONL journal: design_point lines are");
    println!("                      appended as points finish, frontier + dse_summary");
    println!("                      records close the file; an existing journal at PATH");
    println!("                      is resumed without re-simulating matching points");
    println!("  --threads N         batch fan-out width (positive integer)");
    println!("  --report            print the frontier table of the journal at --out");
    println!("                      (no exploration; references are simulated on demand)");
    println!();
    println!("diff exit codes: 0 no drift, 1 drift or removed points, 2 usage/parse error");
    println!();
    println!("ids: {}", id_list());
}

fn parse_arch(s: &str) -> Option<Arch> {
    match s {
        "baseline" => Some(Arch::Baseline),
        "isa_ext" | "isa-ext" => Some(Arch::IsaExt),
        "monte" => Some(Arch::Monte),
        "billie" => Some(Arch::Billie),
        _ => None,
    }
}

fn parse_workload(s: &str) -> Option<Workload> {
    match s {
        "sign" => Some(Workload::Sign),
        "verify" => Some(Workload::Verify),
        "sign_verify" | "sign-verify" => Some(Workload::SignVerify),
        "scalar_mul" | "scalar-mul" => Some(Workload::ScalarMul),
        "field_mul" | "field-mul" => Some(Workload::FieldMul),
        "xdh" => Some(Workload::Xdh),
        "handshake" => Some(Workload::Handshake),
        _ => None,
    }
}

fn parse_flame_weight(s: &str) -> Option<FlameWeight> {
    match s {
        "cycles" => Some(FlameWeight::Cycles),
        "nj" | "nanojoules" => Some(FlameWeight::NanoJoules),
        _ => None,
    }
}

fn write_or_die(path: &std::path::Path, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {what} to {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote {what} to {}", path.display());
}

/// `repro diff OLD NEW`: compare two metrics JSONL files on the
/// deterministic headline metrics. Exit 0 clean, 1 drift, 2 usage.
fn run_diff(args: impl Iterator<Item = String>) -> ! {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut thresholds = DiffThresholds::default();
    let args_v: Vec<String> = args.collect();
    let mut i = 0;
    while i < args_v.len() {
        let pct = |i: &mut usize, flag: &str| -> f64 {
            *i += 1;
            args_v
                .get(*i)
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|p| p.is_finite() && *p >= 0.0)
                .unwrap_or_else(|| {
                    eprintln!("{flag} expects a non-negative percentage");
                    std::process::exit(2);
                })
        };
        match args_v[i].as_str() {
            "--max-cycles-pct" => {
                thresholds.max_cycles_frac = pct(&mut i, "--max-cycles-pct") / 100.0
            }
            "--max-energy-pct" => {
                thresholds.max_energy_frac = pct(&mut i, "--max-energy-pct") / 100.0
            }
            other if other.starts_with('-') => {
                eprintln!("unknown diff option {other:?}");
                std::process::exit(2);
            }
            p => paths.push(PathBuf::from(p)),
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!(
            "usage: repro diff OLD.jsonl NEW.jsonl [--max-cycles-pct X] [--max-energy-pct X]"
        );
        std::process::exit(2);
    }
    let new_path = paths.pop().unwrap();
    let old_path = paths.pop().unwrap();
    let read = |p: &PathBuf| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", p.display());
            std::process::exit(2);
        })
    };
    let (old_text, new_text) = (read(&old_path), read(&new_path));
    let report = diff_metrics(
        &old_path.display().to_string(),
        &old_text,
        &new_path.display().to_string(),
        &new_text,
        thresholds,
    )
    .unwrap_or_else(|e| {
        eprintln!("diff: {e}");
        std::process::exit(2);
    });
    print!("{report}");
    std::process::exit(report.exit_code());
}

/// `repro check`: validate exported observability files (folded stacks
/// and/or trace-event JSON) the way a consumer would. Exit 0 valid,
/// 1 invalid, 2 usage.
fn run_check(args: impl Iterator<Item = String>) -> ! {
    let mut flame: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut flight_dump: Option<PathBuf> = None;
    let mut serve: Option<PathBuf> = None;
    let mut serve_min_gain: Option<f64> = None;
    let mut sla: Option<PathBuf> = None;
    let mut max_p99: Option<u64> = None;
    let args_v: Vec<String> = args.collect();
    let mut i = 0;
    while i < args_v.len() {
        let take = |i: &mut usize, flag: &str| -> PathBuf {
            *i += 1;
            args_v.get(*i).map(PathBuf::from).unwrap_or_else(|| {
                eprintln!("{flag} expects a path");
                std::process::exit(2);
            })
        };
        match args_v[i].as_str() {
            "--flame" => flame = Some(take(&mut i, "--flame")),
            "--trace-events" => trace = Some(take(&mut i, "--trace-events")),
            "--journal" => journal = Some(take(&mut i, "--journal")),
            "--flight-dump" => flight_dump = Some(take(&mut i, "--flight-dump")),
            "--serve" => serve = Some(take(&mut i, "--serve")),
            "--sla" => sla = Some(take(&mut i, "--sla")),
            "--max-p99" => {
                i += 1;
                let v = args_v.get(i).cloned().unwrap_or_default();
                max_p99 = Some(v.parse::<u64>().ok().filter(|c| *c > 0).unwrap_or_else(|| {
                    eprintln!("--max-p99 expects a positive cycle count");
                    std::process::exit(2);
                }));
            }
            "--serve-min-gain" => {
                i += 1;
                let v = args_v.get(i).cloned().unwrap_or_default();
                serve_min_gain = Some(v.parse::<f64>().ok().filter(|g| *g >= 1.0).unwrap_or_else(
                    || {
                        eprintln!("--serve-min-gain expects a number >= 1");
                        std::process::exit(2);
                    },
                ));
            }
            other => {
                eprintln!("unknown check option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if flame.is_none()
        && trace.is_none()
        && journal.is_none()
        && flight_dump.is_none()
        && serve.is_none()
        && sla.is_none()
    {
        eprintln!(
            "usage: repro check [--flame PATH] [--trace-events PATH] [--journal PATH] \
             [--flight-dump PATH] [--serve PATH [--serve-min-gain G]] \
             [--sla PATH [--max-p99 CYCLES]]"
        );
        std::process::exit(2);
    }
    let read = |p: &PathBuf| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", p.display());
            std::process::exit(2);
        })
    };
    let mut failed = false;
    if let Some(p) = &flame {
        match ule_obs::flame::parse_folded(&read(p)) {
            Ok(stacks) => {
                let total: u64 = stacks.iter().map(|(_, w)| w).sum();
                println!(
                    "{}: {} stacks, total weight {}",
                    p.display(),
                    stacks.len(),
                    total
                );
            }
            Err(e) => {
                eprintln!("{}: INVALID folded stacks: {e}", p.display());
                failed = true;
            }
        }
    }
    if let Some(p) = &trace {
        match ule_obs::trace_events::validate_trace_events(&read(p)) {
            Ok(stats) => println!(
                "{}: {} events ({} complete, {} metadata)",
                p.display(),
                stats.events,
                stats.complete_events,
                stats.metadata_events
            ),
            Err(e) => {
                eprintln!("{}: INVALID trace events: {e}", p.display());
                failed = true;
            }
        }
    }
    if let Some(p) = &journal {
        match ule_dse::journal::validate_journal(&read(p)) {
            Ok(stats) => {
                print!(
                    "{}: {} design points, {} frontier points, {} summary",
                    p.display(),
                    stats.design_points,
                    stats.frontier_points,
                    stats.summaries
                );
                if stats.unknown > 0 {
                    print!(", {} unknown-kind lines skipped", stats.unknown);
                }
                println!();
            }
            Err(e) => {
                eprintln!("{}: INVALID explorer journal: {e}", p.display());
                failed = true;
            }
        }
    }
    if let Some(p) = &serve {
        match ule_serve::metrics::validate_serve(&read(p), serve_min_gain) {
            Ok(stats) => {
                print!(
                    "{}: {} serve points, {} summaries, {} frontier points, 0 mismatches",
                    p.display(),
                    stats.points,
                    stats.summaries,
                    stats.frontier
                );
                if stats.min_gain_ops.is_finite() {
                    print!(", min batching gain {:.2}x", stats.min_gain_ops);
                }
                println!();
            }
            Err(e) => {
                eprintln!("{}: INVALID serve journal: {e}", p.display());
                failed = true;
            }
        }
    }
    if let Some(p) = &sla {
        match ule_serve::metrics::validate_sla(&read(p), max_p99) {
            Ok(stats) => println!(
                "{}: {} runs, {} latency records, {} SLA summaries, worst p99 {} cycles",
                p.display(),
                stats.runs,
                stats.latency_records,
                stats.summaries,
                stats.max_p99
            ),
            Err(e) => {
                eprintln!("{}: INVALID SLA journal: {e}", p.display());
                failed = true;
            }
        }
    }
    if let Some(p) = &flight_dump {
        match ule_obs::flight::validate_dump(&read(p)) {
            Ok(stats) => println!(
                "{}: {} threads, {} events, {} dropped{}",
                p.display(),
                stats.threads,
                stats.events,
                stats.dropped,
                if stats.wrapped { " (wrapped)" } else { "" }
            ),
            Err(e) => {
                eprintln!("{}: INVALID flight dump: {e}", p.display());
                failed = true;
            }
        }
    }
    std::process::exit(i32::from(failed));
}

/// `repro profile`: simulate one design point with a profiler attached
/// and print the per-routine energy attribution table. The reference
/// tier attaches the exact per-instruction profiler (full call graph);
/// `--tier fast` attaches the sampled profiler and runs on the fast
/// engine (exact totals, stride-bounded per-routine split, no call
/// graph).
fn run_profile(args: impl Iterator<Item = String>, obs: ObsOptions) -> ! {
    let mut curve = ule_curves::params::CurveId::P256;
    let mut arch = Arch::IsaExt;
    let mut workload = Workload::Sign;
    let mut fast_tier = false;
    let mut top = 20usize;
    let mut flame: Option<PathBuf> = None;
    let mut flame_weight = FlameWeight::Cycles;
    let mut trace: Option<PathBuf> = None;
    let args_v: Vec<String> = args.collect();
    let mut i = 0;
    while i < args_v.len() {
        let take = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            args_v.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("{flag} expects a value");
                std::process::exit(2);
            })
        };
        match args_v[i].as_str() {
            "--curve" => {
                let v = take(&mut i, "--curve");
                curve = ule_verify::parse_curve(&v).unwrap_or_else(|| {
                    eprintln!("unknown curve {v:?}");
                    std::process::exit(2);
                });
            }
            "--arch" => {
                let v = take(&mut i, "--arch");
                arch = parse_arch(&v).unwrap_or_else(|| {
                    eprintln!("unknown arch {v:?} (baseline|isa_ext|monte|billie)");
                    std::process::exit(2);
                });
            }
            "--workload" => {
                let v = take(&mut i, "--workload");
                workload = parse_workload(&v).unwrap_or_else(|| {
                    eprintln!("unknown workload {v:?}");
                    std::process::exit(2);
                });
            }
            "--tier" => {
                let v = take(&mut i, "--tier");
                fast_tier = match v.as_str() {
                    "fast" => true,
                    "reference" => false,
                    _ => {
                        eprintln!("--tier expects `fast` or `reference`, got {v:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--top" => {
                let v = take(&mut i, "--top");
                top = v.parse().unwrap_or_else(|_| {
                    eprintln!("--top expects a non-negative integer");
                    std::process::exit(2);
                });
            }
            "--flame" => flame = Some(PathBuf::from(take(&mut i, "--flame"))),
            "--flame-weight" => {
                let v = take(&mut i, "--flame-weight");
                flame_weight = parse_flame_weight(&v).unwrap_or_else(|| {
                    eprintln!("--flame-weight expects `cycles` or `nj`");
                    std::process::exit(2);
                });
            }
            "--trace-events" => trace = Some(PathBuf::from(take(&mut i, "--trace-events"))),
            other => {
                eprintln!("unknown profile option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if fast_tier && (flame.is_some() || trace.is_some()) {
        eprintln!(
            "--flame/--trace-events need the call graph, which the sampled profiler \
             does not build; drop --tier fast (or the export flags)"
        );
        std::process::exit(2);
    }
    if let Err(e) = ule_core::validate_workload(curve, arch, workload) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    obs.install();
    let config = SystemConfig::new(curve, arch);
    let label = ConfigKey::new(config, workload).label();
    let opts = if fast_tier {
        RunOptions::new(workload).sampled()
    } else {
        RunOptions::new(workload).profiled()
    };
    let started = std::time::Instant::now();
    let report = System::new(config).run_with(opts);
    let wall = started.elapsed();
    let p = report.profile.as_ref().expect("profiled run sets profile");
    if fast_tier {
        println!(
            "{label}: {} cycles, {:.4} uJ, {} routines (sampled, fast engine)",
            report.cycles,
            report.energy.total_uj(),
            p.routines.len(),
        );
    } else {
        println!(
            "{label}: {} cycles, {:.4} uJ, {} routines, {} call paths",
            report.cycles,
            report.energy.total_uj(),
            p.routines.len(),
            p.calls.nodes.len()
        );
    }
    println!();
    print!("{}", attr::routine_energy_table(p, &report.energy, top));
    // Wall-clock on stderr (stdout stays deterministic): the CI tier
    // A/B compares this across `--tier fast` and `--tier reference`.
    eprintln!("profile wall-clock: {} ms", wall.as_millis());
    if let Some(path) = &flame {
        let stacks = attr::folded_stacks(p, &report.energy, flame_weight, &label);
        write_or_die(path, &ule_obs::flame::to_folded(&stacks), "folded stacks");
    }
    if let Some(path) = &trace {
        let mut buf = TraceEventsBuf::new();
        attr::trace_events_into(&mut buf, 1, &label, p);
        write_or_die(path, &buf.finish(), "trace events");
    }
    std::process::exit(0);
}

/// `repro overhead`: A/B the sampled profiler's wall-clock cost against
/// a *ballast* run of the same point — a sampler configured with a
/// stride so large it never fires. Both arms therefore allocate the
/// identical profiler machinery (same heap layout, same code paths up
/// to the stride check), so the measured delta is the marginal cost of
/// samples actually firing, not allocator noise. This is what lets CI
/// hold the hard ≤5% gate: the old uninstrumented baseline differed in
/// allocation layout and showed a spurious ~6% floor. Exits 1 when the
/// overhead exceeds the threshold.
fn run_overhead(args: impl Iterator<Item = String>) -> ! {
    let mut curve = ule_curves::params::CurveId::K163;
    let mut arch = Arch::Baseline;
    let mut workload = Workload::Sign;
    let mut runs = 3usize;
    let mut max_pct = 5.0f64;
    let args_v: Vec<String> = args.collect();
    let mut i = 0;
    while i < args_v.len() {
        let take = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            args_v.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("{flag} expects a value");
                std::process::exit(2);
            })
        };
        match args_v[i].as_str() {
            "--curve" => {
                let v = take(&mut i, "--curve");
                curve = ule_verify::parse_curve(&v).unwrap_or_else(|| {
                    eprintln!("unknown curve {v:?}");
                    std::process::exit(2);
                });
            }
            "--arch" => {
                let v = take(&mut i, "--arch");
                arch = parse_arch(&v).unwrap_or_else(|| {
                    eprintln!("unknown arch {v:?} (baseline|isa_ext|monte|billie)");
                    std::process::exit(2);
                });
            }
            "--workload" => {
                let v = take(&mut i, "--workload");
                workload = parse_workload(&v).unwrap_or_else(|| {
                    eprintln!("unknown workload {v:?}");
                    std::process::exit(2);
                });
            }
            "--runs" => {
                let v = take(&mut i, "--runs");
                runs = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--runs expects a positive integer");
                        std::process::exit(2);
                    });
            }
            "--max-pct" => {
                let v = take(&mut i, "--max-pct");
                max_pct = v
                    .parse::<f64>()
                    .ok()
                    .filter(|p| p.is_finite() && *p >= 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--max-pct expects a non-negative number");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("unknown overhead option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if let Err(e) = ule_core::validate_workload(curve, arch, workload) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let config = SystemConfig::new(curve, arch);
    let label = ConfigKey::new(config, workload).label();
    let system = System::new(config);
    // One untimed warm-up per mode (first-touch effects), then the
    // timed runs interleaved so drift hits both modes equally.
    let time = |opts: &RunOptions| {
        let t0 = std::time::Instant::now();
        let report = system.run_with(*opts);
        (t0.elapsed(), report)
    };
    // The baseline arm carries the same sampler machinery with a
    // stride (2^40) no fast-tier run ever reaches, so the only
    // difference between the arms is samples firing.
    let plain = RunOptions::new(workload).sampled_with_stride(1 << 40);
    let sampled = RunOptions::new(workload).sampled();
    let (_, base_report) = time(&plain);
    let (_, sampled_report) = time(&sampled);
    assert_eq!(
        base_report.cycles, sampled_report.cycles,
        "sampling must not change simulated cycles"
    );
    let mut best_plain = std::time::Duration::MAX;
    let mut best_sampled = std::time::Duration::MAX;
    for _ in 0..runs {
        best_plain = best_plain.min(time(&plain).0);
        best_sampled = best_sampled.min(time(&sampled).0);
    }
    let pct = (best_sampled.as_secs_f64() / best_plain.as_secs_f64() - 1.0) * 100.0;
    println!(
        "{label}: ballast fast tier {} us, sampled {} us, overhead {pct:+.2}% \
         (threshold {max_pct}%, best of {runs})",
        best_plain.as_micros(),
        best_sampled.as_micros(),
    );
    std::process::exit(i32::from(pct > max_pct));
}

/// `repro serve`: the batched signing/verification service model.
/// Generates seeded traffic per curve, replays it on the virtual clock
/// through the sharded `ule-serve` engine at every requested batch
/// size, projects energy per request from simulated per-verification
/// costs, and emits `serve_point`/`serve_summary`/`serve_frontier`
/// records plus — behind `--sla-out` — `serve_latency`/`sla_summary`
/// latency records (schema v5). Exit 1 iff any batch verdict disagreed
/// with `verify_prehashed`.
fn run_serve(args: impl Iterator<Item = String>, obs: ObsOptions) -> ! {
    let mut curves: Vec<ule_curves::params::CurveId> = Vec::new();
    let mut batch_sizes: Vec<usize> = Vec::new();
    let mut shards = 4usize;
    let mut requests = 256usize;
    let mut seed = ule_verify::parse_seed("0xULE");
    let mut arch = Arch::IsaExt;
    let mut arrival_rate = 0.25f64;
    let mut metrics_path: Option<PathBuf> = None;
    let mut sla_path: Option<PathBuf> = None;
    let mut trace_events_path: Option<PathBuf> = None;
    let args_v: Vec<String> = args.collect();
    let mut i = 0;
    while i < args_v.len() {
        let take = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            args_v.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("{flag} expects a value");
                std::process::exit(2);
            })
        };
        match args_v[i].as_str() {
            "--curve" => {
                let v = take(&mut i, "--curve");
                match ule_verify::parse_curve(&v) {
                    Some(c) if !c.is_mont() => curves.push(c),
                    Some(_) => {
                        eprintln!("serve is an ECDSA service model; {v} carries no signatures");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("unknown curve {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--batch-size" => {
                let v = take(&mut i, "--batch-size");
                match v.parse::<usize>().ok().filter(|&b| b > 0) {
                    Some(b) => batch_sizes.push(b),
                    None => {
                        eprintln!("--batch-size expects a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--shards" => {
                let v = take(&mut i, "--shards");
                shards = v
                    .parse()
                    .ok()
                    .filter(|&s: &usize| s > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--shards expects a positive integer");
                        std::process::exit(2);
                    });
            }
            "--requests" => {
                let v = take(&mut i, "--requests");
                requests = v
                    .parse()
                    .ok()
                    .filter(|&r: &usize| r > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--requests expects a positive integer");
                        std::process::exit(2);
                    });
            }
            "--seed" => seed = ule_verify::parse_seed(&take(&mut i, "--seed")),
            "--arch" => {
                let v = take(&mut i, "--arch");
                arch = parse_arch(&v).unwrap_or_else(|| {
                    eprintln!("unknown arch {v:?} (baseline|isa_ext|monte|billie)");
                    std::process::exit(2);
                });
            }
            "--arrival-rate" => {
                let v = take(&mut i, "--arrival-rate");
                arrival_rate = v
                    .parse::<f64>()
                    .ok()
                    .filter(|r| r.is_finite() && *r > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--arrival-rate expects a positive number");
                        std::process::exit(2);
                    });
            }
            "--metrics-out" => metrics_path = Some(PathBuf::from(take(&mut i, "--metrics-out"))),
            "--sla-out" => sla_path = Some(PathBuf::from(take(&mut i, "--sla-out"))),
            "--trace-events" => {
                trace_events_path = Some(PathBuf::from(take(&mut i, "--trace-events")))
            }
            other => {
                eprintln!("unknown serve option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if curves.is_empty() {
        curves = vec![
            ule_curves::params::CurveId::P256,
            ule_curves::params::CurveId::K163,
        ];
    }
    if batch_sizes.is_empty() {
        batch_sizes = vec![1, 4, 16];
    }
    batch_sizes.sort_unstable();
    batch_sizes.dedup();
    if batch_sizes[0] != 1 {
        // The batch-size-1 reference anchors op_scale and the gains.
        batch_sizes.insert(0, 1);
    }
    obs.install();
    if obs.progress_on() {
        ule_obs::progress::start("repro serve");
    }
    let engine = SweepEngine::new();
    let arch_label = |a: Arch| match a {
        Arch::Baseline => "baseline",
        Arch::IsaExt => "isa_ext",
        Arch::Monte => "monte",
        Arch::Billie => "billie",
    };
    // Per-verification simulated costs for the energy projection: the
    // valid accelerator set differs by family (Monte fronts the prime
    // datapath, Billie the binary one).
    let sim_costs =
        |curve: ule_curves::params::CurveId, archs: &[Arch]| -> Vec<ule_serve::metrics::SimCosts> {
            let jobs: Vec<Job> = archs
                .iter()
                .map(|&a| (SystemConfig::new(curve, a), Workload::Verify))
                .collect();
            let reports = engine.run_batch(&jobs);
            archs
                .iter()
                .zip(&reports)
                .map(|(&a, r)| ule_serve::metrics::SimCosts {
                    arch: arch_label(a).to_owned(),
                    cycles: r.cycles,
                    energy_uj: r.energy.total_uj(),
                    area_kge: ule_core::space::area_kge(&SystemConfig::new(curve, a)),
                })
                .collect()
        };
    let mut registry = ule_obs::record::MetricsRegistry::new();
    let mut sla_registry = ule_obs::record::MetricsRegistry::new();
    let mut trace_buf = ule_obs::trace_events::TraceEventsBuf::new();
    let mut trace_pid = 0u64;
    let mut mismatches_total = 0usize;
    let mut history_gains: Vec<String> = Vec::new();
    for &curve in &curves {
        let family_archs: &[Arch] = if curve.is_binary() {
            &[Arch::Baseline, Arch::IsaExt, Arch::Billie]
        } else {
            &[Arch::Baseline, Arch::IsaExt, Arch::Monte]
        };
        if !family_archs.contains(&arch) {
            eprintln!(
                "arch {} is not valid on {} (family accelerator mismatch)",
                arch_label(arch),
                curve.name()
            );
            std::process::exit(2);
        }
        let costs = sim_costs(curve, family_archs);
        let point_costs = costs
            .iter()
            .find(|c| c.arch == arch_label(arch))
            .expect("requested arch simulated")
            .clone();
        println!(
            "{}: {requests} requests, {shards} shards, seed {seed:#x}, arch {}",
            curve.name(),
            arch_label(arch)
        );
        let mut runs: Vec<(ule_serve::ServeOutcome, f64)> = Vec::new();
        for &batch in &batch_sizes {
            let cfg = ule_serve::ServeConfig {
                curve,
                requests,
                batch_size: batch,
                shards,
                seed,
                arrival_rate,
                // The virtual clock is anchored to the requested arch's
                // simulated per-verification cycle cost.
                cycles_per_verify: point_costs.cycles,
            };
            let outcome = ule_serve::run_service(&cfg);
            let scale = ule_serve::metrics::op_scale(
                &outcome,
                runs.first().map(|(o, _)| o).unwrap_or(&outcome),
            );
            mismatches_total += outcome.mismatches;
            println!(
                "  batch {batch:>3}: {:>9.1} sig/s, op_scale {scale:.3}, rlc {}/{} batches, \
                 {:.2} uJ/Mreq, p99 {} cycles",
                outcome.signatures_per_sec(),
                outcome.rlc_batches,
                outcome.batches,
                ule_serve::metrics::energy_uj_per_million_requests(&point_costs, scale),
                outcome.telemetry.fleet_hist.percentile(99.0),
            );
            registry.push(ule_serve::metrics::serve_point_record(
                &outcome,
                scale,
                &point_costs,
            ));
            for record in ule_serve::metrics::serve_latency_records(&outcome) {
                sla_registry.push(record);
            }
            sla_registry.push(ule_serve::metrics::sla_summary_record(
                &outcome,
                scale,
                &point_costs,
            ));
            if trace_events_path.is_some() {
                // One Perfetto process per (curve, batch size) run, one
                // track per shard, one slice per executed batch; 1
                // virtual cycle rendered as 1 µs. The per-slice
                // `queued` args sum to the run's request count.
                trace_pid += 1;
                trace_buf.process_name(trace_pid, &format!("serve {} batch {batch}", curve.name()));
                for s in 0..shards {
                    trace_buf.thread_name(trace_pid, s as u64 + 1, &format!("shard {s}"));
                }
                for t in &outcome.telemetry.traces {
                    trace_buf.complete(
                        trace_pid,
                        t.shard as u64 + 1,
                        &format!("batch {}", t.index),
                        t.start_cycles as f64,
                        t.service_cycles as f64,
                        &[
                            ("queued", t.items as u64),
                            ("service_cycles", t.service_cycles),
                            ("wait_cycles", t.start_cycles - t.ready_cycles),
                        ],
                    );
                }
            }
            runs.push((outcome, scale));
        }
        let summary = ule_serve::metrics::serve_summary_record(&runs);
        let gain_ops = summary.get("gain_ops").and_then(|v| match v {
            ule_obs::Value::F64(g) => Some(*g),
            _ => None,
        });
        let gain_sps = summary.get("gain_sps").and_then(|v| match v {
            ule_obs::Value::F64(g) => Some(*g),
            _ => None,
        });
        println!(
            "  batch {} vs 1: {:.2}x sig/s, {:.2}x fewer host ops",
            batch_sizes.last().unwrap(),
            gain_sps.unwrap_or(0.0),
            gain_ops.unwrap_or(0.0),
        );
        // p99 of the largest-batch run: the latency the gain is
        // bought at (absent in pre-v5 history lines).
        let p99 = runs
            .last()
            .map(|(o, _)| o.telemetry.fleet_hist.percentile(99.0))
            .unwrap_or(0);
        history_gains.push(format!(
            "{{\"curve\":\"{}\",\"gain_sps\":{:.4},\"gain_ops\":{:.4},\"p99_latency_cycles\":{p99}}}",
            curve.name(),
            gain_sps.unwrap_or(0.0),
            gain_ops.unwrap_or(0.0)
        ));
        registry.push(summary);
        let (_, frontier) = ule_serve::metrics::frontier_records(&costs, &runs);
        for record in frontier {
            registry.push(record);
        }
    }
    ule_obs::progress::finish();
    if let Some(path) = &metrics_path {
        write_or_die(path, &registry.to_jsonl(), "serve metrics");
    }
    if let Some(path) = &sla_path {
        // Every field in the SLA journal is virtual-time: the file is
        // byte-identical across reruns (CI pins this with `cmp`).
        write_or_die(path, &sla_registry.to_jsonl(), "SLA records");
    }
    if let Some(path) = &trace_events_path {
        write_or_die(path, &trace_buf.finish(), "serve trace events");
    }
    // One-line gain summary appended to BENCH_history.jsonl (next to
    // --metrics-out when given): the batching-gain trajectory across
    // PRs, mirroring the bench sweep's history line.
    let history = metrics_path
        .as_deref()
        .map(|p| p.with_file_name("BENCH_history.jsonl"))
        .unwrap_or_else(|| PathBuf::from("BENCH_history.jsonl"));
    let line = format!(
        "{{\"schema_version\":{},\"serve_requests\":{requests},\"serve_batch_max\":{},\"arrival_rate\":{arrival_rate},\"serve_gains\":[{}]}}",
        ule_obs::record::SCHEMA_VERSION,
        batch_sizes.last().unwrap(),
        history_gains.join(",")
    );
    debug_assert!(ule_obs::json::is_valid(&line));
    let append = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history)
        .and_then(|mut f| std::io::Write::write_all(&mut f, format!("{line}\n").as_bytes()));
    if let Err(e) = append {
        eprintln!("cannot append {}: {e}", history.display());
        std::process::exit(1);
    }
    if mismatches_total > 0 {
        eprintln!("serve: {mismatches_total} batch verdicts diverged from verify_prehashed");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `repro selftest-flight`: end-to-end self-test of the flight
/// recorder's panic path. Installs the recorder exactly as every other
/// subcommand does, emits a recognizable event trail, then panics
/// deliberately — the armed hook must write the dump before the
/// process dies. CI runs this expecting a nonzero exit and then
/// validates the dump with `repro check --flight-dump`.
fn run_selftest_flight(obs: &ObsOptions) -> ! {
    obs.install();
    for i in 0..8u64 {
        ule_obs::obs_event!("selftest.tick", index = i);
    }
    ule_obs::obs_event!("selftest.boom", note = "deliberate panic next");
    panic!("flight-recorder self-test: deliberate panic (the dump above is expected)");
}

/// `repro verify …`: run a differential campaign and exit. Exit code 0
/// means the campaign matched expectations (zero divergences, or — with
/// `--inject-fault` — exactly the injected fault was caught).
fn run_verify(args: impl Iterator<Item = String>, mut obs: ObsOptions) -> ! {
    let mut campaign = ule_verify::Campaign::new(ule_verify::parse_seed("0xULE"), 16);
    let mut curves: Vec<ule_curves::params::CurveId> = Vec::new();
    let mut batch_oracle = false;
    let mut batch_cases = 24usize;
    let mut max_batch = 20usize;
    let mut batch_case: Option<usize> = None;
    let args_v: Vec<String> = args.collect();
    let mut i = 0;
    let take = |i: &mut usize, args_v: &[String], flag: &str| -> String {
        *i += 1;
        match args_v.get(*i) {
            Some(v) => v.clone(),
            None => {
                eprintln!("{flag} expects a value");
                std::process::exit(2);
            }
        }
    };
    while i < args_v.len() {
        match args_v[i].as_str() {
            "--seed" => campaign.seed = ule_verify::parse_seed(&take(&mut i, &args_v, "--seed")),
            "--iters" => {
                let v = take(&mut i, &args_v, "--iters");
                campaign.iters = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--iters expects a positive integer");
                        std::process::exit(2);
                    });
            }
            "--curve" => {
                let v = take(&mut i, &args_v, "--curve");
                match ule_verify::parse_curve(&v) {
                    Some(id) => curves.push(id),
                    None => {
                        eprintln!("unknown curve {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--config" => {
                let v = take(&mut i, &args_v, "--config");
                match ule_verify::ConfigKind::parse(&v) {
                    Some(c) => campaign.only_config = Some(c),
                    None => {
                        eprintln!("unknown config {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--case" => {
                let v = take(&mut i, &args_v, "--case");
                match ule_verify::CaseSelector::parse(&v) {
                    Some(s) => campaign.only_case = Some(s),
                    None => {
                        eprintln!("bad case selector {v:?} (random:N, edge:NAME, negative:N)");
                        std::process::exit(2);
                    }
                }
            }
            "--tier" => {
                let v = take(&mut i, &args_v, "--tier");
                match ule_verify::TierPolicy::parse(&v) {
                    Some(t) => campaign.tier = t,
                    None => {
                        eprintln!("--tier expects fast, reference, or alternate");
                        std::process::exit(2);
                    }
                }
            }
            "--no-edge" => campaign.edge = false,
            "--no-negative" => campaign.negative = false,
            "--inject-fault" => campaign.inject_fault = true,
            "--batch-oracle" => batch_oracle = true,
            "--batch-cases" => {
                let v = take(&mut i, &args_v, "--batch-cases");
                batch_cases = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--batch-cases expects a positive integer");
                        std::process::exit(2);
                    });
            }
            "--max-batch" => {
                let v = take(&mut i, &args_v, "--max-batch");
                max_batch = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--max-batch expects a positive integer");
                        std::process::exit(2);
                    });
            }
            "--batch-case" => {
                let v = take(&mut i, &args_v, "--batch-case");
                batch_case = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--batch-case expects a case index");
                    std::process::exit(2);
                }));
            }
            "--progress" => obs.progress = Some(true),
            "--no-progress" => obs.progress = Some(false),
            other => {
                eprintln!("unknown verify option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if !curves.is_empty() {
        campaign.curves = curves;
    }
    obs.install();
    if batch_oracle {
        // Host-only differential campaign for the batch verifier: no
        // simulator involved, so it runs before (and independently of)
        // the sim campaign and owns the exit code when selected.
        let cfg = ule_verify::BatchOracleConfig {
            seed: campaign.seed,
            curves: campaign.curves.clone(),
            cases: batch_cases,
            max_batch,
            only_case: batch_case,
        };
        let report = ule_verify::run_batch_oracle(&cfg);
        print!("{}", report.render(&cfg));
        ule_obs::clear_sink();
        std::process::exit(if report.divergences.is_empty() { 0 } else { 1 });
    }
    if obs.progress_on() {
        ule_obs::progress::start("repro verify");
    }
    let report = ule_verify::run_campaign(&campaign);
    ule_obs::progress::finish();
    print!("{}", report.render(&campaign));
    ule_obs::clear_sink();
    if campaign.inject_fault {
        // Self-test: the deliberate corruption must be caught.
        if report.divergences.is_empty() {
            eprintln!("verify: injected fault was NOT caught");
            std::process::exit(1);
        }
        println!("verify: injected fault caught and shrunk (self-test ok)");
        std::process::exit(0);
    }
    std::process::exit(if report.divergences.is_empty() { 0 } else { 1 });
}

/// `repro explore …`: enumerate a design-space lattice, evaluate it
/// through the memoizing engine, and print the Pareto frontier. With
/// `--report`, skip exploration and render the frontier table of an
/// existing journal instead.
fn run_explore(args: impl Iterator<Item = String>, mut obs: ObsOptions) -> ! {
    let mut space_arg: Option<String> = None;
    let mut strategy_arg = String::from("grid");
    let mut seed = ule_verify::parse_seed("0xULE");
    let mut out: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut report = false;
    let args_v: Vec<String> = args.collect();
    let mut i = 0;
    let take = |i: &mut usize, args_v: &[String], flag: &str| -> String {
        *i += 1;
        match args_v.get(*i) {
            Some(v) => v.clone(),
            None => {
                eprintln!("{flag} expects a value");
                std::process::exit(2);
            }
        }
    };
    while i < args_v.len() {
        match args_v[i].as_str() {
            "--space" => space_arg = Some(take(&mut i, &args_v, "--space")),
            "--strategy" => strategy_arg = take(&mut i, &args_v, "--strategy"),
            "--seed" => seed = ule_verify::parse_seed(&take(&mut i, &args_v, "--seed")),
            "--out" => out = Some(PathBuf::from(take(&mut i, &args_v, "--out"))),
            "--threads" => {
                let v = take(&mut i, &args_v, "--threads");
                threads = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| {
                            eprintln!("--threads expects a positive integer");
                            std::process::exit(2);
                        }),
                );
            }
            "--report" => report = true,
            "--progress" => obs.progress = Some(true),
            "--no-progress" => obs.progress = Some(false),
            other => {
                eprintln!("unknown explore option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let mut engine = SweepEngine::new();
    if let Some(n) = threads {
        engine = engine.with_threads(n);
    }

    if report {
        let Some(path) = &out else {
            eprintln!("--report renders an existing journal: pass its path via --out");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(2);
        });
        let outcome = ule_dse::explore::outcome_from_journal(&text).unwrap_or_else(|e| {
            eprintln!("{}: {e}", path.display());
            std::process::exit(2);
        });
        match ule_dse::explore::render_report(&engine, &outcome) {
            Ok(table) => {
                print!("{table}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("report: {e}");
                std::process::exit(1);
            }
        }
    }

    let Some(space_str) = space_arg else {
        eprintln!(
            "explore needs --space: one of {}, or a space-file path",
            ule_dse::spaces::BUILTIN_NAMES.join(", ")
        );
        std::process::exit(2);
    };
    let space = match ule_dse::spaces::builtin(&space_str) {
        Some(s) => s,
        None => {
            let text = std::fs::read_to_string(&space_str).unwrap_or_else(|e| {
                eprintln!(
                    "--space {space_str:?} is neither a built-in ({}) nor a readable file: {e}",
                    ule_dse::spaces::BUILTIN_NAMES.join(", ")
                );
                std::process::exit(2);
            });
            ule_dse::spaces::parse_space_file(&text).unwrap_or_else(|e| {
                eprintln!("{space_str}: {e}");
                std::process::exit(2);
            })
        }
    };
    let mut strategy: Box<dyn ule_dse::Strategy> = match strategy_arg.as_str() {
        "grid" => Box::new(ule_dse::Grid::new()),
        "greedy" => Box::new(ule_dse::Greedy::new(seed)),
        other => {
            eprintln!("--strategy expects `grid` or `greedy`, got {other:?}");
            std::process::exit(2);
        }
    };
    obs.install();
    if obs.progress_on() {
        ule_obs::progress::start("repro explore");
    }
    let outcome = ule_dse::explore(&engine, &space, strategy.as_mut(), seed, out.as_deref())
        .unwrap_or_else(|e| {
            eprintln!("explore: {e}");
            std::process::exit(1);
        });
    ule_obs::progress::finish();
    println!(
        "space {} ({}): {} lattice points, {} pruned, {} evaluated \
         ({} resumed, {} simulated), frontier {}",
        outcome.space,
        ule_core::metrics::workload_key(outcome.workload),
        outcome.lattice_points,
        outcome.pruned,
        outcome.evaluated,
        outcome.resumed,
        outcome.simulated,
        outcome.frontier.len()
    );
    if let Some(path) = &out {
        eprintln!("wrote journal to {}", path.display());
    }
    println!();
    match ule_dse::explore::render_report(&engine, &outcome) {
        Ok(table) => print!("{table}"),
        Err(e) => {
            eprintln!("report: {e}");
            std::process::exit(1);
        }
    }
    std::process::exit(0)
}

fn usage() -> ! {
    eprintln!("usage: repro [options] <experiment-id>... | all | --list");
    eprintln!("run `repro --help` for the option list");
    eprintln!("ids: {}", id_list());
    std::process::exit(2);
}

fn id_list() -> String {
    let names: Vec<&str> = ExperimentId::VARIANTS.iter().map(|id| id.name()).collect();
    names.join(" ")
}

enum Format {
    Text,
    Json,
}

fn main() {
    let mut threads: Option<usize> = None;
    let mut format = Format::Text;
    let mut metrics_path: Option<PathBuf> = None;
    let mut obs = ObsOptions::default();
    let mut profile = false;
    let mut flame_path: Option<PathBuf> = None;
    let mut flame_weight = FlameWeight::Cycles;
    let mut trace_events_path: Option<PathBuf> = None;
    let mut selected: Vec<ExperimentId> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print_help();
                return;
            }
            "--list" => {
                for id in ExperimentId::VARIANTS {
                    println!("{id}");
                }
                println!("all");
                return;
            }
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads expects a positive integer");
                        std::process::exit(2);
                    });
                threads = Some(n);
            }
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => {
                    eprintln!("--format expects `text` or `json`");
                    std::process::exit(2);
                }
            },
            "--metrics-out" => match args.next() {
                Some(p) => metrics_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--metrics-out expects a path");
                    std::process::exit(2);
                }
            },
            "--trace" => match args.next() {
                Some(p) => obs.trace = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--trace expects a path");
                    std::process::exit(2);
                }
            },
            "--flight-dump" => match args.next() {
                Some(p) => obs.flight_dump = PathBuf::from(p),
                None => {
                    eprintln!("--flight-dump expects a path");
                    std::process::exit(2);
                }
            },
            "--progress" => obs.progress = Some(true),
            "--no-progress" => obs.progress = Some(false),
            "--profile" => profile = true,
            "--flame" => match args.next() {
                Some(p) => flame_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--flame expects a path");
                    std::process::exit(2);
                }
            },
            "--flame-weight" => match args.next().as_deref().and_then(parse_flame_weight) {
                Some(w) => flame_weight = w,
                None => {
                    eprintln!("--flame-weight expects `cycles` or `nj`");
                    std::process::exit(2);
                }
            },
            "--trace-events" => match args.next() {
                Some(p) => trace_events_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--trace-events expects a path");
                    std::process::exit(2);
                }
            },
            // Subcommands own the rest of the argument list.
            "verify" => run_verify(args, obs),
            "diff" => run_diff(args),
            "check" => run_check(args),
            "profile" => run_profile(args, obs),
            "explore" => run_explore(args, obs),
            "serve" => run_serve(args, obs),
            "overhead" => run_overhead(args),
            "selftest-flight" => run_selftest_flight(&obs),
            "all" => selected.extend(ExperimentId::ALL),
            other => match ExperimentId::from_str(other) {
                Ok(id) => selected.push(id),
                Err(e) => {
                    eprintln!("{e}");
                    eprintln!("valid ids: {} (or: all)", id_list());
                    std::process::exit(2);
                }
            },
        }
    }
    if selected.is_empty() {
        usage();
    }
    if flame_path.is_some() && !profile {
        eprintln!("--flame needs --profile (the call graph is only built on profiled runs)");
        std::process::exit(2);
    }

    // Observability is configured once, before any simulation: the
    // profiling flag is read at the start of each run, and memoized
    // reports are shared, so flipping it mid-sweep would make a
    // report's `profile` depend on scheduling. The flight recorder is
    // installed before the engine so their epochs align in the merged
    // trace.
    obs.install();
    if profile {
        ule_obs::set_profiling(true);
    }

    let mut engine = SweepEngine::new();
    if let Some(n) = threads {
        engine = engine.with_threads(n);
    }

    // Pre-warm the memo cache in parallel over the union of design
    // points, then render serially in order.
    let jobs: Vec<Job> = selected.iter().flat_map(|id| id.jobs()).collect();
    if obs.progress_on() {
        ule_obs::progress::start("repro");
    }
    let reports = engine.run_batch(&jobs);
    ule_obs::progress::finish();
    match format {
        Format::Text => {
            for id in &selected {
                print!("{}", id.run(&engine));
            }
        }
        Format::Json => {
            let reg = metrics_out::metrics_registry(&jobs, &reports, &engine);
            print!("{}", reg.to_jsonl());
        }
    }
    if let Some(path) = &metrics_path {
        match metrics_out::write_metrics(path, &jobs, &reports, &engine) {
            Ok(n) => eprintln!("wrote {n} metrics records to {}", path.display()),
            Err(e) => {
                eprintln!("cannot write metrics to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    // Aggregated call-graph exports: one prefix/process per distinct
    // profiled design point (same dedup as the metrics registry), plus
    // a harness process (pid 0) with the SweepEngine's scheduling
    // timeline above the sim-level routine tracks.
    if flame_path.is_some() || trace_events_path.is_some() {
        let mut seen = HashSet::new();
        let mut stacks: Vec<(String, u64)> = Vec::new();
        let mut tbuf = TraceEventsBuf::new();
        if trace_events_path.is_some() {
            merge_harness_track(&mut tbuf, &engine);
        }
        let mut pid = 0u64;
        for (&(config, workload), report) in jobs.iter().zip(&reports) {
            let key = ConfigKey::new(config, workload);
            if !seen.insert(key) {
                continue;
            }
            if let Some(p) = &report.profile {
                pid += 1;
                let label = key.label();
                if flame_path.is_some() {
                    stacks.extend(attr::folded_stacks(p, &report.energy, flame_weight, &label));
                }
                if trace_events_path.is_some() {
                    attr::trace_events_into(&mut tbuf, pid, &label, p);
                }
            }
        }
        if let Some(path) = &flame_path {
            write_or_die(path, &ule_obs::flame::to_folded(&stacks), "folded stacks");
        }
        if let Some(path) = &trace_events_path {
            write_or_die(path, &tbuf.finish(), "trace events");
        }
    }
    ule_obs::clear_sink();
}

/// Writes the harness timeline into `buf` as process 0: one thread per
/// sweep worker, a complete event per cold simulation job (from the
/// engine's [`job spans`](SweepEngine::job_spans)), with the `sys.sim`
/// and `sweep.batch` spans recovered from the flight recorder's ring
/// nested on the same tracks. Loading the merged file in Perfetto shows
/// SweepEngine scheduling directly above the per-design-point routine
/// processes.
fn merge_harness_track(buf: &mut TraceEventsBuf, engine: &SweepEngine) {
    let spans = engine.job_spans();
    let handle = ule_obs::flight::handle();
    let recovered: Vec<String> = handle
        .map(|h| {
            let mut lines = h.lines_of_kind("sweep.batch");
            lines.extend(h.lines_of_kind("sys.sim"));
            lines
        })
        .unwrap_or_default();
    if spans.is_empty() && recovered.is_empty() {
        return;
    }
    buf.process_name(0, "harness (SweepEngine)");
    let mut tids: BTreeMap<String, u64> = BTreeMap::new();
    let mut tid_of = |buf: &mut TraceEventsBuf, thread: &str| -> u64 {
        match tids.get(thread) {
            Some(&t) => t,
            None => {
                let t = tids.len() as u64 + 1;
                tids.insert(thread.to_owned(), t);
                buf.thread_name(0, t, thread);
                t
            }
        }
    };
    for s in &spans {
        let tid = tid_of(buf, &s.thread);
        buf.complete(
            0,
            tid,
            &format!("job {}", s.key.label()),
            s.start.as_micros() as f64,
            s.wall.as_micros() as f64,
            &[],
        );
    }
    // Span events carry their end time (`t_us`, the drop) and duration;
    // start = end - dur. The flight epoch is the recorder's install
    // time, microseconds before the engine's, so the tracks align.
    for line in &recovered {
        let Some(v) = ule_obs::json::parse(line) else {
            continue;
        };
        let (Some(t_us), Some(dur_us), Some(thread), Some(kind)) = (
            v.get("t_us").and_then(|x| x.as_u64()),
            v.get("dur_us").and_then(|x| x.as_u64()),
            v.get("thread").and_then(|x| x.as_str()),
            v.get("kind").and_then(|x| x.as_str()),
        ) else {
            continue;
        };
        let name = if kind == "sweep.batch" {
            format!(
                "batch ({} jobs)",
                v.get("jobs").and_then(|x| x.as_u64()).unwrap_or(0)
            )
        } else {
            format!(
                "sim {} ({})",
                v.get("entry").and_then(|x| x.as_str()).unwrap_or("?"),
                v.get("curve").and_then(|x| x.as_str()).unwrap_or("?"),
            )
        };
        let mut args: Vec<(&str, u64)> = Vec::new();
        if let Some(c) = v.get("cycles").and_then(|x| x.as_u64()) {
            args.push(("cycles", c));
        }
        let tid = tid_of(buf, thread);
        buf.complete(
            0,
            tid,
            &name,
            t_us.saturating_sub(dur_us) as f64,
            dur_us as f64,
            &args,
        );
    }
}
