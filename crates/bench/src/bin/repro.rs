//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p ule-bench --release --bin repro -- all
//! cargo run -p ule-bench --release --bin repro -- fig7_1 t7_4
//! cargo run -p ule-bench --release --bin repro -- --list
//! cargo run -p ule-bench --release --bin repro -- --threads 4 all
//! cargo run -p ule-bench --release --bin repro -- --metrics-out m.jsonl fig7_1
//! cargo run -p ule-bench --release --bin repro -- --format json t7_4
//! ```
//!
//! Every selected experiment's design points are first submitted to
//! [`SweepEngine::run_batch`], which simulates them in parallel and
//! memoizes the reports; the experiment text is then rendered serially
//! in argument order, so the output is byte-identical for any thread
//! count (including 1).

use std::path::PathBuf;
use std::str::FromStr;

use ule_bench::{metrics_out, ExperimentId, Job, SweepEngine};

fn print_help() {
    println!("usage: repro [options] <experiment-id>... | all");
    println!("       repro verify [verify-options]");
    println!();
    println!("options:");
    println!("  --list              list experiment ids and exit");
    println!("  --threads N         batch fan-out width (positive integer)");
    println!("  --format text|json  text tables (default) or flat JSONL metrics records");
    println!("  --metrics-out PATH  write one JSONL metrics record per design point");
    println!("                      plus an engine summary (memo hits, per-job wall-clock)");
    println!("  --trace PATH        write structured trace events (JSONL) to PATH");
    println!("  --profile           attach the per-routine cycle profiler to every");
    println!("                      simulation (adds a `profile` field to metrics records)");
    println!("  -h, --help          show this help");
    println!();
    println!("environment:");
    println!("  ULE_SWEEP_THREADS   default fan-out width when --threads is absent; must be");
    println!("                      a positive integer (anything else warns once and falls");
    println!("                      back to std::thread::available_parallelism)");
    println!();
    println!("verify-options (differential verification campaign):");
    println!("  --seed S            campaign seed: hex, decimal, or any token");
    println!("                      (hashed deterministically; default 0xULE)");
    println!("  --iters N           random cases per curve before cost tiering");
    println!("                      (default 16; big fields run fewer)");
    println!("  --curve NAME        restrict to one curve (repeatable)");
    println!("  --config LABEL      restrict to one configuration: baseline,");
    println!("                      baseline+ic, isa-ext, isa-ext+ic, monte/billie");
    println!("  --case LABEL        replay one case: random:N, edge:NAME, negative:N");
    println!("  --no-edge           skip the adversarial edge corpus");
    println!("  --no-negative      skip bit-flip negative tests");
    println!("  --inject-fault      corrupt one RAM limb in the first simulated");
    println!("                      verification (harness self-test: the campaign");
    println!("                      must catch and shrink it)");
    println!();
    println!("ids: {}", id_list());
}

/// `repro verify …`: run a differential campaign and exit. Exit code 0
/// means the campaign matched expectations (zero divergences, or — with
/// `--inject-fault` — exactly the injected fault was caught).
fn run_verify(args: impl Iterator<Item = String>, trace_path: Option<PathBuf>) -> ! {
    let mut campaign = ule_verify::Campaign::new(ule_verify::parse_seed("0xULE"), 16);
    let mut curves: Vec<ule_curves::params::CurveId> = Vec::new();
    let args_v: Vec<String> = args.collect();
    let mut i = 0;
    let take = |i: &mut usize, args_v: &[String], flag: &str| -> String {
        *i += 1;
        match args_v.get(*i) {
            Some(v) => v.clone(),
            None => {
                eprintln!("{flag} expects a value");
                std::process::exit(2);
            }
        }
    };
    while i < args_v.len() {
        match args_v[i].as_str() {
            "--seed" => campaign.seed = ule_verify::parse_seed(&take(&mut i, &args_v, "--seed")),
            "--iters" => {
                let v = take(&mut i, &args_v, "--iters");
                campaign.iters = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--iters expects a positive integer");
                        std::process::exit(2);
                    });
            }
            "--curve" => {
                let v = take(&mut i, &args_v, "--curve");
                match ule_verify::parse_curve(&v) {
                    Some(id) => curves.push(id),
                    None => {
                        eprintln!("unknown curve {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--config" => {
                let v = take(&mut i, &args_v, "--config");
                match ule_verify::ConfigKind::parse(&v) {
                    Some(c) => campaign.only_config = Some(c),
                    None => {
                        eprintln!("unknown config {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--case" => {
                let v = take(&mut i, &args_v, "--case");
                match ule_verify::CaseSelector::parse(&v) {
                    Some(s) => campaign.only_case = Some(s),
                    None => {
                        eprintln!("bad case selector {v:?} (random:N, edge:NAME, negative:N)");
                        std::process::exit(2);
                    }
                }
            }
            "--no-edge" => campaign.edge = false,
            "--no-negative" => campaign.negative = false,
            "--inject-fault" => campaign.inject_fault = true,
            other => {
                eprintln!("unknown verify option {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if !curves.is_empty() {
        campaign.curves = curves;
    }
    if let Some(path) = &trace_path {
        match ule_obs::JsonlFileSink::create(path) {
            Ok(sink) => ule_obs::set_sink(Box::new(sink)),
            Err(e) => {
                eprintln!("cannot open trace file {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    let report = ule_verify::run_campaign(&campaign);
    print!("{}", report.render(&campaign));
    ule_obs::clear_sink();
    if campaign.inject_fault {
        // Self-test: the deliberate corruption must be caught.
        if report.divergences.is_empty() {
            eprintln!("verify: injected fault was NOT caught");
            std::process::exit(1);
        }
        println!("verify: injected fault caught and shrunk (self-test ok)");
        std::process::exit(0);
    }
    std::process::exit(if report.divergences.is_empty() { 0 } else { 1 });
}

fn usage() -> ! {
    eprintln!("usage: repro [options] <experiment-id>... | all | --list");
    eprintln!("run `repro --help` for the option list");
    eprintln!("ids: {}", id_list());
    std::process::exit(2);
}

fn id_list() -> String {
    let names: Vec<&str> = ExperimentId::VARIANTS.iter().map(|id| id.name()).collect();
    names.join(" ")
}

enum Format {
    Text,
    Json,
}

fn main() {
    let mut threads: Option<usize> = None;
    let mut format = Format::Text;
    let mut metrics_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut profile = false;
    let mut selected: Vec<ExperimentId> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print_help();
                return;
            }
            "--list" => {
                for id in ExperimentId::VARIANTS {
                    println!("{id}");
                }
                println!("all");
                return;
            }
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads expects a positive integer");
                        std::process::exit(2);
                    });
                threads = Some(n);
            }
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => {
                    eprintln!("--format expects `text` or `json`");
                    std::process::exit(2);
                }
            },
            "--metrics-out" => match args.next() {
                Some(p) => metrics_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--metrics-out expects a path");
                    std::process::exit(2);
                }
            },
            "--trace" => match args.next() {
                Some(p) => trace_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--trace expects a path");
                    std::process::exit(2);
                }
            },
            "--profile" => profile = true,
            // The differential-verification subcommand owns the rest
            // of the argument list.
            "verify" => run_verify(args, trace_path),
            "all" => selected.extend(ExperimentId::ALL),
            other => match ExperimentId::from_str(other) {
                Ok(id) => selected.push(id),
                Err(e) => {
                    eprintln!("{e}");
                    eprintln!("valid ids: {} (or: all)", id_list());
                    std::process::exit(2);
                }
            },
        }
    }
    if selected.is_empty() {
        usage();
    }

    // Observability is configured once, before any simulation: the
    // profiling flag is read at the start of each run, and memoized
    // reports are shared, so flipping it mid-sweep would make a
    // report's `profile` depend on scheduling.
    if let Some(path) = &trace_path {
        match ule_obs::JsonlFileSink::create(path) {
            Ok(sink) => ule_obs::set_sink(Box::new(sink)),
            Err(e) => {
                eprintln!("cannot open trace file {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if profile {
        ule_obs::set_profiling(true);
    }

    let mut engine = SweepEngine::new();
    if let Some(n) = threads {
        engine = engine.with_threads(n);
    }

    // Pre-warm the memo cache in parallel over the union of design
    // points, then render serially in order.
    let jobs: Vec<Job> = selected.iter().flat_map(|id| id.jobs()).collect();
    let reports = engine.run_batch(&jobs);
    match format {
        Format::Text => {
            for id in &selected {
                print!("{}", id.run(&engine));
            }
        }
        Format::Json => {
            let reg = metrics_out::metrics_registry(&jobs, &reports, &engine);
            print!("{}", reg.to_jsonl());
        }
    }
    if let Some(path) = &metrics_path {
        match metrics_out::write_metrics(path, &jobs, &reports, &engine) {
            Ok(n) => eprintln!("wrote {n} metrics records to {}", path.display()),
            Err(e) => {
                eprintln!("cannot write metrics to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    ule_obs::clear_sink();
}
