//! Prior-work comparison series (external baselines quoted or modeled —
//! they were external measurements in the paper too).

use ule_billie::{Billie, BillieConfig};
use ule_mpmath::nist::NistBinary;

/// Modeled cycle count of a 163-bit **Montgomery-ladder** scalar
/// multiplication on Billie with digit width `d` (Fig 7.14's second
/// series). Per ladder bit the Lopez–Dahab x-only step costs 6 multiplies,
/// 4 squarings, and 3 additions (§4.1's evaluated alternative), plus
/// Pete-side issue overhead per operation and the final y-recovery
/// (one Fermat inversion plus a handful of field operations).
pub fn billie_ladder_cycles(d: usize) -> u64 {
    let m = 163u64;
    let b = Billie::with_config(NistBinary::B163, BillieConfig { digit: d });
    let mul = b.mul_latency();
    let issue_overhead = 4; // Pete issue + queue hand-off per operation
    let per_bit = 6 * (mul + issue_overhead) + 4 * (1 + issue_overhead) + 3 * (1 + issue_overhead);
    let fermat = (m - 2) * (mul + 1 + 2 * issue_overhead) + 200;
    (m - 1) * per_bit + 2 * fermat + 40 * (mul + issue_overhead)
}

/// Modeled cycle count for the prior-work accelerator of Guo et al.
/// (Fig 7.14's comparison points). Their design integrates an 8-bit
/// microcontroller for control, which the paper identifies as the
/// bottleneck Billie's coprocessor interface removes (§5.5.1, §7.6);
/// we model it as the same ladder datapath with a 3× per-operation
/// control overhead and half the register file (extra load/store
/// traffic). Documented in `DESIGN.md` as a modeled series — the paper's
/// own figure plots measured points we do not have numerically.
pub fn guo_ladder_cycles(d: usize) -> u64 {
    let m = 163u64;
    let b = Billie::with_config(NistBinary::B163, BillieConfig { digit: d });
    let mul = b.mul_latency();
    let control = 14; // 8-bit MCU control overhead per operation
    let spill = 2 * b.lsu_latency(); // reduced storage -> per-bit spills
    let per_bit = 6 * (mul + control) + 4 * (1 + control) + 3 * (1 + control) + spill;
    let fermat = (m - 2) * (mul + 1 + 2 * control) + 400;
    (m - 1) * per_bit + 2 * fermat + 40 * (mul + control)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_models_are_monotone_in_digit_width() {
        assert!(billie_ladder_cycles(1) > billie_ladder_cycles(4));
        assert!(guo_ladder_cycles(1) > guo_ladder_cycles(4));
    }

    #[test]
    fn billie_ladder_beats_prior_work() {
        // §7.6: "In all cases, our Montgomery algorithm implementation
        // outperforms prior work".
        for d in 1..=8 {
            assert!(billie_ladder_cycles(d) < guo_ladder_cycles(d), "D={d}");
        }
    }
}
