//! The regression observatory: `repro diff OLD.jsonl NEW.jsonl`.
//!
//! Joins the `design_point` records of two metrics files by *config
//! identity* (the full set of configuration keys — curve, arch,
//! workload and every hardware knob) and reports drift in the
//! deterministic headline metrics: simulated `cycles` (compared
//! exactly, as integers) and `energy_uj` (compared against a relative
//! threshold, default 0). `engine_summary` records are ignored — they
//! carry host wall-clock and are not deterministic. The outcome maps
//! to a process exit code so CI can gate on it: 0 clean, 1 drift,
//! 2 usage/parse error.

use std::collections::BTreeMap;
use std::fmt;

use ule_obs::json::{self, Json};

// The join keys live in `ule-core` next to the record writer, so the
// writer and every reader (diff, the dse journal) share one source.
pub use ule_core::metrics::IDENTITY_KEYS;

/// Relative drift thresholds (fractions, not percent). The defaults are
/// zero: the simulator is deterministic, so any drift is a change.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiffThresholds {
    /// Allowed relative cycle drift (0.0 = exact match required).
    pub max_cycles_frac: f64,
    /// Allowed relative energy drift (0.0 = exact match required).
    pub max_energy_frac: f64,
}

/// One design point present in both files, with its headline deltas.
#[derive(Clone, Debug)]
pub struct PointDiff {
    /// Human-readable identity, `curve/arch/workload[ +changed-knobs]`.
    pub label: String,
    /// Cycles in the old and new files.
    pub cycles: (u64, u64),
    /// Energy (µJ) in the old and new files.
    pub energy_uj: (f64, f64),
    /// Whether this point exceeds the thresholds.
    pub regressed: bool,
}

impl PointDiff {
    /// Relative cycle drift, new vs old.
    pub fn cycles_frac(&self) -> f64 {
        rel(self.cycles.0 as f64, self.cycles.1 as f64)
    }

    /// Relative energy drift, new vs old.
    pub fn energy_frac(&self) -> f64 {
        rel(self.energy_uj.0, self.energy_uj.1)
    }
}

/// The full comparison of two metrics files.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Points present in both files (changed or not).
    pub matched: Vec<PointDiff>,
    /// Points only in the old file — a lost design point is a failure.
    pub removed: Vec<String>,
    /// Points only in the new file — informational, not a failure.
    pub added: Vec<String>,
    /// Non-`design_point` records skipped while parsing (both files),
    /// by record kind. Forward compatibility: an exploration journal's
    /// `frontier`/`dse_summary` lines — or kinds from a future schema —
    /// must not break a diff, but their presence is reported.
    pub skipped: BTreeMap<String, usize>,
}

impl DiffReport {
    /// True when nothing regressed: no matched point over threshold and
    /// no removed points.
    pub fn is_clean(&self) -> bool {
        self.removed.is_empty() && self.matched.iter().all(|p| !p.regressed)
    }

    /// The matched points that exceed the thresholds.
    pub fn regressions(&self) -> impl Iterator<Item = &PointDiff> {
        self.matched.iter().filter(|p| p.regressed)
    }

    /// Process exit code for CI: 0 clean, 1 drift/removed points.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.is_clean())
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let changed: Vec<&PointDiff> = self
            .matched
            .iter()
            .filter(|p| p.cycles.0 != p.cycles.1 || p.energy_uj.0 != p.energy_uj.1)
            .collect();
        writeln!(
            f,
            "{} design points matched, {} changed, {} removed, {} added",
            self.matched.len(),
            changed.len(),
            self.removed.len(),
            self.added.len()
        )?;
        for p in &changed {
            writeln!(
                f,
                "  {} {}: cycles {} -> {} ({:+.4}%), energy {:.6} -> {:.6} uJ ({:+.4}%)",
                if p.regressed { "DRIFT" } else { "ok   " },
                p.label,
                p.cycles.0,
                p.cycles.1,
                100.0 * p.cycles_frac(),
                p.energy_uj.0,
                p.energy_uj.1,
                100.0 * p.energy_frac(),
            )?;
        }
        for l in &self.removed {
            writeln!(f, "  REMOVED {l}")?;
        }
        for l in &self.added {
            writeln!(f, "  added   {l}")?;
        }
        if !self.skipped.is_empty() {
            let kinds: Vec<String> = self
                .skipped
                .iter()
                .map(|(k, n)| format!("{k} x{n}"))
                .collect();
            writeln!(
                f,
                "  skipped non-design-point records: {}",
                kinds.join(", ")
            )?;
        }
        Ok(())
    }
}

fn rel(old: f64, new: f64) -> f64 {
    if old == new {
        0.0
    } else if old == 0.0 {
        f64::INFINITY
    } else {
        (new - old) / old.abs()
    }
}

/// A parsed design point: identity string + headline metrics.
struct Point {
    identity: String,
    label: String,
    cycles: u64,
    energy_uj: f64,
}

fn fmt_value(v: &Json) -> String {
    match v {
        Json::Null => "null".to_owned(),
        Json::Bool(b) => b.to_string(),
        Json::U64(n) => n.to_string(),
        Json::I64(n) => n.to_string(),
        Json::F64(n) => n.to_string(),
        Json::Str(s) => s.clone(),
        Json::Arr(_) | Json::Obj(_) => "<nested>".to_owned(),
    }
}

/// Parses the `design_point` records of a metrics JSONL document.
/// Other record kinds — `engine_summary`, an exploration journal's
/// `frontier`/`dse_summary`, anything from a future schema — are
/// skipped and counted into `skipped`; malformed JSON or a design
/// point missing a required key is an error.
fn parse_points(
    name: &str,
    text: &str,
    skipped: &mut BTreeMap<String, usize>,
) -> Result<Vec<Point>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let doc =
            json::parse(line).ok_or_else(|| format!("{name}:{n}: not valid JSON: {line:?}"))?;
        let kind = doc
            .get("record")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{name}:{n}: no \"record\" kind"))?;
        if kind != "design_point" {
            *skipped.entry(kind.to_owned()).or_insert(0) += 1;
            continue;
        }
        let mut identity = String::new();
        for key in IDENTITY_KEYS {
            let v = doc
                .get(key)
                .ok_or_else(|| format!("{name}:{n}: design point missing {key:?}"))?;
            identity.push_str(&format!("{key}={}|", fmt_value(v)));
        }
        let get_str = |key: &str| {
            doc.get(key)
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_owned()
        };
        let label = format!(
            "{}/{}/{}",
            get_str("curve"),
            get_str("arch"),
            get_str("workload")
        );
        let cycles = doc
            .get("cycles")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("{name}:{n}: design point without integer cycles"))?;
        let energy_uj = doc
            .get("energy_uj")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("{name}:{n}: design point without numeric energy_uj"))?;
        out.push(Point {
            identity,
            label,
            cycles,
            energy_uj,
        });
    }
    Ok(out)
}

/// Disambiguates labels when several points share curve/arch/workload
/// (differing only in hardware knobs): appends `#k` to repeats, in
/// file order, so every reported label is unique per file.
fn disambiguate(points: &mut [Point]) {
    use std::collections::HashMap;
    let mut counts: HashMap<String, usize> = HashMap::new();
    for p in points.iter_mut() {
        let k = counts.entry(p.label.clone()).or_insert(0);
        if *k > 0 {
            p.label = format!("{}#{}", p.label, k);
        }
        *k += 1;
    }
}

/// Compares two metrics JSONL documents. `old_name`/`new_name` are used
/// in error messages only.
pub fn diff_metrics(
    old_name: &str,
    old_text: &str,
    new_name: &str,
    new_text: &str,
    thresholds: DiffThresholds,
) -> Result<DiffReport, String> {
    let mut skipped = BTreeMap::new();
    let mut old_points = parse_points(old_name, old_text, &mut skipped)?;
    let mut new_points = parse_points(new_name, new_text, &mut skipped)?;
    disambiguate(&mut old_points);
    disambiguate(&mut new_points);
    let mut report = DiffReport {
        skipped,
        ..DiffReport::default()
    };
    let mut new_used = vec![false; new_points.len()];
    for o in &old_points {
        match new_points
            .iter()
            .position(|p| p.identity == o.identity)
            .filter(|&i| !std::mem::replace(&mut new_used[i], true))
        {
            Some(i) => {
                let p = &new_points[i];
                let cycles_frac = rel(o.cycles as f64, p.cycles as f64);
                let energy_frac = rel(o.energy_uj, p.energy_uj);
                report.matched.push(PointDiff {
                    label: o.label.clone(),
                    cycles: (o.cycles, p.cycles),
                    energy_uj: (o.energy_uj, p.energy_uj),
                    regressed: cycles_frac.abs() > thresholds.max_cycles_frac
                        || energy_frac.abs() > thresholds.max_energy_frac,
                });
            }
            None => report.removed.push(o.label.clone()),
        }
    }
    for (p, used) in new_points.iter().zip(&new_used) {
        if !used {
            report.added.push(p.label.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(curve: &str, cycles: u64, energy: f64) -> String {
        format!(
            concat!(
                r#"{{"record":"design_point","schema_version":2,"curve":"{}","#,
                r#""arch":"isa_ext","workload":"sign","icache_present":false,"#,
                r#""icache_size_bytes":0,"icache_prefetch":false,"icache_ideal":false,"#,
                r#""icache_miss_penalty":0,"monte_double_buffer":false,"#,
                r#""monte_forwarding":false,"monte_queue_depth":1,"billie_digit":4,"#,
                r#""mult_variant":"karatsuba","gating":"gated","billie_sram_rf":false,"#,
                r#""cycles":{},"time_ms":1.0,"energy_uj":{}}}"#
            ),
            curve, cycles, energy
        )
    }

    const SUMMARY: &str =
        r#"{"record":"engine_summary","schema_version":2,"sim_wall_us_total":123456}"#;

    #[test]
    fn identical_files_are_clean() {
        let doc = format!(
            "{}\n{}\n{SUMMARY}\n",
            point("P-192", 100, 1.5),
            point("P-256", 200, 3.0)
        );
        let r = diff_metrics("a", &doc, "b", &doc, DiffThresholds::default()).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.exit_code(), 0);
        assert_eq!(r.matched.len(), 2);
        assert!(r.removed.is_empty() && r.added.is_empty());
    }

    #[test]
    fn wall_clock_differences_are_ignored() {
        let old = format!("{}\n{SUMMARY}\n", point("P-192", 100, 1.5));
        let new = format!(
            "{}\n{}\n",
            point("P-192", 100, 1.5),
            r#"{"record":"engine_summary","schema_version":2,"sim_wall_us_total":999999}"#
        );
        let r = diff_metrics("a", &old, "b", &new, DiffThresholds::default()).unwrap();
        assert!(r.is_clean());
    }

    #[test]
    fn cycle_drift_fails_at_zero_threshold() {
        let old = point("P-192", 100, 1.5);
        let new = point("P-192", 101, 1.5);
        let r = diff_metrics("a", &old, "b", &new, DiffThresholds::default()).unwrap();
        assert!(!r.is_clean());
        assert_eq!(r.exit_code(), 1);
        assert_eq!(r.regressions().count(), 1);
        let p = r.regressions().next().unwrap();
        assert_eq!(p.cycles, (100, 101));
        // ...but passes under a 2 % threshold.
        let lax = DiffThresholds {
            max_cycles_frac: 0.02,
            max_energy_frac: 0.02,
        };
        let r = diff_metrics("a", &old, "b", &new, lax).unwrap();
        assert!(r.is_clean());
    }

    #[test]
    fn removed_points_fail_added_points_inform() {
        let old = format!(
            "{}\n{}\n",
            point("P-192", 100, 1.5),
            point("P-256", 200, 3.0)
        );
        let new = format!(
            "{}\n{}\n",
            point("P-192", 100, 1.5),
            point("P-384", 400, 9.0)
        );
        let r = diff_metrics("a", &old, "b", &new, DiffThresholds::default()).unwrap();
        assert!(!r.is_clean(), "a removed point is a regression");
        assert_eq!(r.removed, vec!["P-256/isa_ext/sign"]);
        assert_eq!(r.added, vec!["P-384/isa_ext/sign"]);
        // Added-only (superset) stays clean.
        let r = diff_metrics(
            "a",
            &point("P-192", 100, 1.5),
            "b",
            &new,
            DiffThresholds::default(),
        )
        .unwrap();
        assert!(r.is_clean());
    }

    #[test]
    fn journal_records_are_skipped_and_counted() {
        // A dse exploration journal diffs cleanly against a plain
        // metrics file: its frontier/dse_summary lines (and any future
        // kind) are counted, not fatal, and don't affect the verdict.
        let old = point("P-192", 100, 1.5);
        let new = format!(
            "{}\n{}\n{}\n{}\n",
            point("P-192", 100, 1.5),
            r#"{"record":"frontier","schema_version":3,"space":"s","rank":0}"#,
            r#"{"record":"dse_summary","schema_version":3,"space":"s"}"#,
            r#"{"record":"from_the_future","schema_version":9}"#,
        );
        let r = diff_metrics("a", &old, "b", &new, DiffThresholds::default()).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.skipped.get("frontier"), Some(&1));
        assert_eq!(r.skipped.get("dse_summary"), Some(&1));
        assert_eq!(r.skipped.get("from_the_future"), Some(&1));
        let s = r.to_string();
        assert!(s.contains("skipped non-design-point records"), "{s}");
        assert!(s.contains("frontier x1"), "{s}");
    }

    #[test]
    fn malformed_input_is_an_error_not_a_pass() {
        assert!(diff_metrics("a", "not json\n", "b", "", DiffThresholds::default()).is_err());
        let no_cycles = r#"{"record":"design_point"}"#;
        assert!(diff_metrics("a", no_cycles, "b", "", DiffThresholds::default()).is_err());
    }

    #[test]
    fn display_reports_drift_lines() {
        let old = point("P-192", 100, 1.5);
        let new = point("P-192", 110, 1.65);
        let r = diff_metrics("a", &old, "b", &new, DiffThresholds::default()).unwrap();
        let s = r.to_string();
        assert!(s.contains("DRIFT"), "{s}");
        assert!(s.contains("100 -> 110"), "{s}");
    }
}
