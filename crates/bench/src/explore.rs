//! Bridges `ule-dse`'s [`Evaluator`] seam onto the [`SweepEngine`]:
//! batches from the explorer fan out across the engine's worker
//! threads and hit its memo cache, so a frontier-guided strategy that
//! revisits a point (or the `--report` reference configs) never
//! re-simulates. Results come back in submission order, which keeps
//! the explorer's journal deterministic.

use crate::sweep::SweepEngine;
use ule_core::metrics::design_point_record;
use ule_core::{SystemConfig, Workload};
use ule_dse::{Evaluator, PointEval};

impl Evaluator for SweepEngine {
    fn evaluate(&self, jobs: &[(SystemConfig, Workload)]) -> Vec<PointEval> {
        let reports = self.run_batch(jobs);
        jobs.iter()
            .zip(&reports)
            .map(|(&(config, workload), report)| PointEval {
                record: design_point_record(&config, workload, report),
                cycles: report.cycles,
                energy_uj: report.energy_uj(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_curves::params::CurveId;
    use ule_swlib::builder::Arch;

    #[test]
    fn engine_evaluates_in_submission_order_with_memoization() {
        let engine = SweepEngine::new().with_threads(2);
        let a = (
            SystemConfig::new(CurveId::P192, Arch::Baseline),
            Workload::FieldMul,
        );
        let b = (
            SystemConfig::new(CurveId::P192, Arch::IsaExt),
            Workload::FieldMul,
        );
        let evals = engine.evaluate(&[a, b, a]);
        assert_eq!(evals.len(), 3);
        assert_eq!(evals[0].cycles, evals[2].cycles);
        assert_ne!(evals[0].cycles, evals[1].cycles);
        // The duplicate came from the memo cache, not a third run.
        assert_eq!(engine.simulations(), 2);
        // The record really is a design_point line for the right config.
        assert_eq!(
            evals[1].record.get("arch"),
            Some(&ule_obs::Value::Str("isa_ext".into()))
        );
    }
}
