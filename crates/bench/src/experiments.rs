//! One reproduction function per table/figure of Chapter 7. Each returns
//! the regenerated rows/series as text; `repro -- all` concatenates them.

use crate::prior;
use crate::sweep::{Job, SweepEngine};
use std::fmt::Write as _;
use std::str::FromStr;
use ule_core::{MultVariant, SystemConfig, Workload};
use ule_curves::params::CurveId;
use ule_energy::ffau::{montmul_energy_nj, ARM_CORTEX_M3, FFAU_POWER};
use ule_energy::Component;
use ule_monte::{Ffau, MonteConfig};
use ule_pete::icache::CacheConfig;
use ule_swlib::builder::Arch;

const PRIMES: [CurveId; 5] = CurveId::PRIMES;
const BINARY: [CurveId; 5] = CurveId::BINARY;

fn head(out: &mut String, title: &str) {
    let _ = writeln!(out, "\n==== {title} ====");
}

fn breakdown_line(out: &mut String, label: &str, r: &ule_core::RunReport) {
    let e = &r.energy;
    let _ = writeln!(
        out,
        "{:26} total {:9.1} uJ | core {:8.1} | ROM {:8.1} | RAM {:6.1} | uncore {:6.1} | accel {:6.1}",
        label,
        e.total_uj(),
        e.component_uj(Component::PeteCore),
        e.component_uj(Component::Rom),
        e.component_uj(Component::Ram),
        e.component_uj(Component::Uncore).max(0.0),
        (e.component_uj(Component::Monte) + e.component_uj(Component::Billie)).max(0.0),
    );
}

/// Fig 7.1: energy per Sign+Verify vs key size for the four prime-field
/// configurations.
pub fn fig7_1(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.1  energy per Sign+Verify vs key size (prime fields)",
    );
    let _ = writeln!(
        out,
        "{:8} {:>12} {:>12} {:>14} {:>12}",
        "curve", "Baseline uJ", "ISA Ext uJ", "ISA+4KB I$ uJ", "Monte uJ"
    );
    for id in PRIMES {
        let base = r.sv(id, Arch::Baseline).energy_uj();
        let ext = r.sv(id, Arch::IsaExt).energy_uj();
        let cached = r
            .sv_cached(id, Arch::IsaExt, CacheConfig::best())
            .energy_uj();
        let monte = r.sv(id, Arch::Monte).energy_uj();
        let _ = writeln!(
            out,
            "{:8} {:>12.1} {:>12.1} {:>14.1} {:>12.1}",
            id.name(),
            base,
            ext,
            cached,
            monte
        );
    }
    // Headline factors (abstract / §7.1).
    let b192 = r.sv(CurveId::P192, Arch::Baseline).energy_uj();
    let b521 = r.sv(CurveId::P521, Arch::Baseline).energy_uj();
    let e192 = r.sv(CurveId::P192, Arch::IsaExt).energy_uj();
    let e521 = r.sv(CurveId::P521, Arch::IsaExt).energy_uj();
    let m192 = r.sv(CurveId::P192, Arch::Monte).energy_uj();
    let m521 = r.sv(CurveId::P521, Arch::Monte).energy_uj();
    let _ = writeln!(
        out,
        "ISA-ext improvement {:.2}x..{:.2}x (paper 1.32x..1.45x); Monte {:.2}x..{:.2}x (paper 5.17x..6.34x)",
        b192 / e192,
        b521 / e521,
        b192 / m192,
        b521 / m521
    );
    out
}

/// Fig 7.2: energy breakdown for 192- and 256-bit keys across the prime
/// configurations.
pub fn fig7_2(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(&mut out, "Fig 7.2  energy breakdown, 192/256-bit (prime)");
    for id in [CurveId::P192, CurveId::P256] {
        for arch in [Arch::Baseline, Arch::IsaExt, Arch::Monte] {
            let rep = r.sv(id, arch);
            breakdown_line(&mut out, &format!("{} {}", id.name(), arch.name()), &rep);
        }
        let rep = r.sv_cached(id, Arch::IsaExt, CacheConfig::best());
        breakdown_line(&mut out, &format!("{} ISA+4KB I$", id.name()), &rep);
    }
    out
}

/// Fig 7.3: baseline breakdown across the five prime fields.
pub fn fig7_3(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.3  baseline energy breakdown vs prime field",
    );
    for id in PRIMES {
        let rep = r.sv(id, Arch::Baseline);
        breakdown_line(&mut out, id.name(), &rep);
    }
    out
}

/// Fig 7.4: ISA-extended and Monte breakdowns across the prime fields.
pub fn fig7_4(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.4  ISA-ext and Monte breakdowns vs prime field",
    );
    for id in PRIMES {
        let rep = r.sv(id, Arch::IsaExt);
        breakdown_line(&mut out, &format!("{} ISA Ext", id.name()), &rep);
    }
    for id in PRIMES {
        let rep = r.sv(id, Arch::Monte);
        breakdown_line(&mut out, &format!("{} w/ Monte", id.name()), &rep);
    }
    out
}

/// Fig 7.5: binary fields, software-only versus binary ISA extensions.
pub fn fig7_5(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.5  energy per Sign+Verify vs key size (binary fields)",
    );
    let _ = writeln!(
        out,
        "{:8} {:>14} {:>12} {:>8}",
        "curve", "SW-only uJ", "ISA Ext uJ", "factor"
    );
    for id in BINARY {
        let base = r.sv(id, Arch::Baseline).energy_uj();
        let ext = r.sv(id, Arch::IsaExt).energy_uj();
        let _ = writeln!(
            out,
            "{:8} {:>14.1} {:>12.1} {:>8.2}",
            id.name(),
            base,
            ext,
            base / ext
        );
    }
    let _ = writeln!(out, "(paper: software-only is 6.40x..8.46x worse)");
    out
}

/// Fig 7.6: binary ISA-extension breakdown across fields.
pub fn fig7_6(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.6  binary ISA-ext energy breakdown vs field",
    );
    for id in BINARY {
        let rep = r.sv(id, Arch::IsaExt);
        breakdown_line(&mut out, id.name(), &rep);
    }
    out
}

/// Fig 7.7: prime vs binary at equivalent security, all four hardware
/// tiers including the accelerators.
pub fn fig7_7(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.7  prime vs binary at equivalent security (incl. Monte & Billie)",
    );
    let _ = writeln!(
        out,
        "{:14} {:>12} {:>12} {:>12} {:>12}",
        "security pair", "prime ISA", "binary ISA", "Monte", "Billie"
    );
    for p in PRIMES {
        let b = p.security_pair();
        let pe = r.sv(p, Arch::IsaExt).energy_uj();
        let be = r.sv(b, Arch::IsaExt).energy_uj();
        let me = r.sv(p, Arch::Monte).energy_uj();
        let bl = r.sv(b, Arch::Billie).energy_uj();
        let _ = writeln!(
            out,
            "{:>6}/{:<7} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            p.name(),
            b.name(),
            pe,
            be,
            me,
            bl
        );
    }
    let m = r.sv(CurveId::P192, Arch::Monte).energy_uj();
    let b = r.sv(CurveId::K163, Arch::Billie).energy_uj();
    let _ = writeln!(
        out,
        "Billie vs Monte at 163/192: {:.2}x (paper 1.92x); binary ISA saves {:.1}% at 163/192 (paper 52.2%)",
        m / b,
        100.0 * (1.0 - r.sv(CurveId::K163, Arch::IsaExt).energy_uj() / r.sv(CurveId::P192, Arch::IsaExt).energy_uj())
    );
    out
}

/// Fig 7.8: Monte and Billie breakdowns across their fields.
pub fn fig7_8(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.8  Monte (prime) and Billie (binary) breakdowns",
    );
    for id in PRIMES {
        let rep = r.sv(id, Arch::Monte);
        breakdown_line(&mut out, &format!("{} w/ Monte", id.name()), &rep);
    }
    for id in BINARY {
        let rep = r.sv(id, Arch::Billie);
        breakdown_line(&mut out, &format!("{} w/ Billie", id.name()), &rep);
    }
    out
}

/// Fig 7.9: accelerated-architecture breakdowns at the 192/163 and
/// 256/283 security levels.
pub fn fig7_9(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.9  accelerated breakdowns at 192/163 and 256/283",
    );
    for (p, b) in [
        (CurveId::P192, CurveId::K163),
        (CurveId::P256, CurveId::K283),
    ] {
        let rep = r.sv_cached(p, Arch::IsaExt, CacheConfig::best());
        breakdown_line(&mut out, &format!("{} ISA+I$", p.name()), &rep);
        let rep = r.sv(p, Arch::Monte);
        breakdown_line(&mut out, &format!("{} Monte", p.name()), &rep);
        let rep = r.sv(b, Arch::Billie);
        breakdown_line(&mut out, &format!("{} Billie", b.name()), &rep);
    }
    out
}

/// Fig 7.10: static and dynamic power of every microarchitecture.
pub fn fig7_10(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.10  static and dynamic power per microarchitecture",
    );
    let line = |label: String, rep: &ule_core::RunReport, out: &mut String| {
        let (d, s) = rep.energy.power_mw();
        let _ = writeln!(
            out,
            "{:26} dynamic {:7.2} mW  static {:5.2} mW  (static share {:4.1}%)",
            label,
            d,
            s,
            100.0 * s / (d + s)
        );
    };
    // Averages over fields, as the paper does.
    for arch in [Arch::Baseline, Arch::IsaExt] {
        for id in [CurveId::P192, CurveId::K163] {
            let rep = r.sv(id, arch);
            line(format!("{} {}", id.name(), arch.name()), &rep, &mut out);
        }
    }
    let rep = r.sv_cached(CurveId::P192, Arch::IsaExt, CacheConfig::best());
    line("P-192 ISA+4KB I$".into(), &rep, &mut out);
    let rep = r.sv(CurveId::P192, Arch::Monte);
    line("P-192 w/ Monte".into(), &rep, &mut out);
    for id in BINARY {
        let rep = r.sv(id, Arch::Billie);
        line(format!("{} w/ Billie", id.name()), &rep, &mut out);
    }
    out
}

/// Fig 7.11: energy improvement with an *ideal* instruction cache.
pub fn fig7_11(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.11  energy improvement with an ideal 4KB I$",
    );
    let _ = writeln!(
        out,
        "{:8} {:>10} {:>10} {:>10}",
        "curve", "Baseline", "ISA Ext", "Monte"
    );
    for id in [CurveId::P192, CurveId::P256, CurveId::P384] {
        let mut cells = Vec::new();
        for arch in [Arch::Baseline, Arch::IsaExt, Arch::Monte] {
            let plain = r.sv(id, arch).energy_uj();
            let ideal = r.sv_cached(id, arch, CacheConfig::ideal()).energy_uj();
            cells.push(plain / ideal);
        }
        let _ = writeln!(
            out,
            "{:8} {:>9.2}x {:>9.2}x {:>9.2}x",
            id.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    let _ = writeln!(
        out,
        "(paper: large benefit for baseline/ISA-ext, small and shrinking for Monte)"
    );
    out
}

/// Fig 7.12: real instruction cache, P-192 Sign+Verify, 1–8 KB with and
/// without the prefetcher.
pub fn fig7_12(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.12  energy with a real I$ (P-192 ISA-ext S+V)",
    );
    let plain = r.sv(CurveId::P192, Arch::IsaExt).energy_uj();
    let _ = writeln!(
        out,
        "{:14} {:>10} {:>10} {:>10}",
        "config", "uJ", "vs none", "miss rate"
    );
    let _ = writeln!(
        out,
        "{:14} {:>10.1} {:>10} {:>10}",
        "no cache", plain, "1.00x", "-"
    );
    for size_kb in [1u32, 2, 4, 8] {
        for prefetch in [false, true] {
            let rep = r.sv_cached(
                CurveId::P192,
                Arch::IsaExt,
                CacheConfig::real(size_kb * 1024, prefetch),
            );
            let miss = rep
                .activity
                .icache
                .map(|c| {
                    // fills over accesses approximates the miss rate
                    c.fills as f64 / c.accesses as f64
                })
                .unwrap_or(0.0);
            let label = format!("{size_kb}KB{}", if prefetch { "-p" } else { "" });
            let _ = writeln!(
                out,
                "{:14} {:>10.1} {:>9.2}x {:>9.3}%",
                label,
                rep.energy_uj(),
                plain / rep.energy_uj(),
                100.0 * miss
            );
        }
    }
    out
}

/// Fig 7.13: the prime ISA-ext + 4 KB I$ configuration across fields.
pub fn fig7_13(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.13  prime ISA-ext + 4KB I$ breakdown vs field",
    );
    for id in PRIMES {
        let rep = r.sv_cached(id, Arch::IsaExt, CacheConfig::best());
        breakdown_line(&mut out, id.name(), &rep);
    }
    out
}

/// Fig 7.14: 163-bit scalar-multiply performance vs multiplier digit
/// size, Billie (sliding window and Montgomery ladder) vs prior work.
pub fn fig7_14(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.14  163-bit kG cycles vs digit size (Billie vs prior work)",
    );
    let _ = writeln!(
        out,
        "{:>3} {:>16} {:>16} {:>18}",
        "D", "window (sim)", "ladder (model)", "Guo et al. (model)"
    );
    for d in [1usize, 2, 3, 4, 6, 8] {
        let window = r.kg_billie(CurveId::K163, d).cycles;
        let ladder = prior::billie_ladder_cycles(d);
        let guo = prior::guo_ladder_cycles(d);
        let _ = writeln!(out, "{:>3} {:>16} {:>16} {:>18}", d, window, ladder, guo);
    }
    let _ = writeln!(
        out,
        "(paper: the window algorithm beats both ladders; Billie's ladder beats prior work)"
    );
    out
}

/// Fig 7.15 + Table 7.4: energy per Montgomery multiplication vs FFAU
/// datapath width, with the ARM Cortex-M3 reference.
pub fn fig7_15(_r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Fig 7.15 / Table 7.4  FFAU energy per MontMult vs datapath width",
    );
    let _ = writeln!(
        out,
        "{:>4} {:>8} {:>12} {:>12} {:>12}",
        "w", "key", "cycles", "time ns", "energy nJ"
    );
    for key in [192usize, 256, 384] {
        for w in [8usize, 16, 32, 64] {
            let k = key.div_ceil(w) as u64;
            let cycles = Ffau::montmul_cycles(k, 3);
            let e = montmul_energy_nj(w, key, cycles).expect("table row");
            let _ = writeln!(
                out,
                "{:>4} {:>8} {:>12} {:>12} {:>12.3}",
                w,
                key,
                cycles,
                cycles * 10,
                e
            );
        }
    }
    for (key, t, p, e) in ARM_CORTEX_M3 {
        let _ = writeln!(
            out,
            "ARM Cortex-M3 {key}-bit: {t:.0} ns at {p:.0} uW = {e} nJ (Table 7.5)"
        );
    }
    out
}

/// Table 7.1: latency per operation for the prime-field architectures.
pub fn t7_1(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Table 7.1  latency per operation (100K cycles), prime fields",
    );
    let _ = writeln!(
        out,
        "{:10} {:8} {:>10} {:>10} {:>12}",
        "uarch", "curve", "Sign", "Verify", "Sign+Verify"
    );
    for arch in [Arch::Baseline, Arch::IsaExt, Arch::Monte] {
        for id in PRIMES {
            let s = r.run(SystemConfig::new(id, arch), Workload::Sign).cycles;
            let v = r.run(SystemConfig::new(id, arch), Workload::Verify).cycles;
            let _ = writeln!(
                out,
                "{:10} {:8} {:>10.1} {:>10.1} {:>12.1}",
                arch.name(),
                id.name(),
                s as f64 / 1e5,
                v as f64 / 1e5,
                (s + v) as f64 / 1e5
            );
        }
    }
    out
}

/// Table 7.2: latency per operation for the binary-field architectures.
pub fn t7_2(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Table 7.2  latency per operation (100K cycles), binary fields",
    );
    let _ = writeln!(
        out,
        "{:10} {:8} {:>10} {:>10} {:>12}",
        "uarch", "curve", "Sign", "Verify", "Sign+Verify"
    );
    for arch in [Arch::Baseline, Arch::IsaExt, Arch::Billie] {
        for id in BINARY {
            let s = r.run(SystemConfig::new(id, arch), Workload::Sign).cycles;
            let v = r.run(SystemConfig::new(id, arch), Workload::Verify).cycles;
            let _ = writeln!(
                out,
                "{:10} {:8} {:>10.1} {:>10.1} {:>12.1}",
                arch.name(),
                id.name(),
                s as f64 / 1e5,
                v as f64 / 1e5,
                (s + v) as f64 / 1e5
            );
        }
    }
    out
}

/// Table 7.3: FFAU area and power vs datapath width (the embedded §7.9
/// measurements that power the fig7_15 model).
pub fn t7_3(_r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Table 7.3  FFAU area / static / dynamic power vs width",
    );
    let _ = writeln!(
        out,
        "{:>4} {:>8} {:>12} {:>12} {:>12}",
        "w", "key", "area cells", "static uW", "dynamic uW"
    );
    for row in FFAU_POWER {
        let _ = writeln!(
            out,
            "{:>4} {:>8} {:>12} {:>12.1} {:>12.1}",
            row.width, row.key_bits, row.area_cells, row.static_uw, row.dynamic_uw
        );
    }
    out
}

/// Table 7.4 is produced together with Fig 7.15 (same data).
pub fn t7_4(r: &SweepEngine) -> String {
    fig7_15(r)
}

/// Table 7.5: the ARM Cortex-M3 reference rows.
pub fn t7_5(_r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Table 7.5  ARM Cortex-M3 reference (100 MHz, 0.9 V)",
    );
    for (key, t, p, e) in ARM_CORTEX_M3 {
        let _ = writeln!(
            out,
            "{key}-bit: {t:.0} ns, {p:.0} uW, {e} nJ per modular multiply"
        );
    }
    out
}

/// §7.7: the double-buffer ablation on Monte.
pub fn s7_7(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(&mut out, "Sec 7.7  Monte double-buffering ablation");
    for id in [CurveId::P192, CurveId::P384] {
        let with = r.sv_monte(id, MonteConfig::default());
        let without = r.sv_monte(
            id,
            MonteConfig {
                double_buffer: false,
                forwarding: false,
                queue_depth: 4,
            },
        );
        let _ = writeln!(
            out,
            "{:8} with {:>10.1} uJ / {:>9} cyc   without {:>10.1} uJ / {:>9} cyc   saving {:4.1}%",
            id.name(),
            with.energy_uj(),
            with.cycles,
            without.energy_uj(),
            without.cycles,
            100.0 * (1.0 - with.energy_uj() / without.energy_uj())
        );
    }
    let _ = writeln!(out, "(paper: 9.4% at 192-bit, 13.5% at 384-bit)");
    out
}

/// §7.8: multiplier-variant power ablation (identical cycles).
pub fn s7_8(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(
        &mut out,
        "Sec 7.8  multiplier variants (baseline P-192 S+V)",
    );
    for (v, name) in [
        (MultVariant::Karatsuba, "Karatsuba multi-cycle"),
        (MultVariant::OperandScan, "operand-scan multi-cycle"),
        (MultVariant::Parallel, "parallel pipelined"),
    ] {
        let rep = r.sv_mult_variant(CurveId::P192, v);
        let (d, s) = rep.energy.power_mw();
        let _ = writeln!(
            out,
            "{:26} {:>10.1} uJ at {:>6.2} mW",
            name,
            rep.energy_uj(),
            d + s
        );
    }
    out
}

/// §8 extension: idle-accelerator gating — the paper's stated future
/// work ("turn off Billie when she is not in use").
pub fn s8_gating(r: &SweepEngine) -> String {
    use ule_energy::report::Gating;
    let mut out = String::new();
    head(&mut out, "Sec 8 ext.  idle-accelerator clock/power gating");
    let _ = writeln!(
        out,
        "{:18} {:>12} {:>12} {:>12} {:>10}",
        "config", "no gating", "clock-gated", "power-gated", "saving"
    );
    let row = |label: String, curve: CurveId, arch: Arch, out: &mut String, r: &SweepEngine| {
        let mut energies = Vec::new();
        for gating in [Gating::None, Gating::Clock, Gating::Power] {
            let cfg = SystemConfig::new(curve, arch).with_gating(gating);
            energies.push(r.run(cfg, Workload::SignVerify).energy_uj());
        }
        let _ = writeln!(
            out,
            "{:18} {:>12.1} {:>12.1} {:>12.1} {:>9.1}%",
            label,
            energies[0],
            energies[1],
            energies[2],
            100.0 * (1.0 - energies[2] / energies[0])
        );
    };
    for id in BINARY {
        row(
            format!("{} w/ Billie", id.name()),
            id,
            Arch::Billie,
            &mut out,
            r,
        );
    }
    row(
        "P-192 w/ Monte".into(),
        CurveId::P192,
        Arch::Monte,
        &mut out,
        r,
    );
    let _ = writeln!(
        out,
        "(Billie idles ~half the operation while Pete runs the protocol math,"
    );
    let _ = writeln!(
        out,
        " so gating recovers a large share of her energy — §7.4's prediction)"
    );
    // Second §8 item: the SRAM register file.
    let _ = writeln!(
        out,
        "\nSRAM register file instead of flip-flops (§8 future work):"
    );
    for id in BINARY {
        let ff = r.sv(id, Arch::Billie).energy_uj();
        let cfg = SystemConfig::new(id, Arch::Billie).with_billie_sram_rf(true);
        let sram = r.run(cfg, Workload::SignVerify).energy_uj();
        let _ = writeln!(
            out,
            "{:18} flip-flops {:>8.1} uJ   SRAM {:>8.1} uJ   saving {:4.1}%",
            format!("{} w/ Billie", id.name()),
            ff,
            sram,
            100.0 * (1.0 - sram / ff)
        );
    }
    out
}

/// Headline summary: every shape target from DESIGN.md in one table.
pub fn summary(r: &SweepEngine) -> String {
    let mut out = String::new();
    head(&mut out, "Summary  headline factors vs the paper");
    let b192 = r.sv(CurveId::P192, Arch::Baseline).energy_uj();
    let b521 = r.sv(CurveId::P521, Arch::Baseline).energy_uj();
    let e192 = r.sv(CurveId::P192, Arch::IsaExt).energy_uj();
    let e521 = r.sv(CurveId::P521, Arch::IsaExt).energy_uj();
    let m192 = r.sv(CurveId::P192, Arch::Monte).energy_uj();
    let m521 = r.sv(CurveId::P521, Arch::Monte).energy_uj();
    let c192 = r
        .sv_cached(CurveId::P192, Arch::IsaExt, CacheConfig::best())
        .energy_uj();
    let kb163 = r.sv(CurveId::K163, Arch::Baseline).energy_uj();
    let ke163 = r.sv(CurveId::K163, Arch::IsaExt).energy_uj();
    let bl163 = r.sv(CurveId::K163, Arch::Billie).energy_uj();
    let bl571 = r.sv(CurveId::K571, Arch::Billie).energy_uj();
    let rows = [
        (
            "prime ISA ext vs baseline",
            format!("{:.2}x..{:.2}x", b192 / e192, b521 / e521),
            "1.32x..1.45x",
        ),
        (
            "Monte vs baseline",
            format!("{:.2}x..{:.2}x", b192 / m192, b521 / m521),
            "5.17x..6.34x",
        ),
        (
            "ISA ext + 4KB I$ vs baseline",
            format!("{:.2}x", b192 / c192),
            "1.67x..2.08x",
        ),
        (
            "binary SW-only vs binary ISA",
            format!("{:.2}x", kb163 / ke163),
            "6.40x..8.46x",
        ),
        (
            "binary ISA vs prime ISA (163/192)",
            format!("{:.2}x", e192 / ke163),
            "2.09x",
        ),
        (
            "Billie vs Monte (163/192)",
            format!("{:.2}x", m192 / bl163),
            "1.92x",
        ),
        (
            "Billie vs Monte (571/521)",
            format!("{:.2}x", m521 / bl571),
            "converging",
        ),
    ];
    for (what, got, paper) in rows {
        let _ = writeln!(out, "{:36} {:>14}   (paper {paper})", what, got);
    }
    out
}

/// Every experiment in [`ExperimentId::ALL`] order.
pub fn all(r: &SweepEngine) -> String {
    let mut out = String::new();
    for id in ExperimentId::ALL {
        out.push_str(&id.run(r));
    }
    out
}

/// Dispatch by experiment id string (`"all"` runs everything).
pub fn by_name(name: &str, r: &SweepEngine) -> Option<String> {
    if name == "all" {
        return Some(all(r));
    }
    ExperimentId::from_str(name).ok().map(|id| id.run(r))
}

/// Typed identifier for every reproduced table/figure — the dispatch,
/// parsing, and batch-planning surface of the harness.
///
/// `FromStr` accepts the historic lowercase ids (`"fig7_1"`, `"t7_4"`,
/// `"s8_gating"`, …); `Display` prints them back; [`ExperimentId::ALL`]
/// is the canonical `repro -- all` order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the ids are the documentation: one per paper table/figure
pub enum ExperimentId {
    Fig7_1,
    Fig7_2,
    Fig7_3,
    Fig7_4,
    Fig7_5,
    Fig7_6,
    Fig7_7,
    Fig7_8,
    Fig7_9,
    Fig7_10,
    Fig7_11,
    Fig7_12,
    Fig7_13,
    Fig7_14,
    Fig7_15,
    T7_1,
    T7_2,
    T7_3,
    T7_4,
    T7_5,
    S7_7,
    S7_8,
    S8Gating,
    Summary,
}

impl ExperimentId {
    /// Every experiment in `repro -- all` order. (`T7_4` parses and
    /// runs but is excluded: its output *is* `fig7_15`.)
    pub const ALL: [ExperimentId; 23] = [
        ExperimentId::Fig7_1,
        ExperimentId::Fig7_2,
        ExperimentId::Fig7_3,
        ExperimentId::Fig7_4,
        ExperimentId::Fig7_5,
        ExperimentId::Fig7_6,
        ExperimentId::Fig7_7,
        ExperimentId::Fig7_8,
        ExperimentId::Fig7_9,
        ExperimentId::Fig7_10,
        ExperimentId::Fig7_11,
        ExperimentId::Fig7_12,
        ExperimentId::Fig7_13,
        ExperimentId::Fig7_14,
        ExperimentId::Fig7_15,
        ExperimentId::T7_1,
        ExperimentId::T7_2,
        ExperimentId::T7_3,
        ExperimentId::T7_5,
        ExperimentId::S7_7,
        ExperimentId::S7_8,
        ExperimentId::S8Gating,
        ExperimentId::Summary,
    ];

    /// Every parseable id (ALL plus the `fig7_15` alias `t7_4`).
    pub const VARIANTS: [ExperimentId; 24] = [
        ExperimentId::Fig7_1,
        ExperimentId::Fig7_2,
        ExperimentId::Fig7_3,
        ExperimentId::Fig7_4,
        ExperimentId::Fig7_5,
        ExperimentId::Fig7_6,
        ExperimentId::Fig7_7,
        ExperimentId::Fig7_8,
        ExperimentId::Fig7_9,
        ExperimentId::Fig7_10,
        ExperimentId::Fig7_11,
        ExperimentId::Fig7_12,
        ExperimentId::Fig7_13,
        ExperimentId::Fig7_14,
        ExperimentId::Fig7_15,
        ExperimentId::T7_1,
        ExperimentId::T7_2,
        ExperimentId::T7_3,
        ExperimentId::T7_4,
        ExperimentId::T7_5,
        ExperimentId::S7_7,
        ExperimentId::S7_8,
        ExperimentId::S8Gating,
        ExperimentId::Summary,
    ];

    /// The id string (what `FromStr` parses and `repro` accepts).
    pub fn name(self) -> &'static str {
        match self {
            ExperimentId::Fig7_1 => "fig7_1",
            ExperimentId::Fig7_2 => "fig7_2",
            ExperimentId::Fig7_3 => "fig7_3",
            ExperimentId::Fig7_4 => "fig7_4",
            ExperimentId::Fig7_5 => "fig7_5",
            ExperimentId::Fig7_6 => "fig7_6",
            ExperimentId::Fig7_7 => "fig7_7",
            ExperimentId::Fig7_8 => "fig7_8",
            ExperimentId::Fig7_9 => "fig7_9",
            ExperimentId::Fig7_10 => "fig7_10",
            ExperimentId::Fig7_11 => "fig7_11",
            ExperimentId::Fig7_12 => "fig7_12",
            ExperimentId::Fig7_13 => "fig7_13",
            ExperimentId::Fig7_14 => "fig7_14",
            ExperimentId::Fig7_15 => "fig7_15",
            ExperimentId::T7_1 => "t7_1",
            ExperimentId::T7_2 => "t7_2",
            ExperimentId::T7_3 => "t7_3",
            ExperimentId::T7_4 => "t7_4",
            ExperimentId::T7_5 => "t7_5",
            ExperimentId::S7_7 => "s7_7",
            ExperimentId::S7_8 => "s7_8",
            ExperimentId::S8Gating => "s8_gating",
            ExperimentId::Summary => "summary",
        }
    }

    /// Regenerates this experiment's text.
    pub fn run(self, r: &SweepEngine) -> String {
        match self {
            ExperimentId::Fig7_1 => fig7_1(r),
            ExperimentId::Fig7_2 => fig7_2(r),
            ExperimentId::Fig7_3 => fig7_3(r),
            ExperimentId::Fig7_4 => fig7_4(r),
            ExperimentId::Fig7_5 => fig7_5(r),
            ExperimentId::Fig7_6 => fig7_6(r),
            ExperimentId::Fig7_7 => fig7_7(r),
            ExperimentId::Fig7_8 => fig7_8(r),
            ExperimentId::Fig7_9 => fig7_9(r),
            ExperimentId::Fig7_10 => fig7_10(r),
            ExperimentId::Fig7_11 => fig7_11(r),
            ExperimentId::Fig7_12 => fig7_12(r),
            ExperimentId::Fig7_13 => fig7_13(r),
            ExperimentId::Fig7_14 => fig7_14(r),
            ExperimentId::Fig7_15 => fig7_15(r),
            ExperimentId::T7_1 => t7_1(r),
            ExperimentId::T7_2 => t7_2(r),
            ExperimentId::T7_3 => t7_3(r),
            ExperimentId::T7_4 => t7_4(r),
            ExperimentId::T7_5 => t7_5(r),
            ExperimentId::S7_7 => s7_7(r),
            ExperimentId::S7_8 => s7_8(r),
            ExperimentId::S8Gating => s8_gating(r),
            ExperimentId::Summary => summary(r),
        }
    }

    /// The design points this experiment reads — what `repro` submits
    /// to [`SweepEngine::run_batch`] before rendering any text, so the
    /// whole selection simulates in parallel. An experiment that misses
    /// a point here still renders correctly (the point just simulates
    /// serially at render time); the `experiment_jobs_cover_*` tests
    /// pin the lists that matter.
    pub fn jobs(self) -> Vec<Job> {
        let sv = |c: CurveId, a: Arch| (SystemConfig::new(c, a), Workload::SignVerify);
        let sv_cached = |c: CurveId, a: Arch, cache: CacheConfig| {
            (
                SystemConfig::new(c, a).with_icache(cache),
                Workload::SignVerify,
            )
        };
        let cross = |curves: &[CurveId], archs: &[Arch]| -> Vec<Job> {
            curves
                .iter()
                .flat_map(|&c| archs.iter().map(move |&a| sv(c, a)))
                .collect()
        };
        match self {
            ExperimentId::Fig7_1 => {
                let mut j = cross(&PRIMES, &[Arch::Baseline, Arch::IsaExt, Arch::Monte]);
                j.extend(
                    PRIMES
                        .iter()
                        .map(|&c| sv_cached(c, Arch::IsaExt, CacheConfig::best())),
                );
                j
            }
            ExperimentId::Fig7_2 => {
                let two = [CurveId::P192, CurveId::P256];
                let mut j = cross(&two, &[Arch::Baseline, Arch::IsaExt, Arch::Monte]);
                j.extend(
                    two.iter()
                        .map(|&c| sv_cached(c, Arch::IsaExt, CacheConfig::best())),
                );
                j
            }
            ExperimentId::Fig7_3 => cross(&PRIMES, &[Arch::Baseline]),
            ExperimentId::Fig7_4 => cross(&PRIMES, &[Arch::IsaExt, Arch::Monte]),
            ExperimentId::Fig7_5 => cross(&BINARY, &[Arch::Baseline, Arch::IsaExt]),
            ExperimentId::Fig7_6 => cross(&BINARY, &[Arch::IsaExt]),
            ExperimentId::Fig7_7 => {
                let mut j = cross(&PRIMES, &[Arch::IsaExt, Arch::Monte]);
                j.extend(cross(&BINARY, &[Arch::IsaExt, Arch::Billie]));
                j
            }
            ExperimentId::Fig7_8 => {
                let mut j = cross(&PRIMES, &[Arch::Monte]);
                j.extend(cross(&BINARY, &[Arch::Billie]));
                j
            }
            ExperimentId::Fig7_9 => {
                let mut j = Vec::new();
                for (p, b) in [
                    (CurveId::P192, CurveId::K163),
                    (CurveId::P256, CurveId::K283),
                ] {
                    j.push(sv_cached(p, Arch::IsaExt, CacheConfig::best()));
                    j.push(sv(p, Arch::Monte));
                    j.push(sv(b, Arch::Billie));
                }
                j
            }
            ExperimentId::Fig7_10 => {
                let mut j = cross(
                    &[CurveId::P192, CurveId::K163],
                    &[Arch::Baseline, Arch::IsaExt],
                );
                j.push(sv_cached(CurveId::P192, Arch::IsaExt, CacheConfig::best()));
                j.push(sv(CurveId::P192, Arch::Monte));
                j.extend(cross(&BINARY, &[Arch::Billie]));
                j
            }
            ExperimentId::Fig7_11 => {
                let three = [CurveId::P192, CurveId::P256, CurveId::P384];
                let archs = [Arch::Baseline, Arch::IsaExt, Arch::Monte];
                let mut j = cross(&three, &archs);
                for &c in &three {
                    for &a in &archs {
                        j.push(sv_cached(c, a, CacheConfig::ideal()));
                    }
                }
                j
            }
            ExperimentId::Fig7_12 => {
                let mut j = vec![sv(CurveId::P192, Arch::IsaExt)];
                for size_kb in [1u32, 2, 4, 8] {
                    for prefetch in [false, true] {
                        j.push(sv_cached(
                            CurveId::P192,
                            Arch::IsaExt,
                            CacheConfig::real(size_kb * 1024, prefetch),
                        ));
                    }
                }
                j
            }
            ExperimentId::Fig7_13 => PRIMES
                .iter()
                .map(|&c| sv_cached(c, Arch::IsaExt, CacheConfig::best()))
                .collect(),
            ExperimentId::Fig7_14 => [1usize, 2, 3, 4, 6, 8]
                .iter()
                .map(|&d| {
                    (
                        SystemConfig::new(CurveId::K163, Arch::Billie).with_billie_digit(d),
                        Workload::ScalarMul,
                    )
                })
                .collect(),
            // Pure table lookups — nothing to simulate.
            ExperimentId::Fig7_15
            | ExperimentId::T7_3
            | ExperimentId::T7_4
            | ExperimentId::T7_5 => Vec::new(),
            ExperimentId::T7_1 => PRIMES
                .iter()
                .flat_map(|&c| {
                    [Arch::Baseline, Arch::IsaExt, Arch::Monte]
                        .into_iter()
                        .flat_map(move |a| {
                            [Workload::Sign, Workload::Verify]
                                .into_iter()
                                .map(move |w| (SystemConfig::new(c, a), w))
                        })
                })
                .collect(),
            ExperimentId::T7_2 => BINARY
                .iter()
                .flat_map(|&c| {
                    [Arch::Baseline, Arch::IsaExt, Arch::Billie]
                        .into_iter()
                        .flat_map(move |a| {
                            [Workload::Sign, Workload::Verify]
                                .into_iter()
                                .map(move |w| (SystemConfig::new(c, a), w))
                        })
                })
                .collect(),
            ExperimentId::S7_7 => {
                let no_db = MonteConfig {
                    double_buffer: false,
                    forwarding: false,
                    queue_depth: 4,
                };
                [CurveId::P192, CurveId::P384]
                    .iter()
                    .flat_map(|&c| {
                        [MonteConfig::default(), no_db].into_iter().map(move |m| {
                            (
                                SystemConfig::new(c, Arch::Monte).with_monte(m),
                                Workload::SignVerify,
                            )
                        })
                    })
                    .collect()
            }
            ExperimentId::S7_8 => vec![sv(CurveId::P192, Arch::Baseline)],
            ExperimentId::S8Gating => {
                use ule_energy::report::Gating;
                let mut j = Vec::new();
                for &c in BINARY.iter() {
                    for g in [Gating::None, Gating::Clock, Gating::Power] {
                        j.push((
                            SystemConfig::new(c, Arch::Billie).with_gating(g),
                            Workload::SignVerify,
                        ));
                    }
                }
                for g in [Gating::None, Gating::Clock, Gating::Power] {
                    j.push((
                        SystemConfig::new(CurveId::P192, Arch::Monte).with_gating(g),
                        Workload::SignVerify,
                    ));
                }
                for &c in BINARY.iter() {
                    j.push(sv(c, Arch::Billie));
                    j.push((
                        SystemConfig::new(c, Arch::Billie).with_billie_sram_rf(true),
                        Workload::SignVerify,
                    ));
                }
                j
            }
            ExperimentId::Summary => {
                let mut j = cross(
                    &[CurveId::P192, CurveId::P521],
                    &[Arch::Baseline, Arch::IsaExt, Arch::Monte],
                );
                j.push(sv_cached(CurveId::P192, Arch::IsaExt, CacheConfig::best()));
                j.extend(cross(
                    &[CurveId::K163],
                    &[Arch::Baseline, Arch::IsaExt, Arch::Billie],
                ));
                j.push(sv(CurveId::K571, Arch::Billie));
                j
            }
        }
    }
}

impl std::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The error `ExperimentId::from_str` returns for an unknown id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownExperiment(pub String);

impl std::fmt::Display for UnknownExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown experiment id {:?}", self.0)
    }
}

impl std::error::Error for UnknownExperiment {}

impl FromStr for ExperimentId {
    type Err = UnknownExperiment;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ExperimentId::VARIANTS
            .into_iter()
            .find(|id| id.name() == s)
            .ok_or_else(|| UnknownExperiment(s.to_string()))
    }
}
