//! The benchmark harness: one reproduction per table and figure of the
//! paper's evaluation chapter (see the per-experiment index in
//! `DESIGN.md`).
//!
//! `cargo run -p ule-bench --release --bin repro -- all` regenerates
//! everything; individual experiments run with their id (`fig7_1`,
//! `t7_4`, `s7_7`, …).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod prior;
pub mod runner;

pub use runner::Runner;
