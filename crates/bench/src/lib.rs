//! The benchmark harness: one reproduction per table and figure of the
//! paper's evaluation chapter (see the per-experiment index in
//! `DESIGN.md`).
//!
//! `cargo run -p ule-bench --release --bin repro -- all` regenerates
//! everything; individual experiments run with their id (`fig7_1`,
//! `t7_4`, `s7_7`, …). `repro -- --list` prints the id catalogue.
//!
//! Simulations go through [`SweepEngine`]: a thread-safe memoizing
//! runner keyed by the typed `(SystemConfig, Workload)` pair. Identical
//! design points are simulated once and shared as `Arc<RunReport>`;
//! [`SweepEngine::run_batch`] fans a job list out across cores (thread
//! count from `std::thread::available_parallelism`, overridable via
//! `ULE_SWEEP_THREADS` or [`SweepEngine::with_threads`]). Results are
//! deterministic regardless of thread count — the simulator is a pure
//! function of its configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod experiments;
pub mod explore;
pub mod metrics_out;
pub mod prior;
pub mod sweep;

pub use experiments::ExperimentId;
pub use sweep::{ConfigKey, EngineStats, Job, SweepEngine};
