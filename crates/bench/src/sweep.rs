//! The thread-safe sweep engine: every (configuration, workload) pair
//! is simulated at most once per engine, concurrently callable from any
//! number of threads, with a scoped-thread fan-out for batch sweeps.
//!
//! This replaced the old single-threaded `Rc`-based `Runner` (since
//! deleted). The
//! design-space evaluation is an embarrassingly parallel batch workload
//! — 6 configurations × 10 curves × icache/digit/front-end ablations,
//! every point independent of every other — so the memo cache is a
//! sharded `Mutex<HashMap<ConfigKey, _>>` holding `Arc<RunReport>`s,
//! with per-key *in-flight de-duplication*: two threads asking for the
//! same point never simulate it twice; the second blocks until the
//! first publishes.
//!
//! Determinism: a simulation is a pure function of its
//! `(SystemConfig, Workload)` key, so every energy/cycle number is
//! independent of thread count and submission order — parallel sweeps
//! are bit-for-bit equal to serial ones.
//!
//! ```no_run
//! use ule_bench::SweepEngine;
//! use ule_core::{SystemConfig, Workload};
//! use ule_curves::params::CurveId;
//! use ule_swlib::builder::Arch;
//!
//! let engine = SweepEngine::new();
//! let jobs: Vec<_> = CurveId::PRIMES
//!     .iter()
//!     .map(|&c| (SystemConfig::new(c, Arch::Baseline), Workload::SignVerify))
//!     .collect();
//! for report in engine.run_batch(&jobs) {
//!     println!("{:.1} uJ", report.energy_uj());
//! }
//! ```

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use ule_core::{MultVariant, RunOptions, RunReport, System, SystemConfig, Workload};
use ule_curves::params::CurveId;
use ule_monte::MonteConfig;
use ule_pete::icache::CacheConfig;
use ule_swlib::builder::Arch;

/// One design point plus the workload to run on it — a batch job.
pub type Job = (SystemConfig, Workload);

/// Typed memo-cache key: one (configuration, workload) pair.
///
/// `Hash`/`Eq` are derived straight from [`SystemConfig`] and
/// [`Workload`], so every knob (curve, arch, icache tuple, Monte
/// front-end, Billie digit, multiplier variant, gating, SRAM register
/// file) participates — two keys are equal exactly when the simulated
/// points are identical. This replaces both the old stringly
/// `format!`-based system key and the hand-maintained ad-hoc `Key`
/// struct, which silently dropped any knob nobody remembered to add.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ConfigKey {
    /// The design point.
    pub config: SystemConfig,
    /// The workload run on it.
    pub workload: Workload,
}

impl ConfigKey {
    /// Key for one (configuration, workload) pair.
    pub fn new(config: SystemConfig, workload: Workload) -> Self {
        ConfigKey { config, workload }
    }

    /// Compact human/machine label, e.g.
    /// `P-192/monte/sign_verify` with non-default knobs appended
    /// (`ic1024p`, `d4`, …) — used by trace events and the engine
    /// summary of `--metrics-out`.
    pub fn label(&self) -> String {
        let c = &self.config;
        let mut s = format!(
            "{}/{}/{}",
            c.curve.name(),
            match c.arch {
                Arch::Baseline => "baseline",
                Arch::IsaExt => "isa_ext",
                Arch::Monte => "monte",
                Arch::Billie => "billie",
            },
            ule_core::metrics::workload_key(self.workload),
        );
        if let Some(ic) = c.icache {
            s.push_str(&format!(
                "/ic{}{}{}",
                ic.size_bytes,
                if ic.prefetch { "p" } else { "" },
                if ic.ideal { "i" } else { "" }
            ));
        }
        if !c.monte.double_buffer {
            s.push_str("/nodb");
        }
        if !c.monte.forwarding {
            s.push_str("/nofwd");
        }
        if c.billie_digit != 3 {
            s.push_str(&format!("/d{}", c.billie_digit));
        }
        if c.mult_variant != MultVariant::Karatsuba {
            s.push_str(&format!("/{:?}", c.mult_variant));
        }
        if c.gating != ule_energy::report::Gating::None {
            s.push_str(&format!("/{:?}", c.gating));
        }
        if c.billie_sram_rf {
            s.push_str("/sramrf");
        }
        s
    }

    fn shard(&self) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }
}

const SHARDS: usize = 16;

/// State of one in-flight simulation, shared between the computing
/// thread and any waiters.
struct InFlight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    Running,
    Ready(Arc<RunReport>),
    /// The computing thread panicked (e.g. a simulated signature failed
    /// host verification). Waiters propagate the panic instead of
    /// hanging forever.
    Poisoned,
}

impl InFlight {
    fn new() -> Arc<Self> {
        Arc::new(InFlight {
            state: Mutex::new(FlightState::Running),
            done: Condvar::new(),
        })
    }

    fn wait(&self) -> Arc<RunReport> {
        let mut st = lock(&self.state);
        loop {
            match &*st {
                FlightState::Running => st = self.done.wait(st).unwrap_or_else(|e| e.into_inner()),
                FlightState::Ready(r) => return r.clone(),
                FlightState::Poisoned => {
                    panic!("simulation of this design point panicked in another thread")
                }
            }
        }
    }

    fn publish(&self, state: FlightState) {
        *lock(&self.state) = state;
        self.done.notify_all();
    }
}

enum Slot {
    InFlight(Arc<InFlight>),
    Done(Arc<RunReport>),
}

/// Locks a mutex, ignoring poisoning: shard maps stay structurally
/// valid across a payload panic, and in-flight poisoning is handled
/// explicitly via [`FlightState::Poisoned`].
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The thread-safe memoizing sweep engine.
///
/// Cheap to share: every method takes `&self`, so one engine can serve
/// a whole process (wrap it in an `Arc` or hand out plain references
/// from a scope). See the [module docs](self) for the caching and
/// determinism contract.
pub struct SweepEngine {
    /// Sharded report memo — `SHARDS` independent locks so unrelated
    /// points never contend.
    shards: Vec<Mutex<HashMap<ConfigKey, Slot>>>,
    /// Built systems, shared across the workloads of one configuration
    /// (`System::run` takes `&self`, so concurrent runs share one
    /// program image).
    systems: Mutex<HashMap<SystemConfig, Arc<System>>>,
    threads: usize,
    simulations: AtomicU64,
    requests: AtomicU64,
    memo_hits: AtomicU64,
    inflight_waits: AtomicU64,
    /// Engine construction time — the zero point of job-span starts.
    epoch: Instant,
    /// One span per cold simulation, in cold-run completion order
    /// (memo hits don't append).
    spans: Mutex<Vec<JobSpan>>,
}

/// Wall-clock span of one cold simulation, relative to the engine's
/// construction — the harness-level track of the merged trace export.
#[derive(Clone, Debug)]
pub struct JobSpan {
    /// The simulated point.
    pub key: ConfigKey,
    /// Start offset from engine construction.
    pub start: Duration,
    /// Simulation wall-clock.
    pub wall: Duration,
    /// OS thread that ran the simulation (worker threads are named).
    pub thread: String,
}

/// A snapshot of the engine's request/memoization counters — the
/// `engine_summary` record of `--metrics-out`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total `run` calls (batch jobs included).
    pub requests: u64,
    /// Requests answered from the finished-report memo.
    pub memo_hits: u64,
    /// Requests that blocked on another thread's in-flight simulation.
    pub inflight_waits: u64,
    /// Cold simulations actually executed.
    pub simulations: u64,
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine::new()
    }
}

impl SweepEngine {
    /// Fresh engine sized from `std::thread::available_parallelism`,
    /// overridable with the `ULE_SWEEP_THREADS` environment variable
    /// (or [`SweepEngine::with_threads`]).
    pub fn new() -> Self {
        let default_threads = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let threads = match std::env::var("ULE_SWEEP_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    // Previously this fell back silently, making a typo'd
                    // override indistinguishable from a working one.
                    ule_obs::obs_warn_once!(
                        "ULE_SWEEP_THREADS must be a positive integer; \
                         falling back to available parallelism",
                        value = v.as_str(),
                    );
                    default_threads()
                }
            },
            Err(_) => default_threads(),
        };
        SweepEngine {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            systems: Mutex::new(HashMap::new()),
            threads,
            simulations: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            inflight_waits: AtomicU64::new(0),
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Overrides the batch fan-out width (`n` is clamped to ≥ 1).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// The batch fan-out width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of cold simulations executed so far (memo misses). Memo
    /// and in-flight hits don't count — the difference between this and
    /// the number of requests is what the cache saved.
    pub fn simulations(&self) -> u64 {
        self.simulations.load(Ordering::Relaxed)
    }

    /// Snapshot of the request/memoization counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests: self.requests.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            inflight_waits: self.inflight_waits.load(Ordering::Relaxed),
            simulations: self.simulations.load(Ordering::Relaxed),
        }
    }

    /// Wall-clock of every cold simulation so far, `(key, duration)`,
    /// in cold-run completion order. Memo/in-flight hits don't appear —
    /// a key occurs at most once.
    pub fn job_timings(&self) -> Vec<(ConfigKey, Duration)> {
        lock(&self.spans).iter().map(|s| (s.key, s.wall)).collect()
    }

    /// Full spans of every cold simulation so far (start offset from
    /// engine construction, duration, worker thread), in cold-run
    /// completion order — the harness track of the merged trace export.
    pub fn job_spans(&self) -> Vec<JobSpan> {
        lock(&self.spans).clone()
    }

    /// The shared built system for one configuration.
    fn system(&self, config: SystemConfig) -> Arc<System> {
        if let Some(s) = lock(&self.systems).get(&config) {
            return s.clone();
        }
        // Built outside the lock: suite codegen is much cheaper than a
        // simulation, so a racing duplicate build is preferable to
        // serializing every build behind one lock. First insert wins.
        let sys = Arc::new(System::new(config));
        lock(&self.systems).entry(config).or_insert(sys).clone()
    }

    /// Runs (or recalls) one workload on one configuration.
    ///
    /// Concurrent calls with the same key return the *same*
    /// `Arc<RunReport>`; at most one of them simulates.
    pub fn run(&self, config: SystemConfig, workload: Workload) -> Arc<RunReport> {
        let key = ConfigKey::new(config, workload);
        self.requests.fetch_add(1, Ordering::Relaxed);
        // Progress hooks are process-global no-ops unless the CLI
        // started a reporter; token 0 makes `job_done` a no-op too.
        let progress = ule_obs::progress::job_started(&key.label());
        let shard = &self.shards[key.shard()];
        let flight = {
            let mut map = lock(shard);
            match map.get(&key) {
                Some(Slot::Done(r)) => {
                    self.memo_hits.fetch_add(1, Ordering::Relaxed);
                    ule_obs::obs_event!("sweep.memo_hit", job = key.label());
                    ule_obs::progress::memo_hit();
                    ule_obs::progress::job_done(progress);
                    return r.clone();
                }
                Some(Slot::InFlight(f)) => {
                    let f = f.clone();
                    drop(map);
                    self.inflight_waits.fetch_add(1, Ordering::Relaxed);
                    ule_obs::obs_event!("sweep.inflight_wait", job = key.label());
                    let report = f.wait();
                    ule_obs::progress::job_done(progress);
                    return report;
                }
                None => {
                    let f = InFlight::new();
                    map.insert(key, Slot::InFlight(f.clone()));
                    f
                }
            }
        };
        // We own the simulation. If it panics (a simulated run that
        // fails host verification does), unpoison the slot so waiters
        // and retries see the failure rather than deadlocking.
        let mut guard = FlightGuard {
            engine: self,
            key,
            flight: &flight,
            armed: true,
        };
        let started = Instant::now();
        let sys = self.system(config);
        let report = Arc::new(sys.run_with(RunOptions::new(workload)));
        let wall = started.elapsed();
        self.simulations.fetch_add(1, Ordering::Relaxed);
        lock(&self.spans).push(JobSpan {
            key,
            start: started.duration_since(self.epoch),
            wall,
            thread: std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("{:?}", std::thread::current().id())),
        });
        ule_obs::obs_event!(
            "sweep.job",
            job = key.label(),
            wall_us = wall.as_micros() as u64,
            cycles = report.cycles,
        );
        guard.armed = false; // infallible from here on
        lock(shard).insert(key, Slot::Done(report.clone()));
        flight.publish(FlightState::Ready(report.clone()));
        ule_obs::progress::job_done(progress);
        report
    }

    /// Fans `jobs` out across a scoped thread pool and returns their
    /// reports in submission order.
    ///
    /// Pool width is [`SweepEngine::threads`], capped at the job count.
    /// Duplicate jobs (and jobs already cached) are de-duplicated by the
    /// memo, so submitting the union of several experiments' points is
    /// cheap. Results are identical to calling [`SweepEngine::run`]
    /// serially — thread count never changes a number.
    pub fn run_batch(&self, jobs: &[Job]) -> Vec<Arc<RunReport>> {
        let workers = self.threads.min(jobs.len()).max(1);
        let mut batch_span = ule_obs::span("sweep.batch");
        batch_span
            .field("jobs", jobs.len())
            .field("workers", workers);
        ule_obs::progress::add_total(jobs.len() as u64);
        let mut results: Vec<Option<Arc<RunReport>>> = vec![None; jobs.len()];
        if workers == 1 {
            for (slot, &(config, workload)) in results.iter_mut().zip(jobs) {
                *slot = Some(self.run(config, workload));
            }
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<&mut Option<Arc<RunReport>>>> =
                results.iter_mut().map(Mutex::new).collect();
            let worker_loop = |worker: usize| {
                let spawned = Instant::now();
                let mut busy = Duration::ZERO;
                let mut processed = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(config, workload)) = jobs.get(i) else {
                        break;
                    };
                    let t0 = Instant::now();
                    let report = self.run(config, workload);
                    busy += t0.elapsed();
                    processed += 1;
                    **lock(&slots[i]) = Some(report);
                }
                // Per-thread utilization: busy/alive ≈ 1 means
                // the pool width was the bottleneck, not memo
                // contention or in-flight waits.
                ule_obs::obs_event!(
                    "sweep.worker",
                    worker = worker,
                    jobs = processed,
                    busy_us = busy.as_micros() as u64,
                    alive_us = spawned.elapsed().as_micros() as u64,
                );
            };
            std::thread::scope(|scope| {
                let worker_loop = &worker_loop;
                let mut spawned = 0usize;
                for worker in 0..workers {
                    // A spawn failure (thread limit, resource exhaustion)
                    // degrades the pool instead of panicking: already
                    // spawned workers — or, with none, the caller thread
                    // itself — drain the same atomic job queue, so every
                    // slot is still filled and results are unchanged.
                    let spawn = if ule_testkit::threads::spawn_blocked() {
                        Err(std::io::Error::other("spawn blocked by test shim"))
                    } else {
                        std::thread::Builder::new()
                            .name(format!("sweep-{worker}"))
                            .spawn_scoped(scope, move || worker_loop(worker))
                            .map(|_| ())
                    };
                    match spawn {
                        Ok(()) => spawned += 1,
                        Err(err) => {
                            ule_obs::obs_warn_once!(
                                "sweep worker spawn failed; continuing with fewer workers",
                                requested = workers,
                                spawned = spawned,
                                error = err.to_string(),
                            );
                            break;
                        }
                    }
                }
                if spawned == 0 {
                    worker_loop(0);
                }
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch slot filled"))
            .collect()
    }

    // ---- The standard points of the paper's evaluation --------------

    /// Sign+Verify on the standard configuration of (curve, arch).
    pub fn sv(&self, curve: CurveId, arch: Arch) -> Arc<RunReport> {
        self.run(SystemConfig::new(curve, arch), Workload::SignVerify)
    }

    /// Sign+Verify with an instruction cache.
    pub fn sv_cached(&self, curve: CurveId, arch: Arch, cache: CacheConfig) -> Arc<RunReport> {
        self.run(
            SystemConfig::new(curve, arch).with_icache(cache),
            Workload::SignVerify,
        )
    }

    /// Monte with explicit front-end knobs.
    pub fn sv_monte(&self, curve: CurveId, monte: MonteConfig) -> Arc<RunReport> {
        self.run(
            SystemConfig::new(curve, Arch::Monte).with_monte(monte),
            Workload::SignVerify,
        )
    }

    /// Billie scalar multiplication with an explicit digit width.
    pub fn kg_billie(&self, curve: CurveId, digit: usize) -> Arc<RunReport> {
        self.run(
            SystemConfig::new(curve, Arch::Billie).with_billie_digit(digit),
            Workload::ScalarMul,
        )
    }

    /// Baseline with a §7.8 multiplier power variant (timing identical).
    pub fn sv_mult_variant(&self, curve: CurveId, variant: MultVariant) -> RunReport {
        // Variants share cycles; recompute energy with the variant's
        // factor (single source: `MultVariant::factor`).
        let base = self.sv(curve, Arch::Baseline);
        let mut activity = base.activity;
        activity.mult_variant_factor = variant.factor();
        RunReport {
            cycles: base.cycles,
            counters: base.counters,
            raw: base.raw,
            activity,
            energy: ule_energy::report::energy(&activity),
            profile: base.profile.clone(),
        }
    }
}

/// Drop guard that marks an in-flight slot poisoned if the simulation
/// unwinds, so waiters panic instead of deadlocking and later calls
/// retry the point.
struct FlightGuard<'a> {
    engine: &'a SweepEngine,
    key: ConfigKey,
    flight: &'a Arc<InFlight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            lock(&self.engine.shards[self.key.shard()]).remove(&self.key);
            self.flight.publish(FlightState::Poisoned);
        }
    }
}
