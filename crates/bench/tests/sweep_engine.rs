//! Thread-safety, memoization, and determinism tests for `SweepEngine`.
//!
//! Cheap `FieldMul` design points keep the suite fast; the properties
//! under test (pointer-equal memo hits, batch-vs-serial bit-identity,
//! typed-key semantics) do not depend on workload size.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use ule_bench::{ConfigKey, ExperimentId, Job, SweepEngine};
use ule_core::{MultVariant, RunReport, SystemConfig, Workload};
use ule_curves::params::CurveId;
use ule_energy::report::Gating;
use ule_monte::MonteConfig;
use ule_pete::icache::CacheConfig;
use ule_swlib::builder::Arch;

fn fieldmul(curve: CurveId, arch: Arch) -> Job {
    (SystemConfig::new(curve, arch), Workload::FieldMul)
}

fn hash_of<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

#[test]
fn engine_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SweepEngine>();
    assert_send_sync::<ConfigKey>();
    assert_send_sync::<Arc<RunReport>>();
}

#[test]
fn memo_hits_are_pointer_equal() {
    let engine = SweepEngine::new();
    let (cfg, w) = fieldmul(CurveId::P192, Arch::Baseline);
    let a = engine.run(cfg, w);
    let b = engine.run(cfg, w);
    assert!(Arc::ptr_eq(&a, &b), "second run must recall the same Arc");
    assert_eq!(engine.simulations(), 1);
}

#[test]
fn overlapping_keys_across_threads_share_one_simulation() {
    // 8 threads all racing on the same 2 design points: every returned
    // Arc for a given point must be the same allocation, and the engine
    // must have simulated each point exactly once.
    let engine = SweepEngine::new();
    let points = [
        fieldmul(CurveId::P192, Arch::Baseline),
        fieldmul(CurveId::K163, Arch::Baseline),
    ];
    let reports: Vec<Vec<Arc<RunReport>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let engine = &engine;
                let points = &points;
                s.spawn(move || {
                    points
                        .iter()
                        .map(|&(c, w)| engine.run(c, w))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for per_thread in &reports {
        assert!(Arc::ptr_eq(&per_thread[0], &reports[0][0]));
        assert!(Arc::ptr_eq(&per_thread[1], &reports[0][1]));
    }
    assert_eq!(engine.simulations(), 2);
}

#[test]
fn cold_batch_matches_serial_bit_for_bit() {
    let jobs: Vec<Job> = [CurveId::P192, CurveId::P256, CurveId::K163, CurveId::K233]
        .iter()
        .flat_map(|&c| {
            [Arch::Baseline, Arch::IsaExt]
                .into_iter()
                .map(move |a| fieldmul(c, a))
        })
        .collect();

    let serial = SweepEngine::new().with_threads(1);
    let parallel = SweepEngine::new().with_threads(4);
    let a = serial.run_batch(&jobs);
    let b = parallel.run_batch(&jobs);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.as_ref(), y.as_ref(), "reports must be bit-identical");
    }
    assert_eq!(serial.simulations(), parallel.simulations());
}

#[test]
fn batch_results_line_up_with_jobs_and_dedup() {
    let engine = SweepEngine::new();
    let p = fieldmul(CurveId::P192, Arch::Baseline);
    let q = fieldmul(CurveId::K163, Arch::Baseline);
    let jobs = vec![p, q, p, p, q];
    let out = engine.run_batch(&jobs);
    assert_eq!(out.len(), jobs.len());
    assert!(Arc::ptr_eq(&out[0], &out[2]));
    assert!(Arc::ptr_eq(&out[0], &out[3]));
    assert!(Arc::ptr_eq(&out[1], &out[4]));
    assert!(!Arc::ptr_eq(&out[0], &out[1]));
    assert_eq!(engine.simulations(), 2, "duplicates simulate once");
}

#[test]
fn config_key_distinguishes_every_knob() {
    let base = SystemConfig::new(CurveId::K163, Arch::Billie);
    let variants = [
        base,
        SystemConfig::new(CurveId::K233, Arch::Billie),
        SystemConfig::new(CurveId::K163, Arch::Baseline),
        base.with_gating(Gating::Clock),
        base.with_gating(Gating::Power),
        base.with_billie_sram_rf(true),
        base.with_billie_digit(8),
        base.with_mult_variant(MultVariant::OperandScan),
        base.with_icache(CacheConfig::best()),
        base.with_icache(CacheConfig::real(1024, true)),
        base.with_icache(CacheConfig::ideal()),
        base.with_monte(MonteConfig {
            double_buffer: false,
            forwarding: false,
            queue_depth: 4,
        }),
    ];
    for (i, &a) in variants.iter().enumerate() {
        for (j, &b) in variants.iter().enumerate() {
            let ka = ConfigKey::new(a, Workload::FieldMul);
            let kb = ConfigKey::new(b, Workload::FieldMul);
            if i == j {
                assert_eq!(ka, kb);
                assert_eq!(hash_of(&ka), hash_of(&kb), "equal keys must hash equal");
            } else {
                assert_ne!(ka, kb, "knob {i} vs {j} must produce distinct keys");
            }
        }
    }
    // Same config, different workload: distinct key.
    assert_ne!(
        ConfigKey::new(base, Workload::Sign),
        ConfigKey::new(base, Workload::Verify)
    );
}

#[test]
fn workload_changes_key_but_config_reuses_system() {
    let engine = SweepEngine::new();
    let cfg = SystemConfig::new(CurveId::P192, Arch::Baseline);
    let a = engine.run(cfg, Workload::FieldMul);
    let b = engine.run(cfg, Workload::ScalarMul);
    assert!(!Arc::ptr_eq(&a, &b));
    assert_eq!(engine.simulations(), 2);
}

#[test]
fn blocked_worker_spawns_degrade_gracefully() {
    let jobs: Vec<Job> = [CurveId::P192, CurveId::P256, CurveId::K163, CurveId::K233]
        .iter()
        .map(|&c| fieldmul(c, Arch::Baseline))
        .collect();
    let reference = SweepEngine::new().with_threads(1).run_batch(&jobs);

    // Every spawn fails: the batch must fall back to inline execution
    // on the caller thread (spawns happen on the calling thread, so the
    // thread-local shim budget is visible to run_batch).
    let engine = SweepEngine::new().with_threads(4);
    let all_blocked = {
        let _shim = ule_testkit::threads::fail_next_spawns(4);
        engine.run_batch(&jobs)
    };
    assert_eq!(all_blocked.len(), jobs.len());
    for (x, y) in all_blocked.iter().zip(&reference) {
        assert_eq!(
            x.as_ref(),
            y.as_ref(),
            "inline fallback must not change results"
        );
    }

    // Thread limit hit partway through the fan-out: the workers that
    // did spawn drain the whole queue.
    let engine = SweepEngine::new().with_threads(4);
    let partial = {
        let _shim = ule_testkit::threads::fail_spawns_after(1, 3);
        engine.run_batch(&jobs)
    };
    for (x, y) in partial.iter().zip(&reference) {
        assert_eq!(
            x.as_ref(),
            y.as_ref(),
            "degraded pool must not change results"
        );
    }
}

#[test]
fn thread_count_overrides() {
    assert_eq!(SweepEngine::new().with_threads(3).threads(), 3);
    assert!(SweepEngine::new().threads() >= 1);
}

#[test]
fn experiment_ids_round_trip_and_parse() {
    for id in ExperimentId::VARIANTS {
        let parsed: ExperimentId = id.name().parse().unwrap();
        assert_eq!(parsed, id);
        assert_eq!(format!("{id}"), id.name());
    }
    assert!("fig9_99".parse::<ExperimentId>().is_err());
    assert_eq!(ExperimentId::ALL.len(), 23);
    assert!(!ExperimentId::ALL.contains(&ExperimentId::T7_4));
}

#[test]
fn experiment_jobs_cover_the_rendered_points() {
    // Pre-warming an experiment's job list must leave nothing to
    // simulate at render time: run the batch, snapshot the simulation
    // count, render, and require the count unchanged. This pins every
    // `jobs()` list to the design points its renderer actually reads.
    // (FieldMul-cheap it is not — so restrict to the fastest three
    // simulation-backed experiments plus the table-only ones.)
    for id in [
        ExperimentId::Fig7_14,
        ExperimentId::S7_8,
        ExperimentId::Fig7_15,
        ExperimentId::T7_3,
        ExperimentId::T7_5,
    ] {
        let engine = SweepEngine::new();
        engine.run_batch(&id.jobs());
        let warmed = engine.simulations();
        let _ = id.run(&engine);
        assert_eq!(
            engine.simulations(),
            warmed,
            "{id}: renderer simulated points missing from jobs()"
        );
    }
}

#[test]
fn mult_variant_factor_is_single_sourced() {
    // The §7.8 scaling used by the sweep API must be the enum's own
    // `factor()`: Karatsuba (factor 1.0) reproduces the baseline report
    // exactly, and the costlier variants scale monotonically with it.
    let engine = SweepEngine::new();
    let base = engine.sv(CurveId::P192, Arch::Baseline);
    let kara = engine.sv_mult_variant(CurveId::P192, MultVariant::Karatsuba);
    assert_eq!(kara.cycles, base.cycles);
    assert_eq!(kara.energy.total_uj(), base.energy.total_uj());

    let mut last = base.energy.total_uj();
    let mut last_factor = MultVariant::Karatsuba.factor();
    for v in [MultVariant::OperandScan, MultVariant::Parallel] {
        let r = engine.sv_mult_variant(CurveId::P192, v);
        assert_eq!(r.cycles, base.cycles, "§7.8 variants are timing-neutral");
        assert!(v.factor() > last_factor, "{v:?}: factor must increase");
        assert!(
            r.energy.total_uj() > last,
            "{v:?}: a costlier multiplier must cost more energy"
        );
        last = r.energy.total_uj();
        last_factor = v.factor();
    }
}
