//! End-to-end observability tests: call-graph invariants on full
//! workloads across architectures, exact energy conservation, golden
//! export files, and the regression observatory on real registry
//! output.
//!
//! Golden files live in `tests/golden/`; regenerate with
//! `ULE_UPDATE_GOLDEN=1 cargo test -p ule-bench`.

use ule_bench::diff::{diff_metrics, DiffThresholds};
use ule_bench::{metrics_out, Job, SweepEngine};
use ule_core::attr::{self, FlameWeight};
use ule_core::{RunOptions, RunReport, System, SystemConfig, Workload};
use ule_curves::params::CurveId;
use ule_obs::trace_events::{validate_trace_events, TraceEventsBuf};
use ule_pete::icache::CacheConfig;
use ule_pete::profile::ActivitySlice;
use ule_swlib::builder::Arch;

fn check_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("ULE_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected =
        std::fs::read_to_string(&path).expect("golden file (regenerate with ULE_UPDATE_GOLDEN=1)");
    assert_eq!(
        actual, expected,
        "{name} drifted (regenerate with ULE_UPDATE_GOLDEN=1 if intended)"
    );
}

fn slice_sum<'a>(slices: impl Iterator<Item = &'a ActivitySlice>) -> ActivitySlice {
    let mut total = ActivitySlice::default();
    for s in slices {
        total.accumulate(s);
    }
    total
}

/// The full conservation law on one profiled report: flat buckets and
/// call-tree nodes each account for every cycle, instruction, and
/// memory/coprocessor event the simulator counted — exactly.
fn assert_conservation(label: &str, rep: &RunReport) {
    let p = rep.profile.as_ref().expect("profiled run");

    // Cycles: flat buckets == call-tree exclusive == root inclusive ==
    // headline total.
    assert_eq!(p.total_cycles(), rep.cycles, "{label}: flat buckets");
    assert_eq!(p.calls.total_cycles(), rep.cycles, "{label}: exclusive");
    assert_eq!(
        p.calls.root_inclusive_cycles(),
        rep.cycles,
        "{label}: root inclusive"
    );
    assert_eq!(p.total_instructions(), rep.counters.instructions, "{label}");

    // Activity: both views sum to the raw stats, counter by counter.
    for (view, sum) in [
        ("buckets", slice_sum(p.routines.iter().map(|r| &r.activity))),
        (
            "nodes",
            slice_sum(p.calls.nodes.iter().map(|n| &n.activity)),
        ),
    ] {
        let ActivitySlice {
            rom_reads,
            rom_line_reads,
            ram_reads,
            ram_writes,
            icache_accesses,
            icache_misses,
            cop_mul_ops,
            cop_ls_ops,
        } = sum;
        let raw = &rep.raw;
        assert_eq!(rom_reads, raw.rom.reads, "{label}/{view}: rom reads");
        // raw.rom.line_reads already folds the cache's fill traffic in.
        assert_eq!(
            rom_line_reads, raw.rom.line_reads,
            "{label}/{view}: rom lines"
        );
        assert_eq!(ram_reads, raw.ram.reads, "{label}/{view}: ram reads");
        assert_eq!(ram_writes, raw.ram.writes, "{label}/{view}: ram writes");
        let ic = raw.icache.unwrap_or_default();
        assert_eq!(icache_accesses, ic.accesses, "{label}/{view}: ic accesses");
        assert_eq!(icache_misses, ic.misses, "{label}/{view}: ic misses");
        assert_eq!(cop_mul_ops, raw.cop.mul_ops, "{label}/{view}: cop muls");
        assert_eq!(cop_ls_ops, raw.cop.ls_ops, "{label}/{view}: cop ls");
    }

    // Energy: attribution reproduces the headline total bit-for-bit.
    let att = rep.energy.attribute(&attr::routine_activities(p));
    assert_eq!(
        att.total_uj().to_bits(),
        rep.energy.total_uj().to_bits(),
        "{label}: attributed energy must conserve exactly"
    );
}

/// Full ECDSA sign, profiled, on every architecture class: the plain
/// core, the cached core, and both accelerators (which add DMA traffic
/// and coprocessor ops the slices must still account for).
#[test]
fn call_graph_conserves_on_every_architecture() {
    let configs = [
        (
            "p192-baseline",
            SystemConfig::new(CurveId::P192, Arch::Baseline),
        ),
        (
            "p192-isaext-ic",
            SystemConfig::new(CurveId::P192, Arch::IsaExt).with_icache(CacheConfig::best()),
        ),
        ("p192-monte", SystemConfig::new(CurveId::P192, Arch::Monte)),
        (
            "k163-billie",
            SystemConfig::new(CurveId::K163, Arch::Billie),
        ),
    ];
    for (label, cfg) in configs {
        let rep = System::new(cfg).run_with(RunOptions::new(Workload::Sign).profiled());
        assert_conservation(label, &rep);
    }
}

/// The export pair is a pure function of the (deterministic) profile:
/// two runs of the same design point produce byte-identical folded
/// stacks and trace events, pinned against golden files.
#[test]
fn exports_are_deterministic_and_match_golden() {
    let cfg = SystemConfig::new(CurveId::P192, Arch::Baseline);
    let render = || {
        let rep = System::new(cfg).run_with(RunOptions::new(Workload::FieldMul).profiled());
        let p = rep.profile.as_ref().unwrap();
        let stacks = attr::folded_stacks(
            p,
            &rep.energy,
            FlameWeight::Cycles,
            "P-192/baseline/field_mul",
        );
        let folded = ule_obs::flame::to_folded(&stacks);
        let mut buf = TraceEventsBuf::new();
        attr::trace_events_into(&mut buf, 1, "P-192/baseline/field_mul", p);
        (folded, buf.finish())
    };
    let (folded, trace) = render();
    let (folded2, trace2) = render();
    assert_eq!(folded, folded2, "folded output must be deterministic");
    assert_eq!(trace, trace2, "trace output must be deterministic");

    // Both must satisfy their own consumers.
    let stacks = ule_obs::flame::parse_folded(&folded).expect("folded parses");
    assert!(!stacks.is_empty());
    let stats = validate_trace_events(&trace).expect("trace validates");
    assert_eq!(stats.complete_events, stacks.len());

    check_golden("fieldmul_p192.folded", &folded);
    check_golden("fieldmul_p192_trace.json", &trace);
}

/// The observatory on real `--metrics-out` output: a fresh sweep diffs
/// clean against itself, and a doctored cycle count (the way a silent
/// timing regression would surface) is caught with exit code 1.
#[test]
fn diff_catches_doctored_cycles_in_real_registry_output() {
    let engine = SweepEngine::new().with_threads(1);
    let jobs: Vec<Job> = vec![
        (
            SystemConfig::new(CurveId::P192, Arch::Baseline),
            Workload::FieldMul,
        ),
        (
            SystemConfig::new(CurveId::P192, Arch::IsaExt),
            Workload::FieldMul,
        ),
    ];
    let reports = engine.run_batch(&jobs);
    let jsonl = metrics_out::metrics_registry(&jobs, &reports, &engine).to_jsonl();

    let clean = diff_metrics("base", &jsonl, "fresh", &jsonl, DiffThresholds::default()).unwrap();
    assert!(clean.is_clean());
    assert_eq!(clean.exit_code(), 0);
    assert_eq!(clean.matched.len(), 2);

    // Perturb the first design point's headline cycles by one.
    let cycles = reports[0].cycles;
    let doctored = jsonl.replace(
        &format!("\"cycles\":{cycles}"),
        &format!("\"cycles\":{}", cycles + 1),
    );
    assert_ne!(doctored, jsonl, "the perturbation must land");
    let drift = diff_metrics(
        "base",
        &jsonl,
        "doctored",
        &doctored,
        DiffThresholds::default(),
    )
    .unwrap();
    assert!(!drift.is_clean());
    assert_eq!(drift.exit_code(), 1);
    assert_eq!(drift.regressions().count(), 1);
    let p = drift.regressions().next().unwrap();
    assert_eq!(p.cycles, (cycles, cycles + 1));
}
