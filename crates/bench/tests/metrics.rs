//! Metrics-schema and profiler-attribution tests.
//!
//! The golden file `tests/golden/metrics_schema.txt` pins the exact key
//! set (and order) of every record kind `--metrics-out` emits. A
//! failing schema test means a key was renamed, removed, or reordered —
//! bump `ule_obs::record::SCHEMA_VERSION` for renames/removals, then
//! regenerate with `ULE_UPDATE_GOLDEN=1 cargo test -p ule-bench`.

use ule_bench::{metrics_out, ConfigKey, Job, SweepEngine};
use ule_core::metrics::design_point_record;
use ule_core::{RawStats, RunOptions, RunReport, System, SystemConfig, Workload};
use ule_curves::params::CurveId;
use ule_energy::{Activity, EnergyBreakdown};
use ule_obs::json::is_valid;
use ule_obs::record::SCHEMA_VERSION;
use ule_obs::Value;
use ule_pete::cop::CopStats;
use ule_pete::cpu::Counters;
use ule_pete::icache::CacheStats;
use ule_pete::mem::MemStats;
use ule_swlib::builder::Arch;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics_schema.txt")
}

/// Golden-file test: the flat key list of every record kind, pinned.
#[test]
fn metrics_schema_matches_golden() {
    let engine = SweepEngine::new().with_threads(1);
    let jobs: Vec<Job> = vec![(
        SystemConfig::new(CurveId::P192, Arch::Baseline),
        Workload::FieldMul,
    )];
    let reports = engine.run_batch(&jobs);
    let reg = metrics_out::metrics_registry(&jobs, &reports, &engine);
    assert_eq!(reg.records().len(), 2, "one design point + one summary");

    let mut actual = String::new();
    for rec in reg.records() {
        let Some(Value::Str(kind)) = rec.get("record") else {
            panic!("record without a kind");
        };
        assert_eq!(
            rec.get("schema_version"),
            Some(&Value::U64(SCHEMA_VERSION)),
            "record {kind} carries the schema version"
        );
        let line = rec.to_json();
        assert!(is_valid(&line), "invalid JSON: {line}");
        actual.push_str(&format!("[{kind}]\n"));
        for key in rec.keys() {
            actual.push_str(key);
            actual.push('\n');
        }
        actual.push('\n');
    }

    // The explorer journal's record kinds (new in v3), pinned alongside
    // the sweep records so `frontier`/`dse_summary` key drift is caught
    // by the same golden file.
    let objectives = ule_dse::Objectives {
        cycles: 1,
        energy_uj: 2.0,
        area_kge: 3.0,
    };
    let frontier =
        ule_dse::journal::frontier_record("smoke", 0, &jobs[0].0, jobs[0].1, &objectives);
    let summary = ule_dse::journal::dse_summary_record("smoke", jobs[0].1, "grid", 0, 1, 0, 1, 1);
    for rec in [&frontier, &summary] {
        let Some(Value::Str(kind)) = rec.get("record") else {
            panic!("record without a kind");
        };
        assert_eq!(
            rec.get("schema_version"),
            Some(&Value::U64(SCHEMA_VERSION)),
            "record {kind} carries the schema version"
        );
        let line = rec.to_json();
        assert!(is_valid(&line), "invalid JSON: {line}");
        actual.push_str(&format!("[{kind}]\n"));
        for key in rec.keys() {
            actual.push_str(key);
            actual.push('\n');
        }
        actual.push('\n');
    }

    // The service layer's record kinds (v4, plus the v5 latency/SLA
    // kinds), pinned the same way so `serve_point`/`serve_summary`/
    // `serve_frontier`/`serve_latency`/`sla_summary` key drift is
    // caught here too.
    let serve_runs = {
        let reference = ule_serve::run_service(&ule_serve::ServeConfig {
            requests: 8,
            batch_size: 1,
            shards: 1,
            seed: 5,
            ..ule_serve::ServeConfig::new(CurveId::P192)
        });
        let batched = ule_serve::run_service(&ule_serve::ServeConfig {
            batch_size: 4,
            ..reference.config
        });
        let scale = ule_serve::metrics::op_scale(&batched, &reference);
        vec![(reference, 1.0), (batched, scale)]
    };
    let costs = ule_serve::metrics::SimCosts {
        arch: "isa_ext".into(),
        cycles: 400_000,
        energy_uj: 30.0,
        area_kge: 14.0,
    };
    let point = ule_serve::metrics::serve_point_record(&serve_runs[0].0, 1.0, &costs);
    let summary = ule_serve::metrics::serve_summary_record(&serve_runs);
    let (_, frontier_recs) =
        ule_serve::metrics::frontier_records(std::slice::from_ref(&costs), &serve_runs);
    let first_frontier = frontier_recs.first().expect("non-empty serve frontier");
    // Fleet and per-shard serve_latency records share one key set, so
    // pinning the fleet record (always first) pins both.
    let latency_recs = ule_serve::metrics::serve_latency_records(&serve_runs[0].0);
    let latency = latency_recs.first().expect("fleet latency record");
    let sla = ule_serve::metrics::sla_summary_record(&serve_runs[0].0, 1.0, &costs);
    for rec in [&point, &summary, first_frontier, latency, &sla] {
        let Some(Value::Str(kind)) = rec.get("record") else {
            panic!("record without a kind");
        };
        assert_eq!(
            rec.get("schema_version"),
            Some(&Value::U64(SCHEMA_VERSION)),
            "record {kind} carries the schema version"
        );
        let line = rec.to_json();
        assert!(is_valid(&line), "invalid JSON: {line}");
        actual.push_str(&format!("[{kind}]\n"));
        for key in rec.keys() {
            actual.push_str(key);
            actual.push('\n');
        }
        actual.push('\n');
    }

    // The one nested field: the key set of a v2 `profile` entry, pinned
    // from a real profiled run.
    let profiled = System::new(jobs[0].0).run_with(RunOptions::new(jobs[0].1).profiled());
    let rec = design_point_record(&jobs[0].0, jobs[0].1, &profiled);
    let Some(Value::Raw(profile_json)) = rec.get("profile") else {
        panic!("profiled record must carry a profile field");
    };
    let doc = ule_obs::json::parse(profile_json).expect("profile JSON parses");
    let first = doc.as_array().and_then(|a| a.first()).expect("non-empty");
    actual.push_str("[design_point.profile[]]\n");
    for (key, _) in first.as_object().expect("profile entries are objects") {
        actual.push_str(key);
        actual.push('\n');
    }
    actual.push('\n');

    let path = golden_path();
    if std::env::var_os("ULE_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .expect("golden schema file (regenerate with ULE_UPDATE_GOLDEN=1)");
    assert_eq!(
        actual, expected,
        "metrics schema drifted: renames/removals need a SCHEMA_VERSION bump, \
         then regenerate with ULE_UPDATE_GOLDEN=1 cargo test -p ule-bench"
    );
}

/// Round-trip: every `Counters`/`MemStats`/`CacheStats`/`CopStats`
/// field, filled with a unique sentinel, must surface in the record
/// under its own key (no silently-dropped and no aliased counters).
#[test]
fn every_counter_field_reaches_the_record() {
    let counters = Counters {
        instructions: 101,
        cycles: 102,
        stall_cycles: 103,
        load_use_stalls: 104,
        branches: 105,
        mispredicts: 106,
        mult_active_cycles: 107,
        mult_stalls: 108,
        mult_ops: 109,
        div_ops: 110,
        cop2_ops: 111,
        cop2_stalls: 112,
        fetches: 113,
    };
    let raw = RawStats {
        rom: MemStats {
            reads: 201,
            writes: 202,
            line_reads: 203,
        },
        ram: MemStats {
            reads: 204,
            writes: 205,
            line_reads: 206,
        },
        icache: Some(CacheStats {
            accesses: 301,
            misses: 302,
            prefetch_hits: 303,
            rom_line_reads: 304,
            fills: 305,
            stall_cycles: 306,
        }),
        cop: CopStats {
            busy_cycles: 401,
            dma_cycles: 402,
            instructions: 403,
            ram_reads: 404,
            ram_writes: 405,
            ucode_reads: 406,
            mul_ops: 407,
            ls_ops: 408,
        },
    };
    let report = RunReport {
        cycles: 102,
        counters,
        raw,
        activity: Activity::default(),
        energy: EnergyBreakdown::default(),
        profile: None,
    };
    let cfg = SystemConfig::new(CurveId::P192, Arch::Baseline);
    let rec = design_point_record(&cfg, Workload::Sign, &report);

    let expected: &[(&str, u64)] = &[
        ("pete_instructions", 101),
        ("pete_cycles", 102),
        ("pete_stall_cycles", 103),
        ("pete_load_use_stalls", 104),
        ("pete_branches", 105),
        ("pete_mispredicts", 106),
        ("pete_mult_active_cycles", 107),
        ("pete_mult_stalls", 108),
        ("pete_mult_ops", 109),
        ("pete_div_ops", 110),
        ("pete_cop2_ops", 111),
        ("pete_cop2_stalls", 112),
        ("pete_fetches", 113),
        ("rom_reads", 201),
        ("rom_writes", 202),
        ("rom_line_reads", 203),
        ("ram_reads", 204),
        ("ram_writes", 205),
        ("ram_line_reads", 206),
        ("icache_accesses", 301),
        ("icache_misses", 302),
        ("icache_prefetch_hits", 303),
        ("icache_rom_line_reads", 304),
        ("icache_fills", 305),
        ("icache_stall_cycles", 306),
        ("cop_busy_cycles", 401),
        ("cop_dma_cycles", 402),
        ("cop_instructions", 403),
        ("cop_ram_reads", 404),
        ("cop_ram_writes", 405),
        ("cop_ucode_reads", 406),
        ("cop_mul_ops", 407),
        ("cop_ls_ops", 408),
    ];
    for &(key, sentinel) in expected {
        assert_eq!(
            rec.get(key),
            Some(&Value::U64(sentinel)),
            "counter sentinel {sentinel} must surface as {key}"
        );
    }
    assert!(is_valid(&rec.to_json()));
}

/// Profiler attribution on a real workload: one P-192 Sign on the
/// baseline — routine buckets must sum *exactly* to total cycles and
/// the field-arithmetic routines must be non-empty.
#[test]
fn profiler_buckets_sum_to_total_cycles_on_p192_sign() {
    let sys = System::new(SystemConfig::new(CurveId::P192, Arch::Baseline));
    let report = sys.run_with(RunOptions::new(Workload::Sign).profiled());
    let profile = report.profile.as_ref().expect("profiled run");

    assert_eq!(
        profile.total_cycles(),
        report.cycles,
        "buckets must account for every cycle"
    );
    assert_eq!(profile.total_instructions(), report.counters.instructions);

    let fmul = profile.find("fmul").expect("field-mult routine present");
    assert!(fmul.cycles > 0, "fp_mul bucket must be non-empty");
    assert!(fmul.instructions > 0);
    let fred = profile.find("fred").expect("reduction routine present");
    assert!(fred.cycles > 0, "reduction bucket must be non-empty");

    // The profiled metrics record carries the breakdown as JSON.
    let cfg = SystemConfig::new(CurveId::P192, Arch::Baseline);
    let rec = design_point_record(&cfg, Workload::Sign, &report);
    let Some(Value::Raw(profile_json)) = rec.get("profile") else {
        panic!("profiled record must carry a profile field");
    };
    assert!(is_valid(profile_json));
    assert!(profile_json.contains("\"fmul\""));
}

/// A profiled report is numerically identical to an unprofiled one —
/// profiling observes, it never perturbs the simulation.
#[test]
fn profiling_does_not_change_results() {
    let sys = System::new(SystemConfig::new(CurveId::P192, Arch::Baseline));
    let plain = sys.run_with(RunOptions::new(Workload::FieldMul));
    let profiled = sys.run_with(RunOptions::new(Workload::FieldMul).profiled());
    assert_eq!(plain.cycles, profiled.cycles);
    assert_eq!(plain.counters, profiled.counters);
    assert_eq!(plain.raw, profiled.raw);
    assert_eq!(plain.energy, profiled.energy);
    assert!(plain.profile.is_none());
    assert!(profiled.profile.is_some());
}

/// Engine counters: a repeated job is a memo hit, not a re-simulation,
/// and cold jobs get exactly one wall-clock timing entry.
#[test]
fn engine_stats_count_memo_hits_and_timings() {
    let engine = SweepEngine::new().with_threads(1);
    let cfg = SystemConfig::new(CurveId::P192, Arch::Baseline);
    engine.run(cfg, Workload::FieldMul);
    engine.run(cfg, Workload::FieldMul);
    let stats = engine.stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.memo_hits, 1);
    assert_eq!(stats.inflight_waits, 0);
    assert_eq!(stats.simulations, 1);

    let timings = engine.job_timings();
    assert_eq!(timings.len(), 1, "one timing entry per cold simulation");
    assert_eq!(timings[0].0, ConfigKey::new(cfg, Workload::FieldMul));

    let rec = metrics_out::engine_summary_record(&engine);
    assert!(is_valid(&rec.to_json()));
    assert_eq!(rec.get("requests"), Some(&Value::U64(2)));
    assert_eq!(rec.get("memo_hits"), Some(&Value::U64(1)));
    assert_eq!(rec.get("simulations"), Some(&Value::U64(1)));
}

/// `--metrics-out` plumbing: the registry deduplicates repeated design
/// points and every line is valid JSON.
#[test]
fn registry_dedupes_and_emits_valid_jsonl() {
    let engine = SweepEngine::new().with_threads(1);
    let job: Job = (
        SystemConfig::new(CurveId::P192, Arch::Baseline),
        Workload::FieldMul,
    );
    let jobs = vec![job, job];
    let reports = engine.run_batch(&jobs);
    let reg = metrics_out::metrics_registry(&jobs, &reports, &engine);
    // 2 submitted, 1 distinct + 1 engine summary.
    assert_eq!(reg.records().len(), 2);
    for line in reg.to_jsonl().lines() {
        assert!(is_valid(line), "{line}");
    }
}
