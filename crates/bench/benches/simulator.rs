//! Benchmarks of the *simulator itself* — how fast the cycle-level
//! model executes simulated work (useful when sizing sweeps). Uses the
//! workspace's dependency-free timing harness (`ule_testkit::bench`);
//! run with `cargo bench -p ule-bench`.

use std::hint::black_box;
use ule_curves::params::CurveId;
use ule_pete::cpu::{Machine, MachineConfig};
use ule_swlib::builder::{build_suite, Arch};
use ule_swlib::harness::{run_entry_expect, write_buf};
use ule_testkit::bench;

fn main() {
    let curve = CurveId::P192.curve();
    let suite = build_suite(&curve, Arch::Baseline);
    let a = [
        0x1234_5678u32,
        0x9abc_def0,
        0x0f0f_0f0f,
        0x5555_aaaa,
        0x0123_4567,
        0x7654_3210,
    ];
    bench("simulator/p192_field_mul_program", 100, || {
        let mut m = Machine::new(&suite.program, MachineConfig::baseline());
        write_buf(&mut m, &suite.program, "arg_qx", &a);
        write_buf(&mut m, &suite.program, "arg_qy", &a);
        run_entry_expect(&mut m, &suite.program, "main_fmul", 10_000_000);
        black_box(m.cycles());
    });
    let ext = build_suite(&curve, Arch::IsaExt);
    bench("simulator/p192_scalar_mul_program_ext", 5, || {
        let mut m = Machine::new(&ext.program, MachineConfig::isa_ext());
        write_buf(&mut m, &ext.program, "arg_k", &a);
        run_entry_expect(&mut m, &ext.program, "main_scalar_mul", u64::MAX / 2);
        black_box(m.cycles());
    });
    bench("simulator/suite_build_p192_baseline", 20, || {
        black_box(build_suite(&curve, Arch::Baseline));
    });
}
