//! Criterion micro-benchmarks of the host reference primitives — the
//! arithmetic foundation every differential test and simulation leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ule_curves::params::CurveId;
use ule_curves::scalar;
use ule_curves::sha256::sha256;
use ule_mpmath::f2m::BinaryField;
use ule_mpmath::fp::PrimeField;
use ule_mpmath::mont::Montgomery;
use ule_mpmath::mp::Mp;
use ule_mpmath::nist::{NistBinary, NistPrime};

fn bench_fields(c: &mut Criterion) {
    let mut g = c.benchmark_group("field");
    g.sample_size(20);
    let f = PrimeField::nist(NistPrime::P256);
    let a = f.from_mp(&f.modulus().sub(&Mp::from_u64(12345)));
    let b = f.from_mp(&f.modulus().sub(&Mp::from_u64(98765)));
    g.bench_function("p256_mul", |bench| {
        bench.iter(|| f.mul(black_box(&a), black_box(&b)))
    });
    g.bench_function("p256_inv_eea", |bench| bench.iter(|| f.inv(black_box(&a))));
    let bf = BinaryField::nist(NistBinary::B283);
    let x = bf.from_mp(&Mp::from_hex("deadbeefcafebabe0123456789abcdef").unwrap());
    let y = bf.from_mp(&Mp::from_hex("fedcba9876543210aa55aa55aa55aa55").unwrap());
    g.bench_function("b283_mul_clmul", |bench| {
        bench.iter(|| bf.mul_clmul(black_box(&x), black_box(&y)))
    });
    g.bench_function("b283_mul_comb", |bench| {
        bench.iter(|| bf.mul_comb(black_box(&x), black_box(&y)))
    });
    g.bench_function("b283_sqr", |bench| bench.iter(|| bf.sqr(black_box(&x))));
    let mont = Montgomery::new(&NistPrime::P256.modulus());
    let am = mont.to_mont(&a.limbs().to_vec());
    let bm = mont.to_mont(&b.limbs().to_vec());
    g.bench_function("p256_cios_montmul", |bench| {
        bench.iter(|| mont.mul(black_box(&am), black_box(&bm)))
    });
    g.finish();
}

fn bench_curves(c: &mut Criterion) {
    let mut g = c.benchmark_group("curve");
    g.sample_size(10);
    let curve = CurveId::P256.curve();
    let pc = curve.prime();
    let gp = pc.generator();
    let jac = pc.jac_from_affine(&gp);
    g.bench_function("p256_jac_double", |bench| {
        bench.iter(|| pc.jac_double(black_box(&jac)))
    });
    g.bench_function("p256_jac_add_affine", |bench| {
        bench.iter(|| pc.jac_add_affine(black_box(&jac), black_box(&gp)))
    });
    let s = Mp::from_hex("123456789abcdef0fedcba9876543210deadbeef").unwrap();
    g.bench_function("p256_scalar_mul_window", |bench| {
        bench.iter(|| scalar::mul_window(pc, black_box(&s), &gp))
    });
    let kc = CurveId::K163.curve();
    let bc = kc.binary();
    let gb = bc.generator();
    g.bench_function("k163_scalar_mul_window", |bench| {
        bench.iter(|| scalar::mul_window(bc, black_box(&s), &gb))
    });
    g.finish();
}

fn bench_sha(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    g.sample_size(30);
    let data = vec![0xa5u8; 1024];
    g.bench_function("1KiB", |bench| bench.iter(|| sha256(black_box(&data))));
    g.finish();
}

criterion_group!(benches, bench_fields, bench_curves, bench_sha);
criterion_main!(benches);
