//! Micro-benchmarks of the host reference primitives — the arithmetic
//! foundation every differential test and simulation leans on. Uses the
//! workspace's dependency-free timing harness (`ule_testkit::bench`);
//! run with `cargo bench -p ule-bench`.

use std::hint::black_box;
use ule_curves::params::CurveId;
use ule_curves::scalar;
use ule_curves::sha256::sha256;
use ule_mpmath::f2m::BinaryField;
use ule_mpmath::fp::PrimeField;
use ule_mpmath::mont::Montgomery;
use ule_mpmath::mp::Mp;
use ule_mpmath::nist::{NistBinary, NistPrime};
use ule_testkit::bench;

fn bench_fields() {
    let f = PrimeField::nist(NistPrime::P256);
    let a = f.from_mp(&f.modulus().sub(&Mp::from_u64(12345)));
    let b = f.from_mp(&f.modulus().sub(&Mp::from_u64(98765)));
    bench("field/p256_mul", 10_000, || {
        black_box(f.mul(black_box(&a), black_box(&b)));
    });
    bench("field/p256_inv_eea", 1_000, || {
        black_box(f.inv(black_box(&a)));
    });
    let bf = BinaryField::nist(NistBinary::B283);
    let x = bf.from_mp(&Mp::from_hex("deadbeefcafebabe0123456789abcdef").unwrap());
    let y = bf.from_mp(&Mp::from_hex("fedcba9876543210aa55aa55aa55aa55").unwrap());
    bench("field/b283_mul_clmul", 10_000, || {
        black_box(bf.mul_clmul(black_box(&x), black_box(&y)));
    });
    bench("field/b283_mul_comb", 10_000, || {
        black_box(bf.mul_comb(black_box(&x), black_box(&y)));
    });
    bench("field/b283_sqr", 10_000, || {
        black_box(bf.sqr(black_box(&x)));
    });
    let mont = Montgomery::new(&NistPrime::P256.modulus());
    let am = mont.to_mont(a.limbs());
    let bm = mont.to_mont(b.limbs());
    bench("field/p256_cios_montmul", 10_000, || {
        black_box(mont.mul(black_box(&am), black_box(&bm)));
    });
}

fn bench_curves() {
    let curve = CurveId::P256.curve();
    let pc = curve.prime();
    let gp = pc.generator();
    let jac = pc.jac_from_affine(&gp);
    bench("curve/p256_jac_double", 10_000, || {
        black_box(pc.jac_double(black_box(&jac)));
    });
    bench("curve/p256_jac_add_affine", 10_000, || {
        black_box(pc.jac_add_affine(black_box(&jac), black_box(&gp)));
    });
    let s = Mp::from_hex("123456789abcdef0fedcba9876543210deadbeef").unwrap();
    bench("curve/p256_scalar_mul_window", 100, || {
        black_box(scalar::mul_window(pc, black_box(&s), &gp));
    });
    let kc = CurveId::K163.curve();
    let bc = kc.binary();
    let gb = bc.generator();
    bench("curve/k163_scalar_mul_window", 100, || {
        black_box(scalar::mul_window(bc, black_box(&s), &gb));
    });
}

fn bench_sha() {
    let data = vec![0xa5u8; 1024];
    bench("sha256/1KiB", 10_000, || {
        black_box(sha256(black_box(&data)));
    });
}

fn main() {
    bench_fields();
    bench_curves();
    bench_sha();
}
