//! A two-pass macro-assembler producing ROM images for the simulator.
//!
//! The software suite of `ule-swlib` is written against this builder the
//! way the paper's C++ suite was written against GCC/Binutils (§4.3): the
//! assembler resolves labels, expands the handful of pseudo-instructions
//! (`li`, `la`, `move`, `b`), lays out a read-only data section after the
//! text, and reserves named RAM buffers.
//!
//! Memory map (matching the baseline architecture of Fig 5.1):
//!
//! * `0x0000_0000` — 256 KB program ROM: text, then read-only data;
//! * `0x1000_0000` — 16 KB RAM: named buffers from the bottom, stack from
//!   the top.
//!
//! Branches have an architectural **delay slot**; the assembler does *not*
//! insert `nop`s automatically — callers either schedule a useful
//! instruction after every branch or use the `*_ds` helpers.

use crate::instr::Instr;
use crate::reg::Reg;
use std::collections::HashMap;

/// Base address of the program ROM.
pub const ROM_BASE: u32 = 0x0000_0000;
/// Size of the program ROM in bytes (256 KB, §5.1).
pub const ROM_SIZE: u32 = 256 * 1024;
/// Base address of the data RAM.
pub const RAM_BASE: u32 = 0x1000_0000;
/// Size of the data RAM in bytes (16 KB, §5.1).
pub const RAM_SIZE: u32 = 16 * 1024;

/// Errors produced at link time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LinkError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// Text + data exceed the ROM.
    RomOverflow {
        /// Bytes required.
        need: u32,
    },
    /// Named buffers exceed the RAM.
    RamOverflow {
        /// Bytes required.
        need: u32,
    },
    /// A branch target is out of the 16-bit offset range.
    BranchOutOfRange(String),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            LinkError::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
            LinkError::RomOverflow { need } => write!(f, "ROM overflow: need {need} bytes"),
            LinkError::RamOverflow { need } => write!(f, "RAM overflow: need {need} bytes"),
            LinkError::BranchOutOfRange(l) => write!(f, "branch to {l:?} out of range"),
        }
    }
}

impl std::error::Error for LinkError {}

#[derive(Clone, Debug)]
enum Fixup {
    /// Patch the 16-bit branch offset of the instruction at `index`.
    Branch { index: usize, label: String },
    /// Patch the 26-bit jump target.
    Jump { index: usize, label: String },
    /// Patch a `lui` with the high half of a symbol address.
    Hi16 { index: usize, label: String },
    /// Patch an `ori` with the low half of a symbol address.
    Lo16 { index: usize, label: String },
}

/// A linked program image.
#[derive(Clone, Debug)]
pub struct Program {
    rom: Vec<u32>,
    entry: u32,
    text_words: usize,
    symbols: HashMap<String, u32>,
    ram_symbols: HashMap<String, u32>,
    ram_reserved: u32,
}

impl Program {
    /// The ROM image as 32-bit words (text followed by read-only data).
    pub fn rom(&self) -> &[u32] {
        &self.rom
    }

    /// Entry-point address.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Number of text (instruction) words at the start of the ROM.
    pub fn text_words(&self) -> usize {
        self.text_words
    }

    /// Address of a text or data label.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Address of a named RAM buffer.
    pub fn ram_symbol(&self, name: &str) -> Option<u32> {
        self.ram_symbols.get(name).copied()
    }

    /// The text-section labels as a deterministic routine table:
    /// `(start_address, name)` sorted by address, with aliases that
    /// share an address (e.g. a label defined as a pure jump to the
    /// next label) merged into one `"a/b"` entry. Data labels (at or
    /// past the end of text) are excluded. This is the symbol source
    /// for the per-routine cycle profiler in `ule-pete`.
    pub fn text_symbols(&self) -> Vec<(u32, String)> {
        let text_end = (self.text_words as u32) * 4;
        let mut syms: Vec<(u32, &str)> = self
            .symbols
            .iter()
            .filter(|&(_, &addr)| addr < text_end)
            .map(|(name, &addr)| (addr, name.as_str()))
            .collect();
        // HashMap iteration order is nondeterministic; sort by
        // (addr, name) so alias merge order is stable run to run.
        syms.sort_unstable();
        let mut out: Vec<(u32, String)> = Vec::with_capacity(syms.len());
        for (addr, name) in syms {
            match out.last_mut() {
                Some((prev, merged)) if *prev == addr => {
                    merged.push('/');
                    merged.push_str(name);
                }
                _ => out.push((addr, name.to_owned())),
            }
        }
        out
    }

    /// Bytes of RAM reserved for named buffers (the stack grows down from
    /// the top of RAM toward them).
    pub fn ram_reserved(&self) -> u32 {
        self.ram_reserved
    }

    /// Disassembles the text section (for debugging).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, &w) in self.rom.iter().take(self.text_words).enumerate() {
            let addr = ROM_BASE + (i as u32) * 4;
            match Instr::decode(w) {
                Ok(ins) => out.push_str(&format!("{addr:08x}: {ins}\n")),
                Err(_) => out.push_str(&format!("{addr:08x}: .word {w:#010x}\n")),
            }
        }
        out
    }
}

/// The assembler/builder.
///
/// # Example
///
/// ```
/// use ule_isa::asm::Asm;
/// use ule_isa::reg::Reg;
///
/// let mut a = Asm::new();
/// a.label("entry");
/// a.li(Reg::T0, 5);
/// a.label("loop");
/// a.addiu(Reg::T0, Reg::T0, -1);
/// a.bne(Reg::T0, Reg::ZERO, "loop");
/// a.nop(); // delay slot
/// a.brk(0);
/// let program = a.link("entry").unwrap();
/// assert_eq!(program.entry(), program.symbol("entry").unwrap());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Asm {
    text: Vec<Instr>,
    fixups: Vec<Fixup>,
    data: Vec<u32>,
    text_labels: HashMap<String, usize>,
    data_labels: HashMap<String, usize>,
    ram_symbols: HashMap<String, u32>,
    ram_cursor: u32,
    duplicate: Option<String>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True if no instructions were emitted.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instr) {
        self.text.push(i);
    }

    /// Defines a text label at the current position.
    pub fn label(&mut self, name: &str) {
        if self
            .text_labels
            .insert(name.to_owned(), self.text.len())
            .is_some()
            || self.data_labels.contains_key(name)
        {
            self.duplicate.get_or_insert_with(|| name.to_owned());
        }
    }

    /// Defines a data label at the current data position.
    pub fn data_label(&mut self, name: &str) {
        if self
            .data_labels
            .insert(name.to_owned(), self.data.len())
            .is_some()
            || self.text_labels.contains_key(name)
        {
            self.duplicate.get_or_insert_with(|| name.to_owned());
        }
    }

    /// Appends one read-only data word.
    pub fn word(&mut self, w: u32) {
        self.data.push(w);
    }

    /// Appends read-only data words.
    pub fn words(&mut self, ws: &[u32]) {
        self.data.extend_from_slice(ws);
    }

    /// Reserves a named RAM buffer of `words` words; returns its address.
    pub fn ram_alloc(&mut self, name: &str, words: u32) -> u32 {
        let addr = RAM_BASE + self.ram_cursor;
        if self.ram_symbols.insert(name.to_owned(), addr).is_some() {
            self.duplicate.get_or_insert_with(|| name.to_owned());
        }
        self.ram_cursor += words * 4;
        addr
    }

    /// Address of an already reserved RAM buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer was never reserved.
    pub fn ram_addr(&self, name: &str) -> u32 {
        *self
            .ram_symbols
            .get(name)
            .unwrap_or_else(|| panic!("RAM buffer {name:?} not reserved"))
    }

    // --- pseudo-instructions ---

    /// `nop`.
    pub fn nop(&mut self) {
        self.emit(Instr::NOP);
    }

    /// Loads a 32-bit constant (1 or 2 instructions).
    pub fn li(&mut self, rd: Reg, v: i64) {
        let v = v as u32;
        if v & 0xffff_0000 == 0 {
            self.emit(Instr::Ori {
                rt: rd,
                rs: Reg::ZERO,
                imm: v as u16,
            });
        } else if v & 0xffff == 0 {
            self.emit(Instr::Lui {
                rt: rd,
                imm: (v >> 16) as u16,
            });
        } else if v & 0xffff_8000 == 0xffff_8000 {
            // small negative constants via addiu sign extension
            self.emit(Instr::Addiu {
                rt: rd,
                rs: Reg::ZERO,
                imm: v as u16 as i16,
            });
        } else {
            self.emit(Instr::Lui {
                rt: rd,
                imm: (v >> 16) as u16,
            });
            self.emit(Instr::Ori {
                rt: rd,
                rs: rd,
                imm: v as u16,
            });
        }
    }

    /// Loads the address of a label (always `lui` + `ori`, 2 instructions,
    /// so layout is fixed at emit time).
    pub fn la(&mut self, rd: Reg, label: &str) {
        self.fixups.push(Fixup::Hi16 {
            index: self.text.len(),
            label: label.to_owned(),
        });
        self.emit(Instr::Lui { rt: rd, imm: 0 });
        self.fixups.push(Fixup::Lo16 {
            index: self.text.len(),
            label: label.to_owned(),
        });
        self.emit(Instr::Ori {
            rt: rd,
            rs: rd,
            imm: 0,
        });
    }

    /// Register move (`addu rd, rs, $zero`).
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instr::Addu {
            rd,
            rs,
            rt: Reg::ZERO,
        });
    }

    /// Unconditional branch (`beq $zero, $zero, label`); caller supplies
    /// the delay slot.
    pub fn b(&mut self, label: &str) {
        self.beq(Reg::ZERO, Reg::ZERO, label);
    }

    // --- ALU ---

    /// `addu rd, rs, rt`.
    pub fn addu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Addu { rd, rs, rt });
    }
    /// `subu rd, rs, rt`.
    pub fn subu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Subu { rd, rs, rt });
    }
    /// `and rd, rs, rt`.
    pub fn and(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::And { rd, rs, rt });
    }
    /// `or rd, rs, rt`.
    pub fn or(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Or { rd, rs, rt });
    }
    /// `xor rd, rs, rt`.
    pub fn xor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Xor { rd, rs, rt });
    }
    /// `nor rd, rs, rt`.
    pub fn nor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Nor { rd, rs, rt });
    }
    /// `slt rd, rs, rt`.
    pub fn slt(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Slt { rd, rs, rt });
    }
    /// `sltu rd, rs, rt`.
    pub fn sltu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Sltu { rd, rs, rt });
    }
    /// `sllv rd, rt, rs` (shift amount in `rs`).
    pub fn sllv(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.emit(Instr::Sllv { rd, rt, rs });
    }
    /// `srlv rd, rt, rs`.
    pub fn srlv(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.emit(Instr::Srlv { rd, rt, rs });
    }
    /// `srav rd, rt, rs`.
    pub fn srav(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.emit(Instr::Srav { rd, rt, rs });
    }
    /// `sll rd, rt, shamt`.
    pub fn sll(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.emit(Instr::Sll { rd, rt, shamt });
    }
    /// `srl rd, rt, shamt`.
    pub fn srl(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.emit(Instr::Srl { rd, rt, shamt });
    }
    /// `sra rd, rt, shamt`.
    pub fn sra(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.emit(Instr::Sra { rd, rt, shamt });
    }
    /// `addiu rt, rs, imm`.
    pub fn addiu(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.emit(Instr::Addiu { rt, rs, imm });
    }
    /// `slti rt, rs, imm`.
    pub fn slti(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.emit(Instr::Slti { rt, rs, imm });
    }
    /// `sltiu rt, rs, imm`.
    pub fn sltiu(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.emit(Instr::Sltiu { rt, rs, imm });
    }
    /// `andi rt, rs, imm`.
    pub fn andi(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.emit(Instr::Andi { rt, rs, imm });
    }
    /// `ori rt, rs, imm`.
    pub fn ori(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.emit(Instr::Ori { rt, rs, imm });
    }
    /// `xori rt, rs, imm`.
    pub fn xori(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.emit(Instr::Xori { rt, rs, imm });
    }
    /// `lui rt, imm`.
    pub fn lui(&mut self, rt: Reg, imm: u16) {
        self.emit(Instr::Lui { rt, imm });
    }

    // --- multiply / divide ---

    /// `mult rs, rt`.
    pub fn mult(&mut self, rs: Reg, rt: Reg) {
        self.emit(Instr::Mult { rs, rt });
    }
    /// `multu rs, rt`.
    pub fn multu(&mut self, rs: Reg, rt: Reg) {
        self.emit(Instr::Multu { rs, rt });
    }
    /// `div rs, rt`.
    pub fn div(&mut self, rs: Reg, rt: Reg) {
        self.emit(Instr::Div { rs, rt });
    }
    /// `divu rs, rt`.
    pub fn divu(&mut self, rs: Reg, rt: Reg) {
        self.emit(Instr::Divu { rs, rt });
    }
    /// `mfhi rd`.
    pub fn mfhi(&mut self, rd: Reg) {
        self.emit(Instr::Mfhi { rd });
    }
    /// `mflo rd`.
    pub fn mflo(&mut self, rd: Reg) {
        self.emit(Instr::Mflo { rd });
    }
    /// `mthi rs`.
    pub fn mthi(&mut self, rs: Reg) {
        self.emit(Instr::Mthi { rs });
    }
    /// `mtlo rs`.
    pub fn mtlo(&mut self, rs: Reg) {
        self.emit(Instr::Mtlo { rs });
    }

    // --- memory ---

    /// `lw rt, offset(base)`.
    pub fn lw(&mut self, rt: Reg, offset: i16, base: Reg) {
        self.emit(Instr::Lw { rt, base, offset });
    }
    /// `sw rt, offset(base)`.
    pub fn sw(&mut self, rt: Reg, offset: i16, base: Reg) {
        self.emit(Instr::Sw { rt, base, offset });
    }
    /// `lbu rt, offset(base)`.
    pub fn lbu(&mut self, rt: Reg, offset: i16, base: Reg) {
        self.emit(Instr::Lbu { rt, base, offset });
    }
    /// `lhu rt, offset(base)`.
    pub fn lhu(&mut self, rt: Reg, offset: i16, base: Reg) {
        self.emit(Instr::Lhu { rt, base, offset });
    }
    /// `sb rt, offset(base)`.
    pub fn sb(&mut self, rt: Reg, offset: i16, base: Reg) {
        self.emit(Instr::Sb { rt, base, offset });
    }
    /// `sh rt, offset(base)`.
    pub fn sh(&mut self, rt: Reg, offset: i16, base: Reg) {
        self.emit(Instr::Sh { rt, base, offset });
    }

    // --- control flow ---

    /// `beq rs, rt, label` (delay slot follows).
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.fixups.push(Fixup::Branch {
            index: self.text.len(),
            label: label.to_owned(),
        });
        self.emit(Instr::Beq { rs, rt, offset: 0 });
    }
    /// `bne rs, rt, label` (delay slot follows).
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.fixups.push(Fixup::Branch {
            index: self.text.len(),
            label: label.to_owned(),
        });
        self.emit(Instr::Bne { rs, rt, offset: 0 });
    }
    /// `blez rs, label`.
    pub fn blez(&mut self, rs: Reg, label: &str) {
        self.fixups.push(Fixup::Branch {
            index: self.text.len(),
            label: label.to_owned(),
        });
        self.emit(Instr::Blez { rs, offset: 0 });
    }
    /// `bgtz rs, label`.
    pub fn bgtz(&mut self, rs: Reg, label: &str) {
        self.fixups.push(Fixup::Branch {
            index: self.text.len(),
            label: label.to_owned(),
        });
        self.emit(Instr::Bgtz { rs, offset: 0 });
    }
    /// `bltz rs, label`.
    pub fn bltz(&mut self, rs: Reg, label: &str) {
        self.fixups.push(Fixup::Branch {
            index: self.text.len(),
            label: label.to_owned(),
        });
        self.emit(Instr::Bltz { rs, offset: 0 });
    }
    /// `bgez rs, label`.
    pub fn bgez(&mut self, rs: Reg, label: &str) {
        self.fixups.push(Fixup::Branch {
            index: self.text.len(),
            label: label.to_owned(),
        });
        self.emit(Instr::Bgez { rs, offset: 0 });
    }
    /// `j label` (delay slot follows).
    pub fn j(&mut self, label: &str) {
        self.fixups.push(Fixup::Jump {
            index: self.text.len(),
            label: label.to_owned(),
        });
        self.emit(Instr::J { target: 0 });
    }
    /// `jal label` (delay slot follows).
    pub fn jal(&mut self, label: &str) {
        self.fixups.push(Fixup::Jump {
            index: self.text.len(),
            label: label.to_owned(),
        });
        self.emit(Instr::Jal { target: 0 });
    }
    /// `jr rs` (delay slot follows).
    pub fn jr(&mut self, rs: Reg) {
        self.emit(Instr::Jr { rs });
    }
    /// `jalr rd, rs` (delay slot follows).
    pub fn jalr(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instr::Jalr { rd, rs });
    }
    /// `break code` — halts the simulation.
    pub fn brk(&mut self, code: u16) {
        self.emit(Instr::Break { code });
    }

    /// `jal label` followed by a `nop` delay slot.
    pub fn call(&mut self, label: &str) {
        self.jal(label);
        self.nop();
    }

    /// `jr $ra` followed by a `nop` delay slot.
    pub fn ret(&mut self) {
        self.jr(Reg::RA);
        self.nop();
    }

    // --- ISA extensions ---

    /// `maddu rs, rt` (Table 5.1).
    pub fn maddu(&mut self, rs: Reg, rt: Reg) {
        self.emit(Instr::Maddu { rs, rt });
    }
    /// `m2addu rs, rt` (Table 5.1).
    pub fn m2addu(&mut self, rs: Reg, rt: Reg) {
        self.emit(Instr::M2addu { rs, rt });
    }
    /// `addau rs, rt` (Table 5.1).
    pub fn addau(&mut self, rs: Reg, rt: Reg) {
        self.emit(Instr::Addau { rs, rt });
    }
    /// `sha` (Table 5.1).
    pub fn sha(&mut self) {
        self.emit(Instr::Sha);
    }
    /// `mulgf2 rs, rt` (Table 5.2).
    pub fn mulgf2(&mut self, rs: Reg, rt: Reg) {
        self.emit(Instr::Mulgf2 { rs, rt });
    }
    /// `maddgf2 rs, rt` (Table 5.2).
    pub fn maddgf2(&mut self, rs: Reg, rt: Reg) {
        self.emit(Instr::Maddgf2 { rs, rt });
    }

    // --- coprocessor 2 ---

    /// `ctc2 rt, $rd` (Table 5.3).
    pub fn ctc2(&mut self, rt: Reg, rd: u8) {
        self.emit(Instr::Ctc2 { rt, rd });
    }
    /// `cop2sync`.
    pub fn cop2sync(&mut self) {
        self.emit(Instr::Cop2Sync);
    }
    /// `cop2lda rt` (Monte).
    pub fn cop2lda(&mut self, rt: Reg) {
        self.emit(Instr::Cop2LdA { rt });
    }
    /// `cop2ldb rt` (Monte).
    pub fn cop2ldb(&mut self, rt: Reg) {
        self.emit(Instr::Cop2LdB { rt });
    }
    /// `cop2ldn rt` (Monte).
    pub fn cop2ldn(&mut self, rt: Reg) {
        self.emit(Instr::Cop2LdN { rt });
    }
    /// `cop2mul` (Monte).
    pub fn cop2mul(&mut self) {
        self.emit(Instr::Cop2Mul);
    }
    /// `cop2add` (Monte).
    pub fn cop2add(&mut self) {
        self.emit(Instr::Cop2Add);
    }
    /// `cop2sub` (Monte).
    pub fn cop2sub(&mut self) {
        self.emit(Instr::Cop2Sub);
    }
    /// `cop2st rt` (Monte).
    pub fn cop2st(&mut self, rt: Reg) {
        self.emit(Instr::Cop2St { rt });
    }
    /// `cop2ld rt, $fs` (Billie, Table 5.6).
    pub fn bil_ld(&mut self, rt: Reg, fs: u8) {
        self.emit(Instr::BilLd { rt, fs });
    }
    /// `cop2st rt, $fs` (Billie).
    pub fn bil_st(&mut self, rt: Reg, fs: u8) {
        self.emit(Instr::BilSt { rt, fs });
    }
    /// `cop2mul $fd, $fs, $ft` (Billie).
    pub fn bil_mul(&mut self, fd: u8, fs: u8, ft: u8) {
        self.emit(Instr::BilMul { fd, fs, ft });
    }
    /// `cop2sqr $fd, $ft` (Billie).
    pub fn bil_sqr(&mut self, fd: u8, ft: u8) {
        self.emit(Instr::BilSqr { fd, ft });
    }
    /// `cop2add $fd, $fs, $ft` (Billie).
    pub fn bil_add(&mut self, fd: u8, fs: u8, ft: u8) {
        self.emit(Instr::BilAdd { fd, fs, ft });
    }

    /// Resolves labels and produces the ROM image.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] for undefined/duplicate labels, overflowing
    /// sections, or out-of-range branches.
    pub fn link(mut self, entry: &str) -> Result<Program, LinkError> {
        if let Some(d) = self.duplicate.take() {
            return Err(LinkError::DuplicateLabel(d));
        }
        let text_words = self.text.len();
        let data_base = ROM_BASE + (text_words as u32) * 4;
        // Symbol table: text labels then data labels.
        let mut symbols = HashMap::new();
        for (name, idx) in &self.text_labels {
            symbols.insert(name.clone(), ROM_BASE + (*idx as u32) * 4);
        }
        for (name, idx) in &self.data_labels {
            symbols.insert(name.clone(), data_base + (*idx as u32) * 4);
        }
        for (name, addr) in &self.ram_symbols {
            symbols.insert(name.clone(), *addr);
        }
        let lookup = |label: &String| -> Result<u32, LinkError> {
            symbols
                .get(label)
                .copied()
                .ok_or_else(|| LinkError::UndefinedLabel(label.clone()))
        };
        for fx in &self.fixups {
            match fx {
                Fixup::Branch { index, label } => {
                    let target = lookup(label)?;
                    let target_idx = ((target - ROM_BASE) / 4) as i64;
                    let delta = target_idx - (*index as i64 + 1);
                    if delta < i16::MIN as i64 || delta > i16::MAX as i64 {
                        return Err(LinkError::BranchOutOfRange(label.clone()));
                    }
                    let off = delta as i16;
                    self.text[*index] = match self.text[*index] {
                        Instr::Beq { rs, rt, .. } => Instr::Beq {
                            rs,
                            rt,
                            offset: off,
                        },
                        Instr::Bne { rs, rt, .. } => Instr::Bne {
                            rs,
                            rt,
                            offset: off,
                        },
                        Instr::Blez { rs, .. } => Instr::Blez { rs, offset: off },
                        Instr::Bgtz { rs, .. } => Instr::Bgtz { rs, offset: off },
                        Instr::Bltz { rs, .. } => Instr::Bltz { rs, offset: off },
                        Instr::Bgez { rs, .. } => Instr::Bgez { rs, offset: off },
                        other => other,
                    };
                }
                Fixup::Jump { index, label } => {
                    let target = lookup(label)?;
                    let t = (target >> 2) & 0x03ff_ffff;
                    self.text[*index] = match self.text[*index] {
                        Instr::J { .. } => Instr::J { target: t },
                        Instr::Jal { .. } => Instr::Jal { target: t },
                        other => other,
                    };
                }
                Fixup::Hi16 { index, label } => {
                    let target = lookup(label)?;
                    // account for the low half's zero-extension by ori
                    let hi = (target >> 16) as u16;
                    if let Instr::Lui { rt, .. } = self.text[*index] {
                        self.text[*index] = Instr::Lui { rt, imm: hi };
                    }
                }
                Fixup::Lo16 { index, label } => {
                    let target = lookup(label)?;
                    let lo = (target & 0xffff) as u16;
                    if let Instr::Ori { rt, rs, .. } = self.text[*index] {
                        self.text[*index] = Instr::Ori { rt, rs, imm: lo };
                    }
                }
            }
        }
        let entry_addr = symbols
            .get(entry)
            .copied()
            .ok_or_else(|| LinkError::UndefinedLabel(entry.to_owned()))?;
        let mut rom: Vec<u32> = self.text.iter().map(|i| i.encode()).collect();
        rom.extend_from_slice(&self.data);
        let need = (rom.len() as u32) * 4;
        if need > ROM_SIZE {
            return Err(LinkError::RomOverflow { need });
        }
        if self.ram_cursor > RAM_SIZE {
            return Err(LinkError::RamOverflow {
                need: self.ram_cursor,
            });
        }
        Ok(Program {
            rom,
            entry: entry_addr,
            text_words,
            symbols,
            ram_symbols: self.ram_symbols,
            ram_reserved: self.ram_cursor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches() {
        let mut a = Asm::new();
        a.label("start");
        a.li(Reg::T0, 3);
        a.label("loop");
        a.addiu(Reg::T0, Reg::T0, -1);
        a.bne(Reg::T0, Reg::ZERO, "loop");
        a.nop();
        a.beq(Reg::ZERO, Reg::ZERO, "end");
        a.nop();
        a.addiu(Reg::T1, Reg::ZERO, 99); // skipped
        a.label("end");
        a.brk(0);
        let p = a.link("start").unwrap();
        // backward branch: target "loop" at word 1, branch at word 2 ->
        // offset = 1 - 3 = -2
        let w = p.rom()[2];
        let i = Instr::decode(w).unwrap();
        assert_eq!(
            i,
            Instr::Bne {
                rs: Reg::T0,
                rt: Reg::ZERO,
                offset: -2
            }
        );
    }

    #[test]
    fn la_resolves_data_symbols() {
        let mut a = Asm::new();
        a.label("start");
        a.la(Reg::A0, "table");
        a.brk(0);
        a.data_label("table");
        a.words(&[1, 2, 3]);
        let p = a.link("start").unwrap();
        let table = p.symbol("table").unwrap();
        assert_eq!(table, 3 * 4); // after 3 text words
        let lui = Instr::decode(p.rom()[0]).unwrap();
        let ori = Instr::decode(p.rom()[1]).unwrap();
        assert_eq!(
            lui,
            Instr::Lui {
                rt: Reg::A0,
                imm: 0
            }
        );
        assert_eq!(
            ori,
            Instr::Ori {
                rt: Reg::A0,
                rs: Reg::A0,
                imm: 12
            }
        );
    }

    #[test]
    fn ram_alloc_layout() {
        let mut a = Asm::new();
        let x = a.ram_alloc("x", 6);
        let y = a.ram_alloc("y", 2);
        assert_eq!(x, RAM_BASE);
        assert_eq!(y, RAM_BASE + 24);
        assert_eq!(a.ram_addr("x"), x);
        a.label("e");
        a.brk(0);
        let p = a.link("e").unwrap();
        assert_eq!(p.ram_symbol("y"), Some(y));
        assert_eq!(p.ram_reserved(), 32);
    }

    #[test]
    fn undefined_label_reported() {
        let mut a = Asm::new();
        a.label("e");
        a.j("nowhere");
        a.nop();
        match a.link("e") {
            Err(LinkError::UndefinedLabel(l)) => assert_eq!(l, "nowhere"),
            other => panic!("expected undefined label, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_label_reported() {
        let mut a = Asm::new();
        a.label("x");
        a.nop();
        a.label("x");
        a.brk(0);
        assert!(matches!(a.link("x"), Err(LinkError::DuplicateLabel(_))));
    }

    #[test]
    fn li_width_selection() {
        let mut a = Asm::new();
        a.label("e");
        a.li(Reg::T0, 0x1234); // 1 instr
        a.li(Reg::T1, 0x5678_0000); // 1 instr (lui)
        a.li(Reg::T2, -5); // 1 instr (addiu)
        a.li(Reg::T3, 0x1234_5678); // 2 instr
        a.brk(0);
        let p = a.link("e").unwrap();
        assert_eq!(p.text_words(), 6);
    }

    #[test]
    fn disassembly_smoke() {
        let mut a = Asm::new();
        a.label("e");
        a.maddu(Reg::A0, Reg::A1);
        a.brk(0);
        let p = a.link("e").unwrap();
        let d = p.disassemble();
        assert!(d.contains("maddu $a0, $a1"), "{d}");
    }
}
