//! Instruction definitions and binary encode/decode.
//!
//! Encodings follow MIPS-II where instructions exist there; the study's
//! extensions are placed in free encoding space:
//!
//! * prime/binary ISA extensions → opcode `SPECIAL2` (0x1C), as real MIPS32
//!   `MADDU` is (the paper added them to Binutils the same way, §4.3);
//! * accelerator command instructions → opcode `COP2` (0x12) with the `CO`
//!   bit set, plus `CTC2` in its architectural slot (Tables 5.3 and 5.6).

use crate::reg::Reg;
use std::fmt;

const OP_SPECIAL: u32 = 0x00;
const OP_REGIMM: u32 = 0x01;
const OP_J: u32 = 0x02;
const OP_JAL: u32 = 0x03;
const OP_BEQ: u32 = 0x04;
const OP_BNE: u32 = 0x05;
const OP_BLEZ: u32 = 0x06;
const OP_BGTZ: u32 = 0x07;
const OP_ADDIU: u32 = 0x09;
const OP_SLTI: u32 = 0x0a;
const OP_SLTIU: u32 = 0x0b;
const OP_ANDI: u32 = 0x0c;
const OP_ORI: u32 = 0x0d;
const OP_XORI: u32 = 0x0e;
const OP_LUI: u32 = 0x0f;
const OP_COP2: u32 = 0x12;
const OP_SPECIAL2: u32 = 0x1c;
const OP_LB: u32 = 0x20;
const OP_LH: u32 = 0x21;
const OP_LW: u32 = 0x23;
const OP_LBU: u32 = 0x24;
const OP_LHU: u32 = 0x25;
const OP_SB: u32 = 0x28;
const OP_SH: u32 = 0x29;
const OP_SW: u32 = 0x2b;

// SPECIAL functs
const F_SLL: u32 = 0x00;
const F_SRL: u32 = 0x02;
const F_SRA: u32 = 0x03;
const F_SLLV: u32 = 0x04;
const F_SRLV: u32 = 0x06;
const F_SRAV: u32 = 0x07;
const F_JR: u32 = 0x08;
const F_JALR: u32 = 0x09;
const F_BREAK: u32 = 0x0d;
const F_MFHI: u32 = 0x10;
const F_MTHI: u32 = 0x11;
const F_MFLO: u32 = 0x12;
const F_MTLO: u32 = 0x13;
const F_MULT: u32 = 0x18;
const F_MULTU: u32 = 0x19;
const F_DIV: u32 = 0x1a;
const F_DIVU: u32 = 0x1b;
const F_ADDU: u32 = 0x21;
const F_SUBU: u32 = 0x23;
const F_AND: u32 = 0x24;
const F_OR: u32 = 0x25;
const F_XOR: u32 = 0x26;
const F_NOR: u32 = 0x27;
const F_SLT: u32 = 0x2a;
const F_SLTU: u32 = 0x2b;

// SPECIAL2 functs (extensions; MADDU matches MIPS32)
const F2_MADDU: u32 = 0x01;
const F2_M2ADDU: u32 = 0x20;
const F2_ADDAU: u32 = 0x21;
const F2_SHA: u32 = 0x22;
const F2_MULGF2: u32 = 0x24;
const F2_MADDGF2: u32 = 0x25;

// COP2 functs (with the CO bit, rs field = 0x10)
const C2_SYNC: u32 = 0x00;
const C2_LDA: u32 = 0x01;
const C2_LDB: u32 = 0x02;
const C2_LDN: u32 = 0x03;
const C2_MUL: u32 = 0x04;
const C2_ADD: u32 = 0x05;
const C2_SUB: u32 = 0x06;
const C2_ST: u32 = 0x07;
const C2_BLD: u32 = 0x10;
const C2_BST: u32 = 0x11;
const C2_BMUL: u32 = 0x12;
const C2_BSQR: u32 = 0x13;
const C2_BADD: u32 = 0x14;
const RS_CTC2: u32 = 0x06;
const RS_CO: u32 = 0x10;

/// One decoded Pete instruction.
///
/// Branch offsets are in *instructions* relative to the delay slot (the
/// architectural MIPS convention); jump targets are word addresses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Instr {
    // --- R-type ALU ---
    Addu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Subu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    And {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Or {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Xor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Nor {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Slt {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sltu {
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    Sllv {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Srlv {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Srav {
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    Sll {
        rd: Reg,
        rt: Reg,
        shamt: u8,
    },
    Srl {
        rd: Reg,
        rt: Reg,
        shamt: u8,
    },
    Sra {
        rd: Reg,
        rt: Reg,
        shamt: u8,
    },
    // --- I-type ALU ---
    Addiu {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Slti {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Sltiu {
        rt: Reg,
        rs: Reg,
        imm: i16,
    },
    Andi {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Ori {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Xori {
        rt: Reg,
        rs: Reg,
        imm: u16,
    },
    Lui {
        rt: Reg,
        imm: u16,
    },
    // --- multiply / divide (Hi/Lo unit, §5.1.1) ---
    Mult {
        rs: Reg,
        rt: Reg,
    },
    Multu {
        rs: Reg,
        rt: Reg,
    },
    Div {
        rs: Reg,
        rt: Reg,
    },
    Divu {
        rs: Reg,
        rt: Reg,
    },
    Mfhi {
        rd: Reg,
    },
    Mflo {
        rd: Reg,
    },
    Mthi {
        rs: Reg,
    },
    Mtlo {
        rs: Reg,
    },
    // --- memory ---
    Lw {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lh {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lhu {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lb {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Lbu {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Sw {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Sh {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    Sb {
        rt: Reg,
        base: Reg,
        offset: i16,
    },
    // --- control flow (all with one architectural delay slot) ---
    Beq {
        rs: Reg,
        rt: Reg,
        offset: i16,
    },
    Bne {
        rs: Reg,
        rt: Reg,
        offset: i16,
    },
    Blez {
        rs: Reg,
        offset: i16,
    },
    Bgtz {
        rs: Reg,
        offset: i16,
    },
    Bltz {
        rs: Reg,
        offset: i16,
    },
    Bgez {
        rs: Reg,
        offset: i16,
    },
    J {
        target: u32,
    },
    Jal {
        target: u32,
    },
    Jr {
        rs: Reg,
    },
    Jalr {
        rd: Reg,
        rs: Reg,
    },
    /// Stops the simulation (used as the program epilogue).
    Break {
        code: u16,
    },
    // --- prime-field ISA extensions (Table 5.1) ---
    /// `(OvFlo,Hi,Lo) += rs * rt`
    Maddu {
        rs: Reg,
        rt: Reg,
    },
    /// `(OvFlo,Hi,Lo) += 2 * rs * rt` (squaring optimization)
    M2addu {
        rs: Reg,
        rt: Reg,
    },
    /// `(OvFlo,Hi,Lo) += (rs << 32) + rt`
    Addau {
        rs: Reg,
        rt: Reg,
    },
    /// `(OvFlo,Hi,Lo) >>= 32`
    Sha,
    // --- binary-field ISA extensions (Table 5.2) ---
    /// `(OvFlo,Hi,Lo) = rs (x) rt` (carry-less multiply)
    Mulgf2 {
        rs: Reg,
        rt: Reg,
    },
    /// `(OvFlo,Hi,Lo) ^= rs (x) rt`
    Maddgf2 {
        rs: Reg,
        rt: Reg,
    },
    // --- Monte coprocessor commands (Table 5.3) ---
    /// Move to coprocessor-2 control register.
    Ctc2 {
        rt: Reg,
        rd: u8,
    },
    /// Synchronize: stall until the coprocessor drains.
    Cop2Sync,
    /// DMA operand A from `MEM[GPR[rt]]` into Monte.
    Cop2LdA {
        rt: Reg,
    },
    /// DMA operand B from `MEM[GPR[rt]]` into Monte.
    Cop2LdB {
        rt: Reg,
    },
    /// DMA modulus N from `MEM[GPR[rt]]` into Monte.
    Cop2LdN {
        rt: Reg,
    },
    /// Modular multiply (Montgomery CIOS microprogram).
    Cop2Mul,
    /// Modular add microprogram.
    Cop2Add,
    /// Modular subtract microprogram.
    Cop2Sub,
    /// DMA the result buffer to `MEM[GPR[rt]]`.
    Cop2St {
        rt: Reg,
    },
    // --- Billie coprocessor commands (Table 5.6) ---
    /// Load a field element from `MEM[GPR[rt]]` into Billie register `fs`.
    BilLd {
        rt: Reg,
        fs: u8,
    },
    /// Store Billie register `fs` to `MEM[GPR[rt]]`.
    BilSt {
        rt: Reg,
        fs: u8,
    },
    /// `BR[fd] = BR[fs] * BR[ft]` (digit-serial modular multiply).
    BilMul {
        fd: u8,
        fs: u8,
        ft: u8,
    },
    /// `BR[fd] = BR[ft]^2` (hardwired squarer).
    BilSqr {
        fd: u8,
        ft: u8,
    },
    /// `BR[fd] = BR[fs] + BR[ft]` (full-width XOR).
    BilAdd {
        fd: u8,
        fs: u8,
        ft: u8,
    },
}

/// Error returned when a 32-bit word does not decode to a known
/// instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn r(n: u32) -> Reg {
    Reg((n & 31) as u8)
}

#[allow(clippy::too_many_arguments)]
fn enc_r(op: u32, rs: u32, rt: u32, rd: u32, shamt: u32, funct: u32) -> u32 {
    (op << 26)
        | ((rs & 31) << 21)
        | ((rt & 31) << 16)
        | ((rd & 31) << 11)
        | ((shamt & 31) << 6)
        | (funct & 63)
}

fn enc_i(op: u32, rs: u32, rt: u32, imm: u32) -> u32 {
    (op << 26) | ((rs & 31) << 21) | ((rt & 31) << 16) | (imm & 0xffff)
}

impl Instr {
    /// A canonical `nop` (`sll $zero, $zero, 0`).
    pub const NOP: Instr = Instr::Sll {
        rd: Reg::ZERO,
        rt: Reg::ZERO,
        shamt: 0,
    };

    /// Encodes to the 32-bit machine word.
    pub fn encode(self) -> u32 {
        use Instr::*;
        let rn = |x: Reg| x.num() as u32;
        match self {
            Addu { rd, rs, rt } => enc_r(OP_SPECIAL, rn(rs), rn(rt), rn(rd), 0, F_ADDU),
            Subu { rd, rs, rt } => enc_r(OP_SPECIAL, rn(rs), rn(rt), rn(rd), 0, F_SUBU),
            And { rd, rs, rt } => enc_r(OP_SPECIAL, rn(rs), rn(rt), rn(rd), 0, F_AND),
            Or { rd, rs, rt } => enc_r(OP_SPECIAL, rn(rs), rn(rt), rn(rd), 0, F_OR),
            Xor { rd, rs, rt } => enc_r(OP_SPECIAL, rn(rs), rn(rt), rn(rd), 0, F_XOR),
            Nor { rd, rs, rt } => enc_r(OP_SPECIAL, rn(rs), rn(rt), rn(rd), 0, F_NOR),
            Slt { rd, rs, rt } => enc_r(OP_SPECIAL, rn(rs), rn(rt), rn(rd), 0, F_SLT),
            Sltu { rd, rs, rt } => enc_r(OP_SPECIAL, rn(rs), rn(rt), rn(rd), 0, F_SLTU),
            Sllv { rd, rt, rs } => enc_r(OP_SPECIAL, rn(rs), rn(rt), rn(rd), 0, F_SLLV),
            Srlv { rd, rt, rs } => enc_r(OP_SPECIAL, rn(rs), rn(rt), rn(rd), 0, F_SRLV),
            Srav { rd, rt, rs } => enc_r(OP_SPECIAL, rn(rs), rn(rt), rn(rd), 0, F_SRAV),
            Sll { rd, rt, shamt } => enc_r(OP_SPECIAL, 0, rn(rt), rn(rd), shamt as u32, F_SLL),
            Srl { rd, rt, shamt } => enc_r(OP_SPECIAL, 0, rn(rt), rn(rd), shamt as u32, F_SRL),
            Sra { rd, rt, shamt } => enc_r(OP_SPECIAL, 0, rn(rt), rn(rd), shamt as u32, F_SRA),
            Addiu { rt, rs, imm } => enc_i(OP_ADDIU, rn(rs), rn(rt), imm as u16 as u32),
            Slti { rt, rs, imm } => enc_i(OP_SLTI, rn(rs), rn(rt), imm as u16 as u32),
            Sltiu { rt, rs, imm } => enc_i(OP_SLTIU, rn(rs), rn(rt), imm as u16 as u32),
            Andi { rt, rs, imm } => enc_i(OP_ANDI, rn(rs), rn(rt), imm as u32),
            Ori { rt, rs, imm } => enc_i(OP_ORI, rn(rs), rn(rt), imm as u32),
            Xori { rt, rs, imm } => enc_i(OP_XORI, rn(rs), rn(rt), imm as u32),
            Lui { rt, imm } => enc_i(OP_LUI, 0, rn(rt), imm as u32),
            Mult { rs, rt } => enc_r(OP_SPECIAL, rn(rs), rn(rt), 0, 0, F_MULT),
            Multu { rs, rt } => enc_r(OP_SPECIAL, rn(rs), rn(rt), 0, 0, F_MULTU),
            Div { rs, rt } => enc_r(OP_SPECIAL, rn(rs), rn(rt), 0, 0, F_DIV),
            Divu { rs, rt } => enc_r(OP_SPECIAL, rn(rs), rn(rt), 0, 0, F_DIVU),
            Mfhi { rd } => enc_r(OP_SPECIAL, 0, 0, rn(rd), 0, F_MFHI),
            Mflo { rd } => enc_r(OP_SPECIAL, 0, 0, rn(rd), 0, F_MFLO),
            Mthi { rs } => enc_r(OP_SPECIAL, rn(rs), 0, 0, 0, F_MTHI),
            Mtlo { rs } => enc_r(OP_SPECIAL, rn(rs), 0, 0, 0, F_MTLO),
            Lw { rt, base, offset } => enc_i(OP_LW, rn(base), rn(rt), offset as u16 as u32),
            Lh { rt, base, offset } => enc_i(OP_LH, rn(base), rn(rt), offset as u16 as u32),
            Lhu { rt, base, offset } => enc_i(OP_LHU, rn(base), rn(rt), offset as u16 as u32),
            Lb { rt, base, offset } => enc_i(OP_LB, rn(base), rn(rt), offset as u16 as u32),
            Lbu { rt, base, offset } => enc_i(OP_LBU, rn(base), rn(rt), offset as u16 as u32),
            Sw { rt, base, offset } => enc_i(OP_SW, rn(base), rn(rt), offset as u16 as u32),
            Sh { rt, base, offset } => enc_i(OP_SH, rn(base), rn(rt), offset as u16 as u32),
            Sb { rt, base, offset } => enc_i(OP_SB, rn(base), rn(rt), offset as u16 as u32),
            Beq { rs, rt, offset } => enc_i(OP_BEQ, rn(rs), rn(rt), offset as u16 as u32),
            Bne { rs, rt, offset } => enc_i(OP_BNE, rn(rs), rn(rt), offset as u16 as u32),
            Blez { rs, offset } => enc_i(OP_BLEZ, rn(rs), 0, offset as u16 as u32),
            Bgtz { rs, offset } => enc_i(OP_BGTZ, rn(rs), 0, offset as u16 as u32),
            Bltz { rs, offset } => enc_i(OP_REGIMM, rn(rs), 0, offset as u16 as u32),
            Bgez { rs, offset } => enc_i(OP_REGIMM, rn(rs), 1, offset as u16 as u32),
            J { target } => (OP_J << 26) | (target & 0x03ff_ffff),
            Jal { target } => (OP_JAL << 26) | (target & 0x03ff_ffff),
            Jr { rs } => enc_r(OP_SPECIAL, rn(rs), 0, 0, 0, F_JR),
            Jalr { rd, rs } => enc_r(OP_SPECIAL, rn(rs), 0, rn(rd), 0, F_JALR),
            Break { code } => ((code as u32) << 6) | F_BREAK,
            Maddu { rs, rt } => enc_r(OP_SPECIAL2, rn(rs), rn(rt), 0, 0, F2_MADDU),
            M2addu { rs, rt } => enc_r(OP_SPECIAL2, rn(rs), rn(rt), 0, 0, F2_M2ADDU),
            Addau { rs, rt } => enc_r(OP_SPECIAL2, rn(rs), rn(rt), 0, 0, F2_ADDAU),
            Sha => enc_r(OP_SPECIAL2, 0, 0, 0, 0, F2_SHA),
            Mulgf2 { rs, rt } => enc_r(OP_SPECIAL2, rn(rs), rn(rt), 0, 0, F2_MULGF2),
            Maddgf2 { rs, rt } => enc_r(OP_SPECIAL2, rn(rs), rn(rt), 0, 0, F2_MADDGF2),
            Ctc2 { rt, rd } => enc_r(OP_COP2, RS_CTC2, rn(rt), rd as u32, 0, 0),
            Cop2Sync => enc_r(OP_COP2, RS_CO, 0, 0, 0, C2_SYNC),
            Cop2LdA { rt } => enc_r(OP_COP2, RS_CO, rn(rt), 0, 0, C2_LDA),
            Cop2LdB { rt } => enc_r(OP_COP2, RS_CO, rn(rt), 0, 0, C2_LDB),
            Cop2LdN { rt } => enc_r(OP_COP2, RS_CO, rn(rt), 0, 0, C2_LDN),
            Cop2Mul => enc_r(OP_COP2, RS_CO, 0, 0, 0, C2_MUL),
            Cop2Add => enc_r(OP_COP2, RS_CO, 0, 0, 0, C2_ADD),
            Cop2Sub => enc_r(OP_COP2, RS_CO, 0, 0, 0, C2_SUB),
            Cop2St { rt } => enc_r(OP_COP2, RS_CO, rn(rt), 0, 0, C2_ST),
            BilLd { rt, fs } => enc_r(OP_COP2, RS_CO, rn(rt), fs as u32, 0, C2_BLD),
            BilSt { rt, fs } => enc_r(OP_COP2, RS_CO, rn(rt), fs as u32, 0, C2_BST),
            BilMul { fd, fs, ft } => {
                enc_r(OP_COP2, RS_CO, ft as u32, fs as u32, fd as u32, C2_BMUL)
            }
            BilSqr { fd, ft } => enc_r(OP_COP2, RS_CO, ft as u32, 0, fd as u32, C2_BSQR),
            BilAdd { fd, fs, ft } => {
                enc_r(OP_COP2, RS_CO, ft as u32, fs as u32, fd as u32, C2_BADD)
            }
        }
    }

    /// Decodes a 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for words outside Pete's ISA.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        use Instr::*;
        let op = word >> 26;
        let rs = r((word >> 21) & 31);
        let rt = r((word >> 16) & 31);
        let rd = r((word >> 11) & 31);
        let shamt = ((word >> 6) & 31) as u8;
        let funct = word & 63;
        let imm = (word & 0xffff) as u16;
        let simm = imm as i16;
        let err = Err(DecodeError { word });
        Ok(match op {
            OP_SPECIAL => match funct {
                F_SLL => Sll { rd, rt, shamt },
                F_SRL => Srl { rd, rt, shamt },
                F_SRA => Sra { rd, rt, shamt },
                F_SLLV => Sllv { rd, rt, rs },
                F_SRLV => Srlv { rd, rt, rs },
                F_SRAV => Srav { rd, rt, rs },
                F_JR => Jr { rs },
                F_JALR => Jalr { rd, rs },
                F_BREAK => Break {
                    code: ((word >> 6) & 0xffff) as u16,
                },
                F_MFHI => Mfhi { rd },
                F_MTHI => Mthi { rs },
                F_MFLO => Mflo { rd },
                F_MTLO => Mtlo { rs },
                F_MULT => Mult { rs, rt },
                F_MULTU => Multu { rs, rt },
                F_DIV => Div { rs, rt },
                F_DIVU => Divu { rs, rt },
                F_ADDU => Addu { rd, rs, rt },
                F_SUBU => Subu { rd, rs, rt },
                F_AND => And { rd, rs, rt },
                F_OR => Or { rd, rs, rt },
                F_XOR => Xor { rd, rs, rt },
                F_NOR => Nor { rd, rs, rt },
                F_SLT => Slt { rd, rs, rt },
                F_SLTU => Sltu { rd, rs, rt },
                _ => return err,
            },
            OP_REGIMM => match rt.num() {
                0 => Bltz { rs, offset: simm },
                1 => Bgez { rs, offset: simm },
                _ => return err,
            },
            OP_J => J {
                target: word & 0x03ff_ffff,
            },
            OP_JAL => Jal {
                target: word & 0x03ff_ffff,
            },
            OP_BEQ => Beq {
                rs,
                rt,
                offset: simm,
            },
            OP_BNE => Bne {
                rs,
                rt,
                offset: simm,
            },
            OP_BLEZ => Blez { rs, offset: simm },
            OP_BGTZ => Bgtz { rs, offset: simm },
            OP_ADDIU => Addiu { rt, rs, imm: simm },
            OP_SLTI => Slti { rt, rs, imm: simm },
            OP_SLTIU => Sltiu { rt, rs, imm: simm },
            OP_ANDI => Andi { rt, rs, imm },
            OP_ORI => Ori { rt, rs, imm },
            OP_XORI => Xori { rt, rs, imm },
            OP_LUI => Lui { rt, imm },
            OP_LB => Lb {
                rt,
                base: rs,
                offset: simm,
            },
            OP_LH => Lh {
                rt,
                base: rs,
                offset: simm,
            },
            OP_LW => Lw {
                rt,
                base: rs,
                offset: simm,
            },
            OP_LBU => Lbu {
                rt,
                base: rs,
                offset: simm,
            },
            OP_LHU => Lhu {
                rt,
                base: rs,
                offset: simm,
            },
            OP_SB => Sb {
                rt,
                base: rs,
                offset: simm,
            },
            OP_SH => Sh {
                rt,
                base: rs,
                offset: simm,
            },
            OP_SW => Sw {
                rt,
                base: rs,
                offset: simm,
            },
            OP_SPECIAL2 => match funct {
                F2_MADDU => Maddu { rs, rt },
                F2_M2ADDU => M2addu { rs, rt },
                F2_ADDAU => Addau { rs, rt },
                F2_SHA => Sha,
                F2_MULGF2 => Mulgf2 { rs, rt },
                F2_MADDGF2 => Maddgf2 { rs, rt },
                _ => return err,
            },
            OP_COP2 => {
                if rs.num() as u32 == RS_CTC2 {
                    Ctc2 { rt, rd: rd.num() }
                } else if rs.num() as u32 == RS_CO {
                    match funct {
                        C2_SYNC => Cop2Sync,
                        C2_LDA => Cop2LdA { rt },
                        C2_LDB => Cop2LdB { rt },
                        C2_LDN => Cop2LdN { rt },
                        C2_MUL => Cop2Mul,
                        C2_ADD => Cop2Add,
                        C2_SUB => Cop2Sub,
                        C2_ST => Cop2St { rt },
                        C2_BLD => BilLd { rt, fs: rd.num() },
                        C2_BST => BilSt { rt, fs: rd.num() },
                        C2_BMUL => BilMul {
                            fd: shamt,
                            fs: rd.num(),
                            ft: rt.num(),
                        },
                        C2_BSQR => BilSqr {
                            fd: shamt,
                            ft: rt.num(),
                        },
                        C2_BADD => BilAdd {
                            fd: shamt,
                            fs: rd.num(),
                            ft: rt.num(),
                        },
                        _ => return err,
                    }
                } else {
                    return err;
                }
            }
            _ => return err,
        })
    }

    /// True for branch/jump instructions (which have a delay slot).
    pub fn is_control_flow(self) -> bool {
        use Instr::*;
        matches!(
            self,
            Beq { .. }
                | Bne { .. }
                | Blez { .. }
                | Bgtz { .. }
                | Bltz { .. }
                | Bgez { .. }
                | J { .. }
                | Jal { .. }
                | Jr { .. }
                | Jalr { .. }
        )
    }

    /// True for the coprocessor-2 command instructions (either
    /// accelerator).
    pub fn is_cop2(self) -> bool {
        use Instr::*;
        matches!(
            self,
            Ctc2 { .. }
                | Cop2Sync
                | Cop2LdA { .. }
                | Cop2LdB { .. }
                | Cop2LdN { .. }
                | Cop2Mul
                | Cop2Add
                | Cop2Sub
                | Cop2St { .. }
                | BilLd { .. }
                | BilSt { .. }
                | BilMul { .. }
                | BilSqr { .. }
                | BilAdd { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Addu { rd, rs, rt } => write!(f, "addu {rd}, {rs}, {rt}"),
            Subu { rd, rs, rt } => write!(f, "subu {rd}, {rs}, {rt}"),
            And { rd, rs, rt } => write!(f, "and {rd}, {rs}, {rt}"),
            Or { rd, rs, rt } => write!(f, "or {rd}, {rs}, {rt}"),
            Xor { rd, rs, rt } => write!(f, "xor {rd}, {rs}, {rt}"),
            Nor { rd, rs, rt } => write!(f, "nor {rd}, {rs}, {rt}"),
            Slt { rd, rs, rt } => write!(f, "slt {rd}, {rs}, {rt}"),
            Sltu { rd, rs, rt } => write!(f, "sltu {rd}, {rs}, {rt}"),
            Sllv { rd, rt, rs } => write!(f, "sllv {rd}, {rt}, {rs}"),
            Srlv { rd, rt, rs } => write!(f, "srlv {rd}, {rt}, {rs}"),
            Srav { rd, rt, rs } => write!(f, "srav {rd}, {rt}, {rs}"),
            Sll { rd, rt, shamt } => {
                if rd == Reg::ZERO && rt == Reg::ZERO && shamt == 0 {
                    write!(f, "nop")
                } else {
                    write!(f, "sll {rd}, {rt}, {shamt}")
                }
            }
            Srl { rd, rt, shamt } => write!(f, "srl {rd}, {rt}, {shamt}"),
            Sra { rd, rt, shamt } => write!(f, "sra {rd}, {rt}, {shamt}"),
            Addiu { rt, rs, imm } => write!(f, "addiu {rt}, {rs}, {imm}"),
            Slti { rt, rs, imm } => write!(f, "slti {rt}, {rs}, {imm}"),
            Sltiu { rt, rs, imm } => write!(f, "sltiu {rt}, {rs}, {imm}"),
            Andi { rt, rs, imm } => write!(f, "andi {rt}, {rs}, {imm:#x}"),
            Ori { rt, rs, imm } => write!(f, "ori {rt}, {rs}, {imm:#x}"),
            Xori { rt, rs, imm } => write!(f, "xori {rt}, {rs}, {imm:#x}"),
            Lui { rt, imm } => write!(f, "lui {rt}, {imm:#x}"),
            Mult { rs, rt } => write!(f, "mult {rs}, {rt}"),
            Multu { rs, rt } => write!(f, "multu {rs}, {rt}"),
            Div { rs, rt } => write!(f, "div {rs}, {rt}"),
            Divu { rs, rt } => write!(f, "divu {rs}, {rt}"),
            Mfhi { rd } => write!(f, "mfhi {rd}"),
            Mflo { rd } => write!(f, "mflo {rd}"),
            Mthi { rs } => write!(f, "mthi {rs}"),
            Mtlo { rs } => write!(f, "mtlo {rs}"),
            Lw { rt, base, offset } => write!(f, "lw {rt}, {offset}({base})"),
            Lh { rt, base, offset } => write!(f, "lh {rt}, {offset}({base})"),
            Lhu { rt, base, offset } => write!(f, "lhu {rt}, {offset}({base})"),
            Lb { rt, base, offset } => write!(f, "lb {rt}, {offset}({base})"),
            Lbu { rt, base, offset } => write!(f, "lbu {rt}, {offset}({base})"),
            Sw { rt, base, offset } => write!(f, "sw {rt}, {offset}({base})"),
            Sh { rt, base, offset } => write!(f, "sh {rt}, {offset}({base})"),
            Sb { rt, base, offset } => write!(f, "sb {rt}, {offset}({base})"),
            Beq { rs, rt, offset } => write!(f, "beq {rs}, {rt}, {offset}"),
            Bne { rs, rt, offset } => write!(f, "bne {rs}, {rt}, {offset}"),
            Blez { rs, offset } => write!(f, "blez {rs}, {offset}"),
            Bgtz { rs, offset } => write!(f, "bgtz {rs}, {offset}"),
            Bltz { rs, offset } => write!(f, "bltz {rs}, {offset}"),
            Bgez { rs, offset } => write!(f, "bgez {rs}, {offset}"),
            J { target } => write!(f, "j {:#x}", target << 2),
            Jal { target } => write!(f, "jal {:#x}", target << 2),
            Jr { rs } => write!(f, "jr {rs}"),
            Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Break { code } => write!(f, "break {code}"),
            Maddu { rs, rt } => write!(f, "maddu {rs}, {rt}"),
            M2addu { rs, rt } => write!(f, "m2addu {rs}, {rt}"),
            Addau { rs, rt } => write!(f, "addau {rs}, {rt}"),
            Sha => write!(f, "sha"),
            Mulgf2 { rs, rt } => write!(f, "mulgf2 {rs}, {rt}"),
            Maddgf2 { rs, rt } => write!(f, "maddgf2 {rs}, {rt}"),
            Ctc2 { rt, rd } => write!(f, "ctc2 {rt}, ${rd}"),
            Cop2Sync => write!(f, "cop2sync"),
            Cop2LdA { rt } => write!(f, "cop2lda {rt}"),
            Cop2LdB { rt } => write!(f, "cop2ldb {rt}"),
            Cop2LdN { rt } => write!(f, "cop2ldn {rt}"),
            Cop2Mul => write!(f, "cop2mul"),
            Cop2Add => write!(f, "cop2add"),
            Cop2Sub => write!(f, "cop2sub"),
            Cop2St { rt } => write!(f, "cop2st {rt}"),
            BilLd { rt, fs } => write!(f, "cop2ld {rt}, $f{fs}"),
            BilSt { rt, fs } => write!(f, "cop2st {rt}, $f{fs}"),
            BilMul { fd, fs, ft } => write!(f, "cop2mul $f{fd}, $f{fs}, $f{ft}"),
            BilSqr { fd, ft } => write!(f, "cop2sqr $f{fd}, $f{ft}"),
            BilAdd { fd, fs, ft } => write!(f, "cop2add $f{fd}, $f{fs}, $f{ft}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // addu $t0, $t1, $t2 == 0x012a4021
        let i = Instr::Addu {
            rd: Reg::T0,
            rs: Reg::T1,
            rt: Reg::T2,
        };
        assert_eq!(i.encode(), 0x012a_4021);
        // lw $t0, 4($sp) == 0x8fa80004
        let i = Instr::Lw {
            rt: Reg::T0,
            base: Reg::SP,
            offset: 4,
        };
        assert_eq!(i.encode(), 0x8fa8_0004);
        // nop
        assert_eq!(Instr::NOP.encode(), 0);
    }

    #[test]
    fn nop_displays() {
        assert_eq!(Instr::NOP.to_string(), "nop");
    }

    #[test]
    fn round_trip_sample() {
        let cases = [
            Instr::Addiu {
                rt: Reg::SP,
                rs: Reg::SP,
                imm: -32,
            },
            Instr::Beq {
                rs: Reg::T0,
                rt: Reg::ZERO,
                offset: -7,
            },
            Instr::Jal { target: 0x12345 },
            Instr::Maddu {
                rs: Reg::A0,
                rt: Reg::A1,
            },
            Instr::Sha,
            Instr::Mulgf2 {
                rs: Reg::T3,
                rt: Reg::T4,
            },
            Instr::Ctc2 { rt: Reg::T0, rd: 3 },
            Instr::Cop2LdA { rt: Reg::A0 },
            Instr::Cop2Mul,
            Instr::BilMul {
                fd: 7,
                fs: 3,
                ft: 15,
            },
            Instr::BilSqr { fd: 1, ft: 2 },
            Instr::Break { code: 42 },
        ];
        for i in cases {
            let w = i.encode();
            assert_eq!(Instr::decode(w), Ok(i), "word {w:#x}");
        }
    }

    #[test]
    fn bad_words_rejected() {
        // COP1 (floating point) is not in Pete's ISA.
        assert!(Instr::decode(0x4600_0000).is_err());
        // SPECIAL funct 0x01 is unassigned.
        assert!(Instr::decode(0x0000_0001).is_err());
    }
}
