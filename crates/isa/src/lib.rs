//! The instruction set architecture of "Pete", the study's embedded RISC
//! processor.
//!
//! Pete executes a subset of the **MIPS-II** ISA (§5.1: no unaligned
//! load/store, no floating point, no MMU), extended with:
//!
//! * the **prime-field ISA extensions** of Table 5.1 (`MADDU`, `M2ADDU`,
//!   `ADDAU`, `SHA`) operating on the widened `(OvFlo, Hi, Lo)`
//!   accumulator;
//! * the **binary-field ISA extensions** of Table 5.2 (`MULGF2`,
//!   `MADDGF2`), carry-less counterparts of `MULTU`/`MADDU`;
//! * the **Coprocessor 2** instructions of Table 5.3 that command the
//!   "Monte" prime-field accelerator;
//! * the **Coprocessor 2** instructions of Table 5.6 that command the
//!   "Billie" binary-field accelerator.
//!
//! The crate provides the instruction definitions ([`instr::Instr`]),
//! binary encode/decode (extensions use the SPECIAL2 and COP2 opcode
//! spaces, mirroring how the paper "modified the mips-opc.c source file
//! ... and recompiled Binutils", §4.3), and a macro-assembler
//! ([`asm::Asm`]) that the `ule-swlib` crate uses to build the ECDSA
//! software suite into ROM images.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod instr;
pub mod reg;

pub use asm::{Asm, Program};
pub use instr::Instr;
pub use reg::Reg;
