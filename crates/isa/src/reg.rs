//! General-purpose register names (MIPS o32 conventions).

use std::fmt;

/// One of Pete's 32 general-purpose registers.
///
/// Register `$0` reads as zero and ignores writes. The calling convention
/// used by the software suite is o32-like: arguments in `a0..a3`, results
/// in `v0/v1`, `t*` caller-saved, `s*` callee-saved, `sp` the stack
/// pointer, `ra` the return address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// Hardwired zero.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary.
    pub const AT: Reg = Reg(1);
    /// Return value 0.
    pub const V0: Reg = Reg(2);
    /// Return value 1.
    pub const V1: Reg = Reg(3);
    /// Argument 0.
    pub const A0: Reg = Reg(4);
    /// Argument 1.
    pub const A1: Reg = Reg(5);
    /// Argument 2.
    pub const A2: Reg = Reg(6);
    /// Argument 3.
    pub const A3: Reg = Reg(7);
    /// Temporary 0.
    pub const T0: Reg = Reg(8);
    /// Temporary 1.
    pub const T1: Reg = Reg(9);
    /// Temporary 2.
    pub const T2: Reg = Reg(10);
    /// Temporary 3.
    pub const T3: Reg = Reg(11);
    /// Temporary 4.
    pub const T4: Reg = Reg(12);
    /// Temporary 5.
    pub const T5: Reg = Reg(13);
    /// Temporary 6.
    pub const T6: Reg = Reg(14);
    /// Temporary 7.
    pub const T7: Reg = Reg(15);
    /// Saved 0.
    pub const S0: Reg = Reg(16);
    /// Saved 1.
    pub const S1: Reg = Reg(17);
    /// Saved 2.
    pub const S2: Reg = Reg(18);
    /// Saved 3.
    pub const S3: Reg = Reg(19);
    /// Saved 4.
    pub const S4: Reg = Reg(20);
    /// Saved 5.
    pub const S5: Reg = Reg(21);
    /// Saved 6.
    pub const S6: Reg = Reg(22);
    /// Saved 7.
    pub const S7: Reg = Reg(23);
    /// Temporary 8.
    pub const T8: Reg = Reg(24);
    /// Temporary 9.
    pub const T9: Reg = Reg(25);
    /// Kernel 0 (unused by the suite).
    pub const K0: Reg = Reg(26);
    /// Kernel 1 (unused by the suite).
    pub const K1: Reg = Reg(27);
    /// Global pointer.
    pub const GP: Reg = Reg(28);
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Frame pointer / saved 8.
    pub const FP: Reg = Reg(30);
    /// Return address.
    pub const RA: Reg = Reg(31);

    /// The register number (0..=31).
    pub fn num(self) -> u8 {
        self.0
    }

    /// The conventional assembly name.
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0", "$t1", "$t2", "$t3",
            "$t4", "$t5", "$t6", "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
            "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
        ];
        NAMES[(self.0 & 31) as usize]
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_numbers() {
        assert_eq!(Reg::ZERO.num(), 0);
        assert_eq!(Reg::RA.num(), 31);
        assert_eq!(Reg::SP.name(), "$sp");
        assert_eq!(format!("{}", Reg::T3), "$t3");
    }
}
