//! Encode/decode round-trip tests over the whole instruction set,
//! driven by the workspace's deterministic PRNG.

use ule_isa::instr::Instr;
use ule_isa::reg::Reg;
use ule_testkit::Rng;

fn reg(rng: &mut Rng) -> Reg {
    Reg(rng.below(32) as u8)
}

fn breg(rng: &mut Rng) -> u8 {
    rng.below(16) as u8 // Billie has a 16-entry register file (§5.5.2)
}

fn shamt(rng: &mut Rng) -> u8 {
    rng.below(32) as u8
}

fn random_instr(rng: &mut Rng) -> Instr {
    let r = reg;
    match rng.below(46) {
        0 => Instr::Addu {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        1 => Instr::Subu {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        2 => Instr::Xor {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        3 => Instr::Nor {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        4 => Instr::Sltu {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        5 => Instr::Sll {
            rd: r(rng),
            rt: r(rng),
            shamt: shamt(rng),
        },
        6 => Instr::Srl {
            rd: r(rng),
            rt: r(rng),
            shamt: shamt(rng),
        },
        7 => Instr::Addiu {
            rt: r(rng),
            rs: r(rng),
            imm: rng.next_i16(),
        },
        8 => Instr::Ori {
            rt: r(rng),
            rs: r(rng),
            imm: rng.next_u16(),
        },
        9 => Instr::Lui {
            rt: r(rng),
            imm: rng.next_u16(),
        },
        10 => Instr::Multu {
            rs: r(rng),
            rt: r(rng),
        },
        11 => Instr::Divu {
            rs: r(rng),
            rt: r(rng),
        },
        12 => Instr::Mflo { rd: r(rng) },
        13 => Instr::Mfhi { rd: r(rng) },
        14 => Instr::Lw {
            rt: r(rng),
            base: r(rng),
            offset: rng.next_i16(),
        },
        15 => Instr::Sw {
            rt: r(rng),
            base: r(rng),
            offset: rng.next_i16(),
        },
        16 => Instr::Lbu {
            rt: r(rng),
            base: r(rng),
            offset: rng.next_i16(),
        },
        17 => Instr::Beq {
            rs: r(rng),
            rt: r(rng),
            offset: rng.next_i16(),
        },
        18 => Instr::Bne {
            rs: r(rng),
            rt: r(rng),
            offset: rng.next_i16(),
        },
        19 => Instr::Bltz {
            rs: r(rng),
            offset: rng.next_i16(),
        },
        20 => Instr::Bgez {
            rs: r(rng),
            offset: rng.next_i16(),
        },
        21 => Instr::J {
            target: rng.below(1 << 26) as u32,
        },
        22 => Instr::Jal {
            target: rng.below(1 << 26) as u32,
        },
        23 => Instr::Jr { rs: r(rng) },
        24 => Instr::Jalr {
            rd: r(rng),
            rs: r(rng),
        },
        25 => Instr::Break {
            code: rng.next_u16(),
        },
        26 => Instr::Maddu {
            rs: r(rng),
            rt: r(rng),
        },
        27 => Instr::M2addu {
            rs: r(rng),
            rt: r(rng),
        },
        28 => Instr::Addau {
            rs: r(rng),
            rt: r(rng),
        },
        29 => Instr::Sha,
        30 => Instr::Mulgf2 {
            rs: r(rng),
            rt: r(rng),
        },
        31 => Instr::Maddgf2 {
            rs: r(rng),
            rt: r(rng),
        },
        32 => Instr::Ctc2 {
            rt: r(rng),
            rd: rng.below(32) as u8,
        },
        33 => Instr::Cop2Sync,
        34 => Instr::Cop2LdA { rt: r(rng) },
        35 => Instr::Cop2LdB { rt: r(rng) },
        36 => Instr::Cop2LdN { rt: r(rng) },
        37 => Instr::Cop2Mul,
        38 => Instr::Cop2Add,
        39 => Instr::Cop2Sub,
        40 => Instr::Cop2St { rt: r(rng) },
        41 => Instr::BilLd {
            rt: r(rng),
            fs: breg(rng),
        },
        42 => Instr::BilSt {
            rt: r(rng),
            fs: breg(rng),
        },
        43 => Instr::BilMul {
            fd: breg(rng),
            fs: breg(rng),
            ft: breg(rng),
        },
        44 => Instr::BilSqr {
            fd: breg(rng),
            ft: breg(rng),
        },
        _ => Instr::BilAdd {
            fd: breg(rng),
            fs: breg(rng),
            ft: breg(rng),
        },
    }
}

#[test]
fn encode_decode_round_trip() {
    let mut rng = Rng::new(0x15a0);
    for _ in 0..512 {
        let i = random_instr(&mut rng);
        let w = i.encode();
        assert_eq!(Instr::decode(w), Ok(i));
    }
}

#[test]
fn display_never_panics() {
    let mut rng = Rng::new(0x15a1);
    for _ in 0..512 {
        let _ = random_instr(&mut rng).to_string();
    }
}

#[test]
fn decode_never_panics() {
    let mut rng = Rng::new(0x15a2);
    for _ in 0..4096 {
        let _ = Instr::decode(rng.next_u32());
    }
}

#[test]
fn decode_encode_fixpoint() {
    // Any word that decodes must re-encode to itself or to a word that
    // decodes identically (field normalization).
    let mut rng = Rng::new(0x15a3);
    for _ in 0..4096 {
        let w = rng.next_u32();
        if let Ok(i) = Instr::decode(w) {
            let w2 = i.encode();
            assert_eq!(Instr::decode(w2), Ok(i));
        }
    }
}
