//! Encode/decode round-trip property tests over the whole instruction set.

use proptest::prelude::*;
use ule_isa::instr::Instr;
use ule_isa::reg::Reg;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn arb_breg() -> impl Strategy<Value = u8> {
    0u8..16 // Billie has a 16-entry register file (§5.5.2)
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let r = arb_reg;
    prop_oneof![
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Addu { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Subu { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Xor { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Nor { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Sltu { rd, rs, rt }),
        (r(), r(), 0u8..32).prop_map(|(rd, rt, shamt)| Instr::Sll { rd, rt, shamt }),
        (r(), r(), 0u8..32).prop_map(|(rd, rt, shamt)| Instr::Srl { rd, rt, shamt }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, imm)| Instr::Addiu { rt, rs, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rt, rs, imm)| Instr::Ori { rt, rs, imm }),
        (r(), any::<u16>()).prop_map(|(rt, imm)| Instr::Lui { rt, imm }),
        (r(), r()).prop_map(|(rs, rt)| Instr::Multu { rs, rt }),
        (r(), r()).prop_map(|(rs, rt)| Instr::Divu { rs, rt }),
        r().prop_map(|rd| Instr::Mflo { rd }),
        r().prop_map(|rd| Instr::Mfhi { rd }),
        (r(), r(), any::<i16>()).prop_map(|(rt, base, offset)| Instr::Lw { rt, base, offset }),
        (r(), r(), any::<i16>()).prop_map(|(rt, base, offset)| Instr::Sw { rt, base, offset }),
        (r(), r(), any::<i16>()).prop_map(|(rt, base, offset)| Instr::Lbu { rt, base, offset }),
        (r(), r(), any::<i16>()).prop_map(|(rs, rt, offset)| Instr::Beq { rs, rt, offset }),
        (r(), r(), any::<i16>()).prop_map(|(rs, rt, offset)| Instr::Bne { rs, rt, offset }),
        (r(), any::<i16>()).prop_map(|(rs, offset)| Instr::Bltz { rs, offset }),
        (r(), any::<i16>()).prop_map(|(rs, offset)| Instr::Bgez { rs, offset }),
        (0u32..(1 << 26)).prop_map(|target| Instr::J { target }),
        (0u32..(1 << 26)).prop_map(|target| Instr::Jal { target }),
        r().prop_map(|rs| Instr::Jr { rs }),
        (r(), r()).prop_map(|(rd, rs)| Instr::Jalr { rd, rs }),
        any::<u16>().prop_map(|code| Instr::Break { code }),
        (r(), r()).prop_map(|(rs, rt)| Instr::Maddu { rs, rt }),
        (r(), r()).prop_map(|(rs, rt)| Instr::M2addu { rs, rt }),
        (r(), r()).prop_map(|(rs, rt)| Instr::Addau { rs, rt }),
        Just(Instr::Sha),
        (r(), r()).prop_map(|(rs, rt)| Instr::Mulgf2 { rs, rt }),
        (r(), r()).prop_map(|(rs, rt)| Instr::Maddgf2 { rs, rt }),
        (r(), 0u8..32).prop_map(|(rt, rd)| Instr::Ctc2 { rt, rd }),
        Just(Instr::Cop2Sync),
        r().prop_map(|rt| Instr::Cop2LdA { rt }),
        r().prop_map(|rt| Instr::Cop2LdB { rt }),
        r().prop_map(|rt| Instr::Cop2LdN { rt }),
        Just(Instr::Cop2Mul),
        Just(Instr::Cop2Add),
        Just(Instr::Cop2Sub),
        r().prop_map(|rt| Instr::Cop2St { rt }),
        (r(), arb_breg()).prop_map(|(rt, fs)| Instr::BilLd { rt, fs }),
        (r(), arb_breg()).prop_map(|(rt, fs)| Instr::BilSt { rt, fs }),
        (arb_breg(), arb_breg(), arb_breg()).prop_map(|(fd, fs, ft)| Instr::BilMul { fd, fs, ft }),
        (arb_breg(), arb_breg()).prop_map(|(fd, ft)| Instr::BilSqr { fd, ft }),
        (arb_breg(), arb_breg(), arb_breg()).prop_map(|(fd, fs, ft)| Instr::BilAdd { fd, fs, ft }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_round_trip(i in arb_instr()) {
        let w = i.encode();
        prop_assert_eq!(Instr::decode(w), Ok(i));
    }

    #[test]
    fn display_never_panics(i in arb_instr()) {
        let _ = i.to_string();
    }

    #[test]
    fn decode_never_panics(w in any::<u32>()) {
        let _ = Instr::decode(w);
    }

    #[test]
    fn decode_encode_fixpoint(w in any::<u32>()) {
        // Any word that decodes must re-encode to itself or to a word that
        // decodes identically (field normalization).
        if let Ok(i) = Instr::decode(w) {
            let w2 = i.encode();
            prop_assert_eq!(Instr::decode(w2), Ok(i));
        }
    }
}
