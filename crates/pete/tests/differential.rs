//! Differential testing of Pete's ALU/multiplier semantics: random
//! straight-line programs are executed on the cycle-level machine and on
//! an independent, dead-simple interpreter written in this test. Any
//! divergence is a simulator bug.

use ule_isa::asm::Asm;
use ule_isa::instr::Instr;
use ule_isa::reg::Reg;
use ule_pete::cpu::{EngineTier, ExecOptions, Machine, MachineConfig, RunExit};
use ule_testkit::Rng;

/// The registers the generated programs may touch (avoid $zero/$sp/$ra).
const POOL: [Reg; 10] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::V0,
    Reg::V1,
    Reg::A0,
    Reg::A1,
];

#[derive(Clone, Debug)]
enum Op {
    Addu(usize, usize, usize),
    Subu(usize, usize, usize),
    And(usize, usize, usize),
    Or(usize, usize, usize),
    Xor(usize, usize, usize),
    Nor(usize, usize, usize),
    Slt(usize, usize, usize),
    Sltu(usize, usize, usize),
    Sll(usize, usize, u8),
    Srl(usize, usize, u8),
    Sra(usize, usize, u8),
    Addiu(usize, usize, i16),
    Andi(usize, usize, u16),
    Ori(usize, usize, u16),
    Xori(usize, usize, u16),
    Lui(usize, u16),
    MultuMflo(usize, usize, usize),
    MultMfhi(usize, usize, usize),
}

fn random_op(rng: &mut Rng) -> Op {
    fn r(rng: &mut Rng) -> usize {
        rng.below(POOL.len() as u64) as usize
    }
    match rng.below(18) {
        0 => Op::Addu(r(rng), r(rng), r(rng)),
        1 => Op::Subu(r(rng), r(rng), r(rng)),
        2 => Op::And(r(rng), r(rng), r(rng)),
        3 => Op::Or(r(rng), r(rng), r(rng)),
        4 => Op::Xor(r(rng), r(rng), r(rng)),
        5 => Op::Nor(r(rng), r(rng), r(rng)),
        6 => Op::Slt(r(rng), r(rng), r(rng)),
        7 => Op::Sltu(r(rng), r(rng), r(rng)),
        8 => Op::Sll(r(rng), r(rng), rng.below(32) as u8),
        9 => Op::Srl(r(rng), r(rng), rng.below(32) as u8),
        10 => Op::Sra(r(rng), r(rng), rng.below(32) as u8),
        11 => Op::Addiu(r(rng), r(rng), rng.next_i16()),
        12 => Op::Andi(r(rng), r(rng), rng.next_u16()),
        13 => Op::Ori(r(rng), r(rng), rng.next_u16()),
        14 => Op::Xori(r(rng), r(rng), rng.next_u16()),
        15 => Op::Lui(r(rng), rng.next_u16()),
        16 => Op::MultuMflo(r(rng), r(rng), r(rng)),
        _ => Op::MultMfhi(r(rng), r(rng), r(rng)),
    }
}

/// The independent oracle.
fn interpret(init: &[u32; 10], ops: &[Op]) -> [u32; 10] {
    let mut r = *init;
    for op in ops {
        match *op {
            Op::Addu(d, a, b) => r[d] = r[a].wrapping_add(r[b]),
            Op::Subu(d, a, b) => r[d] = r[a].wrapping_sub(r[b]),
            Op::And(d, a, b) => r[d] = r[a] & r[b],
            Op::Or(d, a, b) => r[d] = r[a] | r[b],
            Op::Xor(d, a, b) => r[d] = r[a] ^ r[b],
            Op::Nor(d, a, b) => r[d] = !(r[a] | r[b]),
            Op::Slt(d, a, b) => r[d] = ((r[a] as i32) < r[b] as i32) as u32,
            Op::Sltu(d, a, b) => r[d] = (r[a] < r[b]) as u32,
            Op::Sll(d, a, s) => r[d] = r[a] << s,
            Op::Srl(d, a, s) => r[d] = r[a] >> s,
            Op::Sra(d, a, s) => r[d] = ((r[a] as i32) >> s) as u32,
            Op::Addiu(d, a, i) => r[d] = r[a].wrapping_add(i as i32 as u32),
            Op::Andi(d, a, i) => r[d] = r[a] & i as u32,
            Op::Ori(d, a, i) => r[d] = r[a] | i as u32,
            Op::Xori(d, a, i) => r[d] = r[a] ^ i as u32,
            Op::Lui(d, i) => r[d] = (i as u32) << 16,
            Op::MultuMflo(d, a, b) => r[d] = (r[a] as u64).wrapping_mul(r[b] as u64) as u32,
            Op::MultMfhi(d, a, b) => {
                r[d] = (((r[a] as i32 as i64).wrapping_mul(r[b] as i32 as i64)) >> 32) as u32
            }
        }
    }
    r
}

fn emit(asm: &mut Asm, op: &Op) {
    let p = |i: usize| POOL[i];
    match *op {
        Op::Addu(d, a, b) => asm.addu(p(d), p(a), p(b)),
        Op::Subu(d, a, b) => asm.subu(p(d), p(a), p(b)),
        Op::And(d, a, b) => asm.and(p(d), p(a), p(b)),
        Op::Or(d, a, b) => asm.or(p(d), p(a), p(b)),
        Op::Xor(d, a, b) => asm.xor(p(d), p(a), p(b)),
        Op::Nor(d, a, b) => asm.nor(p(d), p(a), p(b)),
        Op::Slt(d, a, b) => asm.slt(p(d), p(a), p(b)),
        Op::Sltu(d, a, b) => asm.sltu(p(d), p(a), p(b)),
        Op::Sll(d, a, s) => asm.sll(p(d), p(a), s),
        Op::Srl(d, a, s) => asm.srl(p(d), p(a), s),
        Op::Sra(d, a, s) => asm.sra(p(d), p(a), s),
        Op::Addiu(d, a, i) => asm.addiu(p(d), p(a), i),
        Op::Andi(d, a, i) => asm.andi(p(d), p(a), i),
        Op::Ori(d, a, i) => asm.ori(p(d), p(a), i),
        Op::Xori(d, a, i) => asm.xori(p(d), p(a), i),
        Op::Lui(d, i) => asm.lui(p(d), i),
        Op::MultuMflo(d, a, b) => {
            asm.multu(p(a), p(b));
            asm.mflo(p(d));
        }
        Op::MultMfhi(d, a, b) => {
            asm.mult(p(a), p(b));
            asm.mfhi(p(d));
        }
    }
}

#[test]
fn random_programs_match_the_oracle() {
    let mut rng = Rng::new(0xd1ff);
    for _ in 0..128 {
        let mut init = [0u32; 10];
        for v in &mut init {
            *v = rng.next_u32();
        }
        let ops: Vec<Op> = {
            let n = rng.range(1, 60);
            (0..n).map(|_| random_op(&mut rng)).collect()
        };
        let mut asm = Asm::new();
        asm.label("main");
        for op in &ops {
            emit(&mut asm, op);
        }
        asm.brk(0);
        let program = asm.link("main").expect("link");
        // Both engine tiers must match the oracle — and each other.
        let mut per_tier = [EngineTier::Fast, EngineTier::Reference].map(|tier| {
            let mut m = Machine::new(&program, MachineConfig::baseline());
            for (i, &v) in init.iter().enumerate() {
                m.set_reg(POOL[i], v);
            }
            let exit = m.run_with(ExecOptions::new(1_000_000).with_tier(tier));
            assert_eq!(exit, RunExit::Halted { code: 0 });
            m
        });
        let expect = interpret(&init, &ops);
        for m in &per_tier {
            for (i, &e) in expect.iter().enumerate() {
                assert_eq!(m.reg(POOL[i]), e, "register {} diverged", POOL[i]);
            }
        }
        let [fast, reference] = &mut per_tier;
        assert_eq!(fast.counters(), reference.counters(), "tiers diverge");
        // Timing sanity: at least one cycle per instruction, bounded
        // stall overhead (no memory, so only multiplier stalls).
        let c = reference.counters();
        assert!(c.cycles >= c.instructions);
        assert!(c.cycles <= c.instructions + 5 * c.mult_ops + 8);
    }
}

#[test]
fn encoded_programs_decode_back() {
    // The ROM image words all decode to the emitted instructions.
    let mut rng = Rng::new(0xdec0);
    for _ in 0..128 {
        let n = rng.range(1, 30);
        let ops: Vec<Op> = (0..n).map(|_| random_op(&mut rng)).collect();
        let mut asm = Asm::new();
        asm.label("main");
        for op in &ops {
            emit(&mut asm, op);
        }
        asm.brk(0);
        let program = asm.link("main").expect("link");
        for (i, &w) in program.rom().iter().take(program.text_words()).enumerate() {
            assert!(
                Instr::decode(w).is_ok(),
                "text word {i} ({w:#010x}) failed to decode"
            );
        }
    }
}
