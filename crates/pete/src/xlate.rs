//! The fast engine's translation cache (DESIGN.md §6a).
//!
//! At first fast-tier dispatch the whole program image is translated,
//! one word at a time, into a table of pre-resolved operations
//! ([`XOp`]): decode is done, PC-relative branch targets and jump
//! destinations are absolute addresses, and the operands of the hot
//! single-cycle instruction classes are unpacked into flat fields so
//! the dispatch loop never touches [`Instr`] again. A second pass
//! groups the maximal straight-line runs of the classes that dominate
//! the field-arithmetic kernels (`fmul`/`fred`: ALU, word load, word
//! store) into basic-block superinstructions whose internal load-use
//! interlocks are decided *here*, at translation time, instead of per
//! step; branches fuse the op in their delay slot the same way.
//!
//! The table is position-indexed (`pc / 4`), and every suffix of a run
//! gets its own block entry over the shared member pool, so a jump
//! into the middle of a run still dispatches a block: fusion never
//! changes reachability. Everything the
//! translator cannot (or need not) speed up — Hi/Lo multiplies,
//! subword memory ops, coprocessor commands — keeps its decoded
//! [`Instr`] in [`XOp::Other`] and is executed by the reference
//! semantics in `cpu.rs`, which guarantees the two tiers agree by
//! construction on everything outside the translated hot classes.

use ule_isa::instr::Instr;
use ule_isa::reg::Reg;

/// Single-cycle ALU operation kinds (the MIPS-II integer subset Pete
/// executes in one issue cycle, plus `lui`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AluKind {
    Addu,
    Subu,
    And,
    Or,
    Xor,
    Nor,
    Slt,
    Sltu,
    Sllv,
    Srlv,
    Srav,
    SllI,
    SrlI,
    SraI,
    Addiu,
    Slti,
    Sltiu,
    Andi,
    Ori,
    Xori,
    Lui,
}

/// A pre-decoded single-cycle ALU instruction. `imm` holds the
/// immediate already in execute-ready form — sign- or zero-extended
/// (or `lui`-shifted) at translation time by the same rule
/// `Machine::execute` applies, so evaluation never re-extends.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AluOp {
    pub kind: AluKind,
    pub rd: Reg,
    pub rs: Reg,
    pub rt: Reg,
    pub imm: u32,
}

impl AluOp {
    /// Bitmask of the registers this op needs in its execute stage
    /// (load-use interlock sources) — mirrors `src_mask` on the full
    /// [`Instr`].
    pub fn src_mask(self) -> u32 {
        use AluKind::*;
        match self.kind {
            Addu | Subu | And | Or | Xor | Nor | Slt | Sltu | Sllv | Srlv | Srav => {
                (1 << self.rs.num()) | (1 << self.rt.num())
            }
            SllI | SrlI | SraI => 1 << self.rt.num(),
            Addiu | Slti | Sltiu | Andi | Ori | Xori => 1 << self.rs.num(),
            Lui => 0,
        }
    }
}

/// A pre-decoded full-word load or store.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MemOp {
    pub rt: Reg,
    pub base: Reg,
    pub offset: i16,
}

/// Conditional-branch comparison kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BrCond {
    Beq,
    Bne,
    Blez,
    Bgtz,
    Bltz,
    Bgez,
}

/// A conditional branch with its target already resolved to an
/// absolute address (`pc + 4 + (offset << 2)`).
#[derive(Clone, Copy, Debug)]
pub(crate) struct BranchOp {
    pub cond: BrCond,
    pub rs: Reg,
    pub rt: Reg,
    pub target: u32,
}

impl BranchOp {
    /// Execute-stage source registers, as a bitmask.
    pub fn src_mask(self) -> u32 {
        match self.cond {
            BrCond::Beq | BrCond::Bne => (1 << self.rs.num()) | (1 << self.rt.num()),
            _ => 1 << self.rs.num(),
        }
    }
}

/// One member of a translated basic block: the three straight-line
/// classes whose timing is fully static (one issue cycle, interlocks
/// decidable at translation time).
#[derive(Clone, Copy, Debug)]
pub(crate) enum BOp {
    Alu(AluOp),
    Lw(MemOp),
    Sw(MemOp),
}

impl BOp {
    /// Execute-stage source registers, as a bitmask.
    pub fn src_mask(self) -> u32 {
        match self {
            BOp::Alu(a) => a.src_mask(),
            BOp::Lw(m) | BOp::Sw(m) => 1 << m.base.num(),
        }
    }
}

/// Longest run a single block entry may cover; longer straight-line
/// runs are chunked (the inter-chunk interlock is handled dynamically
/// through `last_load_dest`, like any block boundary).
const MAX_BLOCK: usize = 4096;

/// One translated program word, indexed by `pc / 4`.
///
/// The block and fused-branch variants can always fall back to
/// executing just their first member (delay slots, cycle-limit
/// boundary) without a second table.
#[derive(Clone, Copy, Debug)]
pub(crate) enum XOp {
    /// A straight-line basic block of `len >= 2` ALU/load/store ops
    /// starting at this word: `pool[off..off + len]` in the table's
    /// member pool. `stalls` is the statically-known count of internal
    /// load-use interlocks *between* members (the first member's
    /// interlock against the preceding instruction stays dynamic, via
    /// `first_mask`). Because every suffix of a run is itself a block,
    /// a jump into the middle of a run still dispatches a block.
    Block {
        off: u32,
        len: u16,
        stalls: u16,
        first_mask: u32,
    },
    /// A straight-line block that runs all the way into its
    /// terminating conditional branch and that branch's delay slot:
    /// one dispatch covers the whole loop body. The descriptor lives
    /// in the table's side pool ([`BrBlock`]) to keep this enum small.
    BlockBr { idx: u32 },
    /// A lone single-cycle ALU op.
    Alu(AluOp),
    /// A lone word load.
    Lw(MemOp),
    /// A lone word store.
    Sw(MemOp),
    /// A conditional branch (pre-resolved target).
    Branch(BranchOp),
    /// A conditional branch fused with the ALU/load/store op in its
    /// delay slot: one dispatch resolves the branch (prediction,
    /// mispredict penalty), executes the delay-slot member, and lands
    /// directly on the destination — no `pending_branch` round-trip.
    /// The delay-slot word keeps its own table entry for direct jumps
    /// into it.
    BranchDs(BranchOp, BOp),
    /// `j`/`jal` with the absolute destination; `link` writes `$ra`.
    Jump { target: u32, link: bool },
    /// `jr`/`jalr`; `link` is `jalr`'s destination register.
    JumpReg { rs: Reg, link: Option<Reg> },
    /// `j`/`jal` fused with the member in its delay slot: one dispatch
    /// links, executes the member, and lands on the target.
    JumpDs { target: u32, link: bool, ds: BOp },
    /// `jr`/`jalr` fused with the member in its delay slot. The target
    /// register is read before the member executes, as the reference
    /// engine does.
    JumpRegDs { rs: Reg, link: Option<Reg>, ds: BOp },
    /// `break`: halt with the code.
    Break { code: u16 },
    /// Anything else (Hi/Lo, subword memory, COP2, extensions):
    /// executed by the shared reference semantics.
    Other(Instr),
    /// Not a decodable instruction word — fetching it is a simulation
    /// error, reported exactly as the reference fetch does.
    Invalid,
}

/// Execute-stage source registers of an instruction, as a bitmask over
/// register numbers — the allocation-free replacement for the old
/// `ex_sources: Vec<Reg>` (the load-use interlock is the only
/// consumer, and only ever tests a single register against it).
pub(crate) fn src_mask(i: Instr) -> u32 {
    use Instr::*;
    let one = |r: Reg| 1u32 << r.num();
    let two = |a: Reg, b: Reg| (1u32 << a.num()) | (1u32 << b.num());
    match i {
        Addu { rs, rt, .. }
        | Subu { rs, rt, .. }
        | And { rs, rt, .. }
        | Or { rs, rt, .. }
        | Xor { rs, rt, .. }
        | Nor { rs, rt, .. }
        | Slt { rs, rt, .. }
        | Sltu { rs, rt, .. } => two(rs, rt),
        Sllv { rt, rs, .. } | Srlv { rt, rs, .. } | Srav { rt, rs, .. } => two(rt, rs),
        Sll { rt, .. } | Srl { rt, .. } | Sra { rt, .. } => one(rt),
        Addiu { rs, .. }
        | Slti { rs, .. }
        | Sltiu { rs, .. }
        | Andi { rs, .. }
        | Ori { rs, .. }
        | Xori { rs, .. } => one(rs),
        Lui { .. } => 0,
        Mult { rs, rt }
        | Multu { rs, rt }
        | Div { rs, rt }
        | Divu { rs, rt }
        | Maddu { rs, rt }
        | M2addu { rs, rt }
        | Addau { rs, rt }
        | Mulgf2 { rs, rt }
        | Maddgf2 { rs, rt } => two(rs, rt),
        Mfhi { .. } | Mflo { .. } | Sha => 0,
        Mthi { rs } | Mtlo { rs } => one(rs),
        Lw { base, .. }
        | Lh { base, .. }
        | Lhu { base, .. }
        | Lb { base, .. }
        | Lbu { base, .. } => one(base),
        // Store data is needed in MEM, one stage later: forwardable.
        Sw { base, .. } | Sh { base, .. } | Sb { base, .. } => one(base),
        Beq { rs, rt, .. } | Bne { rs, rt, .. } => two(rs, rt),
        Blez { rs, .. } | Bgtz { rs, .. } | Bltz { rs, .. } | Bgez { rs, .. } => one(rs),
        J { .. } | Jal { .. } | Break { .. } => 0,
        Jr { rs } | Jalr { rs, .. } => one(rs),
        Ctc2 { rt, .. } => one(rt),
        Cop2LdA { rt }
        | Cop2LdB { rt }
        | Cop2LdN { rt }
        | Cop2St { rt }
        | BilLd { rt, .. }
        | BilSt { rt, .. } => one(rt),
        Cop2Sync | Cop2Mul | Cop2Add | Cop2Sub | BilMul { .. } | BilSqr { .. } | BilAdd { .. } => 0,
    }
}

/// Translates one decoded instruction at address `pc` into its
/// single-op form.
fn classify(i: Instr, pc: u32) -> XOp {
    use Instr::*;
    let seq = pc.wrapping_add(4);
    let alu = |kind, rd, rs, rt, imm| {
        XOp::Alu(AluOp {
            kind,
            rd,
            rs,
            rt,
            imm,
        })
    };
    let br = |cond, rs, rt, offset: i16| {
        XOp::Branch(BranchOp {
            cond,
            rs,
            rt,
            target: seq.wrapping_add((offset as i32 as u32) << 2),
        })
    };
    let z = Reg::ZERO;
    match i {
        Addu { rd, rs, rt } => alu(AluKind::Addu, rd, rs, rt, 0),
        Subu { rd, rs, rt } => alu(AluKind::Subu, rd, rs, rt, 0),
        And { rd, rs, rt } => alu(AluKind::And, rd, rs, rt, 0),
        Or { rd, rs, rt } => alu(AluKind::Or, rd, rs, rt, 0),
        Xor { rd, rs, rt } => alu(AluKind::Xor, rd, rs, rt, 0),
        Nor { rd, rs, rt } => alu(AluKind::Nor, rd, rs, rt, 0),
        Slt { rd, rs, rt } => alu(AluKind::Slt, rd, rs, rt, 0),
        Sltu { rd, rs, rt } => alu(AluKind::Sltu, rd, rs, rt, 0),
        Sllv { rd, rt, rs } => alu(AluKind::Sllv, rd, rs, rt, 0),
        Srlv { rd, rt, rs } => alu(AluKind::Srlv, rd, rs, rt, 0),
        Srav { rd, rt, rs } => alu(AluKind::Srav, rd, rs, rt, 0),
        Sll { rd, rt, shamt } => alu(AluKind::SllI, rd, z, rt, shamt as u32),
        Srl { rd, rt, shamt } => alu(AluKind::SrlI, rd, z, rt, shamt as u32),
        Sra { rd, rt, shamt } => alu(AluKind::SraI, rd, z, rt, shamt as u32),
        Addiu { rt, rs, imm } => alu(AluKind::Addiu, rt, rs, z, imm as i32 as u32),
        Slti { rt, rs, imm } => alu(AluKind::Slti, rt, rs, z, imm as i32 as u32),
        Sltiu { rt, rs, imm } => alu(AluKind::Sltiu, rt, rs, z, imm as i32 as u32),
        Andi { rt, rs, imm } => alu(AluKind::Andi, rt, rs, z, imm as u32),
        Ori { rt, rs, imm } => alu(AluKind::Ori, rt, rs, z, imm as u32),
        Xori { rt, rs, imm } => alu(AluKind::Xori, rt, rs, z, imm as u32),
        Lui { rt, imm } => alu(AluKind::Lui, rt, z, z, (imm as u32) << 16),
        Lw { rt, base, offset } => XOp::Lw(MemOp { rt, base, offset }),
        Sw { rt, base, offset } => XOp::Sw(MemOp { rt, base, offset }),
        Beq { rs, rt, offset } => br(BrCond::Beq, rs, rt, offset),
        Bne { rs, rt, offset } => br(BrCond::Bne, rs, rt, offset),
        Blez { rs, offset } => br(BrCond::Blez, rs, z, offset),
        Bgtz { rs, offset } => br(BrCond::Bgtz, rs, z, offset),
        Bltz { rs, offset } => br(BrCond::Bltz, rs, z, offset),
        Bgez { rs, offset } => br(BrCond::Bgez, rs, z, offset),
        J { target } => XOp::Jump {
            target: (seq & 0xf000_0000) | (target << 2),
            link: false,
        },
        Jal { target } => XOp::Jump {
            target: (seq & 0xf000_0000) | (target << 2),
            link: true,
        },
        Jr { rs } => XOp::JumpReg { rs, link: None },
        Jalr { rd, rs } => XOp::JumpReg { rs, link: Some(rd) },
        Break { code } => XOp::Break { code },
        other => XOp::Other(other),
    }
}

/// The fast engine's translation of one program image: the position-
/// indexed op table, the flat member pool its block entries slice,
/// and the side pool of branch-terminated block descriptors.
pub(crate) struct XTable {
    pub ops: Box<[XOp]>,
    pub pool: Box<[BOp]>,
    pub brs: Box<[BrBlock]>,
}

/// The control-transfer op that ends a [`BrBlock`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum Term {
    Branch(BranchOp),
    Jump { target: u32, link: bool },
    JumpReg { rs: Reg, link: Option<Reg> },
}

impl Term {
    /// Execute-stage source registers, as a bitmask.
    pub fn src_mask(self) -> u32 {
        match self {
            Term::Branch(b) => b.src_mask(),
            Term::Jump { .. } => 0,
            Term::JumpReg { rs, .. } => 1 << rs.num(),
        }
    }
}

/// Descriptor of a control-terminated block ([`XOp::BlockBr`]): `len`
/// straight-line members (`pool[off..off + len]`, possibly zero-stall
/// suffixes of a longer run), then the branch or jump `term`, then
/// its delay-slot member `ds`. `stalls` counts every statically-known
/// load-use interlock inside the dispatch, *including* the
/// terminator's interlock against a trailing load member; the entry
/// interlock stays dynamic via `first_mask`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BrBlock {
    pub off: u32,
    pub len: u16,
    pub stalls: u16,
    pub first_mask: u32,
    pub term: Term,
    pub ds: BOp,
}

/// The internal load-use stall between two adjacent block members: the
/// first is a load whose destination the second needs in execute.
fn pair_stall(a: BOp, b: BOp) -> u16 {
    match a {
        BOp::Lw(m) => (m.rt != Reg::ZERO && b.src_mask() >> m.rt.num() & 1 != 0) as u16,
        _ => 0,
    }
}

/// Builds the translation table for a program image.
///
/// Every maximal straight-line run of ALU/load/store words becomes a
/// family of suffix blocks sharing one slice of the member pool, so
/// per-instruction fetch/issue accounting can be applied once per
/// block (the dispatcher handles the I-cache fetch stream per 16-byte
/// line: only a line's first access is dynamic — the rest of the line
/// cannot be evicted under it mid-block). Branches additionally fuse
/// the op in their delay slot.
pub(crate) fn translate(decoded: &[Option<Instr>]) -> XTable {
    let mut ops: Vec<XOp> = decoded
        .iter()
        .enumerate()
        .map(|(idx, d)| match d {
            Some(i) => classify(*i, (idx as u32) * 4),
            None => XOp::Invalid,
        })
        .collect();
    let mut pool: Vec<BOp> = Vec::new();
    let member = |op: XOp| match op {
        XOp::Alu(a) => Some(BOp::Alu(a)),
        XOp::Lw(m) => Some(BOp::Lw(m)),
        XOp::Sw(m) => Some(BOp::Sw(m)),
        _ => None,
    };
    // Branch/jump + delay-slot fusion (both fetch paths: the delay-
    // slot fetch goes through the same dynamic accounting as a lone
    // dispatch). The delay word keeps its own table entry for direct
    // jumps into it.
    for idx in 0..ops.len().saturating_sub(1) {
        let Some(ds) = member(ops[idx + 1]) else {
            continue;
        };
        match ops[idx] {
            XOp::Branch(b) => ops[idx] = XOp::BranchDs(b, ds),
            XOp::Jump { target, link } => ops[idx] = XOp::JumpDs { target, link, ds },
            XOp::JumpReg { rs, link } => ops[idx] = XOp::JumpRegDs { rs, link, ds },
            _ => {}
        }
    }
    let n = ops.len();
    let mut brs: Vec<BrBlock> = Vec::new();
    let mut s = 0;
    while s < n {
        let Some(first) = member(ops[s]) else {
            s += 1;
            continue;
        };
        let mut members = vec![first];
        let mut e = s + 1;
        while e < n {
            match member(ops[e]) {
                Some(m) => members.push(m),
                None => break,
            }
            e += 1;
        }
        let len = e - s;
        // A run that flows straight into a fused control-transfer/
        // delay-slot pair extends its blocks through it: the whole
        // loop body (or call site, or epilogue) becomes one dispatch.
        let tail = match ops.get(e) {
            Some(&XOp::BranchDs(b, d)) => Some((Term::Branch(b), d)),
            Some(&XOp::JumpDs { target, link, ds }) => Some((Term::Jump { target, link }, ds)),
            Some(&XOp::JumpRegDs { rs, link, ds }) => Some((Term::JumpReg { rs, link }, ds)),
            _ => None,
        };
        if len >= 2 || tail.is_some() {
            // Suffix sums of the pairwise internal stalls: `suffix[i]`
            // counts the interlocks from member i to the end of the run.
            let mut suffix = vec![0u16; len];
            for i in (0..len - 1).rev() {
                suffix[i] = suffix[i + 1] + pair_stall(members[i], members[i + 1]);
            }
            let base = pool.len();
            pool.extend(members.iter().copied());
            for i in 0..len {
                let full = len - i;
                if let (Some((term, d)), true) = (tail, full <= MAX_BLOCK) {
                    // The terminator's own interlock against a
                    // trailing load member is statically known too.
                    let br_stall = match members[len - 1] {
                        BOp::Lw(m) => {
                            (m.rt != Reg::ZERO && term.src_mask() >> m.rt.num() & 1 != 0) as u16
                        }
                        _ => 0,
                    };
                    brs.push(BrBlock {
                        off: (base + i) as u32,
                        len: full as u16,
                        stalls: suffix[i] + br_stall,
                        first_mask: members[i].src_mask(),
                        term,
                        ds: d,
                    });
                    ops[s + i] = XOp::BlockBr {
                        idx: (brs.len() - 1) as u32,
                    };
                } else if full >= 2 {
                    let blen = full.min(MAX_BLOCK);
                    // Stalls inside the (possibly chunked) window; the
                    // interlock at a chunk seam is re-checked
                    // dynamically through `last_load_dest`.
                    let stalls = suffix[i] - suffix[i + blen - 1];
                    ops[s + i] = XOp::Block {
                        off: (base + i) as u32,
                        len: blen as u16,
                        stalls,
                        first_mask: members[i].src_mask(),
                    };
                }
            }
        }
        s = e;
    }
    XTable {
        ops: ops.into_boxed_slice(),
        pool: pool.into_boxed_slice(),
        brs: brs.into_boxed_slice(),
    }
}
