//! The coprocessor-2 attachment point (§5.4.1, §5.5.1).
//!
//! Pete fetches and decodes accelerator command instructions like any
//! other instruction; in the execute stage they are forwarded to the
//! attached coprocessor (Monte or Billie). The coprocessor owns an
//! instruction queue and its own port on the (true dual-port) shared RAM,
//! so Pete only stalls when the queue is full or on an explicit
//! `cop2sync`.
//!
//! The accelerator models are *event-based*: `issue` performs the
//! functional effect immediately and returns the cycle at which the CPU
//! may continue; `idle_at` reports when all queued work drains. This is
//! timing-equivalent to cycle-stepping because the shared RAM is
//! dual-ported (no port contention with Pete) and the software always
//! synchronizes before touching accelerator outputs.

use crate::mem::Ram;
use ule_isa::instr::Instr;

/// Activity accounting for one accelerator, used by the energy model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CopStats {
    /// Cycles the arithmetic core was computing.
    pub busy_cycles: u64,
    /// Cycles a DMA / load-store unit was moving data.
    pub dma_cycles: u64,
    /// Commands accepted.
    pub instructions: u64,
    /// Reads the accelerator's port performed on the shared RAM.
    pub ram_reads: u64,
    /// Writes the accelerator's port performed on the shared RAM.
    pub ram_writes: u64,
    /// Microcode-store reads (Monte) / sequencer steps (Billie).
    pub ucode_reads: u64,
    /// Multiply/square datapath operations started.
    pub mul_ops: u64,
    /// Load/store (DMA transfer) commands executed.
    pub ls_ops: u64,
}

impl CopStats {
    /// Adds another run's stats onto this one. Exhaustive
    /// destructuring: a new field must be accounted here (and in the
    /// metrics schema) to compile.
    pub fn accumulate(&mut self, other: &CopStats) {
        let CopStats {
            busy_cycles,
            dma_cycles,
            instructions,
            ram_reads,
            ram_writes,
            ucode_reads,
            mul_ops,
            ls_ops,
        } = *other;
        self.busy_cycles += busy_cycles;
        self.dma_cycles += dma_cycles;
        self.instructions += instructions;
        self.ram_reads += ram_reads;
        self.ram_writes += ram_writes;
        self.ucode_reads += ucode_reads;
        self.mul_ops += mul_ops;
        self.ls_ops += ls_ops;
    }
}

/// A coprocessor plugged into Pete's COP2 interface.
pub trait Coprocessor {
    /// Offers a decoded COP2 instruction at `cycle`, with the value of the
    /// GPR `rt` operand (an address for loads/stores, a control value for
    /// `ctc2`).
    ///
    /// Returns the cycle at which the *CPU* may proceed: `cycle + 1` when
    /// the instruction was queued immediately, later when the instruction
    /// queue was full (structural stall).
    fn issue(&mut self, instr: Instr, rt_value: u32, cycle: u64, ram: &mut Ram) -> u64;

    /// The cycle at which every queued operation completes (`cop2sync`
    /// stalls until then).
    fn idle_at(&self) -> u64;

    /// Activity counters.
    fn stats(&self) -> CopStats;

    /// Short display name ("Monte", "Billie") for reports.
    fn name(&self) -> &'static str;
}

/// A null coprocessor: accepts nothing; COP2 instructions are a
/// programming error in configurations without an accelerator.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCoprocessor;

impl Coprocessor for NoCoprocessor {
    fn issue(&mut self, instr: Instr, _rt: u32, _cycle: u64, _ram: &mut Ram) -> u64 {
        panic!("COP2 instruction {instr} executed but no coprocessor is attached");
    }

    fn idle_at(&self) -> u64 {
        0
    }

    fn stats(&self) -> CopStats {
        CopStats::default()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}
