//! Per-routine cycle and activity attribution (PC-range buckets plus a
//! shadow call stack).
//!
//! The assembler already knows every routine's start address
//! (`Program::text_symbols`), so profiling needs no instrumentation in
//! the software suite: when enabled, [`Machine::step`] records the
//! cycle delta of each retired instruction into the bucket owning its
//! PC (binary search over sorted routine starts). Because `cycle` only
//! advances inside `step`, the bucket totals sum *exactly* to the
//! machine's total cycles — the invariant the attribution test pins.
//!
//! On top of the flat buckets, the profiler maintains a **shadow call
//! stack** driven by retirement of the link instructions:
//!
//! * `jal`, and `jalr` with a non-zero destination, push a frame
//!   recording the architectural return address (`pc + 8`, past the
//!   delay slot) and the call-tree node the call was made from;
//! * any register jump (`jr`, or `jalr` with `rd == $zero`) whose
//!   target matches a recorded return address pops back to that
//!   frame's caller — intervening frames abandoned by tail calls are
//!   discarded in the same pop;
//! * a register jump that matches nothing (a `jalr`-style tail call or
//!   computed jump) leaves the stack alone: the leaf routine simply
//!   changes under the same caller, so the tail-callee appears as a
//!   sibling of the tail-caller — and the original frame still pops
//!   when the tail-callee eventually returns through the shared `$ra`.
//!
//! The current call-tree node is always `child(caller-node, routine of
//! pc)`, with one folding rule: if the caller node already *is* that
//! routine, the node folds into it. The fold makes the delay slot of a
//! call bill to the caller (its PC is still in the caller) and makes
//! direct recursion accumulate in the existing frame's node instead of
//! growing a chain, exactly like a collapsed flamegraph.
//!
//! Each bucket and each call-tree node also carries an
//! [`ActivitySlice`] of memory-system and coprocessor counters, deltaed
//! per retired instruction in `step`. All *counted* traffic happens
//! inside `step` (harness `poke`/`peek` are uncounted by design), so
//! the per-routine slices sum exactly to the run's `RawStats`.
//!
//! [`Machine::step`]: crate::cpu::Machine::step

use std::collections::HashMap;

/// Sentinel parent id for call-tree roots (and the profiler's initial
/// context before any call has been observed).
pub const ROOT: u32 = u32::MAX;

/// Shadow-stack depth cap; calls beyond it are folded into the current
/// node so a pathological (or leaked) stack cannot grow without bound.
const MAX_SHADOW_DEPTH: usize = 512;

/// Memory-system and coprocessor activity attributed to one routine or
/// call-tree node (the per-instruction delta of the machine's counted
/// statistics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActivitySlice {
    /// ROM word reads (uncached instruction fetches + data reads).
    pub rom_reads: u64,
    /// ROM line reads (I-cache fills and prefetches).
    pub rom_line_reads: u64,
    /// RAM reads on Pete's port plus accelerator DMA reads.
    pub ram_reads: u64,
    /// RAM writes on Pete's port plus accelerator DMA writes.
    pub ram_writes: u64,
    /// Instruction-cache lookups (hits = accesses − misses).
    pub icache_accesses: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Coprocessor multiply/square datapath operations started.
    pub cop_mul_ops: u64,
    /// Coprocessor load/store (DMA transfer) commands executed.
    pub cop_ls_ops: u64,
}

impl ActivitySlice {
    /// Adds another slice onto this one, field by field.
    ///
    /// The exhaustive destructuring (no `..`) is deliberate: adding a
    /// counter to this struct without deciding how it accumulates —
    /// and without exporting it to the metrics schema — fails to
    /// compile here.
    pub fn accumulate(&mut self, other: &ActivitySlice) {
        let ActivitySlice {
            rom_reads,
            rom_line_reads,
            ram_reads,
            ram_writes,
            icache_accesses,
            icache_misses,
            cop_mul_ops,
            cop_ls_ops,
        } = *other;
        self.rom_reads += rom_reads;
        self.rom_line_reads += rom_line_reads;
        self.ram_reads += ram_reads;
        self.ram_writes += ram_writes;
        self.icache_accesses += icache_accesses;
        self.icache_misses += icache_misses;
        self.cop_mul_ops += cop_mul_ops;
        self.cop_ls_ops += cop_ls_ops;
    }

    /// The per-instruction delta between two monotonic snapshots.
    pub fn delta(before: &ActivitySlice, after: &ActivitySlice) -> ActivitySlice {
        let ActivitySlice {
            rom_reads,
            rom_line_reads,
            ram_reads,
            ram_writes,
            icache_accesses,
            icache_misses,
            cop_mul_ops,
            cop_ls_ops,
        } = *after;
        ActivitySlice {
            rom_reads: rom_reads - before.rom_reads,
            rom_line_reads: rom_line_reads - before.rom_line_reads,
            ram_reads: ram_reads - before.ram_reads,
            ram_writes: ram_writes - before.ram_writes,
            icache_accesses: icache_accesses - before.icache_accesses,
            icache_misses: icache_misses - before.icache_misses,
            cop_mul_ops: cop_mul_ops - before.cop_mul_ops,
            cop_ls_ops: cop_ls_ops - before.cop_ls_ops,
        }
    }
}

/// Control-flow event observed at an instruction's retirement, as far
/// as the shadow call stack is concerned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlEvent {
    /// A link-register write (`jal`, or `jalr` with `rd != $zero`):
    /// push a frame expecting a return to `ret`.
    Call {
        /// Architectural return address (`pc + 8`, past the delay slot).
        ret: u32,
    },
    /// A register jump (`jr`, or `jalr` with `rd == $zero`): pop if
    /// `target` matches a recorded return address.
    JumpReg {
        /// The jump target (the register's value at retirement).
        target: u32,
    },
}

/// One routine's share of the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutineCycles {
    /// Routine name; aliases sharing a start address come pre-merged as
    /// `"a/b"` by `Program::text_symbols`.
    pub name: String,
    /// Start address of the routine's PC range.
    pub start: u32,
    /// Retired instructions attributed to the range.
    pub instructions: u64,
    /// Cycles (issue + all stalls) attributed to the range.
    pub cycles: u64,
    /// Memory-system and coprocessor activity attributed to the range.
    pub activity: ActivitySlice,
}

/// One node of the call tree: a routine reached along a specific call
/// path. Counters are **exclusive** (cycles spent at PCs of this
/// routine while this path was live); inclusive totals are derived by
/// [`CallGraph::inclusive_cycles`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallNode {
    /// Parent node id, or [`ROOT`] for a top-level node.
    pub parent: u32,
    /// Index into [`RoutineProfile::routines`].
    pub routine: u32,
    /// Retired instructions attributed to this node.
    pub instructions: u64,
    /// Exclusive cycles attributed to this node.
    pub cycles: u64,
    /// Exclusive activity attributed to this node.
    pub activity: ActivitySlice,
}

/// The call tree of a run. Node ids are creation-ordered, so a parent's
/// id is always smaller than its children's — reverse iteration folds
/// children into parents.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CallGraph {
    /// Creation-ordered nodes (deterministic for a deterministic run).
    pub nodes: Vec<CallNode>,
}

impl CallGraph {
    /// Sum of exclusive cycles over all nodes (equals the flat bucket
    /// total and the machine's total cycles).
    pub fn total_cycles(&self) -> u64 {
        self.nodes.iter().map(|n| n.cycles).sum()
    }

    /// Inclusive cycles per node (self + all descendants), parallel to
    /// [`CallGraph::nodes`].
    pub fn inclusive_cycles(&self) -> Vec<u64> {
        let mut inc: Vec<u64> = self.nodes.iter().map(|n| n.cycles).collect();
        for i in (0..self.nodes.len()).rev() {
            let p = self.nodes[i].parent;
            if p != ROOT {
                inc[p as usize] += inc[i];
            }
        }
        inc
    }

    /// Sum of inclusive cycles over the root nodes (equals
    /// [`CallGraph::total_cycles`]; pinned by tests).
    pub fn root_inclusive_cycles(&self) -> u64 {
        let inc = self.inclusive_cycles();
        self.nodes
            .iter()
            .zip(&inc)
            .filter(|(n, _)| n.parent == ROOT)
            .map(|(_, c)| *c)
            .sum()
    }

    /// The routine-index path from a root down to `node` (inclusive).
    pub fn path(&self, node: usize) -> Vec<u32> {
        let mut rev = Vec::new();
        let mut i = node as u32;
        while i != ROOT {
            let n = &self.nodes[i as usize];
            rev.push(n.routine);
            i = n.parent;
        }
        rev.reverse();
        rev
    }

    /// Accumulates another call tree into this one, matching nodes by
    /// routine path (workloads run the same program image several
    /// times, e.g. Sign + Verify).
    pub fn merge(&mut self, other: &CallGraph) {
        let mut children: HashMap<(u32, u32), u32> = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            children.insert((n.parent, n.routine), i as u32);
        }
        // Creation order guarantees parents precede children, so the
        // id map is always populated before it is consulted.
        let mut map = vec![ROOT; other.nodes.len()];
        for (i, n) in other.nodes.iter().enumerate() {
            let parent = if n.parent == ROOT {
                ROOT
            } else {
                map[n.parent as usize]
            };
            let id = *children.entry((parent, n.routine)).or_insert_with(|| {
                let id = self.nodes.len() as u32;
                self.nodes.push(CallNode {
                    parent,
                    routine: n.routine,
                    instructions: 0,
                    cycles: 0,
                    activity: ActivitySlice::default(),
                });
                id
            });
            let s = &mut self.nodes[id as usize];
            s.instructions += n.instructions;
            s.cycles += n.cycles;
            s.activity.accumulate(&n.activity);
            map[i] = id;
        }
    }
}

/// The finished per-routine breakdown of a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoutineProfile {
    /// Buckets in ascending address order; zero-activity routines are
    /// retained so the table shape is config-independent.
    pub routines: Vec<RoutineCycles>,
    /// The call tree (exclusive counters per call path).
    pub calls: CallGraph,
}

impl RoutineProfile {
    /// Sum of all bucket cycles (equals the machine's total cycles).
    pub fn total_cycles(&self) -> u64 {
        self.routines.iter().map(|r| r.cycles).sum()
    }

    /// Sum of all bucket instructions.
    pub fn total_instructions(&self) -> u64 {
        self.routines.iter().map(|r| r.instructions).sum()
    }

    /// The bucket for `name`, if present (exact match against the
    /// possibly alias-merged name).
    pub fn routine(&self, name: &str) -> Option<&RoutineCycles> {
        self.routines.iter().find(|r| r.name == name)
    }

    /// The bucket whose (alias-merged) name contains `part` — e.g.
    /// `find("fmul")` matches a `"fsqr/fmul"` merge.
    pub fn find(&self, part: &str) -> Option<&RoutineCycles> {
        self.routines
            .iter()
            .find(|r| r.name.split('/').any(|n| n == part))
    }

    /// The buckets in reporting order: cycles descending, then name
    /// ascending. All human-facing and serialized output uses this
    /// order so profiles are byte-stable across runs and thread counts.
    pub fn sorted_routines(&self) -> Vec<&RoutineCycles> {
        let mut v: Vec<&RoutineCycles> = self.routines.iter().collect();
        v.sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.name.cmp(&b.name)));
        v
    }

    /// Every call path as a `;`-joined name string (root first, leaf
    /// last) with its node, in node-creation order.
    pub fn call_paths(&self) -> Vec<(String, &CallNode)> {
        (0..self.calls.nodes.len())
            .map(|i| {
                let names: Vec<&str> = self
                    .calls
                    .path(i)
                    .into_iter()
                    .map(|r| self.routines[r as usize].name.as_str())
                    .collect();
                (names.join(";"), &self.calls.nodes[i])
            })
            .collect()
    }

    /// Accumulates another profile over the same routine table
    /// (workloads run the same program image several times, e.g.
    /// Sign + Verify).
    pub fn merge(&mut self, other: &RoutineProfile) {
        if self.routines.is_empty() {
            self.routines = other.routines.clone();
            self.calls = other.calls.clone();
            return;
        }
        assert_eq!(
            self.routines.len(),
            other.routines.len(),
            "merging profiles over different routine tables"
        );
        for (a, b) in self.routines.iter_mut().zip(&other.routines) {
            debug_assert_eq!(a.start, b.start);
            a.instructions += b.instructions;
            a.cycles += b.cycles;
            a.activity.accumulate(&b.activity);
        }
        self.calls.merge(&other.calls);
    }

    /// Accumulates a profile taken over a *different* program image
    /// (e.g. the handshake's companion ECDSA program riding next to the
    /// ladder program). Foreign buckets are appended under
    /// `{prefix}{name}` so same-named routines from the two images stay
    /// distinct, and the foreign call tree is appended with its routine
    /// indices rebased onto the combined table. Bucket totals keep
    /// summing to the combined headline counters; the ascending-address
    /// bucket order holds only within each image (the two address
    /// spaces are unrelated), so an absorbed profile must not be fed
    /// back into [`RoutineProfile::merge`].
    pub fn absorb(&mut self, other: &RoutineProfile, prefix: &str) {
        let routine_base = self.routines.len() as u32;
        self.routines
            .extend(other.routines.iter().map(|r| RoutineCycles {
                name: format!("{prefix}{}", r.name),
                ..r.clone()
            }));
        let node_base = self.calls.nodes.len() as u32;
        self.calls
            .nodes
            .extend(other.calls.nodes.iter().map(|n| CallNode {
                parent: if n.parent == ROOT {
                    ROOT
                } else {
                    n.parent + node_base
                },
                routine: n.routine + routine_base,
                ..n.clone()
            }));
    }
}

/// Default *mean* sampling stride for [`SampledProfiler`], in cycles
/// (individual intervals are jittered over `[stride/2, 3*stride/2)` —
/// see [`SampledProfiler::sample`]). 251 is the sparsest scanned
/// stride at which the sampled top-5 routine shares of both the P-192
/// and P-256 baseline sign profiles stay within 10% relative of the
/// reference profiler, in reference order (the sim and the jitter are
/// deterministic, so this is a reproducible property of the programs,
/// not a statistical one); at sparser strides the third and fourth
/// routines, whose true shares differ by only ~7%, start swapping.
pub const DEFAULT_SAMPLE_STRIDE: u64 = 251;

/// The sampled profiler attached to a fast-tier
/// [`Machine`](crate::cpu::Machine) run.
///
/// Where [`PcProfiler`] observes every retired instruction (and so only
/// works on the reference interpreter), this one observes the run at
/// **block boundaries**: whenever the retired-cycle count crosses the
/// next stride threshold, the *entire* delta since the previous sample
/// — cycles, instructions, and counted activity — is billed to the
/// routine owning the PC at that boundary. The intervals telescope, so
/// bucket totals still sum bit-exactly to the machine's headline
/// counters (the invariant every attribution consumer relies on);
/// what's approximate is only the *split* between routines, with error
/// bounded by the stride (see DESIGN.md §11).
///
/// No shadow call stack is maintained — the fast engine never sees
/// individual link instructions — so [`SampledProfiler::finish`]
/// yields a profile with an empty [`CallGraph`].
#[derive(Clone, Debug)]
pub struct SampledProfiler {
    /// Sorted bucket start addresses (parallel to `buckets`).
    starts: Vec<u32>,
    buckets: Vec<RoutineCycles>,
    /// Sampling stride in cycles.
    stride: u64,
    /// Next cycle threshold at which a sample is due.
    next_sample: u64,
    /// Snapshot at the previous sample (start of the open interval).
    last_cycle: u64,
    last_instructions: u64,
    last_activity: ActivitySlice,
    /// Number of samples taken (incl. the final flush).
    samples: u64,
    /// `(index, start, end)` of the previously hit bucket. Samples
    /// cluster in the hot field-op routines, so most lookups resolve
    /// with one range check instead of a binary search.
    cached: (usize, u32, u32),
    /// Deterministic jitter state (splitmix64), advanced per sample.
    jitter: u64,
}

impl SampledProfiler {
    /// Builds buckets from `Program::text_symbols` output, exactly like
    /// [`PcProfiler::new`], with the given stride in cycles.
    pub fn new(text_symbols: &[(u32, String)], stride: u64) -> Self {
        assert!(stride > 0, "sample stride must be positive");
        let mut buckets = Vec::with_capacity(text_symbols.len() + 1);
        if text_symbols.first().is_none_or(|&(a, _)| a != 0) {
            buckets.push(RoutineCycles {
                name: "(prelude)".to_owned(),
                start: 0,
                instructions: 0,
                cycles: 0,
                activity: ActivitySlice::default(),
            });
        }
        for (start, name) in text_symbols {
            buckets.push(RoutineCycles {
                name: name.clone(),
                start: *start,
                instructions: 0,
                cycles: 0,
                activity: ActivitySlice::default(),
            });
        }
        let starts = buckets.iter().map(|b| b.start).collect();
        SampledProfiler {
            starts,
            buckets,
            stride,
            next_sample: stride,
            last_cycle: 0,
            last_instructions: 0,
            last_activity: ActivitySlice::default(),
            samples: 0,
            cached: (0, 0, 0),
            jitter: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Whether the retired-cycle count has crossed the next stride
    /// threshold, i.e. a sample is due at this block boundary.
    #[inline]
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.next_sample
    }

    /// The cycle at which the next sample is due. Dispatch loops hoist
    /// this into a local so the per-block check costs one compare on a
    /// register instead of a heap load.
    #[inline]
    pub fn next_sample_at(&self) -> u64 {
        self.next_sample
    }

    /// Takes a sample at a block boundary: bills the whole interval
    /// since the previous sample to the routine owning `pc`, then arms
    /// the next threshold past `cycle`.
    ///
    /// The next interval is jittered deterministically (splitmix64)
    /// over `[stride/2, 3*stride/2)` — mean `stride` — so sample
    /// points cannot phase-lock onto *any* loop period. The field ops
    /// are fixed-length loops whose periods vary per curve; a fixed
    /// stride resonates with some of them and systematically over- or
    /// under-bills whichever routine the boundary keeps landing after.
    pub fn sample(&mut self, pc: u32, cycle: u64, instructions: u64, activity: &ActivitySlice) {
        self.attribute(pc, cycle, instructions, activity);
        self.jitter = self.jitter.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.jitter;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        self.next_sample = cycle + self.stride / 2 + z % self.stride;
    }

    /// Flushes the final partial interval at run end so totals stay
    /// exact. Idempotent for an unchanged machine state (a zero-length
    /// interval adds nothing but still counts as a sample).
    pub fn flush(&mut self, pc: u32, cycle: u64, instructions: u64, activity: &ActivitySlice) {
        self.attribute(pc, cycle, instructions, activity);
    }

    fn attribute(&mut self, pc: u32, cycle: u64, instructions: u64, activity: &ActivitySlice) {
        let (ci, cs, ce) = self.cached;
        let idx = if pc >= cs && pc < ce {
            ci
        } else {
            let i = match self.starts.binary_search(&pc) {
                Ok(i) => i,
                Err(i) => i - 1, // starts[0] == 0 covers every pc
            };
            let end = self.starts.get(i + 1).copied().unwrap_or(u32::MAX);
            self.cached = (i, self.starts[i], end);
            i
        };
        let b = &mut self.buckets[idx];
        b.cycles += cycle - self.last_cycle;
        b.instructions += instructions - self.last_instructions;
        b.activity
            .accumulate(&ActivitySlice::delta(&self.last_activity, activity));
        self.last_cycle = cycle;
        self.last_instructions = instructions;
        self.last_activity = *activity;
        self.samples += 1;
    }

    /// Number of samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The stride this profiler was built with.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Finishes the run, yielding the per-routine breakdown (flat
    /// buckets only; the call graph is empty).
    pub fn finish(self) -> RoutineProfile {
        RoutineProfile {
            routines: self.buckets,
            calls: CallGraph::default(),
        }
    }
}

/// A live shadow-stack frame: where to return to, and which node the
/// call was made from.
#[derive(Clone, Copy, Debug)]
struct Frame {
    ret: u32,
    caller: u32,
}

/// The live profiler attached to a [`Machine`](crate::cpu::Machine).
#[derive(Clone, Debug)]
pub struct PcProfiler {
    /// Sorted bucket start addresses (parallel to `buckets`).
    starts: Vec<u32>,
    buckets: Vec<RoutineCycles>,
    /// Call-tree nodes (creation-ordered).
    nodes: Vec<CallNode>,
    /// `(parent, routine) -> node id` lookup, consulted only on
    /// call/return/leaf transitions, not per retired instruction.
    children: HashMap<(u32, u32), u32>,
    /// The shadow call stack.
    stack: Vec<Frame>,
    /// The node calls are currently made from ([`ROOT`] at top level).
    context: u32,
    /// Bucket index of the previous instruction (`usize::MAX` before
    /// the first), so the common straight-line case skips node lookup.
    cur_routine: usize,
    /// The node currently accumulating exclusive counters.
    cur_node: u32,
}

impl PcProfiler {
    /// Builds buckets from `Program::text_symbols` output (sorted,
    /// alias-merged `(start, name)` pairs). A synthetic `(prelude)`
    /// bucket covers any code before the first label.
    pub fn new(text_symbols: &[(u32, String)]) -> Self {
        let mut buckets = Vec::with_capacity(text_symbols.len() + 1);
        if text_symbols.first().is_none_or(|&(a, _)| a != 0) {
            buckets.push(RoutineCycles {
                name: "(prelude)".to_owned(),
                start: 0,
                instructions: 0,
                cycles: 0,
                activity: ActivitySlice::default(),
            });
        }
        for (start, name) in text_symbols {
            buckets.push(RoutineCycles {
                name: name.clone(),
                start: *start,
                instructions: 0,
                cycles: 0,
                activity: ActivitySlice::default(),
            });
        }
        let starts = buckets.iter().map(|b| b.start).collect();
        PcProfiler {
            starts,
            buckets,
            nodes: Vec::new(),
            children: HashMap::new(),
            stack: Vec::new(),
            context: ROOT,
            cur_routine: usize::MAX,
            cur_node: ROOT,
        }
    }

    /// The node for `routine` under `context`, folding into `context`
    /// itself when it already is that routine (delay slots of calls and
    /// direct recursion).
    fn node_for(&mut self, context: u32, routine: u32) -> u32 {
        if context != ROOT && self.nodes[context as usize].routine == routine {
            return context;
        }
        match self.children.entry((context, routine)) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = self.nodes.len() as u32;
                self.nodes.push(CallNode {
                    parent: context,
                    routine,
                    instructions: 0,
                    cycles: 0,
                    activity: ActivitySlice::default(),
                });
                e.insert(id);
                id
            }
        }
    }

    /// Attributes one retired instruction: its cycle delta and counted
    /// activity go to the bucket owning `pc` and to the current
    /// call-tree node, then `event` advances the shadow stack.
    #[inline]
    pub fn record(
        &mut self,
        pc: u32,
        cycles: u64,
        activity: &ActivitySlice,
        event: Option<ControlEvent>,
    ) {
        let idx = match self.starts.binary_search(&pc) {
            Ok(i) => i,
            Err(i) => i - 1, // starts[0] == 0 covers every pc
        };
        let b = &mut self.buckets[idx];
        b.instructions += 1;
        b.cycles += cycles;
        b.activity.accumulate(activity);

        if idx != self.cur_routine {
            self.cur_routine = idx;
            self.cur_node = self.node_for(self.context, idx as u32);
        }
        let n = &mut self.nodes[self.cur_node as usize];
        n.instructions += 1;
        n.cycles += cycles;
        n.activity.accumulate(activity);

        match event {
            Some(ControlEvent::Call { ret }) if self.stack.len() < MAX_SHADOW_DEPTH => {
                self.stack.push(Frame {
                    ret,
                    caller: self.cur_node,
                });
                self.context = self.cur_node;
                self.cur_node = self.node_for(self.context, self.cur_routine as u32);
            }
            Some(ControlEvent::JumpReg { target }) => {
                // Pop to the youngest frame expecting this return
                // address; frames above it were abandoned by tail
                // calls. A miss means a tail call or computed jump:
                // the stack is untouched and the leaf just changes.
                if let Some(pos) = self.stack.iter().rposition(|f| f.ret == target) {
                    let frame = self.stack[pos];
                    self.stack.truncate(pos);
                    self.context = frame.caller;
                    self.cur_node = self.node_for(self.context, self.cur_routine as u32);
                }
            }
            // Calls past MAX_SHADOW_DEPTH fold into the current node.
            Some(ControlEvent::Call { .. }) | None => {}
        }
    }

    /// Finishes the run, yielding the per-routine breakdown.
    pub fn finish(self) -> RoutineProfile {
        RoutineProfile {
            routines: self.buckets,
            calls: CallGraph { nodes: self.nodes },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> Vec<(u32, String)> {
        vec![(0x10, "a".to_owned()), (0x40, "b/c".to_owned())]
    }

    fn act(ram_reads: u64) -> ActivitySlice {
        ActivitySlice {
            ram_reads,
            ..Default::default()
        }
    }

    #[test]
    fn attribution_covers_prelude_and_boundaries() {
        let mut p = PcProfiler::new(&syms());
        p.record(0x0, 3, &act(1), None); // prelude
        p.record(0x10, 2, &act(0), None); // first instr of a
        p.record(0x3c, 1, &act(2), None); // last instr of a
        p.record(0x40, 5, &act(0), None); // b/c
        p.record(0x1000, 7, &act(4), None); // past last label -> b/c
        let prof = p.finish();
        assert_eq!(prof.total_cycles(), 18);
        assert_eq!(prof.total_instructions(), 5);
        assert_eq!(prof.routine("(prelude)").unwrap().cycles, 3);
        assert_eq!(prof.routine("a").unwrap().cycles, 3);
        assert_eq!(prof.routine("a").unwrap().activity.ram_reads, 2);
        assert_eq!(prof.routine("b/c").unwrap().cycles, 12);
        assert_eq!(prof.routine("b/c").unwrap().activity.ram_reads, 4);
        assert_eq!(prof.find("c").unwrap().start, 0x40);
        assert!(prof.find("zz").is_none());
        // Flat and call-tree exclusive totals agree.
        assert_eq!(prof.calls.total_cycles(), 18);
        assert_eq!(prof.calls.root_inclusive_cycles(), 18);
    }

    #[test]
    fn no_prelude_bucket_when_label_at_zero() {
        let mut p = PcProfiler::new(&[(0, "start".to_owned())]);
        p.record(0, 1, &act(0), None);
        let prof = p.finish();
        assert_eq!(prof.routines.len(), 1);
        assert_eq!(prof.routine("start").unwrap().cycles, 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RoutineProfile::default();
        let mut p = PcProfiler::new(&syms());
        p.record(0x10, 2, &act(1), None);
        a.merge(&p.finish());
        let mut p = PcProfiler::new(&syms());
        p.record(0x10, 3, &act(1), None);
        p.record(0x40, 4, &act(0), None);
        a.merge(&p.finish());
        assert_eq!(a.routine("a").unwrap().cycles, 5);
        assert_eq!(a.routine("a").unwrap().activity.ram_reads, 2);
        assert_eq!(a.routine("b/c").unwrap().cycles, 4);
        assert_eq!(a.total_cycles(), 9);
        // Call trees merged by path: one node for `a`, one for `b/c`.
        assert_eq!(a.calls.nodes.len(), 2);
        assert_eq!(a.calls.total_cycles(), 9);
    }

    /// A scripted call scenario: main calls a (twice), a calls b; with
    /// the delay slot of each call billed to the caller.
    #[test]
    fn shadow_stack_builds_call_tree() {
        let syms = vec![
            (0x00, "main".to_owned()),
            (0x40, "a".to_owned()),
            (0x80, "b".to_owned()),
        ];
        let mut p = PcProfiler::new(&syms);
        let a0 = act(0);
        // main: jal a (ret 0x10), delay slot, then a runs.
        p.record(0x08, 1, &a0, Some(ControlEvent::Call { ret: 0x10 }));
        p.record(0x0c, 1, &a0, None); // delay slot -> main's node
                                      // a: jal b (ret 0x50), delay slot, b body, jr back to a.
        p.record(0x40, 1, &a0, None);
        p.record(0x48, 1, &a0, Some(ControlEvent::Call { ret: 0x50 }));
        p.record(0x4c, 1, &a0, None); // delay slot -> main;a
        p.record(0x80, 2, &a0, None); // b body -> main;a;b
        p.record(0x84, 1, &a0, Some(ControlEvent::JumpReg { target: 0x50 }));
        p.record(0x88, 1, &a0, None); // return delay slot -> main;a;b
                                      // back in a; jr back to main.
        p.record(0x50, 1, &a0, Some(ControlEvent::JumpReg { target: 0x10 }));
        p.record(0x54, 1, &a0, None); // return delay slot -> main;a
                                      // main again; second call to a.
        p.record(0x10, 1, &a0, Some(ControlEvent::Call { ret: 0x18 }));
        p.record(0x14, 1, &a0, None);
        p.record(0x40, 3, &a0, Some(ControlEvent::JumpReg { target: 0x18 }));
        p.record(0x44, 1, &a0, None);
        p.record(0x18, 1, &a0, None);
        let prof = p.finish();

        let paths: Vec<(String, u64)> = prof
            .call_paths()
            .into_iter()
            .map(|(path, n)| (path, n.cycles))
            .collect();
        assert_eq!(
            paths,
            vec![
                ("main".to_owned(), 5),
                ("main;a".to_owned(), 9),
                ("main;a;b".to_owned(), 4),
            ]
        );
        // Exclusive sums == root inclusive == flat total.
        assert_eq!(prof.calls.total_cycles(), prof.total_cycles());
        assert_eq!(prof.calls.root_inclusive_cycles(), prof.total_cycles());
        let inc = prof.calls.inclusive_cycles();
        assert_eq!(inc, vec![18, 13, 4]);
    }

    /// Direct recursion folds into the existing frame: f -> f -> f
    /// yields a single `main;f` node, and the same-site return
    /// addresses pop one frame at a time.
    #[test]
    fn direct_recursion_folds() {
        let syms = vec![(0x00, "main".to_owned()), (0x40, "f".to_owned())];
        let mut p = PcProfiler::new(&syms);
        let a0 = act(0);
        p.record(0x00, 1, &a0, Some(ControlEvent::Call { ret: 0x08 }));
        // f calls itself twice from the same site (ret 0x50 both times).
        p.record(0x40, 1, &a0, None);
        p.record(0x48, 1, &a0, Some(ControlEvent::Call { ret: 0x50 }));
        p.record(0x40, 1, &a0, None);
        p.record(0x48, 1, &a0, Some(ControlEvent::Call { ret: 0x50 }));
        p.record(0x40, 1, &a0, None);
        // Innermost returns, then the outer recursive call returns.
        p.record(0x5c, 1, &a0, Some(ControlEvent::JumpReg { target: 0x50 }));
        p.record(0x50, 1, &a0, Some(ControlEvent::JumpReg { target: 0x50 }));
        p.record(0x50, 1, &a0, Some(ControlEvent::JumpReg { target: 0x08 }));
        p.record(0x08, 1, &a0, None);
        let prof = p.finish();
        let paths: Vec<String> = prof.call_paths().into_iter().map(|(s, _)| s).collect();
        assert_eq!(paths, vec!["main".to_owned(), "main;f".to_owned()]);
        assert_eq!(prof.calls.nodes[1].cycles, 8);
        assert_eq!(prof.calls.total_cycles(), prof.total_cycles());
    }

    /// A tail call (`jr` to a routine entry, matching no return
    /// address) swaps the leaf under the same caller; the tail-callee's
    /// eventual `jr $ra` pops the original frame.
    #[test]
    fn tail_call_is_sibling_and_return_pops_original_frame() {
        let syms = vec![
            (0x00, "main".to_owned()),
            (0x40, "a".to_owned()),
            (0x80, "c".to_owned()),
        ];
        let mut p = PcProfiler::new(&syms);
        let a0 = act(0);
        p.record(0x00, 1, &a0, Some(ControlEvent::Call { ret: 0x08 }));
        p.record(0x40, 2, &a0, None); // a body
                                      // a tail-jumps to c: target 0x80 matches no frame.
        p.record(0x44, 1, &a0, Some(ControlEvent::JumpReg { target: 0x80 }));
        p.record(0x80, 3, &a0, None); // c body -> main;c (sibling of main;a)
                                      // c returns through the shared $ra, popping main's frame.
        p.record(0x84, 1, &a0, Some(ControlEvent::JumpReg { target: 0x08 }));
        p.record(0x08, 1, &a0, None);
        let prof = p.finish();
        let paths: Vec<(String, u64)> = prof
            .call_paths()
            .into_iter()
            .map(|(path, n)| (path, n.cycles))
            .collect();
        assert_eq!(
            paths,
            vec![
                ("main".to_owned(), 2),
                ("main;a".to_owned(), 3),
                ("main;c".to_owned(), 4),
            ]
        );
        assert_eq!(prof.calls.root_inclusive_cycles(), prof.total_cycles());
    }

    /// Sampled attribution telescopes: whatever the stride and sample
    /// placement, bucket totals equal the final machine counters
    /// exactly.
    #[test]
    fn sampled_intervals_telescope_to_exact_totals() {
        let mut p = SampledProfiler::new(&syms(), 10);
        assert!(!p.due(9));
        assert!(p.due(10));
        // First interval [0, 13) lands on a PC in routine `a`.
        p.sample(0x14, 13, 4, &act(2));
        assert_eq!(p.samples(), 1);
        // Threshold re-arms past the sample point, jittered over
        // [cycle + stride/2, cycle + 3*stride/2).
        let next = p.next_sample_at();
        assert!((13 + 5..13 + 15).contains(&next), "next = {next}");
        assert!(!p.due(next - 1));
        assert!(p.due(next));
        // Second interval [13, 27) lands in `b/c`.
        p.sample(0x44, 27, 9, &act(5));
        // Final partial interval [27, 31) flushed into the prelude.
        p.flush(0x0, 31, 11, &act(6));
        let prof = p.finish();
        assert_eq!(prof.total_cycles(), 31);
        assert_eq!(prof.total_instructions(), 11);
        assert_eq!(prof.routine("a").unwrap().cycles, 13);
        assert_eq!(prof.routine("a").unwrap().activity.ram_reads, 2);
        assert_eq!(prof.routine("b/c").unwrap().cycles, 14);
        assert_eq!(prof.routine("b/c").unwrap().activity.ram_reads, 3);
        assert_eq!(prof.routine("(prelude)").unwrap().cycles, 4);
        assert!(prof.calls.nodes.is_empty());
        // Same bucket table shape as the reference profiler, so merge
        // against a reference profile would be well-formed.
        assert_eq!(prof.routines.len(), 3);
    }

    /// One giant block spanning several strides re-arms in O(1) past
    /// the boundary (relative to the sample cycle), not at some
    /// multiple merely >= the old threshold.
    #[test]
    fn sampled_stride_skips_over_long_blocks() {
        let mut p = SampledProfiler::new(&syms(), 10);
        p.sample(0x10, 57, 1, &act(0));
        let next = p.next_sample_at();
        assert!((57 + 5..57 + 15).contains(&next), "next = {next}");
        assert!(!p.due(next - 1));
        assert!(p.due(next));
    }

    /// The jittered schedule is deterministic: two profilers over the
    /// same run take identical samples.
    #[test]
    fn sampled_schedule_is_deterministic() {
        let mut a = SampledProfiler::new(&syms(), 10);
        let mut b = SampledProfiler::new(&syms(), 10);
        for i in 0..100u64 {
            a.sample(0x10, i * 13, i, &act(0));
            b.sample(0x10, i * 13, i, &act(0));
            assert_eq!(a.next_sample_at(), b.next_sample_at());
        }
    }

    #[test]
    fn sorted_routines_orders_by_cycles_then_name() {
        let syms = vec![
            (0x00, "zz".to_owned()),
            (0x40, "aa".to_owned()),
            (0x80, "mm".to_owned()),
        ];
        let mut p = PcProfiler::new(&syms);
        p.record(0x00, 5, &act(0), None);
        p.record(0x40, 5, &act(0), None);
        p.record(0x80, 9, &act(0), None);
        let prof = p.finish();
        let order: Vec<&str> = prof
            .sorted_routines()
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(order, vec!["mm", "aa", "zz"]);
    }
}
