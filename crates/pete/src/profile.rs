//! Per-routine cycle attribution (PC-range buckets).
//!
//! The assembler already knows every routine's start address
//! (`Program::text_symbols`), so profiling needs no instrumentation in
//! the software suite: when enabled, [`Machine::step`] records the
//! cycle delta of each retired instruction into the bucket owning its
//! PC (binary search over sorted routine starts). Because `cycle` only
//! advances inside `step`, the bucket totals sum *exactly* to the
//! machine's total cycles — the invariant the attribution test pins.
//!
//! [`Machine::step`]: crate::cpu::Machine::step

/// One routine's share of the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutineCycles {
    /// Routine name; aliases sharing a start address come pre-merged as
    /// `"a/b"` by `Program::text_symbols`.
    pub name: String,
    /// Start address of the routine's PC range.
    pub start: u32,
    /// Retired instructions attributed to the range.
    pub instructions: u64,
    /// Cycles (issue + all stalls) attributed to the range.
    pub cycles: u64,
}

/// The finished per-routine breakdown of a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoutineProfile {
    /// Buckets in ascending address order; zero-activity routines are
    /// retained so the table shape is config-independent.
    pub routines: Vec<RoutineCycles>,
}

impl RoutineProfile {
    /// Sum of all bucket cycles (equals the machine's total cycles).
    pub fn total_cycles(&self) -> u64 {
        self.routines.iter().map(|r| r.cycles).sum()
    }

    /// Sum of all bucket instructions.
    pub fn total_instructions(&self) -> u64 {
        self.routines.iter().map(|r| r.instructions).sum()
    }

    /// The bucket for `name`, if present (exact match against the
    /// possibly alias-merged name).
    pub fn routine(&self, name: &str) -> Option<&RoutineCycles> {
        self.routines.iter().find(|r| r.name == name)
    }

    /// The bucket whose (alias-merged) name contains `part` — e.g.
    /// `find("fmul")` matches a `"fsqr/fmul"` merge.
    pub fn find(&self, part: &str) -> Option<&RoutineCycles> {
        self.routines
            .iter()
            .find(|r| r.name.split('/').any(|n| n == part))
    }

    /// Accumulates another profile over the same routine table
    /// (workloads run the same program image several times, e.g.
    /// Sign + Verify).
    pub fn merge(&mut self, other: &RoutineProfile) {
        if self.routines.is_empty() {
            self.routines = other.routines.clone();
            return;
        }
        assert_eq!(
            self.routines.len(),
            other.routines.len(),
            "merging profiles over different routine tables"
        );
        for (a, b) in self.routines.iter_mut().zip(&other.routines) {
            debug_assert_eq!(a.start, b.start);
            a.instructions += b.instructions;
            a.cycles += b.cycles;
        }
    }
}

/// The live profiler attached to a [`Machine`](crate::cpu::Machine).
#[derive(Clone, Debug)]
pub struct PcProfiler {
    /// Sorted bucket start addresses (parallel to `buckets`).
    starts: Vec<u32>,
    buckets: Vec<RoutineCycles>,
}

impl PcProfiler {
    /// Builds buckets from `Program::text_symbols` output (sorted,
    /// alias-merged `(start, name)` pairs). A synthetic `(prelude)`
    /// bucket covers any code before the first label.
    pub fn new(text_symbols: &[(u32, String)]) -> Self {
        let mut buckets = Vec::with_capacity(text_symbols.len() + 1);
        if text_symbols.first().is_none_or(|&(a, _)| a != 0) {
            buckets.push(RoutineCycles {
                name: "(prelude)".to_owned(),
                start: 0,
                instructions: 0,
                cycles: 0,
            });
        }
        for (start, name) in text_symbols {
            buckets.push(RoutineCycles {
                name: name.clone(),
                start: *start,
                instructions: 0,
                cycles: 0,
            });
        }
        let starts = buckets.iter().map(|b| b.start).collect();
        PcProfiler { starts, buckets }
    }

    /// Attributes one retired instruction and its cycle delta to the
    /// bucket owning `pc`.
    #[inline]
    pub fn record(&mut self, pc: u32, cycles: u64) {
        let idx = match self.starts.binary_search(&pc) {
            Ok(i) => i,
            Err(i) => i - 1, // starts[0] == 0 covers every pc
        };
        let b = &mut self.buckets[idx];
        b.instructions += 1;
        b.cycles += cycles;
    }

    /// Finishes the run, yielding the per-routine breakdown.
    pub fn finish(self) -> RoutineProfile {
        RoutineProfile {
            routines: self.buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> Vec<(u32, String)> {
        vec![(0x10, "a".to_owned()), (0x40, "b/c".to_owned())]
    }

    #[test]
    fn attribution_covers_prelude_and_boundaries() {
        let mut p = PcProfiler::new(&syms());
        p.record(0x0, 3); // prelude
        p.record(0x10, 2); // first instr of a
        p.record(0x3c, 1); // last instr of a
        p.record(0x40, 5); // b/c
        p.record(0x1000, 7); // past last label -> b/c
        let prof = p.finish();
        assert_eq!(prof.total_cycles(), 18);
        assert_eq!(prof.total_instructions(), 5);
        assert_eq!(prof.routine("(prelude)").unwrap().cycles, 3);
        assert_eq!(prof.routine("a").unwrap().cycles, 3);
        assert_eq!(prof.routine("b/c").unwrap().cycles, 12);
        assert_eq!(prof.find("c").unwrap().start, 0x40);
        assert!(prof.find("zz").is_none());
    }

    #[test]
    fn no_prelude_bucket_when_label_at_zero() {
        let mut p = PcProfiler::new(&[(0, "start".to_owned())]);
        p.record(0, 1);
        let prof = p.finish();
        assert_eq!(prof.routines.len(), 1);
        assert_eq!(prof.routine("start").unwrap().cycles, 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RoutineProfile::default();
        let mut p = PcProfiler::new(&syms());
        p.record(0x10, 2);
        a.merge(&p.finish());
        let mut p = PcProfiler::new(&syms());
        p.record(0x10, 3);
        p.record(0x40, 4);
        a.merge(&p.finish());
        assert_eq!(a.routine("a").unwrap().cycles, 5);
        assert_eq!(a.routine("b/c").unwrap().cycles, 4);
        assert_eq!(a.total_cycles(), 9);
    }
}
