//! The direct-mapped instruction cache and stream-buffer prefetcher of
//! §5.3.
//!
//! Geometry follows the paper's implementation (Fig 5.5): 16-byte lines
//! (four instructions), parameterizable line count, tag + valid bit per
//! line. The prefetcher is a **single-entry stream buffer** (§5.3.3,
//! after Jouppi): on a miss the next sequential line is fetched into the
//! buffer; a miss that hits the buffer promotes the line to the cache for
//! free and starts the next prefetch.
//!
//! The model also supports the *ideal* mode used for the first-cut study
//! of §7.5 / Fig 7.11 (every access hits; only read energy is charged).

/// Cache geometry and behaviour knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes (1 KB – 8 KB in the study, Fig 7.12).
    pub size_bytes: u32,
    /// Enable the single-entry stream-buffer prefetcher.
    pub prefetch: bool,
    /// Ideal mode: never miss (Fig 7.11's best-case model).
    pub ideal: bool,
    /// Miss penalty in cycles (3 in the study: 128-bit ROM port, §7.5).
    pub miss_penalty: u32,
}

/// Why a [`CacheConfig`] does not describe a buildable cache.
///
/// Returned by [`CacheConfig::validate`] so that callers constructing
/// configurations programmatically (the `ule-dse` lattice in
/// particular) get a typed, printable error at the boundary instead of
/// a panic deep inside the I$ model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheGeometryError {
    /// Capacity is smaller than one line — the cache would have zero
    /// sets/ways.
    SmallerThanLine {
        /// The rejected capacity.
        size_bytes: u32,
    },
    /// Capacity is not a power of two, so the direct-mapped index
    /// cannot be taken from address bits.
    NotPowerOfTwo {
        /// The rejected capacity.
        size_bytes: u32,
    },
}

impl std::fmt::Display for CacheGeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CacheGeometryError::SmallerThanLine { size_bytes } => write!(
                f,
                "icache capacity {size_bytes} B is smaller than one {LINE_BYTES}-byte line"
            ),
            CacheGeometryError::NotPowerOfTwo { size_bytes } => write!(
                f,
                "icache capacity {size_bytes} B is not a power of two \
                 (the direct-mapped index needs one)"
            ),
        }
    }
}

impl std::error::Error for CacheGeometryError {}

impl CacheConfig {
    /// Checks the geometry: the capacity must hold at least one line
    /// and be a power of two (the direct-mapped index is address bits).
    pub fn validate(&self) -> Result<(), CacheGeometryError> {
        if self.size_bytes < LINE_BYTES {
            return Err(CacheGeometryError::SmallerThanLine {
                size_bytes: self.size_bytes,
            });
        }
        if !self.size_bytes.is_power_of_two() {
            return Err(CacheGeometryError::NotPowerOfTwo {
                size_bytes: self.size_bytes,
            });
        }
        Ok(())
    }
}

impl CacheConfig {
    /// The energy-optimal configuration the paper converges on: 4 KB,
    /// no prefetcher (§7.5).
    pub fn best() -> Self {
        CacheConfig {
            size_bytes: 4 * 1024,
            prefetch: false,
            ideal: false,
            miss_penalty: 3,
        }
    }

    /// A real cache of the given size (16-byte lines), with or without
    /// the prefetcher.
    pub fn real(size_bytes: u32, prefetch: bool) -> Self {
        CacheConfig {
            size_bytes,
            prefetch,
            ideal: false,
            miss_penalty: 3,
        }
    }

    /// The ideal 4 KB model of Fig 7.11.
    pub fn ideal() -> Self {
        CacheConfig {
            size_bytes: 4 * 1024,
            prefetch: false,
            ideal: true,
            miss_penalty: 3,
        }
    }

    /// Number of cache lines.
    pub fn lines(&self) -> usize {
        (self.size_bytes / LINE_BYTES) as usize
    }
}

/// Line size in bytes (four 32-bit instructions, §5.3.1).
pub const LINE_BYTES: u32 = 16;

/// Cache event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Processor-side accesses (tag + data read each).
    pub accesses: u64,
    /// Misses that went to ROM (or were filled from the prefetch buffer).
    pub misses: u64,
    /// Misses satisfied by the prefetch buffer (no stall).
    pub prefetch_hits: u64,
    /// 128-bit line reads issued to ROM (fills + prefetches).
    pub rom_line_reads: u64,
    /// Line writes into the cache data array.
    pub fills: u64,
    /// Total stall cycles charged to the front end.
    pub stall_cycles: u64,
}

impl CacheStats {
    /// Miss rate over processor accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Adds another run's stats onto this one. Exhaustive
    /// destructuring: a new field must be accounted here (and in the
    /// metrics schema) to compile.
    pub fn accumulate(&mut self, other: &CacheStats) {
        let CacheStats {
            accesses,
            misses,
            prefetch_hits,
            rom_line_reads,
            fills,
            stall_cycles,
        } = *other;
        self.accesses += accesses;
        self.misses += misses;
        self.prefetch_hits += prefetch_hits;
        self.rom_line_reads += rom_line_reads;
        self.fills += fills;
        self.stall_cycles += stall_cycles;
    }
}

/// Outcome of one fetch, as seen by the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchOutcome {
    /// Extra stall cycles the front end must absorb (0 on a hit).
    pub stall: u32,
    /// 128-bit ROM line reads this access caused.
    pub rom_lines: u32,
}

/// The direct-mapped instruction cache with optional stream buffer.
#[derive(Clone, Debug)]
pub struct ICache {
    config: CacheConfig,
    /// Tag per line, `None` when invalid (reset state, §5.3.2).
    tags: Vec<Option<u32>>,
    /// Prefetch buffer: line address held, if any.
    prefetch_line: Option<u32>,
    stats: CacheStats,
}

impl ICache {
    /// Builds an invalidated cache.
    ///
    /// # Panics
    ///
    /// Panics if [`CacheConfig::validate`] rejects the geometry — call
    /// it first when the configuration is user- or search-supplied.
    pub fn new(config: CacheConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid icache geometry: {e}");
        }
        ICache {
            config,
            tags: vec![None; config.lines()],
            prefetch_line: None,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// One instruction fetch at `addr`; updates state and counters and
    /// returns the stall/traffic outcome.
    pub fn access(&mut self, addr: u32) -> FetchOutcome {
        self.stats.accesses += 1;
        if self.config.ideal {
            return FetchOutcome {
                stall: 0,
                rom_lines: 0,
            };
        }
        let line_addr = addr & !(LINE_BYTES - 1);
        let index = ((line_addr / LINE_BYTES) as usize) % self.tags.len();
        if self.tags[index] == Some(line_addr) {
            return FetchOutcome {
                stall: 0,
                rom_lines: 0,
            };
        }
        // Miss. Check the stream buffer first (§5.3.3).
        self.stats.misses += 1;
        let mut rom_lines = 0u32;
        let stall;
        if self.config.prefetch && self.prefetch_line == Some(line_addr) {
            // Forwarded from the buffer and written into the cache in the
            // same cycle: no stall. The controller immediately prefetches
            // the next line.
            self.stats.prefetch_hits += 1;
            self.tags[index] = Some(line_addr);
            self.stats.fills += 1;
            self.prefetch_line = Some(line_addr + LINE_BYTES);
            self.stats.rom_line_reads += 1;
            rom_lines += 1;
            stall = 0;
        } else {
            // Fill from ROM, stalling the front end.
            self.tags[index] = Some(line_addr);
            self.stats.fills += 1;
            self.stats.rom_line_reads += 1;
            rom_lines += 1;
            stall = self.config.miss_penalty;
            if self.config.prefetch {
                // Start prefetching the next sequential line.
                self.prefetch_line = Some(line_addr + LINE_BYTES);
                self.stats.rom_line_reads += 1;
                rom_lines += 1;
            }
        }
        self.stats.stall_cycles += stall as u64;
        FetchOutcome { stall, rom_lines }
    }

    /// Accounts `n` fetches that are statically known to hit: the
    /// trailing words of a 16-byte line inside a translated basic
    /// block, whose line the first word's fetch just left resident
    /// (hit, fill, or prefetch promotion all end with the line in the
    /// cache, and straight-line execution cannot evict it). A hit
    /// touches no cache state beyond the access counter, so this is
    /// exactly `n` repeats of [`ICache::access`] on the hit path.
    pub(crate) fn sequential_hits(&mut self, n: u64) {
        self.stats.accesses += n;
    }

    /// Invalidates every line (the reset routine of §5.3.2).
    pub fn invalidate_all(&mut self) {
        for t in &mut self.tags {
            *t = None;
        }
        self.prefetch_line = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_fetch(c: &mut ICache, start: u32, n: u32) -> u64 {
        let mut stalls = 0;
        for i in 0..n {
            stalls += c.access(start + i * 4).stall as u64;
        }
        stalls
    }

    #[test]
    fn cold_then_warm() {
        let mut c = ICache::new(CacheConfig::real(1024, false));
        // 16 sequential instructions = 4 lines: 4 misses then all hits.
        let stalls = seq_fetch(&mut c, 0, 16);
        assert_eq!(c.stats().misses, 4);
        assert_eq!(stalls, 4 * 3);
        let stalls2 = seq_fetch(&mut c, 0, 16);
        assert_eq!(stalls2, 0);
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn conflict_eviction() {
        let mut c = ICache::new(CacheConfig::real(1024, false));
        c.access(0);
        // Same index, different tag: 1024 bytes apart.
        c.access(1024);
        assert_eq!(c.stats().misses, 2);
        // Original line was evicted.
        c.access(0);
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn prefetcher_hides_sequential_misses() {
        let mut c = ICache::new(CacheConfig::real(1024, true));
        // A long sequential run: first line stalls, subsequent lines come
        // from the stream buffer for free.
        let stalls = seq_fetch(&mut c, 0, 64);
        assert_eq!(stalls, 3, "only the first miss should stall");
        assert!(c.stats().prefetch_hits >= 14);
        // The prefetcher reads more ROM lines than a plain cache would.
        assert!(c.stats().rom_line_reads > c.stats().misses);
    }

    #[test]
    fn ideal_never_misses() {
        let mut c = ICache::new(CacheConfig::ideal());
        let stalls = seq_fetch(&mut c, 0, 1000);
        assert_eq!(stalls, 0);
        assert_eq!(c.stats().misses, 0);
        assert_eq!(c.stats().accesses, 1000);
    }

    #[test]
    fn miss_rate_helper() {
        let mut c = ICache::new(CacheConfig::real(1024, false));
        seq_fetch(&mut c, 0, 8);
        let s = c.stats();
        assert!((s.miss_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn geometry_validation_is_typed() {
        assert_eq!(CacheConfig::best().validate(), Ok(()));
        assert_eq!(CacheConfig::ideal().validate(), Ok(()));
        assert_eq!(
            CacheConfig::real(8, false).validate(),
            Err(CacheGeometryError::SmallerThanLine { size_bytes: 8 })
        );
        assert_eq!(
            CacheConfig::real(3000, false).validate(),
            Err(CacheGeometryError::NotPowerOfTwo { size_bytes: 3000 })
        );
        // The error is printable (it crosses the CLI boundary).
        let msg = CacheConfig::real(3000, false).validate().unwrap_err();
        assert!(msg.to_string().contains("3000"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "invalid icache geometry")]
    fn construction_panics_with_the_typed_message() {
        ICache::new(CacheConfig::real(24, false));
    }

    #[test]
    fn invalidate_all_cools_the_cache() {
        let mut c = ICache::new(CacheConfig::real(1024, false));
        seq_fetch(&mut c, 0, 8);
        c.invalidate_all();
        let before = c.stats().misses;
        seq_fetch(&mut c, 0, 8);
        assert_eq!(c.stats().misses, before + 2);
    }
}
