//! Program ROM and data RAM models with access accounting.
//!
//! The baseline memory layout (Fig 5.1): 256 KB program ROM with a
//! dual-port 32-bit interface (instruction bus + data bus), and 16 KB RAM
//! on a single 32-bit data port. When an accelerator is attached the RAM
//! becomes true dual-port (§5.4); when the instruction cache is attached
//! the ROM becomes single-port with a 128-bit interface (§5.3.2).
//!
//! Every access is counted: the energy model charges per read/write as the
//! paper did with Cacti (Ch. 6).

use ule_isa::asm::{RAM_BASE, RAM_SIZE, ROM_SIZE};

/// Access counters for one memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// 32-bit word reads.
    pub reads: u64,
    /// 32-bit word writes.
    pub writes: u64,
    /// 128-bit line reads (cache fills / prefetches; ROM only).
    pub line_reads: u64,
}

impl MemStats {
    /// Adds another run's stats onto this one. Exhaustive
    /// destructuring: a new field must be accounted here (and in the
    /// metrics schema) to compile.
    pub fn accumulate(&mut self, other: &MemStats) {
        let MemStats {
            reads,
            writes,
            line_reads,
        } = *other;
        self.reads += reads;
        self.writes += writes;
        self.line_reads += line_reads;
    }
}

/// The program ROM.
#[derive(Clone, Debug)]
pub struct Rom {
    words: Vec<u32>,
    stats: MemStats,
}

impl Rom {
    /// Builds a ROM from an image (must fit in 256 KB).
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds the ROM capacity.
    pub fn new(image: &[u32]) -> Self {
        assert!(
            image.len() * 4 <= ROM_SIZE as usize,
            "ROM image exceeds {ROM_SIZE} bytes"
        );
        Rom {
            words: image.to_vec(),
            stats: MemStats::default(),
        }
    }

    /// Capacity in bytes (what the energy model sizes against).
    pub fn capacity_bytes(&self) -> u32 {
        ROM_SIZE
    }

    /// Instruction-bus word fetch (counted).
    pub fn fetch(&mut self, addr: u32) -> u32 {
        self.stats.reads += 1;
        self.peek(addr)
    }

    /// Accounts `n` instruction-bus word fetches at once, without
    /// touching the data — the fast engine's batched accounting for a
    /// translated basic block, whose words were all decoded up front.
    pub(crate) fn note_fetches(&mut self, n: u64) {
        self.stats.reads += n;
    }

    /// Data-bus word read (counted) — used for tables and constants in
    /// read-only data.
    pub fn read(&mut self, addr: u32) -> u32 {
        self.stats.reads += 1;
        self.peek(addr)
    }

    /// 128-bit line read for a cache fill or prefetch (counted once).
    pub fn read_line(&mut self, addr: u32) -> [u32; 4] {
        self.stats.line_reads += 1;
        let base = addr & !15;
        [
            self.peek(base),
            self.peek(base + 4),
            self.peek(base + 8),
            self.peek(base + 12),
        ]
    }

    /// Uncounted debug read.
    pub fn peek(&self, addr: u32) -> u32 {
        let idx = (addr / 4) as usize;
        self.words.get(idx).copied().unwrap_or(0)
    }

    /// Access counters.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Resets the counters (e.g. to exclude warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }
}

/// The data RAM.
#[derive(Clone, Debug)]
pub struct Ram {
    words: Vec<u32>,
    stats: MemStats,
}

impl Default for Ram {
    fn default() -> Self {
        Self::new()
    }
}

impl Ram {
    /// Creates a zeroed 16 KB RAM.
    pub fn new() -> Self {
        Ram {
            words: vec![0; (RAM_SIZE / 4) as usize],
            stats: MemStats::default(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        RAM_SIZE
    }

    /// True if `addr` falls inside the RAM.
    pub fn contains(addr: u32) -> bool {
        (RAM_BASE..RAM_BASE + RAM_SIZE).contains(&addr)
    }

    /// Counted word read.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range address (a wild pointer in the simulated
    /// software — always a bug worth failing loudly on).
    pub fn read(&mut self, addr: u32) -> u32 {
        self.stats.reads += 1;
        self.peek(addr)
    }

    /// Counted word write.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range address.
    pub fn write(&mut self, addr: u32, value: u32) {
        self.stats.writes += 1;
        let idx = self.index(addr);
        self.words[idx] = value;
    }

    /// Uncounted debug read.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range address.
    pub fn peek(&self, addr: u32) -> u32 {
        self.words[self.index(addr)]
    }

    /// Uncounted debug write (test setup / operand injection).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range address.
    pub fn poke(&mut self, addr: u32, value: u32) {
        let idx = self.index(addr);
        self.words[idx] = value;
    }

    /// Uncounted bulk write of little-endian words.
    pub fn poke_words(&mut self, addr: u32, values: &[u32]) {
        for (i, &v) in values.iter().enumerate() {
            self.poke(addr + (i as u32) * 4, v);
        }
    }

    /// Uncounted bulk read.
    pub fn peek_words(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.peek(addr + (i as u32) * 4)).collect()
    }

    /// Access counters.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Adds externally performed accesses (the accelerators' DMA port —
    /// true dual-port RAM shares the array but has its own port, §5.4).
    pub fn count_external(&mut self, reads: u64, writes: u64) {
        self.stats.reads += reads;
        self.stats.writes += writes;
    }

    /// Resets the counters.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    fn index(&self, addr: u32) -> usize {
        assert!(
            Self::contains(addr),
            "RAM access out of range: {addr:#010x}"
        );
        ((addr - RAM_BASE) / 4) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rom_counts_accesses() {
        let mut rom = Rom::new(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(rom.fetch(0), 1);
        assert_eq!(rom.read(4), 2);
        let line = rom.read_line(4); // within first line
        assert_eq!(line, [1, 2, 3, 4]);
        let s = rom.stats();
        assert_eq!((s.reads, s.line_reads), (2, 1));
    }

    #[test]
    fn ram_round_trip() {
        let mut ram = Ram::new();
        ram.write(RAM_BASE + 8, 0xdead_beef);
        assert_eq!(ram.read(RAM_BASE + 8), 0xdead_beef);
        assert_eq!(ram.stats().reads, 1);
        assert_eq!(ram.stats().writes, 1);
        ram.poke_words(RAM_BASE, &[1, 2, 3]);
        assert_eq!(ram.peek_words(RAM_BASE, 3), vec![1, 2, 3]);
        // pokes are uncounted
        assert_eq!(ram.stats().writes, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ram_wild_pointer_panics() {
        let mut ram = Ram::new();
        ram.write(0x2000_0000, 1);
    }
}
