//! The pipeline timing model of Pete (§5.1, Fig 2.4).
//!
//! Timing contract (see also `DESIGN.md` §6):
//!
//! * 1 instruction per cycle in the ideal case;
//! * **load-use interlock**: +1 cycle when an instruction needs, in its
//!   execute stage, the destination of the load immediately before it;
//! * **branch delay slot**: the instruction after a branch/jump always
//!   executes (MIPS architectural behaviour, §2.2);
//! * **branch predictor**: a 64-entry 2-bit bimodal table consulted in
//!   decode and verified in execute; a misprediction invalidates the one
//!   speculatively fetched instruction (+1 cycle and one wasted fetch);
//! * **Hi/Lo unit** (§5.1.1): `mult`-class instructions occupy the
//!   multi-cycle Karatsuba unit for 4 cycles (divide: 34); issuing into a
//!   busy unit, or reading Hi/Lo before the result is ready, stalls —
//!   which is exactly what the compiler's static scheduling tries to
//!   avoid;
//! * **instruction cache** (optional, §5.3): a miss stalls fetch for the
//!   miss penalty; the stream buffer can hide sequential misses;
//! * **coprocessor instructions** are forwarded in execute; Pete stalls
//!   only on a full coprocessor queue or on `cop2sync` (§5.4.1).
//!
//! Two execution engines implement this contract (DESIGN.md §6a):
//! the **reference** interpreter ([`Machine::step`]-based, carries the
//! per-routine profiler and activity attribution) and the **fast**
//! engine (translation cache + fused superinstructions, no
//! instrumentation plumbing). Cycles, every [`Counters`] field, and all
//! memory-system statistics are bit-identical between the two; the
//! fast engine is an optimisation, never a second semantics.

use crate::cop::{CopStats, Coprocessor, NoCoprocessor};
use crate::icache::{CacheConfig, CacheStats, ICache};
use crate::mem::{MemStats, Ram, Rom};
use crate::profile::{ActivitySlice, ControlEvent, PcProfiler, RoutineProfile, SampledProfiler};
use crate::xlate::{
    self, AluKind, AluOp, BOp, BrBlock, BrCond, BranchOp, MemOp, Term, XOp, XTable,
};
use ule_isa::asm::Program;
use ule_isa::instr::Instr;
use ule_isa::reg::Reg;

/// Carry-less 32x32 multiply (the `MULGF2` datapath primitive).
fn clmul32(a: u32, b: u32) -> u64 {
    let mut acc = 0u64;
    let mut a64 = a as u64;
    let mut b = b;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a64;
        }
        a64 <<= 1;
        b >>= 1;
    }
    acc
}

/// Configuration of a simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Instruction cache, if present (§5.3).
    pub icache: Option<CacheConfig>,
    /// Whether the ISA-extension instructions are implemented (§5.2);
    /// executing one on a non-extended machine is a simulation error.
    pub extensions: bool,
    /// Latency of the multi-cycle Karatsuba multiplier (4, §5.1.1).
    pub mult_latency: u32,
    /// Latency of the restoring divider (§5.1.2).
    pub div_latency: u32,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            icache: None,
            extensions: false,
            mult_latency: 4,
            div_latency: 34,
        }
    }
}

impl MachineConfig {
    /// The baseline architecture (Fig 5.1): no cache, no extensions.
    pub fn baseline() -> Self {
        Self::default()
    }

    /// The ISA-extended architecture (§5.2).
    pub fn isa_ext() -> Self {
        MachineConfig {
            extensions: true,
            ..Self::default()
        }
    }

    /// ISA extensions plus an instruction cache (§7.5).
    pub fn isa_ext_with_cache(cache: CacheConfig) -> Self {
        MachineConfig {
            extensions: true,
            icache: Some(cache),
            ..Self::default()
        }
    }
}

/// Event counters for one run — the quantities the energy model consumes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Architecturally executed instructions.
    pub instructions: u64,
    /// Total clock cycles.
    pub cycles: u64,
    /// All front-end stall cycles (cache misses, hazards, coprocessor).
    pub stall_cycles: u64,
    /// Load-use interlock stalls.
    pub load_use_stalls: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Branch mispredictions (each costs one flushed fetch).
    pub mispredicts: u64,
    /// Cycles the Hi/Lo multiply unit was computing.
    pub mult_active_cycles: u64,
    /// Stalls waiting on the Hi/Lo unit (busy or result not ready).
    pub mult_stalls: u64,
    /// Multiply-class operations issued.
    pub mult_ops: u64,
    /// Divides issued.
    pub div_ops: u64,
    /// COP2 instructions forwarded to the accelerator.
    pub cop2_ops: u64,
    /// Stall cycles from a full coprocessor queue or `cop2sync`.
    pub cop2_stalls: u64,
    /// Instruction fetches (including wasted wrong-path fetches).
    pub fetches: u64,
}

impl Counters {
    /// Adds another run's counters onto this one, field by field.
    ///
    /// The exhaustive destructuring (no `..`) is deliberate: adding a
    /// counter to this struct without deciding how it accumulates —
    /// and without exporting it to the metrics schema — fails to
    /// compile here.
    pub fn accumulate(&mut self, other: &Counters) {
        let Counters {
            instructions,
            cycles,
            stall_cycles,
            load_use_stalls,
            branches,
            mispredicts,
            mult_active_cycles,
            mult_stalls,
            mult_ops,
            div_ops,
            cop2_ops,
            cop2_stalls,
            fetches,
        } = *other;
        self.instructions += instructions;
        self.cycles += cycles;
        self.stall_cycles += stall_cycles;
        self.load_use_stalls += load_use_stalls;
        self.branches += branches;
        self.mispredicts += mispredicts;
        self.mult_active_cycles += mult_active_cycles;
        self.mult_stalls += mult_stalls;
        self.mult_ops += mult_ops;
        self.div_ops += div_ops;
        self.cop2_ops += cop2_ops;
        self.cop2_stalls += cop2_stalls;
        self.fetches += fetches;
    }
}

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunExit {
    /// A `break` instruction was executed (the program's exit).
    Halted {
        /// The break code.
        code: u16,
    },
    /// The cycle budget was exhausted first.
    CycleLimit,
}

/// Which execution engine a run uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineTier {
    /// Fast when the machine carries no instrumentation, reference
    /// otherwise. The right choice everywhere outside A/B tests.
    #[default]
    Auto,
    /// Force the translated/fused fast engine. Requesting it on a
    /// machine with a profiler attached is a programming error (the
    /// fast engine has no attribution plumbing) and panics.
    Fast,
    /// Force the instrumented reference interpreter.
    Reference,
}

impl EngineTier {
    /// CLI spelling (`--tier fast` …).
    pub fn label(self) -> &'static str {
        match self {
            EngineTier::Auto => "auto",
            EngineTier::Fast => "fast",
            EngineTier::Reference => "reference",
        }
    }

    /// Parses the CLI spelling; `ref` is accepted for `reference`.
    pub fn parse(s: &str) -> Option<EngineTier> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(EngineTier::Auto),
            "fast" => Some(EngineTier::Fast),
            "reference" | "ref" => Some(EngineTier::Reference),
            _ => None,
        }
    }
}

/// Everything that varies per `run_with` call: the cycle budget and
/// the engine tier, in one place.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Stop (with [`RunExit::CycleLimit`]) once `cycles() >= max_cycles`.
    pub max_cycles: u64,
    /// Engine selection (default [`EngineTier::Auto`]).
    pub tier: EngineTier,
}

impl ExecOptions {
    /// Options with the given cycle budget and automatic tier choice.
    pub fn new(max_cycles: u64) -> Self {
        ExecOptions {
            max_cycles,
            tier: EngineTier::default(),
        }
    }

    /// Overrides the engine tier.
    pub fn with_tier(mut self, tier: EngineTier) -> Self {
        self.tier = tier;
        self
    }
}

/// What a machine observes about its own run — attached once, at build
/// time, because it decides which engine [`EngineTier::Auto`] picks.
/// Today that is the per-routine cycle profiler (exact, reference-only)
/// or the sampled profiler (stride-based, runs on either tier); a
/// trace sink would slot in here the same way.
#[derive(Clone, Debug, Default)]
pub struct Instrumentation {
    profile_symbols: Option<Vec<(u32, String)>>,
    sampled: Option<(Vec<(u32, String)>, u64)>,
}

impl Instrumentation {
    /// No instrumentation: `Auto` runs the fast engine.
    pub fn none() -> Self {
        Instrumentation::default()
    }

    /// Per-routine cycle/activity profiling over the given routine
    /// table (from `Program::text_symbols`). `Auto` then runs the
    /// reference engine, which carries the attribution plumbing.
    pub fn profile(text_symbols: &[(u32, String)]) -> Self {
        Instrumentation {
            profile_symbols: Some(text_symbols.to_vec()),
            sampled: None,
        }
    }

    /// Stride-based sampled profiling over the same routine table —
    /// attribution at block boundaries instead of per instruction, so
    /// `Auto` still runs the **fast** engine. Totals are exact
    /// (telescoping intervals); the per-routine split is approximate
    /// with error bounded by the stride. See
    /// [`SampledProfiler`](crate::profile::SampledProfiler).
    pub fn sampled_profile(text_symbols: &[(u32, String)], stride: u64) -> Self {
        Instrumentation {
            profile_symbols: None,
            sampled: Some((text_symbols.to_vec(), stride)),
        }
    }

    /// True when nothing is attached. A sampled profiler does **not**
    /// make the machine non-inert for tier selection — it rides the
    /// fast engine — but it is still an attachment.
    pub fn is_inert(&self) -> bool {
        self.profile_symbols.is_none() && self.sampled.is_none()
    }
}

/// Builder for a [`Machine`] with an accelerator and/or instrumentation
/// attached — the only way to attach either, so the fast/reference
/// seam is decided before the first cycle, not mid-run.
pub struct MachineBuilder<'p> {
    program: &'p Program,
    config: MachineConfig,
    cop: Option<Box<dyn Coprocessor>>,
    instrumentation: Instrumentation,
}

impl MachineBuilder<'_> {
    /// Attaches an accelerator to the COP2 interface.
    pub fn coprocessor(mut self, cop: Box<dyn Coprocessor>) -> Self {
        self.cop = Some(cop);
        self
    }

    /// Attaches instrumentation (see [`Instrumentation`]).
    pub fn instrumentation(mut self, instrumentation: Instrumentation) -> Self {
        self.instrumentation = instrumentation;
        self
    }

    /// Builds the machine.
    pub fn build(self) -> Machine {
        let mut m = Machine::new(self.program, self.config);
        if let Some(cop) = self.cop {
            m.cop = cop;
        }
        assert!(
            !(self.instrumentation.profile_symbols.is_some()
                && self.instrumentation.sampled.is_some()),
            "attach either the exact profiler or the sampled profiler, not both"
        );
        if let Some(syms) = self.instrumentation.profile_symbols {
            m.profiler = Some(Box::new(PcProfiler::new(&syms)));
        }
        if let Some((syms, stride)) = self.instrumentation.sampled {
            m.sampler = Some(Box::new(SampledProfiler::new(&syms, stride)));
        }
        m
    }
}

/// A simulated Pete system: core, ROM, RAM, optional I-cache, optional
/// accelerator.
pub struct Machine {
    regs: [u32; 32],
    hi: u32,
    lo: u32,
    ovflo: u32,
    pc: u32,
    pending_branch: Option<u32>,
    rom: Rom,
    ram: Ram,
    decoded: Vec<Option<Instr>>,
    /// Fast-engine translation table (`xlate`), built on first fast
    /// dispatch; reference-only machines never pay for it.
    xops: Option<XTable>,
    icache: Option<ICache>,
    cop: Box<dyn Coprocessor>,
    config: MachineConfig,
    // `MachineConfig` fields the inner loops read every instruction,
    // hoisted out of the nested struct once at construction.
    mult_latency: u32,
    div_latency: u32,
    extensions: bool,
    cycle: u64,
    counters: Counters,
    bht: [u8; 64],
    /// Cycle at which the Hi/Lo unit is free / its result is ready.
    mult_free_at: u64,
    /// Destination of the immediately preceding instruction if it was a
    /// load (for the load-use interlock).
    last_load_dest: Option<Reg>,
    halted: Option<u16>,
    /// Per-routine cycle profiler; `None` (the default) costs one
    /// branch per step. Boxed so the unprofiled machine's layout stays
    /// a single pointer wide here.
    profiler: Option<Box<PcProfiler>>,
    /// Stride-based sampled profiler; unlike `profiler` it rides the
    /// fast engine (checked once per dispatch, not per instruction).
    sampler: Option<Box<SampledProfiler>>,
}

impl Machine {
    /// Builds a bare machine around a linked program (no accelerator,
    /// no instrumentation). Use [`Machine::builder`] to attach either.
    pub fn new(program: &Program, config: MachineConfig) -> Self {
        let rom = Rom::new(program.rom());
        let decoded = program
            .rom()
            .iter()
            .map(|&w| Instr::decode(w).ok())
            .collect();
        let mut regs = [0u32; 32];
        // Stack grows down from the top of RAM.
        regs[Reg::SP.num() as usize] = ule_isa::asm::RAM_BASE + ule_isa::asm::RAM_SIZE - 16;
        Machine {
            regs,
            hi: 0,
            lo: 0,
            ovflo: 0,
            pc: program.entry(),
            pending_branch: None,
            rom,
            ram: Ram::new(),
            decoded,
            xops: None,
            icache: config.icache.map(ICache::new),
            cop: Box::new(NoCoprocessor),
            config,
            mult_latency: config.mult_latency,
            div_latency: config.div_latency,
            extensions: config.extensions,
            cycle: 0,
            counters: Counters::default(),
            bht: [1; 64], // weakly not-taken
            mult_free_at: 0,
            last_load_dest: None,
            halted: None,
            profiler: None,
            sampler: None,
        }
    }

    /// Starts building a machine with attachments (accelerator,
    /// instrumentation).
    pub fn builder(program: &Program, config: MachineConfig) -> MachineBuilder<'_> {
        MachineBuilder {
            program,
            config,
            cop: None,
            instrumentation: Instrumentation::none(),
        }
    }

    /// Detaches the profiler (exact or sampled), returning the
    /// per-routine breakdown accumulated so far (`None` if neither was
    /// attached). A sampled profile carries an empty call graph.
    pub fn take_profile(&mut self) -> Option<RoutineProfile> {
        if let Some(p) = self.profiler.take() {
            return Some(p.finish());
        }
        self.sampler.take().map(|s| s.finish())
    }

    /// The data RAM (for injecting operands and reading results).
    pub fn ram(&self) -> &Ram {
        &self.ram
    }

    /// Mutable access to the data RAM.
    pub fn ram_mut(&mut self) -> &mut Ram {
        &mut self.ram
    }

    /// ROM access statistics.
    pub fn rom_stats(&self) -> MemStats {
        let mut s = self.rom.stats();
        if let Some(c) = &self.icache {
            s.line_reads += c.stats().rom_line_reads;
        }
        s
    }

    /// RAM access statistics (Pete's port; accelerator traffic is added
    /// via [`Ram::count_external`] at issue time).
    pub fn ram_stats(&self) -> MemStats {
        self.ram.stats()
    }

    /// Instruction-cache statistics, if a cache is configured.
    pub fn icache_stats(&self) -> Option<CacheStats> {
        self.icache.as_ref().map(|c| c.stats())
    }

    /// Accelerator statistics.
    pub fn cop_stats(&self) -> CopStats {
        self.cop.stats()
    }

    /// Event counters.
    pub fn counters(&self) -> Counters {
        let mut c = self.counters;
        c.cycles = self.cycle;
        c
    }

    /// Elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// The machine configuration.
    pub fn config(&self) -> MachineConfig {
        self.config
    }

    /// Current value of a GPR (testing).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.num() as usize]
    }

    /// Sets a GPR (argument injection for routine-level tests).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.num() as usize] = v;
        }
    }

    /// Sets the program counter (to call an individual routine).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Runs until `break` or the cycle limit, on the engine tier the
    /// options select.
    ///
    /// # Panics
    ///
    /// Panics if [`EngineTier::Fast`] is forced on a machine with a
    /// profiler attached (the fast engine cannot attribute cycles).
    pub fn run_with(&mut self, opts: ExecOptions) -> RunExit {
        let fast = match opts.tier {
            EngineTier::Auto => self.profiler.is_none(),
            EngineTier::Fast => {
                assert!(
                    self.profiler.is_none(),
                    "EngineTier::Fast on a profiled machine; use Auto or Reference"
                );
                true
            }
            EngineTier::Reference => false,
        };
        if fast {
            self.run_fast(opts.max_cycles)
        } else {
            self.run_reference(opts.max_cycles)
        }
    }

    /// The reference-tier interpreter loop, bounded by `bound` cycles.
    /// Both the uninstrumented and the sampled paths run this one
    /// function, so sampling cannot perturb the loop it measures
    /// (`inline(never)` keeps the compiler from re-specializing a copy
    /// per call site).
    #[inline(never)]
    fn step_until(&mut self, bound: u64) {
        while self.halted.is_none() && self.cycle < bound {
            self.step();
        }
    }

    /// The instrumented reference interpreter.
    fn run_reference(&mut self, max_cycles: u64) -> RunExit {
        if let Some(mut s) = self.sampler.take() {
            // Sampled profiling on the reference tier: the same
            // boundary-sampling semantics as the fast engine, with a
            // "block" being one instruction.
            loop {
                self.step_until(max_cycles.min(s.next_sample_at()));
                if self.halted.is_some() || self.cycle >= max_cycles {
                    break;
                }
                let act = self.activity_snapshot();
                s.sample(self.pc, self.cycle, self.counters.instructions, &act);
            }
            let act = self.activity_snapshot();
            s.flush(self.pc, self.cycle, self.counters.instructions, &act);
            self.sampler = Some(s);
        } else {
            self.step_until(max_cycles);
        }
        match self.halted {
            Some(code) => RunExit::Halted { code },
            None => RunExit::CycleLimit,
        }
    }

    /// The fast engine: dispatches pre-translated (and, where legal,
    /// fused) operations with no per-instruction instrumentation
    /// plumbing. Timing and counters are bit-identical to
    /// [`Machine::run_reference`]. An attached [`SampledProfiler`] is
    /// consulted once per dispatch, at block boundaries, in a
    /// dedicated loop so the common uninstrumented path pays nothing.
    fn run_fast(&mut self, max_cycles: u64) -> RunExit {
        if self.xops.is_none() {
            self.xops = Some(xlate::translate(&self.decoded));
        }
        // Move the table out for the duration of the loop so dispatch
        // needs no per-step Option check or re-borrow.
        let xt = self.xops.take().expect("translation table just built");
        if let Some(mut s) = self.sampler.take() {
            // Sampled profiling runs the *same* dispatch loop as the
            // uninstrumented path ([`Machine::dispatch_fast_until`]),
            // bounded by the next stride threshold instead of the run
            // budget: the hot loop carries no extra state, and all
            // sampling work happens between spans. Each interval is
            // billed to the routine owning the PC at the first block
            // boundary past the threshold; the activity snapshot is
            // purely observational, so the run stays bit-identical to
            // an unsampled one.
            loop {
                self.dispatch_fast_until(&xt, max_cycles.min(s.next_sample_at()), max_cycles);
                if self.halted.is_some() || self.cycle >= max_cycles {
                    break;
                }
                let act = self.activity_snapshot();
                s.sample(self.pc, self.cycle, self.counters.instructions, &act);
            }
            // Flush the final partial interval so bucket totals equal
            // the headline counters exactly.
            let act = self.activity_snapshot();
            s.flush(self.pc, self.cycle, self.counters.instructions, &act);
            self.sampler = Some(s);
        } else {
            self.dispatch_fast_until(&xt, max_cycles, max_cycles);
        }
        self.xops = Some(xt);
        match self.halted {
            Some(code) => RunExit::Halted { code },
            None => RunExit::CycleLimit,
        }
    }

    /// Executes one architectural instruction (advancing time by its issue
    /// cycle plus any stalls) on the reference engine.
    fn step(&mut self) {
        if self.halted.is_some() {
            return;
        }
        let cycle_at_issue = self.cycle;
        // Snapshot the counted memory/coprocessor statistics so the
        // profiler can attribute this instruction's delta. All counted
        // traffic happens inside `step` (harness pokes/peeks are
        // uncounted), so the per-routine slices sum exactly to the
        // run's `RawStats`.
        let activity_before = self.profiler.is_some().then(|| self.activity_snapshot());
        let branch_target = self.pending_branch.take();
        let pc = self.pc;
        let instr = self.fetch(pc);
        self.counters.instructions += 1;

        // Load-use interlock (the one un-forwardable hazard, §2.2).
        self.interlock(xlate::src_mask(instr));

        // Base issue cycle.
        self.cycle += 1;
        let next_pc = self.execute(instr, pc);

        match branch_target {
            Some(target) => {
                // We just executed a delay slot; control transfers now.
                debug_assert!(
                    !instr.is_control_flow(),
                    "control-flow instruction in a delay slot at {pc:#x}"
                );
                self.pc = target;
            }
            None => self.pc = next_pc,
        }

        // `cycle` only advances inside `step`, so attributing the delta
        // to this instruction's PC makes the routine buckets sum
        // exactly to the machine's total cycles.
        if let Some(before) = activity_before {
            let delta = ActivitySlice::delta(&before, &self.activity_snapshot());
            // Shadow-stack events: a link-register write is a call; a
            // register jump may be a return. `get(rs)` is still the
            // jump target here — `jr` writes no register and a
            // linking `jalr` is classified as a call, not a jump.
            let event = match instr {
                Instr::Jal { .. } => Some(ControlEvent::Call {
                    ret: pc.wrapping_add(8),
                }),
                Instr::Jalr { rd, .. } if rd != Reg::ZERO => Some(ControlEvent::Call {
                    ret: pc.wrapping_add(8),
                }),
                Instr::Jalr { rs, .. } | Instr::Jr { rs } => Some(ControlEvent::JumpReg {
                    target: self.get(rs),
                }),
                _ => None,
            };
            if let Some(p) = self.profiler.as_mut() {
                p.record(pc, self.cycle - cycle_at_issue, &delta, event);
            }
        }
    }

    /// The fast-engine dispatch loop, bounded by `bound` cycles. Both
    /// the uninstrumented and the sampled paths run this one function,
    /// so sampling cannot perturb the loop it measures
    /// (`inline(never)` keeps the compiler from re-specializing a copy
    /// per call site).
    #[inline(never)]
    fn dispatch_fast_until(&mut self, xt: &XTable, bound: u64, max_cycles: u64) {
        while self.halted.is_none() && self.cycle < bound {
            self.step_fast(xt, max_cycles);
        }
    }

    /// One fast-engine dispatch: a whole basic block (or a branch with
    /// its delay slot) where legal, a single translated op otherwise.
    /// Mirrors `step` exactly minus the profiler/activity plumbing.
    fn step_fast(&mut self, xt: &XTable, max_cycles: u64) {
        let branch_target = self.pending_branch.take();
        let pc = self.pc;
        let seq = pc.wrapping_add(4);
        let op = xt
            .ops
            .get((pc >> 2) as usize)
            .copied()
            .unwrap_or(XOp::Invalid);
        match op {
            // A basic block dispatches whole when it starts outside a
            // delay slot and the cycle limit provably cannot interrupt
            // it (see `block_worst`): every member is non-halting, so
            // the reference engine would have stepped through all of
            // them too.
            XOp::Block {
                off,
                len,
                stalls,
                first_mask,
            } if branch_target.is_none()
                && self.cycle + self.block_worst(len, stalls) <= max_cycles =>
            {
                let members = &xt.pool[off as usize..off as usize + len as usize];
                self.block_body(pc, members, stalls, first_mask);
                self.last_load_dest = match members[len as usize - 1] {
                    BOp::Lw(m) => Some(m.rt),
                    _ => None,
                };
                self.pc = pc.wrapping_add(4 * len as u32);
            }
            // A block reached in a delay slot or at the cycle-limit
            // boundary executes only its first member; the next word's
            // own entry (a shorter suffix block, or a single op at the
            // run's tail) takes over from there.
            XOp::Block { off, .. } => {
                self.single_member(xt.pool[off as usize], pc, branch_target);
            }
            // A control-terminated block: the straight-line members,
            // the branch or jump, and its delay slot, all in one
            // dispatch. The terminator's interlock against a trailing
            // load member is folded into `stalls` at translation time;
            // the delay-slot member can never interlock (its
            // predecessor is the terminator, not a load).
            XOp::BlockBr { idx }
                if branch_target.is_none()
                    && self.cycle + self.blockbr_worst(&xt.brs[idx as usize]) <= max_cycles =>
            {
                let bb = &xt.brs[idx as usize];
                let members = &xt.pool[bb.off as usize..bb.off as usize + bb.len as usize];
                self.block_body(pc, members, bb.stalls, bb.first_mask);
                // Terminator and delay slot in the reference engine's
                // exact fetch order (branch word, wrong-path word on a
                // mispredict, delay word) — the I-cache state walk
                // depends on it.
                let br_pc = pc.wrapping_add(4 * bb.len as u32);
                self.fetch_access(br_pc);
                self.counters.instructions += 1;
                self.cycle += 1;
                match bb.term {
                    Term::Branch(b) => {
                        let taken = self.branch_taken(b);
                        self.branch_resolved(br_pc, b.target, taken);
                        self.exec_delay_member(bb.ds, br_pc.wrapping_add(4));
                        self.pc = self.pending_branch.take().unwrap_or(br_pc.wrapping_add(8));
                    }
                    Term::Jump { target, link } => {
                        if link {
                            self.set(Reg::RA, br_pc.wrapping_add(8));
                        }
                        self.exec_delay_member(bb.ds, br_pc.wrapping_add(4));
                        self.pc = target;
                    }
                    Term::JumpReg { rs, link } => {
                        let t = self.get(rs);
                        if let Some(rd) = link {
                            self.set(rd, br_pc.wrapping_add(8));
                        }
                        self.exec_delay_member(bb.ds, br_pc.wrapping_add(4));
                        self.pc = t;
                    }
                }
            }
            XOp::BlockBr { idx } => {
                self.single_member(
                    xt.pool[xt.brs[idx as usize].off as usize],
                    pc,
                    branch_target,
                );
            }
            XOp::Alu(a) => {
                self.fetch_access(pc);
                self.counters.instructions += 1;
                self.interlock(a.src_mask());
                self.cycle += 1;
                let v = self.alu_eval(a);
                self.set(a.rd, v);
                self.last_load_dest = None;
                self.pc = branch_target.unwrap_or(seq);
            }
            XOp::Lw(m) => {
                self.fetch_access(pc);
                self.counters.instructions += 1;
                self.interlock(1 << m.base.num());
                self.cycle += 1;
                self.lw_exec(m);
                self.last_load_dest = Some(m.rt);
                self.pc = branch_target.unwrap_or(seq);
            }
            XOp::Sw(m) => {
                self.fetch_access(pc);
                self.counters.instructions += 1;
                self.interlock(1 << m.base.num());
                self.cycle += 1;
                self.sw_exec(m);
                self.last_load_dest = None;
                self.pc = branch_target.unwrap_or(seq);
            }
            // Branch + delay slot in one dispatch: resolve (prediction,
            // penalty), run the delay-slot member, land on the
            // destination. The branch's interlock consumed
            // `last_load_dest`, so the delay member never stalls; the
            // worst case (see `pair_worst`) is entry interlock, branch,
            // mispredict, member, and two possible I-cache line misses.
            XOp::BranchDs(b, d)
                if branch_target.is_none() && self.cycle + self.pair_worst() <= max_cycles =>
            {
                self.fetch_access(pc);
                self.counters.instructions += 1;
                self.interlock(b.src_mask());
                self.cycle += 1;
                let taken = self.branch_taken(b);
                self.branch_resolved(pc, b.target, taken);
                self.exec_delay_member(d, seq);
                self.pc = self.pending_branch.take().unwrap_or(pc.wrapping_add(8));
            }
            XOp::Branch(b) | XOp::BranchDs(b, _) => {
                self.fetch_access(pc);
                self.counters.instructions += 1;
                self.interlock(b.src_mask());
                self.cycle += 1;
                let taken = self.branch_taken(b);
                self.branch_resolved(pc, b.target, taken);
                self.last_load_dest = None;
                self.pc = branch_target.unwrap_or(seq);
            }
            // Jump + delay slot in one dispatch (calls and returns):
            // link, run the delay-slot member, land on the target. The
            // register target is read before the member executes, as
            // the reference does.
            XOp::JumpDs { target, link, ds }
                if branch_target.is_none() && self.cycle + self.pair_worst() <= max_cycles =>
            {
                self.fetch_access(pc);
                self.counters.instructions += 1;
                self.interlock(0);
                self.cycle += 1;
                if link {
                    self.set(Reg::RA, pc.wrapping_add(8));
                }
                self.exec_delay_member(ds, seq);
                self.pc = target;
            }
            XOp::JumpRegDs { rs, link, ds }
                if branch_target.is_none() && self.cycle + self.pair_worst() <= max_cycles =>
            {
                self.fetch_access(pc);
                self.counters.instructions += 1;
                self.interlock(1 << rs.num());
                self.cycle += 1;
                let t = self.get(rs);
                if let Some(rd) = link {
                    self.set(rd, pc.wrapping_add(8));
                }
                self.exec_delay_member(ds, seq);
                self.pc = t;
            }
            XOp::Jump { target, link } | XOp::JumpDs { target, link, .. } => {
                self.fetch_access(pc);
                self.counters.instructions += 1;
                self.interlock(0);
                self.cycle += 1;
                if link {
                    self.set(Reg::RA, pc.wrapping_add(8));
                }
                self.pending_branch = Some(target);
                self.last_load_dest = None;
                self.pc = branch_target.unwrap_or(seq);
            }
            XOp::JumpReg { rs, link } | XOp::JumpRegDs { rs, link, .. } => {
                self.fetch_access(pc);
                self.counters.instructions += 1;
                self.interlock(1 << rs.num());
                self.cycle += 1;
                let t = self.get(rs);
                if let Some(rd) = link {
                    self.set(rd, pc.wrapping_add(8));
                }
                self.pending_branch = Some(t);
                self.last_load_dest = None;
                self.pc = branch_target.unwrap_or(seq);
            }
            XOp::Break { code } => {
                self.fetch_access(pc);
                self.counters.instructions += 1;
                self.interlock(0);
                self.cycle += 1;
                self.halted = Some(code);
                self.last_load_dest = None;
                self.pc = branch_target.unwrap_or(seq);
            }
            XOp::Other(i) => {
                self.fetch_access(pc);
                self.counters.instructions += 1;
                self.interlock(xlate::src_mask(i));
                self.cycle += 1;
                let next = self.execute(i, pc);
                self.pc = branch_target.unwrap_or(next);
            }
            XOp::Invalid => {
                // Keep the reference engine's exact fetch accounting
                // and panic message.
                self.fetch_access(pc);
                panic!("fetch of a non-instruction word at {pc:#010x}");
            }
        }
    }

    /// Evaluates a translated branch condition.
    #[inline(always)]
    fn branch_taken(&self, b: BranchOp) -> bool {
        match b.cond {
            BrCond::Beq => self.get(b.rs) == self.get(b.rt),
            BrCond::Bne => self.get(b.rs) != self.get(b.rt),
            BrCond::Blez => (self.get(b.rs) as i32) <= 0,
            BrCond::Bgtz => (self.get(b.rs) as i32) > 0,
            BrCond::Bltz => (self.get(b.rs) as i32) < 0,
            BrCond::Bgez => (self.get(b.rs) as i32) >= 0,
        }
    }

    /// Evaluates a translated single-cycle ALU op — the same extension
    /// and wrapping rules as the corresponding `execute` arms.
    #[inline(always)]
    fn alu_eval(&self, op: AluOp) -> u32 {
        use AluKind::*;
        let rs = self.get(op.rs);
        let rt = self.get(op.rt);
        match op.kind {
            Addu => rs.wrapping_add(rt),
            Subu => rs.wrapping_sub(rt),
            And => rs & rt,
            Or => rs | rt,
            Xor => rs ^ rt,
            Nor => !(rs | rt),
            Slt => ((rs as i32) < rt as i32) as u32,
            Sltu => (rs < rt) as u32,
            Sllv => rt << (rs & 31),
            Srlv => rt >> (rs & 31),
            Srav => ((rt as i32) >> (rs & 31)) as u32,
            SllI => rt << op.imm,
            SrlI => rt >> op.imm,
            SraI => ((rt as i32) >> op.imm) as u32,
            Addiu => rs.wrapping_add(op.imm),
            Slti => ((rs as i32) < op.imm as i32) as u32,
            Sltiu => (rs < op.imm) as u32,
            Andi => rs & op.imm,
            Ori => rs | op.imm,
            Xori => rs ^ op.imm,
            Lui => op.imm,
        }
    }

    /// Word-load semantics of a translated `lw`.
    #[inline(always)]
    fn lw_exec(&mut self, m: MemOp) {
        let addr = self.get(m.base).wrapping_add(m.offset as i32 as u32);
        let v = self.load_word(addr);
        self.set(m.rt, v);
    }

    /// Word-store semantics of a translated `sw`.
    #[inline(always)]
    fn sw_exec(&mut self, m: MemOp) {
        let addr = self.get(m.base).wrapping_add(m.offset as i32 as u32);
        assert!(addr.is_multiple_of(4), "unaligned sw at {addr:#x}");
        self.ram.write(addr, self.get(m.rt));
    }

    /// The counted memory-system and coprocessor statistics, folded
    /// into the profiler's [`ActivitySlice`] shape. Purely observational
    /// (never advances time), so a profiled run stays bit-identical to
    /// an unprofiled one.
    fn activity_snapshot(&self) -> ActivitySlice {
        let rom = self.rom.stats();
        let ram = self.ram.stats();
        let (ic_accesses, ic_misses, ic_lines) = match &self.icache {
            Some(c) => {
                let s = c.stats();
                (s.accesses, s.misses, s.rom_line_reads)
            }
            None => (0, 0, 0),
        };
        let cop = self.cop.stats();
        ActivitySlice {
            rom_reads: rom.reads,
            rom_line_reads: rom.line_reads + ic_lines,
            ram_reads: ram.reads,
            ram_writes: ram.writes,
            icache_accesses: ic_accesses,
            icache_misses: ic_misses,
            cop_mul_ops: cop.mul_ops,
            cop_ls_ops: cop.ls_ops,
        }
    }

    fn stall(&mut self, cycles: u64) {
        self.cycle += cycles;
        self.counters.stall_cycles += cycles;
    }

    fn stall_until(&mut self, cycle: u64) -> u64 {
        if cycle > self.cycle {
            let d = cycle - self.cycle;
            self.stall(d);
            d
        } else {
            0
        }
    }

    /// Fetch-side accounting for one instruction at `pc`: fetch count
    /// plus the I-cache access (with its stall) or the ROM word read.
    #[inline(always)]
    fn fetch_access(&mut self, pc: u32) {
        self.counters.fetches += 1;
        match &mut self.icache {
            Some(cache) => {
                let outcome = cache.access(pc);
                if outcome.stall > 0 {
                    self.stall(outcome.stall as u64);
                }
                // Line traffic is accounted in the cache stats and merged
                // in rom_stats().
            }
            None => {
                // Dual-port ROM: one 32-bit read per fetch (§5.1).
                let _ = self.rom.fetch(pc);
            }
        }
    }

    /// Worst-case cycle cost of dispatching a whole block: `len` issue
    /// cycles, the static internal stalls, at most one dynamic entry
    /// interlock, and (with an I-cache) a miss on every 16-byte line
    /// the block can touch. Conservative on purpose — a guard miss only
    /// means falling back to single-op dispatch, which is always exact.
    #[inline(always)]
    fn block_worst(&self, len: u16, stalls: u16) -> u64 {
        let fetch_worst = match self.config.icache {
            Some(c) => c.miss_penalty as u64 * (len as u64 / 4 + 2),
            None => 0,
        };
        len as u64 + stalls as u64 + 1 + fetch_worst
    }

    /// Worst-case cost of a branch-terminated block dispatch: the
    /// block itself, the branch and delay-slot issue cycles, a
    /// possible mispredict stall, and (with an I-cache) misses on the
    /// two extra words' lines.
    #[inline(always)]
    fn blockbr_worst(&self, bb: &BrBlock) -> u64 {
        self.block_worst(bb.len, bb.stalls)
            + 3
            + self.config.icache.map_or(0, |c| 2 * c.miss_penalty as u64)
    }

    /// Worst-case cost of a fused branch-or-jump + delay-slot pair:
    /// the dynamic entry interlock, two issue cycles, a possible
    /// mispredict stall, and (with an I-cache) misses on both words'
    /// lines.
    #[inline(always)]
    fn pair_worst(&self) -> u64 {
        4 + self.config.icache.map_or(0, |c| 2 * c.miss_penalty as u64)
    }

    /// Fetches and executes a fused dispatch's delay-slot member at
    /// `seq`. The member never interlocks (its predecessor is the
    /// branch or jump, never a load); sets `last_load_dest` for the
    /// successor.
    #[inline(always)]
    fn exec_delay_member(&mut self, d: BOp, seq: u32) {
        self.fetch_access(seq);
        self.counters.instructions += 1;
        self.cycle += 1;
        match d {
            BOp::Alu(a) => {
                let v = self.alu_eval(a);
                self.set(a.rd, v);
                self.last_load_dest = None;
            }
            BOp::Lw(m) => {
                self.lw_exec(m);
                self.last_load_dest = Some(m.rt);
            }
            BOp::Sw(m) => {
                self.sw_exec(m);
                self.last_load_dest = None;
            }
        }
    }

    /// The batched core of a whole-block dispatch: fetch accounting
    /// for the members' sequential words, the dynamic entry interlock,
    /// the statically-summed issue cycles and stalls, and every
    /// member's data semantics. `last_load_dest` is left to the caller.
    #[inline(always)]
    fn block_body(&mut self, pc: u32, members: &[BOp], stalls: u16, first_mask: u32) {
        let len = members.len() as u64;
        self.counters.fetches += len;
        let fetch_stalls = match &mut self.icache {
            Some(cache) => {
                // Only the first access of each 16-byte line is
                // dynamic (hit/miss/prefetch); the line's other words
                // are guaranteed hits — nothing can evict a line under
                // a straight-line block, and a hit touches no cache
                // state beyond the access counter.
                let mut stall_total = 0u64;
                let mut p = pc;
                let end = pc.wrapping_add(4 * len as u32);
                while p < end {
                    let chunk = ((p | 15) + 1).min(end);
                    stall_total += cache.access(p).stall as u64;
                    cache.sequential_hits((chunk - p) as u64 / 4 - 1);
                    p = chunk;
                }
                stall_total
            }
            None => {
                // Dual-port ROM: one 32-bit read per fetch.
                self.rom.note_fetches(len);
                0
            }
        };
        if fetch_stalls > 0 {
            self.stall(fetch_stalls);
        }
        self.counters.instructions += len;
        self.interlock(first_mask);
        self.cycle += len + stalls as u64;
        self.counters.stall_cycles += stalls as u64;
        self.counters.load_use_stalls += stalls as u64;
        for m in members {
            match *m {
                BOp::Alu(a) => {
                    let v = self.alu_eval(a);
                    self.set(a.rd, v);
                }
                BOp::Lw(m) => self.lw_exec(m),
                BOp::Sw(m) => self.sw_exec(m),
            }
        }
    }

    /// Single-step fallback for a block entry reached in a delay slot
    /// or too close to the cycle limit: executes just the first
    /// member; the next word's own (shorter) entry takes over.
    #[inline(always)]
    fn single_member(&mut self, m: BOp, pc: u32, branch_target: Option<u32>) {
        self.fetch_access(pc);
        self.counters.instructions += 1;
        self.interlock(m.src_mask());
        self.cycle += 1;
        match m {
            BOp::Alu(a) => {
                let v = self.alu_eval(a);
                self.set(a.rd, v);
                self.last_load_dest = None;
            }
            BOp::Lw(m) => {
                self.lw_exec(m);
                self.last_load_dest = Some(m.rt);
            }
            BOp::Sw(m) => {
                self.sw_exec(m);
                self.last_load_dest = None;
            }
        }
        self.pc = branch_target.unwrap_or(pc.wrapping_add(4));
    }

    fn fetch(&mut self, pc: u32) -> Instr {
        self.fetch_access(pc);
        match self.decoded.get((pc / 4) as usize) {
            Some(&Some(i)) => i,
            _ => panic!("fetch of a non-instruction word at {pc:#010x}"),
        }
    }

    /// Account a wasted wrong-path fetch after a misprediction.
    fn wasted_fetch(&mut self, pc: u32) {
        self.counters.fetches += 1;
        match &mut self.icache {
            Some(cache) => {
                let _ = cache.access(pc);
            }
            None => {
                let _ = self.rom.fetch(pc);
            }
        }
    }

    /// The load-use interlock check against the previous instruction's
    /// load destination; `mask` is the current instruction's
    /// execute-stage source-register bitmask ([`xlate::src_mask`]).
    #[inline(always)]
    fn interlock(&mut self, mask: u32) {
        if let Some(dest) = self.last_load_dest.take() {
            if dest != Reg::ZERO && mask >> dest.num() & 1 != 0 {
                self.stall(1);
                self.counters.load_use_stalls += 1;
            }
        }
    }

    fn get(&self, r: Reg) -> u32 {
        self.regs[r.num() as usize]
    }

    fn set(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.num() as usize] = v;
        }
    }

    fn acc(&self) -> u128 {
        ((self.ovflo as u128) << 64) | ((self.hi as u128) << 32) | self.lo as u128
    }

    fn set_acc(&mut self, v: u128) {
        let v = v & ((1u128 << 96) - 1);
        self.lo = v as u32;
        self.hi = (v >> 32) as u32;
        self.ovflo = (v >> 64) as u32;
    }

    /// Issues into the Hi/Lo unit: stall if busy, then occupy it.
    fn hilo_issue(&mut self, latency: u32) {
        let stalled = self.stall_until(self.mult_free_at);
        self.counters.mult_stalls += stalled;
        self.mult_free_at = self.cycle + latency as u64;
        self.counters.mult_active_cycles += latency as u64;
    }

    /// Reads from the Hi/Lo unit: stall until the result is ready.
    fn hilo_wait(&mut self) {
        let stalled = self.stall_until(self.mult_free_at);
        self.counters.mult_stalls += stalled;
    }

    fn require_ext(&self, i: Instr) {
        assert!(
            self.extensions,
            "ISA-extension instruction {i} on a non-extended machine"
        );
    }

    fn load_word(&mut self, addr: u32) -> u32 {
        assert!(addr.is_multiple_of(4), "unaligned word access at {addr:#x}");
        if Ram::contains(addr) {
            self.ram.read(addr)
        } else {
            self.rom.read(addr)
        }
    }

    fn load_sub(&mut self, addr: u32, bytes: u32) -> u32 {
        let word_addr = addr & !3;
        let word = if Ram::contains(word_addr) {
            self.ram.read(word_addr)
        } else {
            self.rom.read(word_addr)
        };
        let shift = 8 * (addr & 3);
        let mask = if bytes == 1 { 0xff } else { 0xffff };
        (word >> shift) & mask
    }

    fn store_sub(&mut self, addr: u32, bytes: u32, value: u32) {
        let word_addr = addr & !3;
        let old = self.ram.peek(word_addr);
        let shift = 8 * (addr & 3);
        let mask: u32 = if bytes == 1 { 0xff } else { 0xffff };
        let new = (old & !(mask << shift)) | ((value & mask) << shift);
        self.ram.write(word_addr, new);
    }

    /// Executes the instruction's semantics and timing; returns the next
    /// sequential PC (branches instead arm `pending_branch`). Shared by
    /// both engines: the fast tier routes everything it does not
    /// translate ([`XOp::Other`]) through here.
    fn execute(&mut self, instr: Instr, pc: u32) -> u32 {
        use Instr::*;
        let seq = pc.wrapping_add(4);
        let mut next = seq;
        let mut loaded: Option<Reg> = None;
        match instr {
            Addu { rd, rs, rt } => self.set(rd, self.get(rs).wrapping_add(self.get(rt))),
            Subu { rd, rs, rt } => self.set(rd, self.get(rs).wrapping_sub(self.get(rt))),
            And { rd, rs, rt } => self.set(rd, self.get(rs) & self.get(rt)),
            Or { rd, rs, rt } => self.set(rd, self.get(rs) | self.get(rt)),
            Xor { rd, rs, rt } => self.set(rd, self.get(rs) ^ self.get(rt)),
            Nor { rd, rs, rt } => self.set(rd, !(self.get(rs) | self.get(rt))),
            Slt { rd, rs, rt } => {
                self.set(rd, ((self.get(rs) as i32) < self.get(rt) as i32) as u32)
            }
            Sltu { rd, rs, rt } => self.set(rd, (self.get(rs) < self.get(rt)) as u32),
            Sllv { rd, rt, rs } => self.set(rd, self.get(rt) << (self.get(rs) & 31)),
            Srlv { rd, rt, rs } => self.set(rd, self.get(rt) >> (self.get(rs) & 31)),
            Srav { rd, rt, rs } => {
                self.set(rd, ((self.get(rt) as i32) >> (self.get(rs) & 31)) as u32)
            }
            Sll { rd, rt, shamt } => self.set(rd, self.get(rt) << shamt),
            Srl { rd, rt, shamt } => self.set(rd, self.get(rt) >> shamt),
            Sra { rd, rt, shamt } => self.set(rd, ((self.get(rt) as i32) >> shamt) as u32),
            Addiu { rt, rs, imm } => self.set(rt, self.get(rs).wrapping_add(imm as i32 as u32)),
            Slti { rt, rs, imm } => self.set(rt, ((self.get(rs) as i32) < imm as i32) as u32),
            Sltiu { rt, rs, imm } => self.set(rt, (self.get(rs) < imm as i32 as u32) as u32),
            Andi { rt, rs, imm } => self.set(rt, self.get(rs) & imm as u32),
            Ori { rt, rs, imm } => self.set(rt, self.get(rs) | imm as u32),
            Xori { rt, rs, imm } => self.set(rt, self.get(rs) ^ imm as u32),
            Lui { rt, imm } => self.set(rt, (imm as u32) << 16),
            Mult { rs, rt } => {
                self.hilo_issue(self.mult_latency);
                self.counters.mult_ops += 1;
                let p = (self.get(rs) as i32 as i64) * (self.get(rt) as i32 as i64);
                self.lo = p as u32;
                self.hi = (p >> 32) as u32;
                self.ovflo = 0;
            }
            Multu { rs, rt } => {
                self.hilo_issue(self.mult_latency);
                self.counters.mult_ops += 1;
                let p = (self.get(rs) as u64) * (self.get(rt) as u64);
                self.lo = p as u32;
                self.hi = (p >> 32) as u32;
                self.ovflo = 0;
            }
            Div { rs, rt } => {
                self.hilo_issue(self.div_latency);
                self.counters.div_ops += 1;
                let (a, b) = (self.get(rs) as i32, self.get(rt) as i32);
                if b == 0 {
                    self.lo = u32::MAX;
                    self.hi = a as u32;
                } else {
                    self.lo = a.wrapping_div(b) as u32;
                    self.hi = a.wrapping_rem(b) as u32;
                }
                self.ovflo = 0;
            }
            Divu { rs, rt } => {
                self.hilo_issue(self.div_latency);
                self.counters.div_ops += 1;
                let (a, b) = (self.get(rs), self.get(rt));
                // MIPS divide-by-zero: lo/hi take defined junk values.
                #[allow(clippy::manual_checked_ops)]
                if b == 0 {
                    self.lo = u32::MAX;
                    self.hi = a;
                } else {
                    self.lo = a / b;
                    self.hi = a % b;
                }
                self.ovflo = 0;
            }
            Mfhi { rd } => {
                self.hilo_wait();
                self.set(rd, self.hi);
            }
            Mflo { rd } => {
                self.hilo_wait();
                self.set(rd, self.lo);
            }
            Mthi { rs } => {
                self.hilo_wait();
                self.hi = self.get(rs);
            }
            Mtlo { rs } => {
                self.hilo_wait();
                self.lo = self.get(rs);
            }
            Lw { rt, base, offset } => {
                let addr = self.get(base).wrapping_add(offset as i32 as u32);
                let v = self.load_word(addr);
                self.set(rt, v);
                loaded = Some(rt);
            }
            Lh { rt, base, offset } => {
                let addr = self.get(base).wrapping_add(offset as i32 as u32);
                let v = self.load_sub(addr, 2);
                self.set(rt, v as u16 as i16 as i32 as u32);
                loaded = Some(rt);
            }
            Lhu { rt, base, offset } => {
                let addr = self.get(base).wrapping_add(offset as i32 as u32);
                let v = self.load_sub(addr, 2);
                self.set(rt, v);
                loaded = Some(rt);
            }
            Lb { rt, base, offset } => {
                let addr = self.get(base).wrapping_add(offset as i32 as u32);
                let v = self.load_sub(addr, 1);
                self.set(rt, v as u8 as i8 as i32 as u32);
                loaded = Some(rt);
            }
            Lbu { rt, base, offset } => {
                let addr = self.get(base).wrapping_add(offset as i32 as u32);
                let v = self.load_sub(addr, 1);
                self.set(rt, v);
                loaded = Some(rt);
            }
            Sw { rt, base, offset } => {
                let addr = self.get(base).wrapping_add(offset as i32 as u32);
                assert!(addr.is_multiple_of(4), "unaligned sw at {addr:#x}");
                self.ram.write(addr, self.get(rt));
            }
            Sh { rt, base, offset } => {
                let addr = self.get(base).wrapping_add(offset as i32 as u32);
                self.store_sub(addr, 2, self.get(rt));
            }
            Sb { rt, base, offset } => {
                let addr = self.get(base).wrapping_add(offset as i32 as u32);
                self.store_sub(addr, 1, self.get(rt));
            }
            Beq { rs, rt, offset } => {
                let taken = self.get(rs) == self.get(rt);
                self.branch(pc, seq, offset, taken, &mut next);
            }
            Bne { rs, rt, offset } => {
                let taken = self.get(rs) != self.get(rt);
                self.branch(pc, seq, offset, taken, &mut next);
            }
            Blez { rs, offset } => {
                let taken = (self.get(rs) as i32) <= 0;
                self.branch(pc, seq, offset, taken, &mut next);
            }
            Bgtz { rs, offset } => {
                let taken = (self.get(rs) as i32) > 0;
                self.branch(pc, seq, offset, taken, &mut next);
            }
            Bltz { rs, offset } => {
                let taken = (self.get(rs) as i32) < 0;
                self.branch(pc, seq, offset, taken, &mut next);
            }
            Bgez { rs, offset } => {
                let taken = (self.get(rs) as i32) >= 0;
                self.branch(pc, seq, offset, taken, &mut next);
            }
            J { target } => {
                self.pending_branch = Some((seq & 0xf000_0000) | (target << 2));
            }
            Jal { target } => {
                self.set(Reg::RA, pc.wrapping_add(8));
                self.pending_branch = Some((seq & 0xf000_0000) | (target << 2));
            }
            Jr { rs } => {
                self.pending_branch = Some(self.get(rs));
            }
            Jalr { rd, rs } => {
                let t = self.get(rs);
                self.set(rd, pc.wrapping_add(8));
                self.pending_branch = Some(t);
            }
            Break { code } => {
                self.halted = Some(code);
            }
            Maddu { rs, rt } => {
                self.require_ext(instr);
                self.hilo_issue(self.mult_latency);
                self.counters.mult_ops += 1;
                let p = (self.get(rs) as u128) * (self.get(rt) as u128);
                self.set_acc(self.acc().wrapping_add(p));
            }
            M2addu { rs, rt } => {
                self.require_ext(instr);
                self.hilo_issue(self.mult_latency);
                self.counters.mult_ops += 1;
                let p = (self.get(rs) as u128) * (self.get(rt) as u128) * 2;
                self.set_acc(self.acc().wrapping_add(p));
            }
            Addau { rs, rt } => {
                self.require_ext(instr);
                self.hilo_issue(1);
                let v = ((self.get(rs) as u128) << 32) + self.get(rt) as u128;
                self.set_acc(self.acc().wrapping_add(v));
            }
            Sha => {
                self.require_ext(instr);
                self.hilo_issue(1);
                self.set_acc(self.acc() >> 32);
            }
            Mulgf2 { rs, rt } => {
                self.require_ext(instr);
                self.hilo_issue(self.mult_latency);
                self.counters.mult_ops += 1;
                self.set_acc(clmul32(self.get(rs), self.get(rt)) as u128);
            }
            Maddgf2 { rs, rt } => {
                self.require_ext(instr);
                self.hilo_issue(self.mult_latency);
                self.counters.mult_ops += 1;
                self.set_acc(self.acc() ^ clmul32(self.get(rs), self.get(rt)) as u128);
            }
            Ctc2 { .. }
            | Cop2Sync
            | Cop2LdA { .. }
            | Cop2LdB { .. }
            | Cop2LdN { .. }
            | Cop2Mul
            | Cop2Add
            | Cop2Sub
            | Cop2St { .. }
            | BilLd { .. }
            | BilSt { .. }
            | BilMul { .. }
            | BilSqr { .. }
            | BilAdd { .. } => {
                self.counters.cop2_ops += 1;
                if instr == Cop2Sync {
                    let idle = self.cop.idle_at();
                    let stalled = self.stall_until(idle);
                    self.counters.cop2_stalls += stalled;
                } else {
                    let rt_val = match instr {
                        Ctc2 { rt, .. }
                        | Cop2LdA { rt }
                        | Cop2LdB { rt }
                        | Cop2LdN { rt }
                        | Cop2St { rt }
                        | BilLd { rt, .. }
                        | BilSt { rt, .. } => self.get(rt),
                        _ => 0,
                    };
                    let resume = self.cop.issue(instr, rt_val, self.cycle, &mut self.ram);
                    let stalled = self.stall_until(resume);
                    self.counters.cop2_stalls += stalled;
                }
            }
        }
        self.last_load_dest = loaded;
        next
    }

    fn branch(&mut self, pc: u32, seq: u32, offset: i16, taken: bool, next: &mut u32) {
        let target = seq.wrapping_add((offset as i32 as u32) << 2);
        self.branch_resolved(pc, target, taken);
        *next = seq;
    }

    /// Predictor consultation/update and misprediction accounting for a
    /// branch whose target address is already resolved. Shared by both
    /// engines.
    fn branch_resolved(&mut self, pc: u32, target: u32, taken: bool) {
        self.counters.branches += 1;
        let idx = ((pc >> 2) & 63) as usize;
        let predicted_taken = self.bht[idx] >= 2;
        if predicted_taken != taken {
            self.counters.mispredicts += 1;
            self.stall(1);
            // One wrong-path instruction was fetched and flushed.
            let wrong = if taken { pc.wrapping_add(8) } else { target };
            self.wasted_fetch(wrong);
        }
        // 2-bit saturating update.
        self.bht[idx] = match (self.bht[idx], taken) {
            (c, true) if c < 3 => c + 1,
            (c, false) if c > 0 => c - 1,
            (c, _) => c,
        };
        if taken {
            self.pending_branch = Some(target);
        }
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &format_args!("{:#010x}", self.pc))
            .field("cycle", &self.cycle)
            .field("halted", &self.halted)
            .field("cop", &self.cop.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_isa::asm::Asm;

    fn run(asm: Asm) -> Machine {
        run_cfg(asm, MachineConfig::isa_ext())
    }

    /// Runs the program on BOTH engine tiers with the given config and
    /// asserts bit-identical architectural state, counters, and memory
    /// statistics — every unit test below doubles as an A/B test of
    /// the fast engine. Returns the fast-tier machine.
    fn run_cfg(asm: Asm, cfg: MachineConfig) -> Machine {
        let p = asm.link("main").expect("link");
        run_both(&p, cfg, 1_000_000)
    }

    fn run_both(p: &ule_isa::asm::Program, cfg: MachineConfig, max_cycles: u64) -> Machine {
        let mut fast = Machine::new(p, cfg);
        let exit_fast = fast.run_with(ExecOptions::new(max_cycles).with_tier(EngineTier::Fast));
        let mut reference = Machine::new(p, cfg);
        let exit_ref =
            reference.run_with(ExecOptions::new(max_cycles).with_tier(EngineTier::Reference));
        assert_eq!(exit_fast, exit_ref, "tiers disagree on exit");
        assert_eq!(
            exit_ref,
            RunExit::Halted { code: 0 },
            "program did not halt"
        );
        assert_tiers_equal(&fast, &reference);
        fast
    }

    fn assert_tiers_equal(fast: &Machine, reference: &Machine) {
        assert_eq!(fast.counters(), reference.counters(), "counters diverge");
        assert_eq!(fast.regs, reference.regs, "registers diverge");
        assert_eq!(
            (fast.hi, fast.lo, fast.ovflo, fast.pc),
            (reference.hi, reference.lo, reference.ovflo, reference.pc),
            "core state diverges"
        );
        assert_eq!(fast.rom_stats(), reference.rom_stats(), "ROM stats diverge");
        assert_eq!(fast.ram_stats(), reference.ram_stats(), "RAM stats diverge");
        assert_eq!(
            fast.icache_stats(),
            reference.icache_stats(),
            "I$ stats diverge"
        );
    }

    #[test]
    fn arithmetic_basics() {
        let mut a = Asm::new();
        a.label("main");
        a.li(Reg::T0, 40);
        a.addiu(Reg::T1, Reg::T0, 2);
        a.subu(Reg::T2, Reg::T1, Reg::T0);
        a.sll(Reg::T3, Reg::T1, 4);
        a.brk(0);
        let m = run(a);
        assert_eq!(m.reg(Reg::T1), 42);
        assert_eq!(m.reg(Reg::T2), 2);
        assert_eq!(m.reg(Reg::T3), 42 << 4);
    }

    #[test]
    fn memory_round_trip_and_subword() {
        let mut a = Asm::new();
        let buf = a.ram_alloc("buf", 2);
        a.label("main");
        a.li(Reg::T0, buf as i64);
        a.li(Reg::T1, 0x1234_5678);
        a.sw(Reg::T1, 0, Reg::T0);
        a.lw(Reg::T2, 0, Reg::T0);
        a.lbu(Reg::T3, 1, Reg::T0); // byte 1 = 0x56
        a.lhu(Reg::T4, 2, Reg::T0); // upper half = 0x1234
        a.li(Reg::T5, 0xab);
        a.sb(Reg::T5, 0, Reg::T0);
        a.lw(Reg::T6, 0, Reg::T0);
        a.brk(0);
        let m = run(a);
        assert_eq!(m.reg(Reg::T2), 0x1234_5678);
        assert_eq!(m.reg(Reg::T3), 0x56);
        assert_eq!(m.reg(Reg::T4), 0x1234);
        assert_eq!(m.reg(Reg::T6), 0x1234_56ab);
    }

    #[test]
    fn loop_and_branch() {
        // sum 1..=10
        let mut a = Asm::new();
        a.label("main");
        a.li(Reg::T0, 10);
        a.li(Reg::T1, 0);
        a.label("loop");
        a.addu(Reg::T1, Reg::T1, Reg::T0);
        a.addiu(Reg::T0, Reg::T0, -1);
        a.bne(Reg::T0, Reg::ZERO, "loop");
        a.nop();
        a.brk(0);
        let m = run(a);
        assert_eq!(m.reg(Reg::T1), 55);
        assert_eq!(m.counters().branches, 10);
    }

    #[test]
    fn delay_slot_always_executes() {
        let mut a = Asm::new();
        a.label("main");
        a.li(Reg::T0, 0);
        a.b("skip");
        a.addiu(Reg::T0, Reg::T0, 1); // delay slot: executes
        a.addiu(Reg::T0, Reg::T0, 100); // skipped
        a.label("skip");
        a.brk(0);
        let m = run(a);
        assert_eq!(m.reg(Reg::T0), 1);
    }

    #[test]
    fn jal_links_past_delay_slot() {
        let mut a = Asm::new();
        a.label("main");
        a.jal("fn");
        a.li(Reg::T5, 7); // delay slot
        a.brk(0);
        a.label("fn");
        a.jr(Reg::RA);
        a.li(Reg::T6, 9); // delay slot
        let m = run(a);
        assert_eq!(m.reg(Reg::T5), 7);
        assert_eq!(m.reg(Reg::T6), 9);
    }

    #[test]
    fn multiplier_latency_and_stalls() {
        // mflo immediately after mult must stall ~4 cycles.
        let mut a = Asm::new();
        a.label("main");
        a.li(Reg::T0, 1000);
        a.li(Reg::T1, 999);
        a.multu(Reg::T0, Reg::T1);
        a.mflo(Reg::T2);
        a.mfhi(Reg::T3);
        a.brk(0);
        let m = run(a);
        assert_eq!(m.reg(Reg::T2), 999_000);
        assert_eq!(m.reg(Reg::T3), 0);
        assert!(m.counters().mult_stalls >= 3, "{:?}", m.counters());

        // Independent instructions between mult and mflo hide the latency.
        let mut b = Asm::new();
        b.label("main");
        b.li(Reg::T0, 1000);
        b.li(Reg::T1, 999);
        b.multu(Reg::T0, Reg::T1);
        b.addiu(Reg::T4, Reg::ZERO, 1);
        b.addiu(Reg::T5, Reg::ZERO, 2);
        b.addiu(Reg::T6, Reg::ZERO, 3);
        b.addiu(Reg::T7, Reg::ZERO, 4);
        b.mflo(Reg::T2);
        b.brk(0);
        let m2 = run(b);
        assert_eq!(m2.reg(Reg::T2), 999_000);
        assert_eq!(m2.counters().mult_stalls, 0, "{:?}", m2.counters());
    }

    #[test]
    fn signed_multiply_and_divide() {
        let mut a = Asm::new();
        a.label("main");
        a.li(Reg::T0, -6i64);
        a.li(Reg::T1, 7);
        a.mult(Reg::T0, Reg::T1);
        a.mflo(Reg::T2); // -42
        a.li(Reg::T3, 43);
        a.li(Reg::T4, 5);
        a.divu(Reg::T3, Reg::T4);
        a.mflo(Reg::T5); // 8
        a.mfhi(Reg::T6); // 3
        a.brk(0);
        let m = run(a);
        assert_eq!(m.reg(Reg::T2) as i32, -42);
        assert_eq!(m.reg(Reg::T5), 8);
        assert_eq!(m.reg(Reg::T6), 3);
        assert!(m.counters().div_ops == 1);
    }

    #[test]
    fn load_use_stall_detected() {
        let mut a = Asm::new();
        let buf = a.ram_alloc("buf", 1);
        a.label("main");
        a.li(Reg::T0, buf as i64);
        a.li(Reg::T1, 5);
        a.sw(Reg::T1, 0, Reg::T0);
        a.lw(Reg::T2, 0, Reg::T0);
        a.addiu(Reg::T3, Reg::T2, 1); // load-use!
        a.brk(0);
        let m = run(a);
        assert_eq!(m.reg(Reg::T3), 6);
        assert_eq!(m.counters().load_use_stalls, 1);
    }

    #[test]
    fn maddu_accumulator_chain() {
        // (OvFlo,Hi,Lo) accumulates 3 products then SHA shifts out words.
        let mut a = Asm::new();
        a.label("main");
        a.li(Reg::T0, 0xffff_ffffu32 as i64);
        a.mtlo(Reg::ZERO);
        a.mthi(Reg::ZERO);
        a.maddu(Reg::T0, Reg::T0); // (2^32-1)^2
        a.maddu(Reg::T0, Reg::T0);
        a.maddu(Reg::T0, Reg::T0);
        a.mflo(Reg::T1);
        a.sha();
        a.mflo(Reg::T2);
        a.sha();
        a.mflo(Reg::T3);
        a.brk(0);
        let m = run(a);
        let total = 3u128 * 0xffff_ffffu128 * 0xffff_ffff;
        assert_eq!(m.reg(Reg::T1), total as u32);
        assert_eq!(m.reg(Reg::T2), (total >> 32) as u32);
        assert_eq!(m.reg(Reg::T3), (total >> 64) as u32);
    }

    #[test]
    fn m2addu_and_addau() {
        let mut a = Asm::new();
        a.label("main");
        a.li(Reg::T0, 3);
        a.li(Reg::T1, 5);
        a.mtlo(Reg::ZERO);
        a.mthi(Reg::ZERO);
        a.m2addu(Reg::T0, Reg::T1); // acc = 30
        a.li(Reg::T2, 2);
        a.li(Reg::T3, 7);
        a.addau(Reg::T2, Reg::T3); // acc += (2<<32) + 7
        a.mflo(Reg::T4);
        a.sha();
        a.mflo(Reg::T5);
        a.brk(0);
        let m = run(a);
        assert_eq!(m.reg(Reg::T4), 37);
        assert_eq!(m.reg(Reg::T5), 2);
    }

    #[test]
    fn carry_less_extensions() {
        let mut a = Asm::new();
        a.label("main");
        a.li(Reg::T0, 0b11);
        a.li(Reg::T1, 0b11);
        a.mulgf2(Reg::T0, Reg::T1); // (x+1)^2 = x^2+1 = 0b101
        a.mflo(Reg::T2);
        a.li(Reg::T3, 0b10);
        a.li(Reg::T4, 0b111);
        a.maddgf2(Reg::T3, Reg::T4); // acc ^= 0b1110
        a.mflo(Reg::T5);
        a.brk(0);
        let m = run(a);
        assert_eq!(m.reg(Reg::T2), 0b101);
        assert_eq!(m.reg(Reg::T5), 0b101 ^ 0b1110);
    }

    #[test]
    fn extension_requires_config() {
        let mut a = Asm::new();
        a.label("main");
        a.maddu(Reg::T0, Reg::T1);
        a.brk(0);
        let p = a.link("main").unwrap();
        for tier in [EngineTier::Fast, EngineTier::Reference] {
            let mut m = Machine::new(&p, MachineConfig::baseline());
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                m.run_with(ExecOptions::new(1000).with_tier(tier));
            }));
            assert!(result.is_err(), "baseline must reject extension instrs");
        }
    }

    #[test]
    fn branch_predictor_learns_loops() {
        // A hot loop: first iteration(s) mispredict, then the predictor
        // saturates and the loop back-edge is free.
        let mut a = Asm::new();
        a.label("main");
        a.li(Reg::T0, 100);
        a.label("loop");
        a.addiu(Reg::T0, Reg::T0, -1);
        a.bne(Reg::T0, Reg::ZERO, "loop");
        a.nop();
        a.brk(0);
        let m = run(a);
        let c = m.counters();
        assert_eq!(c.branches, 100);
        assert!(c.mispredicts <= 3, "{c:?}");
    }

    #[test]
    fn icache_reduces_rom_reads() {
        let mk = || {
            let mut a = Asm::new();
            a.label("main");
            a.li(Reg::T0, 200);
            a.label("loop");
            a.addiu(Reg::T0, Reg::T0, -1);
            a.bne(Reg::T0, Reg::ZERO, "loop");
            a.nop();
            a.brk(0);
            a
        };
        let base = run_cfg(mk(), MachineConfig::baseline());
        let cached = run_cfg(
            mk(),
            MachineConfig::isa_ext_with_cache(CacheConfig::real(1024, false)),
        );
        let base_rom = base.rom_stats();
        let cache_rom = cached.rom_stats();
        assert!(base_rom.reads > 600);
        // With the cache, word fetches go away; only a couple of line fills.
        assert_eq!(cache_rom.reads, 0);
        assert!(cache_rom.line_reads <= 4, "{cache_rom:?}");
        let cs = cached.icache_stats().unwrap();
        assert!(cs.miss_rate() < 0.01);
    }

    #[test]
    fn ram_access_counting() {
        let mut a = Asm::new();
        let buf = a.ram_alloc("buf", 4);
        a.label("main");
        a.li(Reg::T0, buf as i64);
        for i in 0..4 {
            a.sw(Reg::ZERO, (i * 4) as i16, Reg::T0);
        }
        for i in 0..4 {
            a.lw(Reg::T1, (i * 4) as i16, Reg::T0);
        }
        a.brk(0);
        let m = run(a);
        assert_eq!(m.ram_stats().writes, 4);
        assert_eq!(m.ram_stats().reads, 4);
    }

    #[test]
    fn cycle_limit_exit() {
        let mut a = Asm::new();
        a.label("main");
        a.label("spin");
        a.b("spin");
        a.nop();
        let p = a.link("main").unwrap();
        for tier in [EngineTier::Fast, EngineTier::Reference] {
            let mut m = Machine::new(&p, MachineConfig::baseline());
            assert_eq!(
                m.run_with(ExecOptions::new(1000).with_tier(tier)),
                RunExit::CycleLimit
            );
        }
    }

    /// A fuseable pair whose second member is also a branch target:
    /// fusion must never change reachability of the pair's members.
    #[test]
    fn jump_into_fused_pair_second_member() {
        let mut a = Asm::new();
        a.label("main");
        a.li(Reg::T0, 1);
        a.b("mid");
        a.nop();
        // This lw/addiu pair fuses; "mid" lands on the addiu.
        a.lw(Reg::T1, 0, Reg::ZERO); // skipped by the branch
        a.label("mid");
        a.addiu(Reg::T0, Reg::T0, 41);
        a.brk(0);
        let m = run(a);
        assert_eq!(m.reg(Reg::T0), 42);
    }

    /// A fuseable pair whose first member sits in a branch delay slot:
    /// only that member may execute before control transfers.
    #[test]
    fn fused_pair_first_member_in_delay_slot() {
        let mut a = Asm::new();
        a.label("main");
        a.li(Reg::T0, 0);
        a.b("out");
        a.addiu(Reg::T0, Reg::T0, 1); // delay slot; fuses with the next addiu
        a.addiu(Reg::T0, Reg::T0, 100); // must NOT execute
        a.label("out");
        a.brk(0);
        let m = run(a);
        assert_eq!(m.reg(Reg::T0), 1);
    }

    /// Sweeps the cycle limit across a fused-heavy program: the fast
    /// engine must stop at exactly the same instruction boundary as the
    /// reference for every budget (the fuse-guard contract).
    #[test]
    fn cycle_limit_boundary_matches_reference() {
        let mut a = Asm::new();
        let buf = a.ram_alloc("buf", 4);
        a.label("main");
        a.li(Reg::T0, buf as i64);
        a.li(Reg::T1, 8);
        a.label("loop");
        a.sw(Reg::T1, 0, Reg::T0);
        a.sw(Reg::T1, 4, Reg::T0);
        a.lw(Reg::T2, 0, Reg::T0);
        a.lw(Reg::T3, 4, Reg::T0);
        a.addu(Reg::T4, Reg::T2, Reg::T3);
        a.addiu(Reg::T1, Reg::T1, -1);
        a.bne(Reg::T1, Reg::ZERO, "loop");
        a.nop();
        a.brk(0);
        let p = a.link("main").unwrap();
        for max_cycles in 1..=80 {
            let mut fast = Machine::new(&p, MachineConfig::baseline());
            let ef = fast.run_with(ExecOptions::new(max_cycles).with_tier(EngineTier::Fast));
            let mut reference = Machine::new(&p, MachineConfig::baseline());
            let er =
                reference.run_with(ExecOptions::new(max_cycles).with_tier(EngineTier::Reference));
            assert_eq!(ef, er, "exit diverges at budget {max_cycles}");
            assert_tiers_equal(&fast, &reference);
        }
    }

    /// `Auto` picks the fast engine on a bare machine and the reference
    /// engine on a profiled one; forcing Fast on a profiled machine is
    /// a programming error.
    #[test]
    fn tier_selection_rules() {
        let mut a = Asm::new();
        a.label("main");
        a.li(Reg::T0, 7);
        a.brk(0);
        let p = a.link("main").unwrap();

        let mut bare = Machine::new(&p, MachineConfig::baseline());
        bare.run_with(ExecOptions::new(1000));
        assert!(bare.xops.is_some(), "Auto on a bare machine runs fast");

        let mut profiled = Machine::builder(&p, MachineConfig::baseline())
            .instrumentation(Instrumentation::profile(&p.text_symbols()))
            .build();
        profiled.run_with(ExecOptions::new(1000));
        assert!(
            profiled.xops.is_none(),
            "Auto on a profiled machine runs reference"
        );
        assert!(profiled.take_profile().is_some());

        let mut profiled = Machine::builder(&p, MachineConfig::baseline())
            .instrumentation(Instrumentation::profile(&p.text_symbols()))
            .build();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            profiled.run_with(ExecOptions::new(1000).with_tier(EngineTier::Fast));
        }));
        assert!(result.is_err(), "forcing Fast on a profiled machine panics");

        // A sampled profiler does NOT force the reference engine: Auto
        // still translates and runs fast, and the profile is present.
        let mut sampled = Machine::builder(&p, MachineConfig::baseline())
            .instrumentation(Instrumentation::sampled_profile(&p.text_symbols(), 64))
            .build();
        sampled.run_with(ExecOptions::new(1000));
        assert!(
            sampled.xops.is_some(),
            "Auto on a sampled machine runs fast"
        );
        assert!(sampled.take_profile().is_some());
    }

    /// Builds a multi-routine program whose inner loops are long enough
    /// that a small stride takes many samples.
    fn sampled_fixture() -> ule_isa::asm::Program {
        let mut a = Asm::new();
        let buf = a.ram_alloc("buf", 4);
        a.label("main");
        a.li(Reg::T0, buf as i64);
        a.jal("writer");
        a.nop();
        a.jal("reader");
        a.nop();
        a.brk(0);
        a.label("writer");
        a.li(Reg::T1, 40);
        a.label("wloop");
        a.sw(Reg::T1, 0, Reg::T0);
        a.sw(Reg::T1, 4, Reg::T0);
        a.addiu(Reg::T1, Reg::T1, -1);
        a.bne(Reg::T1, Reg::ZERO, "wloop");
        a.nop();
        a.jr(Reg::RA);
        a.nop();
        a.label("reader");
        a.li(Reg::T1, 25);
        a.label("rloop");
        a.lw(Reg::T2, 0, Reg::T0);
        a.lw(Reg::T3, 4, Reg::T0);
        a.addu(Reg::T4, Reg::T2, Reg::T3);
        a.addiu(Reg::T1, Reg::T1, -1);
        a.bne(Reg::T1, Reg::ZERO, "rloop");
        a.nop();
        a.jr(Reg::RA);
        a.nop();
        a.link("main").unwrap()
    }

    /// Sampled profiling is purely observational: the run's counters,
    /// architectural state, and memory statistics are bit-identical to
    /// an uninstrumented fast run — and the sampled bucket totals equal
    /// the headline counters exactly, on both tiers.
    #[test]
    fn sampled_profile_is_observational_and_exact() {
        let p = sampled_fixture();
        let mut plain = Machine::new(&p, MachineConfig::baseline());
        let exit_plain = plain.run_with(ExecOptions::new(1_000_000).with_tier(EngineTier::Fast));

        for tier in [EngineTier::Fast, EngineTier::Auto, EngineTier::Reference] {
            let mut m = Machine::builder(&p, MachineConfig::baseline())
                .instrumentation(Instrumentation::sampled_profile(&p.text_symbols(), 17))
                .build();
            let exit = m.run_with(ExecOptions::new(1_000_000).with_tier(tier));
            assert_eq!(exit, exit_plain, "{tier:?}: exit diverges");
            assert_tiers_equal(&m, &plain);
            let counters = m.counters();
            let prof = m.take_profile().expect("sampled profile present");
            assert_eq!(prof.total_cycles(), counters.cycles, "{tier:?}");
            assert_eq!(prof.total_instructions(), counters.instructions, "{tier:?}");
            assert!(prof.calls.nodes.is_empty(), "sampled: no call graph");
            // With a stride much shorter than the loops, both hot
            // loop routines must show up.
            assert!(prof.find("wloop").unwrap().cycles > 0, "{tier:?}");
            assert!(prof.find("rloop").unwrap().cycles > 0, "{tier:?}");
        }
    }

    /// Sampled-vs-exact agreement on the fixture: with a short stride
    /// the two hot loops' cycle shares land near the reference
    /// profiler's, and activity telescopes to the same raw totals.
    #[test]
    fn sampled_profile_tracks_reference_attribution() {
        let p = sampled_fixture();
        let mut reference = Machine::builder(&p, MachineConfig::baseline())
            .instrumentation(Instrumentation::profile(&p.text_symbols()))
            .build();
        reference.run_with(ExecOptions::new(1_000_000));
        let exact = reference.take_profile().unwrap();

        let mut m = Machine::builder(&p, MachineConfig::baseline())
            .instrumentation(Instrumentation::sampled_profile(&p.text_symbols(), 17))
            .build();
        m.run_with(ExecOptions::new(1_000_000));
        let sampled = m.take_profile().unwrap();

        // Same bucket table, same totals.
        assert_eq!(exact.routines.len(), sampled.routines.len());
        assert_eq!(exact.total_cycles(), sampled.total_cycles());
        for name in ["wloop", "rloop"] {
            let e = exact.find(name).unwrap().cycles as f64;
            let s = sampled.find(name).unwrap().cycles as f64;
            let rel = (e - s).abs() / e;
            assert!(
                rel < 0.25,
                "{name}: sampled {s} vs exact {e} ({rel:.2} relative)"
            );
        }
        let sum = |p: &RoutineProfile| {
            let mut t = ActivitySlice::default();
            for r in &p.routines {
                t.accumulate(&r.activity);
            }
            t
        };
        assert_eq!(sum(&exact), sum(&sampled), "activity totals telescope");
    }
}
