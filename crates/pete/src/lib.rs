//! "Pete" — the study's ultra-low-power embedded RISC processor, as a
//! cycle-level simulator.
//!
//! Pete is a classic in-order five-stage pipeline (Fig 2.4, §5.1):
//! MIPS-II subset, no MMU, no cache in the baseline, a **statically
//! scheduled multi-cycle Karatsuba multiplier** hanging off the Hi/Lo
//! registers (§5.1.1–5.1.2), a branch predictor with the architectural
//! MIPS delay slot, and forwarding everywhere except the load-use case.
//!
//! The paper simulated synthesizable Verilog with Verilator (Ch. 6); this
//! crate substitutes a cycle-level timing model with explicit hazard rules
//! (see `DESIGN.md` §6 for the exact contracts), producing the same
//! quantities the RTL runs produced: cycle counts and event counts
//! (instruction fetches, ROM/RAM accesses, stall cycles, multiplier
//! activity), which the energy model turns into µJ.
//!
//! Sub-modules:
//!
//! * [`mem`] — program ROM and data RAM with access accounting;
//! * [`icache`] — the parameterizable direct-mapped instruction cache and
//!   single-entry stream-buffer prefetcher of §5.3;
//! * [`cpu`] — the pipeline timing model;
//! * [`cop`] — the coprocessor-2 interface the Monte and Billie
//!   accelerator models plug into (§5.4.1, §5.5.1).
//!
//! Two execution engines share the timing model (see `DESIGN.md` §6a):
//! the instrumented **reference** interpreter and a **fast** engine
//! built on a private translation cache (`xlate`) with superinstruction
//! fusion. [`cpu::ExecOptions`] selects the tier; cycles, counters, and
//! memory statistics are bit-identical between the two.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cop;
pub mod cpu;
pub mod icache;
pub mod mem;
pub mod profile;
mod xlate;

pub use cop::{CopStats, Coprocessor};
pub use cpu::{
    Counters, EngineTier, ExecOptions, Instrumentation, Machine, MachineBuilder, MachineConfig,
    RunExit,
};
pub use icache::{CacheConfig, CacheStats};
pub use profile::{
    ActivitySlice, CallGraph, CallNode, ControlEvent, PcProfiler, RoutineCycles, RoutineProfile,
};
