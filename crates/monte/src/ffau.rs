//! The Finite-Field Arithmetic Unit (§5.4.2).
//!
//! The FFAU is built around a 2-stage pipelined multiply-add core
//! (throughput 1 op/cycle, latency `p = 3` including operand/result
//! registering — Table 5.4), dual-port AB and T scratchpad memories
//! organized so three operands are read and one result written every
//! cycle, index-register address generation (Table 5.5), and a 64-entry
//! microcode store with hardware loop support (Fig 5.10).
//!
//! The unit is **parameterizable in datapath width** (8/16/32/64 bits) —
//! the §7.9 design-space study — and in the element width `k`, which is
//! a *run-time* control value (that is what keeps Monte reconfigurable).
//!
//! Cycle cost of one CIOS Montgomery multiplication (eq. 5.2):
//!
//! ```text
//! cc = 2k^2 + 6k + (k+1)p + 22
//! ```
//!
//! decomposed as: two k-cycle inner loops per outer iteration, plus a
//! p-cycle data-dependency stall per outer iteration (the `m = t[0]*n0'`
//! computation must drain before the reduction row starts), plus 6 cycles
//! of per-iteration loop/index overhead, plus `p + 22` of setup, final
//! correction, and pipeline drain. The decomposition is asserted against
//! the closed form in the tests.

// Kernel loops index limb arrays the way the RTL datapath does;
// iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]

/// Activity counters for the FFAU, consumed by the energy model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FfauStats {
    /// Cycles the arithmetic core was computing.
    pub busy_cycles: u64,
    /// Scratchpad (AB/T) word accesses (3 reads + 1 write per active
    /// cycle of the inner loops).
    pub scratch_accesses: u64,
    /// Microcode store reads (one per sequenced cycle).
    pub ucode_reads: u64,
    /// Operations executed (multiplications + additions + subtractions).
    pub operations: u64,
}

/// The FFAU model: functional CIOS/modular-add/sub over a configurable
/// limb width, with the eq. 5.2 timing contract.
#[derive(Clone, Debug)]
pub struct Ffau {
    /// Datapath width in bits (8, 16, 32, or 64).
    width: usize,
    /// Arithmetic-core latency `p` (pipeline depth + operand registering).
    pipeline_latency: u64,
    /// Operand buffer A (w-bit limbs, little-endian).
    a: Vec<u64>,
    /// Operand buffer B.
    b: Vec<u64>,
    /// Modulus buffer N.
    n: Vec<u64>,
    /// Result buffer.
    result: Vec<u64>,
    /// The CIOS quotient constant `n0' = -n^{-1} mod 2^w` (control reg).
    n0_prime: u64,
    /// Special-form fold extension (control regs 3–5): the constant
    /// multiplier `c`, the fold multiplier `δ`, and the limb offset of
    /// the second injection point (0 = single-offset prime).
    fold_c: u64,
    fold_delta: u64,
    fold_offset: u64,
    stats: FfauStats,
}

impl Ffau {
    /// Creates an FFAU with the given datapath width.
    ///
    /// # Panics
    ///
    /// Panics unless `width` is 8, 16, 32, or 64.
    pub fn new(width: usize) -> Self {
        assert!(
            matches!(width, 8 | 16 | 32 | 64),
            "unsupported datapath width {width}"
        );
        Ffau {
            width,
            pipeline_latency: 3,
            a: Vec::new(),
            b: Vec::new(),
            n: Vec::new(),
            result: Vec::new(),
            n0_prime: 0,
            fold_c: 0,
            fold_delta: 0,
            fold_offset: 0,
            stats: FfauStats::default(),
        }
    }

    /// Datapath width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Counters.
    pub fn stats(&self) -> FfauStats {
        self.stats
    }

    /// Sets the quotient constant (preloaded via `ctc2`, §5.4.2.1).
    pub fn set_n0_prime(&mut self, n0: u64) {
        self.n0_prime = n0 & self.mask();
    }

    /// Sets the special-form constant multiplier `c` (control reg 3).
    pub fn set_fold_c(&mut self, c: u64) {
        self.fold_c = c;
    }

    /// Sets the special-form fold multiplier `δ` (control reg 4).
    pub fn set_fold_delta(&mut self, delta: u64) {
        self.fold_delta = delta;
    }

    /// Sets the limb offset of the second fold injection point
    /// (control reg 5; 0 for a single-offset prime like 2^255−19).
    pub fn set_fold_offset(&mut self, offset: u64) {
        self.fold_offset = offset;
    }

    /// Loads operand A (w-bit limbs).
    pub fn load_a(&mut self, limbs: &[u64]) {
        self.a = limbs.to_vec();
    }

    /// Loads operand B.
    pub fn load_b(&mut self, limbs: &[u64]) {
        self.b = limbs.to_vec();
    }

    /// Loads the modulus N.
    pub fn load_n(&mut self, limbs: &[u64]) {
        self.n = limbs.to_vec();
    }

    /// The result buffer after an operation.
    pub fn result(&self) -> &[u64] {
        &self.result
    }

    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Closed-form CIOS cycle count (eq. 5.2) for `k` limbs at pipeline
    /// latency `p`.
    pub fn montmul_cycles(k: u64, p: u64) -> u64 {
        2 * k * k + 6 * k + (k + 1) * p + 22
    }

    /// Executes one CIOS Montgomery multiplication over the loaded
    /// operands: `result = A * B * R^{-1} mod N`. Returns the cycle
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths disagree or `n0'` is inconsistent
    /// with N (a programming error in the command stream).
    pub fn montmul(&mut self) -> u64 {
        let k = self.n.len();
        assert!(k > 0, "modulus not loaded");
        assert_eq!(self.a.len(), k, "operand A width mismatch");
        assert_eq!(self.b.len(), k, "operand B width mismatch");
        let w = self.width;
        let mask = self.mask();
        debug_assert_eq!(
            self.n[0].wrapping_mul(self.n0_prime) & mask,
            mask, // -1 mod 2^w
            "n0' inconsistent with N"
        );
        // Functional CIOS on w-bit limbs (Algorithm 5).
        let mut t = vec![0u128; k + 2];
        for i in 0..k {
            let bi = self.b[i] as u128;
            let mut c: u128 = 0;
            for j in 0..k {
                let cs = t[j] + (self.a[j] as u128) * bi + c;
                t[j] = cs & mask as u128;
                c = cs >> w;
            }
            let cs = t[k] + c;
            t[k] = cs & mask as u128;
            t[k + 1] = cs >> w;
            let m = (t[0] as u64).wrapping_mul(self.n0_prime) & mask;
            let cs = t[0] + (m as u128) * (self.n[0] as u128);
            let mut c = cs >> w;
            for j in 1..k {
                let cs = t[j] + (m as u128) * (self.n[j] as u128) + c;
                t[j - 1] = cs & mask as u128;
                c = cs >> w;
            }
            let cs = t[k] + c;
            t[k - 1] = cs & mask as u128;
            t[k] = (t[k + 1] + (cs >> w)) & mask as u128;
            t[k + 1] = 0;
        }
        // Final correction.
        let ge = t[k] != 0 || {
            let mut ge = true; // equal counts as >=
            for j in (0..k).rev() {
                if t[j] > self.n[j] as u128 {
                    break;
                }
                if t[j] < self.n[j] as u128 {
                    ge = false;
                    break;
                }
            }
            ge
        };
        if ge {
            let mut borrow: i128 = 0;
            for j in 0..k {
                let d = t[j] as i128 - self.n[j] as i128 - borrow;
                t[j] = (d & mask as i128) as u128;
                borrow = (d < 0) as i128;
            }
        }
        self.result = t[..k].iter().map(|&x| x as u64).collect();
        // Timing per eq. 5.2, decomposed per the module docs.
        let kk = k as u64;
        let p = self.pipeline_latency;
        let per_outer = 2 * kk + p + 6;
        let fixed = p + 22;
        let cycles = kk * per_outer + fixed;
        debug_assert_eq!(cycles, Self::montmul_cycles(kk, p));
        self.stats.busy_cycles += cycles;
        self.stats.ucode_reads += cycles;
        // 3 operand reads + 1 result write per inner-loop cycle.
        self.stats.scratch_accesses += 4 * (2 * kk * kk);
        self.stats.operations += 1;
        cycles
    }

    /// Closed-form cycle count of the special-form constant multiply
    /// for `k` limbs at pipeline latency `p`: one multiply pass, two
    /// fold rounds (each one carry-propagation pass per injection
    /// point), and the two-step final correction.
    pub fn cmul_cycles(k: u64, p: u64, second_offset: u64) -> u64 {
        let single = 3 * k + 3 * p + 44;
        if second_offset == 0 {
            single
        } else {
            single + 2 * (k - second_offset + p + 2)
        }
    }

    /// Executes one special-form constant multiplication over operand A:
    /// `result = A * c mod N`, using the fold congruence configured via
    /// [`Ffau::set_fold_c`] / [`Ffau::set_fold_delta`] /
    /// [`Ffau::set_fold_offset`] instead of a CIOS pass — the microcode
    /// extension for the X25519/X448 primes. Runs the actual
    /// [`crate::ucode::assemble_cmul_fold`] microprogram, so the model
    /// and the microcode cannot drift. Returns the cycle count
    /// (`O(k)` versus CIOS's `O(k²)`).
    ///
    /// # Panics
    ///
    /// Panics if the modulus or fold constants are not loaded, or on a
    /// datapath narrower than 32 bits (the `a24` constants need 17
    /// bits, and the overflow word must fit one limb).
    pub fn cmul(&mut self) -> u64 {
        let k = self.n.len();
        assert!(k > 0, "modulus not loaded");
        assert_eq!(self.a.len(), k, "operand A width mismatch");
        assert!(self.width >= 32, "fold constant exceeds the datapath word");
        assert!(self.fold_c != 0, "fold constants not loaded");
        let mut eng = crate::ucode::MicroEngine::new(
            self.width,
            crate::ucode::assemble_cmul_fold(self.fold_offset != 0),
        );
        eng.set_const(0, k as u64);
        eng.set_const(2, self.fold_c);
        eng.set_const(3, self.fold_delta);
        eng.set_const(4, self.fold_offset);
        let b = self.a.clone(); // operand B is unused by the program
        let (result, cycles) = eng.run(&self.a, &b, &self.n, 0);
        self.result = result;
        debug_assert_eq!(
            cycles,
            Self::cmul_cycles(k as u64, self.pipeline_latency, self.fold_offset)
        );
        self.stats.busy_cycles += cycles;
        self.stats.ucode_reads += cycles;
        // One multiply pass + two propagation passes per injection.
        let rows = if self.fold_offset == 0 {
            3 * k as u64
        } else {
            3 * k as u64 + 2 * (k as u64 - self.fold_offset)
        };
        self.stats.scratch_accesses += 4 * rows;
        self.stats.operations += 1;
        cycles
    }

    /// Modular addition `result = (A + B) mod N`; returns the cycle
    /// count (single pipelined pass plus drain and conditional
    /// subtraction).
    pub fn modadd(&mut self) -> u64 {
        self.modaddsub(false)
    }

    /// Modular subtraction `result = (A - B) mod N`.
    pub fn modsub(&mut self) -> u64 {
        self.modaddsub(true)
    }

    fn modaddsub(&mut self, sub: bool) -> u64 {
        let k = self.n.len();
        assert!(k > 0, "modulus not loaded");
        assert_eq!(self.a.len(), k);
        assert_eq!(self.b.len(), k);
        let w = self.width;
        let mask = self.mask() as u128;
        // value = a +/- b, then conditional +/- n.
        let mut out = vec![0u128; k];
        if sub {
            let mut borrow: i128 = 0;
            for j in 0..k {
                let d = self.a[j] as i128 - self.b[j] as i128 - borrow;
                out[j] = (d & mask as i128) as u128;
                borrow = (d < 0) as i128;
            }
            if borrow != 0 {
                let mut carry: u128 = 0;
                for j in 0..k {
                    let s = out[j] + self.n[j] as u128 + carry;
                    out[j] = s & mask;
                    carry = s >> w;
                }
            }
        } else {
            let mut carry: u128 = 0;
            for j in 0..k {
                let s = self.a[j] as u128 + self.b[j] as u128 + carry;
                out[j] = s & mask;
                carry = s >> w;
            }
            let mut ge = carry != 0;
            if !ge {
                ge = true;
                for j in (0..k).rev() {
                    if out[j] > self.n[j] as u128 {
                        break;
                    }
                    if out[j] < self.n[j] as u128 {
                        ge = false;
                        break;
                    }
                }
            }
            if ge {
                let mut borrow: i128 = 0;
                for j in 0..k {
                    let d = out[j] as i128 - self.n[j] as i128 - borrow;
                    out[j] = (d & mask as i128) as u128;
                    borrow = (d < 0) as i128;
                }
            }
        }
        self.result = out.iter().map(|&x| x as u64).collect();
        // Two pipelined passes (op, conditional correction) plus drain.
        let cycles = 2 * k as u64 + self.pipeline_latency + 6;
        self.stats.busy_cycles += cycles;
        self.stats.ucode_reads += cycles;
        self.stats.scratch_accesses += 4 * k as u64;
        self.stats.operations += 1;
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_mpmath::mont::Montgomery;
    use ule_mpmath::mp::Mp;
    use ule_mpmath::nist::NistPrime;

    /// Repack 32-bit limbs as w-bit FFAU limbs.
    fn repack(limbs32: &[u32], bits: usize, w: usize) -> Vec<u64> {
        let k = bits.div_ceil(w);
        let mut out = vec![0u64; k];
        for (i, limb) in out.iter_mut().enumerate() {
            let mut v = 0u64;
            for b in 0..w {
                let bit = i * w + b;
                let word = bit / 32;
                if word < limbs32.len() && (limbs32[word] >> (bit % 32)) & 1 == 1 {
                    v |= 1 << b;
                }
            }
            *limb = v;
        }
        out
    }

    fn n0_prime_w(n0: u64, w: usize) -> u64 {
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        inv.wrapping_neg() & mask
    }

    #[test]
    fn eq_5_2_closed_form() {
        assert_eq!(Ffau::montmul_cycles(6, 3), 2 * 36 + 36 + 7 * 3 + 22);
        assert_eq!(Ffau::montmul_cycles(8, 3), 2 * 64 + 48 + 9 * 3 + 22);
    }

    #[test]
    fn montmul_matches_host_at_every_width() {
        let p = NistPrime::P192.modulus();
        let host = Montgomery::new(&p);
        let a = p.sub(&Mp::from_u64(123_456_789));
        let _b = p.sub(&Mp::from_u64(987));
        // Host reference result in the Montgomery domain w.r.t. R32 = 2^(32*6).
        // For other widths R differs, so verify algebraically instead:
        // from_mont(result) must equal a*b*R^{-1}... simplest invariant:
        // montmul(a, R^2 mod p) == a * R mod p for the width's own R.
        for w in [8usize, 16, 32, 64] {
            let k = 192usize.div_ceil(w);
            let r = Mp::one().shl(w * k);
            let r2 = r.mul(&r).rem(&p);
            let mut f = Ffau::new(w);
            f.load_n(&repack(&p.to_limbs(6), 192, w));
            f.set_n0_prime(n0_prime_w(repack(&p.to_limbs(6), 192, w)[0], w));
            f.load_a(&repack(&a.to_limbs(6), 192, w));
            f.load_b(&repack(&r2.to_limbs(6), 192, w));
            let cycles = f.montmul();
            assert_eq!(cycles, Ffau::montmul_cycles(k as u64, 3), "width {w}");
            // result should be a * R mod p
            let expect = a.mul(&r).rem(&p);
            let expect_limbs = repack(&expect.to_limbs(12), w * k, w);
            assert_eq!(f.result(), &expect_limbs[..], "width {w}");
        }
        let _ = host;
    }

    #[test]
    fn modadd_modsub_match_host() {
        let p = NistPrime::P256.modulus();
        let a = p.sub(&Mp::from_u64(5));
        let b = p.sub(&Mp::from_u64(12345));
        let mut f = Ffau::new(32);
        f.load_n(&repack(&p.to_limbs(8), 256, 32));
        f.set_n0_prime(n0_prime_w(p.to_limbs(8)[0] as u64, 32));
        f.load_a(&repack(&a.to_limbs(8), 256, 32));
        f.load_b(&repack(&b.to_limbs(8), 256, 32));
        f.modadd();
        let expect = a.add(&b).rem(&p);
        assert_eq!(f.result(), &repack(&expect.to_limbs(8), 256, 32)[..]);
        f.modsub();
        let expect = {
            // a - b mod p (a < b here is possible; handle sign)
            if a >= b {
                a.sub(&b)
            } else {
                a.add(&p).sub(&b)
            }
        };
        assert_eq!(f.result(), &repack(&expect.to_limbs(8), 256, 32)[..]);
    }

    #[test]
    fn stats_accumulate() {
        let p = NistPrime::P192.modulus();
        let mut f = Ffau::new(32);
        f.load_n(&repack(&p.to_limbs(6), 192, 32));
        f.set_n0_prime(n0_prime_w(p.to_limbs(6)[0] as u64, 32));
        f.load_a(&repack(&Mp::from_u64(7).to_limbs(6), 192, 32));
        f.load_b(&repack(&Mp::from_u64(9).to_limbs(6), 192, 32));
        let c1 = f.montmul();
        let c2 = f.modadd();
        let s = f.stats();
        assert_eq!(s.busy_cycles, c1 + c2);
        assert_eq!(s.operations, 2);
        assert!(s.scratch_accesses > 0);
    }

    #[test]
    #[should_panic(expected = "unsupported datapath width")]
    fn rejects_odd_width() {
        let _ = Ffau::new(24);
    }
}
