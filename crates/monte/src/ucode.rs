//! The FFAU's microcoded control unit (Fig 5.10), as an executable
//! micro-ISA.
//!
//! The control unit holds a 64-entry microcode store, two hardware loop
//! index registers with the control codes of Table 5.5 (hold / load from
//! the constant bus / clear / increment), an 8-entry constant RAM
//! (element width `k`, the quotient constant `n0'`, loop bounds), and
//! branch hardware. One micro-instruction issues per cycle; the
//! *row* operations keep the arithmetic core at its one-operation-per-
//! cycle throughput by re-issuing themselves through the hardware loop
//! (`Seq::LoopTo`) — the "near 100 % utilization of the arithmetic core"
//! the paper designs for (§5.4.2.1).
//!
//! The canonical microprogram is CIOS Montgomery multiplication
//! (Algorithm 5) plus modular add/subtract; [`assemble_cios`] emits it
//! and the tests pin its cycle count to the published closed form,
//! eq. 5.2 — the `(k+1)·p` term appears as the explicit
//! [`Action::Stall`] on the `m = t[0]·n0'` data dependency the paper
//! calls out, plus the final pipeline drain.

// Kernel loops index limb arrays the way the RTL datapath does;
// iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]

/// Control codes for the loop index registers (Table 5.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IdxCtl {
    /// `00` — no change.
    #[default]
    Hold,
    /// `01` — load from the constant bus (a constant-RAM slot).
    LoadConst(u8),
    /// `10` — clear.
    Clear,
    /// `11` — increment.
    Inc,
}

/// The two hardware loop counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopIdx {
    /// Outer-loop counter.
    I,
    /// Inner-loop counter.
    J,
}

/// Sequencer field of a micro-instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Seq {
    /// Fall through to the next entry.
    #[default]
    Next,
    /// Re-issue at `target` while the index is below the bound held in
    /// the constant-RAM slot (the hardware loop).
    LoopTo {
        /// Branch target (microcode entry).
        target: u8,
        /// Which counter is compared.
        idx: LoopIdx,
        /// Constant-RAM slot holding the bound.
        bound: u8,
    },
    /// Operation complete; raise done.
    End,
}

/// What the datapath does this cycle — row operations are the
/// Table 5.4 core capabilities bound to the CIOS/add/sub dataflows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Action {
    /// Idle cycle (index/setup only).
    #[default]
    Nop,
    /// Pipeline-dependency stall of `p` cycles (the arithmetic core must
    /// drain before a dependent value is available, §5.4.2.2).
    Stall,
    /// CIOS first inner loop row: `(C,S) = t[j] + a[j]*b[i] + C`.
    Row1,
    /// Fold the running carry into `t[k]`, `t[k+1]` (two words).
    CarryFold,
    /// `temp = t[0] * n0'` into the temporary result register (the
    /// register that breaks the T-memory structural hazard, §5.4.2.1).
    CalcM,
    /// CIOS second inner loop row: `(C,S) = t[j] + m*n[j] + C`,
    /// shifting the result down one word.
    Row2,
    /// Second-loop tail: `t[k-1]`, `t[k]` updates.
    Tail,
    /// Final correction (conditional subtraction of N), modeled at the
    /// fixed cost the closed form assigns it.
    Correct,
    /// Modular add/sub row: `out[j] = a[j] ± b[j]` with carry/borrow.
    AddRow {
        /// Subtract instead of add.
        sub: bool,
    },
    /// Conditional correction for add/sub.
    CondCorrect {
        /// The preceding operation was a subtraction.
        sub: bool,
    },
    /// Constant-multiply row: `(C,S) = a[j] * c + C`, where `c` is the
    /// small constant in constant-RAM slot 2 (the X25519/X448 ladder
    /// coefficient `a24` — the special-form extension).
    CMulRow,
    /// Latch the overflow word: `m = t[k]; t[k] = 0` (the quantity the
    /// special-form congruence folds back into the low words).
    LatchTop,
    /// `C = m * δ`, with the fold multiplier `δ` in constant-RAM slot 3
    /// (`2^(w·k) mod p` for 2^255−19 is 38; for 2^448−2^224−1 the fold
    /// is two unit injections, so `δ = 1`).
    InjectC,
    /// Carry-propagation row: `(C,S) = t[j] + C`.
    CarryAddRow,
}

/// One microcode word.
#[derive(Clone, Copy, Debug, Default)]
pub struct Micro {
    /// Datapath action.
    pub action: Action,
    /// Sequencer field.
    pub seq: Seq,
    /// Control for the outer counter.
    pub idx_i: IdxCtl,
    /// Control for the inner counter.
    pub idx_j: IdxCtl,
}

/// Capacity of the microcode store (§5.4.2.1: "the microcode ROM is 64
/// entries deep, which was more than enough").
pub const UCODE_ENTRIES: usize = 64;

/// Assembles the CIOS Montgomery-multiplication microprogram for element
/// width `k` (the bound lives in constant-RAM slot 0 — reloading that
/// slot is all it takes to change key size at run time, the point of
/// Monte's reconfigurability).
pub fn assemble_cios() -> Vec<Micro> {
    // Entry layout (cycle accounting engineered to eq. 5.2 exactly):
    // 0..=3  prologue: clear i, load bound, operand-buffer swap, clear
    //        pipe                                     (4 cycles)
    // 4      outer body: clear j                      (1 / iteration)
    // 5      Row1 hardware loop                       (k / iteration)
    // 6,7    CarryFold into t[k], t[k+1]              (2 / iteration)
    // 8      CalcM                                    (1 / iteration)
    // 9      Stall on the m data dependency,
    //        clearing j for the reduction row         (p / iteration)
    // 10     Row2 hardware loop                       (k / iteration)
    // 11,12  Tail words; 12 closes the outer loop     (2 / iteration)
    // 13     Stall: final pipeline drain              (p)
    // 14     Correct + End (fixed-cost correction)    (18)
    // Total: k*(2k + 6 + p) + 22 + p = eq. 5.2.
    vec![
        Micro {
            action: Action::Nop,
            idx_i: IdxCtl::Clear,
            ..Default::default()
        },
        Micro {
            action: Action::Nop,
            idx_j: IdxCtl::LoadConst(0),
            ..Default::default()
        },
        Micro {
            action: Action::Nop,
            ..Default::default()
        },
        Micro {
            action: Action::Nop,
            ..Default::default()
        },
        Micro {
            action: Action::Nop,
            idx_j: IdxCtl::Clear,
            ..Default::default()
        },
        Micro {
            action: Action::Row1,
            idx_j: IdxCtl::Inc,
            seq: Seq::LoopTo {
                target: 5,
                idx: LoopIdx::J,
                bound: 0,
            },
            ..Default::default()
        },
        Micro {
            action: Action::CarryFold,
            ..Default::default()
        },
        Micro {
            action: Action::CarryFold,
            ..Default::default()
        },
        Micro {
            action: Action::CalcM,
            ..Default::default()
        },
        Micro {
            action: Action::Stall,
            idx_j: IdxCtl::Clear,
            ..Default::default()
        },
        Micro {
            action: Action::Row2,
            idx_j: IdxCtl::Inc,
            seq: Seq::LoopTo {
                target: 10,
                idx: LoopIdx::J,
                bound: 0,
            },
            ..Default::default()
        },
        Micro {
            action: Action::Tail,
            ..Default::default()
        },
        Micro {
            action: Action::Tail,
            idx_i: IdxCtl::Inc,
            seq: Seq::LoopTo {
                target: 4,
                idx: LoopIdx::I,
                bound: 0,
            },
            ..Default::default()
        },
        Micro {
            action: Action::Stall,
            ..Default::default()
        },
        Micro {
            action: Action::Correct,
            seq: Seq::End,
            ..Default::default()
        },
    ]
}

/// Assembles the modular add/sub microprogram.
pub fn assemble_addsub(sub: bool) -> Vec<Micro> {
    vec![
        Micro {
            action: Action::Nop,
            idx_j: IdxCtl::Clear,
            ..Default::default()
        },
        Micro {
            action: Action::AddRow { sub },
            idx_j: IdxCtl::Inc,
            seq: Seq::LoopTo {
                target: 1,
                idx: LoopIdx::J,
                bound: 0,
            },
            ..Default::default()
        },
        Micro {
            action: Action::Stall,
            ..Default::default()
        },
        Micro {
            action: Action::CondCorrect { sub },
            seq: Seq::End,
            ..Default::default()
        },
    ]
}

/// Assembles the special-form constant-multiply microprogram for the
/// X25519/X448 primes: `result = A * c mod p`, reducing with the fold
/// congruence of the prime instead of a full CIOS pass.
///
/// The constant RAM supplies everything prime-specific — slot 2 holds
/// the multiplier `c` (the ladder coefficient `a24`), slot 3 the fold
/// multiplier `δ` (38 for 2^255−19, 1 for 2^448−2^224−1), and, when
/// `dual_offset` is set, slot 4 the limb offset of the second injection
/// point (2^448 ≡ 2^224 + 1, so the overflow word is added at limb
/// `224/w` as well as limb 0). As with CIOS, reloading constant RAM is
/// all it takes to retarget the microcode.
///
/// Structure: one constant-multiply pass (`a·c` is at most `c·2^(w·k)`,
/// so the overflow is a single word), then **two** fold rounds — the
/// first reduces the overflow of the multiply, the second the possible
/// carry-out of the first — then the standard two-step conditional
/// correction (the folded value is below `2^(w·k) + 2^224 ≤ 2p + δ`,
/// never more than two subtractions of `p`).
pub fn assemble_cmul_fold(dual_offset: bool) -> Vec<Micro> {
    let mut prog = vec![
        Micro {
            action: Action::Nop,
            idx_j: IdxCtl::Clear,
            ..Default::default()
        },
        Micro {
            action: Action::CMulRow,
            idx_j: IdxCtl::Inc,
            seq: Seq::LoopTo {
                target: 1,
                idx: LoopIdx::J,
                bound: 0,
            },
            ..Default::default()
        },
        Micro {
            action: Action::CarryFold,
            ..Default::default()
        },
    ];
    for _round in 0..2 {
        prog.push(Micro {
            action: Action::LatchTop,
            ..Default::default()
        });
        // Injection at limb 0 (always), then optionally at the high
        // offset: clear / load the index, stall on the `m·δ` product,
        // propagate.
        let offsets: &[IdxCtl] = if dual_offset {
            &[IdxCtl::Clear, IdxCtl::LoadConst(4)]
        } else {
            &[IdxCtl::Clear]
        };
        for &idx_j in offsets {
            prog.push(Micro {
                action: Action::InjectC,
                idx_j,
                ..Default::default()
            });
            prog.push(Micro {
                action: Action::Stall,
                ..Default::default()
            });
            let target = prog.len() as u8;
            prog.push(Micro {
                action: Action::CarryAddRow,
                idx_j: IdxCtl::Inc,
                seq: Seq::LoopTo {
                    target,
                    idx: LoopIdx::J,
                    bound: 0,
                },
                ..Default::default()
            });
            prog.push(Micro {
                action: Action::CarryFold,
                ..Default::default()
            });
        }
    }
    prog.push(Micro {
        action: Action::Stall,
        ..Default::default()
    });
    prog.push(Micro {
        action: Action::Correct,
        ..Default::default()
    });
    prog.push(Micro {
        action: Action::Correct,
        seq: Seq::End,
        ..Default::default()
    });
    prog
}

/// The microcoded control unit driving the FFAU datapath.
#[derive(Clone, Debug)]
pub struct MicroEngine {
    /// Datapath width in bits.
    width: usize,
    /// Arithmetic-core latency.
    p: u64,
    program: Vec<Micro>,
    /// Constant RAM (8 entries, §5.4.2.1): slot 0 = k.
    consts: [u64; 8],
}

/// State while executing one operation.
struct Exec {
    t: Vec<u128>,
    carry: u128,
    m: u128,
    /// add/sub output register file (reuses T memory).
    out_carry: i128,
}

impl MicroEngine {
    /// Builds an engine with a program.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds the 64-entry store.
    pub fn new(width: usize, program: Vec<Micro>) -> Self {
        assert!(program.len() <= UCODE_ENTRIES, "microcode store overflow");
        assert!(matches!(width, 8 | 16 | 32 | 64));
        MicroEngine {
            width,
            p: 3,
            program,
            consts: [0; 8],
        }
    }

    /// Writes a constant-RAM slot (`ctc2` path).
    pub fn set_const(&mut self, slot: usize, value: u64) {
        self.consts[slot] = value;
    }

    /// Executes the program over the operand buffers, returning
    /// `(result, cycles)`.
    ///
    /// # Panics
    ///
    /// Panics if the program runs away (no `End` within a conservative
    /// bound) — a microprogramming bug.
    pub fn run(&self, a: &[u64], b: &[u64], n: &[u64], n0_prime: u64) -> (Vec<u64>, u64) {
        let k = self.consts[0] as usize;
        assert!(k > 0, "element width constant not loaded");
        assert_eq!(a.len(), k);
        assert_eq!(b.len(), k);
        assert_eq!(n.len(), k);
        let w = self.width;
        let mask: u128 = if w == 64 {
            u128::MAX >> 64
        } else {
            (1u128 << w) - 1
        };
        let mut st = Exec {
            t: vec![0u128; k + 2],
            carry: 0,
            m: 0,
            out_carry: 0,
        };
        let mut i = 0usize; // outer counter
        let mut j = 0usize; // inner counter
        let mut pc = 0usize;
        let mut cycles: u64 = 0;
        let budget = 64 * (k as u64 + 4) * (k as u64 + 4) + 10_000;
        loop {
            assert!(cycles < budget, "runaway microprogram");
            let mi = self.program[pc];
            cycles += match mi.action {
                Action::Stall => self.p,
                // Fixed-cost final correction (the closed form charges the
                // correction and handshake as a key-size-independent
                // constant).
                Action::Correct => 18,
                // The conditional correction of add/sub is a second
                // pipelined pass over the element plus drain.
                Action::CondCorrect { .. } => k as u64 + 5,
                _ => 1,
            };
            self.step(&mut st, mi.action, a, b, n, n0_prime, k, i, j, mask, w);
            // Index updates (Table 5.5).
            for (reg, ctl) in [(&mut i, mi.idx_i), (&mut j, mi.idx_j)] {
                match ctl {
                    IdxCtl::Hold => {}
                    IdxCtl::Clear => *reg = 0,
                    IdxCtl::Inc => *reg += 1,
                    IdxCtl::LoadConst(slot) => *reg = self.consts[slot as usize] as usize,
                }
            }
            // Sequencing.
            match mi.seq {
                Seq::Next => pc += 1,
                Seq::LoopTo { target, idx, bound } => {
                    let v = match idx {
                        LoopIdx::I => i,
                        LoopIdx::J => j,
                    };
                    if v < self.consts[bound as usize] as usize {
                        pc = target as usize;
                    } else {
                        pc += 1;
                    }
                }
                Seq::End => {
                    let result = st.t[..k].iter().map(|&x| x as u64).collect();
                    return (result, cycles);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        st: &mut Exec,
        action: Action,
        a: &[u64],
        b: &[u64],
        n: &[u64],
        n0_prime: u64,
        k: usize,
        i: usize,
        j: usize,
        mask: u128,
        w: usize,
    ) {
        match action {
            Action::Nop | Action::Stall => {}
            Action::Row1 => {
                let cs = st.t[j] + (a[j] as u128) * (b[i] as u128) + st.carry;
                st.t[j] = cs & mask;
                st.carry = cs >> w;
            }
            Action::CarryFold => {
                // first call folds into t[k], second into t[k+1]
                let cs = st.t[k] + st.carry;
                st.t[k] = cs & mask;
                let hi = cs >> w;
                st.t[k + 1] += hi;
                st.carry = 0;
            }
            Action::CalcM => {
                st.m = ((st.t[0] as u64).wrapping_mul(n0_prime)) as u128 & mask;
            }
            Action::Row2 => {
                if j == 0 {
                    let cs = st.t[0] + st.m * (n[0] as u128);
                    st.carry = cs >> w;
                } else {
                    let cs = st.t[j] + st.m * (n[j] as u128) + st.carry;
                    st.t[j - 1] = cs & mask;
                    st.carry = cs >> w;
                }
            }
            Action::Tail => {
                // first call: t[k-1] = t[k] + C (low), keep carry;
                // second call: t[k] = t[k+1] + C', clear t[k+1].
                if st.m != u128::MAX {
                    let cs = st.t[k] + st.carry;
                    st.t[k - 1] = cs & mask;
                    st.carry = cs >> w;
                    st.m = u128::MAX; // phase marker within the iteration
                } else {
                    st.t[k] = (st.t[k + 1] + st.carry) & mask;
                    st.t[k + 1] = 0;
                    st.carry = 0;
                    st.m = 0;
                }
            }
            Action::Correct => {
                let ge = st.t[k] != 0 || {
                    let mut ge = true;
                    for idx in (0..k).rev() {
                        if st.t[idx] > n[idx] as u128 {
                            break;
                        }
                        if st.t[idx] < n[idx] as u128 {
                            ge = false;
                            break;
                        }
                    }
                    ge
                };
                if ge {
                    let mut borrow: i128 = 0;
                    for idx in 0..k {
                        let d = st.t[idx] as i128 - n[idx] as i128 - borrow;
                        st.t[idx] = (d & mask as i128) as u128;
                        borrow = (d < 0) as i128;
                    }
                    st.t[k] = 0;
                }
            }
            Action::AddRow { sub } => {
                if sub {
                    let d = a[j] as i128 - b[j] as i128 - st.out_carry;
                    st.t[j] = (d & mask as i128) as u128;
                    st.out_carry = (d < 0) as i128;
                } else {
                    let s = a[j] as u128 + b[j] as u128 + st.out_carry as u128;
                    st.t[j] = s & mask;
                    st.out_carry = (s >> w) as i128;
                }
            }
            Action::CondCorrect { sub } => {
                if sub {
                    if st.out_carry != 0 {
                        let mut carry: u128 = 0;
                        for idx in 0..k {
                            let s = st.t[idx] + n[idx] as u128 + carry;
                            st.t[idx] = s & mask;
                            carry = s >> w;
                        }
                    }
                } else {
                    let mut ge = st.out_carry != 0;
                    if !ge {
                        ge = true;
                        for idx in (0..k).rev() {
                            if st.t[idx] > n[idx] as u128 {
                                break;
                            }
                            if st.t[idx] < n[idx] as u128 {
                                ge = false;
                                break;
                            }
                        }
                    }
                    if ge {
                        let mut borrow: i128 = 0;
                        for idx in 0..k {
                            let d = st.t[idx] as i128 - n[idx] as i128 - borrow;
                            st.t[idx] = (d & mask as i128) as u128;
                            borrow = (d < 0) as i128;
                        }
                    }
                }
                st.out_carry = 0;
            }
            Action::CMulRow => {
                let c = self.consts[2] as u128;
                let cs = (a[j] as u128) * c + st.carry;
                st.t[j] = cs & mask;
                st.carry = cs >> w;
            }
            Action::LatchTop => {
                st.m = st.t[k];
                st.t[k] = 0;
            }
            Action::InjectC => {
                st.carry = st.m * self.consts[3] as u128;
            }
            Action::CarryAddRow => {
                let cs = st.t[j] + st.carry;
                st.t[j] = cs & mask;
                st.carry = cs >> w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffau::Ffau;
    use ule_mpmath::mont::Montgomery;
    use ule_mpmath::mp::Mp;
    use ule_mpmath::nist::NistPrime;

    fn limbs64(v: &Mp, k: usize) -> Vec<u64> {
        v.to_limbs(k).iter().map(|&x| x as u64).collect()
    }

    #[test]
    fn cios_microprogram_fits_the_store() {
        assert!(assemble_cios().len() <= UCODE_ENTRIES);
        assert!(assemble_cios().len() + 2 * assemble_addsub(false).len() <= UCODE_ENTRIES);
    }

    #[test]
    fn cmul_fold_fits_alongside_the_full_suite() {
        // The point of the extension: the ladder's constant multiply
        // coexists with CIOS and add/sub in the one 64-entry store.
        let full = assemble_cios().len()
            + 2 * assemble_addsub(false).len()
            + assemble_cmul_fold(true).len();
        assert!(full <= UCODE_ENTRIES, "{full} entries");
    }

    #[test]
    fn cmul_fold_matches_the_special_form_reduction() {
        use ule_mpmath::xprime::XPrime;
        for (xp, cs, delta, off) in [
            (XPrime::P25519, [121_665u64, 19, 2], 38u64, 0u64),
            (XPrime::P448, [39_081, 1, 2], 1, 7),
        ] {
            let p = xp.modulus();
            let k = xp.limbs();
            let mut eng = MicroEngine::new(32, assemble_cmul_fold(off != 0));
            eng.set_const(0, k as u64);
            eng.set_const(3, delta);
            eng.set_const(4, off);
            // Deterministic operand sweep: edge values plus an LCG fill.
            let mut cases = vec![
                Mp::zero(),
                Mp::one(),
                p.sub(&Mp::one()),
                Mp::one().shl(32 * k).sub(&Mp::one()), // all-ones limbs
            ];
            let mut x: u64 = 0x2545_f491_4f6c_dd1d;
            for _ in 0..24 {
                let mut limbs = vec![0u32; k];
                for l in limbs.iter_mut() {
                    x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    *l = (x >> 32) as u32;
                }
                cases.push(Mp::from_limbs(&limbs).rem(&p));
            }
            for c in cs {
                eng.set_const(2, c);
                for a in &cases {
                    let al = limbs64(a, k);
                    let (result, cycles) = eng.run(&al, &al, &limbs64(&p, k), 0);
                    let expect = xp.reduce(&a.mul(&Mp::from_u64(c)));
                    assert_eq!(
                        result,
                        limbs64(&expect, k),
                        "{} * {c} mod {}",
                        a.to_hex(),
                        xp.name()
                    );
                    assert_eq!(
                        cycles,
                        Ffau::cmul_cycles(k as u64, 3, off),
                        "{}: fold cycle count must match the closed form",
                        xp.name()
                    );
                }
            }
            // The win over a full CIOS pass is the point (O(k) vs O(k²)).
            assert!(Ffau::cmul_cycles(k as u64, 3, off) < Ffau::montmul_cycles(k as u64, 3) / 2);
        }
    }

    #[test]
    fn cios_microprogram_matches_host_and_eq_5_2() {
        for prime in [
            NistPrime::P192,
            NistPrime::P256,
            NistPrime::P384,
            NistPrime::P521,
        ] {
            let p = prime.modulus();
            let k = prime.limbs();
            let mont = Montgomery::new(&p);
            let mut eng = MicroEngine::new(32, assemble_cios());
            eng.set_const(0, k as u64);
            let a = p.sub(&Mp::from_u64(987_654_321));
            let b = p.sub(&Mp::from_u64(13));
            let (result, cycles) = eng.run(
                &limbs64(&a, k),
                &limbs64(&b, k),
                &limbs64(&p, k),
                mont.n0_prime() as u64,
            );
            let expect = mont.mul(&a.to_limbs(k), &b.to_limbs(k));
            let expect64: Vec<u64> = expect.iter().map(|&x| x as u64).collect();
            assert_eq!(result, expect64, "{}", prime.name());
            assert_eq!(
                cycles,
                Ffau::montmul_cycles(k as u64, 3),
                "{}: microcoded cycle count must equal eq. 5.2",
                prime.name()
            );
        }
    }

    #[test]
    fn addsub_microprograms_match_host() {
        let p = NistPrime::P224.modulus();
        let k = 7;
        let mut eng = MicroEngine::new(32, assemble_addsub(false));
        eng.set_const(0, k as u64);
        let a = p.sub(&Mp::from_u64(5));
        let b = p.sub(&Mp::from_u64(7));
        let (sum, c_add) = eng.run(&limbs64(&a, k), &limbs64(&b, k), &limbs64(&p, k), 0);
        let expect = a.add(&b).rem(&p);
        assert_eq!(sum, limbs64(&expect, k));
        let mut eng = MicroEngine::new(32, assemble_addsub(true));
        eng.set_const(0, k as u64);
        let (diff, _) = eng.run(&limbs64(&b, k), &limbs64(&a, k), &limbs64(&p, k), 0);
        // b - a = -2 mod p = p - 2
        assert_eq!(diff, limbs64(&p.sub(&Mp::from_u64(2)), k));
        // add/sub is a single pipelined pass: O(k) cycles.
        assert!(c_add < 3 * k as u64 + 10);
    }

    #[test]
    fn reconfiguring_k_reuses_the_same_microcode() {
        // The whole point of Monte (§5.4.2.1): switching key sizes is a
        // constant-RAM write, not new microcode.
        let mut eng = MicroEngine::new(32, assemble_cios());
        for prime in [NistPrime::P192, NistPrime::P521] {
            let p = prime.modulus();
            let k = prime.limbs();
            let mont = Montgomery::new(&p);
            eng.set_const(0, k as u64);
            let a = Mp::from_u64(123_456_789);
            let b = Mp::from_u64(42);
            let (result, _) = eng.run(
                &limbs64(&a, k),
                &limbs64(&b, k),
                &limbs64(&p, k),
                mont.n0_prime() as u64,
            );
            let expect: Vec<u64> = mont
                .mul(&a.to_limbs(k), &b.to_limbs(k))
                .iter()
                .map(|&x| x as u64)
                .collect();
            assert_eq!(result, expect, "{}", prime.name());
        }
    }

    #[test]
    #[should_panic(expected = "microcode store overflow")]
    fn oversized_programs_rejected() {
        let _ = MicroEngine::new(32, vec![Micro::default(); UCODE_ENTRIES + 1]);
    }
}
