//! "Monte" — the reconfigurable, microcoded GF(p) accelerator of §5.4.
//!
//! Monte hangs off Pete's COP2 interface and shares the true dual-port
//! 16 KB RAM (Fig 5.7). It consists of:
//!
//! * the **FFAU** ([`ffau::Ffau`]) — a microcoded finite-field arithmetic
//!   unit with a two-stage pipelined multiply-add core, AB/T scratchpad
//!   memories, index-register address generation, and a 64-entry
//!   microcode store (Fig 5.8–5.10). It executes **CIOS Montgomery
//!   multiplication** (Algorithm 5) plus modular add/subtract, at the
//!   cycle cost of eq. 5.2: `cc = 2k² + 6k + (k+1)p + 22`;
//! * the **front end** ([`frontend::Monte`]) — instruction queue, DMA
//!   unit with a store reservation register, operand/result **double
//!   buffering** that overlaps data movement with computation, and
//!   result→operand forwarding (§5.4.1). The §7.7 ablation switches the
//!   double buffering off.
//!
//! Run-time reconfigurability (the point of Monte versus Billie): the
//! element width `k` and the quotient constant `n0'` are control
//! registers written by `ctc2`, and the modulus is just another DMA'd
//! operand — so one synthesized Monte serves every key size up to 521
//! bits (§5.4.2.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ffau;
pub mod frontend;
pub mod ucode;

pub use ffau::{Ffau, FfauStats};
pub use frontend::{Monte, MonteConfig};
pub use ucode::{assemble_addsub, assemble_cios, assemble_cmul_fold, MicroEngine};
