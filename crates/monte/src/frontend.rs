//! Monte's coprocessor front end (§5.4.1, Fig 5.7): instruction queue,
//! DMA unit with store reservation register, operand/result double
//! buffering, and result→operand forwarding.
//!
//! Timing rules (event-based; equivalent to the cycle-by-cycle hardware
//! because the shared RAM is true dual-port, so the only resources are
//! the FFAU and the DMA engine):
//!
//! * a **load** starts as soon as the DMA engine is free (with double
//!   buffering it fills the shadow operand buffer while the FFAU runs;
//!   without it — the §7.7 ablation — it must also wait for the FFAU);
//! * a **compute** starts once its operands have arrived and the FFAU is
//!   free;
//! * a **store** waits in the reservation register until the compute
//!   finishes, then occupies the DMA engine;
//! * a load whose address equals the most recent store's address is
//!   **forwarded** from the result buffer: no shared-RAM reads, one
//!   cycle of buffer hand-off;
//! * the four-deep instruction queue back-pressures Pete only when full.

use crate::ffau::Ffau;
use std::collections::VecDeque;
use ule_isa::instr::Instr;
use ule_pete::cop::{CopStats, Coprocessor};
use ule_pete::mem::Ram;

/// Front-end configuration knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MonteConfig {
    /// Overlap DMA with computation (§5.4.1). The §7.7 ablation sets
    /// this false, serializing every transfer behind the FFAU.
    pub double_buffer: bool,
    /// Result→operand forwarding (§5.4.1).
    pub forwarding: bool,
    /// Instruction-queue depth.
    pub queue_depth: usize,
}

impl Default for MonteConfig {
    fn default() -> Self {
        MonteConfig {
            double_buffer: true,
            forwarding: true,
            queue_depth: 4,
        }
    }
}

/// The Monte coprocessor: FFAU plus front end, implementing Pete's
/// [`Coprocessor`] interface.
#[derive(Debug)]
pub struct Monte {
    ffau: Ffau,
    config: MonteConfig,
    /// Element width in 32-bit words (control register 0).
    k: usize,
    /// Operation mode (control register 2): when set, `cop2mul` runs the
    /// special-form constant-multiply microprogram instead of CIOS.
    fold_mode: bool,
    /// Completion cycles of queued commands (for queue back-pressure).
    inflight: VecDeque<u64>,
    /// When the DMA engine frees up.
    dma_free_at: u64,
    /// When the FFAU frees up.
    ffau_free_at: u64,
    /// When the operands of the *next* compute are fully loaded.
    operands_ready_at: u64,
    /// Address of the most recent store (for forwarding).
    last_store_addr: Option<u32>,
    /// A store waiting in the reservation register: `(addr, ready_at)` —
    /// it may not begin its DMA before `ready_at` (the computation whose
    /// result it stores), and later loads are allowed to overtake it
    /// (§5.4.1's instruction reordering).
    pending_store: Option<(u32, u64)>,
    stats: CopStats,
}

impl Monte {
    /// Creates a Monte with the default (paper) configuration and a
    /// 32-bit FFAU datapath.
    pub fn new() -> Self {
        Self::with_config(MonteConfig::default())
    }

    /// Creates a Monte with explicit front-end knobs (the §7.7 ablation).
    pub fn with_config(config: MonteConfig) -> Self {
        Monte {
            ffau: Ffau::new(32),
            config,
            k: 0,
            fold_mode: false,
            inflight: VecDeque::new(),
            dma_free_at: 0,
            ffau_free_at: 0,
            operands_ready_at: 0,
            last_store_addr: None,
            pending_store: None,
            stats: CopStats::default(),
        }
    }

    /// The FFAU (for its activity counters).
    pub fn ffau(&self) -> &Ffau {
        &self.ffau
    }

    fn queue_admit(&mut self, cycle: u64) -> u64 {
        while let Some(&front) = self.inflight.front() {
            if front <= cycle {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
        if self.inflight.len() < self.config.queue_depth {
            cycle + 1
        } else {
            // Stall until the oldest queued command completes.
            let free = self.inflight.pop_front().expect("non-empty");
            free.max(cycle) + 1
        }
    }

    fn read_words(&mut self, ram: &mut Ram, addr: u32) -> Vec<u64> {
        let words = ram.peek_words(addr, self.k);
        words.iter().map(|&w| w as u64).collect()
    }

    /// Executes the store waiting in the reservation register (if any):
    /// it may begin only after both the DMA engine and the computation it
    /// depends on are done.
    fn flush_pending_store(&mut self) {
        if let Some((addr, ready_at)) = self.pending_store.take() {
            let start = self.dma_free_at.max(ready_at);
            self.dma_free_at = start + self.k as u64;
            self.stats.dma_cycles += self.k as u64;
            self.last_store_addr = Some(addr);
        }
    }

    /// `idle_at` accounting for a store still in the reservation register.
    fn drain_at(&self) -> u64 {
        let base = self.dma_free_at.max(self.ffau_free_at);
        match self.pending_store {
            Some((_, ready_at)) => self.dma_free_at.max(ready_at) + self.k as u64,
            None => base,
        }
        .max(base)
    }

    fn dma_load(&mut self, cycle: u64, addr: u32, ram: &mut Ram) -> (Vec<u64>, u64) {
        // Forwarding: a load of the address a (possibly still pending)
        // store wrote is satisfied from the result buffer.
        let forwarded = self.config.forwarding
            && (self.last_store_addr == Some(addr)
                || matches!(self.pending_store, Some((a, _)) if a == addr));
        if !self.config.double_buffer {
            // No reordering: the reservation register drains first and
            // transfers also wait for the FFAU.
            self.flush_pending_store();
        }
        let start = if self.config.double_buffer {
            self.dma_free_at.max(cycle)
        } else {
            self.dma_free_at.max(self.ffau_free_at).max(cycle)
        };
        let dur = if forwarded { 1 } else { self.k as u64 };
        if !forwarded {
            ram.count_external(self.k as u64, 0);
            self.stats.ram_reads += self.k as u64;
        }
        self.stats.ls_ops += 1;
        self.stats.dma_cycles += dur;
        let done = start + dur;
        self.dma_free_at = done;
        (self.read_words(ram, addr), done)
    }
}

impl Default for Monte {
    fn default() -> Self {
        Self::new()
    }
}

impl Coprocessor for Monte {
    fn issue(&mut self, instr: Instr, rt_value: u32, cycle: u64, ram: &mut Ram) -> u64 {
        self.stats.instructions += 1;
        let resume = self.queue_admit(cycle);
        match instr {
            Instr::Ctc2 { rd, .. } => {
                match rd {
                    0 => self.k = rt_value as usize,
                    1 => self.ffau.set_n0_prime(rt_value as u64),
                    2 => self.fold_mode = rt_value != 0,
                    3 => self.ffau.set_fold_c(rt_value as u64),
                    4 => self.ffau.set_fold_delta(rt_value as u64),
                    5 => self.ffau.set_fold_offset(rt_value as u64),
                    _ => {} // unused control registers
                }
            }
            Instr::Cop2LdA { .. } => {
                let (words, done) = self.dma_load(cycle, rt_value, ram);
                self.ffau.load_a(&words);
                self.operands_ready_at = self.operands_ready_at.max(done);
                self.inflight.push_back(done);
            }
            Instr::Cop2LdB { .. } => {
                let (words, done) = self.dma_load(cycle, rt_value, ram);
                self.ffau.load_b(&words);
                self.operands_ready_at = self.operands_ready_at.max(done);
                self.inflight.push_back(done);
            }
            Instr::Cop2LdN { .. } => {
                let (words, done) = self.dma_load(cycle, rt_value, ram);
                self.ffau.load_n(&words);
                self.operands_ready_at = self.operands_ready_at.max(done);
                self.inflight.push_back(done);
            }
            Instr::Cop2Mul | Instr::Cop2Add | Instr::Cop2Sub => {
                let dur = match instr {
                    Instr::Cop2Mul if self.fold_mode => self.ffau.cmul(),
                    Instr::Cop2Mul => self.ffau.montmul(),
                    Instr::Cop2Add => self.ffau.modadd(),
                    _ => self.ffau.modsub(),
                };
                if matches!(instr, Instr::Cop2Mul) {
                    self.stats.mul_ops += 1;
                }
                let start = self.ffau_free_at.max(self.operands_ready_at).max(cycle);
                self.ffau_free_at = start + dur;
                self.stats.busy_cycles += dur;
                self.inflight.push_back(self.ffau_free_at);
                // A new computation invalidates forwarding of older
                // results only when it overwrites the result buffer;
                // with double buffering the previous result is still
                // being stored from the shadow buffer, so forwarding
                // state is managed at the store.
            }
            Instr::Cop2St { .. } => {
                // Only one reservation register: an older pending store
                // must drain first.
                self.flush_pending_store();
                ram.count_external(0, self.k as u64);
                self.stats.ram_writes += self.k as u64;
                self.stats.ls_ops += 1;
                // Functional effect now; timing deferred until the
                // computation completes (the reservation register).
                let words: Vec<u32> = self.ffau.result().iter().map(|&w| w as u32).collect();
                ram.poke_words(rt_value, &words);
                let ready_at = self.ffau_free_at.max(cycle);
                if self.config.double_buffer {
                    self.pending_store = Some((rt_value, ready_at));
                    self.inflight.push_back(ready_at + self.k as u64);
                } else {
                    let start = ready_at.max(self.dma_free_at);
                    self.dma_free_at = start + self.k as u64;
                    self.stats.dma_cycles += self.k as u64;
                    self.last_store_addr = Some(rt_value);
                    self.inflight.push_back(self.dma_free_at);
                }
            }
            Instr::Cop2Sync => unreachable!("sync handled by the CPU"),
            other => panic!("Monte cannot execute {other}"),
        }
        resume
    }

    fn idle_at(&self) -> u64 {
        self.drain_at()
    }

    fn stats(&self) -> CopStats {
        let mut s = self.stats;
        s.ucode_reads = self.ffau.stats().ucode_reads;
        s
    }

    fn name(&self) -> &'static str {
        "Monte"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_isa::asm::RAM_BASE;
    use ule_isa::reg::Reg;
    use ule_mpmath::mont::Montgomery;
    use ule_mpmath::mp::Mp;
    use ule_mpmath::nist::NistPrime;

    fn setup(p: &Mp) -> (Monte, Ram, usize) {
        let k = p.bit_len().div_ceil(32);
        let mont = Montgomery::new(p);
        let mut m = Monte::new();
        let mut ram = Ram::new();
        ram.poke_words(RAM_BASE, &p.to_limbs(k));
        let rt = Reg::T0;
        m.issue(Instr::Ctc2 { rt, rd: 0 }, k as u32, 0, &mut ram);
        m.issue(Instr::Ctc2 { rt, rd: 1 }, mont.n0_prime(), 1, &mut ram);
        m.issue(Instr::Cop2LdN { rt }, RAM_BASE, 2, &mut ram);
        (m, ram, k)
    }

    #[test]
    fn montmul_sequence_matches_host() {
        let p = NistPrime::P192.modulus();
        let mont = Montgomery::new(&p);
        let (mut m, mut ram, k) = setup(&p);
        let a = p.sub(&Mp::from_u64(77777));
        let b = p.sub(&Mp::from_u64(3));
        let a_addr = RAM_BASE + 0x100;
        let b_addr = RAM_BASE + 0x200;
        let o_addr = RAM_BASE + 0x300;
        ram.poke_words(a_addr, &a.to_limbs(k));
        ram.poke_words(b_addr, &b.to_limbs(k));
        let rt = Reg::T0;
        let mut c = 10;
        c = m.issue(Instr::Cop2LdA { rt }, a_addr, c, &mut ram);
        c = m.issue(Instr::Cop2LdB { rt }, b_addr, c, &mut ram);
        c = m.issue(Instr::Cop2Mul, 0, c, &mut ram);
        let _ = m.issue(Instr::Cop2St { rt }, o_addr, c, &mut ram);
        let got = ram.peek_words(o_addr, k);
        let expect = mont.mul(&a.to_limbs(k), &b.to_limbs(k));
        assert_eq!(got, expect);
        // idle_at reflects DMA + compute time (well past issue cycles).
        assert!(m.idle_at() > 13 + Ffau::montmul_cycles(6, 3));
    }

    #[test]
    fn forwarding_elides_ram_reads() {
        let p = NistPrime::P192.modulus();
        let (mut m, mut ram, k) = setup(&p);
        let rt = Reg::T0;
        let x = RAM_BASE + 0x100;
        ram.poke_words(x, &Mp::from_u64(5).to_limbs(k));
        let mut c = 10;
        c = m.issue(Instr::Cop2LdA { rt }, x, c, &mut ram);
        c = m.issue(Instr::Cop2LdB { rt }, x, c, &mut ram);
        c = m.issue(Instr::Cop2Add, 0, c, &mut ram);
        c = m.issue(Instr::Cop2St { rt }, x, c, &mut ram);
        let reads_before = m.stats().ram_reads;
        // Re-load the freshly stored value: should forward (no reads).
        let _ = m.issue(Instr::Cop2LdA { rt }, x, c, &mut ram);
        assert_eq!(m.stats().ram_reads, reads_before);
    }

    #[test]
    fn double_buffering_shortens_schedules() {
        let p = NistPrime::P384.modulus();
        let run = |db: bool| -> u64 {
            let cfg = MonteConfig {
                double_buffer: db,
                ..Default::default()
            };
            let k = 12;
            let mont = Montgomery::new(&p);
            let mut m = Monte::with_config(cfg);
            let mut ram = Ram::new();
            ram.poke_words(RAM_BASE, &p.to_limbs(k));
            let rt = Reg::T0;
            let mut c = 0;
            c = m.issue(Instr::Ctc2 { rt, rd: 0 }, k as u32, c, &mut ram);
            c = m.issue(Instr::Ctc2 { rt, rd: 1 }, mont.n0_prime(), c, &mut ram);
            c = m.issue(Instr::Cop2LdN { rt }, RAM_BASE, c, &mut ram);
            let a = RAM_BASE + 0x100;
            ram.poke_words(a, &Mp::from_u64(9).to_limbs(k));
            // Chain of multiplies with interleaved loads/stores.
            for i in 0..8u32 {
                let o = RAM_BASE + 0x400 + i * 64;
                c = m.issue(Instr::Cop2LdA { rt }, a, c, &mut ram);
                c = m.issue(Instr::Cop2LdB { rt }, a, c, &mut ram);
                c = m.issue(Instr::Cop2Mul, 0, c, &mut ram);
                c = m.issue(Instr::Cop2St { rt }, o, c, &mut ram);
            }
            m.idle_at()
        };
        let with_db = run(true);
        let without_db = run(false);
        assert!(
            with_db < without_db,
            "double buffering should shorten the schedule: {with_db} vs {without_db}"
        );
    }

    #[test]
    fn queue_backpressure_stalls_pete() {
        let p = NistPrime::P192.modulus();
        let (mut m, mut ram, k) = setup(&p);
        let rt = Reg::T0;
        let a = RAM_BASE + 0x100;
        ram.poke_words(a, &Mp::from_u64(1).to_limbs(k));
        // Flood the queue with long operations at back-to-back cycles.
        let mut c = 100;
        let mut stalled = false;
        for _ in 0..12 {
            let next = m.issue(Instr::Cop2LdA { rt }, a, c, &mut ram);
            let next = m.issue(Instr::Cop2LdB { rt }, a, next, &mut ram);
            let next = m.issue(Instr::Cop2Mul, 0, next, &mut ram);
            if next > c + 3 {
                stalled = true;
            }
            c = next;
        }
        assert!(stalled, "a flooded queue must back-pressure");
    }
}
