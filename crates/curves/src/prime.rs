//! Elliptic-curve point arithmetic over prime fields GF(p).
//!
//! Curves are short Weierstraß, `y^2 = x^3 + ax + b` (eq. 2.1). Point
//! doubling uses **Jacobian coordinates** and point addition adds an
//! *affine* point to a Jacobian point — the mixed Jacobian–affine system
//! the paper selects because it minimizes field operations for GF(p)
//! curves (§4.1). The projective mapping is
//! `(X, Y, Z) -> (X/Z^2, Y/Z^3)`, with the point at infinity `(1, 1, 0)`.
//!
//! Affine formulas (eq. 2.3–2.6) are implemented too; they are the
//! easily-auditable reference that the projective formulas are tested
//! against.

use ule_mpmath::fp::{FpElement, PrimeField};
use ule_mpmath::mp::Mp;

/// An affine point on a prime curve, or the point at infinity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AffinePoint {
    /// The group identity (the point at infinity).
    Infinity,
    /// A finite point `(x, y)`.
    Point {
        /// x-coordinate.
        x: FpElement,
        /// y-coordinate.
        y: FpElement,
    },
}

impl AffinePoint {
    /// Convenience constructor for a finite point.
    pub fn new(x: FpElement, y: FpElement) -> Self {
        AffinePoint::Point { x, y }
    }

    /// Returns `true` for the point at infinity.
    pub fn is_infinity(&self) -> bool {
        matches!(self, AffinePoint::Infinity)
    }

    /// The x-coordinate, or `None` at infinity.
    pub fn x(&self) -> Option<&FpElement> {
        match self {
            AffinePoint::Infinity => None,
            AffinePoint::Point { x, .. } => Some(x),
        }
    }

    /// The y-coordinate, or `None` at infinity.
    pub fn y(&self) -> Option<&FpElement> {
        match self {
            AffinePoint::Infinity => None,
            AffinePoint::Point { y, .. } => Some(y),
        }
    }
}

/// A Jacobian-coordinate point; `Z = 0` encodes the point at infinity.
#[derive(Clone, Debug)]
pub struct JacobianPoint {
    /// Projective X.
    pub x: FpElement,
    /// Projective Y.
    pub y: FpElement,
    /// Projective Z (`0` at infinity).
    pub z: FpElement,
}

/// A short-Weierstraß curve over a prime field together with its base
/// point.
#[derive(Clone, Debug)]
pub struct PrimeCurve {
    field: PrimeField,
    a: FpElement,
    b: FpElement,
    gx: FpElement,
    gy: FpElement,
    /// Whether `a = p - 3`, enabling the cheaper doubling used by every
    /// NIST prime curve.
    a_is_minus3: bool,
}

impl PrimeCurve {
    /// Creates a curve. The discriminant condition
    /// `4a^3 + 27b^2 != 0` (eq. 2.1) is checked.
    ///
    /// # Panics
    ///
    /// Panics if the discriminant is zero.
    pub fn new(
        field: PrimeField,
        a: FpElement,
        b: FpElement,
        gx: FpElement,
        gy: FpElement,
    ) -> Self {
        let four_a3 = field.mul_u64(&field.mul(&a, &field.sqr(&a)), 4);
        let twenty7_b2 = field.mul_u64(&field.sqr(&b), 27);
        assert!(
            !field.add(&four_a3, &twenty7_b2).is_zero(),
            "singular curve (zero discriminant)"
        );
        let minus3 = field.sub(&field.zero(), &field.from_u64(3));
        let a_is_minus3 = a == minus3;
        PrimeCurve {
            field,
            a,
            b,
            gx,
            gy,
            a_is_minus3,
        }
    }

    /// The underlying field context.
    pub fn field(&self) -> &PrimeField {
        &self.field
    }

    /// Curve coefficient `a`.
    pub fn a(&self) -> &FpElement {
        &self.a
    }

    /// Curve coefficient `b`.
    pub fn b(&self) -> &FpElement {
        &self.b
    }

    /// The base point `G`.
    pub fn generator(&self) -> AffinePoint {
        AffinePoint::new(self.gx.clone(), self.gy.clone())
    }

    /// Checks the curve equation `y^2 = x^3 + ax + b` (infinity is on the
    /// curve).
    pub fn is_on_curve(&self, p: &AffinePoint) -> bool {
        match p {
            AffinePoint::Infinity => true,
            AffinePoint::Point { x, y } => {
                let f = &self.field;
                let lhs = f.sqr(y);
                let rhs = f.add(&f.add(&f.mul(x, &f.sqr(x)), &f.mul(&self.a, x)), &self.b);
                lhs == rhs
            }
        }
    }

    /// `-P` (the x-axis reflection, §2.1.5).
    pub fn neg(&self, p: &AffinePoint) -> AffinePoint {
        match p {
            AffinePoint::Infinity => AffinePoint::Infinity,
            AffinePoint::Point { x, y } => AffinePoint::new(x.clone(), self.field.neg(y)),
        }
    }

    /// Affine point addition via the chord rule (eq. 2.3–2.4); handles all
    /// special cases. Costs one field inversion — which is exactly why the
    /// scalar-multiplication inner loops use projective coordinates
    /// instead.
    pub fn affine_add(&self, p: &AffinePoint, q: &AffinePoint) -> AffinePoint {
        let f = &self.field;
        match (p, q) {
            (AffinePoint::Infinity, _) => q.clone(),
            (_, AffinePoint::Infinity) => p.clone(),
            (AffinePoint::Point { x: xa, y: ya }, AffinePoint::Point { x: xb, y: yb }) => {
                if xa == xb {
                    if f.add(ya, yb).is_zero() {
                        return AffinePoint::Infinity;
                    }
                    return self.affine_double(p);
                }
                let lambda = f.mul(&f.sub(yb, ya), &f.inv(&f.sub(xb, xa)).expect("xa != xb"));
                let xc = f.sub(&f.sub(&f.sqr(&lambda), xa), xb);
                let yc = f.sub(&f.mul(&lambda, &f.sub(xa, &xc)), ya);
                AffinePoint::new(xc, yc)
            }
        }
    }

    /// Affine doubling via the tangent rule (eq. 2.5–2.6).
    pub fn affine_double(&self, p: &AffinePoint) -> AffinePoint {
        let f = &self.field;
        match p {
            AffinePoint::Infinity => AffinePoint::Infinity,
            AffinePoint::Point { x, y } => {
                if y.is_zero() {
                    return AffinePoint::Infinity;
                }
                let num = f.add(&f.mul_u64(&f.sqr(x), 3), &self.a);
                let lambda = f.mul(&num, &f.inv(&f.dbl(y)).expect("y != 0"));
                let xc = f.sub(&f.sqr(&lambda), &f.dbl(x));
                let yc = f.sub(&f.mul(&lambda, &f.sub(x, &xc)), y);
                AffinePoint::new(xc, yc)
            }
        }
    }

    /// The Jacobian identity `(1, 1, 0)`.
    pub fn jac_identity(&self) -> JacobianPoint {
        JacobianPoint {
            x: self.field.one(),
            y: self.field.one(),
            z: self.field.zero(),
        }
    }

    /// Returns `true` for the identity.
    pub fn jac_is_identity(&self, p: &JacobianPoint) -> bool {
        p.z.is_zero()
    }

    /// Lifts an affine point into Jacobian coordinates (`Z = 1`).
    pub fn jac_from_affine(&self, p: &AffinePoint) -> JacobianPoint {
        match p {
            AffinePoint::Infinity => self.jac_identity(),
            AffinePoint::Point { x, y } => JacobianPoint {
                x: x.clone(),
                y: y.clone(),
                z: self.field.one(),
            },
        }
    }

    /// Jacobian point doubling — inversion-free (§2.1.5). Uses the `a=-3`
    /// shortcut `E = 3(X - Z^2)(X + Z^2)` when applicable (all NIST prime
    /// curves), the general `3X^2 + aZ^4` form otherwise.
    pub fn jac_double(&self, p: &JacobianPoint) -> JacobianPoint {
        let f = &self.field;
        if p.z.is_zero() || p.y.is_zero() {
            return self.jac_identity();
        }
        let ysq = f.sqr(&p.y);
        let s = f.mul_u64(&f.mul(&p.x, &ysq), 4);
        let m = if self.a_is_minus3 {
            let zsq = f.sqr(&p.z);
            f.mul_u64(&f.mul(&f.sub(&p.x, &zsq), &f.add(&p.x, &zsq)), 3)
        } else {
            let z4 = f.sqr(&f.sqr(&p.z));
            f.add(&f.mul_u64(&f.sqr(&p.x), 3), &f.mul(&self.a, &z4))
        };
        let x3 = f.sub(&f.sqr(&m), &f.dbl(&s));
        let y3 = f.sub(&f.mul(&m, &f.sub(&s, &x3)), &f.mul_u64(&f.sqr(&ysq), 8));
        let z3 = f.mul(&f.dbl(&p.y), &p.z);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed Jacobian + affine addition — the workhorse of the paper's
    /// scalar multiplication (§4.1: "when we perform a point addition, we
    /// actually add an affine point to a Jacobian point").
    pub fn jac_add_affine(&self, p: &JacobianPoint, q: &AffinePoint) -> JacobianPoint {
        let f = &self.field;
        let (x2, y2) = match q {
            AffinePoint::Infinity => return p.clone(),
            AffinePoint::Point { x, y } => (x, y),
        };
        if p.z.is_zero() {
            return JacobianPoint {
                x: x2.clone(),
                y: y2.clone(),
                z: f.one(),
            };
        }
        let z1z1 = f.sqr(&p.z);
        let u2 = f.mul(x2, &z1z1);
        let s2 = f.mul(y2, &f.mul(&z1z1, &p.z));
        let h = f.sub(&u2, &p.x);
        let r = f.sub(&s2, &p.y);
        if h.is_zero() {
            if r.is_zero() {
                return self.jac_double(p);
            }
            return self.jac_identity();
        }
        let hh = f.sqr(&h);
        let hhh = f.mul(&h, &hh);
        let v = f.mul(&p.x, &hh);
        let x3 = f.sub(&f.sub(&f.sqr(&r), &hhh), &f.dbl(&v));
        let y3 = f.sub(&f.mul(&r, &f.sub(&v, &x3)), &f.mul(&p.y, &hhh));
        let z3 = f.mul(&p.z, &h);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Converts back to affine; the *one* field inversion a scalar
    /// multiplication pays (§2.1.5).
    pub fn jac_to_affine(&self, p: &JacobianPoint) -> AffinePoint {
        let f = &self.field;
        if p.z.is_zero() {
            return AffinePoint::Infinity;
        }
        let zinv = f.inv(&p.z).expect("z != 0");
        let zinv2 = f.sqr(&zinv);
        let x = f.mul(&p.x, &zinv2);
        let y = f.mul(&p.y, &f.mul(&zinv2, &zinv));
        AffinePoint::new(x, y)
    }

    /// The x-coordinate of a point interpreted as an integer — what ECDSA
    /// reduces modulo the group order to form `r`.
    pub fn x_as_integer(&self, p: &AffinePoint) -> Option<Mp> {
        p.x().map(|x| x.to_mp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_mpmath::nist::NistPrime;

    /// A tiny curve for exhaustive checks: y^2 = x^3 + 2x + 3 over GF(97).
    /// 97 is prime; small enough to enumerate.
    fn tiny() -> PrimeCurve {
        let f = PrimeField::new("GF(97)", &Mp::from_u64(97));
        let a = f.from_u64(2);
        let b = f.from_u64(3);
        // (0, 10): 100 mod 97 = 3 = 0 + 0 + 3 ✓
        let gx = f.from_u64(0);
        let gy = f.from_u64(10);
        PrimeCurve::new(f, a, b, gx, gy)
    }

    #[test]
    fn tiny_generator_on_curve() {
        let c = tiny();
        assert!(c.is_on_curve(&c.generator()));
        assert!(c.is_on_curve(&AffinePoint::Infinity));
    }

    #[test]
    fn tiny_group_laws_exhaustive() {
        let c = tiny();
        // Collect all points by brute force.
        let f = c.field().clone();
        let mut points = vec![AffinePoint::Infinity];
        for x in 0..97u64 {
            for y in 0..97u64 {
                let p = AffinePoint::new(f.from_u64(x), f.from_u64(y));
                if c.is_on_curve(&p) {
                    points.push(p);
                }
            }
        }
        // Group order must satisfy the Hasse bound: |#E - 98| <= 2*sqrt(97).
        let n = points.len() as i64;
        assert!((n - 98).abs() <= 19, "order {n} violates Hasse bound");
        // Closure and commutativity on a sample.
        for p in points.iter().step_by(7) {
            for q in points.iter().step_by(11) {
                let s1 = c.affine_add(p, q);
                let s2 = c.affine_add(q, p);
                assert!(c.is_on_curve(&s1));
                assert_eq!(s1, s2);
            }
        }
        // Identity and inverse for every point.
        for p in &points {
            assert_eq!(&c.affine_add(p, &AffinePoint::Infinity), p);
            assert!(c.affine_add(p, &c.neg(p)).is_infinity());
        }
    }

    #[test]
    fn jacobian_matches_affine_tiny() {
        let c = tiny();
        let g = c.generator();
        let mut aff = g.clone();
        let mut jac = c.jac_from_affine(&g);
        for _ in 0..25 {
            aff = c.affine_double(&aff);
            jac = c.jac_double(&jac);
            assert_eq!(c.jac_to_affine(&jac), aff);
            aff = c.affine_add(&aff, &g);
            jac = c.jac_add_affine(&jac, &g);
            assert_eq!(c.jac_to_affine(&jac), aff);
        }
    }

    #[test]
    fn jacobian_matches_affine_p192() {
        let f = PrimeField::nist(NistPrime::P192);
        let a = f.sub(&f.zero(), &f.from_u64(3));
        let b =
            f.from_mp(&Mp::from_hex("64210519e59c80e70fa7e9ab72243049feb8deecc146b9b1").unwrap());
        let gx =
            f.from_mp(&Mp::from_hex("188da80eb03090f67cbf20eb43a18800f4ff0afd82ff1012").unwrap());
        let gy =
            f.from_mp(&Mp::from_hex("07192b95ffc8da78631011ed6b24cdd573f977a11e794811").unwrap());
        let c = PrimeCurve::new(f, a, b, gx, gy);
        let g = c.generator();
        assert!(c.is_on_curve(&g), "NIST P-192 generator not on curve");
        let mut aff = g.clone();
        let mut jac = c.jac_from_affine(&g);
        for _ in 0..8 {
            aff = c.affine_double(&aff);
            jac = c.jac_double(&jac);
            assert_eq!(c.jac_to_affine(&jac), aff);
            aff = c.affine_add(&aff, &g);
            jac = c.jac_add_affine(&jac, &g);
            assert_eq!(c.jac_to_affine(&jac), aff);
        }
        assert!(c.is_on_curve(&aff));
    }

    #[test]
    fn mixed_add_special_cases() {
        let c = tiny();
        let g = c.generator();
        // identity + G
        let s = c.jac_add_affine(&c.jac_identity(), &g);
        assert_eq!(c.jac_to_affine(&s), g);
        // G + G triggers the doubling path
        let jg = c.jac_from_affine(&g);
        let d = c.jac_add_affine(&jg, &g);
        assert_eq!(c.jac_to_affine(&d), c.affine_double(&g));
        // G + (-G) is the identity
        let neg = c.neg(&g);
        let z = c.jac_add_affine(&jg, &neg);
        assert!(c.jac_is_identity(&z));
    }
}
