//! Elliptic-curve point arithmetic over binary fields GF(2^m).
//!
//! Curves are the binary short Weierstraß form `y^2 + xy = x^3 + ax^2 + b`
//! (eq. 2.2). Inversion-free point operations use **Lopez–Dahab (LD)
//! coordinates**, the system the paper selects for GF(2^m) (§2.1.5, §4.1):
//! projective mapping `(X, Y, Z) -> (X/Z, Y/Z^2)`, point at infinity
//! `(1, 0, 0)`, and the negative of `(X, Y, Z)` being `(X, XZ + Y, Z)`
//! (affine: `-(x, y) = (x, x + y)`).
//!
//! Affine formulas are provided as the auditable reference that the LD
//! formulas are tested against.

use ule_mpmath::f2m::{BinaryField, F2mElement};
use ule_mpmath::mp::Mp;

/// An affine point on a binary curve, or the point at infinity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AffinePoint2m {
    /// The group identity.
    Infinity,
    /// A finite point `(x, y)`.
    Point {
        /// x-coordinate.
        x: F2mElement,
        /// y-coordinate.
        y: F2mElement,
    },
}

impl AffinePoint2m {
    /// Convenience constructor for a finite point.
    pub fn new(x: F2mElement, y: F2mElement) -> Self {
        AffinePoint2m::Point { x, y }
    }

    /// Returns `true` for the point at infinity.
    pub fn is_infinity(&self) -> bool {
        matches!(self, AffinePoint2m::Infinity)
    }

    /// The x-coordinate, or `None` at infinity.
    pub fn x(&self) -> Option<&F2mElement> {
        match self {
            AffinePoint2m::Infinity => None,
            AffinePoint2m::Point { x, .. } => Some(x),
        }
    }

    /// The y-coordinate, or `None` at infinity.
    pub fn y(&self) -> Option<&F2mElement> {
        match self {
            AffinePoint2m::Infinity => None,
            AffinePoint2m::Point { y, .. } => Some(y),
        }
    }
}

/// A Lopez–Dahab point; `Z = 0` encodes the point at infinity.
#[derive(Clone, Debug)]
pub struct LdPoint {
    /// Projective X.
    pub x: F2mElement,
    /// Projective Y.
    pub y: F2mElement,
    /// Projective Z (`0` at infinity).
    pub z: F2mElement,
}

/// A binary Weierstraß curve with its base point.
#[derive(Clone, Debug)]
pub struct BinaryCurve {
    field: BinaryField,
    a: F2mElement,
    b: F2mElement,
    gx: F2mElement,
    gy: F2mElement,
}

impl BinaryCurve {
    /// Creates a curve `y^2 + xy = x^3 + ax^2 + b`.
    ///
    /// # Panics
    ///
    /// Panics if `b = 0` (singular).
    pub fn new(
        field: BinaryField,
        a: F2mElement,
        b: F2mElement,
        gx: F2mElement,
        gy: F2mElement,
    ) -> Self {
        assert!(!b.is_zero(), "singular curve (b = 0)");
        BinaryCurve {
            field,
            a,
            b,
            gx,
            gy,
        }
    }

    /// The underlying field context.
    pub fn field(&self) -> &BinaryField {
        &self.field
    }

    /// Curve coefficient `a`.
    pub fn a(&self) -> &F2mElement {
        &self.a
    }

    /// Curve coefficient `b`.
    pub fn b(&self) -> &F2mElement {
        &self.b
    }

    /// The base point `G`.
    pub fn generator(&self) -> AffinePoint2m {
        AffinePoint2m::new(self.gx.clone(), self.gy.clone())
    }

    /// Checks the curve equation `y^2 + xy = x^3 + ax^2 + b`.
    pub fn is_on_curve(&self, p: &AffinePoint2m) -> bool {
        match p {
            AffinePoint2m::Infinity => true,
            AffinePoint2m::Point { x, y } => {
                let f = &self.field;
                let lhs = f.add(&f.sqr(y), &f.mul(x, y));
                let x2 = f.sqr(x);
                let rhs = f.add(&f.add(&f.mul(x, &x2), &f.mul(&self.a, &x2)), &self.b);
                lhs == rhs
            }
        }
    }

    /// `-P = (x, x + y)` (the LD negative, §2.1.5).
    pub fn neg(&self, p: &AffinePoint2m) -> AffinePoint2m {
        match p {
            AffinePoint2m::Infinity => AffinePoint2m::Infinity,
            AffinePoint2m::Point { x, y } => AffinePoint2m::new(x.clone(), self.field.add(x, y)),
        }
    }

    /// Affine addition: `lambda = (y1 + y2)/(x1 + x2)`,
    /// `x3 = lambda^2 + lambda + x1 + x2 + a`,
    /// `y3 = lambda(x1 + x3) + x3 + y1`.
    pub fn affine_add(&self, p: &AffinePoint2m, q: &AffinePoint2m) -> AffinePoint2m {
        let f = &self.field;
        match (p, q) {
            (AffinePoint2m::Infinity, _) => q.clone(),
            (_, AffinePoint2m::Infinity) => p.clone(),
            (AffinePoint2m::Point { x: x1, y: y1 }, AffinePoint2m::Point { x: x2, y: y2 }) => {
                if x1 == x2 {
                    if y1 == y2 {
                        return self.affine_double(p);
                    }
                    return AffinePoint2m::Infinity; // Q = -P
                }
                let dx = f.add(x1, x2);
                let lambda = f.mul(&f.add(y1, y2), &f.inv(&dx).expect("x1 != x2"));
                let x3 = f.add(&f.add(&f.add(&f.sqr(&lambda), &lambda), &dx), &self.a);
                let y3 = f.add(&f.add(&f.mul(&lambda, &f.add(x1, &x3)), &x3), y1);
                AffinePoint2m::new(x3, y3)
            }
        }
    }

    /// Affine doubling: `lambda = x + y/x`, `x3 = lambda^2 + lambda + a`,
    /// `y3 = x^2 + (lambda + 1) x3`.
    pub fn affine_double(&self, p: &AffinePoint2m) -> AffinePoint2m {
        let f = &self.field;
        match p {
            AffinePoint2m::Infinity => AffinePoint2m::Infinity,
            AffinePoint2m::Point { x, y } => {
                if x.is_zero() {
                    return AffinePoint2m::Infinity; // the order-2 point
                }
                let lambda = f.add(x, &f.mul(y, &f.inv(x).expect("x != 0")));
                let x3 = f.add(&f.add(&f.sqr(&lambda), &lambda), &self.a);
                let y3 = f.add(&f.sqr(x), &f.mul(&f.add(&lambda, &f.one()), &x3));
                AffinePoint2m::new(x3, y3)
            }
        }
    }

    /// The LD identity `(1, 0, 0)`.
    pub fn ld_identity(&self) -> LdPoint {
        LdPoint {
            x: self.field.one(),
            y: self.field.zero(),
            z: self.field.zero(),
        }
    }

    /// Returns `true` for the identity.
    pub fn ld_is_identity(&self, p: &LdPoint) -> bool {
        p.z.is_zero()
    }

    /// Lifts an affine point to LD coordinates (`Z = 1`).
    pub fn ld_from_affine(&self, p: &AffinePoint2m) -> LdPoint {
        match p {
            AffinePoint2m::Infinity => self.ld_identity(),
            AffinePoint2m::Point { x, y } => LdPoint {
                x: x.clone(),
                y: y.clone(),
                z: self.field.one(),
            },
        }
    }

    /// LD point doubling (inversion-free):
    /// `Z3 = X1^2 Z1^2`, `X3 = X1^4 + b Z1^4`,
    /// `Y3 = b Z1^4 Z3 + X3 (a Z3 + Y1^2 + b Z1^4)`.
    pub fn ld_double(&self, p: &LdPoint) -> LdPoint {
        let f = &self.field;
        if p.z.is_zero() {
            return self.ld_identity();
        }
        let x2 = f.sqr(&p.x);
        let z2 = f.sqr(&p.z);
        let bz4 = f.mul(&self.b, &f.sqr(&z2));
        let z3 = f.mul(&x2, &z2);
        let x3 = f.add(&f.sqr(&x2), &bz4);
        let az3 = f.mul(&self.a, &z3);
        let y3 = f.add(
            &f.mul(&bz4, &z3),
            &f.mul(&x3, &f.add(&f.add(&az3, &f.sqr(&p.y)), &bz4)),
        );
        LdPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed LD + affine addition — the binary-field counterpart of the
    /// mixed Jacobian–affine addition (§4.1).
    pub fn ld_add_affine(&self, p: &LdPoint, q: &AffinePoint2m) -> LdPoint {
        let f = &self.field;
        let (x2, y2) = match q {
            AffinePoint2m::Infinity => return p.clone(),
            AffinePoint2m::Point { x, y } => (x, y),
        };
        if p.z.is_zero() {
            return LdPoint {
                x: x2.clone(),
                y: y2.clone(),
                z: f.one(),
            };
        }
        let z1sq = f.sqr(&p.z);
        let a_t = f.add(&f.mul(y2, &z1sq), &p.y); // A = Y2 Z1^2 + Y1
        let b_t = f.add(&f.mul(x2, &p.z), &p.x); // B = X2 Z1 + X1
        if b_t.is_zero() {
            if a_t.is_zero() {
                return self.ld_double(p);
            }
            return self.ld_identity();
        }
        let c_t = f.mul(&p.z, &b_t); // C = Z1 B
        let d_t = f.mul(&f.sqr(&b_t), &f.add(&c_t, &f.mul(&self.a, &z1sq))); // D = B^2 (C + a Z1^2)
        let z3 = f.sqr(&c_t);
        let e_t = f.mul(&a_t, &c_t);
        let x3 = f.add(&f.add(&f.sqr(&a_t), &d_t), &e_t);
        let f_t = f.add(&x3, &f.mul(x2, &z3));
        let g_t = f.mul(&f.add(x2, y2), &f.sqr(&z3));
        let y3 = f.add(&f.mul(&f.add(&e_t, &z3), &f_t), &g_t);
        LdPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Converts back to affine: `x = X/Z`, `y = Y/Z^2` — the one inversion
    /// per scalar multiplication.
    pub fn ld_to_affine(&self, p: &LdPoint) -> AffinePoint2m {
        let f = &self.field;
        if p.z.is_zero() {
            return AffinePoint2m::Infinity;
        }
        let zinv = f.inv(&p.z).expect("z != 0");
        let x = f.mul(&p.x, &zinv);
        let y = f.mul(&p.y, &f.sqr(&zinv));
        AffinePoint2m::new(x, y)
    }

    /// The x-coordinate bit-vector interpreted as an integer — what ECDSA
    /// reduces modulo the group order to form `r` (§4.1).
    pub fn x_as_integer(&self, p: &AffinePoint2m) -> Option<Mp> {
        p.x().map(|x| x.to_mp())
    }

    /// Solves `z^2 + z = c` by the half-trace (odd `m` only), returning
    /// `None` when no solution exists. Used to construct points from
    /// x-coordinates when deriving Koblitz generators.
    pub fn solve_quadratic(&self, c: &F2mElement) -> Option<F2mElement> {
        let f = &self.field;
        assert!(f.m() % 2 == 1, "half-trace needs odd m");
        let mut h = c.clone();
        for _ in 0..(f.m() - 1) / 2 {
            h = f.add(&f.sqr(&f.sqr(&h)), c);
        }
        // verify
        if f.add(&f.sqr(&h), &h) == *c {
            Some(h)
        } else {
            None
        }
    }

    /// Finds a point with small x by solving the curve equation; used to
    /// derive generators for Koblitz curves. Returns the first point found
    /// scanning `x = start, start+1, ...` (as integer bit patterns).
    pub fn find_point(&self, start: u64) -> AffinePoint2m {
        let f = &self.field;
        let mut xi = start.max(1);
        loop {
            let x = f.from_mp(&Mp::from_u64(xi));
            if !x.is_zero() {
                // y = x z with z^2 + z = x + a + b / x^2
                let xinv2 = f.sqr(&f.inv(&x).expect("x != 0"));
                let c = f.add(&f.add(&x, &self.a), &f.mul(&self.b, &xinv2));
                if let Some(z) = self.solve_quadratic(&c) {
                    let y = f.mul(&x, &z);
                    let p = AffinePoint2m::new(x, y);
                    debug_assert!(self.is_on_curve(&p));
                    return p;
                }
            }
            xi += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_mpmath::nist::NistBinary;

    /// A tiny binary curve for exhaustive checks:
    /// y^2 + xy = x^3 + x^2 + 1 over GF(2^7), f = x^7 + x + 1.
    fn tiny() -> BinaryCurve {
        let f = BinaryField::new("GF(2^7)", 7, &[1, 0]);
        let a = f.one();
        let b = f.one();
        let g = {
            let c = BinaryCurve {
                field: f.clone(),
                a: a.clone(),
                b: b.clone(),
                gx: f.one(),
                gy: f.one(),
            };
            c.find_point(1)
        };
        let (gx, gy) = (g.x().unwrap().clone(), g.y().unwrap().clone());
        BinaryCurve::new(f, a, b, gx, gy)
    }

    #[test]
    fn tiny_generator_on_curve() {
        let c = tiny();
        assert!(c.is_on_curve(&c.generator()));
    }

    #[test]
    fn tiny_group_laws_exhaustive() {
        let c = tiny();
        let f = c.field().clone();
        let mut points = vec![AffinePoint2m::Infinity];
        for x in 0..128u64 {
            for y in 0..128u64 {
                let p =
                    AffinePoint2m::new(f.from_mp(&Mp::from_u64(x)), f.from_mp(&Mp::from_u64(y)));
                if c.is_on_curve(&p) {
                    points.push(p);
                }
            }
        }
        let n = points.len() as i64;
        // Hasse: |#E - 129| <= 2*sqrt(128) ~ 22.6
        assert!((n - 129).abs() <= 22, "order {n} violates Hasse bound");
        for p in points.iter().step_by(5) {
            for q in points.iter().step_by(9) {
                let s1 = c.affine_add(p, q);
                assert!(c.is_on_curve(&s1));
                assert_eq!(s1, c.affine_add(q, p));
            }
        }
        for p in &points {
            assert_eq!(&c.affine_add(p, &AffinePoint2m::Infinity), p);
            assert!(c.affine_add(p, &c.neg(p)).is_infinity());
        }
    }

    #[test]
    fn ld_matches_affine_tiny() {
        let c = tiny();
        let g = c.generator();
        let mut aff = g.clone();
        let mut ld = c.ld_from_affine(&g);
        for _ in 0..40 {
            aff = c.affine_double(&aff);
            ld = c.ld_double(&ld);
            assert_eq!(c.ld_to_affine(&ld), aff);
            aff = c.affine_add(&aff, &g);
            ld = c.ld_add_affine(&ld, &g);
            assert_eq!(c.ld_to_affine(&ld), aff);
        }
    }

    #[test]
    fn ld_matches_affine_b163() {
        let f = BinaryField::nist(NistBinary::B163);
        let a = f.one();
        let b = f.one();
        let mut c = BinaryCurve::new(f.clone(), a, b, f.one(), f.one());
        let g = c.find_point(2);
        c.gx = g.x().unwrap().clone();
        c.gy = g.y().unwrap().clone();
        assert!(c.is_on_curve(&c.generator()));
        let g = c.generator();
        let mut aff = g.clone();
        let mut ld = c.ld_from_affine(&g);
        for _ in 0..6 {
            aff = c.affine_double(&aff);
            ld = c.ld_double(&ld);
            assert_eq!(c.ld_to_affine(&ld), aff);
            aff = c.affine_add(&aff, &g);
            ld = c.ld_add_affine(&ld, &g);
            assert_eq!(c.ld_to_affine(&ld), aff);
        }
    }

    #[test]
    fn ld_special_cases() {
        let c = tiny();
        let g = c.generator();
        let s = c.ld_add_affine(&c.ld_identity(), &g);
        assert_eq!(c.ld_to_affine(&s), g);
        let lg = c.ld_from_affine(&g);
        let d = c.ld_add_affine(&lg, &g);
        assert_eq!(c.ld_to_affine(&d), c.affine_double(&g));
        let z = c.ld_add_affine(&lg, &c.neg(&g));
        assert!(c.ld_is_identity(&z));
    }

    #[test]
    fn half_trace_solves_quadratic() {
        let c = tiny();
        let f = c.field();
        for v in 1..60u64 {
            let cv = f.from_mp(&Mp::from_u64(v));
            if let Some(z) = c.solve_quadratic(&cv) {
                assert_eq!(f.add(&f.sqr(&z), &z), cv);
            }
        }
    }
}
