//! Scalar point multiplication — the elliptic-curve one-way function
//! (§2.1.5, §4.1).
//!
//! Three algorithms are implemented, generically over both curve families
//! via the [`GroupOps`] trait:
//!
//! * [`mul_binary`] — right-to-left binary double-and-add (Algorithm 1 of
//!   the paper), "shown purely for example sake" there and kept here as a
//!   simple cross-check oracle;
//! * [`mul_window`] — the left-to-right **sliding-window** method with
//!   precomputed small odd multiples, the algorithm the paper uses for a
//!   signature's single scalar multiplication (§4.1);
//! * [`twin_mul`] — **twin (simultaneous) multiplication**
//!   `u1*P + u2*Q` with precomputed `P+Q` and `P-Q`, the algorithm the
//!   paper uses for verification, costing less than two single
//!   multiplications (§4.1).
//!
//! The Lopez–Dahab **Montgomery ladder** for binary curves — evaluated by
//! the paper for Billie and found *less* efficient than sliding windows
//! (§4.1, Fig 7.14) — lives here too ([`montgomery_ladder_2m`]).
//!
//! Instrumented operation counts ([`OpCount`]) are exposed so the harness
//! can translate algorithm behaviour into accelerator instruction streams.

use crate::binary::{AffinePoint2m, BinaryCurve, LdPoint};
use crate::prime::{AffinePoint, JacobianPoint, PrimeCurve};
use ule_mpmath::mp::Mp;

/// Field-operation census for one scalar multiplication; drives the
/// accelerator performance models and the Fig 7.14 study.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCount {
    /// Projective point doublings performed.
    pub doubles: usize,
    /// Projective point additions (or subtractions) performed.
    pub adds: usize,
    /// Field inversions performed (coordinate conversions).
    pub inversions: usize,
}

/// Uniform interface over the two curve families' mixed-coordinate
/// operations, so the scalar-multiplication algorithms are written once.
pub trait GroupOps {
    /// Projective (inner-loop) point representation.
    type Proj: Clone;
    /// Affine point representation (with an infinity encoding).
    type Aff: Clone + PartialEq;

    /// The projective identity.
    fn identity(&self) -> Self::Proj;
    /// True for the identity.
    fn is_identity(&self, p: &Self::Proj) -> bool;
    /// Inversion-free doubling.
    fn double(&self, p: &Self::Proj) -> Self::Proj;
    /// Mixed projective + affine addition.
    fn add_affine(&self, p: &Self::Proj, q: &Self::Aff) -> Self::Proj;
    /// Affine negation (cheap in both families).
    fn neg_affine(&self, q: &Self::Aff) -> Self::Aff;
    /// Convert to affine (costs one field inversion).
    fn to_affine(&self, p: &Self::Proj) -> Self::Aff;
    /// Lift an affine point.
    // `&self` is the curve context, not the value being converted.
    #[allow(clippy::wrong_self_convention)]
    fn from_affine(&self, q: &Self::Aff) -> Self::Proj;
    /// The affine infinity encoding.
    fn affine_infinity(&self) -> Self::Aff;
}

impl GroupOps for PrimeCurve {
    type Proj = JacobianPoint;
    type Aff = AffinePoint;

    fn identity(&self) -> JacobianPoint {
        self.jac_identity()
    }
    fn is_identity(&self, p: &JacobianPoint) -> bool {
        self.jac_is_identity(p)
    }
    fn double(&self, p: &JacobianPoint) -> JacobianPoint {
        self.jac_double(p)
    }
    fn add_affine(&self, p: &JacobianPoint, q: &AffinePoint) -> JacobianPoint {
        self.jac_add_affine(p, q)
    }
    fn neg_affine(&self, q: &AffinePoint) -> AffinePoint {
        self.neg(q)
    }
    fn to_affine(&self, p: &JacobianPoint) -> AffinePoint {
        self.jac_to_affine(p)
    }
    fn from_affine(&self, q: &AffinePoint) -> JacobianPoint {
        self.jac_from_affine(q)
    }
    fn affine_infinity(&self) -> AffinePoint {
        AffinePoint::Infinity
    }
}

impl GroupOps for BinaryCurve {
    type Proj = LdPoint;
    type Aff = AffinePoint2m;

    fn identity(&self) -> LdPoint {
        self.ld_identity()
    }
    fn is_identity(&self, p: &LdPoint) -> bool {
        self.ld_is_identity(p)
    }
    fn double(&self, p: &LdPoint) -> LdPoint {
        self.ld_double(p)
    }
    fn add_affine(&self, p: &LdPoint, q: &AffinePoint2m) -> LdPoint {
        self.ld_add_affine(p, q)
    }
    fn neg_affine(&self, q: &AffinePoint2m) -> AffinePoint2m {
        self.neg(q)
    }
    fn to_affine(&self, p: &LdPoint) -> AffinePoint2m {
        self.ld_to_affine(p)
    }
    fn from_affine(&self, q: &AffinePoint2m) -> LdPoint {
        self.ld_from_affine(q)
    }
    fn affine_infinity(&self) -> AffinePoint2m {
        AffinePoint2m::Infinity
    }
}

/// Right-to-left binary double-and-add — Algorithm 1 of the paper.
///
/// Kept as the simple oracle the optimized algorithms are tested against
/// (the paper: "shown here purely for example sake. Due to its simplicity,
/// it is relatively inefficient").
pub fn mul_binary<C: GroupOps>(curve: &C, x: &Mp, p: &C::Aff) -> C::Aff {
    let mut q = curve.identity();
    let mut base = p.clone();
    let bits = x.bit_len();
    for i in 0..bits {
        if x.bit(i) {
            q = curve.add_affine(&q, &base);
        }
        if i + 1 < bits {
            // base = 2*base, normalized back to affine so the mixed add
            // stays applicable (oracle only; cost is irrelevant here).
            let d = curve.double(&curve.from_affine(&base));
            base = curve.to_affine(&d);
        }
    }
    curve.to_affine(&q)
}

/// Sliding-window width used by the study's software suite. The paper
/// precomputes `3P` and `5P` and exploits cheap subtraction; we use a
/// plain width-3 sliding window over odd multiples `{P, 3P, 5P, 7P}`, the
/// closest standard formulation (noted in `DESIGN.md`).
pub const WINDOW_WIDTH: usize = 3;

/// Precomputed odd multiples `[P, 3P, 5P, 7P]` for the sliding window.
pub fn precompute_window<C: GroupOps>(curve: &C, p: &C::Aff) -> Vec<C::Aff> {
    let two_p = curve.double(&curve.from_affine(p));
    let two_p_aff = curve.to_affine(&two_p);
    let mut table = Vec::with_capacity(1 << (WINDOW_WIDTH - 1));
    let mut cur = p.clone();
    table.push(cur.clone());
    for _ in 1..(1 << (WINDOW_WIDTH - 1)) {
        let next = curve.add_affine(&curve.from_affine(&cur), &two_p_aff);
        cur = curve.to_affine(&next);
        table.push(cur.clone());
    }
    table
}

/// Left-to-right sliding-window scalar multiplication (§4.1), returning
/// the result and the operation census.
pub fn mul_window_counted<C: GroupOps>(curve: &C, x: &Mp, p: &C::Aff) -> (C::Aff, OpCount) {
    let mut count = OpCount::default();
    if x.is_zero() {
        return (curve.affine_infinity(), count);
    }
    let table = precompute_window(curve, p);
    // Precomputation cost: 1 double + (2^(w-1) - 1) adds, plus the affine
    // normalizations (1 inversion each).
    count.doubles += 1;
    count.adds += table.len() - 1;
    count.inversions += table.len(); // normalizations of the 2P chain
    let mut q = curve.identity();
    let mut i = x.bit_len() as isize - 1;
    while i >= 0 {
        if !x.bit(i as usize) {
            q = curve.double(&q);
            count.doubles += 1;
            i -= 1;
        } else {
            // Take the widest window [j..=i] with bit j set.
            let mut j = (i - (WINDOW_WIDTH as isize - 1)).max(0);
            while !x.bit(j as usize) {
                j += 1;
            }
            let width = (i - j + 1) as usize;
            let mut value = 0usize;
            for b in (j..=i).rev() {
                value = (value << 1) | x.bit(b as usize) as usize;
            }
            for _ in 0..width {
                q = curve.double(&q);
                count.doubles += 1;
            }
            debug_assert!(value % 2 == 1);
            q = curve.add_affine(&q, &table[value / 2]);
            count.adds += 1;
            i = j - 1;
        }
    }
    count.inversions += 1; // final conversion to affine
    (curve.to_affine(&q), count)
}

/// Sliding-window scalar multiplication, result only.
pub fn mul_window<C: GroupOps>(curve: &C, x: &Mp, p: &C::Aff) -> C::Aff {
    mul_window_counted(curve, x, p).0
}

/// Twin scalar multiplication `u1*P + u2*Q` by simultaneous scanning with
/// a precomputed joint point (§4.1). Both multipliers are scanned
/// together one bit at a time; per bit-pair `(b1, b2)` the addend is
/// `P`, `Q`, or `P+Q`. Returns the result and the operation census.
///
/// The paper's variant additionally precomputes `P-Q` and uses signed
/// recoding; the plain Shamir trick here has the same structure and the
/// same headline property (one twin multiplication is cheaper than two
/// single ones). The `P-Q` precomputation is retained so the cost model
/// charges for it, as the paper's implementation does.
pub fn twin_mul_counted<C: GroupOps>(
    curve: &C,
    u1: &Mp,
    p: &C::Aff,
    u2: &Mp,
    q: &C::Aff,
) -> (C::Aff, OpCount) {
    let mut count = OpCount::default();
    // `Q = ±P` degenerates the joint precompute: `Q = P` makes it a
    // doubling (which the mixed-addition formulas cannot express) and
    // `Q = -P` makes it the group identity. Handle both explicitly
    // instead of leaning on the primitives' internal fallbacks — the
    // simulated kernels mirror this dispatch, and an ECDSA verification
    // hits `Q = ±G` for the legitimate keys `d = 1` and `d = n-1`.
    let inf = curve.affine_infinity();
    let p_plus_q = if *q == curve.neg_affine(p) {
        inf.clone()
    } else if *q == *p {
        curve.to_affine(&curve.double(&curve.from_affine(p)))
    } else {
        let t = curve.add_affine(&curve.from_affine(p), q);
        curve.to_affine(&t)
    };
    let p_minus_q = {
        let t = curve.add_affine(&curve.from_affine(p), &curve.neg_affine(q));
        curve.to_affine(&t)
    };
    let _ = &p_minus_q;
    count.adds += 2;
    count.inversions += 2;
    let bits = u1.bit_len().max(u2.bit_len());
    let mut r = curve.identity();
    for i in (0..bits).rev() {
        r = curve.double(&r);
        count.doubles += 1;
        match (u1.bit(i), u2.bit(i)) {
            (false, false) => {}
            (true, false) => {
                r = curve.add_affine(&r, p);
                count.adds += 1;
            }
            (false, true) => {
                r = curve.add_affine(&r, q);
                count.adds += 1;
            }
            // An identity joint addend (Q = -P) makes the (1, 1) step a
            // no-op; skipping keeps the census aligned with the kernels,
            // which branch past the `padd` in that case.
            (true, true) if p_plus_q == inf => {}
            (true, true) => {
                r = curve.add_affine(&r, &p_plus_q);
                count.adds += 1;
            }
        }
    }
    count.inversions += 1;
    (curve.to_affine(&r), count)
}

/// Twin multiplication, result only.
pub fn twin_mul<C: GroupOps>(curve: &C, u1: &Mp, p: &C::Aff, u2: &Mp, q: &C::Aff) -> C::Aff {
    twin_mul_counted(curve, u1, p, u2, q).0
}

impl std::ops::AddAssign for OpCount {
    fn add_assign(&mut self, rhs: OpCount) {
        self.doubles += rhs.doubles;
        self.adds += rhs.adds;
        self.inversions += rhs.inversions;
    }
}

/// Affine + affine addition with full degenerate-case dispatch
/// (infinity operands, `b = ±a`), normalized back to affine. The mixed
/// primitives cannot express these cases, so every table-building path
/// routes through here. Census convention matches [`twin_mul_counted`]'s
/// precompute: an addition or doubling costs one group op plus one
/// inversion (the affine normalization); infinity shortcuts are free.
fn affine_add_counted<C: GroupOps>(
    curve: &C,
    a: &C::Aff,
    b: &C::Aff,
    count: &mut OpCount,
) -> C::Aff {
    let inf = curve.affine_infinity();
    if *a == inf {
        return b.clone();
    }
    if *b == inf {
        return a.clone();
    }
    if *b == curve.neg_affine(a) {
        return inf;
    }
    if *b == *a {
        count.doubles += 1;
        count.inversions += 1;
        return curve.to_affine(&curve.double(&curve.from_affine(a)));
    }
    count.adds += 1;
    count.inversions += 1;
    curve.to_affine(&curve.add_affine(&curve.from_affine(a), b))
}

/// Joint precompute for interleaved (Straus–Shamir) twin multiplication:
/// the 4×4 grid `i·P + j·Q` for `i, j ∈ [0, 4)`, shared across a batch
/// of `(u1, u2)` pairs so its cost is amortized — the service-layer
/// analogue of the per-verification `P+Q` precompute in
/// [`twin_mul_counted`].
pub struct TwinTables<C: GroupOps> {
    /// `grid[i * 4 + j] = i·P + j·Q`; entry 0 is the identity.
    grid: Vec<C::Aff>,
    /// Census of building the grid (charge once per batch).
    pub precompute: OpCount,
}

/// Builds the shared [`TwinTables`] grid for base points `(P, Q)`.
/// Degenerate bases (`Q = ±P`, infinity) collapse grid entries to the
/// identity; the scan skips those entries, so results stay correct.
pub fn twin_tables<C: GroupOps>(curve: &C, p: &C::Aff, q: &C::Aff) -> TwinTables<C> {
    let mut count = OpCount::default();
    let inf = curve.affine_infinity();
    let mut grid = vec![inf; 16];
    for i in 0..4usize {
        for j in 0..4usize {
            if i == 0 && j == 0 {
                continue;
            }
            grid[i * 4 + j] = if j == 0 {
                affine_add_counted(curve, &grid[(i - 1) * 4], p, &mut count)
            } else {
                affine_add_counted(curve, &grid[i * 4 + j - 1], q, &mut count)
            };
        }
    }
    TwinTables {
        grid,
        precompute: count,
    }
}

/// Interleaved twin multiplication `u1·P + u2·Q` against a prebuilt
/// [`TwinTables`] grid: both scalars are scanned two bits per iteration
/// (2 doublings + at most one table addition), half the additions of
/// the bit-at-a-time [`twin_mul_counted`] scan. Returns the result and
/// the census of *this* multiplication (the caller charges
/// [`TwinTables::precompute`] once per batch).
pub fn twin_mul_tabled<C: GroupOps>(
    curve: &C,
    u1: &Mp,
    u2: &Mp,
    tables: &TwinTables<C>,
) -> (C::Aff, OpCount) {
    let mut count = OpCount::default();
    let inf = curve.affine_infinity();
    let bits = u1.bit_len().max(u2.bit_len());
    let digits = bits.div_ceil(2);
    let mut r = curve.identity();
    for d in (0..digits).rev() {
        r = curve.double(&r);
        r = curve.double(&r);
        count.doubles += 2;
        let hi = 2 * d + 1;
        let lo = 2 * d;
        let i = ((u1.bit(hi) as usize) << 1) | u1.bit(lo) as usize;
        let j = ((u2.bit(hi) as usize) << 1) | u2.bit(lo) as usize;
        let entry = &tables.grid[i * 4 + j];
        // Identity entries (digit pair zero, or a degenerate base
        // collapsed `i·P + j·Q`): skip, as the mixed add cannot take an
        // infinity operand.
        if (i, j) != (0, 0) && *entry != inf {
            r = curve.add_affine(&r, entry);
            count.adds += 1;
        }
    }
    count.inversions += 1;
    (curve.to_affine(&r), count)
}

/// Batched twin multiplication: computes `u1·P + u2·Q` for every pair,
/// building the joint [`TwinTables`] grid once. Returns the results in
/// input order plus the *total* census including the shared precompute
/// — the amortization the service layer's batch verification banks on.
pub fn twin_mul_batch<C: GroupOps>(
    curve: &C,
    p: &C::Aff,
    q: &C::Aff,
    pairs: &[(Mp, Mp)],
) -> (Vec<C::Aff>, OpCount) {
    let tables = twin_tables(curve, p, q);
    let mut count = tables.precompute;
    let mut out = Vec::with_capacity(pairs.len());
    for (u1, u2) in pairs {
        let (r, c) = twin_mul_tabled(curve, u1, u2, &tables);
        count += c;
        out.push(r);
    }
    (out, count)
}

/// Straus interleaved multi-scalar multiplication `Σ kᵢ·Pᵢ` with
/// per-point width-2 tables `[P, 2P, 3P]` and one shared doubling
/// chain — the workhorse of random-linear-combination batch
/// verification, where the term count is small (two fixed points plus
/// one `R` hint per signature) but a naive sum of single
/// multiplications would repeat the doubling chain per term.
pub fn msm_counted<C: GroupOps>(curve: &C, terms: &[(Mp, C::Aff)]) -> (C::Aff, OpCount) {
    let mut count = OpCount::default();
    let inf = curve.affine_infinity();
    let live: Vec<&(Mp, C::Aff)> = terms
        .iter()
        .filter(|(k, pt)| !k.is_zero() && *pt != inf)
        .collect();
    let mut tables: Vec<[C::Aff; 3]> = Vec::with_capacity(live.len());
    for (_, pt) in &live {
        let two = affine_add_counted(curve, pt, pt, &mut count);
        let three = affine_add_counted(curve, &two, pt, &mut count);
        tables.push([pt.clone(), two, three]);
    }
    let bits = live.iter().map(|(k, _)| k.bit_len()).max().unwrap_or(0);
    let digits = bits.div_ceil(2);
    let mut r = curve.identity();
    for d in (0..digits).rev() {
        r = curve.double(&r);
        r = curve.double(&r);
        count.doubles += 2;
        for (table, (k, _)) in tables.iter().zip(&live) {
            let digit = ((k.bit(2 * d + 1) as usize) << 1) | k.bit(2 * d) as usize;
            if digit != 0 {
                let entry = &table[digit - 1];
                if *entry != inf {
                    r = curve.add_affine(&r, entry);
                    count.adds += 1;
                }
            }
        }
    }
    count.inversions += 1;
    (curve.to_affine(&r), count)
}

/// Lopez–Dahab **Montgomery ladder** (x-coordinate-only) scalar
/// multiplication for binary curves — the algorithm the paper evaluated
/// for Billie and found more costly than sliding windows (§4.1,
/// Fig 7.14). Returns `k*P` in affine coordinates plus the census
/// (each ladder step counts as 1 double + 1 add).
///
/// # Panics
///
/// Panics if `p` is the point at infinity.
pub fn montgomery_ladder_2m(
    curve: &BinaryCurve,
    k: &Mp,
    p: &AffinePoint2m,
) -> (AffinePoint2m, OpCount) {
    let f = curve.field();
    let mut count = OpCount::default();
    let px = match p {
        AffinePoint2m::Infinity => panic!("ladder base point must be finite"),
        AffinePoint2m::Point { x, .. } => x.clone(),
    };
    if k.is_zero() {
        return (AffinePoint2m::Infinity, count);
    }
    if k.bit_len() == 1 {
        return (p.clone(), count);
    }
    // (X1, Z1) = P ; (X2, Z2) = 2P
    let mut x1 = px.clone();
    let mut z1 = f.one();
    let mut x2 = f.add(&f.sqr(&f.sqr(&px)), curve.b()); // x^4 + b
    let mut z2 = f.sqr(&px);
    for i in (0..k.bit_len() - 1).rev() {
        let bit = k.bit(i);
        if bit {
            std::mem::swap(&mut x1, &mut x2);
            std::mem::swap(&mut z1, &mut z2);
        }
        // Madd into (x2, z2): T = (X1 Z2 + X2 Z1)^2 ; X = x*T + X1Z2 * X2Z1
        let a_t = f.mul(&x1, &z2);
        let b_t = f.mul(&x2, &z1);
        let t = f.sqr(&f.add(&a_t, &b_t));
        x2 = f.add(&f.mul(&px, &t), &f.mul(&a_t, &b_t));
        z2 = t;
        // Mdouble (x1, z1): Z = X^2 Z^2, X = X^4 + b Z^4
        let xx = f.sqr(&x1);
        let zz = f.sqr(&z1);
        z1 = f.mul(&xx, &zz);
        x1 = f.add(&f.sqr(&xx), &f.mul(curve.b(), &f.sqr(&zz)));
        if bit {
            std::mem::swap(&mut x1, &mut x2);
            std::mem::swap(&mut z1, &mut z2);
        }
        count.doubles += 1;
        count.adds += 1;
    }
    // Recover the affine point. x(kP) = X1/Z1, x((k+1)P) = X2/Z2.
    if z1.is_zero() {
        return (AffinePoint2m::Infinity, count);
    }
    let xk = f.mul(&x1, &f.inv(&z1).expect("z1 != 0"));
    count.inversions += 1;
    if z2.is_zero() {
        // kP = -P: same x as P, y = x + y.
        return (curve.neg(p), count);
    }
    let xk1 = f.mul(&x2, &f.inv(&z2).expect("z2 != 0"));
    count.inversions += 1;
    // Two y candidates solve the curve equation at xk; pick the one for
    // which (xk, y) + P lands on x((k+1)P).
    for y in y_candidates(curve, &xk) {
        let cand = AffinePoint2m::new(xk.clone(), y);
        if !curve.is_on_curve(&cand) {
            continue;
        }
        let sum = curve.affine_add(&cand, p);
        if sum.x() == Some(&xk1) {
            return (cand, count);
        }
    }
    // Unreachable for valid inputs; fall back to the oracle.
    (mul_binary(curve, k, p), count)
}

fn y_candidates(
    curve: &BinaryCurve,
    x: &ule_mpmath::f2m::F2mElement,
) -> Vec<ule_mpmath::f2m::F2mElement> {
    let f = curve.field();
    if x.is_zero() {
        return Vec::new();
    }
    let xinv2 = f.sqr(&f.inv(x).expect("x != 0"));
    let c = f.add(&f.add(x, curve.a()), &f.mul(curve.b(), &xinv2));
    match curve.solve_quadratic(&c) {
        Some(z) => {
            let y = f.mul(x, &z);
            let y2 = f.add(&y, x);
            vec![y, y2]
        }
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ule_mpmath::f2m::BinaryField;
    use ule_mpmath::fp::PrimeField;

    fn tiny_prime() -> PrimeCurve {
        let f = PrimeField::new("GF(97)", &Mp::from_u64(97));
        let a = f.from_u64(2);
        let b = f.from_u64(3);
        let gx = f.from_u64(0);
        let gy = f.from_u64(10);
        PrimeCurve::new(f, a, b, gx, gy)
    }

    fn tiny_binary() -> BinaryCurve {
        let f = BinaryField::new("GF(2^7)", 7, &[1, 0]);
        let a = f.one();
        let b = f.one();
        let c = BinaryCurve::new(f.clone(), a.clone(), b.clone(), f.one(), f.one());
        let g = c.find_point(1);
        BinaryCurve::new(f, a, b, g.x().unwrap().clone(), g.y().unwrap().clone())
    }

    #[test]
    fn window_matches_binary_prime() {
        let c = tiny_prime();
        let g = c.generator();
        for k in [1u64, 2, 3, 7, 12, 31, 97, 1000, 65537, 0xdead_beef] {
            let k = Mp::from_u64(k);
            assert_eq!(mul_window(&c, &k, &g), mul_binary(&c, &k, &g), "k={k}");
        }
    }

    #[test]
    fn window_matches_binary_2m() {
        let c = tiny_binary();
        let g = c.generator();
        for k in [1u64, 2, 3, 5, 19, 101, 4096, 999_983] {
            let k = Mp::from_u64(k);
            assert_eq!(mul_window(&c, &k, &g), mul_binary(&c, &k, &g), "k={k}");
        }
    }

    #[test]
    fn zero_scalar_gives_identity() {
        let c = tiny_prime();
        let g = c.generator();
        assert!(mul_window(&c, &Mp::zero(), &g).is_infinity());
        let cb = tiny_binary();
        let gb = cb.generator();
        assert!(mul_window(&cb, &Mp::zero(), &gb).is_infinity());
    }

    #[test]
    fn twin_matches_separate() {
        let c = tiny_prime();
        let g = c.generator();
        let q = mul_binary(&c, &Mp::from_u64(5), &g);
        for (u1, u2) in [(3u64, 4u64), (1, 1), (100, 7), (0, 9), (9, 0), (255, 254)] {
            let (u1, u2) = (Mp::from_u64(u1), Mp::from_u64(u2));
            let lhs = twin_mul(&c, &u1, &g, &u2, &q);
            let a = mul_binary(&c, &u1, &g);
            let b = mul_binary(&c, &u2, &q);
            let rhs = c.affine_add(&a, &b);
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn twin_matches_separate_2m() {
        let c = tiny_binary();
        let g = c.generator();
        let q = mul_binary(&c, &Mp::from_u64(3), &g);
        for (u1, u2) in [(3u64, 4u64), (17, 29), (64, 63)] {
            let (u1, u2) = (Mp::from_u64(u1), Mp::from_u64(u2));
            let lhs = twin_mul(&c, &u1, &g, &u2, &q);
            let rhs = c.affine_add(&mul_binary(&c, &u1, &g), &mul_binary(&c, &u2, &q));
            assert_eq!(lhs, rhs);
        }
    }

    /// `Q = ±P` and zero multipliers: the degenerate cases the joint
    /// precompute and the (1, 1) scan step must dispatch explicitly.
    /// Runs on both families; every case is checked against two
    /// independent single multiplications.
    #[test]
    fn twin_degenerate_points_prime() {
        let c = tiny_prime();
        let g = c.generator();
        let neg_g = c.neg_affine(&g);
        for q in [g.clone(), neg_g] {
            for (u1, u2) in [
                (3u64, 1u64),
                (1, 1),
                (7, 7),
                (0, 5),
                (5, 0),
                (0, 0),
                (21, 13),
            ] {
                let (u1, u2) = (Mp::from_u64(u1), Mp::from_u64(u2));
                let lhs = twin_mul(&c, &u1, &g, &u2, &q);
                let rhs = c.affine_add(&mul_binary(&c, &u1, &g), &mul_binary(&c, &u2, &q));
                assert_eq!(lhs, rhs, "u1={u1} u2={u2} q={q:?}");
            }
        }
    }

    #[test]
    fn twin_degenerate_points_2m() {
        let c = tiny_binary();
        let g = c.generator();
        let neg_g = c.neg_affine(&g);
        for q in [g.clone(), neg_g] {
            for (u1, u2) in [
                (3u64, 1u64),
                (1, 1),
                (7, 7),
                (0, 5),
                (5, 0),
                (0, 0),
                (21, 13),
            ] {
                let (u1, u2) = (Mp::from_u64(u1), Mp::from_u64(u2));
                let lhs = twin_mul(&c, &u1, &g, &u2, &q);
                let rhs = c.affine_add(&mul_binary(&c, &u1, &g), &mul_binary(&c, &u2, &q));
                assert_eq!(lhs, rhs, "u1={u1} u2={u2} q={q:?}");
            }
        }
    }

    /// Mid-scan equal-point addition: with `Q = P`, `u1 = 3`, `u2 = 1`
    /// the accumulator equals the joint addend `2P` when the (1, 1) bit
    /// fires, forcing the addition primitive through its doubling
    /// fallback (`3P + P = 4P`).
    #[test]
    fn twin_equal_point_addend_mid_scan() {
        let c = tiny_prime();
        let g = c.generator();
        let lhs = twin_mul(&c, &Mp::from_u64(3), &g, &Mp::one(), &g);
        assert_eq!(lhs, mul_window(&c, &Mp::from_u64(4), &g));
    }

    /// The batched interleaved scan must agree with two independent
    /// single multiplications for every pair, on both families,
    /// including degenerate bases `Q = ±P`.
    #[test]
    fn twin_batch_matches_separate() {
        let pairs: Vec<(Mp, Mp)> = [
            (3u64, 4u64),
            (1, 1),
            (100, 7),
            (0, 9),
            (9, 0),
            (0, 0),
            (255, 254),
            (65535, 12345),
        ]
        .iter()
        .map(|&(a, b)| (Mp::from_u64(a), Mp::from_u64(b)))
        .collect();
        let c = tiny_prime();
        let g = c.generator();
        for q in [
            mul_binary(&c, &Mp::from_u64(5), &g),
            g.clone(),
            c.neg_affine(&g),
        ] {
            let (results, ops) = twin_mul_batch(&c, &g, &q, &pairs);
            assert_eq!(results.len(), pairs.len());
            for ((u1, u2), lhs) in pairs.iter().zip(&results) {
                let rhs = c.affine_add(&mul_binary(&c, u1, &g), &mul_binary(&c, u2, &q));
                assert_eq!(*lhs, rhs, "u1={u1} u2={u2}");
            }
            assert!(ops.doubles > 0 && ops.adds > 0);
        }
        let cb = tiny_binary();
        let gb = cb.generator();
        let qb = mul_binary(&cb, &Mp::from_u64(3), &gb);
        let (results, _) = twin_mul_batch(&cb, &gb, &qb, &pairs);
        for ((u1, u2), lhs) in pairs.iter().zip(&results) {
            let rhs = cb.affine_add(&mul_binary(&cb, u1, &gb), &mul_binary(&cb, u2, &qb));
            assert_eq!(*lhs, rhs, "u1={u1} u2={u2}");
        }
    }

    /// Amortization: per verification, the two-bit tabled scan must
    /// beat the bit-at-a-time `twin_mul_counted` on additions once the
    /// grid cost is spread over a 16-element batch.
    #[test]
    fn twin_batch_amortizes_precompute() {
        let c = tiny_prime();
        let g = c.generator();
        let q = mul_binary(&c, &Mp::from_u64(7), &g);
        let k = Mp::from_u64(0xffff_ffff);
        let pairs: Vec<(Mp, Mp)> = (0..16).map(|_| (k.clone(), k.clone())).collect();
        let (_, batch) = twin_mul_batch(&c, &g, &q, &pairs);
        let (_, single) = twin_mul_counted(&c, &k, &g, &k, &q);
        let weigh = |o: &OpCount| 8 * o.doubles + 11 * o.adds + 80 * o.inversions;
        assert!(
            weigh(&batch) < 16 * weigh(&single),
            "batched {batch:?} must beat 16 x {single:?}"
        );
    }

    /// Straus MSM must match the sum of independent multiplications,
    /// including zero scalars, infinity points, and the empty sum.
    #[test]
    fn msm_matches_separate() {
        let c = tiny_prime();
        let g = c.generator();
        let p2 = mul_binary(&c, &Mp::from_u64(5), &g);
        let p3 = mul_binary(&c, &Mp::from_u64(11), &g);
        let terms = vec![
            (Mp::from_u64(3), g.clone()),
            (Mp::from_u64(0), p2.clone()),
            (Mp::from_u64(97), p3.clone()),
            (Mp::from_u64(41), c.affine_infinity()),
            (Mp::from_u64(0xdead_beef), p2.clone()),
        ];
        let (lhs, ops) = msm_counted(&c, &terms);
        let mut rhs = c.affine_infinity();
        for (k, pt) in &terms {
            rhs = c.affine_add(&rhs, &mul_binary(&c, k, pt));
        }
        assert_eq!(lhs, rhs);
        assert!(ops.doubles > 0);
        let (empty, _) = msm_counted::<PrimeCurve>(&c, &[]);
        assert!(empty.is_infinity());

        let cb = tiny_binary();
        let gb = cb.generator();
        let qb = mul_binary(&cb, &Mp::from_u64(9), &gb);
        let terms2 = vec![
            (Mp::from_u64(29), gb.clone()),
            (Mp::from_u64(61), qb.clone()),
            (Mp::from_u64(7), cb.neg_affine(&gb)),
        ];
        let (lhs2, _) = msm_counted(&cb, &terms2);
        let mut rhs2 = cb.affine_infinity();
        for (k, pt) in &terms2 {
            rhs2 = cb.affine_add(&rhs2, &mul_binary(&cb, k, pt));
        }
        assert_eq!(lhs2, rhs2);
    }

    /// Exhaustive small-scalar sweep of the tabled scan against the
    /// oracle: every `(u1, u2)` in a 17×17 grid, both families.
    #[test]
    fn twin_tabled_exhaustive_small_scalars() {
        let c = tiny_prime();
        let g = c.generator();
        let q = mul_binary(&c, &Mp::from_u64(3), &g);
        let tables = twin_tables(&c, &g, &q);
        for u1 in 0u64..17 {
            for u2 in 0u64..17 {
                let (u1m, u2m) = (Mp::from_u64(u1), Mp::from_u64(u2));
                let (lhs, _) = twin_mul_tabled(&c, &u1m, &u2m, &tables);
                let rhs = c.affine_add(&mul_binary(&c, &u1m, &g), &mul_binary(&c, &u2m, &q));
                assert_eq!(lhs, rhs, "u1={u1} u2={u2}");
            }
        }
    }

    #[test]
    fn ladder_matches_window() {
        let c = tiny_binary();
        let g = c.generator();
        for k in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 31, 63, 64, 100, 121] {
            let k = Mp::from_u64(k);
            let (ladder, _) = montgomery_ladder_2m(&c, &k, &g);
            let window = mul_window(&c, &k, &g);
            assert_eq!(ladder, window, "k={k}");
        }
    }

    #[test]
    fn op_counts_are_sane() {
        let c = tiny_prime();
        let g = c.generator();
        let k = Mp::from_u64(0xffff_ffff); // 32 bits of ones
        let (_, count) = mul_window_counted(&c, &k, &g);
        // ~bits doubles, ~bits/(w+1) adds plus precomputation
        assert!(count.doubles >= 32 && count.doubles <= 40, "{count:?}");
        assert!(count.adds >= 8 && count.adds <= 16, "{count:?}");
        let (_, twin) = twin_mul_counted(&c, &k, &g, &k, &g);
        assert_eq!(twin.doubles, 32);
        assert!(twin.adds <= 32 + 2);
    }
}
