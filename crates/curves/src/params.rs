//! Curve domain parameters for the ten fields of the design-space study.
//!
//! Prime curves are the NIST `P-*` curves over the generalized-Mersenne
//! primes of eq. 4.3–4.7. Binary curves are Koblitz curves
//! (`y^2 + xy = x^3 + a x^2 + 1`, `a ∈ {0, 1}`) over the NIST binary
//! fields of eq. 4.8–4.12 — the same fields the paper evaluates; see
//! `DESIGN.md` for why Koblitz parameters substitute for the `B-*` sets
//! (the energy results depend only on the field, and Koblitz group orders
//! can be **derived from scratch** via the Lucas sequence of the Frobenius
//! trace, removing any dependence on embedded magic constants).
//!
//! Every parameter set is *self-validated* by [`Curve::validate`]:
//! generator on the curve, group order a probable prime in the Hasse
//! interval, and `n·G = ∞`.

use crate::binary::BinaryCurve;
use crate::montgomery::MontCurve;
use crate::prime::PrimeCurve;
use crate::scalar;
use ule_mpmath::f2m::BinaryField;
use ule_mpmath::fp::PrimeField;
use ule_mpmath::mp::Mp;
use ule_mpmath::nist::{NistBinary, NistPrime};
use ule_mpmath::xprime::XPrime;

/// How a parameter set was obtained.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provenance {
    /// Standardized NIST constants, embedded and self-validated.
    Nist,
    /// Derived at construction time from first principles (Koblitz group
    /// order via the Lucas sequence; generator from a small-x point).
    Derived,
}

/// Identifier for the ten curves of the study, plus the two RFC 7748
/// Montgomery curves of the ladder subsystem.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum CurveId {
    P192,
    P224,
    P256,
    P384,
    P521,
    K163,
    K233,
    K283,
    K409,
    K571,
    X25519,
    X448,
}

impl CurveId {
    /// All ten curves, primes first.
    pub const ALL: [CurveId; 10] = [
        CurveId::P192,
        CurveId::P224,
        CurveId::P256,
        CurveId::P384,
        CurveId::P521,
        CurveId::K163,
        CurveId::K233,
        CurveId::K283,
        CurveId::K409,
        CurveId::K571,
    ];

    /// The five prime curves in key-size order.
    pub const PRIMES: [CurveId; 5] = [
        CurveId::P192,
        CurveId::P224,
        CurveId::P256,
        CurveId::P384,
        CurveId::P521,
    ];

    /// The five binary curves in key-size order.
    pub const BINARY: [CurveId; 5] = [
        CurveId::K163,
        CurveId::K233,
        CurveId::K283,
        CurveId::K409,
        CurveId::K571,
    ];

    /// The two RFC 7748 Montgomery-ladder curves. Deliberately *not*
    /// part of [`CurveId::ALL`]: the study's ECDSA corpus iterates
    /// `ALL`, and the X-curves support only the ladder workloads.
    pub const XCURVES: [CurveId; 2] = [CurveId::X25519, CurveId::X448];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            CurveId::P192 => "P-192",
            CurveId::P224 => "P-224",
            CurveId::P256 => "P-256",
            CurveId::P384 => "P-384",
            CurveId::P521 => "P-521",
            CurveId::K163 => "K-163",
            CurveId::K233 => "K-233",
            CurveId::K283 => "K-283",
            CurveId::K409 => "K-409",
            CurveId::K571 => "K-571",
            CurveId::X25519 => "X25519",
            CurveId::X448 => "X448",
        }
    }

    /// Field size in bits (the "key size" axis of every figure).
    pub fn bits(self) -> usize {
        match self {
            CurveId::P192 => 192,
            CurveId::P224 => 224,
            CurveId::P256 => 256,
            CurveId::P384 => 384,
            CurveId::P521 => 521,
            CurveId::K163 => 163,
            CurveId::K233 => 233,
            CurveId::K283 => 283,
            CurveId::K409 => 409,
            CurveId::K571 => 571,
            CurveId::X25519 => 255,
            CurveId::X448 => 448,
        }
    }

    /// True for the GF(2^m) curves.
    pub fn is_binary(self) -> bool {
        matches!(
            self,
            CurveId::K163 | CurveId::K233 | CurveId::K283 | CurveId::K409 | CurveId::K571
        )
    }

    /// True for the RFC 7748 Montgomery (x-only ladder) curves.
    pub fn is_mont(self) -> bool {
        matches!(self, CurveId::X25519 | CurveId::X448)
    }

    /// The curve of equivalent security this curve is paired with:
    /// prime ↔ binary per Fig 7.7/7.9, and Montgomery → prime for the
    /// handshake composition (an X25519 key agreement is certified with
    /// a ~128-bit ECDSA signature, i.e. P-256; X448 with P-521).
    pub fn security_pair(self) -> CurveId {
        match self {
            CurveId::P192 => CurveId::K163,
            CurveId::P224 => CurveId::K233,
            CurveId::P256 => CurveId::K283,
            CurveId::P384 => CurveId::K409,
            CurveId::P521 => CurveId::K571,
            CurveId::K163 => CurveId::P192,
            CurveId::K233 => CurveId::P224,
            CurveId::K283 => CurveId::P256,
            CurveId::K409 => CurveId::P384,
            CurveId::K571 => CurveId::P521,
            CurveId::X25519 => CurveId::P256,
            CurveId::X448 => CurveId::P521,
        }
    }

    /// The RFC 7748 ladder prime underlying a Montgomery curve.
    ///
    /// # Panics
    ///
    /// Panics for non-Montgomery curves.
    pub fn xprime(self) -> XPrime {
        match self {
            CurveId::X25519 => XPrime::P25519,
            CurveId::X448 => XPrime::P448,
            _ => panic!("{} is not a Montgomery curve", self.name()),
        }
    }

    /// The NIST prime underlying a prime curve.
    ///
    /// # Panics
    ///
    /// Panics for binary curves.
    pub fn nist_prime(self) -> NistPrime {
        match self {
            CurveId::P192 => NistPrime::P192,
            CurveId::P224 => NistPrime::P224,
            CurveId::P256 => NistPrime::P256,
            CurveId::P384 => NistPrime::P384,
            CurveId::P521 => NistPrime::P521,
            _ => panic!("{} is not a prime curve", self.name()),
        }
    }

    /// The NIST binary field underlying a binary curve.
    ///
    /// # Panics
    ///
    /// Panics for prime curves.
    pub fn nist_binary(self) -> NistBinary {
        match self {
            CurveId::K163 => NistBinary::B163,
            CurveId::K233 => NistBinary::B233,
            CurveId::K283 => NistBinary::B283,
            CurveId::K409 => NistBinary::B409,
            CurveId::K571 => NistBinary::B571,
            _ => panic!("{} is not a binary curve", self.name()),
        }
    }

    /// Constructs the full curve context (field contexts, generator,
    /// group order, mod-n arithmetic).
    pub fn curve(self) -> Curve {
        Curve::new(self)
    }
}

/// The curve-family-specific part of a [`Curve`].
// Variant sizes differ (binary params carry more tables), but curves are
// built once and borrowed everywhere — boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum CurveKind {
    /// A prime-field short-Weierstraß curve.
    Prime(PrimeCurve),
    /// A binary-field Koblitz curve.
    Binary(BinaryCurve),
    /// An RFC 7748 Montgomery curve (x-only ladder).
    Mont(MontCurve),
}

/// A fully-constructed curve: group structure plus the protocol-arithmetic
/// context modulo the group order (§4.1).
#[derive(Clone, Debug)]
pub struct Curve {
    id: CurveId,
    kind: CurveKind,
    n: Mp,
    cofactor: u64,
    order_field: PrimeField,
    provenance: Provenance,
}

impl Curve {
    /// Builds the named curve.
    pub fn new(id: CurveId) -> Self {
        if id.is_binary() {
            Self::new_koblitz(id)
        } else if id.is_mont() {
            Self::new_mont(id)
        } else {
            Self::new_prime(id)
        }
    }

    fn new_mont(id: CurveId) -> Self {
        let curve = MontCurve::new(id.xprime());
        // RFC 7748 subgroup orders: ℓ = 2^252 + δ for curve25519 and
        // ℓ = 2^446 − δ' for curve448; embedded as hex like the NIST
        // constants, self-validated (probable prime + Hasse) below.
        let (n_hex, h) = match id {
            CurveId::X25519 => (
                "1000000000000000000000000000000014def9dea2f79cd65812631a5cf5d3ed",
                8u64,
            ),
            CurveId::X448 => (
                "3fffffffffffffffffffffffffffffffffffffffffffffffffffffff\
                 7cca23e9c44edb49aed63690216cc2728dc58f552378c292ab5844f3",
                4u64,
            ),
            _ => unreachable!("only X-curves reach new_mont"),
        };
        let n = Mp::from_hex(n_hex).expect("static hex");
        let order_field = PrimeField::new(&format!("{} order", id.name()), &n);
        Curve {
            id,
            kind: CurveKind::Mont(curve),
            n,
            cofactor: h,
            order_field,
            provenance: Provenance::Nist,
        }
    }

    fn new_prime(id: CurveId) -> Self {
        let field = PrimeField::nist(id.nist_prime());
        let (b_hex, n_hex, gx_hex, gy_hex) = prime_constants(id);
        let a = field.sub(&field.zero(), &field.from_u64(3));
        let b = field.from_mp(&Mp::from_hex(b_hex).expect("static hex"));
        let gx = field.from_mp(&Mp::from_hex(gx_hex).expect("static hex"));
        let gy = field.from_mp(&Mp::from_hex(gy_hex).expect("static hex"));
        let n = Mp::from_hex(n_hex).expect("static hex");
        let curve = PrimeCurve::new(field, a, b, gx, gy);
        let order_field = PrimeField::new(&format!("{} order", id.name()), &n);
        Curve {
            id,
            kind: CurveKind::Prime(curve),
            n,
            cofactor: 1,
            order_field,
            provenance: Provenance::Nist,
        }
    }

    fn new_koblitz(id: CurveId) -> Self {
        let nb = id.nist_binary();
        let field = BinaryField::nist(nb);
        // Koblitz parameters: b = 1; a = 1 for K-163, else 0.
        let a_val = if id == CurveId::K163 { 1u64 } else { 0 };
        let a = field.from_mp(&Mp::from_u64(a_val));
        let b = field.one();
        // Group order from the Frobenius trace Lucas sequence:
        //   #E(GF(2^m)) = 2^m + 1 - V_m,  V_0 = 2, V_1 = t, V_{k+1} = t V_k - 2 V_{k-1}
        // with t = 1 for a = 1 and t = -1 for a = 0.
        let h: u64 = if a_val == 1 { 2 } else { 4 };
        let order = koblitz_order(nb.m(), a_val == 1);
        let (n, rem) = order.div_rem(&Mp::from_u64(h));
        assert!(rem.is_zero(), "cofactor must divide the curve order");
        // Derive a generator: first small-x point, multiplied by the
        // cofactor to land in the prime-order subgroup.
        let mut probe = BinaryCurve::new(
            field.clone(),
            a.clone(),
            b.clone(),
            field.one(),
            field.one(),
        );
        let mut start = 2u64;
        let g = loop {
            let p = probe.find_point(start);
            let mut q = p.clone();
            for _ in 0..h.trailing_zeros() {
                q = probe.affine_double(&q);
            }
            if !q.is_infinity() {
                break q;
            }
            start = p.x().expect("finite").to_mp().low_u64() + 1;
        };
        probe = BinaryCurve::new(
            field,
            a,
            b,
            g.x().expect("finite").clone(),
            g.y().expect("finite").clone(),
        );
        let order_field = PrimeField::new(&format!("{} order", id.name()), &n);
        Curve {
            id,
            kind: CurveKind::Binary(probe),
            n,
            cofactor: h,
            order_field,
            provenance: Provenance::Derived,
        }
    }

    /// The curve identifier.
    pub fn id(&self) -> CurveId {
        self.id
    }

    /// The family-specific group implementation.
    pub fn kind(&self) -> &CurveKind {
        &self.kind
    }

    /// The prime-curve implementation.
    ///
    /// # Panics
    ///
    /// Panics for binary curves.
    pub fn prime(&self) -> &PrimeCurve {
        match &self.kind {
            CurveKind::Prime(c) => c,
            CurveKind::Binary(_) => panic!("{} is a binary curve", self.id.name()),
            CurveKind::Mont(_) => panic!("{} is a Montgomery curve", self.id.name()),
        }
    }

    /// The binary-curve implementation.
    ///
    /// # Panics
    ///
    /// Panics for prime curves.
    pub fn binary(&self) -> &BinaryCurve {
        match &self.kind {
            CurveKind::Binary(c) => c,
            CurveKind::Prime(_) => panic!("{} is a prime curve", self.id.name()),
            CurveKind::Mont(_) => panic!("{} is a Montgomery curve", self.id.name()),
        }
    }

    /// The Montgomery-curve implementation.
    ///
    /// # Panics
    ///
    /// Panics for non-Montgomery curves.
    pub fn mont(&self) -> &MontCurve {
        match &self.kind {
            CurveKind::Mont(c) => c,
            _ => panic!("{} is not a Montgomery curve", self.id.name()),
        }
    }

    /// The (prime) order of the base point.
    pub fn n(&self) -> &Mp {
        &self.n
    }

    /// The cofactor `h = #E / n`.
    pub fn cofactor(&self) -> u64 {
        self.cofactor
    }

    /// Arithmetic context modulo the group order — the "protocol
    /// arithmetic" field of §4.1, which stays on Pete in every
    /// configuration.
    pub fn order_field(&self) -> &PrimeField {
        &self.order_field
    }

    /// Where the parameters came from.
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }

    /// Full self-validation of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first failed check: generator on the
    /// curve, `n` probably prime, `h·n` in the Hasse interval, and
    /// `n·G = ∞`.
    pub fn validate(&self) -> Result<(), String> {
        let id = self.id.name();
        if !self.n.is_probable_prime(8) {
            return Err(format!("{id}: group order is not prime"));
        }
        // Hasse bound: |h*n - (q + 1)| <= 2 sqrt(q), with q the actual
        // field order (the prime p, or exactly 2^m for binary fields).
        let q_bits = self.id.bits();
        let q = match &self.kind {
            CurveKind::Prime(c) => c.field().modulus().clone(),
            CurveKind::Binary(c) => Mp::one().shl(c.field().m()),
            CurveKind::Mont(c) => c.prime().modulus(),
        };
        let hn = self.n.mul(&Mp::from_u64(self.cofactor));
        let q_plus_1 = q.add(&Mp::one());
        let diff = if hn >= q_plus_1 {
            hn.sub(&q_plus_1)
        } else {
            q_plus_1.sub(&hn)
        };
        // Allow a loose 2^(bits/2 + 2) bound (covers 2 sqrt(q) for
        // non-power-of-two primes too).
        if diff.bit_len() > q_bits / 2 + 2 {
            return Err(format!("{id}: order violates the Hasse bound"));
        }
        match &self.kind {
            CurveKind::Prime(c) => {
                let g = c.generator();
                if !c.is_on_curve(&g) {
                    return Err(format!("{id}: generator not on curve"));
                }
                let ng = scalar::mul_window(c, &self.n, &g);
                if !ng.is_infinity() {
                    return Err(format!("{id}: n*G != infinity"));
                }
            }
            CurveKind::Binary(c) => {
                let g = c.generator();
                if !c.is_on_curve(&g) {
                    return Err(format!("{id}: generator not on curve"));
                }
                let ng = scalar::mul_window(c, &self.n, &g);
                if !ng.is_infinity() {
                    return Err(format!("{id}: n*G != infinity"));
                }
            }
            CurveKind::Mont(c) => {
                // x-only ladder: "n·G = ∞" is not directly expressible
                // (clamping fixes the scalar's top bit), so validate the
                // base abscissa (quadratic-residue check) and that the
                // subgroup has the claimed order: ladder(ℓ + clamped
                // lift) returns to the base u for a scalar ≡ 1 (mod ℓ)
                // in the clamped range.
                if !c.u_on_curve(c.base_u()) {
                    return Err(format!("{id}: base u not on curve"));
                }
                // k = 4ℓ + 1 ≡ 1 (mod ℓ) still fits the fixed ladder
                // width on both curves (4ℓ < 2^255 and < 2^448), so
                // ladder(k, base) must return the base u.
                let k = self.n.mul(&Mp::from_u64(4)).add(&Mp::one());
                let back = c.ladder(&k, c.base_u());
                if back != *c.base_u() {
                    return Err(format!("{id}: (4n+1)*G != G on the ladder"));
                }
            }
        }
        Ok(())
    }
}

/// Koblitz curve order `#E(GF(2^m)) = 2^m + 1 - V_m` via the Lucas
/// sequence `V_0 = 2, V_1 = t, V_{k+1} = t·V_k - 2·V_{k-1}` with trace
/// `t = 1` when `a = 1` and `t = -1` when `a = 0`.
fn koblitz_order(m: usize, a_is_one: bool) -> Mp {
    // Signed arithmetic on (sign, magnitude).
    #[derive(Clone)]
    struct S {
        neg: bool,
        mag: Mp,
    }
    fn add(x: &S, y: &S) -> S {
        if x.neg == y.neg {
            S {
                neg: x.neg,
                mag: x.mag.add(&y.mag),
            }
        } else if x.mag >= y.mag {
            S {
                neg: x.neg,
                mag: x.mag.sub(&y.mag),
            }
        } else {
            S {
                neg: y.neg,
                mag: y.mag.sub(&x.mag),
            }
        }
    }
    fn neg(x: &S) -> S {
        S {
            neg: !x.neg && !x.mag.is_zero(),
            mag: x.mag.clone(),
        }
    }
    let t_pos = a_is_one;
    let mut v_prev = S {
        neg: false,
        mag: Mp::from_u64(2),
    }; // V_0
    let mut v = S {
        neg: !t_pos,
        mag: Mp::one(),
    }; // V_1 = t
    for _ in 1..m {
        // V_{k+1} = t*V_k - 2*V_{k-1}
        let tv = if t_pos { v.clone() } else { neg(&v) };
        let two_prev = S {
            neg: v_prev.neg,
            mag: v_prev.mag.shl(1),
        };
        let next = add(&tv, &neg(&two_prev));
        v_prev = v;
        v = next;
    }
    // order = 2^m + 1 - V_m
    let base = Mp::one().shl(m).add(&Mp::one());
    if v.neg {
        base.add(&v.mag)
    } else {
        base.sub(&v.mag)
    }
}

/// `(b, n, Gx, Gy)` hex constants for the NIST prime curves (all with
/// `a = p - 3`, cofactor 1). Self-validated by [`Curve::validate`].
fn prime_constants(id: CurveId) -> (&'static str, &'static str, &'static str, &'static str) {
    match id {
        CurveId::P192 => (
            "64210519e59c80e70fa7e9ab72243049feb8deecc146b9b1",
            "ffffffffffffffffffffffff99def836146bc9b1b4d22831",
            "188da80eb03090f67cbf20eb43a18800f4ff0afd82ff1012",
            "07192b95ffc8da78631011ed6b24cdd573f977a11e794811",
        ),
        CurveId::P224 => (
            "b4050a850c04b3abf54132565044b0b7d7bfd8ba270b39432355ffb4",
            "ffffffffffffffffffffffffffff16a2e0b8f03e13dd29455c5c2a3d",
            "b70e0cbd6bb4bf7f321390b94a03c1d356c21122343280d6115c1d21",
            "bd376388b5f723fb4c22dfe6cd4375a05a07476444d5819985007e34",
        ),
        CurveId::P256 => (
            "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b",
            "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551",
            "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296",
            "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5",
        ),
        CurveId::P384 => (
            "b3312fa7e23ee7e4988e056be3f82d19181d9c6efe8141120314088f5013875ac656398d8a2ed19d2a85c8edd3ec2aef",
            "ffffffffffffffffffffffffffffffffffffffffffffffffc7634d81f4372ddf581a0db248b0a77aecec196accc52973",
            "aa87ca22be8b05378eb1c71ef320ad746e1d3b628ba79b9859f741e082542a385502f25dbf55296c3a545e3872760ab7",
            "3617de4a96262c6f5d9e98bf9292dc29f8f41dbd289a147ce9da3113b5f0b8c00a60b1ce1d7e819d7a431d7c90ea0e5f",
        ),
        CurveId::P521 => (
            "051953eb9618e1c9a1f929a21a0b68540eea2da725b99b315f3b8b489918ef109e156193951ec7e937b1652c0bd3bb1bf073573df883d2c34f1ef451fd46b503f00",
            "1fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffa51868783bf2f966b7fcc0148f709a5d03bb5c9b8899c47aebb6fb71e91386409",
            "c6858e06b70404e9cd9e3ecb662395b4429c648139053fb521f828af606b4d3dbaa14b5e77efe75928fe1dc127a2ffa8de3348b3c1856a429bf97e7e31c2e5bd66",
            "11839296a789a3bc0045c8a5fb42c7d1bd998f54449579b446817afbd17273e662c97ee72995ef42640c550b9013fad0761353c7086a272c24088be94769fd16650",
        ),
        _ => unreachable!("binary curves have derived parameters"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn koblitz_order_k163_matches_published() {
        // The published K-163 subgroup order; our Lucas-derived order must
        // reproduce it exactly (cofactor 2).
        let order = koblitz_order(163, true);
        let n = order.div_rem(&Mp::from_u64(2)).0;
        assert_eq!(n.to_hex(), "4000000000000000000020108a2e0cc0d99f8a5ef");
    }

    #[test]
    fn koblitz_order_k233_matches_published() {
        let order = koblitz_order(233, false);
        let n = order.div_rem(&Mp::from_u64(4)).0;
        assert_eq!(
            n.to_hex(),
            "8000000000000000000000000000069d5bb915bcd46efb1ad5f173abdf"
        );
    }

    #[test]
    fn small_curves_validate() {
        for id in [CurveId::P192, CurveId::K163] {
            let c = id.curve();
            c.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn p256_validates() {
        CurveId::P256.curve().validate().unwrap();
    }

    #[test]
    fn curve_accessors() {
        let c = CurveId::P192.curve();
        assert_eq!(c.id(), CurveId::P192);
        assert_eq!(c.cofactor(), 1);
        assert_eq!(c.provenance(), Provenance::Nist);
        assert_eq!(c.order_field().modulus(), c.n());
        let k = CurveId::K163.curve();
        assert_eq!(k.cofactor(), 2);
        assert_eq!(k.provenance(), Provenance::Derived);
        assert!(k.id().is_binary());
        assert_eq!(k.id().security_pair(), CurveId::P192);
    }

    #[test]
    #[should_panic(expected = "binary curve")]
    fn prime_accessor_panics_on_binary() {
        let c = CurveId::K163.curve();
        let _ = c.prime();
    }

    #[test]
    fn x_curves_validate() {
        for id in CurveId::XCURVES {
            let c = id.curve();
            c.validate().unwrap_or_else(|e| panic!("{e}"));
            assert!(id.is_mont() && !id.is_binary());
            assert_eq!(c.order_field().modulus(), c.n());
            assert!(c.n().is_probable_prime(8));
        }
        assert_eq!(CurveId::X25519.curve().cofactor(), 8);
        assert_eq!(CurveId::X448.curve().cofactor(), 4);
        assert_eq!(CurveId::X25519.security_pair(), CurveId::P256);
        assert_eq!(CurveId::X448.security_pair(), CurveId::P521);
        // The study's ALL corpus stays the ten ECDSA curves.
        assert!(!CurveId::ALL.contains(&CurveId::X25519));
    }

    #[test]
    #[should_panic(expected = "not a Montgomery curve")]
    fn mont_accessor_panics_on_prime() {
        let c = CurveId::P192.curve();
        let _ = c.mont();
    }
}
