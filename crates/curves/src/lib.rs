//! Elliptic-curve cryptography for the ultra-low-energy design-space study.
//!
//! This crate implements the complete ECC/ECDSA computation hierarchy of
//! Fig. 4.1 of the paper, on top of the finite-field arithmetic of
//! `ule-mpmath`:
//!
//! * **finite-field arithmetic** — provided by `ule-mpmath`;
//! * **point addition / doubling** — mixed Jacobian–affine coordinates for
//!   GF(p) curves and mixed Lopez–Dahab–affine coordinates for GF(2^m)
//!   curves, the coordinate systems the paper selects as optimal (§4.1);
//! * **scalar point multiplication** — sliding-window with precomputed odd
//!   multiples for signing, twin (simultaneous) multiplication for
//!   verification, plus the Montgomery ladder evaluated (and rejected) for
//!   the binary coprocessor (§4.1, Fig 7.14);
//! * **ECDSA** — signature and verification, including the protocol
//!   arithmetic modulo the group order (§4.1).
//!
//! A from-scratch [`sha256`] implementation supplies the message digest.
//! Curve domain parameters live in [`params`] and are *self-validated*
//! (generator on curve, group order prime, `n·G = ∞`) rather than trusted.
//!
//! # Example
//!
//! ```
//! use ule_curves::ecdsa::{sign, verify, Keypair};
//! use ule_curves::params::CurveId;
//!
//! let curve = CurveId::P256.curve();
//! let keys = Keypair::derive(&curve, b"quickstart seed");
//! let sig = sign(&curve, &keys, b"attack at dawn", b"nonce seed");
//! assert!(verify(&curve, &keys.public(), b"attack at dawn", &sig));
//! assert!(!verify(&curve, &keys.public(), b"attack at noon", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod ecdsa;
pub mod montgomery;
pub mod params;
pub mod prime;
pub mod scalar;
pub mod sha256;

pub use params::{Curve, CurveId};
