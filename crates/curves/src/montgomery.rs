//! RFC 7748 Montgomery-ladder x-coordinate Diffie–Hellman (X25519/X448).
//!
//! Montgomery curves `v^2 = u^3 + A u^2 + u` admit scalar
//! multiplication on the `u`-coordinate alone via the Montgomery
//! ladder: every bit of the scalar costs exactly the same fixed
//! pattern of field operations (5 mul + 4 sqr + 1 small-constant mul +
//! 8 add/sub), with a **conditional swap** selecting which of the two
//! running points is doubled. This is the *constant-pattern* contract
//! the simulated kernels reproduce:
//!
//! * the ladder executes exactly `bits` iterations regardless of the
//!   scalar value (255 for X25519, 448 for X448),
//! * the cswap is a masked word-level XOR swap
//!   (`mask = 0 − bit; t = mask & (a ^ b); a ^= t; b ^= t`), never a
//!   branch — this module mirrors that exact semantics on host so the
//!   memory-access pattern argument in DESIGN.md is checked, not
//!   asserted,
//! * scalars are **clamped** before use (RFC 7748 §5): X25519 clears
//!   the 3 low bits and bit 255 and sets bit 254; X448 clears the 2
//!   low bits and sets bit 447 — so the iteration count is truly fixed.
//!
//! The all-zero shared secret (peer fed a low-order point) is rejected
//! at this layer, per RFC 7748 §6.1.

use crate::params::CurveId;
use ule_mpmath::fp::{FpElement, PrimeField};
use ule_mpmath::mp::Mp;
use ule_mpmath::xprime::XPrime;
use ule_mpmath::Limb;

/// A Montgomery curve in the RFC 7748 x-only model.
#[derive(Clone, Debug)]
pub struct MontCurve {
    prime: XPrime,
    field: PrimeField,
    a24: FpElement,
    base_u: FpElement,
}

impl MontCurve {
    /// Builds curve25519 or curve448 over its ladder prime.
    pub fn new(prime: XPrime) -> Self {
        let field = PrimeField::new(prime.name(), &prime.modulus());
        let a24 = field.from_u64(prime.a24());
        let base_u = field.from_u64(match prime {
            XPrime::P25519 => 9,
            XPrime::P448 => 5,
        });
        MontCurve {
            prime,
            field,
            a24,
            base_u,
        }
    }

    /// The underlying ladder prime.
    pub fn prime(&self) -> XPrime {
        self.prime
    }

    /// The base field GF(p).
    pub fn field(&self) -> &PrimeField {
        &self.field
    }

    /// The curve `A` coefficient (486662 / 156326).
    pub fn coeff_a(&self) -> u64 {
        self.prime.a24() * 4 + 2
    }

    /// The standard base point's `u`-coordinate (9 / 5).
    pub fn base_u(&self) -> &FpElement {
        &self.base_u
    }

    /// Scalar / coordinate encoding length in bytes (32 / 56).
    pub fn coord_bytes(&self) -> usize {
        match self.prime {
            XPrime::P25519 => 32,
            XPrime::P448 => 56,
        }
    }

    /// Fixed ladder iteration count (255 / 448) — every scalar
    /// multiplication runs exactly this many ladder steps.
    pub fn ladder_bits(&self) -> usize {
        self.prime.bits()
    }

    /// RFC 7748 §5 scalar clamping on the little-endian byte encoding.
    ///
    /// # Panics
    ///
    /// Panics unless `scalar` is exactly [`Self::coord_bytes`] long.
    pub fn clamp(&self, scalar: &[u8]) -> Mp {
        assert_eq!(scalar.len(), self.coord_bytes(), "scalar length");
        let mut b = scalar.to_vec();
        match self.prime {
            XPrime::P25519 => {
                b[0] &= 0xf8;
                b[31] &= 0x7f;
                b[31] |= 0x40;
            }
            XPrime::P448 => {
                b[0] &= 0xfc;
                b[55] |= 0x80;
            }
        }
        mp_from_le_bytes(&b)
    }

    /// RFC 7748 §5 `u`-coordinate decoding: little-endian; X25519 masks
    /// the top bit of the final byte; non-canonical values (≥ p) are
    /// accepted and reduced by the field arithmetic.
    ///
    /// # Panics
    ///
    /// Panics unless `u` is exactly [`Self::coord_bytes`] long.
    pub fn decode_u(&self, u: &[u8]) -> FpElement {
        assert_eq!(u.len(), self.coord_bytes(), "u-coordinate length");
        let mut b = u.to_vec();
        if self.prime == XPrime::P25519 {
            b[31] &= 0x7f;
        }
        self.field.from_mp(&mp_from_le_bytes(&b))
    }

    /// Encodes a field element as the RFC little-endian byte string.
    pub fn encode_u(&self, u: &FpElement) -> Vec<u8> {
        let mut out = vec![0u8; self.coord_bytes()];
        for (i, limb) in u.limbs().iter().enumerate() {
            for j in 0..4 {
                let idx = 4 * i + j;
                if idx < out.len() {
                    out[idx] = (limb >> (8 * j)) as u8;
                }
            }
        }
        out
    }

    /// The Montgomery ladder on an **already-clamped** scalar: exactly
    /// [`Self::ladder_bits`] constant-pattern steps, masked-XOR cswap,
    /// final inversion by Fermat (`z^(p-2)`).
    pub fn ladder(&self, k: &Mp, u: &FpElement) -> FpElement {
        let f = &self.field;
        let x1 = u.clone();
        let mut x2 = f.one();
        let mut z2 = f.zero();
        let mut x3 = u.clone();
        let mut z3 = f.one();
        let mut swap = false;
        for t in (0..self.ladder_bits()).rev() {
            let kt = k.bit(t);
            swap ^= kt;
            cswap(f, swap, &mut x2, &mut x3);
            cswap(f, swap, &mut z2, &mut z3);
            swap = kt;
            // One ladder step (RFC 7748 §5): 5M + 4S + 1 small-constant
            // multiplication + 8 additions/subtractions.
            let a = f.add(&x2, &z2);
            let aa = f.sqr(&a);
            let b = f.sub(&x2, &z2);
            let bb = f.sqr(&b);
            let e = f.sub(&aa, &bb);
            let c = f.add(&x3, &z3);
            let d = f.sub(&x3, &z3);
            let da = f.mul(&d, &a);
            let cb = f.mul(&c, &b);
            let s = f.add(&da, &cb);
            x3 = f.sqr(&s);
            let diff = f.sub(&da, &cb);
            z3 = f.mul(&x1, &f.sqr(&diff));
            x2 = f.mul(&aa, &bb);
            z2 = f.mul(&e, &f.add(&aa, &f.mul(&self.a24, &e)));
        }
        cswap(f, swap, &mut x2, &mut x3);
        cswap(f, swap, &mut z2, &mut z3);
        // RFC semantics: x2 * z2^(p-2); for a low-order input z2 may be
        // zero, and 0^(p-2) = 0 yields the all-zero output the caller
        // rejects (no invertibility check, exactly like the kernel).
        let exp = self.prime.modulus().sub(&Mp::from_u64(2));
        f.mul(&x2, &f.pow(&z2, &exp))
    }

    /// The full RFC 7748 X-function on byte strings: clamp, decode,
    /// ladder, encode. Returns `None` when the shared secret is the
    /// all-zero string (peer's point was low-order) — the §6.1
    /// rejection rule.
    pub fn xdh(&self, scalar: &[u8], u: &[u8]) -> Option<Vec<u8>> {
        let k = self.clamp(scalar);
        let out = self.ladder(&k, &self.decode_u(u));
        if out.is_zero() {
            return None;
        }
        Some(self.encode_u(&out))
    }

    /// Public-key generation: the X-function on the standard base point
    /// (never low-order, so this cannot fail).
    pub fn public_key(&self, scalar: &[u8]) -> Vec<u8> {
        let k = self.clamp(scalar);
        self.encode_u(&self.ladder(&k, &self.base_u))
    }

    /// Checks that `u` is the abscissa of a point on the curve (or its
    /// quadratic twist, which the x-only ladder also handles): used by
    /// the parameter self-validation to confirm the base point lies on
    /// the *curve* — `u^3 + A u^2 + u` must be a quadratic residue.
    pub fn u_on_curve(&self, u: &FpElement) -> bool {
        let f = &self.field;
        let a = f.from_u64(self.coeff_a());
        let u2 = f.sqr(u);
        let rhs = f.add(&f.add(&f.mul(&u2, u), &f.mul(&a, &u2)), u);
        if rhs.is_zero() {
            return true;
        }
        // Euler's criterion: rhs^((p-1)/2) == 1.
        let exp = self.prime.modulus().sub(&Mp::one()).shr(1);
        f.pow(&rhs, &exp) == f.one()
    }

    /// The [`CurveId`] this curve backs.
    pub fn id(&self) -> CurveId {
        match self.prime {
            XPrime::P25519 => CurveId::X25519,
            XPrime::P448 => CurveId::X448,
        }
    }
}

/// Masked word-level conditional swap — the exact operation the
/// simulated kernel performs (`mask = 0 − bit`, XOR-select), executed
/// on host limbs so the host reference shares the kernel's contract
/// rather than merely its result.
fn cswap(f: &PrimeField, bit: bool, a: &mut FpElement, b: &mut FpElement) {
    let mask: Limb = (bit as Limb).wrapping_neg();
    let mut al: Vec<Limb> = a.limbs().to_vec();
    let mut bl: Vec<Limb> = b.limbs().to_vec();
    for (x, y) in al.iter_mut().zip(bl.iter_mut()) {
        let t = mask & (*x ^ *y);
        *x ^= t;
        *y ^= t;
    }
    *a = f.from_limbs(&al);
    *b = f.from_limbs(&bl);
}

/// Little-endian byte string to multi-precision integer.
fn mp_from_le_bytes(b: &[u8]) -> Mp {
    let mut limbs = vec![0 as Limb; b.len().div_ceil(4)];
    for (i, &byte) in b.iter().enumerate() {
        limbs[i / 4] |= (byte as Limb) << (8 * (i % 4));
    }
    Mp::from_limbs(&limbs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn to_hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn x25519_rfc7748_vector_1() {
        let c = MontCurve::new(XPrime::P25519);
        let out = c
            .xdh(
                &hex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4"),
                &hex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c"),
            )
            .unwrap();
        assert_eq!(
            to_hex(&out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn x25519_rfc7748_vector_2_masks_high_bit() {
        // The input u has its top bit set; decode must mask it.
        let c = MontCurve::new(XPrime::P25519);
        let out = c
            .xdh(
                &hex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d"),
                &hex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493"),
            )
            .unwrap();
        assert_eq!(
            to_hex(&out),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    #[test]
    fn x448_rfc7748_vector_1() {
        let c = MontCurve::new(XPrime::P448);
        let out = c
            .xdh(
                &hex("3d262fddf9ec8e88495266fea19a34d28882acef045104d0d1aae121\
                     700a779c984c24f8cdd78fbff44943eba368f54b29259a4f1c600ad3"),
                &hex("06fce640fa3487bfda5f6cf2d5263f8aad88334cbd07437f020f08f9\
                     814dc031ddbdc38c19c6da2583fa5429db94ada18aa7a7fb4ef8a086"),
            )
            .unwrap();
        assert_eq!(
            to_hex(&out),
            "ce3e4ff95a60dc6697da1db1d85e6afbdf79b50a2412d7546d5f239f\
             e14fbaadeb445fc66a01b0779d98223961111e21766282f73dd96b6f"
        );
    }

    #[test]
    fn x448_rfc7748_vector_2() {
        let c = MontCurve::new(XPrime::P448);
        let out = c
            .xdh(
                &hex("203d494428b8399352665ddca42f9de8fef600908e0d461cb021f8c5\
                     38345dd77c3e4806e25f46d3315c44e0a5b4371282dd2c8d5be3095f"),
                &hex("0fbcc2f993cd56d3305b0b7d9e55d4c1a8fb5dbb52f8e9a1e9b6201b\
                     165d015894e56c4d3570bee52fe205e28a78b91cdfbde71ce8d157db"),
            )
            .unwrap();
        assert_eq!(
            to_hex(&out),
            "884a02576239ff7a2f2f63b2db6a9ff37047ac13568e1e30fe63c4a7\
             ad1b3ee3a5700df34321d62077e63633c575c1c954514e99da7c179d"
        );
    }

    #[test]
    fn x25519_iterated_ladder() {
        // RFC 7748 §5.2: k = u = encode(9); iterate k' = X(k, u), u' = k.
        let c = MontCurve::new(XPrime::P25519);
        let mut k = c.encode_u(c.base_u());
        let mut u = k.clone();
        for i in 1..=1000 {
            let next = c.xdh(&k, &u).unwrap();
            u = k;
            k = next;
            if i == 1 {
                assert_eq!(
                    to_hex(&k),
                    "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
                );
            }
        }
        assert_eq!(
            to_hex(&k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        );
    }

    #[test]
    fn x448_iterated_ladder_once() {
        // The full 1000-iteration X448 loop is seconds of host time; the
        // single-iteration pin plus the §5.2/§6.2 vectors above already
        // cross three independent published constants.
        let c = MontCurve::new(XPrime::P448);
        let k = c.encode_u(c.base_u());
        let out = c.xdh(&k, &k).unwrap();
        assert_eq!(
            to_hex(&out),
            "3f482c8a9f19b01e6c46ee9711d9dc14fd4bf67af30765c2ae2b846a\
             4d23a8cd0db897086239492caf350b51f833868b9bc2b3bca9cf4113"
        );
    }

    #[test]
    fn x25519_diffie_hellman_agreement() {
        // RFC 7748 §6.1.
        let c = MontCurve::new(XPrime::P25519);
        let a_priv = hex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let b_priv = hex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let a_pub = c.public_key(&a_priv);
        let b_pub = c.public_key(&b_priv);
        assert_eq!(
            to_hex(&a_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            to_hex(&b_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let k_ab = c.xdh(&a_priv, &b_pub).unwrap();
        let k_ba = c.xdh(&b_priv, &a_pub).unwrap();
        assert_eq!(k_ab, k_ba);
        assert_eq!(
            to_hex(&k_ab),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn x448_diffie_hellman_agreement() {
        // RFC 7748 §6.2.
        let c = MontCurve::new(XPrime::P448);
        let a_priv = hex("9a8f4925d1519f5775cf46b04b5800d4ee9ee8bae8bc5565d498c28d\
             d9c9baf574a9419744897391006382a6f127ab1d9ac2d8c0a598726b");
        let b_priv = hex("1c306a7ac2a0e2e0990b294470cba339e6453772b075811d8fad0d1d\
             6927c120bb5ee8972b0d3e21374c9c921b09d1b0366f10b65173992d");
        let a_pub = c.public_key(&a_priv);
        let b_pub = c.public_key(&b_priv);
        assert_eq!(
            to_hex(&a_pub),
            "9b08f7cc31b7e3e67d22d5aea121074a273bd2b83de09c63faa73d2c\
             22c5d9bbc836647241d953d40c5b12da88120d53177f80e532c41fa0"
        );
        assert_eq!(
            to_hex(&b_pub),
            "3eb7a829b0cd20f5bcfc0b599b6feccf6da4627107bdb0d4f345b430\
             27d8b972fc3e34fb4232a13ca706dcb57aec3dae07bdc1c67bf33609"
        );
        let k_ab = c.xdh(&a_priv, &b_pub).unwrap();
        let k_ba = c.xdh(&b_priv, &a_pub).unwrap();
        assert_eq!(k_ab, k_ba);
        assert_eq!(
            to_hex(&k_ab),
            "07fff4181ac6cc95ec1c16a94a0f74d12da232ce40a77552281d282b\
             b60c0b56fd2464c335543936521c24403085d59a449a5037514a879d"
        );
    }

    #[test]
    fn all_zero_shared_secret_rejected() {
        // u = 0 is a low-order (order-2) point: the ladder output is the
        // all-zero string, which §6.1 requires rejecting. u = 1 (order 4
        // on curve25519) likewise collapses to zero.
        for p in XPrime::ALL {
            let c = MontCurve::new(p);
            let scalar = vec![0x41u8; c.coord_bytes()];
            let zero_u = vec![0u8; c.coord_bytes()];
            assert_eq!(c.xdh(&scalar, &zero_u), None, "{}", p.name());
        }
        let c = MontCurve::new(XPrime::P25519);
        let mut one_u = vec![0u8; 32];
        one_u[0] = 1;
        assert_eq!(c.xdh(&[0x41u8; 32], &one_u), None);
    }

    #[test]
    fn clamp_semantics() {
        let c25519 = MontCurve::new(XPrime::P25519);
        let k = c25519.clamp(&[0xffu8; 32]);
        assert!(!k.bit(0) && !k.bit(1) && !k.bit(2), "low bits cleared");
        assert!(!k.bit(255), "top bit cleared");
        assert!(k.bit(254), "bit 254 set");
        let k0 = c25519.clamp(&[0u8; 32]);
        assert!(k0.bit(254), "bit 254 set even for the zero scalar");
        let c448 = MontCurve::new(XPrime::P448);
        let k = c448.clamp(&[0xffu8; 56]);
        assert!(!k.bit(0) && !k.bit(1), "low bits cleared");
        assert!(k.bit(447), "top bit set");
    }

    #[test]
    fn base_points_on_curve() {
        for p in XPrime::ALL {
            let c = MontCurve::new(p);
            assert!(c.u_on_curve(c.base_u()), "{}", p.name());
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for p in XPrime::ALL {
            let c = MontCurve::new(p);
            let x = c.field().from_u64(0xdead_beef_cafe);
            assert_eq!(c.decode_u(&c.encode_u(&x)), x, "{}", p.name());
        }
    }
}
