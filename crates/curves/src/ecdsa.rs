//! ECDSA — the Elliptic Curve Digital Signature Algorithm, the benchmark
//! workload of the entire study (§4.1).
//!
//! A **signature** costs one single scalar point multiplication
//! (`X = kG`) plus protocol arithmetic modulo the group order; a
//! **verification** costs one *twin* scalar multiplication
//! (`X = u1·G + u2·Q`). The paper's headline metric is the energy of one
//! *signature followed by one verification* ("closely models an SSL
//! handshake on the client side", §7.6).
//!
//! Nonces and keys are derived deterministically from seeds via SHA-256 so
//! that every experiment in the repository is reproducible; see
//! `DESIGN.md` for why this substitution is sound (nonce generation is
//! not part of the paper's measured energy).

use crate::binary::AffinePoint2m;
use crate::params::{Curve, CurveKind};
use crate::prime::AffinePoint;
use crate::scalar;
use crate::sha256::Sha256;
use ule_mpmath::fp::FpElement;
use ule_mpmath::mp::Mp;

/// A public key: a point on the curve, family-specific.
#[derive(Clone, PartialEq, Debug)]
pub enum PublicKey {
    /// Public point on a prime curve.
    Prime(AffinePoint),
    /// Public point on a binary curve.
    Binary(AffinePoint2m),
}

/// A private/public key pair.
#[derive(Clone, Debug)]
pub struct Keypair {
    d: Mp,
    public: PublicKey,
}

impl Keypair {
    /// Derives a key pair deterministically from a seed.
    pub fn derive(curve: &Curve, seed: &[u8]) -> Keypair {
        let d = derive_scalar(curve, seed, b"key");
        Keypair::from_private(curve, d)
    }

    /// Builds the key pair for a given private scalar.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero or `>= n`.
    pub fn from_private(curve: &Curve, d: Mp) -> Keypair {
        assert!(!d.is_zero() && &d < curve.n(), "private key out of range");
        let public = match curve.kind() {
            CurveKind::Prime(c) => PublicKey::Prime(scalar::mul_window(c, &d, &c.generator())),
            CurveKind::Binary(c) => PublicKey::Binary(scalar::mul_window(c, &d, &c.generator())),
            CurveKind::Mont(c) => panic!("{}: ECDSA needs a Weierstraß curve", c.id().name()),
        };
        Keypair { d, public }
    }

    /// The private scalar.
    pub fn private(&self) -> &Mp {
        &self.d
    }

    /// The public point.
    pub fn public(&self) -> PublicKey {
        self.public.clone()
    }
}

/// An ECDSA signature `(r, s)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signature {
    /// The `r` component (`x(kG) mod n`).
    pub r: Mp,
    /// The `s` component (`k^{-1}(e + r d) mod n`).
    pub s: Mp,
}

/// Hashes a message and truncates it into a scalar, per the ECDSA
/// convention (leftmost `bits(n)` bits of the digest, then reduced).
pub fn hash_to_scalar(curve: &Curve, msg: &[u8]) -> Mp {
    let digest = crate::sha256::sha256(msg);
    digest_to_scalar(curve, &digest)
}

/// Truncates an externally computed digest into a scalar.
pub fn digest_to_scalar(curve: &Curve, digest: &[u8]) -> Mp {
    let mut limbs = Vec::with_capacity(digest.len().div_ceil(4));
    // big-endian bytes -> little-endian limbs
    for chunk in digest.rchunks(4) {
        let mut w = 0u32;
        for &b in chunk {
            w = (w << 8) | b as u32;
        }
        limbs.push(w);
    }
    let mut e = Mp::from_limbs(&limbs);
    let digest_bits = digest.len() * 8;
    let n_bits = curve.n().bit_len();
    if digest_bits > n_bits {
        e = e.shr(digest_bits - n_bits);
    }
    e.rem(curve.n())
}

/// Derives a scalar in `[1, n-1]` from a seed by iterated hashing
/// (deterministic; used for keys and nonces).
pub fn derive_scalar(curve: &Curve, seed: &[u8], label: &[u8]) -> Mp {
    let n = curve.n();
    let mut counter = 0u32;
    loop {
        // Concatenate as many digests as needed to cover bits(n) + 64.
        let mut material = Vec::new();
        let blocks = (n.bit_len() + 64).div_ceil(256);
        for i in 0..blocks {
            let mut h = Sha256::new();
            h.update(label);
            h.update(seed);
            h.update(&counter.to_be_bytes());
            h.update(&(i as u32).to_be_bytes());
            material.extend_from_slice(&h.finalize());
        }
        let mut limbs = Vec::new();
        for chunk in material.rchunks(4) {
            let mut w = 0u32;
            for &b in chunk {
                w = (w << 8) | b as u32;
            }
            limbs.push(w);
        }
        let k = Mp::from_limbs(&limbs).rem(n);
        if !k.is_zero() {
            return k;
        }
        counter += 1;
    }
}

/// Signs a prehashed scalar `e` with an explicit nonce `k` — the exact
/// computation the simulated software performs. Returns `None` if the
/// nonce yields `r = 0` or `s = 0` (caller picks a new nonce).
pub fn sign_with_nonce(curve: &Curve, d: &Mp, e: &Mp, k: &Mp) -> Option<Signature> {
    sign_with_nonce_recoverable(curve, d, e, k).map(|(sig, _)| sig)
}

/// [`sign_with_nonce`], additionally returning the nonce point
/// `R = k·G` the signer already computed. `R` is public (it is
/// recoverable from the signature) and is the *hint* that lets a batch
/// verifier replace each per-signature twin multiplication with one
/// random-linear-combination check — see [`verify_batch_prehashed`].
pub fn sign_with_nonce_recoverable(
    curve: &Curve,
    d: &Mp,
    e: &Mp,
    k: &Mp,
) -> Option<(Signature, PublicKey)> {
    assert!(!k.is_zero() && k < curve.n(), "nonce out of range");
    let nf = curve.order_field();
    let (x_int, point) = match curve.kind() {
        CurveKind::Prime(c) => {
            let p = scalar::mul_window(c, k, &c.generator());
            (c.x_as_integer(&p)?, PublicKey::Prime(p))
        }
        CurveKind::Binary(c) => {
            let p = scalar::mul_window(c, k, &c.generator());
            (c.x_as_integer(&p)?, PublicKey::Binary(p))
        }
        CurveKind::Mont(c) => panic!("{}: ECDSA needs a Weierstraß curve", c.id().name()),
    };
    let r = x_int.rem(curve.n());
    if r.is_zero() {
        return None;
    }
    // s = k^{-1} (e + r d) mod n
    let e_el = nf.from_mp(e);
    let r_el = nf.from_mp(&r);
    let d_el = nf.from_mp(d);
    let k_el = nf.from_mp(k);
    let kinv = nf.inv(&k_el).expect("k nonzero mod prime n");
    let s_el = nf.mul(&kinv, &nf.add(&e_el, &nf.mul(&r_el, &d_el)));
    if s_el.is_zero() {
        return None;
    }
    Some((Signature { r, s: s_el.to_mp() }, point))
}

/// Signs a message with a deterministic nonce derived from `nonce_seed`.
pub fn sign(curve: &Curve, keys: &Keypair, msg: &[u8], nonce_seed: &[u8]) -> Signature {
    let e = hash_to_scalar(curve, msg);
    let mut attempt = 0u32;
    loop {
        let mut seed = nonce_seed.to_vec();
        seed.extend_from_slice(&attempt.to_be_bytes());
        let k = derive_scalar(curve, &seed, b"nonce");
        if let Some(sig) = sign_with_nonce(curve, keys.private(), &e, &k) {
            return sig;
        }
        attempt += 1;
    }
}

/// Verifies a signature over a prehashed scalar `e` — the exact
/// computation the simulated software performs (twin scalar
/// multiplication `u1·G + u2·Q`, §4.1).
pub fn verify_prehashed(curve: &Curve, public: &PublicKey, e: &Mp, sig: &Signature) -> bool {
    let n = curve.n();
    if sig.r.is_zero() || &sig.r >= n || sig.s.is_zero() || &sig.s >= n {
        return false;
    }
    let nf = curve.order_field();
    let w = nf.inv(&nf.from_mp(&sig.s)).expect("s nonzero mod prime n");
    let u1 = nf.mul(&nf.from_mp(e), &w).to_mp();
    let u2 = nf.mul(&nf.from_mp(&sig.r), &w).to_mp();
    let x_int = match (curve.kind(), public) {
        (CurveKind::Prime(c), PublicKey::Prime(q)) => {
            let x = scalar::twin_mul(c, &u1, &c.generator(), &u2, q);
            match c.x_as_integer(&x) {
                Some(v) => v,
                None => return false,
            }
        }
        (CurveKind::Binary(c), PublicKey::Binary(q)) => {
            let x = scalar::twin_mul(c, &u1, &c.generator(), &u2, q);
            match c.x_as_integer(&x) {
                Some(v) => v,
                None => return false,
            }
        }
        _ => return false, // key from the wrong family
    };
    x_int.rem(n) == sig.r
}

/// Verifies a signature on a message.
pub fn verify(curve: &Curve, public: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
    let e = hash_to_scalar(curve, msg);
    verify_prehashed(curve, public, &e, sig)
}

/// Helper for simulated targets: the `r` component as a field element of
/// the order field (used when cross-checking simulator RAM contents).
pub fn r_as_order_element(curve: &Curve, sig: &Signature) -> FpElement {
    curve.order_field().from_mp(&sig.r)
}

/// One signature in a batch-verification request: the prehashed message
/// scalar, the signature, and optionally the signer's nonce point
/// `R = k·G` (from [`sign_with_nonce_recoverable`]). With consistent
/// hints on every in-range item, the whole batch collapses to a single
/// random-linear-combination multi-scalar multiplication; without them
/// the verifier falls back to per-signature checks over a shared
/// [`scalar::TwinTables`] grid.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// The prehashed message scalar `e`.
    pub e: Mp,
    /// The signature under test.
    pub sig: Signature,
    /// The signer-provided nonce point `R = k·G`, if known.
    pub hint: Option<PublicKey>,
}

/// Outcome of [`verify_batch_prehashed`].
#[derive(Clone, Debug)]
pub struct BatchVerdict {
    /// Per-item accept/reject, in input order — the contract is
    /// elementwise equality with [`verify_prehashed`].
    pub ok: Vec<bool>,
    /// True iff the random-linear-combination fast path proved the
    /// whole batch in one multi-scalar multiplication (it can only ever
    /// conclude *all-accept*; any failure falls back to per-item
    /// verification to isolate the culprits).
    pub rlc_accepted: bool,
    /// Total host group-operation census, including shared precompute —
    /// what the service layer's energy model scales by.
    pub ops: scalar::OpCount,
}

/// Verifies a batch of signatures under one public key, accept/reject
/// per item exactly as per-signature [`verify_prehashed`] would decide.
///
/// Strategy, fastest first:
///
/// 1. **Range rejects** (`r, s ∉ [1, n)`, wrong-family key) cost no
///    group operations, exactly as in [`verify_prehashed`].
/// 2. **Random linear combination.** If ≥ 2 items survive and every
///    one carries a consistent `R` hint (on the right family and with
///    `x(R) mod n = r`), draw deterministic 64-bit coefficients
///    `z_i` from SHA-256 over `(seed, i, r_i, s_i)` (with `z_0 = 1`)
///    and test `Σ zᵢ(u1ᵢ·G + u2ᵢ·Q − Rᵢ) = O` as one multi-scalar
///    multiplication — per extra signature this adds only three short
///    64-bit scalar terms instead of a full-width twin multiplication.
///    Success accepts the whole batch; a forged batch passes with
///    probability ≤ 2⁻⁶⁴ per random `seed` (see `DESIGN.md` §13).
/// 3. **Fallback** — on any RLC failure or missing hint: per-item
///    interleaved twin multiplication over a shared
///    [`scalar::TwinTables`] grid, which is structurally the same
///    check as [`verify_prehashed`] and therefore exact.
pub fn verify_batch_prehashed(
    curve: &Curve,
    public: &PublicKey,
    items: &[BatchItem],
    seed: u64,
) -> BatchVerdict {
    match (curve.kind(), public) {
        (CurveKind::Prime(c), PublicKey::Prime(q)) => verify_batch_family(
            curve,
            c,
            &c.generator(),
            q,
            &|p| c.x_as_integer(p),
            &|h| match h {
                PublicKey::Prime(p) => Some(p),
                PublicKey::Binary(_) => None,
            },
            items,
            seed,
        ),
        (CurveKind::Binary(c), PublicKey::Binary(q)) => verify_batch_family(
            curve,
            c,
            &c.generator(),
            q,
            &|p| c.x_as_integer(p),
            &|h| match h {
                PublicKey::Binary(p) => Some(p),
                PublicKey::Prime(_) => None,
            },
            items,
            seed,
        ),
        // Key from the wrong family: every item rejects, exactly as
        // `verify_prehashed` does.
        _ => BatchVerdict {
            ok: vec![false; items.len()],
            rlc_accepted: false,
            ops: scalar::OpCount::default(),
        },
    }
}

/// Deterministic RLC coefficient for item `i`: a nonzero 64-bit scalar
/// from SHA-256 over the batch seed, the item index, and the signature
/// components (so a tampered component changes its own coefficient).
fn rlc_coefficient(seed: u64, index: usize, sig: &Signature) -> u64 {
    let mut h = Sha256::new();
    h.update(b"ule-serve rlc");
    h.update(&seed.to_be_bytes());
    h.update(&(index as u64).to_be_bytes());
    h.update(sig.r.to_hex().as_bytes());
    h.update(sig.s.to_hex().as_bytes());
    let digest = h.finalize();
    let z = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"));
    if z == 0 {
        1
    } else {
        z
    }
}

/// Family-generic batch verification body; see
/// [`verify_batch_prehashed`] for the contract.
#[allow(clippy::too_many_arguments)]
fn verify_batch_family<C: scalar::GroupOps>(
    curve: &Curve,
    ops_curve: &C,
    g: &C::Aff,
    q: &C::Aff,
    x_of: &dyn Fn(&C::Aff) -> Option<Mp>,
    hint_of: &dyn Fn(&PublicKey) -> Option<&C::Aff>,
    items: &[BatchItem],
    seed: u64,
) -> BatchVerdict {
    let n = curve.n();
    let nf = curve.order_field();
    let mut ok = vec![false; items.len()];
    let mut ops = scalar::OpCount::default();

    // Stage 1: range rejects (no group operations), u1/u2 for the rest.
    struct LiveItem {
        idx: usize,
        u1: Mp,
        u2: Mp,
    }
    let mut live: Vec<LiveItem> = Vec::new();
    for (idx, item) in items.iter().enumerate() {
        let sig = &item.sig;
        if sig.r.is_zero() || &sig.r >= n || sig.s.is_zero() || &sig.s >= n {
            continue;
        }
        let w = nf.inv(&nf.from_mp(&sig.s)).expect("s nonzero mod prime n");
        live.push(LiveItem {
            idx,
            u1: nf.mul(&nf.from_mp(&item.e), &w).to_mp(),
            u2: nf.mul(&nf.from_mp(&sig.r), &w).to_mp(),
        });
    }

    // Stage 2: the RLC fast path needs a consistent hint on every live
    // item (a hint whose x-coordinate disagrees with `r` could make the
    // combined sum reject a batch `verify_prehashed` accepts).
    let hints: Option<Vec<&C::Aff>> = if live.len() >= 2 {
        live.iter()
            .map(|li| {
                let item = &items[li.idx];
                let h = item.hint.as_ref().and_then(hint_of)?;
                let x = x_of(h)?;
                if x.rem(n) == item.sig.r {
                    Some(h)
                } else {
                    None
                }
            })
            .collect()
    } else {
        None
    };
    if let Some(hints) = hints {
        let mut a = nf.zero(); // Σ zᵢ·u1ᵢ, coefficient of G
        let mut b = nf.zero(); // Σ zᵢ·u2ᵢ, coefficient of Q
        let mut terms: Vec<(Mp, C::Aff)> = Vec::with_capacity(live.len() + 2);
        for (pos, (li, hint)) in live.iter().zip(&hints).enumerate() {
            let z = if pos == 0 {
                1
            } else {
                rlc_coefficient(seed, li.idx, &items[li.idx].sig)
            };
            a = nf.add(&a, &nf.mul_u64(&nf.from_mp(&li.u1), z));
            b = nf.add(&b, &nf.mul_u64(&nf.from_mp(&li.u2), z));
            // −zᵢ·Rᵢ, as the scalar n − zᵢ on the hint point.
            terms.push((n.sub(&Mp::from_u64(z).rem(n)), (*hint).clone()));
        }
        terms.push((a.to_mp(), g.clone()));
        terms.push((b.to_mp(), q.clone()));
        let (sum, msm_ops) = scalar::msm_counted(ops_curve, &terms);
        ops += msm_ops;
        if sum == ops_curve.affine_infinity() {
            for li in &live {
                ok[li.idx] = true;
            }
            return BatchVerdict {
                ok,
                rlc_accepted: true,
                ops,
            };
        }
    }

    // Stage 3: per-item verification over the shared joint grid —
    // structurally the same computation as `verify_prehashed`, so the
    // per-item verdicts are exact.
    let tables = scalar::twin_tables(ops_curve, g, q);
    ops += tables.precompute;
    for li in &live {
        let (point, c) = scalar::twin_mul_tabled(ops_curve, &li.u1, &li.u2, &tables);
        ops += c;
        ok[li.idx] = match x_of(&point) {
            Some(x) => x.rem(n) == items[li.idx].sig.r,
            None => false,
        };
    }
    BatchVerdict {
        ok,
        rlc_accepted: false,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CurveId;

    #[test]
    fn sign_verify_round_trip_p192() {
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"alice");
        let msg = b"the medical telemetry payload";
        let sig = sign(&curve, &keys, msg, b"session 1");
        assert!(verify(&curve, &keys.public(), msg, &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"alice");
        let sig = sign(&curve, &keys, b"original", b"session 2");
        assert!(!verify(&curve, &keys.public(), b"orig1nal", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"alice");
        let mut sig = sign(&curve, &keys, b"msg", b"session 3");
        sig.s = sig.s.add(&Mp::one());
        assert!(!verify(&curve, &keys.public(), b"msg", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let curve = CurveId::P192.curve();
        let alice = Keypair::derive(&curve, b"alice");
        let eve = Keypair::derive(&curve, b"eve");
        let sig = sign(&curve, &alice, b"msg", b"session 4");
        assert!(!verify(&curve, &eve.public(), b"msg", &sig));
    }

    #[test]
    fn sign_verify_binary_k163() {
        let curve = CurveId::K163.curve();
        let keys = Keypair::derive(&curve, b"bob");
        let msg = b"sensor reading 42.0C";
        let sig = sign(&curve, &keys, msg, b"wsn epoch 9");
        assert!(verify(&curve, &keys.public(), msg, &sig));
        assert!(!verify(
            &curve,
            &keys.public(),
            b"sensor reading 43.0C",
            &sig
        ));
    }

    #[test]
    fn signature_bounds_enforced() {
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"alice");
        let e = hash_to_scalar(&curve, b"msg");
        let zero_r = Signature {
            r: Mp::zero(),
            s: Mp::one(),
        };
        assert!(!verify_prehashed(&curve, &keys.public(), &e, &zero_r));
        let big_s = Signature {
            r: Mp::one(),
            s: curve.n().clone(),
        };
        assert!(!verify_prehashed(&curve, &keys.public(), &e, &big_s));
    }

    #[test]
    fn deterministic_signing() {
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"alice");
        let s1 = sign(&curve, &keys, b"m", b"nonce");
        let s2 = sign(&curve, &keys, b"m", b"nonce");
        assert_eq!(s1, s2);
        let s3 = sign(&curve, &keys, b"m", b"other nonce");
        assert_ne!(s1, s3);
        assert!(verify(&curve, &keys.public(), b"m", &s3));
    }

    #[test]
    fn digest_truncation_widths() {
        // 521-bit order: digest shorter than n -> no shift.
        let curve = CurveId::P192.curve();
        let e = hash_to_scalar(&curve, b"x");
        assert!(e.bit_len() <= 192);
        assert!(&e < curve.n());
    }

    /// Exhaustive `r`/`s` range rejects: zero, exactly `n`, and `n+1`
    /// must all fail on both families without reaching the twin
    /// multiplication.
    #[test]
    fn reject_out_of_range_r_s() {
        for id in [CurveId::P192, CurveId::K163] {
            let curve = id.curve();
            let keys = Keypair::derive(&curve, b"range signer");
            let e = hash_to_scalar(&curve, b"range msg");
            let nonce = derive_scalar(&curve, b"range nonce", b"nonce");
            let sig = sign_with_nonce(&curve, keys.private(), &e, &nonce).expect("nonce ok");
            assert!(verify_prehashed(&curve, &keys.public(), &e, &sig));
            let n = curve.n();
            let bad_values = [Mp::zero(), n.clone(), n.add(&Mp::one())];
            for bad in &bad_values {
                let bad_r = Signature {
                    r: bad.clone(),
                    s: sig.s.clone(),
                };
                assert!(
                    !verify_prehashed(&curve, &keys.public(), &e, &bad_r),
                    "{id:?} accepted r = {bad:?}"
                );
                let bad_s = Signature {
                    r: sig.r.clone(),
                    s: bad.clone(),
                };
                assert!(
                    !verify_prehashed(&curve, &keys.public(), &e, &bad_s),
                    "{id:?} accepted s = {bad:?}"
                );
            }
        }
    }

    /// Builds `count` signed batch items (with hints) for one curve.
    fn batch_fixture(curve: &Curve, keys: &Keypair, count: usize) -> Vec<BatchItem> {
        (0..count)
            .map(|i| {
                let e = hash_to_scalar(curve, format!("batch msg {i}").as_bytes());
                let k = derive_scalar(curve, format!("batch nonce {i}").as_bytes(), b"nonce");
                let (sig, r_point) =
                    sign_with_nonce_recoverable(curve, keys.private(), &e, &k).expect("nonce ok");
                BatchItem {
                    e,
                    sig,
                    hint: Some(r_point),
                }
            })
            .collect()
    }

    fn assert_batch_matches_single(
        curve: &Curve,
        public: &PublicKey,
        items: &[BatchItem],
        verdict: &BatchVerdict,
    ) {
        for (i, item) in items.iter().enumerate() {
            let single = verify_prehashed(curve, public, &item.e, &item.sig);
            assert_eq!(
                verdict.ok[i], single,
                "item {i}: batch said {}, verify_prehashed said {single}",
                verdict.ok[i]
            );
        }
    }

    /// An all-valid hinted batch takes the RLC fast path and agrees
    /// with per-signature verification on both families.
    #[test]
    fn batch_verify_all_valid_takes_rlc_path() {
        for id in [CurveId::P192, CurveId::K163] {
            let curve = id.curve();
            let keys = Keypair::derive(&curve, b"batch signer");
            let items = batch_fixture(&curve, &keys, 4);
            let verdict = verify_batch_prehashed(&curve, &keys.public(), &items, 0x5eed);
            assert!(verdict.rlc_accepted, "{id:?}: expected the RLC fast path");
            assert!(verdict.ok.iter().all(|&b| b), "{id:?}");
            assert_batch_matches_single(&curve, &keys.public(), &items, &verdict);
        }
    }

    /// A mixed batch — valid, bit-flipped, and out-of-range items —
    /// must fall back and agree elementwise with `verify_prehashed`.
    #[test]
    fn batch_verify_mixed_batch_is_exact() {
        for id in [CurveId::P192, CurveId::K163] {
            let curve = id.curve();
            let keys = Keypair::derive(&curve, b"batch signer");
            let mut items = batch_fixture(&curve, &keys, 6);
            let n = curve.n();
            items[1].sig.s = items[1].sig.s.add(&Mp::one()).rem(n); // tampered
            items[2].sig.r = Mp::zero(); // range reject
            items[3].sig.s = n.clone(); // range reject
            items[4].sig.r = n.add(&Mp::one()); // range reject
            let verdict = verify_batch_prehashed(&curve, &keys.public(), &items, 0x5eed);
            assert!(
                !verdict.rlc_accepted,
                "{id:?}: a tampered batch must not RLC-accept"
            );
            assert!(verdict.ok[0] && verdict.ok[5], "{id:?}");
            assert!(!verdict.ok[1] && !verdict.ok[2] && !verdict.ok[3] && !verdict.ok[4]);
            assert_batch_matches_single(&curve, &keys.public(), &items, &verdict);
        }
    }

    /// Hints are optional and untrusted: a hint-less batch and a batch
    /// with an inconsistent hint both fall back to exact per-item
    /// verification (a wrong hint must never change a verdict).
    #[test]
    fn batch_verify_without_or_with_bad_hints_is_exact() {
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"batch signer");
        let mut items = batch_fixture(&curve, &keys, 3);
        items[0].hint = None;
        let verdict = verify_batch_prehashed(&curve, &keys.public(), &items, 1);
        assert!(!verdict.rlc_accepted);
        assert!(verdict.ok.iter().all(|&b| b));
        assert_batch_matches_single(&curve, &keys.public(), &items, &verdict);

        // Inconsistent hint: x(R) mod n != r.
        let mut items = batch_fixture(&curve, &keys, 3);
        items[1].hint = Some(keys.public());
        let verdict = verify_batch_prehashed(&curve, &keys.public(), &items, 1);
        assert!(!verdict.rlc_accepted);
        assert!(verdict.ok.iter().all(|&b| b));
        assert_batch_matches_single(&curve, &keys.public(), &items, &verdict);

        // Singleton batches never take the RLC path.
        let items = batch_fixture(&curve, &keys, 1);
        let verdict = verify_batch_prehashed(&curve, &keys.public(), &items, 1);
        assert!(!verdict.rlc_accepted);
        assert!(verdict.ok[0]);
    }

    /// Wrong-family public key: every item rejects, with no group ops,
    /// exactly as `verify_prehashed`.
    #[test]
    fn batch_verify_wrong_family_rejects_all() {
        let prime = CurveId::P192.curve();
        let binary_keys = Keypair::derive(&CurveId::K163.curve(), b"binary");
        let keys = Keypair::derive(&prime, b"batch signer");
        let items = batch_fixture(&prime, &keys, 2);
        let verdict = verify_batch_prehashed(&prime, &binary_keys.public(), &items, 1);
        assert!(verdict.ok.iter().all(|&b| !b));
        assert_eq!(verdict.ops, scalar::OpCount::default());
        assert_batch_matches_single(&prime, &binary_keys.public(), &items, &verdict);
    }

    /// The headline economics: at batch size 16 the RLC path must cost
    /// well under half of 16 independent twin multiplications in
    /// weighted group operations (the ≥1.5× throughput criterion is
    /// checked end-to-end by `repro serve`; this pins the algorithmic
    /// gain that produces it).
    #[test]
    fn batch_verify_ops_gain_at_batch_16() {
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"batch signer");
        let items = batch_fixture(&curve, &keys, 16);
        let batch = verify_batch_prehashed(&curve, &keys.public(), &items, 7);
        assert!(batch.rlc_accepted);
        let mut single = scalar::OpCount::default();
        for item in &items {
            let verdict =
                verify_batch_prehashed(&curve, &keys.public(), std::slice::from_ref(item), 7);
            assert!(verdict.ok[0]);
            single += verdict.ops;
        }
        let weigh = |o: &scalar::OpCount| 8 * o.doubles + 11 * o.adds + 80 * o.inversions;
        assert!(
            2 * weigh(&batch.ops) < weigh(&single),
            "batch {:?} vs 16 singles {:?}",
            batch.ops,
            single
        );
    }

    /// A public key from the wrong curve family must be rejected, not
    /// misinterpreted as coordinates on the verifying curve.
    #[test]
    fn reject_wrong_family_public_key() {
        let prime = CurveId::P192.curve();
        let binary = CurveId::K163.curve();
        let prime_keys = Keypair::derive(&prime, b"prime signer");
        let binary_keys = Keypair::derive(&binary, b"binary signer");
        let e = hash_to_scalar(&prime, b"family msg");
        let nonce = derive_scalar(&prime, b"family nonce", b"nonce");
        let sig = sign_with_nonce(&prime, prime_keys.private(), &e, &nonce).expect("nonce ok");
        assert!(verify_prehashed(&prime, &prime_keys.public(), &e, &sig));
        assert!(!verify_prehashed(&prime, &binary_keys.public(), &e, &sig));
        let eb = hash_to_scalar(&binary, b"family msg");
        let nonce_b = derive_scalar(&binary, b"family nonce b", b"nonce");
        let sig_b =
            sign_with_nonce(&binary, binary_keys.private(), &eb, &nonce_b).expect("nonce ok");
        assert!(!verify_prehashed(
            &binary,
            &prime_keys.public(),
            &eb,
            &sig_b
        ));
    }

    /// Digest truncation for orders wider than 256 bits (K-409/K-571):
    /// a digest longer than `n` keeps only its leftmost `bits(n)` bits,
    /// and a 256-bit digest passes through unshifted (it is already
    /// shorter than `n`, so no reduction occurs either).
    #[test]
    fn digest_truncation_wide_orders() {
        for id in [CurveId::K409, CurveId::K571] {
            let curve = id.curve();
            let n_bits = curve.n().bit_len();
            assert!(n_bits > 256, "{id:?} order unexpectedly narrow");

            // 64-byte (512-bit) digest of descending bytes: the
            // expected scalar is the digest value shifted down to
            // bits(n), computed here via an independent byte walk.
            let digest: Vec<u8> = (0..64u32).map(|i| 0xff - i as u8).collect();
            let mut expected = Mp::zero();
            for &b in &digest {
                expected = expected.shl(8).add(&Mp::from_u64(b as u64));
            }
            // K-409 shifts (512 > 409); K-571 does not (512 < 570).
            let expected = expected.shr(512usize.saturating_sub(n_bits)).rem(curve.n());
            assert_eq!(digest_to_scalar(&curve, &digest), expected, "{id:?}");

            // SHA-256 output is narrower than n: value passes through.
            let e = hash_to_scalar(&curve, b"wide order msg");
            let raw = crate::sha256::sha256(b"wide order msg");
            let mut raw_val = Mp::zero();
            for &b in &raw {
                raw_val = raw_val.shl(8).add(&Mp::from_u64(b as u64));
            }
            assert_eq!(e, raw_val, "{id:?} narrow digest must not shift");
        }
    }
}
