//! ECDSA — the Elliptic Curve Digital Signature Algorithm, the benchmark
//! workload of the entire study (§4.1).
//!
//! A **signature** costs one single scalar point multiplication
//! (`X = kG`) plus protocol arithmetic modulo the group order; a
//! **verification** costs one *twin* scalar multiplication
//! (`X = u1·G + u2·Q`). The paper's headline metric is the energy of one
//! *signature followed by one verification* ("closely models an SSL
//! handshake on the client side", §7.6).
//!
//! Nonces and keys are derived deterministically from seeds via SHA-256 so
//! that every experiment in the repository is reproducible; see
//! `DESIGN.md` for why this substitution is sound (nonce generation is
//! not part of the paper's measured energy).

use crate::binary::AffinePoint2m;
use crate::params::{Curve, CurveKind};
use crate::prime::AffinePoint;
use crate::scalar;
use crate::sha256::Sha256;
use ule_mpmath::fp::FpElement;
use ule_mpmath::mp::Mp;

/// A public key: a point on the curve, family-specific.
#[derive(Clone, PartialEq, Debug)]
pub enum PublicKey {
    /// Public point on a prime curve.
    Prime(AffinePoint),
    /// Public point on a binary curve.
    Binary(AffinePoint2m),
}

/// A private/public key pair.
#[derive(Clone, Debug)]
pub struct Keypair {
    d: Mp,
    public: PublicKey,
}

impl Keypair {
    /// Derives a key pair deterministically from a seed.
    pub fn derive(curve: &Curve, seed: &[u8]) -> Keypair {
        let d = derive_scalar(curve, seed, b"key");
        Keypair::from_private(curve, d)
    }

    /// Builds the key pair for a given private scalar.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero or `>= n`.
    pub fn from_private(curve: &Curve, d: Mp) -> Keypair {
        assert!(!d.is_zero() && &d < curve.n(), "private key out of range");
        let public = match curve.kind() {
            CurveKind::Prime(c) => PublicKey::Prime(scalar::mul_window(c, &d, &c.generator())),
            CurveKind::Binary(c) => PublicKey::Binary(scalar::mul_window(c, &d, &c.generator())),
        };
        Keypair { d, public }
    }

    /// The private scalar.
    pub fn private(&self) -> &Mp {
        &self.d
    }

    /// The public point.
    pub fn public(&self) -> PublicKey {
        self.public.clone()
    }
}

/// An ECDSA signature `(r, s)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signature {
    /// The `r` component (`x(kG) mod n`).
    pub r: Mp,
    /// The `s` component (`k^{-1}(e + r d) mod n`).
    pub s: Mp,
}

/// Hashes a message and truncates it into a scalar, per the ECDSA
/// convention (leftmost `bits(n)` bits of the digest, then reduced).
pub fn hash_to_scalar(curve: &Curve, msg: &[u8]) -> Mp {
    let digest = crate::sha256::sha256(msg);
    digest_to_scalar(curve, &digest)
}

/// Truncates an externally computed digest into a scalar.
pub fn digest_to_scalar(curve: &Curve, digest: &[u8]) -> Mp {
    let mut limbs = Vec::with_capacity(digest.len().div_ceil(4));
    // big-endian bytes -> little-endian limbs
    for chunk in digest.rchunks(4) {
        let mut w = 0u32;
        for &b in chunk {
            w = (w << 8) | b as u32;
        }
        limbs.push(w);
    }
    let mut e = Mp::from_limbs(&limbs);
    let digest_bits = digest.len() * 8;
    let n_bits = curve.n().bit_len();
    if digest_bits > n_bits {
        e = e.shr(digest_bits - n_bits);
    }
    e.rem(curve.n())
}

/// Derives a scalar in `[1, n-1]` from a seed by iterated hashing
/// (deterministic; used for keys and nonces).
pub fn derive_scalar(curve: &Curve, seed: &[u8], label: &[u8]) -> Mp {
    let n = curve.n();
    let mut counter = 0u32;
    loop {
        // Concatenate as many digests as needed to cover bits(n) + 64.
        let mut material = Vec::new();
        let blocks = (n.bit_len() + 64).div_ceil(256);
        for i in 0..blocks {
            let mut h = Sha256::new();
            h.update(label);
            h.update(seed);
            h.update(&counter.to_be_bytes());
            h.update(&(i as u32).to_be_bytes());
            material.extend_from_slice(&h.finalize());
        }
        let mut limbs = Vec::new();
        for chunk in material.rchunks(4) {
            let mut w = 0u32;
            for &b in chunk {
                w = (w << 8) | b as u32;
            }
            limbs.push(w);
        }
        let k = Mp::from_limbs(&limbs).rem(n);
        if !k.is_zero() {
            return k;
        }
        counter += 1;
    }
}

/// Signs a prehashed scalar `e` with an explicit nonce `k` — the exact
/// computation the simulated software performs. Returns `None` if the
/// nonce yields `r = 0` or `s = 0` (caller picks a new nonce).
pub fn sign_with_nonce(curve: &Curve, d: &Mp, e: &Mp, k: &Mp) -> Option<Signature> {
    assert!(!k.is_zero() && k < curve.n(), "nonce out of range");
    let nf = curve.order_field();
    let x_int = match curve.kind() {
        CurveKind::Prime(c) => {
            let p = scalar::mul_window(c, k, &c.generator());
            c.x_as_integer(&p)?
        }
        CurveKind::Binary(c) => {
            let p = scalar::mul_window(c, k, &c.generator());
            c.x_as_integer(&p)?
        }
    };
    let r = x_int.rem(curve.n());
    if r.is_zero() {
        return None;
    }
    // s = k^{-1} (e + r d) mod n
    let e_el = nf.from_mp(e);
    let r_el = nf.from_mp(&r);
    let d_el = nf.from_mp(d);
    let k_el = nf.from_mp(k);
    let kinv = nf.inv(&k_el).expect("k nonzero mod prime n");
    let s_el = nf.mul(&kinv, &nf.add(&e_el, &nf.mul(&r_el, &d_el)));
    if s_el.is_zero() {
        return None;
    }
    Some(Signature { r, s: s_el.to_mp() })
}

/// Signs a message with a deterministic nonce derived from `nonce_seed`.
pub fn sign(curve: &Curve, keys: &Keypair, msg: &[u8], nonce_seed: &[u8]) -> Signature {
    let e = hash_to_scalar(curve, msg);
    let mut attempt = 0u32;
    loop {
        let mut seed = nonce_seed.to_vec();
        seed.extend_from_slice(&attempt.to_be_bytes());
        let k = derive_scalar(curve, &seed, b"nonce");
        if let Some(sig) = sign_with_nonce(curve, keys.private(), &e, &k) {
            return sig;
        }
        attempt += 1;
    }
}

/// Verifies a signature over a prehashed scalar `e` — the exact
/// computation the simulated software performs (twin scalar
/// multiplication `u1·G + u2·Q`, §4.1).
pub fn verify_prehashed(curve: &Curve, public: &PublicKey, e: &Mp, sig: &Signature) -> bool {
    let n = curve.n();
    if sig.r.is_zero() || &sig.r >= n || sig.s.is_zero() || &sig.s >= n {
        return false;
    }
    let nf = curve.order_field();
    let w = nf.inv(&nf.from_mp(&sig.s)).expect("s nonzero mod prime n");
    let u1 = nf.mul(&nf.from_mp(e), &w).to_mp();
    let u2 = nf.mul(&nf.from_mp(&sig.r), &w).to_mp();
    let x_int = match (curve.kind(), public) {
        (CurveKind::Prime(c), PublicKey::Prime(q)) => {
            let x = scalar::twin_mul(c, &u1, &c.generator(), &u2, q);
            match c.x_as_integer(&x) {
                Some(v) => v,
                None => return false,
            }
        }
        (CurveKind::Binary(c), PublicKey::Binary(q)) => {
            let x = scalar::twin_mul(c, &u1, &c.generator(), &u2, q);
            match c.x_as_integer(&x) {
                Some(v) => v,
                None => return false,
            }
        }
        _ => return false, // key from the wrong family
    };
    x_int.rem(n) == sig.r
}

/// Verifies a signature on a message.
pub fn verify(curve: &Curve, public: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
    let e = hash_to_scalar(curve, msg);
    verify_prehashed(curve, public, &e, sig)
}

/// Helper for simulated targets: the `r` component as a field element of
/// the order field (used when cross-checking simulator RAM contents).
pub fn r_as_order_element(curve: &Curve, sig: &Signature) -> FpElement {
    curve.order_field().from_mp(&sig.r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CurveId;

    #[test]
    fn sign_verify_round_trip_p192() {
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"alice");
        let msg = b"the medical telemetry payload";
        let sig = sign(&curve, &keys, msg, b"session 1");
        assert!(verify(&curve, &keys.public(), msg, &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"alice");
        let sig = sign(&curve, &keys, b"original", b"session 2");
        assert!(!verify(&curve, &keys.public(), b"orig1nal", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"alice");
        let mut sig = sign(&curve, &keys, b"msg", b"session 3");
        sig.s = sig.s.add(&Mp::one());
        assert!(!verify(&curve, &keys.public(), b"msg", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let curve = CurveId::P192.curve();
        let alice = Keypair::derive(&curve, b"alice");
        let eve = Keypair::derive(&curve, b"eve");
        let sig = sign(&curve, &alice, b"msg", b"session 4");
        assert!(!verify(&curve, &eve.public(), b"msg", &sig));
    }

    #[test]
    fn sign_verify_binary_k163() {
        let curve = CurveId::K163.curve();
        let keys = Keypair::derive(&curve, b"bob");
        let msg = b"sensor reading 42.0C";
        let sig = sign(&curve, &keys, msg, b"wsn epoch 9");
        assert!(verify(&curve, &keys.public(), msg, &sig));
        assert!(!verify(
            &curve,
            &keys.public(),
            b"sensor reading 43.0C",
            &sig
        ));
    }

    #[test]
    fn signature_bounds_enforced() {
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"alice");
        let e = hash_to_scalar(&curve, b"msg");
        let zero_r = Signature {
            r: Mp::zero(),
            s: Mp::one(),
        };
        assert!(!verify_prehashed(&curve, &keys.public(), &e, &zero_r));
        let big_s = Signature {
            r: Mp::one(),
            s: curve.n().clone(),
        };
        assert!(!verify_prehashed(&curve, &keys.public(), &e, &big_s));
    }

    #[test]
    fn deterministic_signing() {
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"alice");
        let s1 = sign(&curve, &keys, b"m", b"nonce");
        let s2 = sign(&curve, &keys, b"m", b"nonce");
        assert_eq!(s1, s2);
        let s3 = sign(&curve, &keys, b"m", b"other nonce");
        assert_ne!(s1, s3);
        assert!(verify(&curve, &keys.public(), b"m", &s3));
    }

    #[test]
    fn digest_truncation_widths() {
        // 521-bit order: digest shorter than n -> no shift.
        let curve = CurveId::P192.curve();
        let e = hash_to_scalar(&curve, b"x");
        assert!(e.bit_len() <= 192);
        assert!(&e < curve.n());
    }

    /// Exhaustive `r`/`s` range rejects: zero, exactly `n`, and `n+1`
    /// must all fail on both families without reaching the twin
    /// multiplication.
    #[test]
    fn reject_out_of_range_r_s() {
        for id in [CurveId::P192, CurveId::K163] {
            let curve = id.curve();
            let keys = Keypair::derive(&curve, b"range signer");
            let e = hash_to_scalar(&curve, b"range msg");
            let nonce = derive_scalar(&curve, b"range nonce", b"nonce");
            let sig = sign_with_nonce(&curve, keys.private(), &e, &nonce).expect("nonce ok");
            assert!(verify_prehashed(&curve, &keys.public(), &e, &sig));
            let n = curve.n();
            let bad_values = [Mp::zero(), n.clone(), n.add(&Mp::one())];
            for bad in &bad_values {
                let bad_r = Signature {
                    r: bad.clone(),
                    s: sig.s.clone(),
                };
                assert!(
                    !verify_prehashed(&curve, &keys.public(), &e, &bad_r),
                    "{id:?} accepted r = {bad:?}"
                );
                let bad_s = Signature {
                    r: sig.r.clone(),
                    s: bad.clone(),
                };
                assert!(
                    !verify_prehashed(&curve, &keys.public(), &e, &bad_s),
                    "{id:?} accepted s = {bad:?}"
                );
            }
        }
    }

    /// A public key from the wrong curve family must be rejected, not
    /// misinterpreted as coordinates on the verifying curve.
    #[test]
    fn reject_wrong_family_public_key() {
        let prime = CurveId::P192.curve();
        let binary = CurveId::K163.curve();
        let prime_keys = Keypair::derive(&prime, b"prime signer");
        let binary_keys = Keypair::derive(&binary, b"binary signer");
        let e = hash_to_scalar(&prime, b"family msg");
        let nonce = derive_scalar(&prime, b"family nonce", b"nonce");
        let sig = sign_with_nonce(&prime, prime_keys.private(), &e, &nonce).expect("nonce ok");
        assert!(verify_prehashed(&prime, &prime_keys.public(), &e, &sig));
        assert!(!verify_prehashed(&prime, &binary_keys.public(), &e, &sig));
        let eb = hash_to_scalar(&binary, b"family msg");
        let nonce_b = derive_scalar(&binary, b"family nonce b", b"nonce");
        let sig_b =
            sign_with_nonce(&binary, binary_keys.private(), &eb, &nonce_b).expect("nonce ok");
        assert!(!verify_prehashed(
            &binary,
            &prime_keys.public(),
            &eb,
            &sig_b
        ));
    }

    /// Digest truncation for orders wider than 256 bits (K-409/K-571):
    /// a digest longer than `n` keeps only its leftmost `bits(n)` bits,
    /// and a 256-bit digest passes through unshifted (it is already
    /// shorter than `n`, so no reduction occurs either).
    #[test]
    fn digest_truncation_wide_orders() {
        for id in [CurveId::K409, CurveId::K571] {
            let curve = id.curve();
            let n_bits = curve.n().bit_len();
            assert!(n_bits > 256, "{id:?} order unexpectedly narrow");

            // 64-byte (512-bit) digest of descending bytes: the
            // expected scalar is the digest value shifted down to
            // bits(n), computed here via an independent byte walk.
            let digest: Vec<u8> = (0..64u32).map(|i| 0xff - i as u8).collect();
            let mut expected = Mp::zero();
            for &b in &digest {
                expected = expected.shl(8).add(&Mp::from_u64(b as u64));
            }
            // K-409 shifts (512 > 409); K-571 does not (512 < 570).
            let expected = expected.shr(512usize.saturating_sub(n_bits)).rem(curve.n());
            assert_eq!(digest_to_scalar(&curve, &digest), expected, "{id:?}");

            // SHA-256 output is narrower than n: value passes through.
            let e = hash_to_scalar(&curve, b"wide order msg");
            let raw = crate::sha256::sha256(b"wide order msg");
            let mut raw_val = Mp::zero();
            for &b in &raw {
                raw_val = raw_val.shl(8).add(&Mp::from_u64(b as u64));
            }
            assert_eq!(e, raw_val, "{id:?} narrow digest must not shift");
        }
    }
}
