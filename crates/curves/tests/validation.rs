//! Full self-validation of all ten curve parameter sets and end-to-end
//! ECDSA on every one — the correctness bedrock under all energy numbers.

use ule_curves::ecdsa::{sign, verify, Keypair};
use ule_curves::params::CurveId;

#[test]
fn every_curve_validates() {
    for id in CurveId::ALL {
        let curve = id.curve();
        curve
            .validate()
            .unwrap_or_else(|e| panic!("{} failed validation: {e}", id.name()));
    }
}

#[test]
fn ecdsa_round_trip_every_curve() {
    for id in CurveId::ALL {
        let curve = id.curve();
        let keys = Keypair::derive(&curve, format!("signer for {}", id.name()).as_bytes());
        let msg = b"design space of ultra-low energy asymmetric cryptography";
        let sig = sign(&curve, &keys, msg, b"deterministic nonce seed");
        assert!(
            verify(&curve, &keys.public(), msg, &sig),
            "{}: genuine signature rejected",
            id.name()
        );
        assert!(
            !verify(&curve, &keys.public(), b"a different message", &sig),
            "{}: forged message accepted",
            id.name()
        );
    }
}

#[test]
fn group_orders_have_expected_bit_lengths() {
    for id in CurveId::ALL {
        let curve = id.curve();
        let n_bits = curve.n().bit_len();
        let q_bits = id.bits();
        assert!(
            n_bits <= q_bits + 1 && n_bits + 3 >= q_bits,
            "{}: order has {} bits for a {}-bit field",
            id.name(),
            n_bits,
            q_bits
        );
    }
}
