//! Property-based tests of the curve layer: group laws under random
//! scalars, algorithm agreement, and ECDSA round trips.

use proptest::prelude::*;
use ule_curves::ecdsa::{self, Keypair};
use ule_curves::params::CurveId;
use ule_curves::scalar;
use ule_mpmath::mp::Mp;

fn arb_scalar_bits(bits: usize) -> impl Strategy<Value = Mp> {
    prop::collection::vec(any::<u32>(), (bits + 31) / 32)
        .prop_map(|v| Mp::from_limbs(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn window_equals_binary_oracle_p192(k in arb_scalar_bits(96)) {
        let curve = CurveId::P192.curve();
        let c = curve.prime();
        let g = c.generator();
        prop_assert_eq!(
            scalar::mul_window(c, &k, &g),
            scalar::mul_binary(c, &k, &g)
        );
    }

    #[test]
    fn window_equals_binary_oracle_k163(k in arb_scalar_bits(96)) {
        let curve = CurveId::K163.curve();
        let c = curve.binary();
        let g = c.generator();
        prop_assert_eq!(
            scalar::mul_window(c, &k, &g),
            scalar::mul_binary(c, &k, &g)
        );
    }

    #[test]
    fn scalar_mult_distributes_over_addition(a in arb_scalar_bits(64), b in arb_scalar_bits(64)) {
        // (a + b)G == aG + bG
        let curve = CurveId::P192.curve();
        let c = curve.prime();
        let g = c.generator();
        let lhs = scalar::mul_window(c, &a.add(&b), &g);
        let ag = scalar::mul_window(c, &a, &g);
        let bg = scalar::mul_window(c, &b, &g);
        let rhs = c.affine_add(&ag, &bg);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn twin_is_the_sum_of_singles(u1 in arb_scalar_bits(64), u2 in arb_scalar_bits(64)) {
        let curve = CurveId::K163.curve();
        let c = curve.binary();
        let g = c.generator();
        let q = scalar::mul_window(c, &Mp::from_u64(0xdead_beef), &g);
        let lhs = scalar::twin_mul(c, &u1, &g, &u2, &q);
        let rhs = c.affine_add(
            &scalar::mul_window(c, &u1, &g),
            &scalar::mul_window(c, &u2, &q),
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn ecdsa_round_trip_random_messages(msg in prop::collection::vec(any::<u8>(), 0..200),
                                        seed in any::<u64>()) {
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, &seed.to_be_bytes());
        let sig = ecdsa::sign(&curve, &keys, &msg, b"prop nonce");
        prop_assert!(ecdsa::verify(&curve, &keys.public(), &msg, &sig));
        // Any bit flip in the message must be rejected.
        if !msg.is_empty() {
            let mut bad = msg.clone();
            bad[0] ^= 1;
            prop_assert!(!ecdsa::verify(&curve, &keys.public(), &bad, &sig));
        }
    }

    #[test]
    fn signature_malleability_rejected(extra in 1u64..1000) {
        // Any (r, s + delta) must fail.
        let curve = CurveId::P192.curve();
        let keys = Keypair::derive(&curve, b"malleability");
        let e = ecdsa::hash_to_scalar(&curve, b"fixed message");
        let nonce = ecdsa::derive_scalar(&curve, b"fixed nonce", b"n");
        let sig = ecdsa::sign_with_nonce(&curve, keys.private(), &e, &nonce).unwrap();
        let bad = ecdsa::Signature {
            r: sig.r.clone(),
            s: sig.s.add(&Mp::from_u64(extra)).rem(curve.n()),
        };
        prop_assert!(!ecdsa::verify_prehashed(&curve, &keys.public(), &e, &bad));
    }

    #[test]
    fn montgomery_ladder_agrees(k in arb_scalar_bits(48)) {
        let curve = CurveId::K163.curve();
        let c = curve.binary();
        let g = c.generator();
        prop_assume!(!k.is_zero());
        let (ladder, _) = scalar::montgomery_ladder_2m(c, &k, &g);
        prop_assert_eq!(ladder, scalar::mul_window(c, &k, &g));
    }
}
