//! Property-style tests of the curve layer: group laws under random
//! scalars, algorithm agreement, and ECDSA round trips. Randomness comes
//! from the workspace's deterministic PRNG (`ule-testkit`) so every run
//! exercises the same reproducible operand set.

use ule_curves::ecdsa::{self, Keypair};
use ule_curves::params::CurveId;
use ule_curves::scalar;
use ule_mpmath::mp::Mp;
use ule_testkit::Rng;

fn scalar_bits(rng: &mut Rng, bits: usize) -> Mp {
    Mp::from_limbs(&rng.vec_u32(bits.div_ceil(32)))
}

#[test]
fn window_equals_binary_oracle_p192() {
    let mut rng = Rng::new(0x7192);
    let curve = CurveId::P192.curve();
    let c = curve.prime();
    let g = c.generator();
    for _ in 0..12 {
        let k = scalar_bits(&mut rng, 96);
        assert_eq!(scalar::mul_window(c, &k, &g), scalar::mul_binary(c, &k, &g));
    }
}

#[test]
fn window_equals_binary_oracle_k163() {
    let mut rng = Rng::new(0x7163);
    let curve = CurveId::K163.curve();
    let c = curve.binary();
    let g = c.generator();
    for _ in 0..12 {
        let k = scalar_bits(&mut rng, 96);
        assert_eq!(scalar::mul_window(c, &k, &g), scalar::mul_binary(c, &k, &g));
    }
}

#[test]
fn scalar_mult_distributes_over_addition() {
    // (a + b)G == aG + bG
    let mut rng = Rng::new(0xadd);
    let curve = CurveId::P192.curve();
    let c = curve.prime();
    let g = c.generator();
    for _ in 0..12 {
        let a = scalar_bits(&mut rng, 64);
        let b = scalar_bits(&mut rng, 64);
        let lhs = scalar::mul_window(c, &a.add(&b), &g);
        let ag = scalar::mul_window(c, &a, &g);
        let bg = scalar::mul_window(c, &b, &g);
        let rhs = c.affine_add(&ag, &bg);
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn twin_is_the_sum_of_singles() {
    let mut rng = Rng::new(0x2720);
    let curve = CurveId::K163.curve();
    let c = curve.binary();
    let g = c.generator();
    let q = scalar::mul_window(c, &Mp::from_u64(0xdead_beef), &g);
    for _ in 0..12 {
        let u1 = scalar_bits(&mut rng, 64);
        let u2 = scalar_bits(&mut rng, 64);
        let lhs = scalar::twin_mul(c, &u1, &g, &u2, &q);
        let rhs = c.affine_add(
            &scalar::mul_window(c, &u1, &g),
            &scalar::mul_window(c, &u2, &q),
        );
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn ecdsa_round_trip_random_messages() {
    let mut rng = Rng::new(0xec5a);
    let curve = CurveId::P192.curve();
    for _ in 0..12 {
        let len = rng.range(0, 200);
        let msg = rng.bytes(len);
        let seed = rng.next_u64();
        let keys = Keypair::derive(&curve, &seed.to_be_bytes());
        let sig = ecdsa::sign(&curve, &keys, &msg, b"prop nonce");
        assert!(ecdsa::verify(&curve, &keys.public(), &msg, &sig));
        // Any bit flip in the message must be rejected.
        if !msg.is_empty() {
            let mut bad = msg.clone();
            bad[0] ^= 1;
            assert!(!ecdsa::verify(&curve, &keys.public(), &bad, &sig));
        }
    }
}

#[test]
fn signature_malleability_rejected() {
    // Any (r, s + delta) must fail.
    let mut rng = Rng::new(0x3a11);
    let curve = CurveId::P192.curve();
    let keys = Keypair::derive(&curve, b"malleability");
    let e = ecdsa::hash_to_scalar(&curve, b"fixed message");
    let nonce = ecdsa::derive_scalar(&curve, b"fixed nonce", b"n");
    let sig = ecdsa::sign_with_nonce(&curve, keys.private(), &e, &nonce).unwrap();
    for _ in 0..12 {
        let extra = 1 + rng.below(999);
        let bad = ecdsa::Signature {
            r: sig.r.clone(),
            s: sig.s.add(&Mp::from_u64(extra)).rem(curve.n()),
        };
        assert!(!ecdsa::verify_prehashed(&curve, &keys.public(), &e, &bad));
    }
}

#[test]
fn montgomery_ladder_agrees() {
    let mut rng = Rng::new(0x1add);
    let curve = CurveId::K163.curve();
    let c = curve.binary();
    let g = c.generator();
    for _ in 0..12 {
        let k = scalar_bits(&mut rng, 48);
        if k.is_zero() {
            continue;
        }
        let (ladder, _) = scalar::montgomery_ladder_2m(c, &k, &g);
        assert_eq!(ladder, scalar::mul_window(c, &k, &g));
    }
}
