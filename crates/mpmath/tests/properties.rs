//! Property-based tests for the multi-precision and finite-field layers.
//!
//! These are the invariants the paper's whole evaluation rests on: if the
//! host arithmetic is wrong, every differential test of the simulated
//! software and of the accelerators is meaningless.

use proptest::prelude::*;
use ule_mpmath::f2m::{clmul32, BinaryField};
use ule_mpmath::fp::PrimeField;
use ule_mpmath::mont::Montgomery;
use ule_mpmath::mp::{self, Mp};
use ule_mpmath::nist::{NistBinary, NistPrime};

fn arb_mp(max_limbs: usize) -> impl Strategy<Value = Mp> {
    prop::collection::vec(any::<u32>(), 0..=max_limbs).prop_map(|v| Mp::from_limbs(&v))
}

/// A random fully-reduced element of the given prime field.
fn arb_fp(p: NistPrime) -> impl Strategy<Value = Mp> {
    let k = p.limbs();
    prop::collection::vec(any::<u32>(), k).prop_map(move |v| Mp::from_limbs(&v).rem(&p.modulus()))
}

fn arb_f2m(b: NistBinary) -> impl Strategy<Value = Vec<u32>> {
    let k = b.limbs();
    let m = b.m();
    prop::collection::vec(any::<u32>(), k).prop_map(move |mut v| {
        let r = m % 32;
        v[k - 1] &= (1u32 << r) - 1;
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mp_add_sub_round_trip(a in arb_mp(20), b in arb_mp(20)) {
        let s = a.add(&b);
        prop_assert_eq!(s.sub(&b), a);
    }

    #[test]
    fn mp_mul_agrees_with_u128(a in any::<u64>(), b in any::<u64>()) {
        let p = Mp::from_u64(a).mul(&Mp::from_u64(b));
        let expect = a as u128 * b as u128;
        let got = (p.low_u64() as u128)
            | ((p.shr(64).low_u64() as u128) << 64);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn mp_div_rem_invariant(a in arb_mp(20), b in arb_mp(8)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn scanning_methods_agree(a in prop::collection::vec(any::<u32>(), 1..12)) {
        let b: Vec<u32> = a.iter().rev().copied().collect();
        prop_assert_eq!(
            mp::mul_operand_scanning(&a, &b),
            mp::mul_product_scanning(&a, &b)
        );
    }

    #[test]
    fn fp_field_axioms_p192(a in arb_fp(NistPrime::P192),
                            b in arb_fp(NistPrime::P192),
                            c in arb_fp(NistPrime::P192)) {
        let f = PrimeField::nist(NistPrime::P192);
        let (a, b, c) = (f.from_mp(&a), f.from_mp(&b), f.from_mp(&c));
        // commutativity
        prop_assert_eq!(f.add(&a, &b), f.add(&b, &a));
        prop_assert_eq!(f.mul(&a, &b), f.mul(&b, &a));
        // associativity
        prop_assert_eq!(f.mul(&f.mul(&a, &b), &c), f.mul(&a, &f.mul(&b, &c)));
        // distributivity
        prop_assert_eq!(
            f.mul(&a, &f.add(&b, &c)),
            f.add(&f.mul(&a, &b), &f.mul(&a, &c))
        );
        // additive inverse
        prop_assert_eq!(f.add(&a, &f.neg(&a)), f.zero());
    }

    #[test]
    fn fp_mul_matches_division_all_fields(seed in any::<u64>()) {
        for p in NistPrime::ALL {
            let f = PrimeField::nist(p);
            let a = f.from_mp(&Mp::from_u64(seed).mul(&Mp::from_u64(0x9E3779B97F4A7C15)));
            let b = f.from_mp(&f.modulus().sub(&Mp::from_u64(seed | 1)));
            let fast = f.mul(&a, &b).to_mp();
            let slow = a.to_mp().mul(&b.to_mp()).rem(f.modulus());
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn fp_inverse_is_inverse(a in arb_fp(NistPrime::P256)) {
        let f = PrimeField::nist(NistPrime::P256);
        let a = f.from_mp(&a);
        prop_assume!(!a.is_zero());
        let inv = f.inv(&a).unwrap();
        prop_assert_eq!(f.mul(&a, &inv), f.one());
        prop_assert_eq!(f.inv_fermat(&a).unwrap(), inv);
    }

    #[test]
    fn montgomery_matches_division(a in arb_fp(NistPrime::P384), b in arb_fp(NistPrime::P384)) {
        let n = NistPrime::P384.modulus();
        let m = Montgomery::new(&n);
        prop_assert_eq!(m.modmul(&a, &b), a.mul(&b).rem(&n));
    }

    #[test]
    fn montgomery_generic_modulus(a in any::<u64>(), b in any::<u64>(), m_seed in any::<u32>()) {
        // random odd modulus >= 3, 96 bits
        let n = Mp::from_u64(m_seed as u64 | 1)
            .shl(64)
            .add(&Mp::from_u64(a | 1));
        prop_assume!(n.bit_len() > 64);
        let mont = Montgomery::new(&n);
        let x = Mp::from_u64(a);
        let y = Mp::from_u64(b);
        prop_assert_eq!(mont.modmul(&x, &y), x.mul(&y).rem(&n));
    }

    #[test]
    fn clmul_is_commutative_distributive(a in any::<u32>(), b in any::<u32>(), c in any::<u32>()) {
        prop_assert_eq!(clmul32(a, b), clmul32(b, a));
        prop_assert_eq!(clmul32(a, b ^ c), clmul32(a, b) ^ clmul32(a, c));
    }

    #[test]
    fn f2m_multipliers_agree(a in arb_f2m(NistBinary::B163), b in arb_f2m(NistBinary::B163)) {
        let f = BinaryField::nist(NistBinary::B163);
        let a = f.from_limbs(&a);
        let b = f.from_limbs(&b);
        prop_assert_eq!(f.mul_comb(&a, &b), f.mul_clmul(&a, &b));
    }

    #[test]
    fn f2m_multipliers_agree_b571(a in arb_f2m(NistBinary::B571), b in arb_f2m(NistBinary::B571)) {
        let f = BinaryField::nist(NistBinary::B571);
        let a = f.from_limbs(&a);
        let b = f.from_limbs(&b);
        prop_assert_eq!(f.mul_comb(&a, &b), f.mul_clmul(&a, &b));
    }

    #[test]
    fn f2m_square_is_mul(a in arb_f2m(NistBinary::B283)) {
        let f = BinaryField::nist(NistBinary::B283);
        let a = f.from_limbs(&a);
        prop_assert_eq!(f.sqr(&a), f.mul(&a, &a));
    }

    #[test]
    fn f2m_inverse(a in arb_f2m(NistBinary::B233)) {
        let f = BinaryField::nist(NistBinary::B233);
        let a = f.from_limbs(&a);
        prop_assume!(!a.is_zero());
        let inv = f.inv(&a).unwrap();
        prop_assert_eq!(f.mul(&a, &inv), f.one());
        prop_assert_eq!(f.inv_fermat(&a).unwrap(), inv);
    }

    #[test]
    fn f2m_field_axioms(a in arb_f2m(NistBinary::B163),
                        b in arb_f2m(NistBinary::B163),
                        c in arb_f2m(NistBinary::B163)) {
        let f = BinaryField::nist(NistBinary::B163);
        let (a, b, c) = (f.from_limbs(&a), f.from_limbs(&b), f.from_limbs(&c));
        prop_assert_eq!(f.mul(&f.mul(&a, &b), &c), f.mul(&a, &f.mul(&b, &c)));
        prop_assert_eq!(
            f.mul(&a, &f.add(&b, &c)),
            f.add(&f.mul(&a, &b), &f.mul(&a, &c))
        );
        // Frobenius is additive.
        prop_assert_eq!(f.sqr(&f.add(&a, &b)), f.add(&f.sqr(&a), &f.sqr(&b)));
    }

    #[test]
    fn fp_reduce_wide_random(w in prop::collection::vec(any::<u32>(), 12)) {
        let f = PrimeField::nist(NistPrime::P192);
        let got = f.reduce_wide(&w).to_mp();
        let expect = Mp::from_limbs(&w).rem(f.modulus());
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn fp_reduce_wide_random_p521(w in prop::collection::vec(any::<u32>(), 34)) {
        let f = PrimeField::nist(NistPrime::P521);
        let got = f.reduce_wide(&w).to_mp();
        let expect = Mp::from_limbs(&w).rem(f.modulus());
        prop_assert_eq!(got, expect);
    }
}
