//! Property-based tests for the multi-precision and finite-field layers.
//!
//! These are the invariants the paper's whole evaluation rests on: if the
//! host arithmetic is wrong, every differential test of the simulated
//! software and of the accelerators is meaningless.
//!
//! Each test draws 64 cases from a seeded `ule_testkit::Rng`, so runs
//! are deterministic and reproducible by seed.

use ule_mpmath::f2m::{clmul32, BinaryField};
use ule_mpmath::fp::PrimeField;
use ule_mpmath::mont::Montgomery;
use ule_mpmath::mp::{self, Mp};
use ule_mpmath::nist::{NistBinary, NistPrime};
use ule_testkit::Rng;

const CASES: usize = 64;

fn rand_mp(rng: &mut Rng, max_limbs: usize) -> Mp {
    let n = rng.below(max_limbs as u64 + 1) as usize;
    Mp::from_limbs(&rng.vec_u32(n))
}

/// A random fully-reduced element of the given prime field.
fn rand_fp(rng: &mut Rng, p: NistPrime) -> Mp {
    Mp::from_limbs(&rng.vec_u32(p.limbs())).rem(&p.modulus())
}

fn rand_f2m(rng: &mut Rng, b: NistBinary) -> Vec<u32> {
    let k = b.limbs();
    let mut v = rng.vec_u32(k);
    let r = b.m() % 32;
    v[k - 1] &= (1u32 << r) - 1;
    v
}

#[test]
fn mp_add_sub_round_trip() {
    let mut rng = Rng::new(0x5eed_0001);
    for _ in 0..CASES {
        let a = rand_mp(&mut rng, 20);
        let b = rand_mp(&mut rng, 20);
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
    }
}

#[test]
fn mp_mul_agrees_with_u128() {
    let mut rng = Rng::new(0x5eed_0002);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let p = Mp::from_u64(a).mul(&Mp::from_u64(b));
        let expect = a as u128 * b as u128;
        let got = (p.low_u64() as u128) | ((p.shr(64).low_u64() as u128) << 64);
        assert_eq!(got, expect);
    }
}

#[test]
fn mp_div_rem_invariant() {
    let mut rng = Rng::new(0x5eed_0003);
    for _ in 0..CASES {
        let a = rand_mp(&mut rng, 20);
        let b = rand_mp(&mut rng, 8);
        if b.is_zero() {
            continue;
        }
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(q.mul(&b).add(&r), a);
    }
}

#[test]
fn scanning_methods_agree() {
    let mut rng = Rng::new(0x5eed_0004);
    for _ in 0..CASES {
        let n = rng.range(1, 12);
        let a = rng.vec_u32(n);
        let b: Vec<u32> = a.iter().rev().copied().collect();
        assert_eq!(
            mp::mul_operand_scanning(&a, &b),
            mp::mul_product_scanning(&a, &b)
        );
    }
}

#[test]
fn fp_field_axioms_p192() {
    let mut rng = Rng::new(0x5eed_0005);
    let f = PrimeField::nist(NistPrime::P192);
    for _ in 0..CASES {
        let a = f.from_mp(&rand_fp(&mut rng, NistPrime::P192));
        let b = f.from_mp(&rand_fp(&mut rng, NistPrime::P192));
        let c = f.from_mp(&rand_fp(&mut rng, NistPrime::P192));
        // commutativity
        assert_eq!(f.add(&a, &b), f.add(&b, &a));
        assert_eq!(f.mul(&a, &b), f.mul(&b, &a));
        // associativity
        assert_eq!(f.mul(&f.mul(&a, &b), &c), f.mul(&a, &f.mul(&b, &c)));
        // distributivity
        assert_eq!(
            f.mul(&a, &f.add(&b, &c)),
            f.add(&f.mul(&a, &b), &f.mul(&a, &c))
        );
        // additive inverse
        assert_eq!(f.add(&a, &f.neg(&a)), f.zero());
    }
}

#[test]
fn fp_mul_matches_division_all_fields() {
    let mut rng = Rng::new(0x5eed_0006);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        for p in NistPrime::ALL {
            let f = PrimeField::nist(p);
            let a = f.from_mp(&Mp::from_u64(seed).mul(&Mp::from_u64(0x9E3779B97F4A7C15)));
            let b = f.from_mp(&f.modulus().sub(&Mp::from_u64(seed | 1)));
            let fast = f.mul(&a, &b).to_mp();
            let slow = a.to_mp().mul(&b.to_mp()).rem(f.modulus());
            assert_eq!(fast, slow);
        }
    }
}

#[test]
fn fp_inverse_is_inverse() {
    let mut rng = Rng::new(0x5eed_0007);
    let f = PrimeField::nist(NistPrime::P256);
    for _ in 0..CASES {
        let a = f.from_mp(&rand_fp(&mut rng, NistPrime::P256));
        if a.is_zero() {
            continue;
        }
        let inv = f.inv(&a).unwrap();
        assert_eq!(f.mul(&a, &inv), f.one());
        assert_eq!(f.inv_fermat(&a).unwrap(), inv);
    }
}

#[test]
fn montgomery_matches_division() {
    let mut rng = Rng::new(0x5eed_0008);
    let n = NistPrime::P384.modulus();
    let m = Montgomery::new(&n);
    for _ in 0..CASES {
        let a = rand_fp(&mut rng, NistPrime::P384);
        let b = rand_fp(&mut rng, NistPrime::P384);
        assert_eq!(m.modmul(&a, &b), a.mul(&b).rem(&n));
    }
}

#[test]
fn montgomery_generic_modulus() {
    let mut rng = Rng::new(0x5eed_0009);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let m_seed = rng.next_u32();
        // random odd modulus >= 3, 96 bits
        let n = Mp::from_u64(m_seed as u64 | 1)
            .shl(64)
            .add(&Mp::from_u64(a | 1));
        if n.bit_len() <= 64 {
            continue;
        }
        let mont = Montgomery::new(&n);
        let x = Mp::from_u64(a);
        let y = Mp::from_u64(b);
        assert_eq!(mont.modmul(&x, &y), x.mul(&y).rem(&n));
    }
}

#[test]
fn clmul_is_commutative_distributive() {
    let mut rng = Rng::new(0x5eed_000a);
    for _ in 0..CASES {
        let (a, b, c) = (rng.next_u32(), rng.next_u32(), rng.next_u32());
        assert_eq!(clmul32(a, b), clmul32(b, a));
        assert_eq!(clmul32(a, b ^ c), clmul32(a, b) ^ clmul32(a, c));
    }
}

#[test]
fn f2m_multipliers_agree() {
    let mut rng = Rng::new(0x5eed_000b);
    let f = BinaryField::nist(NistBinary::B163);
    for _ in 0..CASES {
        let a = f.from_limbs(&rand_f2m(&mut rng, NistBinary::B163));
        let b = f.from_limbs(&rand_f2m(&mut rng, NistBinary::B163));
        assert_eq!(f.mul_comb(&a, &b), f.mul_clmul(&a, &b));
    }
}

#[test]
fn f2m_multipliers_agree_b571() {
    let mut rng = Rng::new(0x5eed_000c);
    let f = BinaryField::nist(NistBinary::B571);
    for _ in 0..CASES {
        let a = f.from_limbs(&rand_f2m(&mut rng, NistBinary::B571));
        let b = f.from_limbs(&rand_f2m(&mut rng, NistBinary::B571));
        assert_eq!(f.mul_comb(&a, &b), f.mul_clmul(&a, &b));
    }
}

#[test]
fn f2m_square_is_mul() {
    let mut rng = Rng::new(0x5eed_000d);
    let f = BinaryField::nist(NistBinary::B283);
    for _ in 0..CASES {
        let a = f.from_limbs(&rand_f2m(&mut rng, NistBinary::B283));
        assert_eq!(f.sqr(&a), f.mul(&a, &a));
    }
}

#[test]
fn f2m_inverse() {
    let mut rng = Rng::new(0x5eed_000e);
    let f = BinaryField::nist(NistBinary::B233);
    for _ in 0..CASES {
        let a = f.from_limbs(&rand_f2m(&mut rng, NistBinary::B233));
        if a.is_zero() {
            continue;
        }
        let inv = f.inv(&a).unwrap();
        assert_eq!(f.mul(&a, &inv), f.one());
        assert_eq!(f.inv_fermat(&a).unwrap(), inv);
    }
}

#[test]
fn f2m_field_axioms() {
    let mut rng = Rng::new(0x5eed_000f);
    let f = BinaryField::nist(NistBinary::B163);
    for _ in 0..CASES {
        let a = f.from_limbs(&rand_f2m(&mut rng, NistBinary::B163));
        let b = f.from_limbs(&rand_f2m(&mut rng, NistBinary::B163));
        let c = f.from_limbs(&rand_f2m(&mut rng, NistBinary::B163));
        assert_eq!(f.mul(&f.mul(&a, &b), &c), f.mul(&a, &f.mul(&b, &c)));
        assert_eq!(
            f.mul(&a, &f.add(&b, &c)),
            f.add(&f.mul(&a, &b), &f.mul(&a, &c))
        );
        // Frobenius is additive.
        assert_eq!(f.sqr(&f.add(&a, &b)), f.add(&f.sqr(&a), &f.sqr(&b)));
    }
}

#[test]
fn fp_reduce_wide_random() {
    let mut rng = Rng::new(0x5eed_0010);
    let f = PrimeField::nist(NistPrime::P192);
    for _ in 0..CASES {
        let w = rng.vec_u32(12);
        let got = f.reduce_wide(&w).to_mp();
        let expect = Mp::from_limbs(&w).rem(f.modulus());
        assert_eq!(got, expect);
    }
}

#[test]
fn fp_reduce_wide_random_p521() {
    let mut rng = Rng::new(0x5eed_0011);
    let f = PrimeField::nist(NistPrime::P521);
    for _ in 0..CASES {
        let w = rng.vec_u32(34);
        let got = f.reduce_wide(&w).to_mp();
        let expect = Mp::from_limbs(&w).rem(f.modulus());
        assert_eq!(got, expect);
    }
}
