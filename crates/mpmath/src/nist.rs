//! The NIST field definitions used throughout the study.
//!
//! The design-space exploration covers five prime fields (eq. 4.3–4.7) and
//! five binary fields (eq. 4.8–4.12). The primes are *generalized Mersenne*
//! numbers whose terms are multiples of 2^32, chosen by NIST precisely so
//! that fast reduction is efficient on a 32-bit datapath (§4.2.1); the
//! binary reduction polynomials are the NIST trinomials/pentanomials.
//!
//! The moduli are **constructed from their defining formulas** rather than
//! embedded as opaque hex blobs, so the definitions are self-evidently the
//! ones in the paper.

use crate::mp::Mp;

/// The five NIST generalized-Mersenne primes of the study (eq. 4.3–4.7).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum NistPrime {
    /// P-192: `2^192 - 2^64 - 1` (eq. 4.3).
    P192,
    /// P-224: `2^224 - 2^96 + 1` (eq. 4.4).
    P224,
    /// P-256: `2^256 - 2^224 + 2^192 + 2^96 - 1` (eq. 4.5).
    P256,
    /// P-384: `2^384 - 2^128 - 2^96 + 2^32 - 1` (eq. 4.6).
    P384,
    /// P-521: `2^521 - 1` (eq. 4.7).
    P521,
}

impl NistPrime {
    /// All five primes in increasing key-size order.
    pub const ALL: [NistPrime; 5] = [
        NistPrime::P192,
        NistPrime::P224,
        NistPrime::P256,
        NistPrime::P384,
        NistPrime::P521,
    ];

    /// Key size in bits (192, 224, 256, 384, 521).
    pub fn bits(self) -> usize {
        match self {
            NistPrime::P192 => 192,
            NistPrime::P224 => 224,
            NistPrime::P256 => 256,
            NistPrime::P384 => 384,
            NistPrime::P521 => 521,
        }
    }

    /// Number of 32-bit limbs needed to store a field element
    /// (`k = ceil(n/w)`, §4.2).
    pub fn limbs(self) -> usize {
        self.bits().div_ceil(32)
    }

    /// The modulus, built from its defining formula.
    pub fn modulus(self) -> Mp {
        let one = Mp::one();
        let pow = |e: usize| Mp::one().shl(e);
        match self {
            NistPrime::P192 => pow(192).sub(&pow(64)).sub(&one),
            NistPrime::P224 => pow(224).sub(&pow(96)).add(&one),
            NistPrime::P256 => pow(256)
                .sub(&pow(224))
                .add(&pow(192))
                .add(&pow(96))
                .sub(&one),
            NistPrime::P384 => pow(384)
                .sub(&pow(128))
                .sub(&pow(96))
                .add(&pow(32))
                .sub(&one),
            NistPrime::P521 => pow(521).sub(&one),
        }
    }

    /// Human-readable name, e.g. `"P-256"`.
    pub fn name(self) -> &'static str {
        match self {
            NistPrime::P192 => "P-192",
            NistPrime::P224 => "P-224",
            NistPrime::P256 => "P-256",
            NistPrime::P384 => "P-384",
            NistPrime::P521 => "P-521",
        }
    }
}

/// The five NIST binary fields of the study (eq. 4.8–4.12).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum NistBinary {
    /// GF(2^163), `f(x) = x^163 + x^7 + x^6 + x^3 + 1` (eq. 4.8).
    B163,
    /// GF(2^233), `f(x) = x^233 + x^74 + 1` (eq. 4.9).
    B233,
    /// GF(2^283), `f(x) = x^283 + x^12 + x^7 + x^5 + 1` (eq. 4.10).
    B283,
    /// GF(2^409), `f(x) = x^409 + x^87 + 1` (eq. 4.11).
    B409,
    /// GF(2^571), `f(x) = x^571 + x^10 + x^5 + x^2 + 1` (eq. 4.12).
    B571,
}

impl NistBinary {
    /// All five binary fields in increasing key-size order.
    pub const ALL: [NistBinary; 5] = [
        NistBinary::B163,
        NistBinary::B233,
        NistBinary::B283,
        NistBinary::B409,
        NistBinary::B571,
    ];

    /// Field extension degree `m`.
    pub fn m(self) -> usize {
        match self {
            NistBinary::B163 => 163,
            NistBinary::B233 => 233,
            NistBinary::B283 => 283,
            NistBinary::B409 => 409,
            NistBinary::B571 => 571,
        }
    }

    /// Number of 32-bit limbs per field element.
    pub fn limbs(self) -> usize {
        self.m().div_ceil(32)
    }

    /// Exponents of the reduction polynomial below the leading term, in
    /// decreasing order (the leading `x^m` term is implied).
    ///
    /// For example `B163` yields `[7, 6, 3, 0]` for
    /// `x^163 + x^7 + x^6 + x^3 + 1`.
    pub fn poly_terms(self) -> &'static [usize] {
        match self {
            NistBinary::B163 => &[7, 6, 3, 0],
            NistBinary::B233 => &[74, 0],
            NistBinary::B283 => &[12, 7, 5, 0],
            NistBinary::B409 => &[87, 0],
            NistBinary::B571 => &[10, 5, 2, 0],
        }
    }

    /// Human-readable name, e.g. `"B-163"`.
    pub fn name(self) -> &'static str {
        match self {
            NistBinary::B163 => "B-163",
            NistBinary::B233 => "B-233",
            NistBinary::B283 => "B-283",
            NistBinary::B409 => "B-409",
            NistBinary::B571 => "B-571",
        }
    }

    /// The prime field of *equivalent security* the paper pairs this binary
    /// field with (Fig 7.7: 192/163, 224/233, 256/283, 384/409, 521/571).
    pub fn paired_prime(self) -> NistPrime {
        match self {
            NistBinary::B163 => NistPrime::P192,
            NistBinary::B233 => NistPrime::P224,
            NistBinary::B283 => NistPrime::P256,
            NistBinary::B409 => NistPrime::P384,
            NistBinary::B571 => NistPrime::P521,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes_have_expected_bit_lengths_and_are_prime() {
        for p in NistPrime::ALL {
            let m = p.modulus();
            assert_eq!(m.bit_len(), p.bits(), "{}", p.name());
            assert!(m.is_probable_prime(8), "{} not prime?!", p.name());
        }
    }

    #[test]
    fn p192_matches_published_hex() {
        assert_eq!(
            NistPrime::P192.modulus().to_hex(),
            "fffffffffffffffffffffffffffffffeffffffffffffffff"
        );
    }

    #[test]
    fn p256_matches_published_hex() {
        assert_eq!(
            NistPrime::P256.modulus().to_hex(),
            "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"
        );
    }

    #[test]
    fn p521_is_mersenne() {
        let m = NistPrime::P521.modulus();
        assert_eq!(m.bit_len(), 521);
        assert!((0..521).all(|i| m.bit(i)));
    }

    #[test]
    fn binary_terms_are_decreasing_and_below_m() {
        for b in NistBinary::ALL {
            let terms = b.poly_terms();
            assert!(terms.windows(2).all(|w| w[0] > w[1]));
            assert!(terms[0] < b.m());
            assert_eq!(*terms.last().unwrap(), 0);
        }
    }

    #[test]
    fn limb_counts() {
        assert_eq!(NistPrime::P521.limbs(), 17);
        assert_eq!(NistBinary::B163.limbs(), 6);
        assert_eq!(NistBinary::B571.limbs(), 18);
    }
}
