//! Montgomery multiplication — Algorithm 5 of the paper, the *Coarsely
//! Integrated Operand Scanning* (CIOS) method of Koç et al.
//!
//! The paper's reconfigurable prime-field accelerator "Monte" implements
//! exactly this algorithm in microcode (§5.4); this module is the host
//! reference it is verified against, and is also used on the simulated
//! baseline for protocol arithmetic modulo arbitrary (non-NIST) group
//! orders.
//!
//! A [`Montgomery`] context for modulus `n` fixes `R = 2^(32k)` and
//! precomputes `n0' = -n^-1 mod 2^32` and `R^2 mod n`.

use crate::mp::{self, Limb, Mp};
use std::cmp::Ordering;

/// A Montgomery-multiplication context for an odd modulus.
#[derive(Clone, Debug)]
pub struct Montgomery {
    n: Vec<Limb>,
    n_mp: Mp,
    k: usize,
    /// `-n^{-1} mod 2^32` — the per-iteration quotient constant `n0'` of
    /// Algorithm 5 (loaded into Monte's constant RAM before use, §5.4.2.1).
    n0_prime: Limb,
    /// `R^2 mod n`, for converting into the Montgomery domain.
    r2: Vec<Limb>,
    /// `R mod n` == the Montgomery representation of 1.
    r1: Vec<Limb>,
}

impl Montgomery {
    /// Creates a context for the given odd modulus.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or zero.
    pub fn new(n: &Mp) -> Self {
        assert!(!n.is_zero() && n.bit(0), "Montgomery modulus must be odd");
        let k = n.bit_len().div_ceil(32);
        let n0 = n.limbs()[0];
        // Newton iteration for the inverse of n mod 2^32; then negate.
        let mut inv: u32 = 1;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_prime = inv.wrapping_neg();
        let r = Mp::one().shl(32 * k);
        let r1 = r.rem(n);
        let r2 = r1.mul(&r1).rem(n);
        Montgomery {
            n: n.to_limbs(k),
            n_mp: n.clone(),
            k,
            n0_prime,
            r2: r2.to_limbs(k),
            r1: r1.to_limbs(k),
        }
    }

    /// Element width in limbs.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The modulus.
    pub fn modulus(&self) -> &Mp {
        &self.n_mp
    }

    /// The quotient constant `n0' = -n^{-1} mod 2^32`.
    pub fn n0_prime(&self) -> Limb {
        self.n0_prime
    }

    /// `R^2 mod n` as limbs (what gets DMA'd into Monte to enter the
    /// Montgomery domain).
    pub fn r2(&self) -> &[Limb] {
        &self.r2
    }

    /// The Montgomery representation of one (`R mod n`).
    pub fn one(&self) -> Vec<Limb> {
        self.r1.clone()
    }

    /// CIOS Montgomery multiplication (Algorithm 5):
    /// returns `a * b * R^{-1} mod n` as `k` limbs.
    ///
    /// This function is written to follow the published algorithm line by
    /// line (two inner loops over a `k+2`-word scratch `t`, with the
    /// reduction coarsely integrated per outer iteration) because the FFAU
    /// microprogram is a transliteration of the same loop structure.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not `k` limbs wide.
    pub fn mul(&self, a: &[Limb], b: &[Limb]) -> Vec<Limb> {
        let k = self.k;
        assert_eq!(a.len(), k);
        assert_eq!(b.len(), k);
        let mut t = vec![0 as Limb; k + 2];
        #[allow(clippy::needless_range_loop)]
        for i in 0..k {
            // First inner loop: t += a * b[i]  (operand scanning row).
            let bi = b[i] as u64;
            let mut c = 0u64;
            for j in 0..k {
                let cs = t[j] as u64 + a[j] as u64 * bi + c;
                t[j] = cs as Limb;
                c = cs >> 32;
            }
            let cs = t[k] as u64 + c;
            t[k] = cs as Limb;
            t[k + 1] = (cs >> 32) as Limb;
            // Second inner loop: fold in m * n and shift right one word.
            let m = (t[0].wrapping_mul(self.n0_prime)) as u64;
            let cs = t[0] as u64 + m * self.n[0] as u64;
            let mut c = cs >> 32;
            for j in 1..k {
                let cs = t[j] as u64 + m * self.n[j] as u64 + c;
                t[j - 1] = cs as Limb;
                c = cs >> 32;
            }
            let cs = t[k] as u64 + c;
            t[k - 1] = cs as Limb;
            t[k] = t[k + 1].wrapping_add((cs >> 32) as Limb);
            t[k + 1] = 0;
        }
        // Final correction step.
        let mut out = t[..k].to_vec();
        if t[k] != 0 || mp::cmp(&out, &self.n) != Ordering::Less {
            mp::sub_into(&mut out, &self.n);
            // t[k] can be at most 1; the single subtraction absorbs it.
        }
        out
    }

    /// Converts `a < n` into the Montgomery domain (`a * R mod n`).
    pub fn to_mont(&self, a: &[Limb]) -> Vec<Limb> {
        self.mul(a, &self.r2)
    }

    /// Converts a Montgomery-domain value back to the ordinary domain.
    pub fn from_mont(&self, a: &[Limb]) -> Vec<Limb> {
        let mut one = vec![0 as Limb; self.k];
        one[0] = 1;
        self.mul(a, &one)
    }

    /// Full modular multiplication convenience: `a * b mod n` on ordinary-
    /// domain inputs (entering and leaving the Montgomery domain
    /// internally).
    pub fn modmul(&self, a: &Mp, b: &Mp) -> Mp {
        let am = self.to_mont(&a.rem(&self.n_mp).to_limbs(self.k));
        let bm = self.to_mont(&b.rem(&self.n_mp).to_limbs(self.k));
        let pm = self.mul(&am, &bm);
        Mp::from_limbs(&self.from_mont(&pm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nist::NistPrime;

    #[test]
    fn n0_prime_property() {
        for p in NistPrime::ALL {
            let m = Montgomery::new(&p.modulus());
            let n0 = p.modulus().limbs()[0];
            assert_eq!(n0.wrapping_mul(m.n0_prime()).wrapping_add(1), 0);
        }
    }

    #[test]
    fn round_trip_domain() {
        let m = Montgomery::new(&NistPrime::P256.modulus());
        let a = Mp::from_hex("123456789abcdef0123456789abcdef0123456789abcdef")
            .unwrap()
            .to_limbs(m.k());
        let back = m.from_mont(&m.to_mont(&a));
        assert_eq!(back, a);
    }

    #[test]
    fn modmul_matches_division() {
        for p in NistPrime::ALL {
            let n = p.modulus();
            let m = Montgomery::new(&n);
            let a = n.sub(&Mp::from_u64(123_456_789));
            let b = n.sub(&Mp::from_u64(42));
            assert_eq!(m.modmul(&a, &b), a.mul(&b).rem(&n), "{}", p.name());
        }
    }

    #[test]
    fn works_for_arbitrary_odd_modulus() {
        // A group-order-like modulus with no special form.
        let n = Mp::from_hex("ffffffffffffffffffffffff99def836146bc9b1b4d22831").unwrap();
        let m = Montgomery::new(&n);
        let a = Mp::from_u64(0xdead_beef);
        let b = Mp::from_hex("123456789abcdef0deadbeefcafebabe").unwrap();
        assert_eq!(m.modmul(&a, &b), a.mul(&b).rem(&n));
    }

    #[test]
    fn montgomery_one_behaves() {
        let m = Montgomery::new(&NistPrime::P192.modulus());
        let x = Mp::from_u64(777).to_limbs(m.k());
        let xm = m.to_mont(&x);
        // x * 1 (in the domain) == x
        assert_eq!(m.mul(&xm, &m.one()), xm);
    }
}
