//! Multi-precision unsigned integers on 32-bit limbs.
//!
//! Large integers are stored as little-endian arrays of [`Limb`]s, exactly
//! as the paper's software suite stores them in RAM (§4.2: "large integers
//! are stored in memory as arrays of w-bit words", with `w = 32` for every
//! architecture evaluated).
//!
//! Two layers are provided:
//!
//! * **slice primitives** ([`add3`], [`sub3`], [`mul_operand_scanning`],
//!   [`mul_product_scanning`], …) operating on caller-provided limb slices —
//!   these mirror the multi-precision routines of §4.2 one-to-one and are
//!   what the field contexts build upon;
//! * the owned [`Mp`] big-integer type for ergonomic host-side use
//!   (tests, curve parameter handling, division-based reference reduction).

use std::cmp::Ordering;
use std::fmt;

/// The machine word of the modeled datapath (`w = 32`, §4.2).
pub type Limb = u32;

/// Number of bits in a [`Limb`].
pub const LIMB_BITS: usize = 32;

// ---------------------------------------------------------------------------
// Slice primitives
// ---------------------------------------------------------------------------

/// Adds `b` into `a` in place, returning the final carry.
///
/// `b` may be shorter than `a`; the carry is propagated through the
/// remaining limbs of `a`.
///
/// # Panics
///
/// Panics if `b` is longer than `a`.
pub fn add_into(a: &mut [Limb], b: &[Limb]) -> bool {
    assert!(b.len() <= a.len(), "addend longer than accumulator");
    let mut carry = 0u64;
    for (i, limb) in a.iter_mut().enumerate() {
        let rhs = if i < b.len() { b[i] as u64 } else { 0 };
        if i >= b.len() && carry == 0 {
            return false;
        }
        let sum = *limb as u64 + rhs + carry;
        *limb = sum as Limb;
        carry = sum >> LIMB_BITS;
    }
    carry != 0
}

/// `out = a + b`, element-wise over equal-length slices; returns the carry.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add3(out: &mut [Limb], a: &[Limb], b: &[Limb]) -> bool {
    assert_eq!(a.len(), b.len());
    assert_eq!(out.len(), a.len());
    let mut carry = 0u64;
    for i in 0..a.len() {
        let sum = a[i] as u64 + b[i] as u64 + carry;
        out[i] = sum as Limb;
        carry = sum >> LIMB_BITS;
    }
    carry != 0
}

/// `out = a - b`, element-wise over equal-length slices; returns the borrow.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn sub3(out: &mut [Limb], a: &[Limb], b: &[Limb]) -> bool {
    assert_eq!(a.len(), b.len());
    assert_eq!(out.len(), a.len());
    let mut borrow = 0i64;
    for i in 0..a.len() {
        let diff = a[i] as i64 - b[i] as i64 - borrow;
        out[i] = diff as Limb;
        borrow = (diff < 0) as i64;
    }
    borrow != 0
}

/// Subtracts `b` from `a` in place, returning the final borrow.
///
/// # Panics
///
/// Panics if `b` is longer than `a`.
pub fn sub_into(a: &mut [Limb], b: &[Limb]) -> bool {
    assert!(b.len() <= a.len(), "subtrahend longer than accumulator");
    let mut borrow = 0i64;
    for (i, limb) in a.iter_mut().enumerate() {
        let rhs = if i < b.len() { b[i] as i64 } else { 0 };
        if i >= b.len() && borrow == 0 {
            return false;
        }
        let diff = *limb as i64 - rhs - borrow;
        *limb = diff as Limb;
        borrow = (diff < 0) as i64;
    }
    borrow != 0
}

/// Compares two limb slices as little-endian integers.
///
/// The slices may have different lengths; the shorter one is treated as
/// zero-extended.
pub fn cmp(a: &[Limb], b: &[Limb]) -> Ordering {
    let n = a.len().max(b.len());
    for i in (0..n).rev() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        match x.cmp(&y) {
            Ordering::Equal => {}
            non_eq => return non_eq,
        }
    }
    Ordering::Equal
}

/// Returns `true` when every limb of `a` is zero.
pub fn is_zero(a: &[Limb]) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Returns bit `i` of the little-endian integer `a` (bits beyond the slice
/// are zero).
pub fn bit(a: &[Limb], i: usize) -> bool {
    a.get(i / LIMB_BITS)
        .is_some_and(|&l| (l >> (i % LIMB_BITS)) & 1 == 1)
}

/// Number of significant bits of `a` (0 for the zero integer).
pub fn bit_len(a: &[Limb]) -> usize {
    for i in (0..a.len()).rev() {
        if a[i] != 0 {
            return i * LIMB_BITS + (LIMB_BITS - a[i].leading_zeros() as usize);
        }
    }
    0
}

/// Shifts `a` right by one bit in place (divides by two).
pub fn shr1_into(a: &mut [Limb]) {
    let mut carry = 0u32;
    for limb in a.iter_mut().rev() {
        let next = *limb & 1;
        *limb = (*limb >> 1) | (carry << (LIMB_BITS - 1));
        carry = next;
    }
}

/// Shifts `a` left by one bit in place, returning the bit shifted out.
pub fn shl1_into(a: &mut [Limb]) -> bool {
    let mut carry = 0u32;
    for limb in a.iter_mut() {
        let next = *limb >> (LIMB_BITS - 1);
        *limb = (*limb << 1) | carry;
        carry = next;
    }
    carry != 0
}

/// Operand-scanning ("school-book") multiplication — Algorithm 2 of the
/// paper.
///
/// Returns a product of `a.len() + b.len()` limbs. The outer loop iterates
/// over the multiplier `b`, the inner loop over the multiplicand `a`,
/// accumulating with the `(u, v) <- a[j] * b[i] + p[i+j] + u` multiply-add
/// step that the baseline architecture's statically scheduled multiplier
/// executes (§5.1.1).
pub fn mul_operand_scanning(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let mut p = vec![0 as Limb; a.len() + b.len()];
    for (i, &bi) in b.iter().enumerate() {
        let mut u = 0u64;
        for (j, &aj) in a.iter().enumerate() {
            let uv = aj as u64 * bi as u64 + p[i + j] as u64 + u;
            p[i + j] = uv as Limb;
            u = uv >> LIMB_BITS;
        }
        p[i + a.len()] = u as Limb;
    }
    p
}

/// Product-scanning ("Comba") multiplication — Algorithm 3 of the paper.
///
/// Returns a product of `a.len() + b.len()` limbs. The inner loop performs
/// the `(t, u, v) <- (t, u, v) + a[j] * b[i-j]` multiply-accumulate step
/// that the prime-field ISA extensions (`MADDU`, `SHA`; Table 5.1)
/// accelerate.
///
/// # Panics
///
/// Panics if the operands have different lengths (the paper only uses the
/// algorithm on equal-length field elements).
pub fn mul_product_scanning(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    assert_eq!(a.len(), b.len(), "product scanning expects equal lengths");
    let k = a.len();
    let mut p = vec![0 as Limb; 2 * k];
    // (t, u, v) accumulator: t the overflow word, (u, v) a 64-bit pair.
    let mut acc: u64 = 0; // (u, v)
    let mut t: u32 = 0; // OvFlo register
    for i in 0..(2 * k - 1) {
        let lo = i.saturating_sub(k - 1);
        let hi = i.min(k - 1);
        for j in lo..=hi {
            let prod = a[j] as u64 * b[i - j] as u64;
            let (sum, ov) = acc.overflowing_add(prod);
            acc = sum;
            t = t.wrapping_add(ov as u32);
        }
        p[i] = acc as Limb;
        acc = (acc >> LIMB_BITS) | ((t as u64) << LIMB_BITS);
        t = 0;
    }
    p[2 * k - 1] = acc as Limb;
    p
}

/// Multiplies `a` by the single limb `m` and accumulates into `acc`
/// (`acc += a * m`), returning the final carry out of `acc`.
///
/// This is the row operation at the heart of both CIOS loops (Algorithm 5)
/// and of the FFAU arithmetic core (Table 5.4).
///
/// # Panics
///
/// Panics if `acc` is shorter than `a`.
pub fn mul_add_limb(acc: &mut [Limb], a: &[Limb], m: Limb) -> Limb {
    assert!(acc.len() >= a.len());
    let mut carry = 0u64;
    for (i, &aj) in a.iter().enumerate() {
        let uv = aj as u64 * m as u64 + acc[i] as u64 + carry;
        acc[i] = uv as Limb;
        carry = uv >> LIMB_BITS;
    }
    for limb in acc.iter_mut().skip(a.len()) {
        if carry == 0 {
            return 0;
        }
        let sum = *limb as u64 + carry;
        *limb = sum as Limb;
        carry = sum >> LIMB_BITS;
    }
    carry as Limb
}

// ---------------------------------------------------------------------------
// Owned big-integer type
// ---------------------------------------------------------------------------

/// An owned, normalized, arbitrary-precision unsigned integer.
///
/// `Mp` is the ergonomic host-side integer used for curve parameters, test
/// oracles, and the division-based reference reduction that the fast
/// NIST reductions are verified against. It is *not* intended to be
/// constant-time; the energy study measures simulated targets, not the
/// host.
///
/// The limb vector is always normalized (no most-significant zero limbs;
/// zero is the empty vector).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Mp {
    limbs: Vec<Limb>,
}

impl Mp {
    /// The integer zero.
    pub fn zero() -> Self {
        Mp { limbs: Vec::new() }
    }

    /// The integer one.
    pub fn one() -> Self {
        Mp { limbs: vec![1] }
    }

    /// Creates an integer from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut m = Mp {
            limbs: vec![v as Limb, (v >> 32) as Limb],
        };
        m.normalize();
        m
    }

    /// Creates an integer from little-endian limbs (extra zero limbs are
    /// stripped).
    pub fn from_limbs(limbs: &[Limb]) -> Self {
        let mut m = Mp {
            limbs: limbs.to_vec(),
        };
        m.normalize();
        m
    }

    /// Parses a big-endian hexadecimal string (an optional `0x` prefix and
    /// internal whitespace/underscores are accepted).
    ///
    /// # Errors
    ///
    /// Returns an error message naming the offending character if the
    /// string contains a non-hex digit.
    pub fn from_hex(s: &str) -> Result<Self, String> {
        let mut nibbles = Vec::new();
        let body = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        for c in body.chars() {
            if c.is_whitespace() || c == '_' {
                continue;
            }
            let d = c
                .to_digit(16)
                .ok_or_else(|| format!("invalid hex digit {c:?}"))?;
            nibbles.push(d);
        }
        let mut limbs = vec![0 as Limb; nibbles.len().div_ceil(8)];
        for (i, d) in nibbles.iter().rev().enumerate() {
            limbs[i / 8] |= (*d as Limb) << (4 * (i % 8));
        }
        let mut m = Mp { limbs };
        m.normalize();
        Ok(m)
    }

    /// Formats the integer as a lowercase big-endian hex string (no prefix,
    /// `"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.limbs.is_empty() {
            return "0".to_owned();
        }
        let mut s = format!("{:x}", self.limbs[self.limbs.len() - 1]);
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:08x}"));
        }
        s
    }

    /// The normalized little-endian limbs (empty for zero).
    pub fn limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// The little-endian limbs zero-padded or truncated to exactly `k`
    /// limbs.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `k` limbs.
    pub fn to_limbs(&self, k: usize) -> Vec<Limb> {
        assert!(
            self.limbs.len() <= k,
            "value of {} limbs does not fit in {k}",
            self.limbs.len()
        );
        let mut v = self.limbs.clone();
        v.resize(k, 0);
        v
    }

    /// Returns `true` if the integer is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        bit_len(&self.limbs)
    }

    /// Returns bit `i` (false beyond the top).
    pub fn bit(&self, i: usize) -> bool {
        bit(&self.limbs, i)
    }

    /// The lowest 64 bits of the integer.
    pub fn low_u64(&self) -> u64 {
        let lo = self.limbs.first().copied().unwrap_or(0) as u64;
        let hi = self.limbs.get(1).copied().unwrap_or(0) as u64;
        lo | (hi << 32)
    }

    /// `self + other`.
    pub fn add(&self, other: &Mp) -> Mp {
        let n = self.limbs.len().max(other.limbs.len()) + 1;
        let mut out = self.to_padded(n);
        add_into(&mut out, &other.limbs);
        Mp::from_limbs(&out)
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (this type is unsigned).
    pub fn sub(&self, other: &Mp) -> Mp {
        assert!(
            cmp(&self.limbs, &other.limbs) != Ordering::Less,
            "Mp::sub underflow"
        );
        let mut out = self.limbs.clone();
        sub_into(&mut out, &other.limbs);
        Mp::from_limbs(&out)
    }

    /// `self * other` (operand scanning).
    pub fn mul(&self, other: &Mp) -> Mp {
        if self.is_zero() || other.is_zero() {
            return Mp::zero();
        }
        Mp::from_limbs(&mul_operand_scanning(&self.limbs, &other.limbs))
    }

    /// `self << bits`.
    pub fn shl(&self, bits: usize) -> Mp {
        if self.is_zero() {
            return Mp::zero();
        }
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        let mut limbs = vec![0 as Limb; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            limbs[i + limb_shift] |= l << bit_shift;
            if bit_shift != 0 {
                limbs[i + limb_shift + 1] |= l >> (LIMB_BITS - bit_shift);
            }
        }
        Mp::from_limbs(&limbs)
    }

    /// `self >> bits`.
    pub fn shr(&self, bits: usize) -> Mp {
        let limb_shift = bits / LIMB_BITS;
        if limb_shift >= self.limbs.len() {
            return Mp::zero();
        }
        let bit_shift = bits % LIMB_BITS;
        let mut limbs = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            for i in 0..limbs.len() {
                let hi = limbs.get(i + 1).copied().unwrap_or(0);
                limbs[i] = (limbs[i] >> bit_shift) | (hi << (LIMB_BITS - bit_shift));
            }
        }
        Mp::from_limbs(&limbs)
    }

    /// Euclidean division: returns `(self / divisor, self % divisor)`.
    ///
    /// Implemented as binary long division — slow but obviously correct;
    /// this is the oracle the fast reductions are tested against (the paper
    /// notes "big integer division is extremely costly" §2.1.3, which is
    /// exactly why the targets never run it).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Mp) -> (Mp, Mp) {
        assert!(!divisor.is_zero(), "division by zero");
        if cmp(&self.limbs, &divisor.limbs) == Ordering::Less {
            return (Mp::zero(), self.clone());
        }
        let shift = self.bit_len() - divisor.bit_len();
        let mut remainder = self.clone();
        let mut quotient = vec![0 as Limb; shift / LIMB_BITS + 1];
        let mut d = divisor.shl(shift);
        for i in (0..=shift).rev() {
            if cmp(&remainder.limbs, &d.limbs) != Ordering::Less {
                remainder = remainder.sub(&d);
                quotient[i / LIMB_BITS] |= 1 << (i % LIMB_BITS);
            }
            d = d.shr(1);
        }
        (Mp::from_limbs(&quotient), remainder)
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &Mp) -> Mp {
        self.div_rem(m).1
    }

    /// `self^e mod m` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, e: &Mp, m: &Mp) -> Mp {
        let mut result = Mp::one().rem(m);
        let base = self.rem(m);
        for i in (0..e.bit_len()).rev() {
            result = result.mul(&result).rem(m);
            if e.bit(i) {
                result = result.mul(&base).rem(m);
            }
        }
        result
    }

    /// Miller–Rabin probabilistic primality test with the given number of
    /// fixed-base rounds (bases 2, 3, 5, 7, …). Deterministic enough for
    /// validating curve orders.
    pub fn is_probable_prime(&self, rounds: usize) -> bool {
        const SMALL: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];
        if self.bit_len() <= 6 {
            let v = self.low_u64();
            return SMALL.contains(&v)
                || (v > 37 && SMALL.iter().all(|&p| !v.is_multiple_of(p)) && {
                    // trial division for tiny values
                    let mut d = 41u64;
                    let mut prime = true;
                    while d * d <= v {
                        if v.is_multiple_of(d) {
                            prime = false;
                            break;
                        }
                        d += 2;
                    }
                    prime
                });
        }
        if !self.bit(0) {
            return false;
        }
        let one = Mp::one();
        let n_minus_1 = self.sub(&one);
        let s = (0..n_minus_1.bit_len())
            .position(|i| n_minus_1.bit(i))
            .unwrap_or(0);
        let d = n_minus_1.shr(s);
        'witness: for &a in SMALL.iter().take(rounds.max(1)) {
            let a = Mp::from_u64(a);
            let mut x = a.modpow(&d, self);
            if x == one || x == n_minus_1 {
                continue;
            }
            for _ in 0..s - 1 {
                x = x.mul(&x).rem(self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    fn to_padded(&self, n: usize) -> Vec<Limb> {
        let mut v = self.limbs.clone();
        v.resize(n.max(v.len()), 0);
        v
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl PartialOrd for Mp {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Mp {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp(&self.limbs, &other.limbs)
    }
}

impl fmt::Debug for Mp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mp(0x{})", self.to_hex())
    }
}

impl fmt::Display for Mp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl fmt::LowerHex for Mp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<u64> for Mp {
    fn from(v: u64) -> Self {
        Mp::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let m = Mp::from_hex("0xDEADBEEF00112233445566778899AABB").unwrap();
        assert_eq!(m.to_hex(), "deadbeef00112233445566778899aabb");
        assert_eq!(Mp::zero().to_hex(), "0");
        assert!(Mp::from_hex("xyz").is_err());
    }

    #[test]
    fn add_sub_round_trip() {
        let a = Mp::from_hex("ffffffffffffffffffffffff").unwrap();
        let b = Mp::from_u64(1);
        let c = a.add(&b);
        assert_eq!(c.to_hex(), "1000000000000000000000000");
        assert_eq!(c.sub(&b), a);
    }

    #[test]
    fn mul_known_value() {
        let a = Mp::from_hex("ffffffff").unwrap();
        let b = Mp::from_hex("ffffffff").unwrap();
        assert_eq!(a.mul(&b).to_hex(), "fffffffe00000001");
    }

    #[test]
    fn operand_and_product_scanning_agree() {
        let a = [0xffff_ffff, 0x1234_5678, 0x9abc_def0, 0x0fed_cba9];
        let b = [0x8765_4321, 0xffff_ffff, 0x0000_0001, 0xdead_beef];
        assert_eq!(mul_operand_scanning(&a, &b), mul_product_scanning(&a, &b));
    }

    #[test]
    fn div_rem_identity() {
        let a = Mp::from_hex("123456789abcdef0fedcba9876543210aabbccdd").unwrap();
        let b = Mp::from_hex("fedcba987654321").unwrap();
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn modpow_small() {
        // 5^117 mod 19 == 1 (since 5^18 == 1 mod 19 and 117 mod 18 == 9; 5^9 mod 19 == 1)
        let base = Mp::from_u64(5);
        let m = Mp::from_u64(19);
        assert_eq!(
            base.modpow(&Mp::from_u64(117), &m).low_u64(),
            5u64.pow(9) % 19
        );
    }

    #[test]
    fn primality_small() {
        assert!(Mp::from_u64(2).is_probable_prime(8));
        assert!(Mp::from_u64(97).is_probable_prime(8));
        assert!(!Mp::from_u64(91).is_probable_prime(8)); // 7 * 13
        assert!(!Mp::from_u64(1).is_probable_prime(8));
        // 2^127 - 1 is a Mersenne prime.
        let m127 = Mp::one().shl(127).sub(&Mp::one());
        assert!(m127.is_probable_prime(8));
        // 2^128 - 1 = (2^64-1)(2^64+1) is not.
        assert!(!Mp::one().shl(128).sub(&Mp::one()).is_probable_prime(8));
    }

    #[test]
    fn shifts() {
        let a = Mp::from_hex("123456789abcdef").unwrap();
        assert_eq!(a.shl(4).to_hex(), "123456789abcdef0");
        assert_eq!(a.shr(4).to_hex(), "123456789abcde");
        assert_eq!(a.shl(37).shr(37), a);
    }

    #[test]
    fn mul_add_limb_matches_mul() {
        let a = [0xffff_ffff, 0xffff_ffff, 0xffff_ffff];
        let mut acc = [0u32; 4];
        let carry = mul_add_limb(&mut acc, &a, 0xffff_ffff);
        assert_eq!(carry, 0);
        let expect = Mp::from_limbs(&a).mul(&Mp::from_u64(0xffff_ffff));
        assert_eq!(Mp::from_limbs(&acc), expect);
    }

    #[test]
    fn bit_helpers() {
        let a = Mp::from_hex("8000000000000001").unwrap();
        assert_eq!(a.bit_len(), 64);
        assert!(a.bit(0));
        assert!(a.bit(63));
        assert!(!a.bit(32));
        assert!(!a.bit(1000));
    }
}
