//! The RFC 7748 special-form primes: 2^255 − 19 and 2^448 − 2^224 − 1.
//!
//! The paper's design space covers the NIST generalized-Mersenne primes
//! only ([`crate::nist`]); the Montgomery-ladder subsystem adds the two
//! curve25519/curve448 base fields. Both are *crandall / solinas* style
//! primes with one-term congruences that make reduction even cheaper
//! than the NIST folds on a 32-bit datapath:
//!
//! * `p = 2^255 − 19` gives `2^255 ≡ 19 (mod p)`, so any excess above
//!   bit 255 folds back in multiplied by the small constant 19,
//! * `p = 2^448 − 2^224 − 1` gives `2^448 ≡ 2^224 + 1 (mod p)`, so the
//!   high half folds back as a shift-and-add (no multiplication at
//!   all — the "golden-ratio" prime structure).
//!
//! As in [`crate::nist`], the moduli are **constructed from their
//! defining formulas** rather than embedded as hex blobs. The
//! special-form reductions here are the host reference the simulated
//! kernels and the Monte microcode are differentially tested against;
//! they are themselves cross-checked against generic division
//! ([`Mp::rem`]) and the generic fold tables ([`crate::fp::PrimeField`])
//! in the unit tests.

use crate::mp::Mp;

/// The two RFC 7748 ladder primes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum XPrime {
    /// `2^255 - 19` (curve25519, RFC 7748 §4.1).
    P25519,
    /// `2^448 - 2^224 - 1` (curve448, RFC 7748 §4.2).
    P448,
}

impl XPrime {
    /// Both primes in increasing key-size order.
    pub const ALL: [XPrime; 2] = [XPrime::P25519, XPrime::P448];

    /// Field size in bits (255, 448).
    pub fn bits(self) -> usize {
        match self {
            XPrime::P25519 => 255,
            XPrime::P448 => 448,
        }
    }

    /// Number of 32-bit limbs per field element (`k = ceil(n/w)`).
    pub fn limbs(self) -> usize {
        self.bits().div_ceil(32)
    }

    /// The modulus, built from its defining formula.
    pub fn modulus(self) -> Mp {
        let one = Mp::one();
        let pow = |e: usize| Mp::one().shl(e);
        match self {
            XPrime::P25519 => pow(255).sub(&Mp::from_u64(19)),
            XPrime::P448 => pow(448).sub(&pow(224)).sub(&one),
        }
    }

    /// Human-readable name, e.g. `"p25519"`.
    pub fn name(self) -> &'static str {
        match self {
            XPrime::P25519 => "p25519",
            XPrime::P448 => "p448",
        }
    }

    /// The Montgomery curve's `(A − 2) / 4` ladder constant
    /// (RFC 7748 §5): 121665 for curve25519, 39081 for curve448.
    pub fn a24(self) -> u64 {
        match self {
            XPrime::P25519 => 121_665,
            XPrime::P448 => 39_081,
        }
    }

    /// The limb-aligned fold multiplier `δ` for a 32-bit datapath:
    /// `2^(32·k) ≡ δ·2^(32·off₂) + … (mod p)` — concretely
    /// `2^256 ≡ 38` for 2^255−19, and `2^448 ≡ 2^224 + 1` for
    /// 2^448−2^224−1 (two unit injections, see
    /// [`XPrime::fold_second_offset`]).
    pub fn fold_delta(self) -> u64 {
        match self {
            XPrime::P25519 => 38,
            XPrime::P448 => 1,
        }
    }

    /// Limb offset (32-bit words) of the second fold injection point:
    /// 0 for 2^255−19 (single injection at limb 0), `224/32 = 7` for
    /// 2^448−2^224−1.
    pub fn fold_second_offset(self) -> u64 {
        match self {
            XPrime::P25519 => 0,
            XPrime::P448 => 7,
        }
    }

    /// Special-form reduction: folds `x` (any size, typically a 2k-limb
    /// product) down to `x mod p` using the one-term congruence instead
    /// of division.
    ///
    /// For `2^255 − 19` each pass replaces the part above bit 255 with
    /// itself times 19; for `2^448 − 2^224 − 1` each pass replaces the
    /// part above bit 448 with `hi·2^224 + hi`. Each pass removes
    /// essentially all excess bits (19 < 2^5, the shift-add adds one
    /// bit), so a double-width product needs two passes plus at most
    /// one conditional subtraction.
    pub fn reduce(self, x: &Mp) -> Mp {
        let p = self.modulus();
        let bits = self.bits();
        let mut v = x.clone();
        while v.bit_len() > bits {
            let hi = v.shr(bits);
            let lo = v.sub(&hi.shl(bits));
            let folded = match self {
                // 2^255 ≡ 19
                XPrime::P25519 => hi.mul(&Mp::from_u64(19)),
                // 2^448 ≡ 2^224 + 1
                XPrime::P448 => hi.shl(224).add(&hi),
            };
            v = lo.add(&folded);
        }
        while v >= p {
            v = v.sub(&p);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::PrimeField;
    use ule_testkit::Rng;

    #[test]
    fn moduli_have_expected_bit_lengths_and_are_prime() {
        for p in XPrime::ALL {
            let m = p.modulus();
            assert_eq!(m.bit_len(), p.bits(), "{}", p.name());
            assert!(m.is_probable_prime(8), "{} not prime?!", p.name());
        }
    }

    #[test]
    fn p25519_matches_published_hex() {
        assert_eq!(
            XPrime::P25519.modulus().to_hex(),
            "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed"
        );
    }

    #[test]
    fn p448_matches_published_hex() {
        assert_eq!(
            XPrime::P448.modulus().to_hex(),
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffe\
             ffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
        );
    }

    #[test]
    fn limb_counts() {
        assert_eq!(XPrime::P25519.limbs(), 8);
        assert_eq!(XPrime::P448.limbs(), 14);
    }

    #[test]
    fn fold_parameters_match_the_limb_aligned_congruence() {
        // 2^(32·k) ≡ δ + δ·2^(32·off₂) (mod p) — the form the Monte
        // microcode extension injects the overflow word back with.
        for p in XPrime::ALL {
            let m = p.modulus();
            let expect = Mp::one().shl(32 * p.limbs()).rem(&m);
            let delta = Mp::from_u64(p.fold_delta());
            let mut folded = delta.clone();
            if p.fold_second_offset() != 0 {
                folded = folded.add(&delta.shl(32 * p.fold_second_offset() as usize));
            }
            assert_eq!(folded.to_hex(), expect.to_hex(), "{}", p.name());
        }
    }

    #[test]
    fn special_form_reduce_matches_division() {
        let mut rng = Rng::new(0x7748);
        for p in XPrime::ALL {
            let m = p.modulus();
            let k = p.limbs();
            for _ in 0..64 {
                // A full double-width product, the worst case the field
                // multiplication feeds the reduction.
                let limbs: Vec<u32> = (0..2 * k).map(|_| rng.next_u64() as u32).collect();
                let x = Mp::from_limbs(&limbs);
                assert_eq!(p.reduce(&x), x.rem(&m), "{}", p.name());
            }
            // Edge cases: 0, 1, p-1, p, p+1, 2p, and the all-ones
            // double-width value.
            let one = Mp::one();
            for e in [
                Mp::zero(),
                one.clone(),
                m.sub(&one),
                m.clone(),
                m.add(&one),
                m.add(&m),
                Mp::one().shl(64 * k).sub(&one),
            ] {
                assert_eq!(p.reduce(&e), e.rem(&m), "{}", p.name());
            }
        }
    }

    #[test]
    fn special_form_reduce_matches_generic_fold_tables() {
        // The generic congruency-folding reducer used by the simulated
        // software (PrimeField::reduce_wide) must agree with the
        // special forms on exact double-width inputs.
        let mut rng = Rng::new(0x448);
        for p in XPrime::ALL {
            let field = PrimeField::new(p.name(), &p.modulus());
            let k = p.limbs();
            for _ in 0..32 {
                let limbs: Vec<u32> = (0..2 * k).map(|_| rng.next_u64() as u32).collect();
                let wide = Mp::from_limbs(&limbs);
                let got = field.reduce_wide(&limbs).to_mp();
                assert_eq!(got, p.reduce(&wide), "{}", p.name());
            }
        }
    }

    #[test]
    fn a24_constants() {
        // (486662 - 2) / 4 and (156326 - 2) / 4 — the curve A
        // coefficients of RFC 7748.
        assert_eq!(XPrime::P25519.a24(), (486_662 - 2) / 4);
        assert_eq!(XPrime::P448.a24(), (156_326 - 2) / 4);
    }
}
